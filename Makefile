GO ?= go
FUZZTIME ?= 10s

.PHONY: build test race lint fuzz ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	$(GO) vet ./...
	$(GO) run ./cmd/dynlint ./...

# Short smoke run of every native fuzz target in internal/dynet.
fuzz:
	@targets=$$($(GO) test ./internal/dynet -list '^Fuzz' | grep '^Fuzz'); \
	for target in $$targets; do \
		echo "==> $$target"; \
		$(GO) test ./internal/dynet -run='^$$' -fuzz="^$$target$$" -fuzztime=$(FUZZTIME) || exit 1; \
	done

ci: build lint test race fuzz
