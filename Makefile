GO ?= go
FUZZTIME ?= 10s
BENCHOUT ?=

.PHONY: build test race lint fuzz bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	$(GO) vet ./...
	$(GO) run ./cmd/dynlint ./...

# Regenerate the tracked benchmark baseline (BENCH_<date>.json). Set
# BENCHOUT to override the output path, e.g. `make bench BENCHOUT=/tmp/b.json`.
bench:
	$(GO) run ./cmd/bench $(if $(BENCHOUT),-out $(BENCHOUT))

# Short smoke run of every native fuzz target in internal/dynet.
fuzz:
	@targets=$$($(GO) test ./internal/dynet -list '^Fuzz' | grep '^Fuzz'); \
	for target in $$targets; do \
		echo "==> $$target"; \
		$(GO) test ./internal/dynet -run='^$$' -fuzz="^$$target$$" -fuzztime=$(FUZZTIME) || exit 1; \
	done

ci: build lint test race fuzz
