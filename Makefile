GO ?= go
FUZZTIME ?= 10s
BENCHOUT ?=
FUZZPKGS ?= ./internal/dynet ./internal/faults ./internal/advsearch

.PHONY: build test race lint fuzz bench chaos ci

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./...

lint:
	$(GO) vet ./...
	$(GO) run ./cmd/dynlint ./...

# Regenerate the tracked benchmark baseline (BENCH_<date>.json). Set
# BENCHOUT to override the output path, e.g. `make bench BENCHOUT=/tmp/b.json`.
bench:
	$(GO) run ./cmd/bench $(if $(BENCHOUT),-out $(BENCHOUT))

# Short smoke run of every native fuzz target in FUZZPKGS.
fuzz:
	@for pkg in $(FUZZPKGS); do \
		targets=$$($(GO) test $$pkg -list '^Fuzz' | grep '^Fuzz'); \
		for target in $$targets; do \
			echo "==> $$pkg $$target"; \
			$(GO) test $$pkg -run='^$$' -fuzz="^$$target$$" -fuzztime=$(FUZZTIME) || exit 1; \
		done; \
	done

# Small deterministic fault grid: degradation tables for both protocols
# plus the zero-overhead gate against the clean leader baseline.
chaos:
	$(GO) run ./cmd/chaos -n 16 -trials 6 -rates 0,0.05,0.3 -dims drop,crash

ci: build lint test race fuzz chaos
