// Benchmarks regenerating every figure and theorem-level experiment of the
// paper (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
// paper-vs-measured shapes). Each benchmark reports the quantity whose
// *shape* the paper predicts as a custom metric, so
//
//	go test -bench=. -benchmem
//
// doubles as the reproduction run.
package dyndiam_test

import (
	"bytes"
	"os"
	"testing"

	"dyndiam"
)

// --- F1-F3: the construction figures ---

func BenchmarkFigure1TypeGamma(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := dyndiam.Figure1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2Centipede(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := dyndiam.Figure2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3Centipede(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := dyndiam.Figure3(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E1: Theorem 6 (CFLOOD lower bound via reduction) ---

func BenchmarkThm6CFloodReduction(b *testing.B) {
	var bits, claims int
	for i := 0; i < b.N; i++ {
		rows, err := dyndiam.CFloodReductionTable([]int{25}, 2, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			bits += r.Bits
			if r.ClaimCorrect {
				claims++
			}
			if r.LemmaViolations != 0 {
				b.Fatalf("lemma violations: %d", r.LemmaViolations)
			}
		}
	}
	b.ReportMetric(float64(bits)/float64(b.N), "bits/run")
	b.ReportMetric(float64(claims)/float64(b.N), "correct-claims/4")
}

// --- E2: Theorem 7 (CONSENSUS lower bound via reduction) ---

func BenchmarkThm7ConsensusReduction(b *testing.B) {
	var violations int
	for i := 0; i < b.N; i++ {
		rows, err := dyndiam.ConsensusReduction([]int{201}, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Disj == 0 && r.AgreementViolated {
				violations++
			}
			if r.LemmaViolations != 0 {
				b.Fatalf("lemma violations: %d", r.LemmaViolations)
			}
		}
	}
	b.ReportMetric(float64(violations)/float64(b.N), "agreement-violations/zero-instance")
}

// BenchmarkThm7WithSection7Oracle runs the Theorem 7 reduction with the
// paper's own Section 7 protocol as the oracle, under the construction's
// N' (accuracy exactly 1/3 — violating the Theorem 8 premise). Measured
// outcome (recorded in EXPERIMENTS.md): unlike the cheating fixed-horizon
// oracle, the Section 7 oracle errs on the *safe* side — it never decides
// within the horizon, so it causes no agreement violation but also cannot
// beat the Theorem 7 bound; exactly the correct-but-slow horn of the
// dichotomy. Expensive (minutes): opt in with DYNDIAM_HEAVY=1.
func BenchmarkThm7WithSection7Oracle(b *testing.B) {
	if os.Getenv("DYNDIAM_HEAVY") == "" {
		b.Skip("set DYNDIAM_HEAVY=1 to run the large-q Section 7 oracle reduction")
	}
	var violations, decided int
	for i := 0; i < b.N; i++ {
		rows, err := dyndiam.ConsensusReductionWith([]int{3001}, uint64(i),
			dyndiam.ViaLeaderConsensus{}, map[string]int64{
				"K": 12, "alpha": 2, "beta": 1, "cpermille": 250,
			})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.LemmaViolations != 0 {
				b.Fatalf("lemma violations: %d", r.LemmaViolations)
			}
			if r.Disj == 0 {
				if r.AgreementViolated {
					violations++
				}
				if r.Claim == 1 {
					decided++
				}
			}
		}
	}
	b.ReportMetric(float64(violations)/float64(b.N), "agreement-violations/zero-instance")
	b.ReportMetric(float64(decided)/float64(b.N), "decided-within-horizon/zero-instance")
}

// --- E3: Theorem 8 (LEADERELECT upper bound) ---

func BenchmarkThm8LeaderElect(b *testing.B) {
	var frTotal float64
	for i := 0; i < b.N; i++ {
		rows, err := dyndiam.LeaderSweep([]int{48}, 4, 0.9, 150, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if !rows[0].Correct {
			b.Fatal("wrong leader")
		}
		frTotal += rows[0].FloodingRnds
	}
	b.ReportMetric(frTotal/float64(b.N), "flooding-rounds")
}

// --- E4: the headline known-vs-unknown gap ---

func BenchmarkGapTable(b *testing.B) {
	var knownFR, unknownFR float64
	for i := 0; i < b.N; i++ {
		rows, err := dyndiam.GapTable([]int{128}, 4, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		knownFR += rows[0].KnownFR
		unknownFR += rows[0].UnknownFR
	}
	b.ReportMetric(knownFR/float64(b.N), "known-D-flooding-rounds")
	b.ReportMetric(unknownFR/float64(b.N), "unknown-D-flooding-rounds")
}

// --- E5: estimating N with known D ---

func BenchmarkEstimateN(b *testing.B) {
	var meanErr float64
	for i := 0; i < b.N; i++ {
		rows, err := dyndiam.EstimateSweep([]int{64}, []int{64}, 4, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		meanErr += rows[0].MeanErr
	}
	b.ReportMetric(meanErr/float64(b.N), "mean-rel-error")
}

// --- E6: one-sided majority counting ---

func BenchmarkMajorityCount(b *testing.B) {
	var unsound int
	for i := 0; i < b.N; i++ {
		rows, err := dyndiam.MajoritySweep(32, []float64{0.5, 1.0}, 4, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			unsound += r.FalseClaims
		}
	}
	b.ReportMetric(float64(unsound)/float64(b.N), "unsound-claims")
}

// --- E7: Lemma 5 simulation soundness ---

func BenchmarkLemma5Simulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		in := dyndiam.RandomDisjZero(2, 17, 1, uint64(i))
		net, err := dyndiam.NewCFloodNetwork(in)
		if err != nil {
			b.Fatal(err)
		}
		setup := dyndiam.CFloodReductionSetup(net, dyndiam.CFlood{}, uint64(i),
			map[string]int64{dyndiam.ExtraDiameter: 10})
		res, err := dyndiam.RunReduction(setup, true)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.LemmaViolations) != 0 {
			b.Fatalf("lemma violations: %v", res.LemmaViolations)
		}
	}
}

// --- E8: the Υ subnetwork's node-count uncertainty ---

func BenchmarkUpsilonComposition(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		one, err := dyndiam.NewConsensusNetwork(dyndiam.RandomDisjOne(2, 17, uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		zero, err := dyndiam.NewConsensusNetwork(dyndiam.RandomDisjZero(2, 17, 1, uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		ratio += float64(zero.N) / float64(one.N)
	}
	b.ReportMetric(ratio/float64(b.N), "N-ratio-zero/one")
}

// --- Structural: composition diameters (the O(1) vs Ω(q) gap) ---

func BenchmarkConstructionDiameters(b *testing.B) {
	var dOne, dZero float64
	for i := 0; i < b.N; i++ {
		rows, err := dyndiam.ConstructionDiameters([]int{33}, 2, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Disj == 1 {
				dOne += float64(r.Diameter)
			} else {
				dZero += float64(r.Diameter)
			}
		}
	}
	b.ReportMetric(dOne/float64(b.N), "diameter-DISJ1")
	b.ReportMetric(dZero/float64(b.N), "diameter-DISJ0")
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationSendProbability compares probabilistic flooding at
// several send probabilities against the deterministic always-send design
// on an oblivious dynamic network.
func BenchmarkAblationSendProbability(b *testing.B) {
	for _, permille := range []int64{250, 500, 750, 1000} {
		b.Run(benchName("p", permille), func(b *testing.B) {
			const n = 64
			var rounds int
			for i := 0; i < b.N; i++ {
				inputs := make([]int64, n)
				inputs[0] = 1
				ms := dyndiam.NewMachines(dyndiam.PFlood{}, n, inputs, uint64(i), map[string]int64{
					"sendpermille": permille,
					"rounds":       1 << 20,
				})
				eng := &dyndiam.Engine{
					Machines: ms,
					Adv:      dyndiam.RandomConnectedAdversary(n, n, uint64(i)),
					Workers:  1,
					Terminated: func(all []dyndiam.Machine) bool {
						for _, m := range all {
							if !dyndiam.Informed(m) {
								return false
							}
						}
						return true
					},
				}
				res, err := eng.Run(50 * n)
				if err != nil || !res.Done {
					b.Fatalf("flooding did not complete: %v", err)
				}
				rounds += res.Rounds
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds-to-inform-all")
		})
	}
}

// BenchmarkAblationTwoStageLocking measures lock rollbacks with and without
// the COUNT1 pre-check on a high-diameter line.
func BenchmarkAblationTwoStageLocking(b *testing.B) {
	for _, skip := range []int64{0, 1} {
		b.Run(benchName("skipstage1", skip), func(b *testing.B) {
			const n = 24
			var rollbacks int
			for i := 0; i < b.N; i++ {
				extra := map[string]int64{"skipstage1": skip}
				ms := dyndiam.NewMachines(dyndiam.LeaderElect{}, n, make([]int64, n), uint64(i), extra)
				eng := &dyndiam.Engine{
					Machines: ms,
					Adv:      dyndiam.StaticAdversary(dyndiam.Line(n)),
					Workers:  1,
				}
				res, err := eng.Run(10_000_000)
				if err != nil || !res.Done {
					b.Fatalf("election failed: %v", err)
				}
				rollbacks += failedCandidacies(ms)
			}
			b.ReportMetric(float64(rollbacks)/float64(b.N), "rollbacks")
		})
	}
}

// BenchmarkAblationEngineParallel compares the sequential and goroutine-
// parallel round engines on the same workload.
func BenchmarkAblationEngineParallel(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(benchName("workers", int64(workers)), func(b *testing.B) {
			const n = 1024
			g := dyndiam.Ring(n)
			for i := 0; i < b.N; i++ {
				inputs := make([]int64, n)
				inputs[0] = 1
				ms := dyndiam.NewMachines(dyndiam.CFlood{}, n, inputs, uint64(i),
					map[string]int64{dyndiam.ExtraDiameter: n / 2})
				eng := &dyndiam.Engine{
					Machines:   ms,
					Adv:        dyndiam.StaticAdversary(g),
					Workers:    workers,
					Terminated: dyndiam.NodeDecided(0),
				}
				if _, err := eng.Run(n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(key string, v int64) string {
	return key + "=" + itoa(v)
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// failedCandidacies sums rollbacks across machines via the leader package's
// inspector, re-exported through a tiny helper here to keep the benchmark
// within the public API surface plus one inspection hook.
func failedCandidacies(ms []dyndiam.Machine) int {
	total := 0
	for _, m := range ms {
		total += dyndiam.FailedCandidacies(m)
	}
	return total
}

// --- Supplementary benchmarks ---

// BenchmarkCommAccounting measures the communication table (reduction bits
// vs trivial ceiling vs Theorem 1 floor).
func BenchmarkCommAccounting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := dyndiam.CommTable([]int{2}, []int{33}, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].ReductionBits == 0 {
			b.Fatal("no bits")
		}
	}
}

// BenchmarkDualViewRender renders the dual-graph expression of the
// Theorem 6 composition across a horizon of rounds.
func BenchmarkDualViewRender(b *testing.B) {
	in := dyndiam.RandomDisjZero(2, 17, 1, 3)
	net, err := dyndiam.NewCFloodNetwork(in)
	if err != nil {
		b.Fatal(err)
	}
	actions := make([]dyndiam.Action, net.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dual := net.DualView()
		for r := 1; r <= net.Horizon(); r++ {
			dual.Topology(r, actions)
		}
	}
}

// BenchmarkTraceRoundTrip serializes and reloads a recorded execution.
func BenchmarkTraceRoundTrip(b *testing.B) {
	const n = 64
	inputs := make([]int64, n)
	inputs[0] = 1
	ms := dyndiam.NewMachines(dyndiam.CFlood{}, n, inputs, 1,
		map[string]int64{dyndiam.ExtraDiameter: n - 1})
	tr := &dyndiam.Trace{KeepTopologies: true}
	eng := &dyndiam.Engine{Machines: ms, Adv: dyndiam.StaticAdversary(dyndiam.Ring(n)),
		Workers: 1, Trace: tr, Terminated: dyndiam.NodeDecided(0)}
	if _, err := eng.Run(2 * n); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := dyndiam.WriteTrace(&buf, tr, n); err != nil {
			b.Fatal(err)
		}
		if _, _, err := dyndiam.ReadTrace(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLeaderPhaseBreakdown reports the Section 7 phase counters.
func BenchmarkLeaderPhaseBreakdown(b *testing.B) {
	var phases, rollbacks float64
	for i := 0; i < b.N; i++ {
		pb, err := dyndiam.LeaderPhases(24, 4, uint64(i), nil)
		if err != nil {
			b.Fatal(err)
		}
		phases += float64(pb.WinnerPhases)
		rollbacks += float64(pb.Failures)
	}
	b.ReportMetric(phases/float64(b.N), "winner-phases")
	b.ReportMetric(rollbacks/float64(b.N), "rollbacks")
}
