// Command advsearch searches edge-schedule space for adversarial dynamic
// graphs — the mechanical counterpart of the paper's hand-built
// lower-bound constructions. For each requested protocol it runs the
// configured search (seeded random restarts, greedy edge-rewire local
// search, or mutation/crossover evolution), prints the
// discovered-vs-constructed hardness table, and can freeze its best
// discoveries into the regression corpus that TestCorpusHardness replays.
//
//	go run ./cmd/advsearch -proto cflood_known -n 12 -restarts 4 -steps 16 -seed 7
//
// Everything is a pure function of the seeds: the same flags produce a
// byte-identical table and report at any -workers setting. Long searches
// checkpoint per evaluation batch with -checkpoint FILE (one file per
// protocol, suffixed .<proto>); -resume skips completed work, landing on
// the identical result. -replay NAME re-evaluates one embedded corpus
// entry and verifies its recorded hardness bit for bit; -expect-constructed
// exits non-zero unless the search's best equals the paper construction's
// hardness exactly (the zero-budget CI gate).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"dyndiam/internal/advsearch"
	"dyndiam/internal/cliutil"
	"dyndiam/internal/harness"
)

type options struct {
	protocols  []string
	n          int
	horizon    int
	mode       string
	restarts   int
	steps      int
	pop        int
	extraEdges int
	seed       uint64
	evalBudget int
	top        int

	checkpoint string
	resume     bool
	jsonOut    string
	tableOut   string
	corpusDir  string

	replay            string
	expectConstructed bool
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("advsearch: ")

	var (
		protocols  = flag.String("proto", "all", "comma-separated protocols to search, or \"all\"")
		n          = flag.Int("n", 12, "network size")
		horizon    = flag.Int("horizon", 0, "scripted schedule length in rounds (0 = 2N; later rounds hold the last topology)")
		mode       = flag.String("mode", "greedy", "search strategy: random, greedy, or evolve")
		restarts   = flag.Int("restarts", 4, "independent restarts (0 = zero-budget: evaluate only the paper construction)")
		steps      = flag.Int("steps", 16, "hill-climb steps per restart, or generations in evolve mode")
		pop        = flag.Int("pop", 0, "evolve population size (0 = default)")
		extraEdges = flag.Int("extra-edges", 0, "extra edges beyond a spanning tree in initial random rounds (0 = N/2)")
		seed       = flag.Uint64("seed", 1, "search seed root; all randomness derives from it")
		evalBudget = flag.Int("eval-budget", 200_000, "round budget per candidate evaluation")
		top        = flag.Int("top", 3, "distinct best discoveries to retain per protocol")
		workers    = flag.Int("workers", 0, "concurrent evaluation cells (<1 = GOMAXPROCS); does not change results")
		checkpoint = flag.String("checkpoint", "", "checkpoint search state to this file (suffixed .<proto> per protocol)")
		resume     = flag.Bool("resume", false, "resume from the -checkpoint file, skipping completed work")
		jsonOut    = flag.String("json", "", "write the JSON reports to this file")
		tableOut   = flag.String("table-out", "", "additionally write the hardness table to this file")
		corpusDir  = flag.String("corpus-dir", "", "write the top discoveries as corpus entries into this directory")

		replay            = flag.String("replay", "", "re-evaluate this embedded corpus entry and verify its recorded hardness")
		expectConstructed = flag.Bool("expect-constructed", false, "fail unless the best score equals the constructed baseline's (zero-budget gate)")
	)
	flag.Parse()

	opts := options{
		n: *n, horizon: *horizon, mode: *mode, restarts: *restarts,
		steps: *steps, pop: *pop, extraEdges: *extraEdges, seed: *seed,
		evalBudget: *evalBudget, top: *top,
		checkpoint: *checkpoint, resume: *resume,
		jsonOut: *jsonOut, tableOut: *tableOut, corpusDir: *corpusDir,
		replay: *replay, expectConstructed: *expectConstructed,
	}
	if *protocols == "all" {
		for _, p := range advsearch.Protocols() {
			opts.protocols = append(opts.protocols, string(p))
		}
	} else {
		opts.protocols = cliutil.SplitList(*protocols)
	}

	harness.SetSweepWorkers(*workers)

	if opts.replay != "" {
		if err := runReplay(opts, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := run(opts, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run searches every requested protocol and renders the combined
// hardness table. It is main minus flag parsing and process exit, so
// tests drive it directly.
func run(opts options, stdout io.Writer) error {
	var rows []advsearch.HardnessRow
	var reports []*advsearch.Report
	for _, name := range opts.protocols {
		proto, err := advsearch.ParseProto(name)
		if err != nil {
			return err
		}
		cfg := advsearch.Config{
			Proto: proto, N: opts.n, Horizon: opts.horizon,
			Mode: advsearch.Mode(opts.mode), Restarts: opts.restarts,
			Steps: opts.steps, Pop: opts.pop, ExtraEdges: opts.extraEdges,
			Seed: opts.seed, EvalBudget: opts.evalBudget, Top: opts.top,
		}
		rep, err := searchOne(cfg, opts)
		if err != nil {
			return fmt.Errorf("%s: %v", proto, err)
		}
		reports = append(reports, rep)
		row := advsearch.RowFromReport(rep)
		rows = append(rows, row)
		fmt.Fprintf(stdout, "advsearch: proto=%s n=%d constructed=%d discovered=%d ratio=%.2f origin=%q evals=%d\n",
			row.Proto, row.N, row.ConstructedScore, row.DiscoveredScore,
			float64(row.DiscoveredScore)/float64(row.ConstructedScore), row.Origin, row.Evaluated)
		if opts.expectConstructed && row.DiscoveredScore != row.ConstructedScore {
			return fmt.Errorf("%s: best score %d does not equal the constructed baseline's %d", proto, row.DiscoveredScore, row.ConstructedScore)
		}
		if opts.corpusDir != "" {
			if err := writeCorpus(opts.corpusDir, rep); err != nil {
				return err
			}
		}
	}
	table := advsearch.FormatHardnessTable(rows).String()
	fmt.Fprint(stdout, table)
	if opts.tableOut != "" {
		if err := cliutil.WriteFileAtomic(opts.tableOut, []byte(table), 0o644); err != nil {
			return err
		}
	}
	if opts.jsonOut != "" {
		if err := cliutil.SaveJSON(opts.jsonOut, reports); err != nil {
			return err
		}
	}
	return nil
}

// searchOne runs one protocol's search with checkpointing wired to the
// per-protocol state file.
func searchOne(cfg advsearch.Config, opts options) (*advsearch.Report, error) {
	var st *advsearch.State
	path := ""
	if opts.checkpoint != "" {
		path = fmt.Sprintf("%s.%s", opts.checkpoint, cfg.Proto)
	}
	if path != "" && opts.resume {
		var loaded advsearch.State
		found, err := cliutil.LoadJSON(path, &loaded)
		if err != nil {
			return nil, fmt.Errorf("loading checkpoint %s: %v", path, err)
		}
		if found {
			st = &loaded
		}
	}
	opt := advsearch.Options{}
	if path != "" {
		opt.OnProgress = func(st *advsearch.State) error {
			return cliutil.SaveJSON(path, st)
		}
	}
	return advsearch.Search(cfg, st, opt)
}

// writeCorpus freezes the report's top discoveries as corpus entry
// files, one JSON document per entry.
func writeCorpus(dir string, rep *advsearch.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, e := range advsearch.CorpusEntriesFromReport(rep) {
		if err := cliutil.SaveJSON(filepath.Join(dir, e.Name+".json"), e); err != nil {
			return err
		}
	}
	return nil
}

// runReplay re-evaluates one embedded corpus entry and verifies the
// recorded hardness — the single-candidate analogue of cmd/chaos
// -replay.
func runReplay(opts options, stdout io.Writer) error {
	entries, err := advsearch.LoadCorpus()
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.Name != opts.replay {
			continue
		}
		h, err := advsearch.Evaluate(e.Proto, e.Schedule, e.EvalSeed, e.EvalBudget, nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "advsearch: replay %s proto=%s rounds=%d d=%d done=%v (recorded rounds=%d d=%d)\n",
			e.Name, e.Proto, h.Rounds, h.D, h.Done, e.Hardness.Rounds, e.Hardness.D)
		if h != e.Hardness {
			return fmt.Errorf("replay %s: hardness %+v does not match recorded %+v", e.Name, h, e.Hardness)
		}
		return nil
	}
	return fmt.Errorf("no corpus entry named %q (have %d entries)", opts.replay, len(entries))
}
