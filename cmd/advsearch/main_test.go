package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dyndiam/internal/advsearch"
)

// tinyOpts is a fast single-protocol search the CLI tests share.
func tinyOpts() options {
	return options{
		protocols:  []string{"cflood_known"},
		n:          8,
		mode:       "greedy",
		restarts:   2,
		steps:      3,
		seed:       7,
		evalBudget: 100_000,
		top:        2,
	}
}

func TestRunDeterministicOutput(t *testing.T) {
	var first, second bytes.Buffer
	if err := run(tinyOpts(), &first); err != nil {
		t.Fatal(err)
	}
	if err := run(tinyOpts(), &second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatalf("two identical runs diverged:\n%s\n---\n%s", first.String(), second.String())
	}
	out := first.String()
	for _, want := range []string{
		"advsearch: proto=cflood_known n=8",
		"Adversary synthesis",
		"cflood_known",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunWritesTableAndCorpus(t *testing.T) {
	dir := t.TempDir()
	opts := tinyOpts()
	opts.tableOut = filepath.Join(dir, "table.txt")
	opts.corpusDir = filepath.Join(dir, "corpus")
	var out bytes.Buffer
	if err := run(opts, &out); err != nil {
		t.Fatal(err)
	}
	table, err := os.ReadFile(opts.tableOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), string(table)) {
		t.Fatal("-table-out file is not the table printed to stdout")
	}
	files, err := os.ReadDir(opts.corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("-corpus-dir produced no entries")
	}
	for _, f := range files {
		if !strings.HasPrefix(f.Name(), "cflood_known-s7-") || !strings.HasSuffix(f.Name(), ".json") {
			t.Errorf("unexpected corpus file name %q", f.Name())
		}
	}
}

func TestRunExpectConstructed(t *testing.T) {
	// Zero budget: the only candidate is the construction, so the gate
	// passes by definition.
	opts := tinyOpts()
	opts.restarts = 0
	opts.expectConstructed = true
	var out bytes.Buffer
	if err := run(opts, &out); err != nil {
		t.Fatalf("zero-budget -expect-constructed failed: %v", err)
	}
	// Leader election has real search headroom, so a funded search must
	// trip the gate.
	opts = tinyOpts()
	opts.protocols = []string{"leaderelect"}
	opts.restarts = 4
	opts.steps = 8
	opts.expectConstructed = true
	out.Reset()
	if err := run(opts, &out); err == nil {
		t.Fatal("-expect-constructed passed despite the search beating the construction")
	}
}

func TestRunCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	var direct bytes.Buffer
	if err := run(tinyOpts(), &direct); err != nil {
		t.Fatal(err)
	}
	// A run that checkpointed throughout, then a resume from its final
	// state, must both land on the direct run's bytes.
	opts := tinyOpts()
	opts.checkpoint = filepath.Join(dir, "ckpt")
	var ckpt bytes.Buffer
	if err := run(opts, &ckpt); err != nil {
		t.Fatal(err)
	}
	if ckpt.String() != direct.String() {
		t.Fatal("checkpointed run output differs from direct run")
	}
	if _, err := os.Stat(opts.checkpoint + ".cflood_known"); err != nil {
		t.Fatalf("checkpoint file missing: %v", err)
	}
	opts.resume = true
	var resumed bytes.Buffer
	if err := run(opts, &resumed); err != nil {
		t.Fatal(err)
	}
	if resumed.String() != direct.String() {
		t.Fatal("resumed run output differs from direct run")
	}
}

func TestReplayCorpusEntry(t *testing.T) {
	entries, err := advsearch.LoadCorpus()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("embedded corpus is empty")
	}
	opts := options{replay: entries[0].Name}
	var out bytes.Buffer
	if err := runReplay(opts, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "replay "+entries[0].Name) {
		t.Fatalf("replay output missing entry name: %s", out.String())
	}
	opts.replay = "no-such-entry"
	if err := runReplay(opts, &out); err == nil {
		t.Fatal("replay of a missing entry did not error")
	}
}
