// Command bench captures the repository's tracked performance baseline: it
// runs the headline experiment workloads under testing.Benchmark and writes
// a BENCH_<date>.json file with ns/op, allocs/op, bytes/op, and rounds/s
// for each. Committing the file pins the numbers a change claims to beat.
//
//	go run ./cmd/bench                  # full baseline -> BENCH_<date>.json
//	go run ./cmd/bench -short           # shrunken workloads (CI smoke)
//	go run ./cmd/bench -compare FILE    # per-benchmark deltas vs an old baseline
//
// With -compare, each benchmark prints its ns/op delta against the old
// baseline and the process exits non-zero if any benchmark regressed by
// more than -max-regress percent (default 20) — the regression gate CI
// runs against the committed BENCH_*.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"dyndiam"
)

type benchResult struct {
	Name         string             `json:"name"`
	NsPerOp      float64            `json:"ns_per_op"`
	AllocsPerOp  int64              `json:"allocs_per_op"`
	BytesPerOp   int64              `json:"bytes_per_op"`
	RoundsPerSec float64            `json:"rounds_per_sec,omitempty"`
	Metrics      map[string]float64 `json:"metrics,omitempty"`
}

type baseline struct {
	Date       string        `json:"date"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Short      bool          `json:"short,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")

	var (
		short      = flag.Bool("short", false, "shrink workloads for a smoke run")
		out        = flag.String("out", "", "output path (default BENCH_<date>.json)")
		compare    = flag.String("compare", "", "old baseline JSON to print per-benchmark deltas against")
		maxRegress = flag.Float64("max-regress", 20, "with -compare, exit 1 if any ns/op or rounds/s regresses more than this percent")
		only       = flag.String("only", "", "run only benchmarks whose name contains this substring")
	)
	flag.Parse()

	base := baseline{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Short:      *short,
	}

	for _, bm := range workloads(*short) {
		if *only != "" && !strings.Contains(bm.name, *only) {
			continue
		}
		r := testing.Benchmark(bm.fn)
		res := benchResult{
			Name:        bm.name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if rounds, ok := r.Extra["rounds/op"]; ok && r.NsPerOp() > 0 {
			res.RoundsPerSec = rounds / float64(r.NsPerOp()) * 1e9
		}
		if len(r.Extra) > 0 {
			res.Metrics = map[string]float64{}
			for k, v := range r.Extra {
				res.Metrics[k] = v
			}
		}
		base.Benchmarks = append(base.Benchmarks, res)
		fmt.Printf("%-28s %12.0f ns/op %10d allocs/op %12d B/op", res.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
		if res.RoundsPerSec > 0 {
			fmt.Printf(" %12.0f rounds/s", res.RoundsPerSec)
		}
		fmt.Println()
	}

	path := *out
	if path == "" {
		path = "BENCH_" + base.Date + ".json"
	}
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)

	if *compare != "" {
		worst, err := printComparison(*compare, base)
		if err != nil {
			log.Fatal(err)
		}
		if worst > *maxRegress {
			log.Fatalf("FAIL: worst ns/op regression %.1f%% exceeds -max-regress %.1f%%", worst, *maxRegress)
		}
	}
}

// workloads mirrors the headline bench_test.go benchmarks so the baseline
// file and `go test -bench` track the same quantities, plus an engine
// rounds/s probe. Benchmarks run sequentially-seeded sweeps; the parallel
// variant exercises the sweep worker pool at GOMAXPROCS.
func workloads(short bool) []struct {
	name string
	fn   func(b *testing.B)
} {
	q, leaderN, gapN, ringN := 25, 48, 128, 1024
	gapSizes := []int{64, 96, 128}
	if short {
		q, leaderN, gapN, ringN = 17, 24, 48, 256
		gapSizes = []int{32, 48}
	}
	return []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"Thm6CFloodReduction", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rows, err := dyndiam.CFloodReductionTable([]int{q}, 2, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rows {
					if r.LemmaViolations != 0 {
						b.Fatalf("lemma violations: %d", r.LemmaViolations)
					}
				}
			}
		}},
		{"Thm8LeaderElect", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rows, err := dyndiam.LeaderSweep([]int{leaderN}, 4, 0.9, 150, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				if !rows[0].Correct {
					b.Fatal("wrong leader")
				}
			}
		}},
		// The gap sweeps run a fixed seed: a handful of (seed, N) cells
		// fail diameter certification by construction (e.g. seed 17 at
		// N=96, unchanged since the map-based graph), and a fixed seed
		// also keeps the timed work identical across iterations.
		{"GapTable", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := dyndiam.GapTable([]int{gapN}, 4, 1); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"GapTableParallelSweep", func(b *testing.B) {
			b.ReportAllocs()
			prev := dyndiam.SetSweepWorkers(0) // GOMAXPROCS
			defer dyndiam.SetSweepWorkers(prev)
			for i := 0; i < b.N; i++ {
				if _, err := dyndiam.GapTable(gapSizes, 4, 1); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// RunFlood engages the word-packed fast path here (CFlood machines,
		// no observers): same results as the message path, word-OR cost.
		{"EngineRingFlood", func(b *testing.B) {
			b.ReportAllocs()
			g := dyndiam.Ring(ringN)
			rounds := 0
			for i := 0; i < b.N; i++ {
				inputs := make([]int64, ringN)
				inputs[0] = 1
				ms := dyndiam.NewMachines(dyndiam.CFlood{}, ringN, inputs, uint64(i),
					map[string]int64{dyndiam.ExtraDiameter: int64(ringN / 2)})
				eng := &dyndiam.Engine{
					Machines: ms,
					Adv:      dyndiam.StaticAdversary(g),
					Workers:  1,
				}
				res, err := eng.RunFlood(2*ringN, dyndiam.FloodStopNode(0))
				if err != nil {
					b.Fatal(err)
				}
				if !res.Done {
					b.Fatal("flood did not confirm")
				}
				rounds += res.Rounds
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
		}},
		// The identical workload forced through the per-message round loop:
		// the gap to EngineRingFlood is the fast path's speedup.
		{"EngineRingFloodMsg", func(b *testing.B) {
			b.ReportAllocs()
			g := dyndiam.Ring(ringN)
			rounds := 0
			for i := 0; i < b.N; i++ {
				inputs := make([]int64, ringN)
				inputs[0] = 1
				ms := dyndiam.NewMachines(dyndiam.CFlood{}, ringN, inputs, uint64(i),
					map[string]int64{dyndiam.ExtraDiameter: int64(ringN / 2)})
				eng := &dyndiam.Engine{
					Machines:   ms,
					Adv:        dyndiam.StaticAdversary(g),
					Workers:    1,
					Terminated: dyndiam.NodeDecided(0),
				}
				res, err := eng.Run(2 * ringN)
				if err != nil {
					b.Fatal(err)
				}
				rounds += res.Rounds
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
		}},
		// Million-node-class probe: CFLOOD over a delta-encoded churn
		// network. The adversary ships O(rewires) edge ops per round against
		// one mutable CSR snapshot; the fast path never materializes a
		// second graph. The persistent spanning tree (diameter O(log N))
		// makes D=256 a safe known bound, so the run is 256 rounds.
		{"EngineHugeN", func(b *testing.B) {
			b.ReportAllocs()
			hugeN := 100_000
			if short {
				hugeN = 20_000
			}
			const hugeD = 256
			rounds := 0
			for i := 0; i < b.N; i++ {
				inputs := make([]int64, hugeN)
				inputs[0] = 1
				ms := dyndiam.NewMachines(dyndiam.CFlood{}, hugeN, inputs, uint64(i),
					map[string]int64{dyndiam.ExtraDiameter: hugeD})
				eng := &dyndiam.Engine{
					Machines: ms,
					Adv:      dyndiam.DeltaChurnAdversary(hugeN, hugeN/8, hugeN/64, uint64(i)),
					Workers:  1,
				}
				res, err := eng.RunFlood(2*hugeD, dyndiam.FloodStopNode(0))
				if err != nil {
					b.Fatal(err)
				}
				if !res.Done {
					b.Fatal("flood did not confirm")
				}
				for _, m := range ms {
					if !dyndiam.Informed(m) {
						b.Fatal("confirmed before everyone was informed")
					}
				}
				rounds += res.Rounds
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
		}},
		// The same workload with a ring event sink and a metrics registry
		// attached: the gap to EngineRingFlood is the observer overhead
		// the "zero when off, bounded when on" contract bounds.
		{"EngineRingFloodObserved", func(b *testing.B) {
			b.ReportAllocs()
			g := dyndiam.Ring(ringN)
			sink := dyndiam.NewObsRing(1 << 16)
			rounds := 0
			var events int64
			for i := 0; i < b.N; i++ {
				sink.Reset()
				inputs := make([]int64, ringN)
				inputs[0] = 1
				ms := dyndiam.NewMachines(dyndiam.CFlood{}, ringN, inputs, uint64(i),
					map[string]int64{dyndiam.ExtraDiameter: int64(ringN / 2)})
				eng := &dyndiam.Engine{
					Machines:   ms,
					Adv:        dyndiam.StaticAdversary(g),
					Workers:    1,
					Terminated: dyndiam.NodeDecided(0),
					Obs:        sink,
					Metrics:    dyndiam.NewMetricsRegistry(),
				}
				res, err := eng.Run(2 * ringN)
				if err != nil {
					b.Fatal(err)
				}
				rounds += res.Rounds
				events += int64(sink.Len()) + int64(sink.Dropped())
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
			b.ReportMetric(float64(events)/float64(b.N), "events/op")
		}},
		// EngineRingFlood with observers attached: since obs v2 the fast
		// path accepts a sink and emits round aggregates instead of
		// declining, so the gap to EngineRingFlood is the fast path's
		// observation overhead, and the gap to EngineRingFloodObserved is
		// the speedup observed runs keep. The floodfast-runs counter
		// proves every iteration really took the fast path.
		{"EngineRingFloodObservedFast", func(b *testing.B) {
			b.ReportAllocs()
			g := dyndiam.Ring(ringN)
			sink := dyndiam.NewObsRing(1 << 16)
			reg := dyndiam.NewMetricsRegistry()
			rounds := 0
			var events int64
			for i := 0; i < b.N; i++ {
				sink.Reset()
				inputs := make([]int64, ringN)
				inputs[0] = 1
				ms := dyndiam.NewMachines(dyndiam.CFlood{}, ringN, inputs, uint64(i),
					map[string]int64{dyndiam.ExtraDiameter: int64(ringN / 2)})
				eng := &dyndiam.Engine{
					Machines: ms,
					Adv:      dyndiam.StaticAdversary(g),
					Workers:  1,
					Obs:      sink,
					Metrics:  reg,
				}
				res, err := eng.RunFlood(2*ringN, dyndiam.FloodStopNode(0))
				if err != nil {
					b.Fatal(err)
				}
				if !res.Done {
					b.Fatal("flood did not confirm")
				}
				rounds += res.Rounds
				events += int64(sink.Len()) + int64(sink.Dropped())
			}
			for _, p := range reg.Snapshot() {
				if p.Name == "engine_floodfast_runs_total" && p.Value != int64(b.N) {
					b.Fatalf("fast path ran %d of %d iterations (silent fallback)", p.Value, b.N)
				}
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
			b.ReportMetric(float64(events)/float64(b.N), "events/op")
		}},
	}
}

// printComparison prints each current benchmark against the old baseline
// and returns the worst ns/op regression as a percentage (0 when nothing
// regressed). Benchmarks absent from the old baseline (for example newly
// added workloads) are reported but never gate.
func printComparison(oldPath string, cur baseline) (worst float64, err error) {
	data, err := os.ReadFile(oldPath)
	if err != nil {
		return 0, err
	}
	var old baseline
	if err := json.Unmarshal(data, &old); err != nil {
		return 0, err
	}
	if old.Short != cur.Short {
		fmt.Printf("warning: comparing short=%v against short=%v workloads\n", cur.Short, old.Short)
	}
	prev := map[string]benchResult{}
	for _, r := range old.Benchmarks {
		prev[r.Name] = r
	}
	fmt.Printf("vs %s (%s):\n", oldPath, old.Date)
	for _, r := range cur.Benchmarks {
		p, ok := prev[r.Name]
		if !ok {
			fmt.Printf("  %-28s (new, no baseline)\n", r.Name)
			continue
		}
		if r.NsPerOp == 0 || p.NsPerOp == 0 {
			continue
		}
		delta := (r.NsPerOp - p.NsPerOp) / p.NsPerOp * 100
		if delta > worst {
			worst = delta
		}
		fmt.Printf("  %-28s %+7.1f%% ns/op (%.0f -> %.0f), allocs %d -> %d",
			r.Name, delta, p.NsPerOp, r.NsPerOp, p.AllocsPerOp, r.AllocsPerOp)
		// Throughput benchmarks also gate on rounds/s: a drop is a
		// regression even when ns/op moved for benign reasons (e.g. a
		// workload now finishing in fewer, slower rounds would hide there).
		if r.RoundsPerSec > 0 && p.RoundsPerSec > 0 {
			rpsDrop := (p.RoundsPerSec - r.RoundsPerSec) / p.RoundsPerSec * 100
			if rpsDrop > worst {
				worst = rpsDrop
			}
			fmt.Printf(", rounds/s %.0f -> %.0f", p.RoundsPerSec, r.RoundsPerSec)
		}
		fmt.Println()
	}
	return worst, nil
}
