// Command chaos runs a deterministic fault grid over the paper's
// protocols and reports graceful degradation: for each protocol and each
// fault dimension it sweeps a list of fault rates, estimating the error
// rate at each point with a 95% Wilson interval.
//
//	go run ./cmd/chaos -n 24 -trials 20 -rates 0,0.01,0.05,0.2
//
// Output is a plain-text degradation table per protocol on stdout and,
// with -json FILE, a machine-readable report. Both are deterministic:
// the same flags and seed produce byte-identical output (fault schedules
// are pure functions of the seed; nothing is timestamped). The only
// machine-dependent escape hatch is -cell-budget, which abandons trials
// that exceed a wall-clock budget — off by default.
//
// The zero rate anchors the grid: it runs the exact clean path (no fault
// plan at all), and chaos cross-checks the leader protocol's zero-fault
// row against the clean LeaderReliability baseline, exiting non-zero if
// they disagree — a regression gate proving fault injection costs nothing
// when off.
//
// Long grids checkpoint per grid point with -checkpoint FILE; -resume
// skips points already recorded there, so an interrupted grid re-runs
// only its unfinished points.
//
// -replay re-runs one faulty trial of one grid point in isolation (same
// seeds, same fault schedule) with observability attached: -obs-out
// writes its event stream as JSONL, -trace-out as Chrome trace-event
// JSON for Perfetto, -metrics-out the fault counters as Prometheus text.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"dyndiam"
	"dyndiam/internal/cliutil"
)

type options struct {
	n, diam, trials int
	seed            uint64
	rates           []float64
	dims            []string
	protocols       []string
	budget          int
	cellBudget      time.Duration
	jsonOut         string
	checkpoint      string
	resume          bool

	replay      int // trial index, -1 = off
	replayProto string
	replayDim   string
	replayRate  float64
	obsOut      string
	traceOut    string
	metricsOut  string
}

// jsonFailure is one non-OK cell in the JSON report.
type jsonFailure struct {
	Trial   int    `json:"trial"`
	Outcome string `json:"outcome"`
	Err     string `json:"err"`
}

// jsonRow is one grid point. Fields are value-deterministic: same flags
// and seed yield byte-identical JSON.
type jsonRow struct {
	Protocol  string        `json:"protocol"`
	Dim       string        `json:"dim"`
	Rate      float64       `json:"rate"`
	Label     string        `json:"label"`
	Trials    int           `json:"trials"`
	Errors    int           `json:"errors"`
	ErrorRate float64       `json:"error_rate"`
	WilsonLo  float64       `json:"wilson_lo"`
	WilsonHi  float64       `json:"wilson_hi"`
	Rounds    jsonSummary   `json:"rounds"`
	Failures  []jsonFailure `json:"failures,omitempty"`
}

type jsonSummary struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
}

type report struct {
	N      int       `json:"n"`
	Diam   int       `json:"diam"`
	Trials int       `json:"trials"`
	Seed   uint64    `json:"seed"`
	Rows   []jsonRow `json:"rows"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("chaos: ")

	var (
		n          = flag.Int("n", 24, "network size")
		diam       = flag.Int("diam", 4, "target dynamic diameter of the adversary family")
		trials     = flag.Int("trials", 20, "trials per grid point")
		seed       = flag.Uint64("seed", 1, "fault-plan seed root")
		rates      = flag.String("rates", "0,0.01,0.05,0.2", "comma-separated fault rates (include 0 for the clean anchor)")
		dims       = flag.String("dims", "drop,dup,corrupt,crash,edgecut", "comma-separated fault dimensions")
		protocols  = flag.String("protocols", "leader,cflood", "comma-separated protocols (leader, cflood)")
		budget     = flag.Int("budget", 200_000, "round budget per trial before structured non-termination (<1 = harness default)")
		cellBudget = flag.Duration("cell-budget", 0, "wall-clock budget per trial (0 = unlimited; overruns are machine-dependent)")
		jsonOut    = flag.String("json", "", "write the JSON report to this file")
		checkpoint = flag.String("checkpoint", "", "write per-grid-point checkpoints to this file")
		resume     = flag.Bool("resume", false, "skip grid points already in the -checkpoint file")

		replay      = flag.Int("replay", -1, "replay this trial of one grid point in isolation (needs -replay-dim/-replay-rate)")
		replayProto = flag.String("replay-protocol", "leader", "protocol of the replayed trial")
		replayDim   = flag.String("replay-dim", "drop", "fault dimension of the replayed trial")
		replayRate  = flag.Float64("replay-rate", 0.05, "fault rate of the replayed trial")
		obsOut      = flag.String("obs-out", "", "replay: write the event stream as JSONL to this file")
		traceOut    = flag.String("trace-out", "", "replay: write Chrome trace-event JSON to this file")
		metricsOut  = flag.String("metrics-out", "", "replay: write metrics as Prometheus text to this file")
		workers     = flag.Int("workers", 0, "concurrent trials per grid point (<1 = GOMAXPROCS); does not change results")
	)
	flag.Parse()

	opts := options{
		n: *n, diam: *diam, trials: *trials, seed: *seed,
		budget: *budget, cellBudget: *cellBudget,
		jsonOut: *jsonOut, checkpoint: *checkpoint, resume: *resume,
		replay: *replay, replayProto: *replayProto, replayDim: *replayDim,
		replayRate: *replayRate, obsOut: *obsOut, traceOut: *traceOut,
		metricsOut: *metricsOut,
	}
	var err error
	if opts.rates, err = parseRates(*rates); err != nil {
		log.Fatal(err)
	}
	opts.dims = splitList(*dims)
	opts.protocols = splitList(*protocols)
	for _, d := range opts.dims {
		if _, err := specFor(d, 0.5); err != nil {
			log.Fatal(err)
		}
	}
	for _, p := range opts.protocols {
		if p != "leader" && p != "cflood" {
			log.Fatalf("unknown protocol %q (want leader or cflood)", p)
		}
	}

	dyndiam.SetSweepWorkers(*workers)
	dyndiam.SetRoundBudget(opts.budget)

	if opts.replay >= 0 {
		if err := runReplay(opts); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := runGrid(opts); err != nil {
		log.Fatal(err)
	}
}

// splitList and specFor delegate to the shared helpers (cliutil, the
// harness fault vocabulary); parseRates adds the chaos-specific rule
// that an empty rate list is an error rather than a default.
func splitList(s string) []string { return cliutil.SplitList(s) }

func parseRates(s string) ([]float64, error) {
	out, err := cliutil.ParseFloats(s)
	if err != nil {
		return nil, fmt.Errorf("bad rate: %v", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no fault rates given")
	}
	return out, nil
}

// specFor builds the single-dimension fault spec of one grid point.
func specFor(dim string, rate float64) (dyndiam.FaultSpec, error) {
	return dyndiam.FaultSpecFor(dim, rate)
}

// gridPoint is one (protocol, dim, rate) cell of the chaos grid. The zero
// rate collapses every dimension onto the same clean run, so it appears
// once per protocol under dim "none".
type gridPoint struct {
	protocol string
	dim      string
	rate     float64
}

func (g gridPoint) key() string {
	return g.protocol + "|" + g.dim + "|" + strconv.FormatFloat(g.rate, 'g', -1, 64)
}

// gridPoints expands the flag grid in deterministic order: per protocol,
// the clean anchor first (if rate 0 was requested), then dims × rates.
func gridPoints(opts options) []gridPoint {
	var pts []gridPoint
	for _, proto := range opts.protocols {
		hasZero := false
		for _, r := range opts.rates {
			if r == 0 {
				hasZero = true
			}
		}
		if hasZero {
			pts = append(pts, gridPoint{protocol: proto, dim: "none", rate: 0})
		}
		for _, dim := range opts.dims {
			for _, r := range opts.rates {
				if r == 0 {
					continue
				}
				pts = append(pts, gridPoint{protocol: proto, dim: dim, rate: r})
			}
		}
	}
	return pts
}

func runPoint(opts options, pt gridPoint) (jsonRow, error) {
	// The anchor point ("none", rate 0) yields the zero Spec, which the
	// sweep compiles to no fault plan at all.
	spec, err := specFor(pt.dim, pt.rate)
	if err != nil {
		return jsonRow{}, err
	}
	cfg := dyndiam.DegradationConfig{
		N: opts.n, TargetDiam: opts.diam, Trials: opts.trials,
		Seed: opts.seed, Specs: []dyndiam.FaultSpec{spec},
		CellBudget: opts.cellBudget,
	}
	var rows []dyndiam.DegradationRow
	switch pt.protocol {
	case "leader":
		rows, err = dyndiam.LeaderDegradation(cfg)
	case "cflood":
		rows, err = dyndiam.CFloodDegradation(cfg)
	}
	if err != nil {
		return jsonRow{}, fmt.Errorf("%s: %v", pt.key(), err)
	}
	r := rows[0]
	jr := jsonRow{
		Protocol: pt.protocol, Dim: pt.dim, Rate: pt.rate, Label: r.Label,
		Trials: r.Trials, Errors: r.Errors, ErrorRate: r.ErrorRate,
		WilsonLo: r.WilsonLo, WilsonHi: r.WilsonHi,
		Rounds: jsonSummary{
			N: r.Rounds.N, Mean: r.Rounds.Mean, Std: r.Rounds.Std,
			Min: r.Rounds.Min, Max: r.Rounds.Max, P50: r.Rounds.P50, P90: r.Rounds.P90,
		},
	}
	for _, f := range r.CellFailures {
		jr.Failures = append(jr.Failures, jsonFailure{
			Trial: f.Cell, Outcome: f.Outcome.String(), Err: f.Err.Error(),
		})
	}
	return jr, nil
}

// checkpointFile is the on-disk resume state: completed grid points by key.
type checkpointFile struct {
	Rows map[string]jsonRow `json:"rows"`
}

func loadCheckpoint(path string) (checkpointFile, error) {
	cp := checkpointFile{Rows: map[string]jsonRow{}}
	if _, err := cliutil.LoadJSON(path, &cp); err != nil {
		return cp, err
	}
	if cp.Rows == nil {
		cp.Rows = map[string]jsonRow{}
	}
	return cp, nil
}

func saveCheckpoint(path string, cp checkpointFile) error {
	return cliutil.SaveJSON(path, cp)
}

func runGrid(opts options) error {
	pts := gridPoints(opts)
	cp := checkpointFile{Rows: map[string]jsonRow{}}
	if opts.checkpoint != "" && opts.resume {
		var err error
		if cp, err = loadCheckpoint(opts.checkpoint); err != nil {
			return err
		}
	}

	rep := report{N: opts.n, Diam: opts.diam, Trials: opts.trials, Seed: opts.seed}
	for _, pt := range pts {
		row, done := cp.Rows[pt.key()]
		if done {
			fmt.Printf("%-28s resumed from checkpoint\n", pt.key())
		} else {
			var err error
			if row, err = runPoint(opts, pt); err != nil {
				return err
			}
			cp.Rows[pt.key()] = row
			if opts.checkpoint != "" {
				if err := saveCheckpoint(opts.checkpoint, cp); err != nil {
					return err
				}
			}
			fmt.Printf("%-28s errors %d/%d\n", pt.key(), row.Errors, row.Trials)
		}
		rep.Rows = append(rep.Rows, row)
	}

	fmt.Println()
	printTables(rep)

	if opts.jsonOut != "" {
		if err := cliutil.SaveJSON(opts.jsonOut, rep); err != nil {
			return err
		}
		fmt.Printf("json report -> %s\n", opts.jsonOut)
	}

	return gate(opts, rep)
}

// printTables renders one degradation table per protocol from report rows.
func printTables(rep report) {
	byProto := map[string][]jsonRow{}
	var order []string
	for _, r := range rep.Rows {
		if _, ok := byProto[r.Protocol]; !ok {
			order = append(order, r.Protocol)
		}
		byProto[r.Protocol] = append(byProto[r.Protocol], r)
	}
	for _, proto := range order {
		t := &dyndiam.ResultTable{
			Caption: fmt.Sprintf("%s degradation: error rate vs fault rate (95%% Wilson)", proto),
			Header:  []string{"dim", "rate", "trials", "errors", "rate", "wilson95", "mean rounds", "failures"},
		}
		for _, r := range byProto[proto] {
			t.Add(r.Dim, r.Rate, r.Trials, r.Errors,
				fmt.Sprintf("%.4f", r.ErrorRate),
				fmt.Sprintf("[%.4f,%.4f]", r.WilsonLo, r.WilsonHi),
				fmt.Sprintf("%.1f", r.Rounds.Mean), len(r.Failures))
		}
		t.Fprint(os.Stdout)
		fmt.Println()
	}
}

// gate cross-checks the leader protocol's zero-fault row against the
// clean LeaderReliability baseline — same N, diameter, trials, and trial
// seeds, no fault machinery at all. Any disagreement means the injection
// layer is not free when off; chaos exits non-zero.
func gate(opts options, rep report) error {
	var zero *jsonRow
	for i := range rep.Rows {
		if rep.Rows[i].Protocol == "leader" && rep.Rows[i].Rate == 0 {
			zero = &rep.Rows[i]
			break
		}
	}
	if zero == nil {
		return nil // no clean leader anchor in this grid
	}
	clean, err := dyndiam.LeaderReliability(opts.n, opts.diam, opts.trials, nil)
	if err != nil {
		return fmt.Errorf("gate: clean baseline failed: %v", err)
	}
	ok := zero.Errors == clean.Errors &&
		zero.Trials == clean.Trials &&
		len(zero.Failures) == 0 &&
		zero.Rounds.N == clean.Rounds.N &&
		zero.Rounds.Mean == clean.Rounds.Mean &&
		zero.Rounds.Max == clean.Rounds.Max
	if !ok {
		return fmt.Errorf("gate: zero-fault leader row (errors %d/%d, rounds mean %.2f, %d cell failures) regresses vs clean baseline (errors %d/%d, rounds mean %.2f)",
			zero.Errors, zero.Trials, zero.Rounds.Mean, len(zero.Failures),
			clean.Errors, clean.Trials, clean.Rounds.Mean)
	}
	fmt.Printf("gate: zero-fault leader row matches clean baseline (errors %d/%d, rounds mean %.2f)\n",
		clean.Errors, clean.Trials, clean.Rounds.Mean)
	return nil
}

// runReplay re-runs one trial of one grid point with observability
// attached, using exactly the seeds the grid used: the protocol and
// adversary seed from ReliabilityTrialSeed(trial) and the fault-plan seed
// from FaultTrialSeed(seed, 0, trial).
func runReplay(opts options) error {
	spec, err := specFor(opts.replayDim, opts.replayRate)
	if err != nil {
		return err
	}
	var plan *dyndiam.FaultPlan
	if opts.replayRate != 0 {
		spec.Seed = dyndiam.FaultTrialSeed(opts.seed, 0, opts.replay)
		if plan, err = dyndiam.NewFaultPlan(spec); err != nil {
			return err
		}
	}
	trialSeed := dyndiam.ReliabilityTrialSeed(opts.replay)
	adv := dyndiam.BoundedDiameterAdversary(opts.n, opts.diam, opts.n/2, trialSeed)

	var proto dyndiam.Protocol
	inputs := make([]int64, opts.n)
	horizon := dyndiam.RoundBudget()
	var terminated func([]dyndiam.Machine) bool
	switch opts.replayProto {
	case "leader":
		proto = dyndiam.LeaderElect{}
	case "cflood":
		proto = dyndiam.CFlood{}
		inputs[0] = 1
		horizon = 4 * opts.n
		terminated = dyndiam.NodeDecided(0)
	default:
		return fmt.Errorf("unknown replay protocol %q", opts.replayProto)
	}

	ring := dyndiam.NewObsRing(1 << 20)
	reg := dyndiam.NewMetricsRegistry()
	ms := dyndiam.NewMachines(proto, opts.n, inputs, trialSeed, nil)
	e := &dyndiam.Engine{
		Machines: ms, Adv: adv, Workers: 1,
		Obs: ring, Metrics: reg, Plan: plan, Terminated: terminated,
	}
	// The sweep runs every trial in a guarded cell, so a trial recorded
	// as "panicked" is one whose protocol panics under these faults —
	// replaying it must survive the same panic and still export the
	// events captured up to it, or the failures most worth debugging
	// would be the only ones replay can't show.
	res, err := func() (res *dyndiam.Result, err error) {
		defer func() {
			if v := recover(); v != nil {
				err = fmt.Errorf("trial panicked (recorded as a cell failure in the grid): %v", v)
			}
		}()
		return e.Run(horizon)
	}()
	switch {
	case err != nil:
		fmt.Printf("replay %s trial %d (%s): %v; %d events captured (%d dropped)\n",
			opts.replayProto, opts.replay, spec.Label(), err, ring.Len(), ring.Dropped())
	default:
		fmt.Printf("replay %s trial %d (%s): rounds %d, done %v, %d events (%d dropped)\n",
			opts.replayProto, opts.replay, spec.Label(), res.Rounds, res.Done, ring.Len(), ring.Dropped())
	}

	writeTo := func(path string, write func(f *os.File) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := writeTo(opts.obsOut, func(f *os.File) error {
		return dyndiam.WriteEventsJSONL(f, ring.Events())
	}); err != nil {
		return err
	}
	if err := writeTo(opts.traceOut, func(f *os.File) error {
		return dyndiam.WriteChromeTrace(f, ring.Events())
	}); err != nil {
		return err
	}
	return writeTo(opts.metricsOut, func(f *os.File) error {
		return dyndiam.WriteMetricsText(f, reg)
	})
}
