package main

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dyndiam"
)

func TestGridPointsOrderAndCollapse(t *testing.T) {
	opts := options{
		protocols: []string{"leader", "cflood"},
		dims:      []string{"drop", "crash"},
		rates:     []float64{0, 0.1, 0.3},
	}
	got := gridPoints(opts)
	want := []gridPoint{
		{"leader", "none", 0},
		{"leader", "drop", 0.1}, {"leader", "drop", 0.3},
		{"leader", "crash", 0.1}, {"leader", "crash", 0.3},
		{"cflood", "none", 0},
		{"cflood", "drop", 0.1}, {"cflood", "drop", 0.3},
		{"cflood", "crash", 0.1}, {"cflood", "crash", 0.3},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("grid:\ngot  %v\nwant %v", got, want)
	}
	// Without a zero rate there is no clean anchor row.
	opts.rates = []float64{0.1}
	for _, pt := range gridPoints(opts) {
		if pt.dim == "none" {
			t.Errorf("unexpected anchor row %v without a zero rate", pt)
		}
	}
}

func TestSpecFor(t *testing.T) {
	cases := map[string]func(dyndiam.FaultSpec) float64{
		"drop":    func(s dyndiam.FaultSpec) float64 { return s.Drop },
		"dup":     func(s dyndiam.FaultSpec) float64 { return s.Dup },
		"corrupt": func(s dyndiam.FaultSpec) float64 { return s.Corrupt },
		"crash":   func(s dyndiam.FaultSpec) float64 { return s.Crash },
		"edgecut": func(s dyndiam.FaultSpec) float64 { return s.EdgeCut },
	}
	for _, dim := range []string{"drop", "dup", "corrupt", "crash", "edgecut"} {
		s, err := specFor(dim, 0.25)
		if err != nil {
			t.Fatalf("%s: %v", dim, err)
		}
		if got := cases[dim](s); got != 0.25 {
			t.Errorf("%s: rate landed on the wrong field (%+v)", dim, s)
		}
	}
	if _, err := specFor("gamma-rays", 0.1); err == nil {
		t.Error("unknown dimension accepted")
	}
	// The grid's clean anchor: dimension "none" at rate 0 is the zero Spec.
	if s, err := specFor("none", 0); err != nil || !s.Zero() {
		t.Errorf("none/0 = (%+v, %v), want zero Spec", s, err)
	}
	if _, err := specFor("none", 0.1); err == nil {
		t.Error("none at a positive rate accepted")
	}
}

func TestCheckpointRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chaos.ckpt")
	cp := checkpointFile{Rows: map[string]jsonRow{
		"leader|drop|0.1": {Protocol: "leader", Dim: "drop", Rate: 0.1, Trials: 5, Errors: 2,
			Failures: []jsonFailure{{Trial: 3, Outcome: "failed", Err: "boom"}}},
	}}
	if err := saveCheckpoint(path, cp); err != nil {
		t.Fatal(err)
	}
	got, err := loadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cp) {
		t.Errorf("roundtrip:\ngot  %+v\nwant %+v", got, cp)
	}
	// Missing file is an empty, usable checkpoint.
	empty, err := loadCheckpoint(filepath.Join(t.TempDir(), "missing"))
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Rows) != 0 || empty.Rows == nil {
		t.Errorf("missing checkpoint: %+v", empty)
	}
	// Corrupt files fail loudly instead of silently restarting the grid.
	bad := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCheckpoint(bad); err == nil {
		t.Error("corrupt checkpoint loaded")
	}
}

// TestRunPointDeterministic: the same grid point computed twice yields
// deep-equal rows, and the clean anchor matches the reliability baseline —
// the property the chaos gate enforces end to end.
func TestRunPointDeterministic(t *testing.T) {
	prev := dyndiam.SetRoundBudget(100_000)
	defer dyndiam.SetRoundBudget(prev)
	opts := options{n: 12, diam: 3, trials: 2, seed: 1}
	for _, pt := range []gridPoint{
		{"leader", "none", 0},
		{"cflood", "drop", 0.3},
	} {
		a, err := runPoint(opts, pt)
		if err != nil {
			t.Fatalf("%s: %v", pt.key(), err)
		}
		b, err := runPoint(opts, pt)
		if err != nil {
			t.Fatalf("%s: %v", pt.key(), err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: nondeterministic row\n%+v\n%+v", pt.key(), a, b)
		}
	}
}

func TestParseRatesAndSplitList(t *testing.T) {
	rates, err := parseRates(" 0, 0.05 ,0.2 ")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rates, []float64{0, 0.05, 0.2}) {
		t.Errorf("rates = %v", rates)
	}
	if _, err := parseRates("0.1,zebra"); err == nil {
		t.Error("bad rate accepted")
	}
	if _, err := parseRates(" , "); err == nil {
		t.Error("empty rate list accepted")
	}
	if got := splitList("a, ,b ,"); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("splitList = %v", got)
	}
}
