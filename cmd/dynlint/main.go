// Command dynlint runs the repository's model-invariant analyzers
// (internal/lint) over the module and reports findings with file:line
// positions.
//
// Exit code contract: 0 on a clean tree (or after -write-baseline), 1
// when any finding is reported, 2 on usage or load errors (bad flags,
// unknown rule names, unmatched patterns, unreadable baseline).
//
// Usage:
//
//	dynlint [-list] [-rules a,b] [-sarif file] [-baseline file] [-write-baseline file] [patterns...]
//
// Each pattern is a directory or a Go-style recursive pattern ("./...",
// "dir/..."). With no patterns, "./..." is linted. All matched packages
// are loaded as one module (each package type-checked exactly once, with
// module-internal dependencies pulled in automatically), so the
// whole-module rules — hotpathalloc, puritytaint — see the complete call
// graph, not one package at a time.
//
// Flags:
//
//	-list            print the full rule set (one line per rule) and exit
//	-rules a,b       run only the named rules (staleallow included only
//	                 when named; it never misjudges escapes for rules
//	                 that did not run)
//	-sarif file      additionally write findings as SARIF 2.1.0
//	-baseline file   drop findings recorded in the baseline (ratchet)
//	-write-baseline file   record current findings as the baseline, exit 0
//
// Suppress an individual finding with a comment on the flagged line or
// standalone on the line above:
//
//	//lint:allow <rule>[,<rule>...] <reason>
//
// For the whole-module rules an allow on a call-site line also prunes
// the call-graph edges leaving that line. The staleallow check reports
// directives that suppress nothing.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"dyndiam/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable driver body: it returns the process exit code and
// writes findings to stdout, diagnostics to stderr.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dynlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list rules instead of linting")
	rulesFlag := fs.String("rules", "", "comma-separated subset of rules to run")
	sarifPath := fs.String("sarif", "", "write findings as SARIF 2.1.0 to this file")
	baselinePath := fs.String("baseline", "", "drop findings recorded in this baseline file")
	writeBaseline := fs.String("write-baseline", "", "record current findings to this baseline file and exit 0")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.DefaultAnalyzers()
	modAnalyzers := lint.DefaultModuleAnalyzers()
	rules := lint.AllRules(analyzers, modAnalyzers)
	if *list {
		for _, r := range rules {
			fmt.Fprintf(stdout, "%-18s %s\n", r.Name, r.Doc)
		}
		return 0
	}

	opts := lint.ModuleRunOptions{}
	if *rulesFlag != "" {
		known := map[string]bool{}
		for _, r := range rules {
			known[r.Name] = true
		}
		opts.Rules = map[string]bool{}
		for _, name := range strings.Split(*rulesFlag, ",") {
			name = strings.TrimSpace(name)
			if !known[name] {
				var names []string
				for _, r := range rules {
					names = append(names, r.Name)
				}
				sort.Strings(names)
				fmt.Fprintf(stderr, "dynlint: unknown rule %q (known: %s)\n", name, strings.Join(names, ", "))
				return 2
			}
			opts.Rules[name] = true
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := resolvePatterns(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "dynlint: %v\n", err)
		return 2
	}
	if len(dirs) == 0 {
		fmt.Fprintf(stderr, "dynlint: no packages matched %v\n", patterns)
		return 2
	}
	loader, err := lint.NewLoader(dirs[0])
	if err != nil {
		fmt.Fprintf(stderr, "dynlint: %v\n", err)
		return 2
	}
	start := time.Now()
	mod, err := loader.LoadModule(dirs)
	if err != nil {
		fmt.Fprintf(stderr, "dynlint: %v\n", err)
		return 2
	}
	findings := lint.RunModule(mod, analyzers, modAnalyzers, opts)
	fmt.Fprintf(stderr, "dynlint: linted %d packages (%d loaded) in %v\n",
		len(mod.Pkgs), len(mod.All()), time.Since(start).Round(time.Millisecond))

	if *writeBaseline != "" {
		if err := lint.WriteBaseline(*writeBaseline, loader.ModRoot, findings); err != nil {
			fmt.Fprintf(stderr, "dynlint: writing baseline: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "dynlint: recorded %d finding(s) to %s\n", len(findings), *writeBaseline)
		return 0
	}
	if *baselinePath != "" {
		findings, err = lint.FilterBaseline(*baselinePath, loader.ModRoot, findings)
		if err != nil {
			fmt.Fprintf(stderr, "dynlint: reading baseline: %v\n", err)
			return 2
		}
	}
	if *sarifPath != "" {
		out, err := lint.SARIF(loader.ModRoot, rules, findings)
		if err == nil {
			err = os.WriteFile(*sarifPath, out, 0o644)
		}
		if err != nil {
			fmt.Fprintf(stderr, "dynlint: writing SARIF: %v\n", err)
			return 2
		}
	}

	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "dynlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// resolvePatterns expands "..."-suffixed patterns into package
// directories and passes plain directories through.
func resolvePatterns(patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	for _, p := range patterns {
		if rest, ok := strings.CutSuffix(p, "..."); ok {
			root := filepath.Clean(strings.TrimSuffix(rest, string(filepath.Separator)+""))
			if root == "" || rest == "" {
				root = "."
			}
			sub, err := lint.PackageDirs(root)
			if err != nil {
				return nil, err
			}
			for _, d := range sub {
				if !seen[d] {
					seen[d] = true
					dirs = append(dirs, d)
				}
			}
			continue
		}
		d := filepath.Clean(p)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	return dirs, nil
}
