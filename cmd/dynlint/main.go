// Command dynlint runs the repository's model-invariant analyzers
// (internal/lint) over the module and reports findings with file:line
// positions. It exits 1 when any finding is reported, 2 on usage or
// internal errors, and 0 on a clean tree.
//
// Usage:
//
//	dynlint [-list] [patterns...]
//
// Each pattern is a directory or a Go-style recursive pattern ("./...",
// "dir/..."). With no patterns, "./..." is linted. The -list flag prints
// the rule set and each rule's scope instead of linting.
//
// Suppress an individual finding with a trailing or preceding comment:
//
//	//lint:allow <rule> <reason>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"dyndiam/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable driver body: it returns the process exit code and
// writes findings to stdout, diagnostics to stderr.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dynlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list rules and scopes instead of linting")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := resolvePatterns(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "dynlint: %v\n", err)
		return 2
	}
	if len(dirs) == 0 {
		fmt.Fprintf(stderr, "dynlint: no packages matched %v\n", patterns)
		return 2
	}
	loader, err := lint.NewLoader(dirs[0])
	if err != nil {
		fmt.Fprintf(stderr, "dynlint: %v\n", err)
		return 2
	}
	total := 0
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintf(stderr, "dynlint: %s: %v\n", dir, err)
			return 2
		}
		for _, f := range lint.RunAll(analyzers, pkg) {
			fmt.Fprintln(stdout, f)
			total++
		}
	}
	if total > 0 {
		fmt.Fprintf(stderr, "dynlint: %d finding(s)\n", total)
		return 1
	}
	return 0
}

// resolvePatterns expands "..."-suffixed patterns into package
// directories and passes plain directories through.
func resolvePatterns(patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	for _, p := range patterns {
		if rest, ok := strings.CutSuffix(p, "..."); ok {
			root := filepath.Clean(strings.TrimSuffix(rest, string(filepath.Separator)+""))
			if root == "" || rest == "" {
				root = "."
			}
			sub, err := lint.PackageDirs(root)
			if err != nil {
				return nil, err
			}
			for _, d := range sub {
				if !seen[d] {
					seen[d] = true
					dirs = append(dirs, d)
				}
			}
			continue
		}
		d := filepath.Clean(p)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	return dirs, nil
}
