package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// countLines counts non-empty lines.
func countLines(s string) int {
	n := 0
	for _, line := range strings.Split(s, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

// TestRunBadTree: the driver reports each seeded violation in the fixture
// tree with the intended rule and exits 1.
func TestRunBadTree(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"testdata/tree/..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	out := stdout.String()
	if got := countLines(out); got != 6 {
		t.Errorf("finding count = %d, want 6:\n%s", got, out)
	}
	wantRules := map[string]int{
		"determinism: ": 2, // math/rand import + rand.Intn call
		"congestsend: ": 1, // raw []byte payload
		"maporder: ":    1, // return inside map range
		"panicfree: ":   1, // panic in library func
		"printclean: ":  1, // fmt.Println in library func
	}
	for rule, want := range wantRules {
		if got := strings.Count(out, rule); got != want {
			t.Errorf("%s findings = %d, want %d:\n%s", strings.TrimSuffix(rule, ": "), got, want, out)
		}
	}
	for _, file := range []string{"badproto.go:", "badlib.go:"} {
		if !strings.Contains(out, file) {
			t.Errorf("output does not name %s:\n%s", file, out)
		}
	}
	if !strings.Contains(stderr.String(), "6 finding(s)") {
		t.Errorf("stderr summary = %q, want 6 finding(s)", stderr.String())
	}
}

// TestRunGoodTree: a clean subtree (allow-suppressed collection) exits 0
// with no output.
func TestRunGoodTree(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"testdata/tree/internal/goodlib"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stdout: %s stderr: %s)", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("unexpected findings on clean tree:\n%s", stdout.String())
	}
}

// TestRunList: -list prints one line per rule (8 per-package + 2
// whole-module + staleallow) and exits 0.
func TestRunList(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-list"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	if got := countLines(stdout.String()); got != 13 {
		t.Errorf("rule list has %d lines, want 13:\n%s", got, stdout.String())
	}
	for _, rule := range []string{"determinism", "maporder", "obsdeterminism", "faultsdeterminism", "servedeterminism", "wiredeterminism", "searchdeterminism", "congestsend", "panicfree", "printclean", "hotpathalloc", "puritytaint", "staleallow"} {
		if !strings.Contains(stdout.String(), rule) {
			t.Errorf("rule %s missing from -list output", rule)
		}
	}
}

// TestRunRulesSubset: -rules restricts the run to the named rules.
func TestRunRulesSubset(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-rules", "printclean", "testdata/tree/..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	out := stdout.String()
	if got := countLines(out); got != 1 {
		t.Errorf("finding count = %d, want 1 (printclean only):\n%s", got, out)
	}
	if !strings.Contains(out, "printclean: ") {
		t.Errorf("subset output missing printclean finding:\n%s", out)
	}
}

// TestRunRulesUnknown: a typo in -rules is a usage error (exit 2), and
// the message lists the valid rule names.
func TestRunRulesUnknown(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-rules", "printcleen", "testdata/tree/..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "printcleen") || !strings.Contains(stderr.String(), "printclean") {
		t.Errorf("unknown-rule error should name the typo and the valid set: %s", stderr.String())
	}
}

// TestRunSARIF: -sarif writes a 2.1.0 log naming every rule and each
// finding, alongside the normal text output.
func TestRunSARIF(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dynlint.sarif")
	var stdout, stderr strings.Builder
	code := run([]string{"-sarif", path, "testdata/tree/..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("SARIF file not written: %v", err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("SARIF version %q with %d runs, want 2.1.0 with 1", log.Version, len(log.Runs))
	}
	if got := len(log.Runs[0].Results); got != 6 {
		t.Errorf("SARIF has %d results, want the 6 fixture findings", got)
	}
}

// TestRunBaselineRatchet: -write-baseline records the fixture findings
// (exit 0), and a rerun with -baseline reports nothing; -rules subsets
// still fail on anything not recorded.
func TestRunBaselineRatchet(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	var stdout, stderr strings.Builder
	if code := run([]string{"-write-baseline", path, "testdata/tree/..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-write-baseline exit code = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", path, "testdata/tree/..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("baselined rerun exit code = %d, want 0\n%s", code, stdout.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("baselined rerun still prints findings:\n%s", stdout.String())
	}
	if code := run([]string{"-baseline", filepath.Join(t.TempDir(), "missing.json"), "testdata/tree/..."}, &stdout, &stderr); code != 2 {
		t.Errorf("unreadable baseline should be exit 2, got %d", code)
	}
}

// TestRunBadPattern: an unmatched pattern is a usage error (exit 2).
func TestRunBadPattern(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"testdata/no-such-dir/..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestWholeModuleClean is the acceptance gate: dynlint over the module
// root must report nothing (the tree carries allow justifications where
// the rules are intentionally relaxed).
func TestWholeModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module")
	}
	var stdout, stderr strings.Builder
	code := run([]string{"../../..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("dynlint on the module = exit %d, want 0\n%s%s", code, stdout.String(), stderr.String())
	}
}
