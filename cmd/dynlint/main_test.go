package main

import (
	"strings"
	"testing"
)

// countLines counts non-empty lines.
func countLines(s string) int {
	n := 0
	for _, line := range strings.Split(s, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

// TestRunBadTree: the driver reports each seeded violation in the fixture
// tree with the intended rule and exits 1.
func TestRunBadTree(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"testdata/tree/..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	out := stdout.String()
	if got := countLines(out); got != 6 {
		t.Errorf("finding count = %d, want 6:\n%s", got, out)
	}
	wantRules := map[string]int{
		"determinism: ": 2, // math/rand import + rand.Intn call
		"congestsend: ": 1, // raw []byte payload
		"maporder: ":    1, // return inside map range
		"panicfree: ":   1, // panic in library func
		"printclean: ":  1, // fmt.Println in library func
	}
	for rule, want := range wantRules {
		if got := strings.Count(out, rule); got != want {
			t.Errorf("%s findings = %d, want %d:\n%s", strings.TrimSuffix(rule, ": "), got, want, out)
		}
	}
	for _, file := range []string{"badproto.go:", "badlib.go:"} {
		if !strings.Contains(out, file) {
			t.Errorf("output does not name %s:\n%s", file, out)
		}
	}
	if !strings.Contains(stderr.String(), "6 finding(s)") {
		t.Errorf("stderr summary = %q, want 6 finding(s)", stderr.String())
	}
}

// TestRunGoodTree: a clean subtree (allow-suppressed collection) exits 0
// with no output.
func TestRunGoodTree(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"testdata/tree/internal/goodlib"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stdout: %s stderr: %s)", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("unexpected findings on clean tree:\n%s", stdout.String())
	}
}

// TestRunList: -list prints one line per rule and exits 0.
func TestRunList(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-list"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	if got := countLines(stdout.String()); got != 8 {
		t.Errorf("rule list has %d lines, want 8:\n%s", got, stdout.String())
	}
	for _, rule := range []string{"determinism", "maporder", "obsdeterminism", "faultsdeterminism", "servedeterminism", "congestsend", "panicfree", "printclean"} {
		if !strings.Contains(stdout.String(), rule) {
			t.Errorf("rule %s missing from -list output", rule)
		}
	}
}

// TestRunBadPattern: an unmatched pattern is a usage error (exit 2).
func TestRunBadPattern(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"testdata/no-such-dir/..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestWholeModuleClean is the acceptance gate: dynlint over the module
// root must report nothing (the tree carries allow justifications where
// the rules are intentionally relaxed).
func TestWholeModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module")
	}
	var stdout, stderr strings.Builder
	code := run([]string{"../../..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("dynlint on the module = exit %d, want 0\n%s%s", code, stdout.String(), stderr.String())
	}
}
