// Package badlib is a driver fixture: one maporder, one panicfree, and
// one printclean violation.
package badlib

import "fmt"

// Reference leaks map order through its return values.
func Reference(m map[int]int64) (int, int64) {
	for v, out := range m {
		return v, out
	}
	return -1, 0
}

// Audit prints from library code and panics on bad input.
func Audit(m map[int]int64) {
	if len(m) == 0 {
		panic("badlib: empty result map")
	}
	fmt.Println("audited", len(m), "nodes")
}
