// Package goodlib is a driver fixture with no violations.
package goodlib

import "sort"

// SortedKeys is deterministic: collect (with justification), then sort.
func SortedKeys(m map[int]int64) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k) //lint:allow maporder sorted immediately below
	}
	sort.Ints(out)
	return out
}
