// Package badproto is a driver fixture: a "protocol" violating the
// determinism rule twice (import + call) and the congestsend rule once.
package badproto

import (
	"math/rand"

	"dyndiam/internal/dynet"
)

// Step flips an ambient coin and hand-rolls its message payload.
func Step() (dynet.Action, dynet.Message) {
	if rand.Intn(2) == 0 {
		return dynet.Receive, dynet.Message{}
	}
	return dynet.Send, dynet.Message{Payload: []byte{1}, NBits: 8}
}
