// Command dynnode runs distributed executions: real per-node OS
// processes, synchronized by a coordinator-driven round barrier over TCP,
// with CONGEST budgets enforced at the socket and faults injected into
// the byte stream (internal/wire).
//
// Modes:
//
//	dynnode -role launch -proto cflood -n 8 -adv ring -rounds 64
//	    Coordinator in-process plus n supervised node child processes on
//	    loopback. Crashed children (e.g. -kill-node) are relaunched and
//	    rejoin the run via the coordinator's replay log.
//
//	dynnode -role coord -addr 127.0.0.1:9701 -proto leader -n 16
//	    Coordinator only; node processes connect from elsewhere.
//
//	dynnode -role node -addr 127.0.0.1:9701 -id 3
//	    One node process. Everything but (id, addr) arrives in the
//	    WELCOME frame.
//
// The flagship robustness demo — kill a node process mid-run with
// SIGKILL, watch it rejoin, and verify the execution is byte-identical
// to the in-process engine:
//
//	dynnode -role launch -proto cflood -n 8 -adv ring -rounds 64 \
//	    -fault '{"seed":7,"drop":0.1,"corrupt":0.1}' \
//	    -kill-node 3 -kill-round 5 -diff-inprocess
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"time"

	"dyndiam/internal/dynet"
	"dyndiam/internal/faults"
	"dyndiam/internal/obs"
	"dyndiam/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dynnode: ")

	var (
		role = flag.String("role", "launch", "launch|coord|node")
		addr = flag.String("addr", "127.0.0.1:0", "coordinator address (listen for coord/launch, dial for node)")
		id   = flag.Int("id", 0, "node id (role node)")

		proto     = flag.String("proto", "cflood", "protocol: cflood|pflood|leader|consensus")
		n         = flag.Int("n", 8, "number of nodes")
		seed      = flag.Uint64("seed", 1, "public-coin seed")
		rounds    = flag.Int("rounds", 4096, "round budget")
		advName   = flag.String("adv", "ring", "adversary: line|ring|star|complete|random|bounded|rotating")
		advD      = flag.Int("d", 4, "target diameter for -adv bounded")
		dKnown    = flag.Int("D", 0, "known diameter bound handed to the protocol (0 = unknown)")
		check     = flag.Bool("check-connectivity", false, "verify each round's topology is connected")
		faultJSON = flag.String("fault", "", `fault spec JSON, e.g. '{"seed":7,"drop":0.1,"corrupt":0.05}'`)

		roundTimeout  = flag.Duration("round-timeout", 2*time.Second, "base per-attempt round barrier deadline")
		retries       = flag.Int("retries", 8, "max re-pokes per round barrier")
		retryBase     = flag.Duration("retry-base", 25*time.Millisecond, "retry backoff/jitter base")
		relaunchDelay = flag.Duration("relaunch-delay", 100*time.Millisecond, "pause before relaunching a crashed child (launch)")

		killNode  = flag.Int("kill-node", -1, "SIGKILL this node's child process when -kill-round starts (launch)")
		killRound = flag.Int("kill-round", 0, "round at whose start -kill-node is killed (0 = never)")

		diffInProcess = flag.Bool("diff-inprocess", false, "after the run, replay on dynet.Engine and fail on any divergence")
		requireRes    = flag.Bool("require-resilience", false, "fail unless retry/reconnect machinery demonstrably ran")
		traceOut      = flag.String("trace-out", "", "write run artifacts (result, trace, metrics, transport) as JSON")
	)
	flag.Parse()

	switch *role {
	case "node":
		if err := wire.RunNode(wire.NodeConfig{ID: *id, Addr: *addr}); err != nil {
			log.Fatal(err)
		}
		return
	case "coord", "launch":
	default:
		log.Fatalf("unknown role %q", *role)
	}

	spec := wire.RunSpec{
		Proto: *proto, N: *n, Seed: *seed, MaxRounds: *rounds,
		CheckConnectivity: *check, Adv: *advName, AdvD: *advD,
	}
	if *dKnown > 0 {
		spec.Extra = map[string]int64{"D": int64(*dKnown)}
	}
	if *faultJSON != "" {
		fs, err := faults.ParseSpec([]byte(*faultJSON))
		if err != nil {
			log.Fatal(err)
		}
		spec.Fault = fs
	}
	if err := spec.Validate(); err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coordinator   %s\n", ln.Addr())

	var sups []*supervisor
	runDone := make(chan struct{})
	if *role == "launch" {
		exe, err := os.Executable()
		if err != nil {
			log.Fatal(err)
		}
		sups = make([]*supervisor, *n)
		for v := range sups {
			sups[v] = &supervisor{exe: exe, id: v, addr: ln.Addr().String(), relaunchDelay: *relaunchDelay}
			sups[v].start(runDone)
		}
	}

	tr, ring, reg := wire.NewArtifacts(1 << 16)
	var sink obs.Sink = ring
	if *killRound > 0 && *killNode >= 0 {
		if *role != "launch" {
			log.Fatal("-kill-node needs -role launch (there is no child to kill otherwise)")
		}
		kn := *killNode
		sink = &killSink{Sink: ring, round: int32(*killRound), fire: func() {
			log.Printf("SIGKILL node %d at round %d", kn, *killRound)
			sups[kn].kill()
		}}
	}
	transport := obs.NewRegistry()
	res, runErr := wire.Run(wire.Config{
		Spec: spec, Listener: ln,
		Trace: tr, Obs: sink, Metrics: reg, Transport: transport,
		RoundTimeout: *roundTimeout, MaxRetries: *retries, RetryBase: *retryBase,
	})
	close(runDone)
	for _, s := range sups {
		s.waitDone(2 * time.Second)
	}
	dist := wire.CollectArtifacts(res, runErr, tr, ring, reg)

	os.Exit(report(spec, dist, transport, *diffInProcess, *requireRes, *traceOut))
}

// killSink triggers the SIGKILL demo at a deterministic point — the
// coordinator's RoundStart emission — instead of a wall-clock timer.
type killSink struct {
	obs.Sink
	round int32
	fire  func()
	once  sync.Once
}

func (k *killSink) Emit(ev obs.Event) {
	if ev.Kind == obs.KindRoundStart && ev.Round >= k.round {
		k.once.Do(k.fire)
	}
	k.Sink.Emit(ev)
}

// supervisor owns one node child process: spawn, relaunch after crashes
// (which is what turns a SIGKILL into a rejoin), stop with the run.
type supervisor struct {
	exe, addr     string
	id            int
	relaunchDelay time.Duration

	mu   sync.Mutex
	cmd  *exec.Cmd
	done chan struct{}
}

func (s *supervisor) start(runDone <-chan struct{}) {
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		for attempt := 0; attempt < 16; attempt++ {
			if attempt > 0 {
				time.Sleep(s.relaunchDelay)
				select {
				case <-runDone:
					return
				default:
				}
				log.Printf("relaunching node %d (attempt %d)", s.id, attempt)
			}
			cmd := exec.Command(s.exe, "-role", "node", "-id", strconv.Itoa(s.id), "-addr", s.addr)
			cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
			// Start under the lock and publish only afterwards, so a
			// concurrent kill() never sees a cmd whose Process is still
			// being written by Start.
			s.mu.Lock()
			err := cmd.Start()
			if err == nil {
				s.cmd = cmd
			}
			s.mu.Unlock()
			if err != nil {
				log.Printf("node %d failed to start: %v", s.id, err)
				return
			}
			err = cmd.Wait()
			if err == nil {
				return // clean exit: the node saw FINISH
			}
			select {
			case <-runDone:
				return
			default:
			}
		}
		log.Printf("node %d: relaunch budget exhausted", s.id)
	}()
}

func (s *supervisor) kill() {
	s.mu.Lock()
	cmd := s.cmd
	s.mu.Unlock()
	if cmd != nil && cmd.Process != nil {
		cmd.Process.Kill()
	}
}

func (s *supervisor) waitDone(grace time.Duration) {
	select {
	case <-s.done:
	case <-time.After(grace):
		s.kill()
		<-s.done
	}
}

// report prints the run summary and transport counters, optionally
// writes the JSON artifact, replays the in-process twin, and checks the
// resilience machinery ran. Exit codes: 0 ok, 1 run error, 2 divergence
// or unexercised resilience.
func report(spec wire.RunSpec, dist *wire.RunArtifacts, transport *obs.Registry, diff, requireRes bool, traceOut string) int {
	exit := 0
	if dist.Err != nil {
		log.Printf("run error: %v", dist.Err)
		exit = 1
	}
	if dist.Res != nil {
		fmt.Printf("protocol      %s\n", spec.Proto)
		fmt.Printf("nodes         %d\n", spec.N)
		fmt.Printf("adversary     %s\n", spec.Adv)
		fmt.Printf("terminated    %v (round %d)\n", dist.Res.Done, dist.Res.Rounds)
		fmt.Printf("messages      %d\n", dist.Res.Messages)
		fmt.Printf("payload bits  %d\n", dist.Res.Bits)
		decided := 0
		for _, ok := range dist.Res.Decided {
			if ok {
				decided++
			}
		}
		fmt.Printf("decided nodes %d/%d\n", decided, spec.N)
	}
	counters := transport.Snapshot()
	for _, p := range counters {
		fmt.Printf("%-34s %d\n", p.Name, p.Value)
	}

	if traceOut != "" {
		if err := writeArtifact(traceOut, spec, dist, counters); err != nil {
			log.Printf("trace-out: %v", err)
			exit = 1
		} else {
			fmt.Printf("artifact      %s\n", traceOut)
		}
	}

	if diff {
		proc, err := wire.RunInProcess(spec, 1<<16)
		if err != nil {
			log.Printf("in-process twin: %v", err)
			return 1
		}
		if derr := wire.Diff(dist, proc); derr != nil {
			log.Printf("DIVERGENCE: %v", derr)
			return 2
		}
		fmt.Println("equivalence   distributed == in-process (results, traces, events, metrics)")
	}

	if requireRes {
		// A SIGKILLed process's own redial counter dies with it; the
		// coordinator-side reconnect and replay counters are the rejoin
		// proof.
		for _, name := range []string{"wire_retries_total", "wire_deadline_hits_total", "wire_reconnects_total", "wire_replayed_rounds_total"} {
			if counterValue(counters, name) == 0 {
				log.Printf("resilience not exercised: %s = 0", name)
				return 2
			}
		}
		if spec.Fault.Drop+spec.Fault.Corrupt+spec.Fault.Dup > 0 {
			injected := counterValue(counters, "wire_fault_drops_total") +
				counterValue(counters, "wire_fault_corrupts_total") +
				counterValue(counters, "wire_fault_dups_total")
			if injected == 0 {
				log.Print("resilience not exercised: delivery-fault rates set but no wire faults injected")
				return 2
			}
		}
		fmt.Println("resilience    retries, reconnects, and rejoins all exercised")
	}
	return exit
}

func counterValue(points []obs.MetricPoint, name string) int64 {
	for _, p := range points {
		if p.Name == name {
			return p.Value
		}
	}
	return 0
}

// artifact is the JSON shape -trace-out writes (uploaded by CI).
type artifact struct {
	Spec      wire.RunSpec       `json:"spec"`
	Error     string             `json:"error,omitempty"`
	Result    *dynet.Result      `json:"result,omitempty"`
	Trace     []dynet.RoundStats `json:"trace,omitempty"`
	Metrics   []obs.MetricPoint  `json:"metrics,omitempty"`
	Transport []obs.MetricPoint  `json:"transport,omitempty"`
}

func writeArtifact(path string, spec wire.RunSpec, dist *wire.RunArtifacts, transport []obs.MetricPoint) error {
	a := artifact{Spec: spec, Result: dist.Res, Metrics: dist.Metrics, Transport: transport}
	if dist.Err != nil {
		a.Error = dist.Err.Error()
	}
	if dist.Trace != nil {
		a.Trace = dist.Trace.Stats
	}
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
