package main

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"testing"
	"time"

	"dyndiam/internal/faults"
	"dyndiam/internal/obs"
	"dyndiam/internal/wire"
)

// TestMain doubles as the node helper process: the test binary re-execs
// itself with DYNNODE_HELPER=node to get real OS processes — real
// sockets, real SIGKILL — without building a separate binary.
func TestMain(m *testing.M) {
	if os.Getenv("DYNNODE_HELPER") == "node" {
		id, err := strconv.Atoi(os.Getenv("DYNNODE_ID"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynnode helper:", err)
			os.Exit(1)
		}
		if err := wire.RunNode(wire.NodeConfig{ID: id, Addr: os.Getenv("DYNNODE_ADDR")}); err != nil {
			fmt.Fprintln(os.Stderr, "dynnode helper:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func spawnNode(t *testing.T, id int, addr string) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		"DYNNODE_HELPER=node",
		"DYNNODE_ID="+strconv.Itoa(id),
		"DYNNODE_ADDR="+addr,
	)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

// TestProcessSIGKILLRejoin is the acceptance scenario with real OS
// processes: a node process is SIGKILLed mid-run, relaunched, rejoins
// from the coordinator's replay log, and the finished execution is
// byte-identical to the in-process engine — with the transport counters
// showing the retry/reconnect/replay machinery actually ran.
func TestProcessSIGKILLRejoin(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	spec := wire.RunSpec{
		Proto: "consensus", N: 6, Seed: 31, MaxRounds: 24, Adv: "ring",
		Fault: faults.Spec{Seed: 41, Drop: 0.1, Corrupt: 0.1},
	}
	const victim = 2
	const killRound = 6

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	var mu sync.Mutex
	procs := make([]*exec.Cmd, spec.N)
	for v := 0; v < spec.N; v++ {
		procs[v] = spawnNode(t, v, addr)
	}
	relaunched := make(chan struct{})

	tr, ring, reg := wire.NewArtifacts(1 << 16)
	transport := obs.NewRegistry()
	sink := &killSink{Sink: ring, round: killRound, fire: func() {
		mu.Lock()
		victimCmd := procs[victim]
		mu.Unlock()
		if err := victimCmd.Process.Kill(); err != nil {
			t.Errorf("SIGKILL node %d: %v", victim, err)
		}
		go func() {
			defer close(relaunched)
			victimCmd.Wait() //lint:allow errcheck the kill is the expected exit
			// The delay guarantees the round barrier's deadline fires before
			// the rejoin, so wire_retries_total is deterministically nonzero.
			time.Sleep(400 * time.Millisecond)
			mu.Lock()
			procs[victim] = spawnNode(t, victim, addr)
			mu.Unlock()
		}()
	}}

	res, runErr := wire.Run(wire.Config{
		Spec: spec, Listener: ln,
		Trace: tr, Obs: sink, Metrics: reg, Transport: transport,
		RoundTimeout: 100 * time.Millisecond, MaxRetries: 20, RetryBase: 20 * time.Millisecond,
	})
	if runErr != nil {
		t.Fatalf("distributed run: %v", runErr)
	}
	<-relaunched
	mu.Lock()
	final := append([]*exec.Cmd(nil), procs...)
	mu.Unlock()
	for v, cmd := range final {
		if err := cmd.Wait(); err != nil {
			t.Errorf("node %d process exit: %v", v, err)
		}
	}

	dist := wire.CollectArtifacts(res, runErr, tr, ring, reg)
	proc, err := wire.RunInProcess(spec, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.Diff(dist, proc); err != nil {
		t.Fatalf("SIGKILLed-and-rejoined run diverged from the engine: %v", err)
	}

	for _, name := range []string{
		"wire_retries_total",
		"wire_deadline_hits_total",
		"wire_reconnects_total",
		"wire_replayed_rounds_total",
	} {
		if v := transportCounter(transport, name); v == 0 {
			t.Errorf("%s = 0, want > 0: the rejoin machinery did not run", name)
		}
	}
}

func transportCounter(reg *obs.Registry, name string) int64 {
	for _, p := range reg.Snapshot() {
		if p.Name == name {
			return p.Value
		}
	}
	return 0
}
