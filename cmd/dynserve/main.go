// Command dynserve serves the repo's experiments over HTTP/JSON as
// asynchronous jobs with content-addressed result caching.
//
//	go run ./cmd/dynserve -addr :8080
//
// Submit a job, poll its status, fetch its result:
//
//	curl -s -X POST localhost:8080/jobs \
//	    -d '{"kind":"gap_table","params":{"sizes":[16,32],"seed":1}}'
//	curl -s localhost:8080/jobs/<key>
//	curl -s localhost:8080/jobs/<key>/result
//
// Identical submissions (same kind and normalized params) deduplicate
// onto one cache entry and cost one harness execution; a full job queue
// answers 429 with a Retry-After hint. /metrics exposes the request,
// cache, queue, and latency counters as Prometheus text.
//
// -job-budget bounds each job's wall clock (a hung job degrades to a
// recorded error) and -round-budget caps harness rounds per run.
// -checkpoint FILE saves completed results on shutdown (SIGINT/SIGTERM);
// with -resume, results already recorded there are preloaded so a
// restarted service answers known keys from cache.
//
// Shutdown semantics: SIGTERM drains gracefully — new submissions are
// rejected (POST /jobs and /readyz answer 503, /healthz stays 200),
// every queued and in-flight job finishes within its budget, and only
// then is the checkpoint written. SIGINT shuts down fast: queued-but-
// unstarted jobs are dropped.
//
// Introspection: every job records a flight recording browsable at
// /debug/jobs and /debug/jobs/<key> (plus .../trace for Perfetto), and
// -pprof additionally exposes net/http/pprof under /debug/pprof/.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dyndiam"
	"dyndiam/internal/cliutil"
)

// options are the parsed flag values; split out so tests can exercise
// parsing without starting a listener.
type options struct {
	addr        string
	workers     int
	queueCap    int
	jobBudget   time.Duration
	roundBudget int
	checkpoint  string
	resume      bool
	pprof       bool
}

// parseOptions binds the flag set and parses args into options.
func parseOptions(fs *flag.FlagSet, args []string) (options, error) {
	var o options
	fs.StringVar(&o.addr, "addr", ":8080", "listen address")
	fs.IntVar(&o.workers, "workers", 2, "concurrent experiment jobs")
	fs.IntVar(&o.queueCap, "queue", 32, "job queue bound; a full queue answers 429")
	fs.DurationVar(&o.jobBudget, "job-budget", 2*time.Minute, "per-job wall-clock budget (0 = unlimited)")
	fs.IntVar(&o.roundBudget, "round-budget", 0, "harness round budget per run (0 = keep default)")
	fs.StringVar(&o.checkpoint, "checkpoint", "", "save completed results to this file on shutdown")
	fs.BoolVar(&o.resume, "resume", false, "preload results recorded in the -checkpoint file")
	fs.BoolVar(&o.pprof, "pprof", false, "expose net/http/pprof profiles under /debug/pprof/")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if fs.NArg() > 0 {
		return o, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if o.resume && o.checkpoint == "" {
		return o, fmt.Errorf("-resume requires -checkpoint FILE")
	}
	return o, nil
}

// buildHandler wraps the service API with the optional pprof surface.
// The profile handlers are registered on a private mux (never the
// package-global http.DefaultServeMux), so profiling is strictly opt-in
// per instance; everything else falls through to the API handler,
// including the service's own /debug/jobs routes.
func buildHandler(api http.Handler, withPprof bool) http.Handler {
	if !withPprof {
		return api
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", api)
	return mux
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("dynserve: ")

	opts, err := parseOptions(flag.CommandLine, os.Args[1:])
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}
	if opts.roundBudget > 0 {
		dyndiam.SetRoundBudget(opts.roundBudget)
	}

	srv := dyndiam.NewExperimentServer(dyndiam.ServeConfig{
		Workers:   opts.workers,
		QueueCap:  opts.queueCap,
		JobBudget: opts.jobBudget,
	})
	if opts.resume && opts.checkpoint != "" {
		var saved []dyndiam.ServeCachedResult
		found, err := cliutil.LoadJSON(opts.checkpoint, &saved)
		if err != nil {
			log.Fatal(err)
		}
		if found {
			log.Printf("resumed %d cached results from %s", srv.Preload(saved), opts.checkpoint)
		}
	}

	httpSrv := &http.Server{Addr: opts.addr, Handler: buildHandler(srv.Handler(), opts.pprof)}
	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()
	log.Printf("serving experiments on %s (workers=%d queue=%d pprof=%v)", opts.addr, opts.workers, opts.queueCap, opts.pprof)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		log.Fatal(err)
	case s := <-sig:
		if s == syscall.SIGTERM {
			// Graceful drain: stop accepting new jobs (/readyz flips to
			// 503, POST /jobs answers 503) but keep serving polls while
			// every queued and in-flight job finishes within its budget;
			// the checkpoint below then includes the drained work.
			log.Printf("received %v; draining: rejecting new jobs, finishing queued and in-flight work", s)
			srv.Drain()
		} else {
			// SIGINT stays the fast path: queued-but-unstarted jobs are
			// dropped, only in-flight work is waited out.
			log.Printf("received %v; shutting down", s)
			srv.Close()
		}
	}
	_ = httpSrv.Close()
	if opts.checkpoint != "" {
		results := srv.CachedResults()
		if err := cliutil.SaveJSON(opts.checkpoint, results); err != nil {
			log.Fatal(err)
		}
		log.Printf("saved %d cached results to %s", len(results), opts.checkpoint)
	}
}
