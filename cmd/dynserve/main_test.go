package main

import (
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func parse(t *testing.T, args ...string) (options, error) {
	t.Helper()
	fs := flag.NewFlagSet("dynserve", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return parseOptions(fs, args)
}

func TestParseOptions(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want options
	}{
		{
			name: "defaults",
			want: options{addr: ":8080", workers: 2, queueCap: 32, jobBudget: 2 * time.Minute},
		},
		{
			name: "all flags",
			args: []string{
				"-addr", "127.0.0.1:9999", "-workers", "8", "-queue", "4",
				"-job-budget", "30s", "-round-budget", "50000",
				"-checkpoint", "state.json", "-resume", "-pprof",
			},
			want: options{
				addr: "127.0.0.1:9999", workers: 8, queueCap: 4,
				jobBudget: 30 * time.Second, roundBudget: 50000,
				checkpoint: "state.json", resume: true, pprof: true,
			},
		},
		{
			name: "unlimited job budget",
			args: []string{"-job-budget", "0"},
			want: options{addr: ":8080", workers: 2, queueCap: 32},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parse(t, tc.args...)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("options = %+v want %+v", got, tc.want)
			}
		})
	}
}

// get issues one request against h and returns the status code.
func get(t *testing.T, h http.Handler, path string) int {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code
}

func TestBuildHandlerPprof(t *testing.T) {
	api := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusTeapot) // marker: the request reached the API
	})

	off := buildHandler(api, false)
	if code := get(t, off, "/debug/pprof/"); code != http.StatusTeapot {
		t.Errorf("pprof off: /debug/pprof/ = %d, want pass-through to API", code)
	}

	on := buildHandler(api, true)
	if code := get(t, on, "/debug/pprof/"); code != http.StatusOK {
		t.Errorf("pprof on: /debug/pprof/ = %d, want 200 index", code)
	}
	if code := get(t, on, "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("pprof on: /debug/pprof/cmdline = %d, want 200", code)
	}
	// Everything else still reaches the service API, including its own
	// debug routes.
	for _, path := range []string{"/jobs", "/metrics", "/debug/jobs", "/debug/jobs/abc"} {
		if code := get(t, on, path); code != http.StatusTeapot {
			t.Errorf("pprof on: %s = %d, want pass-through to API", path, code)
		}
	}
}

func TestParseOptionsRejects(t *testing.T) {
	for _, args := range [][]string{
		{"-workers", "zebra"},
		{"-job-budget", "banana"},
		{"-no-such-flag"},
		// -resume is a bool: a trailing file name is a usage error, not a
		// silently ignored positional (the easy way to resume nothing).
		{"-resume", "state.json"},
		{"-resume"},
	} {
		if _, err := parse(t, args...); err == nil {
			t.Errorf("%v: accepted", args)
		}
	}
}
