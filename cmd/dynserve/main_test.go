package main

import (
	"flag"
	"io"
	"testing"
	"time"
)

func parse(t *testing.T, args ...string) (options, error) {
	t.Helper()
	fs := flag.NewFlagSet("dynserve", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return parseOptions(fs, args)
}

func TestParseOptions(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want options
	}{
		{
			name: "defaults",
			want: options{addr: ":8080", workers: 2, queueCap: 32, jobBudget: 2 * time.Minute},
		},
		{
			name: "all flags",
			args: []string{
				"-addr", "127.0.0.1:9999", "-workers", "8", "-queue", "4",
				"-job-budget", "30s", "-round-budget", "50000",
				"-checkpoint", "state.json", "-resume",
			},
			want: options{
				addr: "127.0.0.1:9999", workers: 8, queueCap: 4,
				jobBudget: 30 * time.Second, roundBudget: 50000,
				checkpoint: "state.json", resume: true,
			},
		},
		{
			name: "unlimited job budget",
			args: []string{"-job-budget", "0"},
			want: options{addr: ":8080", workers: 2, queueCap: 32},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parse(t, tc.args...)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("options = %+v want %+v", got, tc.want)
			}
		})
	}
}

func TestParseOptionsRejects(t *testing.T) {
	for _, args := range [][]string{
		{"-workers", "zebra"},
		{"-job-budget", "banana"},
		{"-no-such-flag"},
		// -resume is a bool: a trailing file name is a usage error, not a
		// silently ignored positional (the easy way to resume nothing).
		{"-resume", "state.json"},
		{"-resume"},
	} {
		if _, err := parse(t, args...); err == nil {
			t.Errorf("%v: accepted", args)
		}
	}
}
