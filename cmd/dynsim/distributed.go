package main

import (
	"fmt"
	"net"
	"sync"
	"time"

	"dyndiam/internal/obs"
	"dyndiam/internal/wire"
)

// runDistributedCLI routes a dynsim invocation through the distributed
// execution layer: a real coordinator plus n node sessions over loopback
// TCP, instead of the in-process engine. The per-round results are
// byte-identical to Engine.Run by the internal/wire equivalence
// guarantee; this entry point exists so the familiar dynsim flag set can
// exercise the wire path (cmd/dynnode adds OS-process nodes, fault
// injection at the socket, and the SIGKILL rejoin demo).
func runDistributedCLI(proto string, n int, advName string, advD int, seed uint64, rounds int, extra map[string]int64) (bool, error) {
	spec := wire.RunSpec{
		Proto: proto, N: n, Seed: seed, MaxRounds: rounds,
		CheckConnectivity: true, Adv: advName, AdvD: advD, Extra: extra,
	}
	if err := spec.Validate(); err != nil {
		return false, fmt.Errorf("-distributed: %w", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return false, err
	}
	var wg sync.WaitGroup
	for v := 0; v < n; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			_ = wire.RunNode(wire.NodeConfig{ID: v, Addr: ln.Addr().String()}) // node errors mirror the coordinator's abort, reported below
		}(v)
	}
	tr, ring, reg := wire.NewArtifacts(1 << 16)
	transport := obs.NewRegistry()
	res, runErr := wire.Run(wire.Config{
		Spec: spec, Listener: ln,
		Trace: tr, Obs: ring, Metrics: reg, Transport: transport,
		RoundTimeout: 2 * time.Second,
	})
	wg.Wait()
	if runErr != nil {
		return false, runErr
	}

	fmt.Printf("protocol      %s (distributed over %s)\n", proto, ln.Addr())
	fmt.Printf("nodes         %d\n", n)
	fmt.Printf("adversary     %s\n", advName)
	fmt.Printf("terminated    %v (round %d)\n", res.Done, res.Rounds)
	fmt.Printf("messages      %d\n", res.Messages)
	fmt.Printf("payload bits  %d\n", res.Bits)
	decided := 0
	for _, ok := range res.Decided {
		if ok {
			decided++
		}
	}
	fmt.Printf("decided nodes %d/%d\n", decided, n)
	for _, p := range transport.Snapshot() {
		if p.Value != 0 {
			fmt.Printf("%-13s %d\n", p.Name, p.Value)
		}
	}
	return res.Done, nil
}
