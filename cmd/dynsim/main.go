// Command dynsim runs one protocol over one dynamic-network adversary and
// reports rounds, message/bit totals, and output correctness.
//
// Examples:
//
//	dynsim -proto cflood -n 128 -adv bounded -d 6 -D 12
//	dynsim -proto cflood -n 128 -adv bounded -d 6          (unknown diameter)
//	dynsim -proto leader -n 64 -adv random -nprime 56 -c 100
//	dynsim -proto estimate -n 64 -adv ring -D 32
//
// Observed fast-path floods: -floodfast routes cflood/pflood through the
// word-packed engine path (Engine.RunFlood), which with -obs-out /
// -obs-trace-out / -metrics-out attached emits round-aggregated
// events — round_end, frontier, diff_ops — subsampled by -obs-stride,
// instead of falling back to the slower per-message path:
//
//	dynsim -proto cflood -n 100000 -adv deltachurn -floodfast \
//	    -obs-stride 8 -metrics-out run.prom -obs-trace-out run.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dyndiam"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dynsim: ")

	var (
		proto     = flag.String("proto", "cflood", "protocol: cflood|pflood|consensus|vialeader|leader|estimate|sum|max|hearfrom|hearfromexact|majority")
		n         = flag.Int("n", 64, "number of nodes")
		advName   = flag.String("adv", "random", "adversary: line|ring|star|complete|grid|hypercube|random|bounded|rotating|staller|tinterval|dual|deltachurn")
		d         = flag.Int("d", 4, "target per-round diameter for -adv bounded; interval length for -adv tinterval; rewires per round for -adv deltachurn")
		dKnown    = flag.Int("D", 0, "known diameter bound handed to the protocol (0 = unknown)")
		nprime    = flag.Int("nprime", 0, "size estimate N' for leader/vialeader (0 = exact N)")
		cmil      = flag.Int("c", 200, "N'-accuracy margin c in thousandths")
		seed      = flag.Uint64("seed", 1, "public-coin seed")
		maxRounds = flag.Int("rounds", 50000000, "round budget")
		workers   = flag.Int("workers", 0, "engine workers (0 = GOMAXPROCS, 1 = sequential)")
		traceOut  = flag.String("trace-out", "", "record the execution trace (with topologies) to this file")
		traceIn   = flag.String("trace-in", "", "analyze a recorded trace instead of running anything")

		distributed = flag.Bool("distributed", false, "run over internal/wire: coordinator + n node sessions on loopback TCP (cflood|pflood|leader|consensus)")
		floodFast   = flag.Bool("floodfast", false, "run via Engine.RunFlood's word-packed fast path (cflood/pflood only)")
		obsOut      = flag.String("obs-out", "", "write observed events as JSONL to this file")
		obsTraceOut = flag.String("obs-trace-out", "", "write observed events as Chrome trace-event JSON to this file")
		metricsOut  = flag.String("metrics-out", "", "write run metrics as Prometheus text to this file")
		obsStride   = flag.Int("obs-stride", 0, "fast-path round sampling stride (0 or 1 = every round)")
	)
	flag.Parse()

	if *traceIn != "" {
		if err := analyzeTrace(*traceIn); err != nil {
			log.Fatal(err)
		}
		return
	}

	adv, err := buildAdversary(*advName, *n, *d, *seed)
	if err != nil {
		log.Fatal(err)
	}

	extra := map[string]int64{}
	if *dKnown > 0 {
		extra[dyndiam.ExtraDiameter] = int64(*dKnown)
	}
	if *nprime > 0 {
		extra[dyndiam.ExtraNPrime] = int64(*nprime)
	}
	extra[dyndiam.ExtraCPermille] = int64(*cmil)

	if *distributed {
		done, err := runDistributedCLI(*proto, *n, *advName, *d, *seed, *maxRounds, extra)
		if err != nil {
			log.Fatal(err)
		}
		if !done {
			os.Exit(1)
		}
		return
	}

	inputs := make([]int64, *n)
	var p dyndiam.Protocol
	term := dyndiam.AllDecided
	switch *proto {
	case "cflood":
		p = dyndiam.CFlood{}
		inputs[0] = 1
		term = dyndiam.NodeDecided(0)
	case "pflood":
		p = dyndiam.PFlood{}
		inputs[0] = 1
		term = dyndiam.NodeDecided(0)
	case "consensus":
		p = dyndiam.KnownDConsensus{}
		for v := range inputs {
			inputs[v] = int64(v % 2)
		}
	case "vialeader":
		p = dyndiam.ViaLeaderConsensus{}
		for v := range inputs {
			inputs[v] = int64(v % 2)
		}
	case "leader":
		p = dyndiam.LeaderElect{}
	case "estimate":
		p = dyndiam.EstimateN{}
	case "sum":
		p = dyndiam.SumEstimate{}
		for v := range inputs {
			inputs[v] = int64(v % 5)
		}
	case "hearfromexact":
		p = dyndiam.HearFromExact{}
	case "max":
		p = dyndiam.Max{}
		for v := range inputs {
			inputs[v] = int64((v * 7919) % 100003)
		}
	case "hearfrom":
		p = dyndiam.HearFrom{}
	case "majority":
		p = dyndiam.MajorityProbe{}
	default:
		log.Fatalf("unknown protocol %q", *proto)
	}

	ms := dyndiam.NewMachines(p, *n, inputs, *seed, extra)
	eng := &dyndiam.Engine{
		Machines:          ms,
		Adv:               adv,
		Workers:           *workers,
		CheckConnectivity: true,
		Terminated:        term,
		ObsRoundStride:    *obsStride,
	}
	if *traceOut != "" {
		eng.Trace = &dyndiam.Trace{KeepTopologies: true}
	}
	var ring *dyndiam.ObsRing
	if *obsOut != "" || *obsTraceOut != "" {
		ring = dyndiam.NewObsRing(1 << 16)
		eng.Obs = ring
	}
	var reg *dyndiam.MetricsRegistry
	if *metricsOut != "" {
		reg = dyndiam.NewMetricsRegistry()
		eng.Metrics = reg
	}

	var res *dyndiam.Result
	if *floodFast {
		if *proto != "cflood" && *proto != "pflood" {
			log.Fatalf("-floodfast requires -proto cflood or pflood, got %q", *proto)
		}
		if *traceOut != "" {
			log.Fatal("-floodfast is incompatible with -trace-out (a Trace forces the per-message path)")
		}
		res, err = eng.RunFlood(*maxRounds, dyndiam.FloodStopNode(0))
	} else {
		res, err = eng.Run(*maxRounds)
	}
	if err != nil {
		log.Fatal(err)
	}

	if ring != nil {
		if *obsOut != "" {
			if err := writeFile(*obsOut, func(f *os.File) error {
				return dyndiam.WriteEventsJSONL(f, ring.Events())
			}); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("events        %s (%d events, %d dropped)\n", *obsOut, ring.Len(), ring.Dropped())
		}
		if *obsTraceOut != "" {
			if err := writeFile(*obsTraceOut, func(f *os.File) error {
				return dyndiam.WriteChromeTrace(f, ring.Events())
			}); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("chrome trace  %s (load at ui.perfetto.dev)\n", *obsTraceOut)
		}
	}
	if reg != nil {
		if err := writeFile(*metricsOut, func(f *os.File) error {
			return dyndiam.WriteMetricsText(f, reg)
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("metrics       %s\n", *metricsOut)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := dyndiam.WriteTrace(f, eng.Trace, *n); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace         %s (%d rounds)\n", *traceOut, len(eng.Trace.Stats))
	}

	fmt.Printf("protocol      %s\n", p.Name())
	fmt.Printf("nodes         %d\n", *n)
	fmt.Printf("adversary     %s\n", *advName)
	fmt.Printf("terminated    %v (round %d)\n", res.Done, res.Rounds)
	fmt.Printf("messages      %d\n", res.Messages)
	fmt.Printf("payload bits  %d\n", res.Bits)
	decided := 0
	for _, ok := range res.Decided {
		if ok {
			decided++
		}
	}
	fmt.Printf("decided nodes %d/%d\n", decided, *n)
	if decided > 0 {
		fmt.Printf("sample output node0=%d node%d=%d\n", res.Outputs[0], *n-1, res.Outputs[*n-1])
	}
	if !res.Done {
		os.Exit(1)
	}
}

func buildAdversary(name string, n, d int, seed uint64) (dyndiam.Adversary, error) {
	switch name {
	case "line":
		return dyndiam.StaticAdversary(dyndiam.Line(n)), nil
	case "ring":
		return dyndiam.StaticAdversary(dyndiam.Ring(n)), nil
	case "star":
		return dyndiam.StaticAdversary(dyndiam.Star(n)), nil
	case "complete":
		return dyndiam.StaticAdversary(dyndiam.Complete(n)), nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		if side*side != n {
			return nil, fmt.Errorf("grid adversary needs a square n, got %d", n)
		}
		return dyndiam.StaticAdversary(dyndiam.Grid(side, side)), nil
	case "hypercube":
		dim := 0
		for 1<<uint(dim) < n {
			dim++
		}
		if 1<<uint(dim) != n {
			return nil, fmt.Errorf("hypercube adversary needs a power-of-two n, got %d", n)
		}
		return dyndiam.StaticAdversary(dyndiam.Hypercube(dim)), nil
	case "random":
		return dyndiam.RandomConnectedAdversary(n, n/2, seed), nil
	case "bounded":
		return dyndiam.BoundedDiameterAdversary(n, d, n/2, seed), nil
	case "rotating":
		return dyndiam.RotatingStarAdversary(n), nil
	case "staller":
		return dyndiam.StallerAdversary(n, 0), nil
	case "tinterval":
		return dyndiam.TIntervalAdversary(n, d, n/4, seed), nil
	case "dual":
		var chords [][2]int
		for i := 0; i < n/2; i++ {
			chords = append(chords, [2]int{i, (i + n/2) % n})
		}
		return dyndiam.DualGraphAdversary(dyndiam.Ring(n), chords, 0.5, seed), nil
	case "deltachurn":
		// Native delta adversary: spanning tree + n/8 churn slots, d of
		// which rewire per round as an O(d) edge-op script — the regime
		// where the fast path's delta ingestion pays off at huge n.
		extra := n / 8
		if extra < 1 {
			extra = 1
		}
		rewires := d
		if rewires > extra {
			rewires = extra
		}
		return dyndiam.DeltaChurnAdversary(n, extra, rewires, seed), nil
	}
	return nil, fmt.Errorf("unknown adversary %q", name)
}

// writeFile creates path, runs fn on it, and closes it, reporting the
// first error.
func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// analyzeTrace loads a recorded execution and reports its aggregate
// statistics plus, when topologies were kept, the dynamic diameter.
func analyzeTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, n, err := dyndiam.ReadTrace(f)
	if err != nil {
		return err
	}
	var msgs, bits int
	for _, st := range tr.Stats {
		msgs += st.Senders
		bits += st.Bits
	}
	fmt.Printf("trace         %s\n", path)
	fmt.Printf("nodes         %d\n", n)
	fmt.Printf("rounds        %d\n", len(tr.Stats))
	fmt.Printf("messages      %d\n", msgs)
	fmt.Printf("payload bits  %d\n", bits)
	if tr.KeepTopologies {
		d, exact := dyndiam.DynamicDiameter(tr.Topologies())
		fmt.Printf("dyn diameter  %d (certified %v)\n", d, exact)
	}
	return nil
}
