package main

import "testing"

func TestBuildAdversary(t *testing.T) {
	good := []struct {
		name string
		n    int
	}{
		{"line", 8}, {"ring", 8}, {"star", 8}, {"complete", 6},
		{"grid", 16}, {"hypercube", 8}, {"random", 10}, {"bounded", 10},
		{"rotating", 7}, {"staller", 5}, {"tinterval", 9}, {"dual", 10},
		{"deltachurn", 12},
	}
	for _, c := range good {
		adv, err := buildAdversary(c.name, c.n, 3, 1)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if adv == nil {
			t.Errorf("%s: nil adversary", c.name)
		}
	}
	bad := []struct {
		name string
		n    int
	}{
		{"nope", 8}, {"grid", 7}, {"hypercube", 9},
	}
	for _, c := range bad {
		if _, err := buildAdversary(c.name, c.n, 3, 1); err == nil {
			t.Errorf("%s n=%d: accepted", c.name, c.n)
		}
	}
}
