// Command gaptable regenerates the headline experiment E4: the cost of
// CFLOOD (and consensus) with known vs unknown diameter over low-diameter
// dynamic networks, next to the paper's Ω((N/log N)^¼) lower-bound curve
// for the unknown case.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"dyndiam"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gaptable: ")

	var (
		sizes     = flag.String("sizes", "32,64,128,256,512", "comma-separated node counts")
		d         = flag.Int("d", 4, "target per-round diameter")
		seed      = flag.Uint64("seed", 1, "public-coin seed")
		consensus = flag.Bool("consensus", false, "also run the consensus gap (slower)")
		asCSV     = flag.Bool("csv", false, "emit CSV instead of an aligned table")
	)
	flag.Parse()

	ns, err := parseSizes(*sizes)
	if err != nil {
		log.Fatal(err)
	}

	rows, err := dyndiam.GapTable(ns, *d, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if *asCSV {
		if err := dyndiam.WriteTableCSV(os.Stdout, dyndiam.FormatGapTable(rows)); err != nil {
			log.Fatal(err)
		}
		return
	}
	dyndiam.FormatGapTable(rows).Fprint(os.Stdout)

	if *consensus {
		fmt.Println()
		crows, err := dyndiam.ConsensusGap(ns, *d, *seed)
		if err != nil {
			log.Fatal(err)
		}
		dyndiam.FormatConsensusGapTbl(crows).Fprint(os.Stdout)
	}
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}
