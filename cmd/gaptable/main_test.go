package main

import "testing"

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("8, 16,32")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{8, 16, 32}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if _, err := parseSizes("8,x"); err == nil {
		t.Error("accepted garbage")
	}
}
