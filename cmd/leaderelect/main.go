// Command leaderelect runs the Theorem 8 experiment E3: the Section 7
// leader-election protocol with unknown diameter and an approximate N',
// swept across network sizes; optionally the two-stage-locking ablation.
//
// With -obs-out (JSONL event log) and/or -trace-out (Chrome trace-event
// JSON, loadable at ui.perfetto.dev) it instead runs one instrumented
// election at the first -sizes entry and captures its phase/lock event
// stream; summarize the JSONL with cmd/obsview.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"dyndiam"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("leaderelect: ")

	var (
		sizes   = flag.String("sizes", "16,32,64,128", "comma-separated node counts")
		d       = flag.Int("d", 4, "target per-round diameter")
		factor  = flag.Float64("nprime-factor", 1.0, "N' = factor * N (premise: |factor-1| <= 1/3-c)")
		cmil    = flag.Int64("c", 200, "margin c in thousandths")
		seed    = flag.Uint64("seed", 1, "public-coin seed")
		phases  = flag.Bool("phases", false, "report the per-run phase breakdown instead of the sweep")
		retries = flag.Int("reliability", 0, "run this many seeded trials and report the error rate")
		obsOut  = flag.String("obs-out", "", "write one instrumented run's event stream as JSONL to this file")
		trcOut  = flag.String("trace-out", "", "write one instrumented run's Chrome trace-event JSON to this file")
		skipC1  = flag.Bool("skip-count1", false, "instrumented run only: disable the COUNT1 pre-lock check (rollback ablation)")
		line    = flag.Bool("line", false, "instrumented run only: static line topology (high diameter; shows rollbacks under -skip-count1)")
	)
	flag.Parse()

	ns, err := parseSizes(*sizes)
	if err != nil {
		log.Fatal(err)
	}

	switch {
	case *obsOut != "" || *trcOut != "":
		if err := observedRun(ns[0], *d, *factor, *cmil, *seed, *skipC1, *line, *obsOut, *trcOut); err != nil {
			log.Fatal(err)
		}
	case *phases:
		var rows []dyndiam.PhaseBreakdown
		for _, n := range ns {
			pb, err := dyndiam.LeaderPhases(n, *d, *seed, nil)
			if err != nil {
				log.Fatal(err)
			}
			rows = append(rows, pb)
		}
		dyndiam.FormatPhaseBreakdown(rows).Fprint(os.Stdout)
	case *retries > 0:
		for _, n := range ns {
			rel, err := dyndiam.LeaderReliability(n, *d, *retries, nil)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(dyndiam.FormatReliability(fmt.Sprintf("N=%d", n), rel))
		}
	default:
		rows, err := dyndiam.LeaderSweep(ns, *d, *factor, *cmil, *seed)
		if err != nil {
			log.Fatal(err)
		}
		dyndiam.FormatLeaderTable(rows).Fprint(os.Stdout)
	}
}

// observedRun executes one Theorem 8 election with a ring sink shared by
// the protocol (phase/lock/candidacy events) and the engine (round/send/
// decide events), then exports the merged stream.
func observedRun(n, targetDiam int, factor float64, cmil int64, seed uint64, skipCount1, line bool, obsOut, trcOut string) error {
	ring := dyndiam.NewObsRing(1 << 20)
	metrics := dyndiam.NewMetricsRegistry()
	extra := map[string]int64{
		dyndiam.ExtraNPrime:    int64(factor * float64(n)),
		dyndiam.ExtraCPermille: cmil,
	}
	if skipCount1 {
		extra[dyndiam.ExtraSkipCount1] = 1
	}
	adv := dyndiam.BoundedDiameterAdversary(n, targetDiam, n/2, seed)
	if line {
		adv = dyndiam.StaticAdversary(dyndiam.Line(n))
	}
	ms := dyndiam.NewMachines(dyndiam.LeaderElect{Obs: ring}, n, make([]int64, n), seed, extra)
	eng := &dyndiam.Engine{Machines: ms, Adv: adv, Workers: 1, Obs: ring, Metrics: metrics}
	res, err := eng.Run(dyndiam.RoundBudget())
	if err != nil {
		return err
	}
	events := ring.Events()
	fmt.Printf("N=%d: %d rounds, %d messages, %d events captured (%d dropped)\n",
		n, res.Rounds, res.Messages, len(events), ring.Dropped())
	if obsOut != "" {
		if err := writeWith(obsOut, func(f *os.File) error {
			return dyndiam.WriteEventsJSONL(f, events)
		}); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", obsOut)
	}
	if trcOut != "" {
		if err := writeWith(trcOut, func(f *os.File) error {
			return dyndiam.WriteChromeTrace(f, events)
		}); err != nil {
			return err
		}
		fmt.Printf("wrote %s (load at ui.perfetto.dev)\n", trcOut)
	}
	return nil
}

func writeWith(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}
