// Command leaderelect runs the Theorem 8 experiment E3: the Section 7
// leader-election protocol with unknown diameter and an approximate N',
// swept across network sizes; optionally the two-stage-locking ablation.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"dyndiam"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("leaderelect: ")

	var (
		sizes   = flag.String("sizes", "16,32,64,128", "comma-separated node counts")
		d       = flag.Int("d", 4, "target per-round diameter")
		factor  = flag.Float64("nprime-factor", 1.0, "N' = factor * N (premise: |factor-1| <= 1/3-c)")
		cmil    = flag.Int64("c", 200, "margin c in thousandths")
		seed    = flag.Uint64("seed", 1, "public-coin seed")
		phases  = flag.Bool("phases", false, "report the per-run phase breakdown instead of the sweep")
		retries = flag.Int("reliability", 0, "run this many seeded trials and report the error rate")
	)
	flag.Parse()

	ns, err := parseSizes(*sizes)
	if err != nil {
		log.Fatal(err)
	}

	switch {
	case *phases:
		var rows []dyndiam.PhaseBreakdown
		for _, n := range ns {
			pb, err := dyndiam.LeaderPhases(n, *d, *seed, nil)
			if err != nil {
				log.Fatal(err)
			}
			rows = append(rows, pb)
		}
		dyndiam.FormatPhaseBreakdown(rows).Fprint(os.Stdout)
	case *retries > 0:
		for _, n := range ns {
			rel, err := dyndiam.LeaderReliability(n, *d, *retries, nil)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(dyndiam.FormatReliability(fmt.Sprintf("N=%d", n), rel))
		}
	default:
		rows, err := dyndiam.LeaderSweep(ns, *d, *factor, *cmil, *seed)
		if err != nil {
			log.Fatal(err)
		}
		dyndiam.FormatLeaderTable(rows).Fprint(os.Stdout)
	}
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}
