// Command obsview summarizes and merges JSONL event streams captured by
// the observability layer (cmd/leaderelect -obs-out, cmd/reduction
// -obs-out, or any obs.WriteJSONL caller).
//
//	obsview run.jsonl                     summarize one stream
//	obsview a.jsonl b.jsonl               merge by round, then summarize
//	obsview -merged-out all.jsonl ...     also write the merged stream
//	obsview -trace-out run.json ...       also convert to a Chrome trace
//
// The summary reports per-kind event counts, the round span, per-name
// phase-entry counts with run-length statistics, span durations (matched
// begin/end pairs per track/node/name lane, plus unmatched counts), the
// flood frontier's final coverage, lock churn, and the total send/bit
// volume — the quantities the paper's round and communication bounds are
// stated in.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"dyndiam"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("obsview: ")

	var (
		mergedOut = flag.String("merged-out", "", "write the merged event stream as JSONL to this file")
		trcOut    = flag.String("trace-out", "", "write the merged stream as Chrome trace-event JSON to this file")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: obsview [-merged-out FILE] [-trace-out FILE] events.jsonl...")
		os.Exit(2)
	}

	events, err := loadMerged(flag.Args())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(summarize(events))

	if *mergedOut != "" {
		if err := writeWith(*mergedOut, func(f *os.File) error {
			return dyndiam.WriteEventsJSONL(f, events)
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *mergedOut)
	}
	if *trcOut != "" {
		if err := writeWith(*trcOut, func(f *os.File) error {
			return dyndiam.WriteChromeTrace(f, events)
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (load at ui.perfetto.dev)\n", *trcOut)
	}
}

// loadMerged reads every file and interleaves the streams by round. The
// sort is stable, so events from the same round keep first their file
// order and then their within-file order — deterministic for any fixed
// argument list.
func loadMerged(paths []string) ([]dyndiam.ObsEvent, error) {
	var all []dyndiam.ObsEvent
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		evs, err := dyndiam.ReadEventsJSONL(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p, err)
		}
		all = append(all, evs...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Round < all[j].Round })
	return all, nil
}

// summarize renders the textual report for a merged stream.
func summarize(events []dyndiam.ObsEvent) string {
	var b strings.Builder
	if len(events) == 0 {
		return "no events\n"
	}

	minRound, maxRound := events[0].Round, events[0].Round
	var kindCount [16]int
	var sends, bits int64
	decides := 0
	phases := map[string]*phaseStat{}
	var phaseNames []string
	lastEnter := map[[2]int32]int32{} // (track,node) -> round of last phase entry
	var spanTotal, spanCount int64
	locks, rollbacks, spoils := 0, 0, 0
	spans := map[string]*spanStat{}
	var spanNames []string
	openBegins := map[spanLane][]int32{} // lane -> stack of open begin times
	var frontierLast *dyndiam.ObsEvent

	for _, ev := range events {
		if ev.Round < minRound {
			minRound = ev.Round
		}
		if ev.Round > maxRound {
			maxRound = ev.Round
		}
		if int(ev.Kind) < len(kindCount) {
			kindCount[ev.Kind]++
		}
		switch ev.Kind {
		case dyndiam.ObsSend:
			sends++
			bits += ev.A
		case dyndiam.ObsDecide:
			decides++
		case dyndiam.ObsPhaseEnter:
			name := ev.Name.String()
			if name == "" {
				name = "phase"
			}
			st := phases[name]
			if st == nil {
				st = &phaseStat{first: ev.Round}
				phases[name] = st
				phaseNames = append(phaseNames, name)
			}
			st.count++
			st.last = ev.Round
			key := [2]int32{ev.Track, ev.Node}
			if prev, ok := lastEnter[key]; ok && ev.Round > prev {
				spanTotal += int64(ev.Round - prev)
				spanCount++
			}
			lastEnter[key] = ev.Round
		case dyndiam.ObsLockAcquire:
			locks++
		case dyndiam.ObsLockRollback:
			rollbacks++
		case dyndiam.ObsSpoilMark:
			spoils++
		case dyndiam.ObsSpanBegin, dyndiam.ObsSpanEnd:
			name := ev.Name.String()
			if name == "" {
				name = "span"
			}
			st := spans[name]
			if st == nil {
				st = &spanStat{}
				spans[name] = st
				spanNames = append(spanNames, name)
			}
			lane := spanLane{track: ev.Track, node: ev.Node, name: name}
			if ev.Kind == dyndiam.ObsSpanBegin {
				openBegins[lane] = append(openBegins[lane], ev.Round)
				break
			}
			// End: match the innermost open begin on the same lane.
			stack := openBegins[lane]
			if len(stack) == 0 {
				st.strayEnds++
				break
			}
			begin := stack[len(stack)-1]
			openBegins[lane] = stack[:len(stack)-1]
			st.matched++
			st.total += int64(ev.Round - begin)
		case dyndiam.ObsFrontier:
			ev := ev
			frontierLast = &ev
		}
	}
	for lane, stack := range openBegins {
		spans[lane.name].openBegins += len(stack)
	}

	fmt.Fprintf(&b, "%d events over rounds %d..%d\n", len(events), minRound, maxRound)
	for k := dyndiam.ObsRoundStart; k <= dyndiam.ObsCustom; k++ {
		if kindCount[k] > 0 {
			fmt.Fprintf(&b, "  %-14s %8d\n", k.String(), kindCount[k])
		}
	}
	if sends > 0 {
		fmt.Fprintf(&b, "traffic: %d sends, %d payload bits\n", sends, bits)
	}
	if decides > 0 {
		fmt.Fprintf(&b, "decisions: %d\n", decides)
	}
	if locks+rollbacks > 0 {
		fmt.Fprintf(&b, "locks: %d acquired, %d rolled back\n", locks, rollbacks)
	}
	if spoils > 0 {
		fmt.Fprintf(&b, "spoil marks: %d\n", spoils)
	}
	if len(phaseNames) > 0 {
		fmt.Fprintf(&b, "phases:\n")
		for _, name := range phaseNames {
			st := phases[name]
			fmt.Fprintf(&b, "  %-14s %6d entries, rounds %d..%d\n", name, st.count, st.first, st.last)
		}
		if spanCount > 0 {
			fmt.Fprintf(&b, "  mean rounds between a node's phase entries: %.1f\n",
				float64(spanTotal)/float64(spanCount))
		}
	}
	if len(spanNames) > 0 {
		fmt.Fprintf(&b, "spans:\n")
		for _, name := range spanNames {
			st := spans[name]
			if st.matched > 0 {
				fmt.Fprintf(&b, "  %-14s %6d matched, total %d ticks, mean %.1f\n",
					name, st.matched, st.total, float64(st.total)/float64(st.matched))
			}
			if st.openBegins > 0 || st.strayEnds > 0 {
				fmt.Fprintf(&b, "  %-14s %6d unclosed begins, %d stray ends\n",
					name, st.openBegins, st.strayEnds)
			}
		}
	}
	if frontierLast != nil {
		fmt.Fprintf(&b, "frontier: %d informed at round %d (last sample: %d newly)\n",
			frontierLast.B, frontierLast.Round, frontierLast.A)
	}
	return b.String()
}

// spanLane identifies one span nesting stack: begins and ends match only
// within the same (track, node, name), mirroring the Chrome exporter.
type spanLane struct {
	track, node int32
	name        string
}

// spanStat aggregates one span name across every lane it appears on.
type spanStat struct {
	matched    int   // begin/end pairs
	total      int64 // summed logical durations of matched pairs
	openBegins int   // begins never closed
	strayEnds  int   // ends with no open begin on their lane
}

type phaseStat struct {
	count       int
	first, last int32
}

func writeWith(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
