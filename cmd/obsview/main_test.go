package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dyndiam"
)

func captureRun(t *testing.T, seed uint64) []dyndiam.ObsEvent {
	t.Helper()
	n := 12
	ring := dyndiam.NewObsRing(1 << 16)
	adv := dyndiam.BoundedDiameterAdversary(n, 4, n/2, seed)
	ms := dyndiam.NewMachines(dyndiam.LeaderElect{Obs: ring}, n, make([]int64, n), seed, nil)
	eng := &dyndiam.Engine{Machines: ms, Adv: adv, Workers: 1, Obs: ring}
	if _, err := eng.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	return ring.Events()
}

func TestSummarizeReportsPhasesAndLocks(t *testing.T) {
	out := summarize(captureRun(t, 7))
	for _, want := range []string{
		"events over rounds 1..",
		"phase_enter",
		"spread",
		"count1",
		"locks:",
		"traffic:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if got := summarize(nil); got != "no events\n" {
		t.Fatalf("summarize(nil) = %q", got)
	}
}

// TestLoadMergedInterleavesByRound writes two JSONL files and checks the
// merged stream is round-sorted, loses nothing, and summarizes to the
// same text regardless of how the events were split across files.
func TestLoadMergedInterleavesByRound(t *testing.T) {
	events := captureRun(t, 11)
	if len(events) < 10 {
		t.Fatalf("capture too small: %d events", len(events))
	}
	dir := t.TempDir()
	write := func(name string, evs []dyndiam.ObsEvent) string {
		p := filepath.Join(dir, name)
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := dyndiam.WriteEventsJSONL(f, evs); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return p
	}
	whole := write("whole.jsonl", events)
	// Split by parity of index: both halves stay round-ordered, so the
	// stable merge must reproduce a round-sorted interleaving.
	var a, b []dyndiam.ObsEvent
	for i, ev := range events {
		if i%2 == 0 {
			a = append(a, ev)
		} else {
			b = append(b, ev)
		}
	}
	pa, pb := write("a.jsonl", a), write("b.jsonl", b)

	mergedWhole, err := loadMerged([]string{whole})
	if err != nil {
		t.Fatal(err)
	}
	mergedSplit, err := loadMerged([]string{pa, pb})
	if err != nil {
		t.Fatal(err)
	}
	if len(mergedWhole) != len(events) || len(mergedSplit) != len(events) {
		t.Fatalf("merge lost events: %d / %d, want %d", len(mergedWhole), len(mergedSplit), len(events))
	}
	for i := 1; i < len(mergedSplit); i++ {
		if mergedSplit[i].Round < mergedSplit[i-1].Round {
			t.Fatalf("merged stream not round-sorted at %d", i)
		}
	}
	if summarize(mergedWhole) != summarize(mergedSplit) {
		t.Error("summary differs between whole and split inputs")
	}
}
