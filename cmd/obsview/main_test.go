package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dyndiam"
)

func captureRun(t *testing.T, seed uint64) []dyndiam.ObsEvent {
	t.Helper()
	n := 12
	ring := dyndiam.NewObsRing(1 << 16)
	adv := dyndiam.BoundedDiameterAdversary(n, 4, n/2, seed)
	ms := dyndiam.NewMachines(dyndiam.LeaderElect{Obs: ring}, n, make([]int64, n), seed, nil)
	eng := &dyndiam.Engine{Machines: ms, Adv: adv, Workers: 1, Obs: ring}
	if _, err := eng.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	return ring.Events()
}

func TestSummarizeReportsPhasesAndLocks(t *testing.T) {
	out := summarize(captureRun(t, 7))
	for _, want := range []string{
		"events over rounds 1..",
		"phase_enter",
		"spread",
		"count1",
		"locks:",
		"traffic:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if got := summarize(nil); got != "no events\n" {
		t.Fatalf("summarize(nil) = %q", got)
	}
}

func TestSummarizeSpansAndFrontier(t *testing.T) {
	events := []dyndiam.ObsEvent{
		// One matched engine-run span of 6 rounds plus a nested 2-round
		// span on the same lane.
		{Kind: dyndiam.ObsSpanBegin, Round: 0, Track: 0, Node: 3, A: 64, Name: dyndiam.InternObsKey("flood_fast")},
		{Kind: dyndiam.ObsSpanBegin, Round: 2, Track: 0, Node: 3, Name: dyndiam.InternObsKey("flood_fast")},
		{Kind: dyndiam.ObsSpanEnd, Round: 4, Track: 0, Node: 3, Name: dyndiam.InternObsKey("flood_fast")},
		{Kind: dyndiam.ObsSpanEnd, Round: 6, Track: 0, Node: 3, A: 64, Name: dyndiam.InternObsKey("flood_fast")},
		// A begin nobody closes and an end nobody opened, on other lanes.
		{Kind: dyndiam.ObsSpanBegin, Round: 1, Track: 2, Name: dyndiam.InternObsKey("execute")},
		{Kind: dyndiam.ObsSpanEnd, Round: 5, Track: 1, Node: 9, Name: dyndiam.InternObsKey("sweep_cell")},
		// Frontier samples; the last one is the coverage report.
		{Kind: dyndiam.ObsFrontier, Round: 3, A: 17, B: 31},
		{Kind: dyndiam.ObsFrontier, Round: 6, A: 33, B: 64},
	}
	out := summarize(events)
	for _, want := range []string{
		"span_begin",
		"span_end",
		"flood_fast          2 matched, total 8 ticks, mean 4.0",
		"execute             1 unclosed begins, 0 stray ends",
		"sweep_cell          0 unclosed begins, 1 stray ends",
		"frontier: 64 informed at round 6 (last sample: 33 newly)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

// The span summary must survive a JSONL round trip — the normal obsview
// input path — not just in-memory streams.
func TestSpanSummaryFromJSONLFile(t *testing.T) {
	ring := dyndiam.NewObsRing(16)
	sp := dyndiam.BeginSpan(ring, "flood_fast", 0, 0, 1, 128)
	sp.End(9, 128)
	p := filepath.Join(t.TempDir(), "spans.jsonl")
	f, err := os.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := dyndiam.WriteEventsJSONL(f, ring.Events()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := loadMerged([]string{p})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summarize(events), "flood_fast          1 matched, total 8 ticks, mean 8.0") {
		t.Errorf("JSONL round trip lost the span:\n%s", summarize(events))
	}
}

func TestLoadMergedErrorPaths(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Empty input is not an error: zero events summarize as "no events".
	empty := write("empty.jsonl", "")
	events, err := loadMerged([]string{empty})
	if err != nil {
		t.Fatalf("empty file: %v", err)
	}
	if len(events) != 0 || summarize(events) != "no events\n" {
		t.Errorf("empty file = %d events, %q", len(events), summarize(events))
	}

	// A malformed line fails with the file and line number so the broken
	// capture is findable.
	bad := write("bad.jsonl",
		`{"kind":"round_start","round":1}`+"\n"+`{"kind":"round_end",`+"\n")
	if _, err := loadMerged([]string{bad}); err == nil {
		t.Error("malformed JSONL accepted")
	} else if !strings.Contains(err.Error(), "bad.jsonl") || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error %q does not name the file and line", err)
	}

	// An unknown event kind is a schema error, not silently dropped.
	alien := write("alien.jsonl", `{"kind":"warp_drive","round":1}`+"\n")
	if _, err := loadMerged([]string{alien}); err == nil {
		t.Error("unknown kind accepted")
	} else if !strings.Contains(err.Error(), "warp_drive") {
		t.Errorf("error %q does not name the unknown kind", err)
	}

	// A missing file names the path.
	if _, err := loadMerged([]string{filepath.Join(dir, "nope.jsonl")}); err == nil {
		t.Error("missing file accepted")
	}

	// Files with disjoint kind sets merge: the summary covers both.
	spansOnly := write("spans.jsonl",
		`{"kind":"span_begin","round":0,"name":"flood_fast"}`+"\n"+
			`{"kind":"span_end","round":4,"name":"flood_fast"}`+"\n")
	trafficOnly := write("traffic.jsonl",
		`{"kind":"send","round":2,"node":1,"a":96}`+"\n")
	merged, err := loadMerged([]string{spansOnly, trafficOnly})
	if err != nil {
		t.Fatal(err)
	}
	out := summarize(merged)
	for _, want := range []string{"flood_fast", "traffic: 1 sends, 96 payload bits"} {
		if !strings.Contains(out, want) {
			t.Errorf("disjoint-kind merge missing %q:\n%s", want, out)
		}
	}
}

// TestLoadMergedInterleavesByRound writes two JSONL files and checks the
// merged stream is round-sorted, loses nothing, and summarizes to the
// same text regardless of how the events were split across files.
func TestLoadMergedInterleavesByRound(t *testing.T) {
	events := captureRun(t, 11)
	if len(events) < 10 {
		t.Fatalf("capture too small: %d events", len(events))
	}
	dir := t.TempDir()
	write := func(name string, evs []dyndiam.ObsEvent) string {
		p := filepath.Join(dir, name)
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := dyndiam.WriteEventsJSONL(f, evs); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return p
	}
	whole := write("whole.jsonl", events)
	// Split by parity of index: both halves stay round-ordered, so the
	// stable merge must reproduce a round-sorted interleaving.
	var a, b []dyndiam.ObsEvent
	for i, ev := range events {
		if i%2 == 0 {
			a = append(a, ev)
		} else {
			b = append(b, ev)
		}
	}
	pa, pb := write("a.jsonl", a), write("b.jsonl", b)

	mergedWhole, err := loadMerged([]string{whole})
	if err != nil {
		t.Fatal(err)
	}
	mergedSplit, err := loadMerged([]string{pa, pb})
	if err != nil {
		t.Fatal(err)
	}
	if len(mergedWhole) != len(events) || len(mergedSplit) != len(events) {
		t.Fatalf("merge lost events: %d / %d, want %d", len(mergedWhole), len(mergedSplit), len(events))
	}
	for i := 1; i < len(mergedSplit); i++ {
		if mergedSplit[i].Round < mergedSplit[i-1].Round {
			t.Fatalf("merged stream not round-sorted at %d", i)
		}
	}
	if summarize(mergedWhole) != summarize(mergedSplit) {
		t.Error("summary differs between whole and split inputs")
	}
}
