// Command reduction drives the paper's lower-bound machinery:
//
//	reduction -figure 1        print the Figure 1 type-Γ schedule
//	reduction -figure 2        print the Figure 2 centipede cascade
//	reduction -figure 3        print the Figure 3 mixed-label centipede
//	reduction -thm 6           run the Theorem 6 (CFLOOD) experiment E1
//	reduction -thm 7           run the Theorem 7 (CONSENSUS) experiment E2
//	reduction -diameters       measure composition diameters (O(1) vs Ω(q))
//
// With -trace-out FILE it runs one instrumented Theorem 6 reduction at
// the first -q value and writes the spoil/forwarding event stream as
// Chrome trace-event JSON (load at ui.perfetto.dev); add -obs-out for
// the same stream as JSONL, which cmd/obsview summarizes.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"dyndiam"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("reduction: ")

	var (
		figure    = flag.Int("figure", 0, "print figure 1, 2, or 3")
		thm       = flag.Int("thm", 0, "run the theorem 6 or 7 experiment")
		diameters = flag.Bool("diameters", false, "measure composition diameters")
		comm      = flag.Bool("comm", false, "communication accounting table (reduction vs trivial vs floor)")
		spoiled   = flag.Bool("spoiled", false, "spoiled-region growth table for a 0-instance")
		dot       = flag.Int("dot", -1, "emit Graphviz DOT of the Theorem 6 network at this round")
		dotParty  = flag.String("dot-party", "reference", "adversary for -dot: reference|alice|bob")
		qs        = flag.String("q", "17,33,65", "comma-separated q values (odd)")
		n         = flag.Int("n", 2, "DISJOINTNESSCP string length for theorem 6")
		seed      = flag.Uint64("seed", 1, "public-coin seed")
		trcOut    = flag.String("trace-out", "", "write one instrumented Theorem 6 run's Chrome trace to this file")
		obsOut    = flag.String("obs-out", "", "write the same run's event stream as JSONL to this file")
	)
	flag.Parse()

	switch {
	case *trcOut != "" || *obsOut != "":
		qv, err := parseQs(*qs)
		if err != nil {
			log.Fatal(err)
		}
		if err := observedReduction(qv[0], *n, *seed, *trcOut, *obsOut); err != nil {
			log.Fatal(err)
		}

	case *dot >= 0:
		qv, err := parseQs(*qs)
		if err != nil {
			log.Fatal(err)
		}
		in := dyndiam.RandomDisjZero(*n, qv[0], 1, *seed)
		net, err := dyndiam.NewCFloodNetwork(in)
		if err != nil {
			log.Fatal(err)
		}
		var party dyndiam.Party
		switch *dotParty {
		case "reference":
			party = dyndiam.Reference
		case "alice":
			party = dyndiam.Alice
		case "bob":
			party = dyndiam.Bob
		default:
			log.Fatalf("unknown party %q", *dotParty)
		}
		fmt.Print(dyndiam.CFloodDOT(net, party, *dot))

	case *figure != 0:
		var out string
		var err error
		switch *figure {
		case 1:
			out, err = dyndiam.Figure1()
		case 2:
			out, err = dyndiam.Figure2()
		case 3:
			out, err = dyndiam.Figure3()
		default:
			log.Fatalf("no figure %d in the paper", *figure)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)

	case *thm == 6:
		qv, err := parseQs(*qs)
		if err != nil {
			log.Fatal(err)
		}
		rows, err := dyndiam.CFloodReductionTable(qv, *n, *seed)
		if err != nil {
			log.Fatal(err)
		}
		dyndiam.FormatReductionTable(
			"E1: Theorem 6 reduction: fast oracles err on 0-instances, safe oracles cannot beat the horizon",
			rows).Fprint(os.Stdout)

	case *thm == 7:
		qv, err := parseQs(*qs)
		if err != nil {
			log.Fatal(err)
		}
		rows, err := dyndiam.ConsensusReduction(qv, *seed)
		if err != nil {
			log.Fatal(err)
		}
		dyndiam.FormatConsensusRedTbl(rows).Fprint(os.Stdout)

	case *diameters:
		qv, err := parseQs(*qs)
		if err != nil {
			log.Fatal(err)
		}
		rows, err := dyndiam.ConstructionDiameters(qv, *n, *seed)
		if err != nil {
			log.Fatal(err)
		}
		dyndiam.FormatDiameterTable(rows).Fprint(os.Stdout)

	case *spoiled:
		qv, err := parseQs(*qs)
		if err != nil {
			log.Fatal(err)
		}
		rows, err := dyndiam.SpoiledGrowth(*n, qv[0], *seed)
		if err != nil {
			log.Fatal(err)
		}
		dyndiam.FormatSpoiledTable(3*qv[0]**n+4, rows).Fprint(os.Stdout)

	case *comm:
		qv, err := parseQs(*qs)
		if err != nil {
			log.Fatal(err)
		}
		rows, err := dyndiam.CommTable([]int{*n, 2 * *n, 4 * *n}, qv, *seed)
		if err != nil {
			log.Fatal(err)
		}
		dyndiam.FormatCommTable(rows).Fprint(os.Stdout)

	default:
		flag.Usage()
		os.Exit(2)
	}
}

// observedReduction runs the Theorem 6 simulation on a 0-instance (the
// interesting case: the spoiled regions grow until the parties must
// communicate) with an event ring attached, then exports the stream.
func observedReduction(q, n int, seed uint64, trcOut, obsOut string) error {
	in := dyndiam.RandomDisjZero(n, q, 1, seed)
	net, err := dyndiam.NewCFloodNetwork(in)
	if err != nil {
		return err
	}
	ring := dyndiam.NewObsRing(1 << 20)
	setup := dyndiam.CFloodReductionSetup(net, dyndiam.CFlood{}, seed,
		map[string]int64{dyndiam.ExtraDiameter: 10})
	setup.Obs = ring
	res, err := dyndiam.RunReduction(setup, true)
	if err != nil {
		return err
	}
	events := ring.Events()
	fmt.Printf("q=%d N=%d: %d rounds, %d+%d forwarded bits, %d events captured (%d dropped)\n",
		q, net.N, res.Rounds, res.BitsAliceToBob, res.BitsBobToAlice, len(events), ring.Dropped())
	if obsOut != "" {
		if err := writeWith(obsOut, func(f *os.File) error {
			return dyndiam.WriteEventsJSONL(f, events)
		}); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", obsOut)
	}
	if trcOut != "" {
		if err := writeWith(trcOut, func(f *os.File) error {
			return dyndiam.WriteChromeTrace(f, events)
		}); err != nil {
			return err
		}
		fmt.Printf("wrote %s (load at ui.perfetto.dev)\n", trcOut)
	}
	return nil
}

func writeWith(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseQs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad q %q: %v", part, err)
		}
		if v < 3 || v%2 == 0 {
			return nil, fmt.Errorf("q must be odd and >= 3, got %d", v)
		}
		out = append(out, v)
	}
	return out, nil
}
