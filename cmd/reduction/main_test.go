package main

import "testing"

func TestParseQs(t *testing.T) {
	got, err := parseQs("9,17, 33")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 9 || got[2] != 33 {
		t.Fatalf("got %v", got)
	}
	for _, bad := range []string{"8", "2", "abc", "9,,17"} {
		if _, err := parseQs(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}
