// Command report regenerates the full reproduction report: it runs a
// standard-scale version of every experiment (E1-E11, DESIGN.md §4) and
// writes aligned-text and CSV outputs plus the construction figures into a
// directory (default ./reports).
//
//	go run ./cmd/report -out reports
//
// Runtime is a few minutes at the default scale; -quick shrinks every
// sweep for a fast smoke run, and -workers runs sweep cells concurrently
// (the tables are identical at every worker count). -obs-out FILE
// additionally collects per-cell metric roll-ups across every sweep and
// writes them as a Prometheus text exposition — identical at every
// -workers setting.
//
// -checkpoint FILE records each experiment step as it completes; with
// -resume, steps already recorded there (whose outputs exist in -out) are
// skipped, so an interrupted report re-runs only its unfinished steps.
// Every step's tables are pure functions of the flags, so a resumed
// report's outputs are identical to an uninterrupted one. Note -obs-out
// roll-ups only cover the steps that actually ran in this invocation.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"dyndiam"
	"dyndiam/internal/cliutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("report: ")

	var (
		out     = flag.String("out", "reports", "output directory")
		seed    = flag.Uint64("seed", 1, "public-coin seed")
		quick   = flag.Bool("quick", false, "shrink all sweeps for a fast smoke run")
		workers = flag.Int("workers", 0, "concurrent sweep cells (<1 = GOMAXPROCS); does not change results")
		obsOut  = flag.String("obs-out", "", "write sweep metric roll-ups as Prometheus text to this file")
		ckpt    = flag.String("checkpoint", "", "record completed steps in this file")
		resume  = flag.Bool("resume", false, "skip steps already recorded in the -checkpoint file")
	)
	flag.Parse()
	dyndiam.SetSweepWorkers(*workers)
	if *obsOut != "" {
		dyndiam.EnableSweepMetrics()
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	sizes := []int{32, 64, 128, 256}
	qs := []int{17, 33, 65}
	leaderSizes := []int{16, 32, 64}
	if *quick {
		sizes = []int{32, 64}
		qs = []int{17, 33}
		leaderSizes = []int{16, 32}
	}

	type step struct {
		name string
		run  func() (*dyndiam.ResultTable, error)
	}
	steps := []step{
		{"e4_gap", func() (*dyndiam.ResultTable, error) {
			rows, err := dyndiam.GapTable(sizes, 4, *seed)
			if err != nil {
				return nil, err
			}
			return dyndiam.FormatGapTable(rows), nil
		}},
		{"e1_thm6_reduction", func() (*dyndiam.ResultTable, error) {
			rows, err := dyndiam.CFloodReductionTable(qs, 2, *seed)
			if err != nil {
				return nil, err
			}
			return dyndiam.FormatReductionTable("E1: Theorem 6 reduction", rows), nil
		}},
		{"e1_diameters", func() (*dyndiam.ResultTable, error) {
			rows, err := dyndiam.ConstructionDiameters(qs, 2, *seed)
			if err != nil {
				return nil, err
			}
			return dyndiam.FormatDiameterTable(rows), nil
		}},
		{"e2_thm7_reduction", func() (*dyndiam.ResultTable, error) {
			rows, err := dyndiam.ConsensusReduction([]int{201, 401}, *seed)
			if err != nil {
				return nil, err
			}
			return dyndiam.FormatConsensusRedTbl(rows), nil
		}},
		{"e3_thm8_leader", func() (*dyndiam.ResultTable, error) {
			rows, err := dyndiam.LeaderSweep(leaderSizes, 4, 0.9, 150, *seed)
			if err != nil {
				return nil, err
			}
			return dyndiam.FormatLeaderTable(rows), nil
		}},
		{"e5_estimate", func() (*dyndiam.ResultTable, error) {
			rows, err := dyndiam.EstimateSweep(leaderSizes, []int{24, 64, 128}, 4, *seed)
			if err != nil {
				return nil, err
			}
			return dyndiam.FormatEstimateTable(rows), nil
		}},
		{"e6_majority", func() (*dyndiam.ResultTable, error) {
			rows, err := dyndiam.MajoritySweep(48, []float64{0.25, 0.5, 0.75, 1.0}, 4, *seed)
			if err != nil {
				return nil, err
			}
			return dyndiam.FormatMajorityTable(rows), nil
		}},
		{"e9_comm", func() (*dyndiam.ResultTable, error) {
			rows, err := dyndiam.CommTable([]int{2, 4}, qs, *seed)
			if err != nil {
				return nil, err
			}
			return dyndiam.FormatCommTable(rows), nil
		}},
		{"e10_phases", func() (*dyndiam.ResultTable, error) {
			var rows []dyndiam.PhaseBreakdown
			for _, n := range leaderSizes {
				pb, err := dyndiam.LeaderPhases(n, 4, *seed, nil)
				if err != nil {
					return nil, err
				}
				rows = append(rows, pb)
			}
			return dyndiam.FormatPhaseBreakdown(rows), nil
		}},
	}

	done := map[string]bool{}
	if *ckpt != "" && *resume {
		var err error
		if done, err = loadCheckpoint(*ckpt); err != nil {
			log.Fatal(err)
		}
	}
	stepNames := make([]string, len(steps))
	for i, s := range steps {
		stepNames[i] = s.name
	}
	for _, s := range steps {
		if done[s.name] && stepOutputsExist(*out, s.name) {
			fmt.Printf("%-20s %8s  -> resumed from checkpoint\n", s.name, "-")
			continue
		}
		start := time.Now()
		table, err := s.run()
		if err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		if err := writeTable(*out, s.name, table); err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		done[s.name] = true
		if *ckpt != "" {
			if err := saveCheckpoint(*ckpt, stepNames, done); err != nil {
				log.Fatalf("checkpoint: %v", err)
			}
		}
		fmt.Printf("%-20s %8s  -> %s.{txt,csv}\n", s.name, time.Since(start).Round(time.Millisecond), s.name)
	}

	if *obsOut != "" {
		reg := dyndiam.TakeSweepMetrics()
		if reg == nil {
			log.Fatal("obs-out: no sweep metrics were collected")
		}
		f, err := os.Create(*obsOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := dyndiam.WriteMetricsText(f, reg); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %8s  -> %s\n", "sweep_metrics", "-", *obsOut)
	}

	// Construction figures.
	figures := []struct {
		name string
		gen  func() (string, error)
	}{
		{"figure1_gamma", dyndiam.Figure1},
		{"figure2_centipede", dyndiam.Figure2},
		{"figure3_centipede", dyndiam.Figure3},
	}
	for _, f := range figures {
		txt, err := f.gen()
		if err != nil {
			log.Fatalf("%s: %v", f.name, err)
		}
		if err := os.WriteFile(filepath.Join(*out, f.name+".txt"), []byte(txt), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %8s  -> %s.txt\n", f.name, "-", f.name)
	}

	// A DOT rendering of the Theorem 6 composition for the smallest q.
	in := dyndiam.RandomDisjZero(2, qs[0], 1, *seed)
	net, err := dyndiam.NewCFloodNetwork(in)
	if err != nil {
		log.Fatal(err)
	}
	dot := dyndiam.CFloodDOT(net, dyndiam.Reference, 2)
	if err := os.WriteFile(filepath.Join(*out, "composition.dot"), []byte(dot), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-20s %8s  -> composition.dot\n", "composition_dot", "-")
}

// reportCheckpoint is the resume state: names of completed steps. The
// step outputs themselves live in -out; the checkpoint only records which
// are done, and resume re-verifies the files exist before skipping.
type reportCheckpoint struct {
	Done []string `json:"done"`
}

func loadCheckpoint(path string) (map[string]bool, error) {
	done := map[string]bool{}
	var cp reportCheckpoint
	if _, err := cliutil.LoadJSON(path, &cp); err != nil {
		return nil, err
	}
	for _, name := range cp.Done {
		done[name] = true
	}
	return done, nil
}

// saveCheckpoint records the completed steps in stepNames order (a slice
// walk, so the file is deterministic — no map iteration).
func saveCheckpoint(path string, stepNames []string, done map[string]bool) error {
	var cp reportCheckpoint
	for _, name := range stepNames {
		if done[name] {
			cp.Done = append(cp.Done, name)
		}
	}
	return cliutil.SaveJSON(path, cp)
}

func stepOutputsExist(dir, name string) bool {
	for _, ext := range []string{".txt", ".csv"} {
		if _, err := os.Stat(filepath.Join(dir, name+ext)); err != nil {
			return false
		}
	}
	return true
}

func writeTable(dir, name string, t *dyndiam.ResultTable) error {
	txt, err := os.Create(filepath.Join(dir, name+".txt"))
	if err != nil {
		return err
	}
	t.Fprint(txt)
	if err := txt.Close(); err != nil {
		return err
	}
	csvf, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	if err := dyndiam.WriteTableCSV(csvf, t); err != nil {
		return err
	}
	return csvf.Close()
}
