package main

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dyndiam"
)

func TestCheckpointRoundtripKeepsStepOrder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.ckpt")
	stepNames := []string{"e4_gap", "e1_thm6_reduction", "e3_thm8_leader"}
	// done in a different order than the steps ran; the file must follow
	// stepNames order regardless.
	done := map[string]bool{"e3_thm8_leader": true, "e4_gap": true}
	if err := saveCheckpoint(path, stepNames, done); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if i, j := strings.Index(string(data), "e4_gap"), strings.Index(string(data), "e3_thm8_leader"); i < 0 || j < 0 || i > j {
		t.Errorf("checkpoint not in step order:\n%s", data)
	}
	got, err := loadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, done) {
		t.Errorf("roundtrip = %v want %v", got, done)
	}
}

func TestLoadCheckpointMissingAndCorrupt(t *testing.T) {
	done, err := loadCheckpoint(filepath.Join(t.TempDir(), "missing"))
	if err != nil || len(done) != 0 || done == nil {
		t.Errorf("missing checkpoint = (%v, %v), want empty usable map", done, err)
	}
	bad := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCheckpoint(bad); err == nil {
		t.Error("corrupt checkpoint loaded")
	}
}

func TestStepOutputsExist(t *testing.T) {
	dir := t.TempDir()
	if stepOutputsExist(dir, "e4_gap") {
		t.Error("missing outputs reported present")
	}
	tbl := &dyndiam.ResultTable{Caption: "t", Header: []string{"a"}}
	tbl.Add(1)
	if err := writeTable(dir, "e4_gap", tbl); err != nil {
		t.Fatal(err)
	}
	if !stepOutputsExist(dir, "e4_gap") {
		t.Error("written outputs reported missing")
	}
	// Both files must exist: deleting one invalidates the step.
	if err := os.Remove(filepath.Join(dir, "e4_gap.csv")); err != nil {
		t.Fatal(err)
	}
	if stepOutputsExist(dir, "e4_gap") {
		t.Error("half-deleted outputs reported present")
	}
}
