// Package dyndiam is a library-scale reproduction of "The Cost of Unknown
// Diameter in Dynamic Networks" (Yu, Zhao, Jahja; SPAA 2016).
//
// It provides, under one public API:
//
//   - A synchronous dynamic-network simulator faithful to the paper's
//     model: per-round adversarial connected topologies, the send/receive
//     CONGEST discipline with enforced O(log N)-bit messages, public
//     coins, and the causal (dynamic) diameter.
//   - The distributed protocols around the paper's upper bounds: confirmed
//     flooding (CFLOOD) with known and unknown diameter, consensus, MAX,
//     HEAR-FROM-N-NODES, exponential-minima size estimation, one-sided
//     majority counting, and the Section 7 leader-election protocol that
//     replaces knowledge of D with an estimate N' of N.
//   - The paper's lower-bound machinery as executable code: the
//     DISJOINTNESSCP_{n,q} communication problem with its cycle promise,
//     the type-Γ/Λ/Υ subnetworks with their three divergent adversaries
//     and spoiled-node schedules, the composition networks of Theorems 6
//     and 7, and the two-party Alice/Bob simulation harness with exact bit
//     accounting and an empirical Lemma 5 referee.
//   - An experiment harness regenerating every construction figure and
//     theorem-level claim of the paper (see DESIGN.md and EXPERIMENTS.md).
//
// Quick start:
//
//	adv := dyndiam.RandomConnectedAdversary(64, 32, 1)
//	inputs := make([]int64, 64)
//	inputs[0] = 42 // node 0 holds the token
//	ms := dyndiam.NewMachines(dyndiam.CFlood{}, 64, inputs, 7,
//		map[string]int64{dyndiam.ExtraDiameter: 63})
//	eng := &dyndiam.Engine{Machines: ms, Adv: adv, Terminated: dyndiam.NodeDecided(0)}
//	res, err := eng.Run(1000)
//
// The cmd/ binaries (dynsim, gaptable, reduction, leaderelect) and the
// examples/ programs exercise this API end to end.
//
// Executions can be observed without being perturbed: attach an ObsRing
// to Engine.Obs (and LeaderElect.Obs / ReductionSetup.Obs) to capture a
// typed round/phase/lock event stream, and a MetricsRegistry to
// Engine.Metrics for counters and histograms. A nil sink costs nothing —
// the round loop stays allocation-free — and captured streams export as
// JSONL, Prometheus text, or Chrome trace JSON (WriteEventsJSONL,
// WriteMetricsText, WriteChromeTrace; summarized by cmd/obsview). See
// internal/obs and "Observability" in README.md.
//
// Robustness is measured, not assumed: a FaultPlan (NewFaultPlan, from a
// FaultSpec of drop/dup/corrupt rates, crash/rejoin schedules, and edge
// cuts) attaches to Engine.Plan and injects faults as pure functions of
// (seed, round, node, edge), so every faulty execution replays
// bit-identically. A nil plan — and an all-zero spec — costs nothing:
// the clean path is byte-identical with the layer off. LeaderDegradation
// and CFloodDegradation sweep fault rates with Wilson-interval error
// bars and graceful per-cell failure handling (NonTermination,
// ErrCellPanic, ErrCellTimeout); cmd/chaos drives the grid. See
// internal/faults and "Robustness & fault injection" in README.md.
//
// The experiments also run as a service: NewExperimentServer (driven by
// cmd/dynserve) exposes reliability runs, degradation grids, gap
// tables, the reduction, and the figures as asynchronous HTTP/JSON
// jobs. Results are content-addressed — the job key is the hash of the
// kind and canonical normalized params (CanonicalJobKey), which the
// experiments' determinism makes sound — so identical submissions
// singleflight onto one execution, a full queue answers 429 instead of
// blocking, and a checkpointed cache survives restarts byte-identically.
// See internal/serve and "Serving experiments" in README.md.
//
// Model invariants that are code discipline rather than runtime checks
// (determinism, CONGEST bit accounting, print hygiene, observability and
// fault-schedule determinism) are enforced statically by cmd/dynlint; see
// "Static
// analysis & model invariants" in README.md.
package dyndiam
