package dyndiam

import (
	"io"

	"dyndiam/internal/adversaries"
	"dyndiam/internal/chains"
	"dyndiam/internal/disjcp"
	"dyndiam/internal/dynet"
	"dyndiam/internal/export"
	"dyndiam/internal/faults"
	"dyndiam/internal/graph"
	"dyndiam/internal/harness"
	"dyndiam/internal/obs"
	"dyndiam/internal/protocols/consensus"
	"dyndiam/internal/protocols/counting"
	"dyndiam/internal/protocols/flood"
	"dyndiam/internal/protocols/hearfrom"
	"dyndiam/internal/protocols/leader"
	"dyndiam/internal/rng"
	"dyndiam/internal/serve"
	"dyndiam/internal/subnet"
	"dyndiam/internal/twoparty"
)

func rngNew(seed uint64) *rng.Source { return rng.New(seed) }

// --- Core model (package dynet) ---

// Model types: see the internal/dynet documentation for semantics.
type (
	// Engine executes a protocol over a dynamic network.
	Engine = dynet.Engine
	// Machine is one node's protocol state machine.
	Machine = dynet.Machine
	// Protocol builds per-node machines.
	Protocol = dynet.Protocol
	// Config is the per-machine construction context.
	Config = dynet.Config
	// Message is a wire message with exact bit accounting.
	Message = dynet.Message
	// Action is a node's per-round send-or-receive commitment.
	Action = dynet.Action
	// Adversary fixes each round's connected topology.
	Adversary = dynet.Adversary
	// AdversaryFunc adapts a function to Adversary.
	AdversaryFunc = dynet.AdversaryFunc
	// Result summarizes an execution.
	Result = dynet.Result
	// Trace records per-round statistics and topologies.
	Trace = dynet.Trace
	// Graph is one round's topology.
	Graph = graph.Graph
)

// Action values.
const (
	Receive = dynet.Receive
	Send    = dynet.Send
)

// Budget returns the CONGEST per-message bit budget used for an N-node
// network (Θ(log N)).
func Budget(n int) int { return dynet.Budget(n) }

// NewMachines instantiates one machine per node with shared public coins.
func NewMachines(p Protocol, n int, inputs []int64, seed uint64, extra map[string]int64) []Machine {
	return dynet.NewMachines(p, n, inputs, seed, extra)
}

// AllDecided is the default termination predicate.
func AllDecided(ms []Machine) bool { return dynet.AllDecided(ms) }

// NodeDecided returns a predicate that holds once node v has output.
func NodeDecided(v int) func([]Machine) bool { return dynet.NodeDecided(v) }

// StaticAdversary presents the same graph every round.
func StaticAdversary(g *Graph) Adversary { return dynet.Static(g) }

// DynamicDiameter computes the paper's causal dynamic diameter of a
// topology sequence; exact reports whether the trace certifies it.
func DynamicDiameter(graphs []*Graph) (d int, exact bool) {
	return dynet.DynamicDiameter(graphs)
}

// --- Flood fast path & delta-encoded dynamic graphs (package dynet) ---

// Fast-path types: see internal/dynet (floodfast.go, delta.go) for the
// qualification rules and the DeltaAdversary calling contract.
type (
	// FloodStop selects a flood run's termination predicate.
	FloodStop = dynet.FloodStop
	// FloodSpec is a BitFlooder machine's view of a flood execution.
	FloodSpec = dynet.FloodSpec
	// BitFlooder marks machines the word-packed flood fast path can run.
	BitFlooder = dynet.BitFlooder
	// EdgeOp is one edge insertion or deletion.
	EdgeOp = dynet.EdgeOp
	// EdgeDiff is an ordered edge-op script between consecutive rounds.
	EdgeDiff = dynet.EdgeDiff
	// DeltaAdversary describes rounds as edge diffs against a snapshot.
	DeltaAdversary = dynet.DeltaAdversary
)

// FloodStopNode stops a flood run once node v can output; FloodStopAll
// once every node can. Pass the result to Engine.RunFlood.
func FloodStopNode(v int) FloodStop { return dynet.StopNode(v) }

// FloodStopAll stops a flood run once every node can output.
func FloodStopAll() FloodStop { return dynet.StopAll() }

// DiffGraphs appends to d the ordered edge-op script transforming prev
// into next.
func DiffGraphs(prev, next *Graph, d *EdgeDiff) { dynet.DiffGraphs(prev, next, d) }

// DeltaFromAdversary wraps any Adversary as a DeltaAdversary by diffing
// consecutive materialized topologies.
func DeltaFromAdversary(adv Adversary) DeltaAdversary { return dynet.DeltaFrom(adv) }

// DeltaChurnAdversary is the churn family as a native DeltaAdversary: a
// persistent random spanning tree plus extra slot edges, rewires of which
// are re-sampled each round as an O(rewires) edge-op script.
func DeltaChurnAdversary(n, extra, rewires int, seed uint64) DeltaAdversary {
	return adversaries.NewDeltaChurn(n, extra, rewires, seed)
}

// --- Graph builders (package graph) ---

// NewGraph returns an empty n-vertex graph.
func NewGraph(n int) *Graph { return graph.New(n) }

// Line, Ring, Star, Complete, Grid, Hypercube, Barbell build the standard
// topologies.
func Line(n int) *Graph             { return graph.Line(n) }
func Ring(n int) *Graph             { return graph.Ring(n) }
func Star(n int) *Graph             { return graph.Star(n) }
func Complete(n int) *Graph         { return graph.Complete(n) }
func Grid(rows, cols int) *Graph    { return graph.Grid(rows, cols) }
func Hypercube(dim int) *Graph      { return graph.Hypercube(dim) }
func Barbell(k, pathLen int) *Graph { return graph.Barbell(k, pathLen) }

// WriteTrace serializes an execution trace (see Engine.Trace); ReadTrace
// loads one back, returning the trace and node count.
func WriteTrace(w io.Writer, t *Trace, nodeCount int) error {
	return dynet.WriteTrace(w, t, nodeCount)
}

// ReadTrace deserializes a trace written by WriteTrace.
func ReadTrace(r io.Reader) (*Trace, int, error) { return dynet.ReadTrace(r) }

// --- Adversary families (package adversaries) ---

// RandomConnectedAdversary re-randomizes a connected topology every round.
func RandomConnectedAdversary(n, extraEdges int, seed uint64) Adversary {
	return adversaries.RandomConnected(n, extraEdges, seed)
}

// BoundedDiameterAdversary keeps every round's static diameter at most
// targetDiam.
func BoundedDiameterAdversary(n, targetDiam, extraEdges int, seed uint64) Adversary {
	return adversaries.BoundedDiameter(n, targetDiam, extraEdges, seed)
}

// RotatingStarAdversary has per-round diameter 2 but dynamic diameter n-1.
func RotatingStarAdversary(n int) Adversary { return adversaries.RotatingStar(n) }

// StallerAdversary is the adaptive adversary that defeats coin-driven
// flooding but not always-send flooding.
func StallerAdversary(n, source int) Adversary { return adversaries.NewStaller(n, source) }

// DualGraphAdversary is the dual-graph model [Kuhn et al.]: the reliable
// graph's edges appear every round; each unreliable edge appears with
// probability p. The paper's results extend to this model unchanged.
func DualGraphAdversary(reliable *Graph, unreliable [][2]int, p float64, seed uint64) Adversary {
	return adversaries.NewRandomDual(reliable, unreliable, p, seed)
}

// TIntervalAdversary is the T-interval connectivity model [Kuhn, Lynch,
// Oshman]: a stable connected subgraph persists through each T-round
// window, with extra random edges per round.
func TIntervalAdversary(n, t, extra int, seed uint64) Adversary {
	return adversaries.NewTInterval(n, t, extra, seed)
}

// --- Protocols ---

// Protocols implementing the paper's problems. Their tunables are passed
// through the extra map of NewMachines under the Extra* keys below.
type (
	// CFlood is deterministic confirmed flooding (known or pessimistic D).
	CFlood = flood.CFlood
	// PFlood is the probabilistic-flooding ablation.
	PFlood = flood.PFlood
	// KnownDConsensus is the trivial known-diameter consensus.
	KnownDConsensus = consensus.KnownD
	// ViaLeaderConsensus is unknown-diameter consensus via Section 7.
	ViaLeaderConsensus = consensus.ViaLeader
	// LeaderElect is the Section 7 leader-election protocol.
	LeaderElect = leader.Protocol
	// EstimateN estimates the network size with known D.
	EstimateN = counting.EstimateN
	// MajorityProbe is the standalone one-sided majority counter.
	MajorityProbe = counting.MajorityProbe
	// Max computes the maximum input with known D.
	Max = hearfrom.Max
	// HearFrom solves HEAR-FROM-N-NODES with known D and N.
	HearFrom = hearfrom.HearFrom
	// HearFromExact is the exact causal-bookkeeping HEAR-FROM-N-NODES.
	HearFromExact = hearfrom.Exact
	// SumEstimate estimates the sum of node weights with known D (the
	// separable-function aggregate of Mosk-Aoyama–Shah).
	SumEstimate = counting.SumEstimate
)

// Common Extra keys (see each protocol's documentation for the full list).
const (
	// ExtraDiameter is the diameter bound given to known-D protocols.
	ExtraDiameter = "D"
	// ExtraSource designates the CFLOOD source node.
	ExtraSource = flood.ExtraSource
	// ExtraNPrime is the size estimate for Theorem 8 protocols.
	ExtraNPrime = leader.ExtraNPrime
	// ExtraCPermille is the N'-accuracy margin c in thousandths.
	ExtraCPermille = leader.ExtraCPermille
	// ExtraSkipCount1 disables the COUNT1 pre-lock check (the Section 7
	// two-stage-locking ablation; expect lock rollbacks).
	ExtraSkipCount1 = leader.ExtraSkipStage1
)

// Informed reports whether a flood machine holds the token.
func Informed(m Machine) bool { return flood.Informed(m) }

// FailedCandidacies returns how many candidacies a LeaderElect machine
// declared and rolled back (the two-stage-locking ablation metric).
func FailedCandidacies(m Machine) int { return leader.FailedCandidacies(m) }

// --- Lower-bound machinery ---

// Party identifies the reference execution or a simulating party.
type Party = chains.Party

// Parties.
const (
	Reference = chains.Reference
	Alice     = chains.Alice
	Bob       = chains.Bob
)

// DisjInstance is a DISJOINTNESSCP_{n,q} input pair under the cycle promise.
type DisjInstance = disjcp.Instance

// RandomDisjOne/Zero generate promise-satisfying instances with a fixed
// answer; DisjFromStrings parses digit strings like the paper's figures.
func RandomDisjOne(n, q int, seed uint64) DisjInstance {
	return disjcp.RandomOne(n, q, rngNew(seed))
}

// RandomDisjZero generates an instance with answer 0 and the given number
// of (0,0) witnesses.
func RandomDisjZero(n, q, zeros int, seed uint64) DisjInstance {
	return disjcp.RandomZero(n, q, zeros, rngNew(seed))
}

// DisjFromStrings parses instances like ("3110", "2200", 5) — Figure 1.
func DisjFromStrings(x, y string, q int) (DisjInstance, error) {
	return disjcp.FromStrings(x, y, q)
}

// CFloodNetwork is the Theorem 6 composition (type-Γ + type-Λ).
type CFloodNetwork = subnet.CFloodNet

// ConsensusNetwork is the Theorem 7 composition (type-Λ + type-Υ).
type ConsensusNetwork = subnet.ConsensusNet

// NewCFloodNetwork composes the Theorem 6 network for an instance.
func NewCFloodNetwork(in DisjInstance) (*CFloodNetwork, error) { return subnet.NewCFlood(in) }

// NewConsensusNetwork composes the Theorem 7 network for an instance.
func NewConsensusNetwork(in DisjInstance) (*ConsensusNetwork, error) { return subnet.NewConsensus(in) }

// ReductionSetup configures a two-party reduction run; ReductionResult
// reports claims, exact bit counts, and Lemma 5 referee findings.
type (
	ReductionSetup  = twoparty.Setup
	ReductionResult = twoparty.Result
)

// CFloodReductionSetup builds the Theorem 6 Alice/Bob simulation over an
// oracle protocol.
func CFloodReductionSetup(net *CFloodNetwork, oracle Protocol, seed uint64, extra map[string]int64) ReductionSetup {
	return twoparty.FromCFlood(net, oracle, seed, extra)
}

// ConsensusReductionSetup builds the Theorem 7 Alice/Bob simulation.
func ConsensusReductionSetup(net *ConsensusNetwork, oracle Protocol, seed uint64, extra map[string]int64) ReductionSetup {
	return twoparty.FromConsensus(net, oracle, seed, extra)
}

// RunReduction executes a two-party reduction; with referee set it also
// cross-checks both parties against the reference execution (Lemma 5).
func RunReduction(s ReductionSetup, referee bool) (*ReductionResult, error) {
	return twoparty.Run(s, referee)
}

// --- Experiment harness ---

// ResultTable is a renderable experiment table.
type ResultTable = harness.Table

// Experiment entry points; see internal/harness for row semantics.
var (
	GapTable               = harness.GapTable
	FormatGapTable         = harness.FormatGapTable
	LeaderSweep            = harness.LeaderSweep
	FormatLeaderTable      = harness.FormatLeaderTable
	EstimateSweep          = harness.EstimateSweep
	FormatEstimateTable    = harness.FormatEstimateTable
	MajoritySweep          = harness.MajoritySweep
	FormatMajorityTable    = harness.FormatMajorityTable
	CFloodReductionTable   = harness.CFloodReduction
	FormatReductionTable   = harness.FormatReductionTable
	ConsensusReduction     = harness.ConsensusReduction
	ConsensusReductionWith = harness.ConsensusReductionOracle
	FormatConsensusRedTbl  = harness.FormatConsensusReductionTable
	LeaderReliability      = harness.LeaderReliability
	FormatReliability      = harness.FormatReliability
	ConstructionDiameters  = harness.ConstructionDiameters
	FormatDiameterTable    = harness.FormatDiameterTable
	CommTable              = harness.CommTable
	FormatCommTable        = harness.FormatCommTable
	ConsensusGap           = harness.ConsensusGap
	FormatConsensusGapTbl  = harness.FormatConsensusGapTable
	Figure1                = harness.Figure1
	Figure2                = harness.Figure2
	Figure3                = harness.Figure3
	MeasureDynamicDiameter = harness.MeasureDynamicDiameter
	// SetSweepWorkers sets how many experiment cells the sweeps above run
	// concurrently (w < 1 selects GOMAXPROCS) and returns the previous
	// value. Tables are identical at every setting.
	SetSweepWorkers = harness.SetSweepWorkers
	SweepWorkers    = harness.SweepWorkers
	// TrialSeeds derives per-trial seeds from a root seed by rng splitting.
	TrialSeeds = harness.TrialSeeds
)

// GraphDOT renders a topology as Graphviz DOT with optional per-node fill
// colors and labels.
func GraphDOT(g *Graph, name string, colors, labels map[int]string) string {
	return export.DOT(g, name, colors, labels)
}

// CFloodDOT renders round r of the Theorem 6 composition under a party's
// adversary, with construction roles highlighted (specials, line middles,
// mounting points, spoiled region).
func CFloodDOT(net *CFloodNetwork, p Party, r int) string {
	return export.CFloodDOT(net, p, r)
}

// WriteTableCSV writes a result table as CSV.
func WriteTableCSV(w io.Writer, t *ResultTable) error { return export.WriteCSV(w, t) }

// PhaseBreakdown aggregates the Section 7 protocol's internal counters for
// one election run.
type PhaseBreakdown = harness.PhaseBreakdown

// LeaderPhases and FormatPhaseBreakdown report the phase structure of
// Section 7 runs; Reliability summarizes repeated-seed evaluations.
var (
	LeaderPhases         = harness.LeaderPhases
	FormatPhaseBreakdown = harness.FormatPhaseBreakdown
)

// Reliability is a repeated-seed evaluation summary.
type Reliability = harness.Reliability

// MobileAdversary models a mobile ad-hoc network: nodes drift through the
// unit square and connect within the given radius (patched to stay
// connected, as the model requires).
func MobileAdversary(n int, radius, speed float64, seed uint64) Adversary {
	return adversaries.NewMobile(n, radius, speed, seed)
}

// SpoiledRow tabulates the per-round shrink of the simulable (non-spoiled)
// region during the two-party reduction.
type SpoiledRow = harness.SpoiledRow

// SpoiledGrowth and FormatSpoiledTable expose the spoiled-region experiment.
var (
	SpoiledGrowth      = harness.SpoiledGrowth
	FormatSpoiledTable = harness.FormatSpoiledTable
)

// ConsensusDOT renders round r of the Theorem 7 composition under a
// party's adversary, highlighting Λ/Υ specials, mounting points, and the
// party's spoiled region.
func ConsensusDOT(net *ConsensusNetwork, p Party, r int) string {
	return export.ConsensusDOT(net, p, r)
}

// --- Robustness & fault injection (packages faults, harness) ---

// Fault-injection types: see internal/faults for the determinism and
// zero-overhead contracts, internal/harness for the degradation sweeps.
type (
	// FaultSpec configures one fault mix (drop/dup/corrupt/crash/edge-cut
	// rates plus scheduled outages); the zero Spec injects nothing.
	FaultSpec = faults.Spec
	// FaultOutage is one scheduled downtime window.
	FaultOutage = faults.Outage
	// FaultPlan is a compiled, seeded fault schedule; assign one to
	// Engine.Plan to inject it.
	FaultPlan = faults.Plan
	// DegradationConfig configures a fault-rate sweep.
	DegradationConfig = harness.DegradationConfig
	// DegradationRow is one fault Spec's error-rate estimate.
	DegradationRow = harness.DegradationRow
	// CellResult records one graceful-sweep cell's outcome.
	CellResult = harness.CellResult
	// CellOutcome classifies a cell result (ok/failed/panicked/timed_out).
	CellOutcome = harness.CellOutcome
	// NonTermination is the structured round-budget-exhausted error.
	NonTermination = harness.NonTermination
	// ErrCellTimeout is the structured wall-clock-budget cell error.
	ErrCellTimeout = harness.ErrCellTimeout
	// ErrCellPanic wraps a recovered cell panic.
	ErrCellPanic = harness.ErrCellPanic
)

// Cell outcomes and the default harness round budget.
const (
	CellOK             = harness.CellOK
	CellFailed         = harness.CellFailed
	CellPanicked       = harness.CellPanicked
	CellTimedOut       = harness.CellTimedOut
	DefaultRoundBudget = harness.DefaultRoundBudget
)

// NewFaultPlan validates and compiles a FaultSpec.
func NewFaultPlan(spec FaultSpec) (*FaultPlan, error) { return faults.NewPlan(spec) }

// Degradation sweeps and the harness round budget; see internal/harness.
var (
	LeaderDegradation      = harness.LeaderDegradation
	CFloodDegradation      = harness.CFloodDegradation
	FormatDegradationTable = harness.FormatDegradationTable
	// SetRoundBudget caps how many rounds open-ended harness runs get
	// before reporting NonTermination; RoundBudget reads the current cap.
	SetRoundBudget = harness.SetRoundBudget
	RoundBudget    = harness.RoundBudget
	// ReliabilityTrialSeed and FaultTrialSeed are the seed derivations the
	// reliability and degradation sweeps use per trial — exported so any
	// single faulty trial can be replayed in isolation (see EXPERIMENTS.md).
	ReliabilityTrialSeed = harness.ReliabilityTrialSeed
	FaultTrialSeed       = harness.FaultTrialSeed
)

// --- Observability (package obs) ---

// Observability types: see internal/obs for the full contract (zero
// allocation with a nil sink, deterministic event order, round-stamped
// time base).
type (
	// ObsEvent is one fixed-size observation (round, node, kind, args).
	ObsEvent = obs.Event
	// ObsKind tags an ObsEvent.
	ObsKind = obs.Kind
	// ObsSink receives events; Engine.Obs, LeaderElect.Obs, and
	// ReductionSetup.Obs all accept one.
	ObsSink = obs.Sink
	// ObsRing is the preallocated fixed-capacity event sink.
	ObsRing = obs.Ring
	// MetricsRegistry collects counters, gauges, and histograms;
	// Engine.Metrics and ReductionSetup.Metrics accept one.
	MetricsRegistry = obs.Registry
	// MetricPoint is one row of a MetricsRegistry snapshot.
	MetricPoint = obs.MetricPoint
	// ObsName is an interned event name (the ObsEvent.Name field).
	ObsName = obs.Key
)

// InternObsKey interns name for use in ObsEvent.Name. Interning is
// idempotent and the zero ObsName renders as "".
func InternObsKey(name string) ObsName { return obs.Intern(name) }

// Event kinds (see internal/obs for per-kind field layouts).
const (
	ObsRoundStart   = obs.KindRoundStart
	ObsRoundEnd     = obs.KindRoundEnd
	ObsSend         = obs.KindSend
	ObsDecide       = obs.KindDecide
	ObsPhaseEnter   = obs.KindPhaseEnter
	ObsLockAcquire  = obs.KindLockAcquire
	ObsLockRollback = obs.KindLockRollback
	ObsSpoilMark    = obs.KindSpoilMark
	ObsFault        = obs.KindFault
	ObsSpanBegin    = obs.KindSpanBegin
	ObsSpanEnd      = obs.KindSpanEnd
	ObsFrontier     = obs.KindFrontier
	ObsCustom       = obs.KindCustom
)

// ObsSpan is an open span handle: BeginSpan emits the begin event and
// End closes it. Spans live on logical clocks (engine rounds, harness
// cell indices, serve milliseconds) and surface as complete events in
// WriteChromeTrace output.
type ObsSpan = obs.Span

// BeginSpan opens a span on sink; a nil sink yields an inert handle.
func BeginSpan(sink ObsSink, name string, track, node, t int32, arg int64) ObsSpan {
	return obs.BeginSpan(sink, obs.Intern(name), track, node, t, arg)
}

// NewObsRing returns a ring sink holding the last capacity events.
func NewObsRing(capacity int) *ObsRing { return obs.NewRing(capacity) }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// WriteEventsJSONL / ReadEventsJSONL serialize event streams as JSON
// Lines; WriteChromeTrace emits Chrome trace-event JSON loadable in
// Perfetto; WriteMetricsText emits a Prometheus text exposition.
func WriteEventsJSONL(w io.Writer, events []ObsEvent) error { return obs.WriteJSONL(w, events) }

// ReadEventsJSONL parses a stream written by WriteEventsJSONL.
func ReadEventsJSONL(r io.Reader) ([]ObsEvent, error) { return obs.ReadJSONL(r) }

// WriteChromeTrace converts an event stream to Chrome trace-event JSON.
func WriteChromeTrace(w io.Writer, events []ObsEvent) error { return obs.WriteChromeTrace(w, events) }

// WriteMetricsText writes a registry as Prometheus text exposition.
func WriteMetricsText(w io.Writer, r *MetricsRegistry) error { return obs.WriteMetricsText(w, r) }

// EnableSweepMetrics turns on per-cell metric roll-ups for subsequent
// harness sweeps; TakeSweepMetrics returns the aggregate (nil if never
// enabled) and disables collection. Aggregates are bit-identical at
// every SetSweepWorkers setting.
var (
	EnableSweepMetrics = harness.EnableSweepMetrics
	TakeSweepMetrics   = harness.TakeSweepMetrics
)

// EnableSweepSpans turns on per-cell span capture for subsequent harness
// sweeps (one Track-1 "sweep_cell" span per cell on the cell-index
// clock); TakeSweepSpans returns the captured stream (nil if never
// enabled) and disables capture. Captures are bit-identical at every
// SetSweepWorkers setting.
var (
	EnableSweepSpans = harness.EnableSweepSpans
	TakeSweepSpans   = harness.TakeSweepSpans
)

// --- Experiment serving (package serve) ---

// Serving-layer types: see internal/serve for the content-addressing and
// singleflight contracts.
type (
	// ExperimentServer schedules experiment jobs over a content-addressed
	// result cache behind an HTTP/JSON API (cmd/dynserve hosts one).
	ExperimentServer = serve.Server
	// ServeConfig tunes an ExperimentServer (workers, queue bound, job
	// budget, backpressure hint, executor override).
	ServeConfig = serve.Config
	// ServeKind names one servable experiment kind.
	ServeKind = serve.Kind
	// ServeParams is the flat, canonically hashable parameter set.
	ServeParams = serve.Params
	// ServeJobView is a job's externally visible snapshot.
	ServeJobView = serve.JobView
	// ServeCachedResult is the checkpoint shape of one completed job.
	ServeCachedResult = serve.CachedResult
)

// Servable experiment kinds.
const (
	ServeLeaderReliability = serve.KindLeaderReliability
	ServeLeaderDegradation = serve.KindLeaderDegradation
	ServeCFloodDegradation = serve.KindCFloodDegradation
	ServeGapTable          = serve.KindGapTable
	ServeReduction         = serve.KindReduction
	ServeFigure            = serve.KindFigure
)

// Serving-layer entry points and the job-shaped harness helpers they
// build on (shared with cmd/chaos).
var (
	// NewExperimentServer builds a server and starts its worker pool.
	NewExperimentServer = serve.New
	// ServeKinds lists every servable kind in a stable order.
	ServeKinds = serve.Kinds
	// CanonicalJobKey content-addresses one (kind, params) job.
	CanonicalJobKey = harness.CanonicalJobKey
	// FaultDims lists the single-dimension fault axes of the degradation
	// sweeps; FaultSpecFor builds the Spec of one (dimension, rate) point.
	FaultDims    = harness.FaultDims
	FaultSpecFor = harness.FaultSpecFor
	// DegradationRowsJSON converts sweep rows to their canonical JSON shape.
	DegradationRowsJSON = harness.DegradationRowsJSON
)
