package dyndiam_test

import (
	"strings"
	"testing"

	"dyndiam"
)

// TestFacadeQuickstart exercises the public API end to end, mirroring the
// doc.go quick start.
func TestFacadeQuickstart(t *testing.T) {
	const n = 32
	adv := dyndiam.RandomConnectedAdversary(n, n/2, 1)
	inputs := make([]int64, n)
	inputs[0] = 42
	ms := dyndiam.NewMachines(dyndiam.CFlood{}, n, inputs, 7,
		map[string]int64{dyndiam.ExtraDiameter: n - 1})
	eng := &dyndiam.Engine{Machines: ms, Adv: adv, Terminated: dyndiam.NodeDecided(0)}
	res, err := eng.Run(4 * n)
	if err != nil || !res.Done {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	for v, m := range ms {
		if !dyndiam.Informed(m) {
			t.Errorf("node %d uninformed", v)
		}
	}
}

func TestFacadeReduction(t *testing.T) {
	in, err := dyndiam.DisjFromStrings("3110", "2200", 5)
	if err != nil {
		t.Fatal(err)
	}
	net, err := dyndiam.NewCFloodNetwork(in)
	if err != nil {
		t.Fatal(err)
	}
	setup := dyndiam.CFloodReductionSetup(net, dyndiam.CFlood{}, 9,
		map[string]int64{dyndiam.ExtraDiameter: 10})
	res, err := dyndiam.RunReduction(setup, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LemmaViolations) != 0 {
		t.Errorf("lemma violations: %v", res.LemmaViolations)
	}
	if res.BitsAliceToBob+res.BitsBobToAlice == 0 {
		t.Error("no bits accounted")
	}
}

func TestFacadeDiameterAndGraphs(t *testing.T) {
	graphs := make([]*dyndiam.Graph, 30)
	for i := range graphs {
		graphs[i] = dyndiam.Line(10)
	}
	d, exact := dyndiam.DynamicDiameter(graphs)
	if !exact || d != 9 {
		t.Errorf("line diameter = %d (exact %v), want 9", d, exact)
	}
	if dyndiam.Star(5).StaticDiameter() != 2 {
		t.Error("star diameter broken through facade")
	}
	if dyndiam.Budget(1024) <= 0 {
		t.Error("budget not positive")
	}
}

func TestFacadeFigures(t *testing.T) {
	f1, err := dyndiam.Figure1()
	if err != nil || !strings.Contains(f1, "|0_0") {
		t.Errorf("Figure1 via facade broken: %v", err)
	}
}

func TestFacadeLeaderElection(t *testing.T) {
	const n = 16
	ms := dyndiam.NewMachines(dyndiam.LeaderElect{}, n, make([]int64, n), 3, nil)
	eng := &dyndiam.Engine{Machines: ms, Adv: dyndiam.StaticAdversary(dyndiam.Star(n))}
	res, err := eng.Run(500000)
	if err != nil || !res.Done {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	for v, out := range res.Outputs {
		if out != n-1 {
			t.Errorf("node %d elected %d", v, out)
		}
	}
}
