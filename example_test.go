package dyndiam_test

import (
	"fmt"
	"log"

	"dyndiam"
)

// The known-diameter CFLOOD protocol confirms after exactly D rounds on any
// network whose dynamic diameter respects the bound — here a static line,
// whose diameter is N-1.
func ExampleCFlood() {
	const n = 10
	inputs := make([]int64, n)
	inputs[0] = 7 // the token

	ms := dyndiam.NewMachines(dyndiam.CFlood{}, n, inputs, 1,
		map[string]int64{dyndiam.ExtraDiameter: n - 1})
	eng := &dyndiam.Engine{
		Machines:   ms,
		Adv:        dyndiam.StaticAdversary(dyndiam.Line(n)),
		Terminated: dyndiam.NodeDecided(0),
	}
	res, err := eng.Run(100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("confirmed at round %d, all informed: %v\n", res.Rounds, allInformed(ms))
	// Output: confirmed at round 9, all informed: true
}

func allInformed(ms []dyndiam.Machine) bool {
	for _, m := range ms {
		if !dyndiam.Informed(m) {
			return false
		}
	}
	return true
}

// The dynamic diameter is causal, not per-round geometric: a rotating star
// has static diameter 2 every round but dynamic diameter N-1.
func ExampleDynamicDiameter() {
	const n = 8
	adv := dyndiam.RotatingStarAdversary(n)
	graphs := make([]*dyndiam.Graph, 40)
	for r := 1; r <= len(graphs); r++ {
		// Adversaries reuse the returned graph; clone to keep the trace.
		graphs[r-1] = adv.Topology(r, make([]dyndiam.Action, n)).Clone()
	}
	d, exact := dyndiam.DynamicDiameter(graphs)
	fmt.Printf("static diameter each round: %d, dynamic diameter: %d (exact: %v)\n",
		graphs[0].StaticDiameter(), d, exact)
	// Output: static diameter each round: 2, dynamic diameter: 7 (exact: true)
}

// DISJOINTNESSCP instances obey the cycle promise; the Figure 1 example
// evaluates to 0 because index 4 holds (0, 0).
func ExampleDisjFromStrings() {
	in, err := dyndiam.DisjFromStrings("3110", "2200", 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n=%d q=%d answer=%d\n", in.N, in.Q, in.Eval())
	// Output: n=4 q=5 answer=0
}

// The Theorem 6 composition has 3nq+4 nodes regardless of the answer, a
// diameter gap decided by the answer, and two or three bridging edges.
func ExampleNewCFloodNetwork() {
	in := dyndiam.RandomDisjZero(2, 9, 1, 3)
	net, err := dyndiam.NewCFloodNetwork(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("N=%d horizon=%d bridges=%d\n", net.N, net.Horizon(), len(net.Bridges()))
	// Output: N=58 horizon=4 bridges=3
}

// A reduction run reports Alice's claim and the exact bits the parties
// exchanged; the referee confirms Lemma 5 held.
func ExampleRunReduction() {
	in, err := dyndiam.DisjFromStrings("3110", "2200", 5)
	if err != nil {
		log.Fatal(err)
	}
	net, err := dyndiam.NewCFloodNetwork(in)
	if err != nil {
		log.Fatal(err)
	}
	setup := dyndiam.CFloodReductionSetup(net, dyndiam.CFlood{}, 9,
		map[string]int64{dyndiam.ExtraDiameter: 10})
	res, err := dyndiam.RunReduction(setup, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("claim=%v lemma-violations=%d rounds=%d\n",
		res.Claim, len(res.LemmaViolations), res.Rounds)
	// Output: claim=false lemma-violations=0 rounds=2
}

// Leader election with unknown diameter: only the size estimate N' is
// needed (Theorem 8).
func ExampleLeaderElect() {
	const n = 12
	ms := dyndiam.NewMachines(dyndiam.LeaderElect{}, n, make([]int64, n), 3,
		map[string]int64{
			dyndiam.ExtraNPrime:    11, // ~8% size error
			dyndiam.ExtraCPermille: 100,
		})
	eng := &dyndiam.Engine{Machines: ms, Adv: dyndiam.StaticAdversary(dyndiam.Complete(n))}
	res, err := eng.Run(1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("leader %d elected unanimously: %v\n", res.Outputs[0], allSame(res.Outputs))
	// Output: leader 11 elected unanimously: true
}

func allSame(xs []int64) bool {
	for _, x := range xs {
		if x != xs[0] {
			return false
		}
	}
	return true
}

// The spoiled-region table shows the shrinking-but-sufficient simulable
// region behind Lemma 5.
func ExampleSpoiledGrowth() {
	rows, err := dyndiam.SpoiledGrowth(2, 9, 3)
	if err != nil {
		log.Fatal(err)
	}
	last := rows[len(rows)-1]
	fmt.Printf("rounds=%d specials-simulatable=%v\n",
		last.Round, last.SpecialsSimulatableAlice && last.SpecialsSimulatableBob)
	// Output: rounds=4 specials-simulatable=true
}
