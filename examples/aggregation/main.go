// Aggregation: globally-sensitive functions over a dynamic network with a
// known diameter bound — the problems the paper lists alongside CFLOOD as
// solvable in O(log N) flooding rounds when D is known (Section 1).
//
// A 36-node sensor mesh computes, concurrently across three runs:
//   - MAX of its readings (gossip of the running maximum),
//   - the network size N (exponential-minima counting sketches),
//   - the SUM of its readings (the weighted Mosk-Aoyama–Shah aggregate).
package main

import (
	"fmt"
	"log"

	"dyndiam"
)

func main() {
	const (
		n    = 36
		seed = 12
		d    = 10 // safe dynamic-diameter bound for the mesh below
	)

	readings := make([]int64, n)
	var trueMax, trueSum int64
	for v := range readings {
		readings[v] = int64((v*v + 17) % 50)
		if readings[v] > trueMax {
			trueMax = readings[v]
		}
		trueSum += readings[v]
	}

	run := func(p dyndiam.Protocol, inputs []int64, label string, truth int64) {
		ms := dyndiam.NewMachines(p, n, inputs, seed,
			map[string]int64{dyndiam.ExtraDiameter: d, "K": 96})
		eng := &dyndiam.Engine{
			Machines: ms,
			Adv:      dyndiam.BoundedDiameterAdversary(n, 5, n/2, seed),
		}
		res, err := eng.Run(10_000_000)
		if err != nil || !res.Done {
			log.Fatalf("%s failed: %v", label, err)
		}
		fmt.Printf("  %-12s -> %6d   (truth %6d, %6d rounds)\n",
			label, res.Outputs[0], truth, res.Rounds)
	}

	fmt.Printf("Aggregates over a %d-node dynamic mesh (known D <= %d):\n\n", n, d)
	run(dyndiam.Max{}, readings, "MAX", trueMax)
	run(dyndiam.EstimateN{}, nil, "COUNT (~N)", n)
	run(dyndiam.SumEstimate{}, readings, "SUM (~)", trueSum)
	fmt.Println("\nMAX is exact; COUNT and SUM are sketch estimates whose error decays")
	fmt.Println("as 1/sqrt(k) in the number of sketch copies (here k = 96). Obtaining")
	fmt.Println("such an N-estimate under *unknown* diameter is itself subject to the")
	fmt.Println("paper's lower bound — see cmd/reduction.")
}
