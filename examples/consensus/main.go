// Consensus: 48 replicas with binary opinions agree on one value while the
// network topology changes every round.
//
// Two runs: the trivial protocol that must be told the diameter, and the
// paper's Section 7 route that instead uses an estimate N' of the network
// size (here 10% off) — no diameter knowledge at all.
package main

import (
	"fmt"
	"log"

	"dyndiam"
)

func main() {
	const (
		n    = 48
		seed = 7
	)

	inputs := make([]int64, n)
	for v := range inputs {
		if v%3 == 0 {
			inputs[v] = 1
		}
	}

	run := func(p dyndiam.Protocol, extra map[string]int64, label string) {
		machines := dyndiam.NewMachines(p, n, inputs, seed, extra)
		engine := &dyndiam.Engine{
			Machines: machines,
			Adv:      dyndiam.BoundedDiameterAdversary(n, 5, n/2, seed),
		}
		res, err := engine.Run(10_000_000)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Done {
			log.Fatalf("%s: no termination", label)
		}
		agreed := true
		for _, out := range res.Outputs {
			if out != res.Outputs[0] {
				agreed = false
			}
		}
		fmt.Printf("%-34s decided %d  rounds %6d  agreement %v\n",
			label, res.Outputs[0], res.Rounds, agreed)
	}

	fmt.Printf("Binary consensus over a %d-node dynamic network (inputs: %d ones):\n\n",
		n, countOnes(inputs))
	run(dyndiam.KnownDConsensus{},
		map[string]int64{dyndiam.ExtraDiameter: 10},
		"known diameter (D=10):")
	run(dyndiam.ViaLeaderConsensus{},
		map[string]int64{
			dyndiam.ExtraNPrime:    int64(9 * n / 10), // 10% size estimate error
			dyndiam.ExtraCPermille: 100,               // premise: error <= 1/3 - 0.1
		},
		"unknown diameter, N' within 10%:")
	fmt.Println("\nA good estimate of N removes the sensitivity to unknown diameter")
	fmt.Println("(Theorem 8); with N' only 1/3-accurate this is impossible (Theorem 7).")
}

func countOnes(xs []int64) int {
	c := 0
	for _, x := range xs {
		if x == 1 {
			c++
		}
	}
	return c
}
