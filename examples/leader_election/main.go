// Leader election with unknown diameter (the paper's Section 7 protocol).
//
// A 40-node cluster whose interconnect is rewired every round elects the
// highest-id node as coordinator. The protocol never learns the diameter;
// it only holds an estimate N' of the cluster size. Watch the doubling-D'
// phase structure: on a low-diameter network it stops after a handful of
// phases, far below the pessimistic N-round budget.
//
// The second part runs the two-stage-locking ablation the paper motivates:
// skipping the pre-lock majority check (COUNT1) causes candidates to grab
// locks they must later roll back.
package main

import (
	"fmt"
	"log"

	"dyndiam"
)

func main() {
	const (
		n    = 40
		seed = 99
	)

	elect := func(extra map[string]int64, label string) {
		machines := dyndiam.NewMachines(dyndiam.LeaderElect{}, n, make([]int64, n), seed, extra)
		engine := &dyndiam.Engine{
			Machines: machines,
			Adv:      dyndiam.BoundedDiameterAdversary(n, 5, n/2, seed),
		}
		res, err := engine.Run(10_000_000)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Done {
			log.Fatalf("%s: no leader elected", label)
		}
		unanimous := true
		for _, out := range res.Outputs {
			if out != res.Outputs[0] {
				unanimous = false
			}
		}
		fmt.Printf("%-28s leader %2d  rounds %6d  unanimous %v\n",
			label, res.Outputs[0], res.Rounds, unanimous)
	}

	fmt.Printf("Leader election, %d nodes, unknown diameter, N' = 0.85N:\n\n", n)
	elect(map[string]int64{
		dyndiam.ExtraNPrime:    int64(85 * n / 100),
		dyndiam.ExtraCPermille: 100,
	}, "two-stage locking:")
	elect(map[string]int64{
		dyndiam.ExtraNPrime:    int64(85 * n / 100),
		dyndiam.ExtraCPermille: 100,
		"skipstage1":           1,
	}, "ablation (no COUNT1):")
	fmt.Println("\nBoth elect the max id; the ablation performs lock acquisitions that")
	fmt.Println("must be rolled back (run cmd/leaderelect for the rollback counts).")
}
