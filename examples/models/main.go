// Alternative dynamic-network models: the same protocols, unchanged, on the
// dual-graph model and the T-interval connectivity model the paper names in
// Section 2 ("all our results and proofs also extend to the dual graph
// model without any modification").
//
// A 32-node network runs known-D confirmed flooding under three models:
// fully adversarial per-round rewiring, a dual graph (reliable ring +
// flaky chords), and 5-interval connectivity (a stable backbone persisting
// for 5-round windows).
package main

import (
	"fmt"
	"log"

	"dyndiam"
)

func main() {
	const (
		n    = 32
		seed = 4
	)

	// Dual graph: a reliable ring plus 16 unreliable chords, each alive
	// with probability 1/2 per round.
	var chords [][2]int
	for i := 0; i < 16; i++ {
		chords = append(chords, [2]int{i, (i + n/2) % n})
	}

	models := []struct {
		name string
		adv  dyndiam.Adversary
		d    int // safe dynamic-diameter bound under the model
	}{
		{"per-round rewiring", dyndiam.BoundedDiameterAdversary(n, 6, n/2, seed), 12},
		{"dual graph (ring + chords)", dyndiam.DualGraphAdversary(dyndiam.Ring(n), chords, 0.5, seed), n / 2},
		{"5-interval connectivity", dyndiam.TIntervalAdversary(n, 5, 8, seed), n - 1},
	}

	fmt.Println("Known-D confirmed flooding under three dynamic-network models:")
	for _, m := range models {
		inputs := make([]int64, n)
		inputs[0] = 1
		ms := dyndiam.NewMachines(dyndiam.CFlood{}, n, inputs, seed,
			map[string]int64{dyndiam.ExtraDiameter: int64(m.d)})
		eng := &dyndiam.Engine{
			Machines:          ms,
			Adv:               m.adv,
			CheckConnectivity: true,
			Terminated:        dyndiam.NodeDecided(0),
		}
		res, err := eng.Run(4 * n)
		if err != nil {
			log.Fatal(err)
		}
		informed := 0
		for _, machine := range ms {
			if dyndiam.Informed(machine) {
				informed++
			}
		}
		fmt.Printf("  %-28s D-bound %2d: confirmed at round %2d, informed %d/%d\n",
			m.name, m.d, res.Rounds, informed, n)
	}
	fmt.Println("\nThe protocol is byte-for-byte identical in all three runs — only the")
	fmt.Println("adversary changes, matching the paper's model-robustness claim.")
}
