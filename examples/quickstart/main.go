// Quickstart: flood a token through a changing network and confirm receipt.
//
// A fleet of 64 sensors forms a different connected mesh every round (links
// come and go). Node 0 must push a firmware-update token to everyone and
// confirm completion. With a known bound on the dynamic diameter the
// confirmation is deterministic and takes exactly D rounds; without one,
// the only safe bound is N-1 — the cost of unknown diameter.
package main

import (
	"fmt"
	"log"

	"dyndiam"
)

func main() {
	const (
		n    = 64
		seed = 2026
	)

	// A dynamic network whose per-round topology is a random connected
	// mesh with static diameter <= 6.
	diameterBound := 12 // a safe bound on the *dynamic* diameter

	run := func(extra map[string]int64, label string) {
		inputs := make([]int64, n)
		inputs[0] = 42 // the token node 0 must disseminate

		machines := dyndiam.NewMachines(dyndiam.CFlood{}, n, inputs, seed, extra)
		engine := &dyndiam.Engine{
			Machines:          machines,
			Adv:               dyndiam.BoundedDiameterAdversary(n, 6, n/2, seed),
			CheckConnectivity: true,
			Terminated:        dyndiam.NodeDecided(0), // CFLOOD ends when the source confirms
		}
		res, err := engine.Run(4 * n)
		if err != nil {
			log.Fatal(err)
		}

		informed := 0
		for _, m := range machines {
			if dyndiam.Informed(m) {
				informed++
			}
		}
		fmt.Printf("%-22s confirmed at round %3d  informed %d/%d  messages %d  bits %d\n",
			label, res.Rounds, informed, n, res.Messages, res.Bits)
	}

	fmt.Println("Confirmed flooding (CFLOOD) over a 64-node dynamic mesh:")
	run(map[string]int64{dyndiam.ExtraDiameter: int64(diameterBound)}, "known diameter (D=12):")
	run(nil, "unknown diameter:")
	fmt.Println("\nThe unknown-diameter run pays ~N rounds instead of ~D — the")
	fmt.Println("poly(N) cost the paper proves unavoidable (Theorem 6).")
}
