// Reduction demo: Alice and Bob solve a DISJOINTNESSCP instance by jointly
// simulating a CFLOOD protocol — the paper's Theorem 6 argument, executed.
//
// Alice holds x, Bob holds y. They build (conceptually) the type-Γ + type-Λ
// composition network for (x, y): its diameter is O(1) if
// DISJOINTNESSCP(x, y) = 1 and Ω(q) if the answer is 0. Each party
// simulates only its non-spoiled nodes under its own divergent adversary,
// forwarding just the special nodes' messages. Alice then claims "1" iff
// the CFLOOD source confirmed within (q-1)/2 rounds.
//
// The run also engages the referee, which re-executes the true network and
// verifies Lemma 5: every non-spoiled node behaved identically in the
// party simulations and the reference execution.
package main

import (
	"fmt"
	"log"

	"dyndiam"
)

func main() {
	const q = 33 // horizon (q-1)/2 = 16 rounds

	solve := func(in dyndiam.DisjInstance, label string) {
		net, err := dyndiam.NewCFloodNetwork(in)
		if err != nil {
			log.Fatal(err)
		}
		// The oracle: a CFLOOD protocol that believes the diameter is
		// 10 — exactly right on 1-instances, fatally wrong on
		// 0-instances (which is the point of the theorem).
		setup := dyndiam.CFloodReductionSetup(net, dyndiam.CFlood{}, 5,
			map[string]int64{dyndiam.ExtraDiameter: 10})
		res, err := dyndiam.RunReduction(setup, true)
		if err != nil {
			log.Fatal(err)
		}
		claim := 0
		if res.Claim {
			claim = 1
		}
		fmt.Printf("%s\n", label)
		fmt.Printf("  network: N=%d nodes, horizon %d rounds\n", net.N, res.Rounds)
		fmt.Printf("  Alice claims DISJOINTNESSCP = %d (truth: %d)\n", claim, in.Eval())
		fmt.Printf("  bits exchanged: Alice->Bob %d, Bob->Alice %d\n",
			res.BitsAliceToBob, res.BitsBobToAlice)
		fmt.Printf("  Lemma 5 referee violations: %d\n\n", len(res.LemmaViolations))
	}

	one := dyndiam.RandomDisjOne(2, q, 1)
	zero := dyndiam.RandomDisjZero(2, q, 1, 2)
	fmt.Println("Two-party simulation of a CFLOOD oracle (Theorem 6 reduction):")
	fmt.Println()
	solve(one, fmt.Sprintf("1-instance: x=%v y=%v (O(1)-diameter network)", one.X, one.Y))
	solve(zero, fmt.Sprintf("0-instance: x=%v y=%v (Ω(q)-diameter network)", zero.X, zero.Y))
	fmt.Println("On the 0-instance the oracle confirmed while the Γ-line was still")
	fmt.Println("uninformed — any CFLOOD protocol fast enough to beat the horizon must")
	fmt.Println("err, which is how the Ω((N/log N)^1/4) lower bound follows from the")
	fmt.Println("DISJOINTNESSCP communication bound.")
}
