// Vehicular network: the motivating scenario for dynamic-network theory.
//
// 48 vehicles drift through a region, forming a fresh radio topology every
// round (a random geometric graph, patched to stay connected as the model
// requires). A roadside unit (node 0) must disseminate a hazard alert and
// *confirm* delivery to all vehicles — CFLOOD. We compare three operating
// points:
//
//  1. The fleet operator knows a diameter bound from radio planning
//     ("any alert reaches everyone within 15 hops of causal influence").
//  2. Nothing is known: the safe fallback D := N-1.
//  3. The operator does not know D but knows the approximate fleet size —
//     and elects a coordinator with the paper's Section 7 protocol, all
//     without any diameter knowledge.
package main

import (
	"fmt"
	"log"

	"dyndiam"
)

func main() {
	const (
		n    = 48
		seed = 2016 // SPAA '16
	)
	mk := func() dyndiam.Adversary { return dyndiam.MobileAdversary(n, 0.22, 0.03, seed) }

	confirm := func(extra map[string]int64, label string) {
		inputs := make([]int64, n)
		inputs[0] = 1
		ms := dyndiam.NewMachines(dyndiam.CFlood{}, n, inputs, seed, extra)
		eng := &dyndiam.Engine{Machines: ms, Adv: mk(), CheckConnectivity: true,
			Terminated: dyndiam.NodeDecided(0)}
		res, err := eng.Run(4 * n)
		if err != nil {
			log.Fatal(err)
		}
		informed := 0
		for _, m := range ms {
			if dyndiam.Informed(m) {
				informed++
			}
		}
		fmt.Printf("  %-26s confirmed at round %2d  (alert delivered to %d/%d)\n",
			label, res.Rounds, informed, n)
	}

	fmt.Printf("Hazard-alert dissemination across %d drifting vehicles:\n\n", n)
	confirm(map[string]int64{dyndiam.ExtraDiameter: 15}, "diameter bound known (15):")
	confirm(nil, "nothing known (D := N-1):")

	// Coordinator election with only a fleet-size estimate.
	ms := dyndiam.NewMachines(dyndiam.LeaderElect{}, n, make([]int64, n), seed,
		map[string]int64{
			dyndiam.ExtraNPrime:    int64(9 * n / 10), // manifest says "about 43 vehicles"
			dyndiam.ExtraCPermille: 100,
		})
	eng := &dyndiam.Engine{Machines: ms, Adv: mk()}
	res, err := eng.Run(10_000_000)
	if err != nil || !res.Done {
		log.Fatalf("coordinator election failed: %v", err)
	}
	fmt.Printf("\nCoordinator election (no diameter knowledge, fleet size ±10%%):\n")
	fmt.Printf("  vehicle %d elected by all in %d rounds\n", res.Outputs[0], res.Rounds)
	fmt.Println("\nKnowing D (or a good fleet-size estimate) is what keeps the round")
	fmt.Println("counts diameter-scaled; with neither, Theorem 6/7 say poly(N) rounds")
	fmt.Println("are unavoidable for confirmation-style tasks.")
}
