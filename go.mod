module dyndiam

go 1.22
