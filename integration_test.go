package dyndiam_test

import (
	"fmt"
	"testing"

	"dyndiam"
	"dyndiam/internal/verify"
)

// The integration matrix: every upper-bound protocol on every adversary
// family, audited with the problem-spec checkers of internal/verify. Each
// cell uses a diameter bound safe for its family.
func TestProtocolAdversaryMatrix(t *testing.T) {
	const n = 18

	families := []struct {
		name string
		mk   func(seed uint64) dyndiam.Adversary
		d    int // safe dynamic-diameter bound
	}{
		{"static-ring", func(uint64) dyndiam.Adversary {
			return dyndiam.StaticAdversary(dyndiam.Ring(n))
		}, n / 2},
		{"static-star", func(uint64) dyndiam.Adversary {
			return dyndiam.StaticAdversary(dyndiam.Star(n))
		}, 2},
		{"random", func(s uint64) dyndiam.Adversary {
			return dyndiam.RandomConnectedAdversary(n, n, s)
		}, n - 1},
		{"bounded-diam", func(s uint64) dyndiam.Adversary {
			return dyndiam.BoundedDiameterAdversary(n, 4, n, s)
		}, 8},
		{"t-interval", func(s uint64) dyndiam.Adversary {
			return dyndiam.TIntervalAdversary(n, 5, 6, s)
		}, n - 1},
		{"dual-graph", func(s uint64) dyndiam.Adversary {
			var chords [][2]int
			for i := 0; i < n/2; i++ {
				chords = append(chords, [2]int{i, (i + n/2) % n})
			}
			return dyndiam.DualGraphAdversary(dyndiam.Ring(n), chords, 0.4, s)
		}, n / 2},
	}

	type check func(t *testing.T, inputs []int64, ms []dyndiam.Machine, res *dyndiam.Result)

	protocols := []struct {
		name   string
		proto  dyndiam.Protocol
		inputs func() []int64
		extra  func(d int) map[string]int64
		term   func([]dyndiam.Machine) bool
		rounds int
		verify check
	}{
		{
			name:  "cflood",
			proto: dyndiam.CFlood{},
			inputs: func() []int64 {
				in := make([]int64, n)
				in[0] = 1
				return in
			},
			extra:  func(d int) map[string]int64 { return map[string]int64{dyndiam.ExtraDiameter: int64(d)} },
			term:   dyndiam.NodeDecided(0),
			rounds: 10 * n,
			verify: func(t *testing.T, _ []int64, ms []dyndiam.Machine, res *dyndiam.Result) {
				if err := verify.CFlood(ms, res, 0); err != nil {
					t.Error(err)
				}
			},
		},
		{
			name:  "consensus-known-d",
			proto: dyndiam.KnownDConsensus{},
			inputs: func() []int64 {
				in := make([]int64, n)
				for v := range in {
					in[v] = int64(v % 2)
				}
				return in
			},
			extra:  func(d int) map[string]int64 { return map[string]int64{dyndiam.ExtraDiameter: int64(d)} },
			rounds: 1000000,
			verify: func(t *testing.T, inputs []int64, _ []dyndiam.Machine, res *dyndiam.Result) {
				if err := verify.Consensus(inputs, res); err != nil {
					t.Error(err)
				}
			},
		},
		{
			name:   "leader-elect",
			proto:  dyndiam.LeaderElect{},
			inputs: func() []int64 { return make([]int64, n) },
			extra:  func(int) map[string]int64 { return nil },
			rounds: 10000000,
			verify: func(t *testing.T, _ []int64, _ []dyndiam.Machine, res *dyndiam.Result) {
				if err := verify.Leader(res, n, true); err != nil {
					t.Error(err)
				}
			},
		},
		{
			name:  "max",
			proto: dyndiam.Max{},
			inputs: func() []int64 {
				in := make([]int64, n)
				for v := range in {
					in[v] = int64((v * 31) % 97)
				}
				return in
			},
			extra:  func(d int) map[string]int64 { return map[string]int64{dyndiam.ExtraDiameter: int64(d)} },
			rounds: 1000000,
			verify: func(t *testing.T, inputs []int64, _ []dyndiam.Machine, res *dyndiam.Result) {
				if err := verify.MaxFunction(inputs, res); err != nil {
					t.Error(err)
				}
			},
		},
		{
			name:   "estimate-n",
			proto:  dyndiam.EstimateN{},
			inputs: func() []int64 { return make([]int64, n) },
			extra: func(d int) map[string]int64 {
				return map[string]int64{dyndiam.ExtraDiameter: int64(d), "K": 96}
			},
			rounds: 10000000,
			verify: func(t *testing.T, _ []int64, _ []dyndiam.Machine, res *dyndiam.Result) {
				if err := verify.EstimateWithin(res, n, 0.45); err != nil {
					t.Error(err)
				}
			},
		},
		{
			name:   "hear-from-exact",
			proto:  dyndiam.HearFromExact{},
			inputs: func() []int64 { return make([]int64, n) },
			extra:  func(int) map[string]int64 { return nil },
			rounds: 100000,
			verify: func(t *testing.T, _ []int64, _ []dyndiam.Machine, res *dyndiam.Result) {
				if err := verify.Termination(res, nil); err != nil {
					t.Error(err)
				}
			},
		},
	}

	for _, fam := range families {
		for _, p := range protocols {
			t.Run(fmt.Sprintf("%s/%s", p.name, fam.name), func(t *testing.T) {
				seed := uint64(len(fam.name) + 7*len(p.name))
				inputs := p.inputs()
				ms := dyndiam.NewMachines(p.proto, n, inputs, seed, p.extra(fam.d))
				eng := &dyndiam.Engine{
					Machines:          ms,
					Adv:               fam.mk(seed),
					Workers:           1,
					CheckConnectivity: true,
					Terminated:        p.term,
				}
				res, err := eng.Run(p.rounds)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Done {
					t.Fatalf("%s did not terminate on %s within %d rounds", p.name, fam.name, p.rounds)
				}
				p.verify(t, inputs, ms, res)
			})
		}
	}
}
