// Package adversaries provides reusable adversary families for the upper-
// bound experiments and examples.
//
// The paper's model lets the adversary pick each round's connected topology
// after seeing the current round's coin flips. The lower-bound
// constructions (package subnet) are adversaries of that adaptive kind; the
// families here are mostly *oblivious* (they ignore the actions), which is
// the setting in which gossip-style protocols with coin-driven send/receive
// choices terminate quickly — see the adaptive Staller for why full
// adaptivity defeats them (and package flood for the always-send primitive
// that it cannot defeat).
package adversaries

import (
	"dyndiam/internal/dynet"
	"dyndiam/internal/graph"
	"dyndiam/internal/rng"
)

// RandomConnected changes the topology every round to a fresh random
// connected graph with the given extra edges beyond a spanning tree.
func RandomConnected(n, extraEdges int, seed uint64) dynet.Adversary {
	src := rng.New(seed)
	return dynet.AdversaryFunc(func(r int, _ []dynet.Action) *graph.Graph {
		return graph.RandomConnected(n, extraEdges, src.Split(uint64(r)))
	})
}

// BoundedDiameter changes the topology every round to a random connected
// graph whose static diameter is at most targetDiam.
func BoundedDiameter(n, targetDiam, extraEdges int, seed uint64) dynet.Adversary {
	src := rng.New(seed)
	return dynet.AdversaryFunc(func(r int, _ []dynet.Action) *graph.Graph {
		return graph.BoundedDiameterRandom(n, targetDiam, extraEdges, src.Split(uint64(r)))
	})
}

// RotatingStar presents a star whose center advances every round — the
// classic dynamic network whose every round has static diameter 2 yet whose
// dynamic diameter is n-1 (see the dynet diameter tests). It separates
// "per-round diameter" from the paper's causal dynamic diameter.
func RotatingStar(n int) dynet.Adversary {
	g := graph.New(n)
	return dynet.AdversaryFunc(func(r int, _ []dynet.Action) *graph.Graph {
		g.Reset()
		center := r % n
		for v := 0; v < n; v++ {
			if v != center {
				g.AddEdge(center, v)
			}
		}
		return g
	})
}

// Churn keeps a base random connected graph and rewires a fraction of the
// extra edges every round, modeling mild topology churn around a stable
// core (the spanning tree persists, so connectivity is unconditional).
type Churn struct {
	n       int
	base    *graph.Graph // spanning tree that persists
	extra   [][2]int
	rewires int
	src     *rng.Source
	scratch *graph.Graph // reused round graph; see Adversary contract
}

// NewChurn builds a churn adversary over n nodes with extra random edges,
// of which rewires are re-sampled each round.
func NewChurn(n, extra, rewires int, seed uint64) *Churn {
	src := rng.New(seed)
	tree := graph.RandomConnected(n, 0, src.Split('t'))
	c := &Churn{n: n, base: tree, rewires: rewires, src: src, scratch: graph.New(n)}
	for i := 0; i < extra; i++ {
		c.extra = append(c.extra, c.randomEdge())
	}
	return c
}

func (c *Churn) randomEdge() [2]int {
	for {
		u, v := c.src.Intn(c.n), c.src.Intn(c.n)
		if u != v {
			return [2]int{u, v}
		}
	}
}

// Topology implements dynet.Adversary.
func (c *Churn) Topology(r int, _ []dynet.Action) *graph.Graph {
	for i := 0; i < c.rewires && len(c.extra) > 0; i++ {
		c.extra[c.src.Intn(len(c.extra))] = c.randomEdge()
	}
	g := c.scratch
	g.CopyFrom(c.base)
	for _, e := range c.extra {
		g.AddEdge(e[0], e[1])
	}
	return g
}

// Staller is the adaptive adversary that defeats coin-driven flooding: it
// tracks which nodes hold the token (assuming the protocol marks holders by
// sending) and, whenever some believed holder is receiving this round,
// routes the entire uninformed region through that node so nothing crosses
// the cut. It is forced to concede one node only in rounds where every
// believed holder sends. Always-send protocols therefore advance every
// round, while send-with-probability-p protocols stall with the informed
// set growing only logarithmically in time.
type Staller struct {
	informed []bool
	scratch  *graph.Graph
	inf, uni []int
}

// NewStaller returns a staller believing only source is informed.
func NewStaller(n, source int) *Staller {
	s := &Staller{informed: make([]bool, n), scratch: graph.New(n)}
	s.informed[source] = true
	return s
}

// Topology implements dynet.Adversary.
func (s *Staller) Topology(r int, actions []dynet.Action) *graph.Graph {
	n := len(s.informed)
	g := s.scratch
	g.Reset()
	informed, uninformed := s.inf[:0], s.uni[:0]
	gate := -1
	for v := 0; v < n; v++ {
		if s.informed[v] {
			informed = append(informed, v)
			if actions[v] == dynet.Receive {
				gate = v
			}
		} else {
			uninformed = append(uninformed, v)
		}
	}
	s.inf, s.uni = informed, uninformed
	for i := 0; i+1 < len(informed); i++ {
		g.AddEdge(informed[i], informed[i+1])
	}
	if len(uninformed) == 0 {
		return g
	}
	attach := gate
	if attach == -1 {
		attach = informed[0]
	}
	g.AddEdge(attach, uninformed[0])
	for i := 0; i+1 < len(uninformed); i++ {
		g.AddEdge(uninformed[i], uninformed[i+1])
	}
	if gate == -1 && actions[attach] == dynet.Send && actions[uninformed[0]] == dynet.Receive {
		s.informed[uninformed[0]] = true
	}
	return g
}
