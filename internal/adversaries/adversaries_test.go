package adversaries

import (
	"testing"

	"dyndiam/internal/dynet"
	"dyndiam/internal/graph"
)

func collect(t *testing.T, adv dynet.Adversary, n, rounds int) []*graph.Graph {
	t.Helper()
	actions := make([]dynet.Action, n)
	out := make([]*graph.Graph, rounds)
	for r := 1; r <= rounds; r++ {
		g := adv.Topology(r, actions)
		if g.N() != n {
			t.Fatalf("round %d: %d vertices, want %d", r, g.N(), n)
		}
		if !g.Connected() {
			t.Fatalf("round %d: disconnected topology", r)
		}
		// Adversaries may reuse the returned graph across calls; clone
		// to hold the round's topology past the next Topology call.
		out[r-1] = g.Clone()
	}
	return out
}

func TestRandomConnectedAlwaysConnected(t *testing.T) {
	collect(t, RandomConnected(30, 10, 1), 30, 50)
}

func TestBoundedDiameterRespectsBound(t *testing.T) {
	graphs := collect(t, BoundedDiameter(40, 6, 10, 2), 40, 30)
	for r, g := range graphs {
		if d := g.StaticDiameter(); d > 6 {
			t.Errorf("round %d: static diameter %d > 6", r+1, d)
		}
	}
}

func TestRotatingStarDynamicDiameter(t *testing.T) {
	const n = 10
	graphs := collect(t, RotatingStar(n), n, 5*n)
	d, exact := dynet.DynamicDiameter(graphs)
	if !exact || d != n-1 {
		t.Errorf("rotating star: dynamic diameter %d (exact %v), want %d", d, exact, n-1)
	}
	for r, g := range graphs {
		if g.StaticDiameter() != 2 {
			t.Errorf("round %d: static diameter %d, want 2", r+1, g.StaticDiameter())
		}
	}
}

func TestChurnKeepsSpanningTree(t *testing.T) {
	c := NewChurn(25, 15, 3, 4)
	graphs := collect(t, c, 25, 40)
	// The tree edges persist; edge sets still change over time.
	changed := false
	for r := 1; r < len(graphs); r++ {
		if graphs[r].M() != graphs[r-1].M() {
			changed = true
		} else {
			for _, e := range graphs[r-1].Edges() {
				if !graphs[r].HasEdge(e[0], e[1]) {
					changed = true
				}
			}
		}
	}
	if !changed {
		t.Error("churn adversary never changed the topology")
	}
}

func TestStallerBookkeeping(t *testing.T) {
	const n = 8
	s := NewStaller(n, 0)
	// All nodes receive: gate exists (node 0), nothing crosses.
	actions := make([]dynet.Action, n)
	g := s.Topology(1, actions)
	if !g.Connected() {
		t.Fatal("staller produced disconnected graph")
	}
	count := 0
	for _, inf := range s.informed {
		if inf {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("informed %d nodes while gated, want 1", count)
	}
	// Node 0 sends and its attached uninformed neighbor receives: concede.
	actions[0] = dynet.Send
	g = s.Topology(2, actions)
	if !g.Connected() {
		t.Fatal("disconnected after concession round")
	}
	count = 0
	for _, inf := range s.informed {
		if inf {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("informed %d nodes after forced concession, want 2", count)
	}
}
