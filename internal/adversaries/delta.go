package adversaries

import (
	"dyndiam/internal/dynet"
	"dyndiam/internal/graph"
	"dyndiam/internal/rng"
)

// DeltaChurn is the churn family restated as a dynet.DeltaAdversary: a
// persistent random spanning tree plus `extra` slot edges, of which
// `rewires` are re-sampled every round. Because only the rewired slots
// change, round r > 1 is naturally an O(rewires) edge-op script — the
// flood fast path applies it to one mutable CSR snapshot instead of
// copying the whole graph, so per-round topology cost scales with churn.
//
// Edge multiplicity is tracked so overlapping slots (or a slot landing on
// a tree edge) never emit a premature deletion: a Del op appears only when
// an edge's multiplicity reaches zero, an Add only when it first becomes
// positive. The tree contributes a permanent multiplicity, making every
// round's topology connected unconditionally.
//
// Per-round randomness comes from a round-keyed split of the seed, so two
// instances built with the same parameters produce identical topology
// sequences regardless of which DeltaAdversary calling pattern drives
// them — the package tests pin Topology-vs-Diff equivalence.
type DeltaChurn struct {
	n       int
	slots   [][2]int
	rewires int
	src     *rng.Source
	counts  map[int64]int
	cur     *graph.Graph // maintained current topology
}

// NewDeltaChurn builds a delta-encoding churn adversary over n nodes with
// extra random slot edges, of which rewires are re-sampled each round.
func NewDeltaChurn(n, extra, rewires int, seed uint64) *DeltaChurn {
	if n < 2 {
		extra, rewires = 0, 0
	}
	src := rng.New(seed)
	tree := graph.RandomConnected(n, 0, src.Split('t'))
	c := &DeltaChurn{
		n: n, rewires: rewires, src: src,
		counts: make(map[int64]int), cur: tree,
	}
	for v := 0; v < n; v++ {
		for _, u := range tree.Adj(v) {
			if int(u) > v {
				c.counts[c.key(v, int(u))]++
			}
		}
	}
	ssrc := src.Split('s')
	for i := 0; i < extra; i++ {
		e := c.randomEdge(ssrc)
		c.slots = append(c.slots, e)
		if c.counts[c.key(e[0], e[1])]++; c.counts[c.key(e[0], e[1])] == 1 {
			c.cur.AddEdge(e[0], e[1])
		}
	}
	return c
}

func (c *DeltaChurn) key(u, v int) int64 { return int64(u)*int64(c.n) + int64(v) }

// randomEdge samples a uniform non-loop edge, normalized to u < v.
func (c *DeltaChurn) randomEdge(src *rng.Source) [2]int {
	for {
		u, v := src.Intn(c.n), src.Intn(c.n)
		if u != v {
			if u > v {
				u, v = v, u
			}
			return [2]int{u, v}
		}
	}
}

// advance applies round r's rewires to the maintained topology, appending
// the resulting edge-op script to d when non-nil. Rounds r <= 1 are the
// base topology and mutate nothing.
func (c *DeltaChurn) advance(r int, d *dynet.EdgeDiff) {
	if r <= 1 || len(c.slots) == 0 {
		return
	}
	rsrc := c.src.Split(uint64(r))
	for i := 0; i < c.rewires; i++ {
		si := rsrc.Intn(len(c.slots))
		old, e := c.slots[si], c.randomEdge(rsrc)
		c.slots[si] = e
		if c.counts[c.key(old[0], old[1])]--; c.counts[c.key(old[0], old[1])] == 0 {
			c.cur.RemoveEdge(old[0], old[1])
			if d != nil {
				d.Del(old[0], old[1])
			}
		}
		if c.counts[c.key(e[0], e[1])]++; c.counts[c.key(e[0], e[1])] == 1 {
			c.cur.AddEdge(e[0], e[1])
			if d != nil {
				d.Add(e[0], e[1])
			}
		}
	}
}

// Topology implements dynet.Adversary.
func (c *DeltaChurn) Topology(r int, _ []dynet.Action) *graph.Graph {
	c.advance(r, nil)
	return c.cur
}

// Diff implements dynet.DeltaAdversary.
func (c *DeltaChurn) Diff(r int, _ []dynet.Action, d *dynet.EdgeDiff) {
	c.advance(r, d)
}
