package adversaries

import (
	"testing"

	"dyndiam/internal/dynet"
	"dyndiam/internal/graph"
)

func deltaGraphsEqual(a, b *graph.Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for v := 0; v < a.N(); v++ {
		pa, pb := a.Adj(v), b.Adj(v)
		if len(pa) != len(pb) {
			return false
		}
		for i := range pa {
			if pa[i] != pb[i] {
				return false
			}
		}
	}
	return true
}

// TestDeltaChurnPatternsAgree pins the DeltaAdversary contract: a fresh
// instance driven by Topology every round and another driven by
// Topology(1)+Diff produce identical topology sequences.
func TestDeltaChurnPatternsAgree(t *testing.T) {
	for _, tc := range []struct{ n, extra, rewires int }{
		{2, 0, 0}, {8, 3, 1}, {40, 10, 4}, {100, 30, 30}, {64, 5, 50},
	} {
		full := NewDeltaChurn(tc.n, tc.extra, tc.rewires, 99)
		delta := NewDeltaChurn(tc.n, tc.extra, tc.rewires, 99)
		actions := make([]dynet.Action, tc.n)

		snap := graph.New(tc.n)
		var d dynet.EdgeDiff
		for r := 1; r <= 20; r++ {
			want := full.Topology(r, actions)
			if r == 1 {
				snap.CopyFrom(delta.Topology(r, actions))
			} else {
				d.Reset()
				delta.Diff(r, actions, &d)
				if d.Len() > 2*tc.rewires {
					t.Fatalf("n=%d round %d: %d diff ops for %d rewires", tc.n, r, d.Len(), tc.rewires)
				}
				d.Apply(snap)
			}
			if !deltaGraphsEqual(snap, want) {
				t.Fatalf("n=%d round %d: diff pattern diverges from topology pattern", tc.n, r)
			}
			if !want.Connected() {
				t.Fatalf("n=%d round %d: churned topology disconnected", tc.n, r)
			}
		}
	}
}

// TestDeltaChurnDeterministic: same parameters, same sequence — twice.
func TestDeltaChurnDeterministic(t *testing.T) {
	a := NewDeltaChurn(32, 8, 3, 5)
	b := NewDeltaChurn(32, 8, 3, 5)
	actions := make([]dynet.Action, 32)
	for r := 1; r <= 12; r++ {
		if !deltaGraphsEqual(a.Topology(r, actions), b.Topology(r, actions)) {
			t.Fatalf("round %d: two same-seed instances diverge", r)
		}
	}
}
