package adversaries

import (
	"dyndiam/internal/dynet"
	"dyndiam/internal/graph"
	"dyndiam/internal/rng"
)

// This file implements the two alternative dynamic-network models the paper
// names (Section 2): the dual graph model of Kuhn/Lynch/Newport/Ghaffari
// [9, 13] and the T-interval connectivity model of Kuhn/Lynch/Oshman [14].
// The paper notes its results extend to both "without any modification";
// here they are adversary families the same protocols run on unchanged.

// Dual is the dual-graph model: a fixed pair (G, G') with G ⊆ G'. The
// reliable edges of G appear in every round; each unreliable edge of
// G' \ G appears in a round iff the chooser says so. With a connected
// reliable graph, every round's topology is connected by construction.
type Dual struct {
	reliable   *graph.Graph
	unreliable [][2]int
	// Chooser decides, per round, which unreliable edges appear.
	// present has one entry per unreliable edge; the chooser may
	// inspect the round's committed actions (the model allows an
	// adaptive choice).
	Chooser func(r int, actions []dynet.Action, present []bool)

	scratch []bool
	g       *graph.Graph // reused round graph; see Adversary contract
}

// NewDual builds a dual-graph adversary. The reliable graph should be
// connected; unreliable edges are given as vertex pairs.
func NewDual(reliable *graph.Graph, unreliable [][2]int, chooser func(r int, actions []dynet.Action, present []bool)) *Dual {
	return &Dual{
		reliable:   reliable,
		unreliable: unreliable,
		Chooser:    chooser,
		scratch:    make([]bool, len(unreliable)),
		g:          graph.New(reliable.N()),
	}
}

// NewRandomDual returns a dual-graph adversary whose unreliable edges each
// appear independently with probability p every round.
func NewRandomDual(reliable *graph.Graph, unreliable [][2]int, p float64, seed uint64) *Dual {
	src := rng.New(seed)
	return NewDual(reliable, unreliable, func(r int, _ []dynet.Action, present []bool) {
		round := src.Split(uint64(r))
		for i := range present {
			present[i] = round.Prob(p)
		}
	})
}

// Topology implements dynet.Adversary.
func (d *Dual) Topology(r int, actions []dynet.Action) *graph.Graph {
	for i := range d.scratch {
		d.scratch[i] = false
	}
	if d.Chooser != nil {
		d.Chooser(r, actions, d.scratch)
	}
	g := d.g
	g.CopyFrom(d.reliable)
	for i, e := range d.unreliable {
		if d.scratch[i] {
			g.AddEdge(e[0], e[1])
		}
	}
	return g
}

// TInterval is the T-interval connectivity model: within each window of T
// consecutive rounds a stable connected spanning subgraph persists, while
// the remaining edges are re-randomized every round. (T = 1 degenerates to
// a fresh random connected graph per round.)
type TInterval struct {
	n, t, extra int
	src         *rng.Source
	stable      *graph.Graph
	window      int
	g           *graph.Graph // reused round graph; see Adversary contract
}

// NewTInterval builds a T-interval adversary over n nodes with the given
// interval length and per-round extra random edges.
func NewTInterval(n, t, extra int, seed uint64) *TInterval {
	if t < 1 {
		t = 1
	}
	return &TInterval{n: n, t: t, extra: extra, src: rng.New(seed), window: -1, g: graph.New(n)}
}

// Topology implements dynet.Adversary.
func (a *TInterval) Topology(r int, _ []dynet.Action) *graph.Graph {
	w := (r - 1) / a.t
	if w != a.window {
		a.window = w
		a.stable = graph.RandomConnected(a.n, 0, a.src.Split('s', uint64(w)))
	}
	g := a.g
	g.CopyFrom(a.stable)
	round := a.src.Split('e', uint64(r))
	for i := 0; i < a.extra; i++ {
		u, v := round.Intn(a.n), round.Intn(a.n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}
