package adversaries

import (
	"testing"

	"dyndiam/internal/dynet"
	"dyndiam/internal/graph"
	"dyndiam/internal/protocols/flood"
	"dyndiam/internal/rng"
)

func TestDualKeepsReliableEdges(t *testing.T) {
	const n = 12
	reliable := graph.Ring(n)
	var unreliable [][2]int
	for i := 0; i < n; i++ {
		unreliable = append(unreliable, [2]int{i, (i + n/2) % n})
	}
	adv := NewRandomDual(reliable, unreliable, 0.3, 7)
	actions := make([]dynet.Action, n)
	sawExtra := false
	for r := 1; r <= 60; r++ {
		g := adv.Topology(r, actions)
		if !g.Connected() {
			t.Fatalf("round %d: disconnected", r)
		}
		for i := 0; i < n; i++ {
			if !g.HasEdge(i, (i+1)%n) {
				t.Fatalf("round %d: reliable edge (%d,%d) missing", r, i, (i+1)%n)
			}
		}
		if g.M() > reliable.M() {
			sawExtra = true
		}
	}
	if !sawExtra {
		t.Error("no unreliable edge ever appeared at p=0.3")
	}
}

func TestDualAdaptiveChooser(t *testing.T) {
	// A chooser that adds unreliable edges only when node 0 receives.
	const n = 6
	reliable := graph.Line(n)
	unreliable := [][2]int{{0, n - 1}}
	adv := NewDual(reliable, unreliable, func(r int, actions []dynet.Action, present []bool) {
		present[0] = actions[0] == dynet.Receive
	})
	actions := make([]dynet.Action, n)
	if !adv.Topology(1, actions).HasEdge(0, n-1) {
		t.Error("edge missing while node 0 receives")
	}
	actions[0] = dynet.Send
	if adv.Topology(2, actions).HasEdge(0, n-1) {
		t.Error("edge present while node 0 sends")
	}
}

func TestDualNilChooserIsReliableOnly(t *testing.T) {
	reliable := graph.Star(5)
	adv := NewDual(reliable, [][2]int{{1, 2}}, nil)
	g := adv.Topology(1, make([]dynet.Action, 5))
	if g.HasEdge(1, 2) {
		t.Error("unreliable edge present with nil chooser")
	}
	if g.M() != reliable.M() {
		t.Error("edge count differs from reliable graph")
	}
}

// TestCFloodOnDualGraph runs the known-D CFLOOD protocol unchanged on the
// dual-graph model — the paper's "results extend without modification".
func TestCFloodOnDualGraph(t *testing.T) {
	const n = 24
	reliable := graph.Ring(n)
	var unreliable [][2]int
	src := rng.New(3)
	for i := 0; i < n; i++ {
		unreliable = append(unreliable, [2]int{src.Intn(n), src.Intn(n)})
	}
	for i := range unreliable {
		if unreliable[i][0] == unreliable[i][1] {
			unreliable[i][1] = (unreliable[i][1] + 1) % n
		}
	}
	adv := NewRandomDual(reliable, unreliable, 0.5, 11)
	inputs := make([]int64, n)
	inputs[0] = 1
	// The dynamic diameter is at most the reliable ring's diameter.
	d := reliable.StaticDiameter()
	ms := dynet.NewMachines(flood.CFlood{}, n, inputs, 5, map[string]int64{flood.ExtraD: int64(d)})
	e := &dynet.Engine{Machines: ms, Adv: adv, Workers: 1,
		CheckConnectivity: true, Terminated: dynet.NodeDecided(0)}
	res, err := e.Run(3 * n)
	if err != nil || !res.Done {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	for v, m := range ms {
		if !flood.Informed(m) {
			t.Errorf("node %d uninformed at confirmation", v)
		}
	}
}

func TestTIntervalStability(t *testing.T) {
	const n, T = 20, 5
	adv := NewTInterval(n, T, 0, 9)
	actions := make([]dynet.Action, n)
	var prev *graph.Graph
	for r := 1; r <= 3*T; r++ {
		g := adv.Topology(r, actions)
		if !g.Connected() {
			t.Fatalf("round %d disconnected", r)
		}
		if prev != nil && (r-1)%T != 0 {
			// Same window: identical stable graph (extra = 0).
			if g.M() != prev.M() {
				t.Fatalf("round %d: edge count changed mid-window", r)
			}
			for _, e := range prev.Edges() {
				if !g.HasEdge(e[0], e[1]) {
					t.Fatalf("round %d: stable edge %v vanished mid-window", r, e)
				}
			}
		}
		prev = g.Clone() // the adversary reuses g on the next call
	}
}

func TestTIntervalChangesAcrossWindows(t *testing.T) {
	const n, T = 30, 4
	adv := NewTInterval(n, T, 0, 2)
	actions := make([]dynet.Action, n)
	g1 := adv.Topology(1, actions).Clone() // reused on the next call
	g2 := adv.Topology(T+1, actions)
	same := true
	for _, e := range g1.Edges() {
		if !g2.HasEdge(e[0], e[1]) {
			same = false
		}
	}
	if same && g1.M() == g2.M() {
		t.Error("stable graph did not change across windows")
	}
}

func TestTIntervalWithExtras(t *testing.T) {
	const n, T = 16, 3
	adv := NewTInterval(n, T, 8, 13)
	actions := make([]dynet.Action, n)
	for r := 1; r <= 4*T; r++ {
		if !adv.Topology(r, actions).Connected() {
			t.Fatalf("round %d disconnected", r)
		}
	}
}
