package adversaries

import (
	"math"

	"dyndiam/internal/dynet"
	"dyndiam/internal/graph"
	"dyndiam/internal/rng"
)

// Mobile models the mobile ad-hoc networks that motivate dynamic-network
// theory: nodes drift through the unit square and connect to every node
// within a communication radius (a random geometric graph per round). The
// model requires per-round connectivity, so if the disk graph fragments,
// the components are patched together with one backbone edge per extra
// component — the "cellular uplink" a real deployment falls back on.
type Mobile struct {
	n      int
	radius float64
	speed  float64
	src    *rng.Source
	x, y   []float64
	g      *graph.Graph // reused round graph; see Adversary contract
	// Patches counts backbone edges added so far (observability for
	// tests and experiments: how often the disk graph fragmented).
	Patches int
}

// NewMobile places n nodes uniformly in the unit square. radius is the
// connection range; speed is the per-round drift magnitude.
func NewMobile(n int, radius, speed float64, seed uint64) *Mobile {
	m := &Mobile{
		n: n, radius: radius, speed: speed,
		src: rng.New(seed),
		x:   make([]float64, n),
		y:   make([]float64, n),
		g:   graph.New(n),
	}
	for v := 0; v < n; v++ {
		m.x[v] = m.src.Float64()
		m.y[v] = m.src.Float64()
	}
	return m
}

// Topology implements dynet.Adversary: drift positions, build the disk
// graph, patch connectivity.
func (m *Mobile) Topology(r int, _ []dynet.Action) *graph.Graph {
	for v := 0; v < m.n; v++ {
		angle := 2 * math.Pi * m.src.Float64()
		m.x[v] = clamp01(m.x[v] + m.speed*math.Cos(angle))
		m.y[v] = clamp01(m.y[v] + m.speed*math.Sin(angle))
	}
	g := m.g
	g.Reset()
	r2 := m.radius * m.radius
	for u := 0; u < m.n; u++ {
		for v := u + 1; v < m.n; v++ {
			dx, dy := m.x[u]-m.x[v], m.y[u]-m.y[v]
			if dx*dx+dy*dy <= r2 {
				g.AddEdge(u, v)
			}
		}
	}
	m.patch(g)
	return g
}

// patch joins disconnected components with backbone edges (nearest pairs
// across components, greedily).
func (m *Mobile) patch(g *graph.Graph) {
	comp := components(g)
	for len(comp) > 1 {
		// Join component 0 to its geometrically nearest other
		// component via the closest node pair.
		bestU, bestV, bestD := -1, -1, math.MaxFloat64
		bestComp := -1
		for ci := 1; ci < len(comp); ci++ {
			for _, u := range comp[0] {
				for _, v := range comp[ci] {
					dx, dy := m.x[u]-m.x[v], m.y[u]-m.y[v]
					d := dx*dx + dy*dy
					if d < bestD {
						bestU, bestV, bestD, bestComp = u, v, d, ci
					}
				}
			}
		}
		g.AddEdge(bestU, bestV)
		m.Patches++
		comp[0] = append(comp[0], comp[bestComp]...)
		comp = append(comp[:bestComp], comp[bestComp+1:]...)
	}
}

// components returns the connected components of g as vertex lists.
func components(g *graph.Graph) [][]int {
	n := g.N()
	seen := make([]bool, n)
	var out [][]int
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		queue := []int{s}
		seen[s] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			comp = append(comp, v)
			for _, u32 := range g.Adj(v) {
				if u := int(u32); !seen[u] {
					seen[u] = true
					queue = append(queue, u)
				}
			}
		}
		out = append(out, comp)
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return -v
	}
	if v > 1 {
		return 2 - v
	}
	return v
}
