package adversaries

import (
	"testing"

	"dyndiam/internal/dynet"
	"dyndiam/internal/graph"
	"dyndiam/internal/protocols/flood"
)

func TestMobileAlwaysConnected(t *testing.T) {
	for _, radius := range []float64{0.15, 0.3, 0.6} {
		m := NewMobile(40, radius, 0.03, 7)
		actions := make([]dynet.Action, 40)
		for r := 1; r <= 80; r++ {
			g := m.Topology(r, actions)
			if !g.Connected() {
				t.Fatalf("radius %.2f round %d: disconnected despite patching", radius, r)
			}
		}
	}
}

func TestMobilePatchesSparseGraphs(t *testing.T) {
	// A tiny radius fragments constantly: the patch counter must grow.
	m := NewMobile(30, 0.05, 0.05, 3)
	actions := make([]dynet.Action, 30)
	for r := 1; r <= 30; r++ {
		m.Topology(r, actions)
	}
	if m.Patches == 0 {
		t.Error("no patches at radius 0.05 (expected heavy fragmentation)")
	}
	// A huge radius never fragments.
	big := NewMobile(30, 1.5, 0.05, 3)
	for r := 1; r <= 30; r++ {
		big.Topology(r, actions)
	}
	if big.Patches != 0 {
		t.Errorf("%d patches at radius 1.5 (complete graph expected)", big.Patches)
	}
}

func TestMobileTopologyChanges(t *testing.T) {
	m := NewMobile(20, 0.3, 0.08, 5)
	actions := make([]dynet.Action, 20)
	g1 := m.Topology(1, actions).Clone() // reused on the next call
	changed := false
	for r := 2; r <= 20 && !changed; r++ {
		g2 := m.Topology(r, actions)
		if g2.M() != g1.M() {
			changed = true
			break
		}
		for _, e := range g1.Edges() {
			if !g2.HasEdge(e[0], e[1]) {
				changed = true
				break
			}
		}
	}
	if !changed {
		t.Error("mobility never changed the topology")
	}
}

func TestCFloodOnMobileNetwork(t *testing.T) {
	const n = 32
	m := NewMobile(n, 0.25, 0.04, 11)
	inputs := make([]int64, n)
	inputs[0] = 1
	ms := dynet.NewMachines(flood.CFlood{}, n, inputs, 5,
		map[string]int64{flood.ExtraD: n - 1})
	e := &dynet.Engine{Machines: ms, Adv: m, Workers: 1,
		CheckConnectivity: true, Terminated: dynet.NodeDecided(0)}
	res, err := e.Run(3 * n)
	if err != nil || !res.Done {
		t.Fatalf("CFLOOD failed on the mobile network: %v", err)
	}
	for v, mm := range ms {
		if !flood.Informed(mm) {
			t.Errorf("node %d uninformed at confirmation", v)
		}
	}
}

func TestComponentsHelper(t *testing.T) {
	g := graph.New(6)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	comp := components(g)
	if len(comp) != 4 { // {0,1}, {2,3}, {4}, {5}
		t.Fatalf("got %d components, want 4", len(comp))
	}
}
