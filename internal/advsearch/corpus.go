package advsearch

import (
	"embed"
	"encoding/json"
	"fmt"
	"strings"
)

// The regression corpus: adversarial schedules the search discovered,
// frozen with the hardness they exhibited when found. TestCorpusHardness
// replays every entry and asserts the recorded rounds-to-termination bit
// for bit, so protocol or engine changes that would soften a discovered
// worst case fail loudly instead of silently regressing the lower-bound
// reproductions. Entries are written by `dynadvsearch -corpus-dir`.
//
//go:embed corpus/*.json
var corpusFS embed.FS

// CorpusEntry is one frozen discovery. Schedule plus EvalSeed and
// EvalBudget fully determine the replay; Hardness and Score are what
// the replay must reproduce exactly.
type CorpusEntry struct {
	Name             string   `json:"name"`
	Proto            Proto    `json:"proto"`
	Origin           string   `json:"origin"`
	SearchSeed       uint64   `json:"search_seed"`
	EvalSeed         uint64   `json:"eval_seed"`
	EvalBudget       int      `json:"eval_budget"`
	Schedule         Schedule `json:"schedule"`
	Hardness         Hardness `json:"hardness"`
	Score            int64    `json:"score"`
	ConstructedScore int64    `json:"constructed_score"`
}

// LoadCorpus returns every embedded corpus entry, sorted by file name
// (ReadDir order), each validated against its own schedule invariants.
func LoadCorpus() ([]CorpusEntry, error) {
	files, err := corpusFS.ReadDir("corpus")
	if err != nil {
		return nil, fmt.Errorf("advsearch: reading corpus: %v", err)
	}
	var entries []CorpusEntry
	for _, f := range files {
		if f.IsDir() || !strings.HasSuffix(f.Name(), ".json") {
			continue
		}
		data, err := corpusFS.ReadFile("corpus/" + f.Name())
		if err != nil {
			return nil, err
		}
		var e CorpusEntry
		if err := json.Unmarshal(data, &e); err != nil {
			return nil, fmt.Errorf("advsearch: corpus entry %s: %v", f.Name(), err)
		}
		if want := strings.TrimSuffix(f.Name(), ".json"); e.Name != want {
			return nil, fmt.Errorf("advsearch: corpus entry %s names itself %q", f.Name(), e.Name)
		}
		if _, err := ParseProto(string(e.Proto)); err != nil {
			return nil, fmt.Errorf("advsearch: corpus entry %s: %v", f.Name(), err)
		}
		if err := e.Schedule.Validate(); err != nil {
			return nil, fmt.Errorf("advsearch: corpus entry %s: %v", f.Name(), err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// CorpusEntriesFromReport freezes a report's top discoveries as corpus
// entries named <proto>-s<seed>-<k>.
func CorpusEntriesFromReport(rep *Report) []CorpusEntry {
	entries := make([]CorpusEntry, 0, len(rep.Top))
	for k, c := range rep.Top {
		entries = append(entries, CorpusEntry{
			Name:             fmt.Sprintf("%s-s%d-%02d", rep.Config.Proto, rep.Config.Seed, k),
			Proto:            rep.Config.Proto,
			Origin:           c.Origin,
			SearchSeed:       rep.Config.Seed,
			EvalSeed:         rep.Config.EvalSeed,
			EvalBudget:       rep.Config.EvalBudget,
			Schedule:         c.Schedule,
			Hardness:         c.Hardness,
			Score:            c.Score,
			ConstructedScore: rep.Constructed.Score,
		})
	}
	return entries
}
