package advsearch

import "testing"

// TestCorpusHardness is the regression gate over the frozen discoveries:
// every corpus entry re-evaluates to its recorded rounds-to-termination
// (and diameter) bit for bit, and every searched protocol ships at least
// three discovered schedules. A protocol or engine change that softens a
// discovered worst case — or hardens it — fails here, making adversary
// hardness an explicit contract instead of an accident of the current
// code.
func TestCorpusHardness(t *testing.T) {
	entries, err := LoadCorpus()
	if err != nil {
		t.Fatal(err)
	}
	perProto := map[Proto]int{}
	for _, e := range entries {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			h, err := Evaluate(e.Proto, e.Schedule, e.EvalSeed, e.EvalBudget, nil)
			if err != nil {
				t.Fatal(err)
			}
			if h != e.Hardness {
				t.Fatalf("replayed hardness %+v does not match recorded %+v", h, e.Hardness)
			}
			if got := h.ScoreFor(e.Proto); got != e.Score {
				t.Fatalf("replayed score %d does not match recorded %d", got, e.Score)
			}
		})
		perProto[e.Proto]++
	}
	for _, p := range Protocols() {
		if perProto[p] < 3 {
			t.Errorf("corpus holds %d entries for %s, want at least 3", perProto[p], p)
		}
	}
}

// TestCorpusBeatsOrRecordsBaseline documents the discovered-vs-
// constructed relationship the corpus froze: every entry records the
// constructed baseline score it was measured against, and at least one
// entry (leader election) strictly beats its construction.
func TestCorpusBeatsOrRecordsBaseline(t *testing.T) {
	entries, err := LoadCorpus()
	if err != nil {
		t.Fatal(err)
	}
	beats := 0
	for _, e := range entries {
		if e.ConstructedScore <= 0 {
			t.Errorf("%s: constructed score %d not recorded", e.Name, e.ConstructedScore)
		}
		if e.Score > e.ConstructedScore {
			beats++
		}
	}
	if beats == 0 {
		t.Error("no corpus entry beats its construction; the leader discoveries should")
	}
}
