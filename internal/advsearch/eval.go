package advsearch

import (
	"fmt"

	"dyndiam/internal/dynet"
	"dyndiam/internal/harness"
	"dyndiam/internal/obs"
	"dyndiam/internal/protocols/consensus"
	"dyndiam/internal/protocols/flood"
	"dyndiam/internal/protocols/leader"
)

// Proto names one searched protocol objective.
type Proto string

// The searched protocols. Each pairs a concrete Machine implementation
// with a hardness objective (see Hardness.ScoreFor):
//
//   - cflood_known: CFLOOD told the true dynamic diameter D costs exactly
//     D rounds, so the adversary maximizes D itself (the rotating star's
//     n-1 is provably optimal under every-round connectivity — at least
//     one new node is informed per round).
//   - cflood_unknown: without D the protocol pays the pessimistic N-1
//     rounds regardless; hardness is the waste, rounds/D, so the
//     adversary *minimizes* D (the static clique is optimal at D=1).
//   - consensus: the Section 6 known-D consensus runs a fixed
//     3(D+w)w-round horizon, so hardness again grows with D — but
//     through the full message-passing engine, CONGEST accounting
//     included.
//   - leaderelect: the Section 7 protocol guesses D by doubling, and its
//     round count varies richly with the schedule — the objective with
//     genuine search headroom beyond the constructions.
const (
	ProtoCFloodKnown   Proto = "cflood_known"
	ProtoCFloodUnknown Proto = "cflood_unknown"
	ProtoConsensus     Proto = "consensus"
	ProtoLeader        Proto = "leaderelect"
)

// Protocols lists every searched protocol in a stable order.
func Protocols() []Proto {
	return []Proto{ProtoCFloodKnown, ProtoCFloodUnknown, ProtoConsensus, ProtoLeader}
}

// ParseProto validates a protocol name.
func ParseProto(s string) (Proto, error) {
	for _, p := range Protocols() {
		if Proto(s) == p {
			return p, nil
		}
	}
	return "", fmt.Errorf("advsearch: unknown protocol %q (have %v)", s, Protocols())
}

// Hardness records what one evaluation measured: the protocol's
// rounds-to-termination on the schedule, the schedule's certified
// dynamic diameter, and whether the run terminated within budget (a
// budget-capped run reports Rounds = budget with Done = false — still a
// valid, comparable hardness signal).
type Hardness struct {
	Rounds int  `json:"rounds"`
	D      int  `json:"d"`
	Done   bool `json:"done"`
}

// ScoreFor maps a measurement onto the protocol's maximization
// objective. Scores are integers so comparisons are exact: absolute
// rounds for the diameter-driven protocols, and milli-flooding-rounds
// (rounds*1000/D) for unknown-D CFLOOD, where the interesting quantity
// is how many multiples of the true diameter the pessimistic bound
// wastes.
func (h Hardness) ScoreFor(proto Proto) int64 {
	if proto == ProtoCFloodUnknown {
		if h.D <= 0 {
			return 0
		}
		return int64(h.Rounds) * 1000 / int64(h.D)
	}
	return int64(h.Rounds)
}

// Evaluate measures one schedule's hardness for one protocol. The
// schedule must Validate (the caller gates mutations; Evaluate assumes
// connectivity and lets the engine's own checks catch harness bugs).
// All protocol randomness derives from evalSeed, which the search keeps
// fixed across every candidate of a run: comparing candidates under the
// same coin tape is what makes the argmax well-defined and
// query-order independent. budget caps the rounds of the open-ended
// protocols (consensus horizons and leader election); the flood
// protocols are bounded by N+2 structurally. reg, when non-nil,
// receives the engine's metrics (the sweep-cell registry).
func Evaluate(proto Proto, s Schedule, evalSeed uint64, budget int, reg *obs.Registry) (Hardness, error) {
	d, err := harness.MeasureDynamicDiameter(s.Adversary(), s.N, s.Rounds+s.N+2)
	if err != nil {
		return Hardness{}, err
	}
	switch proto {
	case ProtoCFloodKnown, ProtoCFloodUnknown:
		inputs := make([]int64, s.N)
		inputs[0] = 1
		var extra map[string]int64
		if proto == ProtoCFloodKnown {
			extra = map[string]int64{flood.ExtraD: int64(d)}
		}
		ms := dynet.NewMachines(flood.CFlood{}, s.N, inputs, evalSeed, extra)
		e := &dynet.Engine{Machines: ms, Adv: s.Adversary(), Workers: 1, Metrics: reg}
		res, err := e.RunFlood(s.N+2, dynet.StopNode(0))
		if err != nil {
			return Hardness{}, err
		}
		if !res.Done {
			return Hardness{}, fmt.Errorf("advsearch: %s did not confirm within %d rounds (D=%d)", proto, s.N+2, d)
		}
		return Hardness{Rounds: res.Rounds, D: d, Done: true}, nil
	case ProtoConsensus:
		inputs := make([]int64, s.N)
		for v := range inputs {
			inputs[v] = int64(v % 2)
		}
		extra := map[string]int64{consensus.ExtraD: int64(d)}
		ms := dynet.NewMachines(consensus.KnownD{}, s.N, inputs, evalSeed, extra)
		e := &dynet.Engine{Machines: ms, Adv: s.Adversary(), Workers: 1, Metrics: reg}
		res, err := e.Run(budget)
		if err != nil {
			return Hardness{}, err
		}
		return Hardness{Rounds: res.Rounds, D: d, Done: res.Done}, nil
	case ProtoLeader:
		ms := dynet.NewMachines(leader.Protocol{}, s.N, make([]int64, s.N), evalSeed, nil)
		e := &dynet.Engine{Machines: ms, Adv: s.Adversary(), Workers: 1, Metrics: reg}
		res, err := e.Run(budget)
		if err != nil {
			return Hardness{}, err
		}
		return Hardness{Rounds: res.Rounds, D: d, Done: res.Done}, nil
	}
	return Hardness{}, fmt.Errorf("advsearch: unknown protocol %q", proto)
}
