package advsearch

import (
	"encoding/json"
	"testing"

	"dyndiam/internal/harness"
)

// FuzzAdvSearchDeterminism is the package's determinism oath under
// arbitrary configurations: the same seed and budget produce the
// byte-identical best schedule and hardness table, run twice and at
// different SweepWorkers settings. It sits alongside the dynet/faults
// fuzz targets in make fuzz and the CI fuzz smoke.
func FuzzAdvSearchDeterminism(f *testing.F) {
	f.Add(uint64(1), uint8(8), uint8(10), uint8(2), uint8(3), uint8(0), uint8(1))
	f.Add(uint64(42), uint8(6), uint8(6), uint8(1), uint8(2), uint8(1), uint8(2))
	f.Add(uint64(7), uint8(9), uint8(12), uint8(2), uint8(2), uint8(3), uint8(0))
	f.Add(uint64(99), uint8(5), uint8(1), uint8(0), uint8(4), uint8(2), uint8(1))
	f.Fuzz(func(t *testing.T, seed uint64, n, horizon, restarts, steps, protoSel, modeSel uint8) {
		cfg := Config{
			Proto:      Protocols()[int(protoSel)%len(Protocols())],
			N:          4 + int(n)%8,
			Restarts:   int(restarts) % 3,
			Steps:      1 + int(steps)%3,
			Seed:       seed,
			EvalBudget: 50_000,
		}
		cfg.Horizon = 1 + int(horizon)%(2*cfg.N)
		switch modeSel % 3 {
		case 0:
			cfg.Mode = ModeRandom
		case 1:
			cfg.Mode = ModeGreedy
		default:
			cfg.Mode = ModeEvolve
			cfg.Pop = 3
			cfg.Restarts = 0
		}

		run := func(workers int) (string, string) {
			prev := harness.SetSweepWorkers(workers)
			defer harness.SetSweepWorkers(prev)
			rep, err := Search(cfg, nil, Options{})
			if err != nil {
				t.Fatalf("cfg %+v: %v", cfg, err)
			}
			best, err := json.Marshal(rep.Best)
			if err != nil {
				t.Fatal(err)
			}
			return string(best), FormatHardnessTable([]HardnessRow{RowFromReport(rep)}).String()
		}
		best1, table1 := run(1)
		best2, table2 := run(1)
		best4, table4 := run(4)
		if best1 != best2 || best1 != best4 {
			t.Fatalf("best schedule not deterministic:\n%s\n%s\n%s", best1, best2, best4)
		}
		if table1 != table2 || table1 != table4 {
			t.Fatalf("hardness table not deterministic:\n%s\n%s\n%s", table1, table2, table4)
		}
	})
}
