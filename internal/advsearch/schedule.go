// Package advsearch synthesizes adversarial dynamic-graph schedules by
// search instead of by hand. The paper's lower bounds come from explicit
// constructions (the rotating star, the Theorem 6 subnetworks); this
// package asks whether *worse* instances exist for the repo's concrete
// protocols by searching edge-schedule space — seeded random restarts,
// greedy edge-rewire local search, and a mutation/crossover mode over
// EdgeDiff scripts — subject to the model's every-round-connectivity
// invariant. Everything is a pure function of the configured seeds:
// candidates are evaluated as deterministic sweep cells (the
// internal/harness per-cell machinery), so a search is reproducible bit
// for bit at any SweepWorkers setting, checkpointable, and its best
// discoveries can be frozen into the regression corpus (see corpus.go).
package advsearch

import (
	"fmt"

	"dyndiam/internal/dynet"
	"dyndiam/internal/graph"
	"dyndiam/internal/rng"
)

// Op is one serialized edge operation: insert (u, v), or delete it when
// Del is set. It is dynet.EdgeOp with JSON tags, so schedules round-trip
// through the corpus and checkpoint files.
type Op struct {
	U   int32 `json:"u"`
	V   int32 `json:"v"`
	Del bool  `json:"del,omitempty"`
}

// Schedule is a finite dynamic-graph schedule in delta encoding: Base is
// round 1's edge list (applied to the empty graph), and Diffs[i]
// transforms round i+1's topology into round i+2's. Rounds beyond Rounds
// hold the last topology ("hold-last"), so a Schedule defines an
// adversary for any horizon — in particular, every causal spread that is
// open when the scripted rounds end closes over the final static graph,
// which is what lets MeasureDynamicDiameter certify the dynamic diameter
// with a finite horizon.
//
// The canonical form (what FromGraphs produces) lists Base in ascending
// (u, v) order and derives every diff with dynet.DiffGraphs, which walks
// sorted adjacencies — so two schedules with equal topology sequences
// marshal to identical JSON, and "byte-identical best schedule" is a
// meaningful determinism contract.
type Schedule struct {
	N      int    `json:"n"`
	Rounds int    `json:"rounds"`
	Base   []Op   `json:"base"`
	Diffs  [][]Op `json:"diffs,omitempty"`
}

// FromGraphs builds the canonical Schedule presenting gs[r-1] in round r.
// The graphs are read, not retained.
func FromGraphs(gs []*graph.Graph) Schedule {
	if len(gs) == 0 {
		return Schedule{}
	}
	n := gs[0].N()
	s := Schedule{N: n, Rounds: len(gs)}
	for _, e := range gs[0].Edges() {
		s.Base = append(s.Base, Op{U: int32(e[0]), V: int32(e[1])})
	}
	if len(gs) > 1 {
		s.Diffs = make([][]Op, len(gs)-1)
		var d dynet.EdgeDiff
		for i := 1; i < len(gs); i++ {
			d.Reset()
			dynet.DiffGraphs(gs[i-1], gs[i], &d)
			ops := make([]Op, len(d.Ops))
			for j, op := range d.Ops {
				ops[j] = Op{U: op.U, V: op.V, Del: op.Del}
			}
			s.Diffs[i-1] = ops
		}
	}
	return s
}

// Graphs materializes the schedule: element r-1 is round r's topology.
func (s Schedule) Graphs() []*graph.Graph {
	gs := make([]*graph.Graph, 0, s.Rounds)
	g := graph.New(s.N)
	applyOps(g, s.Base)
	gs = append(gs, g)
	for _, diff := range s.Diffs {
		g = g.Clone()
		applyOps(g, diff)
		gs = append(gs, g)
	}
	return gs
}

func applyOps(g *graph.Graph, ops []Op) {
	for _, op := range ops {
		if op.Del {
			g.RemoveEdge(int(op.U), int(op.V))
		} else {
			g.AddEdge(int(op.U), int(op.V))
		}
	}
}

// Validate checks the schedule is well-formed and satisfies the model's
// adversary obligations: positive size, consistent diff count, every op
// in range and loop-free, and — the paper's standing invariant — every
// materialized round connected. Corpus entries and checkpoints pass
// through here before anything trusts them, so a hand-edited file fails
// loudly instead of panicking inside the graph core.
func (s Schedule) Validate() error {
	if s.N < 2 {
		return fmt.Errorf("advsearch: schedule over %d nodes (need at least 2)", s.N)
	}
	if s.Rounds < 1 {
		return fmt.Errorf("advsearch: schedule with %d rounds (need at least 1)", s.Rounds)
	}
	if len(s.Diffs) != s.Rounds-1 {
		return fmt.Errorf("advsearch: schedule declares %d rounds but carries %d diffs (want rounds-1)", s.Rounds, len(s.Diffs))
	}
	checkOps := func(r int, ops []Op) error {
		for _, op := range ops {
			if op.U < 0 || op.V < 0 || int(op.U) >= s.N || int(op.V) >= s.N || op.U == op.V {
				return fmt.Errorf("advsearch: round %d op (%d,%d) out of range over %d nodes", r, op.U, op.V, s.N)
			}
		}
		return nil
	}
	if err := checkOps(1, s.Base); err != nil {
		return err
	}
	g := graph.New(s.N)
	applyOps(g, s.Base)
	if !g.Connected() {
		return fmt.Errorf("advsearch: round 1 topology disconnected")
	}
	for i, diff := range s.Diffs {
		if err := checkOps(i+2, diff); err != nil {
			return err
		}
		applyOps(g, diff)
		if !g.Connected() {
			return fmt.Errorf("advsearch: round %d topology disconnected", i+2)
		}
	}
	return nil
}

// Adversary returns a fresh dynet.DeltaAdversary presenting the schedule
// with hold-last extension beyond Rounds. Each call returns an
// independent adapter, so one Schedule can drive the diameter
// measurement and the protocol run of the same evaluation without
// sharing cursor state. Per the DeltaAdversary contract the consumer
// picks one calling pattern — Topology for every round in order, or
// Topology(1) then Diff(2), Diff(3), ... — and the adapter serves both
// from the same scripts.
func (s Schedule) Adversary() dynet.DeltaAdversary {
	return &schedAdversary{s: s}
}

type schedAdversary struct {
	s   Schedule
	g   *graph.Graph
	cur int // last round materialized into g (Topology pattern only)
}

func (a *schedAdversary) Topology(r int, _ []dynet.Action) *graph.Graph {
	if a.g == nil {
		a.g = graph.New(a.s.N)
	}
	switch {
	case r == 1:
		a.g.Reset()
		applyOps(a.g, a.s.Base)
	case r == a.cur+1:
		if r <= a.s.Rounds {
			applyOps(a.g, a.s.Diffs[r-2])
		}
	case r == a.cur:
		// re-ask for the current round: g already holds it
	default:
		//lint:allow panicfree out-of-order rounds violate the Adversary contract; this is a harness bug, not data
		panic(fmt.Sprintf("advsearch: schedule adversary asked for round %d after round %d", r, a.cur))
	}
	a.cur = r
	return a.g
}

func (a *schedAdversary) Diff(r int, _ []dynet.Action, d *dynet.EdgeDiff) {
	if r <= 1 || r > a.s.Rounds {
		return // hold-last: empty script
	}
	for _, op := range a.s.Diffs[r-2] {
		d.Ops = append(d.Ops, dynet.EdgeOp{U: op.U, V: op.V, Del: op.Del})
	}
}

// RandomSchedule draws a schedule of the given shape: every round an
// independent random connected graph with extraEdges beyond a spanning
// tree. All randomness comes from src, so the schedule is a pure
// function of the caller's seed derivation.
func RandomSchedule(n, rounds, extraEdges int, src *rng.Source) Schedule {
	gs := make([]*graph.Graph, rounds)
	for r := range gs {
		gs[r] = graph.RandomConnected(n, extraEdges, src.Split(uint64(r)))
	}
	return FromGraphs(gs)
}

// Constructed returns the paper-derived baseline schedule the search
// must beat for a protocol: the rotating star (per-round diameter 2,
// dynamic diameter n-1 — the classic hand-built worst case) for the
// diameter-driven protocols, and the static clique (dynamic diameter 1)
// for unknown-D CFLOOD, whose hardness is the pessimistic N-1 rounds
// *relative to* the true diameter — the adversary maximizes waste by
// making the graph as good as possible.
func Constructed(proto Proto, n, rounds int) Schedule {
	if proto == ProtoCFloodUnknown {
		g := graph.New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				g.AddEdge(u, v)
			}
		}
		return FromGraphs([]*graph.Graph{g})
	}
	gs := make([]*graph.Graph, rounds)
	for i := range gs {
		g := graph.New(n)
		center := (i + 1) % n
		for v := 0; v < n; v++ {
			if v != center {
				g.AddEdge(center, v)
			}
		}
		gs[i] = g
	}
	return FromGraphs(gs)
}
