package advsearch

import (
	"encoding/json"
	"reflect"
	"testing"

	"dyndiam/internal/dynet"
	"dyndiam/internal/harness"
	"dyndiam/internal/rng"
)

// TestScheduleCanonicalFixpoint pins the canonical form: materializing a
// schedule and re-deriving it lands on the identical value (and JSON
// bytes), which is what makes "byte-identical best schedule" a real
// contract rather than a representation accident.
func TestScheduleCanonicalFixpoint(t *testing.T) {
	s := RandomSchedule(9, 7, 4, rng.New(3))
	if err := s.Validate(); err != nil {
		t.Fatalf("random schedule invalid: %v", err)
	}
	again := FromGraphs(s.Graphs())
	if !reflect.DeepEqual(s, again) {
		t.Fatalf("canonicalization not a fixpoint:\n%+v\n%+v", s, again)
	}
	b1, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Schedule
	if err := json.Unmarshal(b1, &decoded); err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("JSON round-trip changed bytes:\n%s\n%s", b1, b2)
	}
}

// TestScheduleAdversaryPatterns holds the adapter to the DeltaAdversary
// contract: the Topology-every-round pattern and the Topology(1)+Diff
// pattern must produce identical topology sequences, including the
// hold-last extension beyond the scripted rounds.
func TestScheduleAdversaryPatterns(t *testing.T) {
	s := RandomSchedule(8, 5, 3, rng.New(11))
	horizon := s.Rounds + 4

	topo := s.Adversary()
	var full []string
	for r := 1; r <= horizon; r++ {
		full = append(full, dumpGraph(topo.Topology(r, nil)))
	}

	delta := s.Adversary()
	g := delta.Topology(1, nil).Clone()
	if got := dumpGraph(g); got != full[0] {
		t.Fatalf("round 1 differs between patterns:\n%s\n%s", got, full[0])
	}
	var d dynet.EdgeDiff
	for r := 2; r <= horizon; r++ {
		d.Reset()
		delta.Diff(r, nil, &d)
		d.Apply(g)
		if got := dumpGraph(g); got != full[r-1] {
			t.Fatalf("round %d differs between patterns:\n%s\n%s", r, got, full[r-1])
		}
		if r > s.Rounds && d.Len() != 0 {
			t.Fatalf("round %d beyond the script emitted %d ops; hold-last means empty diffs", r, d.Len())
		}
	}
}

func dumpGraph(g interface{ Edges() [][2]int }) string {
	b, _ := json.Marshal(g.Edges())
	return string(b)
}

func TestValidateRejects(t *testing.T) {
	base := RandomSchedule(6, 3, 2, rng.New(5))
	cases := []struct {
		name string
		warp func(s *Schedule)
	}{
		{"too few nodes", func(s *Schedule) { s.N = 1 }},
		{"zero rounds", func(s *Schedule) { s.Rounds = 0 }},
		{"diff count mismatch", func(s *Schedule) { s.Diffs = s.Diffs[:1] }},
		{"op out of range", func(s *Schedule) { s.Base[0].U = 99 }},
		{"self-loop op", func(s *Schedule) { s.Base[0].V = s.Base[0].U }},
		{"disconnected round", func(s *Schedule) {
			s.Base = []Op{{U: 0, V: 1}, {U: 2, V: 3}, {U: 4, V: 5}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base
			s.Base = append([]Op(nil), base.Base...)
			s.Diffs = append([][]Op(nil), base.Diffs...)
			tc.warp(&s)
			if err := s.Validate(); err == nil {
				t.Fatalf("Validate accepted a %s schedule", tc.name)
			}
		})
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("baseline schedule invalid: %v", err)
	}
}

// TestConstructedDiameters pins the baselines to the paper's facts: the
// rotating star has dynamic diameter n-1 despite per-round diameter 2,
// and the static clique has dynamic diameter 1.
func TestConstructedDiameters(t *testing.T) {
	n := 8
	star := Constructed(ProtoCFloodKnown, n, 2*n)
	if err := star.Validate(); err != nil {
		t.Fatal(err)
	}
	d, err := harness.MeasureDynamicDiameter(star.Adversary(), n, star.Rounds+n+2)
	if err != nil {
		t.Fatal(err)
	}
	if d != n-1 {
		t.Fatalf("rotating star dynamic diameter = %d, want %d", d, n-1)
	}
	clique := Constructed(ProtoCFloodUnknown, n, 2*n)
	if err := clique.Validate(); err != nil {
		t.Fatal(err)
	}
	d, err = harness.MeasureDynamicDiameter(clique.Adversary(), n, clique.Rounds+n+2)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Fatalf("clique dynamic diameter = %d, want 1", d)
	}
}

// TestMutatePreservesInvariants drives the mutation operator hard and
// checks every accepted move yields a valid (connected-every-round)
// canonical schedule.
func TestMutatePreservesInvariants(t *testing.T) {
	src := rng.New(17)
	s := RandomSchedule(7, 4, 1, src.Split('i'))
	accepted := 0
	for k := 0; k < 200; k++ {
		m, ok := mutate(s, src.Split('m', uint64(k)))
		if !ok {
			continue
		}
		accepted++
		if err := m.Validate(); err != nil {
			t.Fatalf("mutation %d produced invalid schedule: %v", k, err)
		}
		if got := FromGraphs(m.Graphs()); !reflect.DeepEqual(m, got) {
			t.Fatalf("mutation %d produced non-canonical schedule", k)
		}
		s = m
	}
	if accepted < 100 {
		t.Fatalf("only %d/200 mutations accepted; operator too weak", accepted)
	}
}
