package advsearch

import (
	"encoding/json"
	"fmt"
	"sort"

	"dyndiam/internal/graph"
	"dyndiam/internal/harness"
	"dyndiam/internal/obs"
	"dyndiam/internal/rng"
)

// Mode selects the search strategy.
type Mode string

// The search strategies. All three draw every coin from the config seed
// through index-addressed rng splits, so results never depend on
// evaluation order or concurrency.
const (
	// ModeRandom evaluates independent random schedules (pure restarts).
	ModeRandom Mode = "random"
	// ModeGreedy runs strictly-improving edge-rewire local search from a
	// random start, one hill-climb chain per restart.
	ModeGreedy Mode = "greedy"
	// ModeEvolve runs a small evolutionary loop: mutation + crossover
	// over the population's EdgeDiff scripts, truncation selection.
	ModeEvolve Mode = "evolve"
)

// Config parameterizes one search run. The zero value of every field
// has a sensible default (see Normalize); the normalized Config is what
// gets hashed into the checkpoint key, so two runs that normalize
// equally share checkpoints.
type Config struct {
	// Proto is the protocol objective (see Protocols).
	Proto Proto `json:"proto"`
	// N is the network size.
	N int `json:"n"`
	// Horizon is the scripted schedule length in rounds; beyond it the
	// last topology holds (default 2N).
	Horizon int `json:"horizon"`
	// Mode is the strategy (default greedy).
	Mode Mode `json:"mode"`
	// Restarts is the number of independent restarts (random/greedy) or
	// the population size (evolve, unless Pop overrides). Zero restarts
	// is the "zero-budget" search: only the paper construction is
	// evaluated, which CI uses to pin discovered == constructed.
	Restarts int `json:"restarts"`
	// Steps is the hill-climb length per restart (greedy), extra samples
	// per restart (random), or generation count (evolve).
	Steps int `json:"steps"`
	// Pop is the evolve population size (default max(Restarts, 4)).
	Pop int `json:"pop,omitempty"`
	// ExtraEdges shapes initial random schedules: edges beyond a
	// spanning tree per round (default N/2).
	ExtraEdges int `json:"extra_edges"`
	// Seed roots all search randomness (restarts, mutations,
	// crossovers); default 1.
	Seed uint64 `json:"seed"`
	// EvalSeed roots the protocol coins. It is shared by every candidate
	// of the run — same coin tape, fair comparison — and defaults to
	// Seed^0x9e3779b97f4a7c15.
	EvalSeed uint64 `json:"eval_seed"`
	// EvalBudget caps rounds of the open-ended protocols per evaluation
	// (default 200000).
	EvalBudget int `json:"eval_budget"`
	// Top is how many distinct best discoveries the report retains
	// (default 3).
	Top int `json:"top"`
}

// Normalize applies defaults and validates. The result is the canonical
// config: Key and checkpoint compatibility are defined over it.
func (c Config) Normalize() (Config, error) {
	if _, err := ParseProto(string(c.Proto)); err != nil {
		return c, err
	}
	if c.N == 0 {
		c.N = 12
	}
	if c.N < 4 || c.N > 128 {
		return c, fmt.Errorf("advsearch: network size %d out of range [4, 128]", c.N)
	}
	if c.Horizon == 0 {
		c.Horizon = 2 * c.N
	}
	if c.Horizon < 1 || c.Horizon > 8*c.N {
		return c, fmt.Errorf("advsearch: horizon %d out of range [1, %d]", c.Horizon, 8*c.N)
	}
	if c.Mode == "" {
		c.Mode = ModeGreedy
	}
	if c.Mode != ModeRandom && c.Mode != ModeGreedy && c.Mode != ModeEvolve {
		return c, fmt.Errorf("advsearch: unknown mode %q (have random, greedy, evolve)", c.Mode)
	}
	if c.Restarts < 0 || c.Restarts > 256 {
		return c, fmt.Errorf("advsearch: restarts %d out of range [0, 256]", c.Restarts)
	}
	if c.Steps == 0 {
		c.Steps = 16
	}
	if c.Steps < 0 || c.Steps > 4096 {
		return c, fmt.Errorf("advsearch: steps %d out of range [0, 4096]", c.Steps)
	}
	if c.Mode == ModeEvolve {
		if c.Pop == 0 {
			c.Pop = c.Restarts
			if c.Pop < 4 {
				c.Pop = 4
			}
		}
		if c.Pop < 2 || c.Pop > 256 {
			return c, fmt.Errorf("advsearch: population %d out of range [2, 256]", c.Pop)
		}
	} else {
		c.Pop = 0
	}
	if c.ExtraEdges == 0 {
		c.ExtraEdges = c.N / 2
	}
	if c.ExtraEdges < 0 || c.ExtraEdges > c.N*c.N {
		return c, fmt.Errorf("advsearch: extra edges %d out of range [0, %d]", c.ExtraEdges, c.N*c.N)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.EvalSeed == 0 {
		c.EvalSeed = c.Seed ^ 0x9e3779b97f4a7c15
	}
	if c.EvalBudget == 0 {
		c.EvalBudget = 200000
	}
	if c.EvalBudget < 1 {
		return c, fmt.Errorf("advsearch: eval budget %d must be positive", c.EvalBudget)
	}
	if c.Top == 0 {
		c.Top = 3
	}
	if c.Top < 1 || c.Top > 64 {
		return c, fmt.Errorf("advsearch: top %d out of range [1, 64]", c.Top)
	}
	return c, nil
}

// Key returns the content address of the normalized config — the
// checkpoint compatibility token.
func (c Config) Key() (string, error) {
	n, err := c.Normalize()
	if err != nil {
		return "", err
	}
	return harness.CanonicalJobKey("advsearch", n)
}

// Candidate is one evaluated schedule. Seq is its deterministic birth
// ordinal (constructed baseline = 0, then restarts/generations in index
// order); ties on Score break toward the lower Seq, so the argmax is a
// total order over candidates and independent of evaluation order.
type Candidate struct {
	Origin   string   `json:"origin"`
	Seq      int      `json:"seq"`
	Schedule Schedule `json:"schedule"`
	Hardness Hardness `json:"hardness"`
	Score    int64    `json:"score"`
}

// better reports whether a strictly precedes b in the hardness order:
// higher score first, earlier Seq on ties. It is a strict total order
// (Seqs are unique), which is what makes fold-the-argmax commutative
// enough to survive any evaluation order.
func better(a, b Candidate) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Seq < b.Seq
}

// UnitResult is one completed search unit (a restart chain).
type UnitResult struct {
	Unit      int       `json:"unit"`
	Best      Candidate `json:"best"`
	Evaluated int       `json:"evaluated"`
}

// State is the checkpointable search progress. It is pure data —
// cmd/advsearch persists it with cliutil.SaveJSON between batches — and
// resuming from it replays nothing: completed units (or generations)
// are skipped, and because every unit is a pure function of the config,
// a resumed search lands on the byte-identical report.
type State struct {
	// Key pins the config the state belongs to; Search refuses a
	// mismatched resume rather than silently mixing runs.
	Key string `json:"key"`
	// Units are the completed restart units (random/greedy), ascending.
	Units []UnitResult `json:"units,omitempty"`
	// Gen and Pop are the evolve-mode frontier: the population after
	// Gen completed generations.
	Gen int         `json:"gen,omitempty"`
	Pop []Candidate `json:"pop,omitempty"`
	// Evaluated counts candidate evaluations performed by the search
	// (the constructed baseline is not included).
	Evaluated int `json:"evaluated"`
}

// Report is the search outcome.
type Report struct {
	Config Config `json:"config"`
	// Constructed is the paper-construction baseline under the same
	// evaluation seed.
	Constructed Candidate `json:"constructed"`
	// Best is the overall argmax including the baseline; with zero
	// budget it is exactly the baseline.
	Best Candidate `json:"best"`
	// Top holds the best distinct discovered schedules (baseline
	// excluded), hardest first.
	Top []Candidate `json:"top,omitempty"`
	// Evaluated counts search evaluations; Improvements counts how many
	// times the running best improved while folding candidates in Seq
	// order.
	Evaluated    int `json:"evaluated"`
	Improvements int `json:"improvements"`
}

// Options carries the optional observability and progress hooks.
type Options struct {
	// Metrics, when non-nil, receives advsearch_candidates_total,
	// advsearch_improvements_total, and the advsearch_best_score gauge.
	Metrics *obs.Registry
	// Obs, when non-nil, receives one span per completed unit (track 1,
	// the harness sweep lane) on the unit-index clock.
	Obs obs.Sink
	// OnProgress, when non-nil, is called with the updated State after
	// every completed batch (and generation); returning an error aborts
	// the search. The callback runs on the caller's goroutine, after
	// the batch barrier, so it may serialize st without synchronization.
	OnProgress func(st *State) error
}

var keyUnitSpan = obs.Intern("advsearch_unit")

// Search runs the configured adversary search, resuming from st when it
// already holds progress (pass nil to start fresh; the populated State
// is returned alongside the report via the OnProgress hook). Candidate
// evaluations run as deterministic sweep cells under
// harness.SweepWorkers; the report is bit-identical at every worker
// count and under any resume split.
func Search(cfg Config, st *State, opt Options) (*Report, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	key, err := cfg.Key()
	if err != nil {
		return nil, err
	}
	if st == nil {
		st = &State{Key: key}
	} else if st.Key == "" {
		st.Key = key
	} else if st.Key != key {
		return nil, fmt.Errorf("advsearch: checkpoint key %.12s... does not match config key %.12s...", st.Key, key)
	}

	base := Constructed(cfg.Proto, cfg.N, cfg.Horizon)
	if err := base.Validate(); err != nil {
		return nil, err
	}
	bh, err := Evaluate(cfg.Proto, base, cfg.EvalSeed, cfg.EvalBudget, nil)
	if err != nil {
		return nil, err
	}
	constructed := Candidate{Origin: "constructed", Seq: 0, Schedule: base, Hardness: bh, Score: bh.ScoreFor(cfg.Proto)}

	var pool []Candidate
	switch cfg.Mode {
	case ModeRandom, ModeGreedy:
		if err := searchUnits(cfg, st, opt); err != nil {
			return nil, err
		}
		for _, u := range st.Units {
			pool = append(pool, u.Best)
		}
	case ModeEvolve:
		if err := searchEvolve(cfg, st, opt); err != nil {
			return nil, err
		}
		pool = append(pool, st.Pop...)
	}

	rep := &Report{Config: cfg, Constructed: constructed, Best: constructed, Evaluated: st.Evaluated}
	sort.SliceStable(pool, func(i, j int) bool { return better(pool[i], pool[j]) })
	seen := map[string]bool{}
	for _, c := range pool {
		if better(c, rep.Best) {
			rep.Best = c
		}
		sig, err := json.Marshal(c.Schedule)
		if err != nil {
			return nil, err
		}
		if !seen[string(sig)] && len(rep.Top) < cfg.Top {
			seen[string(sig)] = true
			rep.Top = append(rep.Top, c)
		}
	}
	rep.Improvements = countImprovements(constructed, pool)

	if opt.Metrics != nil {
		opt.Metrics.Counter("advsearch_candidates_total").Add(int64(rep.Evaluated))
		opt.Metrics.Counter("advsearch_improvements_total").Add(int64(rep.Improvements))
		opt.Metrics.Gauge("advsearch_best_score").Set(rep.Best.Score)
	}
	return rep, nil
}

// countImprovements folds the candidate pool in Seq (birth) order and
// counts strict improvements over the running best — a deterministic
// "how often did the search advance" signal that no evaluation order
// can change.
func countImprovements(constructed Candidate, pool []Candidate) int {
	byBirth := append([]Candidate(nil), pool...)
	sort.SliceStable(byBirth, func(i, j int) bool { return byBirth[i].Seq < byBirth[j].Seq })
	best, n := constructed, 0
	for _, c := range byBirth {
		if better(c, best) {
			best, n = c, n+1
		}
	}
	return n
}

// searchUnits runs the random/greedy restart units that are not already
// in st, in batches of SweepWorkers cells, checkpointing after each
// batch. Every unit's work is a pure function of (cfg, unit index).
func searchUnits(cfg Config, st *State, opt Options) error {
	done := map[int]bool{}
	for _, u := range st.Units {
		done[u.Unit] = true
	}
	var pending []int
	for u := 0; u < cfg.Restarts; u++ {
		if !done[u] {
			pending = append(pending, u)
		}
	}
	batch := harness.SweepWorkers()
	if batch < 1 {
		batch = 1
	}
	for len(pending) > 0 {
		k := batch
		if k > len(pending) {
			k = len(pending)
		}
		units := pending[:k]
		pending = pending[k:]
		results := make([]UnitResult, k)
		err := harness.ForEachCell(k, func(i int, reg *obs.Registry) error {
			r, err := runUnit(cfg, units[i], reg)
			if err != nil {
				return err
			}
			results[i] = r
			return nil
		})
		if err != nil {
			return err
		}
		for _, r := range results {
			st.Units = append(st.Units, r)
			st.Evaluated += r.Evaluated
			sp := obs.BeginSpan(opt.Obs, keyUnitSpan, 1, int32(r.Unit), int32(r.Unit), int64(r.Evaluated))
			sp.End(int32(r.Unit+1), r.Best.Score)
		}
		sort.Slice(st.Units, func(i, j int) bool { return st.Units[i].Unit < st.Units[j].Unit })
		if opt.OnProgress != nil {
			if err := opt.OnProgress(st); err != nil {
				return err
			}
		}
	}
	return nil
}

// runUnit executes one restart chain: a random start, then Steps
// samples (random mode) or strictly-improving mutation steps (greedy
// mode). Seq ordinals are globally unique: unit u's step k is candidate
// 1 + u*(Steps+1) + k.
func runUnit(cfg Config, unit int, reg *obs.Registry) (UnitResult, error) {
	root := rng.New(cfg.Seed)
	seq := func(step int) int { return 1 + unit*(cfg.Steps+1) + step }
	origin := func(step int) string { return fmt.Sprintf("%s r%d s%d", cfg.Mode, unit, step) }

	s := RandomSchedule(cfg.N, cfg.Horizon, cfg.ExtraEdges, root.Split('u', uint64(unit), 's', 0))
	h, err := Evaluate(cfg.Proto, s, cfg.EvalSeed, cfg.EvalBudget, reg)
	if err != nil {
		return UnitResult{}, err
	}
	cur := Candidate{Origin: origin(0), Seq: seq(0), Schedule: s, Hardness: h, Score: h.ScoreFor(cfg.Proto)}
	best := cur
	evaluated := 1

	for step := 1; step <= cfg.Steps; step++ {
		var cand Schedule
		switch cfg.Mode {
		case ModeRandom:
			cand = RandomSchedule(cfg.N, cfg.Horizon, cfg.ExtraEdges, root.Split('u', uint64(unit), 's', uint64(step)))
		case ModeGreedy:
			m, ok := mutate(cur.Schedule, root.Split('u', uint64(unit), 'm', uint64(step)))
			if !ok {
				continue
			}
			cand = m
		}
		h, err := Evaluate(cfg.Proto, cand, cfg.EvalSeed, cfg.EvalBudget, reg)
		if err != nil {
			return UnitResult{}, err
		}
		evaluated++
		c := Candidate{Origin: origin(step), Seq: seq(step), Schedule: cand, Hardness: h, Score: h.ScoreFor(cfg.Proto)}
		if better(c, best) {
			best = c
		}
		if cfg.Mode == ModeGreedy && c.Score > cur.Score {
			cur = c
		}
	}
	return UnitResult{Unit: unit, Best: best, Evaluated: evaluated}, nil
}

// searchEvolve runs the generational loop: initialize (or resume) the
// population, then per generation breed one child per slot by
// crossover+mutation over deterministically drawn parents, evaluate the
// brood as parallel cells, and keep the Pop hardest of parents+children.
func searchEvolve(cfg Config, st *State, opt Options) error {
	root := rng.New(cfg.Seed)
	if st.Pop == nil {
		inits := make([]Candidate, cfg.Pop)
		err := harness.ForEachCell(cfg.Pop, func(i int, reg *obs.Registry) error {
			s := RandomSchedule(cfg.N, cfg.Horizon, cfg.ExtraEdges, root.Split('p', uint64(i)))
			h, err := Evaluate(cfg.Proto, s, cfg.EvalSeed, cfg.EvalBudget, reg)
			if err != nil {
				return err
			}
			inits[i] = Candidate{
				Origin: fmt.Sprintf("evolve init %d", i), Seq: 1 + i,
				Schedule: s, Hardness: h, Score: h.ScoreFor(cfg.Proto),
			}
			return nil
		})
		if err != nil {
			return err
		}
		st.Pop = inits
		st.Gen = 0
		st.Evaluated += cfg.Pop
		sortCandidates(st.Pop)
		if opt.OnProgress != nil {
			if err := opt.OnProgress(st); err != nil {
				return err
			}
		}
	}
	for g := st.Gen; g < cfg.Steps; g++ {
		children := make([]Schedule, cfg.Pop)
		origins := make([]string, cfg.Pop)
		for i := range children {
			src := root.Split('e', uint64(g), uint64(i))
			pa := st.Pop[src.Intn(len(st.Pop))]
			pb := st.Pop[src.Intn(len(st.Pop))]
			child := pa.Schedule
			if pa.Schedule.Rounds == pb.Schedule.Rounds && pa.Schedule.Rounds >= 2 && src.Bool() {
				child = crossover(pa.Schedule, pb.Schedule, src.Split('x'))
			}
			if m, ok := mutate(child, src.Split('m')); ok {
				child = m
			}
			children[i] = child
			origins[i] = fmt.Sprintf("evolve g%d c%d", g, i)
		}
		brood := make([]Candidate, cfg.Pop)
		err := harness.ForEachCell(cfg.Pop, func(i int, reg *obs.Registry) error {
			h, err := Evaluate(cfg.Proto, children[i], cfg.EvalSeed, cfg.EvalBudget, reg)
			if err != nil {
				return err
			}
			brood[i] = Candidate{
				Origin: origins[i], Seq: 1 + cfg.Pop + g*cfg.Pop + i,
				Schedule: children[i], Hardness: h, Score: h.ScoreFor(cfg.Proto),
			}
			return nil
		})
		if err != nil {
			return err
		}
		merged := append(append([]Candidate(nil), st.Pop...), brood...)
		sortCandidates(merged)
		st.Pop = merged[:cfg.Pop]
		st.Gen = g + 1
		st.Evaluated += cfg.Pop
		sp := obs.BeginSpan(opt.Obs, keyUnitSpan, 1, int32(g), int32(g), int64(cfg.Pop))
		sp.End(int32(g+1), st.Pop[0].Score)
		if opt.OnProgress != nil {
			if err := opt.OnProgress(st); err != nil {
				return err
			}
		}
	}
	return nil
}

func sortCandidates(cs []Candidate) {
	sort.SliceStable(cs, func(i, j int) bool { return better(cs[i], cs[j]) })
}

// mutate applies one random structural move to a copy of s: add an
// absent edge, delete an edge, or rewire one edge to another slot — in
// a random round, always preserving that round's connectivity. It
// returns ok=false when no valid move was found within its attempt
// budget (the schedule is untouched).
func mutate(s Schedule, src *rng.Source) (Schedule, bool) {
	gs := s.Graphs()
	if !mutateGraphs(gs, src) {
		return s, false
	}
	return FromGraphs(gs), true
}

func mutateGraphs(gs []*graph.Graph, src *rng.Source) bool {
	const attempts = 8
	for a := 0; a < attempts; a++ {
		t := src.Split(uint64(a))
		g := gs[t.Intn(len(gs))]
		n := g.N()
		switch t.Intn(3) {
		case 0: // add a random absent edge
			u, v := t.Intn(n), t.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				g.AddEdge(u, v)
				return true
			}
		case 1: // delete a random edge, keeping the round connected
			edges := g.Edges()
			if len(edges) == 0 {
				continue
			}
			e := edges[t.Intn(len(edges))]
			g.RemoveEdge(e[0], e[1])
			if g.Connected() {
				return true
			}
			g.AddEdge(e[0], e[1])
		default: // rewire: move one edge to another slot
			edges := g.Edges()
			if len(edges) == 0 {
				continue
			}
			e := edges[t.Intn(len(edges))]
			u, v := t.Intn(n), t.Intn(n)
			if u == v || g.HasEdge(u, v) {
				continue
			}
			g.RemoveEdge(e[0], e[1])
			g.AddEdge(u, v)
			if g.Connected() {
				return true
			}
			g.RemoveEdge(u, v)
			g.AddEdge(e[0], e[1])
		}
	}
	return false
}

// crossover splices two equal-shape schedules at a random round
// boundary: the child plays a's rounds up to the cut and b's after it.
// Both parents satisfy per-round connectivity, so the child does too.
func crossover(a, b Schedule, src *rng.Source) Schedule {
	ga, gb := a.Graphs(), b.Graphs()
	cut := 1 + src.Intn(a.Rounds-1)
	child := append(ga[:cut:cut], gb[cut:]...)
	return FromGraphs(child)
}
