package advsearch

import (
	"encoding/json"
	"reflect"
	"testing"

	"dyndiam/internal/harness"
	"dyndiam/internal/obs"
	"dyndiam/internal/rng"
)

func testConfig(proto Proto, mode Mode) Config {
	return Config{
		Proto: proto, N: 8, Horizon: 10, Mode: mode,
		Restarts: 3, Steps: 4, Seed: 7, EvalBudget: 100_000, Top: 3,
	}
}

func reportBytes(t *testing.T, rep *Report) string {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSearchWorkersGolden is the acceptance golden: for every mode and a
// protocol spread, SweepWorkers 1 and 8 produce byte-identical reports
// and hardness tables.
func TestSearchWorkersGolden(t *testing.T) {
	cases := []struct {
		proto Proto
		mode  Mode
	}{
		{ProtoCFloodKnown, ModeGreedy},
		{ProtoCFloodUnknown, ModeRandom},
		{ProtoConsensus, ModeGreedy},
		{ProtoLeader, ModeEvolve},
	}
	for _, tc := range cases {
		t.Run(string(tc.proto)+"/"+string(tc.mode), func(t *testing.T) {
			cfg := testConfig(tc.proto, tc.mode)
			prev := harness.SetSweepWorkers(1)
			defer harness.SetSweepWorkers(prev)
			seq, err := Search(cfg, nil, Options{})
			if err != nil {
				t.Fatal(err)
			}
			harness.SetSweepWorkers(8)
			par, err := Search(cfg, nil, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if a, b := reportBytes(t, seq), reportBytes(t, par); a != b {
				t.Fatalf("SweepWorkers 1 vs 8 reports differ:\n%s\n%s", a, b)
			}
			ta := FormatHardnessTable([]HardnessRow{RowFromReport(seq)}).String()
			tb := FormatHardnessTable([]HardnessRow{RowFromReport(par)}).String()
			if ta != tb {
				t.Fatalf("SweepWorkers 1 vs 8 tables differ:\n%s\n%s", ta, tb)
			}
		})
	}
}

// TestSearchResumeEquivalent checkpoints a search after its first
// progress callback, round-trips the state through JSON, resumes, and
// requires the byte-identical report.
func TestSearchResumeEquivalent(t *testing.T) {
	for _, mode := range []Mode{ModeGreedy, ModeEvolve} {
		t.Run(string(mode), func(t *testing.T) {
			cfg := testConfig(ProtoCFloodKnown, mode)
			prev := harness.SetSweepWorkers(2)
			defer harness.SetSweepWorkers(prev)

			full, err := Search(cfg, nil, Options{})
			if err != nil {
				t.Fatal(err)
			}

			var snapshot []byte
			_, err = Search(cfg, nil, Options{OnProgress: func(st *State) error {
				if snapshot == nil {
					b, err := json.Marshal(st)
					if err != nil {
						return err
					}
					snapshot = b
				}
				return nil
			}})
			if err != nil {
				t.Fatal(err)
			}
			if snapshot == nil {
				t.Fatal("OnProgress never ran")
			}

			var st State
			if err := json.Unmarshal(snapshot, &st); err != nil {
				t.Fatal(err)
			}
			resumed, err := Search(cfg, &st, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if a, b := reportBytes(t, full), reportBytes(t, resumed); a != b {
				t.Fatalf("resumed report differs from uninterrupted run:\n%s\n%s", a, b)
			}
		})
	}
}

// TestSearchRejectsForeignCheckpoint: resuming under a different config
// must fail instead of silently mixing runs.
func TestSearchRejectsForeignCheckpoint(t *testing.T) {
	cfg := testConfig(ProtoCFloodKnown, ModeGreedy)
	key, err := cfg.Key()
	if err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Seed = 99
	if _, err := Search(other, &State{Key: key}, Options{}); err == nil {
		t.Fatal("Search accepted a checkpoint from a different config")
	}
}

// TestSearchOrderIndependence is the satellite-1 property test: the
// argmax over a candidate set must not depend on the order candidates
// are evaluated or folded. It evaluates a pool of unit-seeded schedules
// forward and backward (identical hardness either way — seed derivation
// is index-addressed, never order-addressed), then folds the selection
// under rng-driven permutations and requires the identical best
// schedule every time.
func TestSearchOrderIndependence(t *testing.T) {
	cfg, err := testConfig(ProtoLeader, ModeGreedy).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	root := rng.New(cfg.Seed)
	const k = 12
	scheds := make([]Schedule, k)
	for i := range scheds {
		scheds[i] = RandomSchedule(cfg.N, cfg.Horizon, cfg.ExtraEdges, root.Split('u', uint64(i), 's', 0))
	}

	evalAll := func(order []int) []Candidate {
		out := make([]Candidate, k)
		for _, i := range order {
			h, err := Evaluate(cfg.Proto, scheds[i], cfg.EvalSeed, cfg.EvalBudget, nil)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = Candidate{Origin: "pool", Seq: 1 + i, Schedule: scheds[i], Hardness: h, Score: h.ScoreFor(cfg.Proto)}
		}
		return out
	}
	forward := make([]int, k)
	backward := make([]int, k)
	for i := range forward {
		forward[i] = i
		backward[i] = k - 1 - i
	}
	pool := evalAll(forward)
	rev := evalAll(backward)
	if !reflect.DeepEqual(pool, rev) {
		t.Fatal("evaluation order changed per-candidate hardness")
	}

	pick := func(cs []Candidate) Candidate {
		best := cs[0]
		for _, c := range cs[1:] {
			if better(c, best) {
				best = c
			}
		}
		return best
	}
	want := pick(pool)
	wantSig, _ := json.Marshal(want.Schedule)
	perm := rng.New(99)
	for trial := 0; trial < 20; trial++ {
		shuffled := make([]Candidate, 0, k)
		for _, i := range perm.Split(uint64(trial)).Perm(k) {
			shuffled = append(shuffled, pool[i])
		}
		got := pick(shuffled)
		gotSig, _ := json.Marshal(got.Schedule)
		if got.Seq != want.Seq || string(gotSig) != string(wantSig) {
			t.Fatalf("permutation %d selected candidate %d, want %d", trial, got.Seq, want.Seq)
		}
	}
}

// TestZeroBudgetEqualsConstructed pins the CI gate: a search with zero
// restarts evaluates only the paper construction and reports exactly
// its hardness.
func TestZeroBudgetEqualsConstructed(t *testing.T) {
	for _, proto := range Protocols() {
		cfg := testConfig(proto, ModeGreedy)
		cfg.Restarts = 0
		rep, err := Search(cfg, nil, Options{})
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if !reflect.DeepEqual(rep.Best, rep.Constructed) {
			t.Fatalf("%s: zero-budget best %+v is not the constructed baseline %+v", proto, rep.Best, rep.Constructed)
		}
		if rep.Best.Origin != "constructed" || len(rep.Top) != 0 || rep.Evaluated != 0 {
			t.Fatalf("%s: zero-budget report carries search residue: %+v", proto, rep)
		}
	}
}

type sliceSink struct{ events []obs.Event }

func (s *sliceSink) Emit(e obs.Event) { s.events = append(s.events, e) }

// TestSearchObservability: the candidates-evaluated and improvements
// counters, the best-score gauge, and one span per completed unit — all
// deterministic across workers.
func TestSearchObservability(t *testing.T) {
	cfg := testConfig(ProtoLeader, ModeGreedy)
	collect := func(workers int) ([]obs.MetricPoint, []obs.Event, *Report) {
		prev := harness.SetSweepWorkers(workers)
		defer harness.SetSweepWorkers(prev)
		reg := obs.NewRegistry()
		sink := &sliceSink{}
		rep, err := Search(cfg, nil, Options{Metrics: reg, Obs: sink})
		if err != nil {
			t.Fatal(err)
		}
		return reg.Snapshot(), sink.events, rep
	}
	snap1, events1, rep := collect(1)
	snap8, events8, _ := collect(8)
	if !reflect.DeepEqual(snap1, snap8) {
		t.Fatalf("metric snapshots differ across workers:\n%v\n%v", snap1, snap8)
	}
	if !reflect.DeepEqual(events1, events8) {
		t.Fatalf("span streams differ across workers:\n%v\n%v", events1, events8)
	}

	reg := obs.NewRegistry()
	sink := &sliceSink{}
	prev := harness.SetSweepWorkers(1)
	defer harness.SetSweepWorkers(prev)
	if _, err := Search(cfg, nil, Options{Metrics: reg, Obs: sink}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("advsearch_candidates_total").Value(); got != int64(rep.Evaluated) {
		t.Fatalf("advsearch_candidates_total = %d, want %d", got, rep.Evaluated)
	}
	if got := reg.Counter("advsearch_improvements_total").Value(); got != int64(rep.Improvements) {
		t.Fatalf("advsearch_improvements_total = %d, want %d", got, rep.Improvements)
	}
	if got := reg.Gauge("advsearch_best_score").Value(); got != rep.Best.Score {
		t.Fatalf("advsearch_best_score = %d, want %d", got, rep.Best.Score)
	}
	if want := 2 * cfg.Restarts; len(sink.events) != want {
		t.Fatalf("got %d span events, want %d (one begin/end pair per unit)", len(sink.events), want)
	}
}

// TestSearchFindsLeaderHeadroom pins the headline discovery: greedy
// search beats the rotating-star construction on leader election (the
// protocol's doubling guesses interact with the schedule far more
// richly than plain flooding does).
func TestSearchFindsLeaderHeadroom(t *testing.T) {
	cfg := testConfig(ProtoLeader, ModeGreedy)
	rep, err := Search(cfg, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Best.Score <= rep.Constructed.Score {
		t.Fatalf("search found nothing beyond the construction: best %d <= constructed %d", rep.Best.Score, rep.Constructed.Score)
	}
	if len(rep.Top) == 0 {
		t.Fatal("no discoveries retained")
	}
	for _, c := range rep.Top {
		if err := c.Schedule.Validate(); err != nil {
			t.Fatalf("retained discovery invalid: %v", err)
		}
	}
}
