package advsearch

import "dyndiam/internal/harness"

// HardnessRow is one protocol's discovered-vs-constructed comparison.
type HardnessRow struct {
	Proto            Proto  `json:"proto"`
	N                int    `json:"n"`
	ConstructedRnds  int    `json:"constructed_rounds"`
	ConstructedD     int    `json:"constructed_d"`
	ConstructedScore int64  `json:"constructed_score"`
	DiscoveredRnds   int    `json:"discovered_rounds"`
	DiscoveredD      int    `json:"discovered_d"`
	DiscoveredScore  int64  `json:"discovered_score"`
	Origin           string `json:"origin"`
	Evaluated        int    `json:"evaluated"`
}

// RowFromReport condenses one search report into its table row.
func RowFromReport(rep *Report) HardnessRow {
	return HardnessRow{
		Proto:            rep.Config.Proto,
		N:                rep.Config.N,
		ConstructedRnds:  rep.Constructed.Hardness.Rounds,
		ConstructedD:     rep.Constructed.Hardness.D,
		ConstructedScore: rep.Constructed.Score,
		DiscoveredRnds:   rep.Best.Hardness.Rounds,
		DiscoveredD:      rep.Best.Hardness.D,
		DiscoveredScore:  rep.Best.Score,
		Origin:           rep.Best.Origin,
		Evaluated:        rep.Evaluated,
	}
}

// FormatHardnessTable renders the discovered-vs-constructed comparison.
// "ratio" is discovered score over constructed score: 1.00 means the
// search matched the paper's hand-built adversary, above 1.00 it beat
// it.
func FormatHardnessTable(rows []HardnessRow) *harness.Table {
	t := &harness.Table{
		Caption: "Adversary synthesis: discovered vs constructed hardness (score = rounds; unknown-D CFLOOD: rounds*1000/D)",
		Header:  []string{"protocol", "N", "constr rnds", "constr D", "constr score", "disc rnds", "disc D", "disc score", "ratio", "best origin", "evals"},
	}
	for _, r := range rows {
		ratio := 0.0
		if r.ConstructedScore > 0 {
			ratio = float64(r.DiscoveredScore) / float64(r.ConstructedScore)
		}
		t.Add(string(r.Proto), r.N, r.ConstructedRnds, r.ConstructedD, r.ConstructedScore,
			r.DiscoveredRnds, r.DiscoveredD, r.DiscoveredScore, ratio, r.Origin, r.Evaluated)
	}
	return t
}
