// Package bitio implements bit-granular encoding and decoding of protocol
// messages, together with exact size accounting.
//
// The CONGEST model bounds every message to O(log N) bits, so the simulator
// must know the exact bit length of everything a protocol puts on the wire.
// All protocol codecs in this repository are written against bitio so that
// the dynamic-network engine can enforce the per-message bit budget and the
// two-party reduction harness can charge Alice and Bob the exact number of
// bits they exchange.
package bitio

import (
	"errors"
	"fmt"
	"math/bits"
)

// ErrOverflow is returned when a read runs past the end of the bit stream.
var ErrOverflow = errors.New("bitio: read past end of stream")

// ErrRange is returned when a decoded value does not fit its declared width.
var ErrRange = errors.New("bitio: value out of range")

// Writer accumulates bits most-significant-bit first into a byte slice.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	nbit int // total bits written
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.nbit }

// Bytes returns the encoded bytes. The final byte is zero padded.
func (w *Writer) Bytes() []byte { return w.buf }

// Reset clears the writer for reuse, retaining the underlying buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.nbit = 0
}

// WriteBit appends a single bit.
func (w *Writer) WriteBit(b bool) {
	if w.nbit%8 == 0 {
		w.buf = append(w.buf, 0)
	}
	if b {
		w.buf[w.nbit/8] |= 1 << (7 - uint(w.nbit%8))
	}
	w.nbit++
}

// WriteUint appends v using exactly width bits, most significant bit first.
// It panics if v does not fit in width bits: message layouts are fixed by the
// protocol designer, so an overflow is a programming error, not input error.
func (w *Writer) WriteUint(v uint64, width int) {
	if width < 0 || width > 64 {
		//lint:allow panicfree message layouts are fixed by the protocol designer; a bad width is a programming error
		panic(fmt.Sprintf("bitio: invalid width %d", width))
	}
	if width < 64 && v >= 1<<uint(width) {
		//lint:allow panicfree an overflowing field is a protocol-design bug, not runtime input
		panic(fmt.Sprintf("bitio: value %d does not fit in %d bits", v, width))
	}
	for i := width - 1; i >= 0; i-- {
		w.WriteBit(v>>uint(i)&1 == 1)
	}
}

// WriteBool appends a boolean as one bit.
func (w *Writer) WriteBool(b bool) { w.WriteBit(b) }

// WriteUvarint appends v in a bit-granular variable-length encoding:
// groups of 4 value bits, each preceded by a continuation bit.
// Small values (the common case for ids and counters) stay small while the
// encoding remains self-delimiting, which the codecs rely on.
func (w *Writer) WriteUvarint(v uint64) {
	for {
		group := v & 0xF
		v >>= 4
		w.WriteBit(v != 0) // continuation
		w.WriteUint(group, 4)
		if v == 0 {
			return
		}
	}
}

// UvarintLen returns the number of bits WriteUvarint uses for v.
func UvarintLen(v uint64) int {
	groups := 1
	for v >>= 4; v != 0; v >>= 4 {
		groups++
	}
	return groups * 5
}

// WidthFor returns the minimum number of bits needed to represent any value
// in [0, n-1]; WidthFor(0) and WidthFor(1) return 1 so that a field is never
// zero-width.
func WidthFor(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len64(uint64(n - 1))
}

// Reader consumes bits written by Writer.
type Reader struct {
	buf  []byte
	pos  int // next bit to read
	nbit int // total valid bits
}

// NewReader returns a Reader over the first nbit bits of buf.
func NewReader(buf []byte, nbit int) *Reader {
	return &Reader{buf: buf, nbit: nbit}
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.nbit - r.pos }

// ReadBit consumes one bit.
func (r *Reader) ReadBit() (bool, error) {
	if r.pos >= r.nbit {
		return false, ErrOverflow
	}
	b := r.buf[r.pos/8]>>(7-uint(r.pos%8))&1 == 1
	r.pos++
	return b, nil
}

// ReadUint consumes width bits and returns them as an unsigned integer.
func (r *Reader) ReadUint(width int) (uint64, error) {
	if width < 0 || width > 64 {
		return 0, fmt.Errorf("bitio: invalid width %d: %w", width, ErrRange)
	}
	var v uint64
	for i := 0; i < width; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v <<= 1
		if b {
			v |= 1
		}
	}
	return v, nil
}

// ReadBool consumes one bit as a boolean.
func (r *Reader) ReadBool() (bool, error) { return r.ReadBit() }

// ReadUvarint consumes a value written by WriteUvarint.
func (r *Reader) ReadUvarint() (uint64, error) {
	var v uint64
	shift := 0
	for {
		cont, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		group, err := r.ReadUint(4)
		if err != nil {
			return 0, err
		}
		if shift >= 64 {
			return 0, ErrRange
		}
		v |= group << uint(shift)
		shift += 4
		if !cont {
			return v, nil
		}
	}
}
