package bitio

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWriteReadBitRoundTrip(t *testing.T) {
	var w Writer
	pattern := []bool{true, false, true, true, false, false, true, false, true}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	if w.Len() != len(pattern) {
		t.Fatalf("Len = %d, want %d", w.Len(), len(pattern))
	}
	r := NewReader(w.Bytes(), w.Len())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("ReadBit[%d]: %v", i, err)
		}
		if got != want {
			t.Errorf("bit %d = %v, want %v", i, got, want)
		}
	}
	if _, err := r.ReadBit(); err != ErrOverflow {
		t.Errorf("read past end: err = %v, want ErrOverflow", err)
	}
}

func TestWriteUintWidths(t *testing.T) {
	cases := []struct {
		v     uint64
		width int
	}{
		{0, 1}, {1, 1}, {5, 3}, {255, 8}, {256, 9},
		{math.MaxUint32, 32}, {math.MaxUint64, 64}, {0, 64},
	}
	var w Writer
	for _, c := range cases {
		w.WriteUint(c.v, c.width)
	}
	r := NewReader(w.Bytes(), w.Len())
	for _, c := range cases {
		got, err := r.ReadUint(c.width)
		if err != nil {
			t.Fatalf("ReadUint(%d): %v", c.width, err)
		}
		if got != c.v {
			t.Errorf("ReadUint(%d) = %d, want %d", c.width, got, c.v)
		}
	}
}

func TestWriteUintPanicsOnOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WriteUint(8, 3) did not panic")
		}
	}()
	var w Writer
	w.WriteUint(8, 3)
}

func TestUvarintRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		var w Writer
		w.WriteUvarint(v)
		if w.Len() != UvarintLen(v) {
			t.Logf("UvarintLen(%d) = %d, wrote %d", v, UvarintLen(v), w.Len())
			return false
		}
		r := NewReader(w.Bytes(), w.Len())
		got, err := r.ReadUvarint()
		return err == nil && got == v && r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUvarintSmallValuesAreSmall(t *testing.T) {
	for v := uint64(0); v < 16; v++ {
		if got := UvarintLen(v); got != 5 {
			t.Errorf("UvarintLen(%d) = %d, want 5", v, got)
		}
	}
	if got := UvarintLen(16); got != 10 {
		t.Errorf("UvarintLen(16) = %d, want 10", got)
	}
}

func TestWidthFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 1}, {1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := WidthFor(c.n); got != c.want {
			t.Errorf("WidthFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestWidthForCoversRange(t *testing.T) {
	// Property: every value in [0, n) fits in WidthFor(n) bits.
	f := func(n uint16) bool {
		w := WidthFor(int(n))
		if n == 0 {
			return w == 1
		}
		max := uint64(n) - 1
		return max < 1<<uint(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMixedEncodingRoundTrip(t *testing.T) {
	f := func(a uint64, b bool, c uint32, d uint8) bool {
		var w Writer
		w.WriteUvarint(a)
		w.WriteBool(b)
		w.WriteUint(uint64(c), 32)
		w.WriteUint(uint64(d)&0x7, 3)
		r := NewReader(w.Bytes(), w.Len())
		ga, err1 := r.ReadUvarint()
		gb, err2 := r.ReadBool()
		gc, err3 := r.ReadUint(32)
		gd, err4 := r.ReadUint(3)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return false
		}
		return ga == a && gb == b && gc == uint64(c) && gd == uint64(d)&0x7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWriterReset(t *testing.T) {
	var w Writer
	w.WriteUint(0xFF, 8)
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", w.Len())
	}
	w.WriteUint(0x5, 3)
	r := NewReader(w.Bytes(), w.Len())
	v, err := r.ReadUint(3)
	if err != nil || v != 5 {
		t.Fatalf("after reset: got %d, %v; want 5, nil", v, err)
	}
}

func TestReadUintInvalidWidth(t *testing.T) {
	r := NewReader(nil, 0)
	if _, err := r.ReadUint(65); err == nil {
		t.Error("ReadUint(65) succeeded, want error")
	}
	if _, err := r.ReadUint(-1); err == nil {
		t.Error("ReadUint(-1) succeeded, want error")
	}
}

func BenchmarkWriteUvarint(b *testing.B) {
	var w Writer
	for i := 0; i < b.N; i++ {
		w.Reset()
		w.WriteUvarint(uint64(i))
	}
}

func BenchmarkReadUvarint(b *testing.B) {
	var w Writer
	w.WriteUvarint(123456789)
	buf, n := w.Bytes(), w.Len()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(buf, n)
		if _, err := r.ReadUvarint(); err != nil {
			b.Fatal(err)
		}
	}
}
