package bitkernel

import (
	"testing"

	"dyndiam/internal/graph"
)

func ring(n int) *graph.Graph {
	g := graph.New(n)
	for v := 0; v < n; v++ {
		g.AddEdge(v, (v+1)%n)
	}
	return g
}

// TestFloodEngineRunNoAllocs pins the hotpath contract: once its buffers
// are warm, FloodEngine.Run performs zero heap allocations per execution
// when the topology source is itself allocation-free.
func TestFloodEngineRunNoAllocs(t *testing.T) {
	n := 512
	g := ring(n)
	topo := TopologiesFunc(func(int, Bits) (*graph.Graph, error) { return g, nil })
	seed := New(n)
	seed.Set(0)
	cfg := FloodConfig{N: n, Source: 0, D: n - 1, TokenBits: 8, StopAll: true, Seed: seed}

	var fe FloodEngine
	if _, err := fe.Run(cfg, topo, 4*n); err != nil { // warm the buffers
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := fe.Run(cfg, topo, 4*n); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("FloodEngine.Run allocates %v times per run, want 0", allocs)
	}
}

// TestClosureStepNoAllocs pins that stepping the causal closure allocates
// nothing in steady state (Reset reuses the matrices).
func TestClosureStepNoAllocs(t *testing.T) {
	n := 256
	g := ring(n)
	c := NewClosure(n)
	for !c.Complete() { // warm newly's backing array
		c.Step(g)
	}
	c.Reset()
	allocs := testing.AllocsPerRun(10, func() {
		if c.Complete() {
			c.Reset()
		}
		c.Step(g)
	})
	if allocs != 0 {
		t.Fatalf("Closure.Step allocates %v times per step, want 0", allocs)
	}
}
