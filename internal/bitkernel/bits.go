// Package bitkernel provides the word-packed execution kernels behind the
// huge-N fast paths: a dense bitset (Bits), an incrementally maintained
// causal closure (Closure, DiameterTracker), and a flood engine
// (FloodEngine) that runs CFLOOD-style knowledge-set protocols as word-ORs
// over adjacency instead of per-message inboxes.
//
// The package sits below internal/dynet: it depends only on internal/graph
// and the standard library, knows nothing about machines, messages, or
// adversaries, and exposes deterministic, allocation-free round kernels
// that the engine and harness layers wrap. All kernels maintain one shared
// invariant: a Bits value sized for n keeps every bit at position >= n
// zero, so population counts are plain word sums and equality is plain
// word comparison, with the masked tail handled once at construction
// (Fill, TailMask) instead of on every operation.
package bitkernel

import "math/bits"

// Bits is a fixed-size set of integers in [0, n) packed 64 per word.
// Operations that combine two Bits require equal lengths. Methods taking
// an explicit n trust the caller to pass the same n the value was sized
// for; bits at positions >= n must stay zero (the tail invariant).
type Bits []uint64

// WordsFor returns the number of 64-bit words needed for n bits.
func WordsFor(n int) int { return (n + 63) / 64 }

// New returns a zeroed Bits sized for n elements.
func New(n int) Bits { return make(Bits, WordsFor(n)) }

// TailMask returns the mask of valid bits in the last word of a Bits
// sized for n (all ones when n is a multiple of 64).
func TailMask(n int) uint64 {
	if r := uint(n) & 63; r != 0 {
		return ^uint64(0) >> (64 - r)
	}
	return ^uint64(0)
}

// Set sets bit i.
func (b Bits) Set(i int) { b[uint(i)>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (b Bits) Clear(i int) { b[uint(i)>>6] &^= 1 << (uint(i) & 63) }

// Test reports whether bit i is set.
func (b Bits) Test(i int) bool { return b[uint(i)>>6]&(1<<(uint(i)&63)) != 0 }

// Zero clears every bit.
func (b Bits) Zero() {
	for i := range b {
		b[i] = 0
	}
}

// Fill sets bits 0..n-1 and clears the tail, establishing the invariant.
func (b Bits) Fill(n int) {
	if len(b) == 0 {
		return
	}
	for i := range b {
		b[i] = ^uint64(0)
	}
	b[len(b)-1] = TailMask(n)
}

// CopyFrom makes b a copy of o (equal lengths).
func (b Bits) CopyFrom(o Bits) { copy(b, o) }

// Or sets b |= o word-wise. The loop is manually unrolled four wide so
// the common closure/flood row widths stream through cache without a
// per-word bounds-check-and-branch cycle.
func (b Bits) Or(o Bits) {
	i := 0
	for ; i+4 <= len(b); i += 4 {
		b[i] |= o[i]
		b[i+1] |= o[i+1]
		b[i+2] |= o[i+2]
		b[i+3] |= o[i+3]
	}
	for ; i < len(b); i++ {
		b[i] |= o[i]
	}
}

// And sets b &= o word-wise.
func (b Bits) And(o Bits) {
	i := 0
	for ; i+4 <= len(b); i += 4 {
		b[i] &= o[i]
		b[i+1] &= o[i+1]
		b[i+2] &= o[i+2]
		b[i+3] &= o[i+3]
	}
	for ; i < len(b); i++ {
		b[i] &= o[i]
	}
}

// AndNot sets b &^= o word-wise.
func (b Bits) AndNot(o Bits) {
	i := 0
	for ; i+4 <= len(b); i += 4 {
		b[i] &^= o[i]
		b[i+1] &^= o[i+1]
		b[i+2] &^= o[i+2]
		b[i+3] &^= o[i+3]
	}
	for ; i < len(b); i++ {
		b[i] &^= o[i]
	}
}

// Popcount returns the number of set bits. Under the tail invariant this
// is a plain word sum with no end-of-range masking.
func (b Bits) Popcount() int {
	c := 0
	for _, w := range b {
		c += bits.OnesCount64(w)
	}
	return c
}

// Equal reports whether b and o hold the same bits (equal lengths).
func (b Bits) Equal(o Bits) bool {
	for i, w := range b {
		if w != o[i] {
			return false
		}
	}
	return true
}

// FullUpTo reports whether every bit in [0, n) is set.
func (b Bits) FullUpTo(n int) bool {
	if n == 0 {
		return true
	}
	last := len(b) - 1
	for i := 0; i < last; i++ {
		if b[i] != ^uint64(0) {
			return false
		}
	}
	return b[last] == TailMask(n)
}

// NextSet returns the smallest j >= i with bit j set, or n if none.
func (b Bits) NextSet(i, n int) int {
	if i >= n {
		return n
	}
	w := uint(i) >> 6
	word := b[w] >> (uint(i) & 63)
	if word != 0 {
		j := i + bits.TrailingZeros64(word)
		if j < n {
			return j
		}
		return n
	}
	for w++; int(w) < len(b); w++ {
		if b[w] != 0 {
			j := int(w)<<6 + bits.TrailingZeros64(b[w])
			if j < n {
				return j
			}
			return n
		}
	}
	return n
}

// NextZero returns the smallest j >= i with bit j clear, or n if none.
func (b Bits) NextZero(i, n int) int {
	if i >= n {
		return n
	}
	w := uint(i) >> 6
	word := ^b[w] >> (uint(i) & 63)
	if word != 0 {
		j := i + bits.TrailingZeros64(word)
		if j < n {
			return j
		}
		return n
	}
	for w++; int(w) < len(b); w++ {
		if b[w] != ^uint64(0) {
			j := int(w)<<6 + bits.TrailingZeros64(^b[w])
			if j < n {
				return j
			}
			return n
		}
	}
	return n
}

// Matrix is an n-row bitset matrix stored in one contiguous arena, the
// row-major layout the closure kernel walks: Row(v) for consecutive v
// touches consecutive cache lines.
type Matrix struct {
	rows  int
	w     int // words per row
	words []uint64
}

// NewMatrix returns a zeroed rows x cols bit matrix.
func NewMatrix(rows, cols int) *Matrix {
	w := WordsFor(cols)
	return &Matrix{rows: rows, w: w, words: make([]uint64, rows*w)}
}

// Row returns row i as a Bits view aliasing the arena.
func (m *Matrix) Row(i int) Bits { return Bits(m.words[i*m.w : (i+1)*m.w]) }

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Reset zeroes every row.
func (m *Matrix) Reset() {
	for i := range m.words {
		m.words[i] = 0
	}
}
