package bitkernel

import (
	"testing"

	"dyndiam/internal/rng"
)

// refBits is the obvious boolean-slice model the packed operations are
// checked against.
type refBits []bool

func (r refBits) popcount() int {
	c := 0
	for _, b := range r {
		if b {
			c++
		}
	}
	return c
}

func randomPair(n int, src *rng.Source) (Bits, refBits) {
	b := New(n)
	r := make(refBits, n)
	for i := 0; i < n; i++ {
		if src.Bool() {
			b.Set(i)
			r[i] = true
		}
	}
	return b, r
}

func checkAgainstRef(t *testing.T, n int, b Bits, r refBits) {
	t.Helper()
	for i := 0; i < n; i++ {
		if b.Test(i) != r[i] {
			t.Fatalf("n=%d: bit %d = %v, want %v", n, i, b.Test(i), r[i])
		}
	}
	if got, want := b.Popcount(), r.popcount(); got != want {
		t.Fatalf("n=%d: popcount %d, want %d", n, got, want)
	}
	// The tail invariant: no stray bits beyond n.
	if len(b) > 0 {
		if b[len(b)-1]&^TailMask(n) != 0 {
			t.Fatalf("n=%d: tail bits set beyond n: %x", n, b[len(b)-1])
		}
	}
}

func TestBitsOpsMatchReference(t *testing.T) {
	src := rng.New(7)
	for _, n := range []int{1, 2, 63, 64, 65, 127, 128, 129, 200, 1000} {
		for trial := 0; trial < 20; trial++ {
			a, ra := randomPair(n, src)
			b, rb := randomPair(n, src)

			or := New(n)
			or.CopyFrom(a)
			or.Or(b)
			ror := make(refBits, n)
			for i := range ror {
				ror[i] = ra[i] || rb[i]
			}
			checkAgainstRef(t, n, or, ror)

			and := New(n)
			and.CopyFrom(a)
			and.And(b)
			rand := make(refBits, n)
			for i := range rand {
				rand[i] = ra[i] && rb[i]
			}
			checkAgainstRef(t, n, and, rand)

			andNot := New(n)
			andNot.CopyFrom(a)
			andNot.AndNot(b)
			rAndNot := make(refBits, n)
			for i := range rAndNot {
				rAndNot[i] = ra[i] && !rb[i]
			}
			checkAgainstRef(t, n, andNot, rAndNot)

			if got, want := a.Equal(b), func() bool {
				for i := range ra {
					if ra[i] != rb[i] {
						return false
					}
				}
				return true
			}(); got != want {
				t.Fatalf("n=%d: Equal=%v, want %v", n, got, want)
			}
		}
	}
}

func TestBitsFillAndFullUpTo(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 128, 129, 1000} {
		b := New(n)
		if b.FullUpTo(n) {
			t.Fatalf("n=%d: zeroed Bits reported full", n)
		}
		b.Fill(n)
		if !b.FullUpTo(n) {
			t.Fatalf("n=%d: filled Bits not full", n)
		}
		if got := b.Popcount(); got != n {
			t.Fatalf("n=%d: filled popcount %d", n, got)
		}
		b.Clear(n - 1)
		if b.FullUpTo(n) {
			t.Fatalf("n=%d: full after clearing last bit", n)
		}
		b.Set(n - 1)
		b.Clear(0)
		if b.FullUpTo(n) {
			t.Fatalf("n=%d: full after clearing first bit", n)
		}
	}
}

func TestBitsNextSetNextZero(t *testing.T) {
	src := rng.New(11)
	for _, n := range []int{1, 64, 65, 130, 300} {
		for trial := 0; trial < 10; trial++ {
			b, r := randomPair(n, src)
			for i := 0; i <= n; i++ {
				wantSet, wantZero := n, n
				for j := i; j < n; j++ {
					if r[j] && wantSet == n {
						wantSet = j
					}
					if !r[j] && wantZero == n {
						wantZero = j
					}
				}
				if got := b.NextSet(i, n); got != wantSet {
					t.Fatalf("n=%d i=%d: NextSet=%d, want %d", n, i, got, wantSet)
				}
				if got := b.NextZero(i, n); got != wantZero {
					t.Fatalf("n=%d i=%d: NextZero=%d, want %d", n, i, got, wantZero)
				}
			}
		}
	}
}

func TestMatrixRowsAreIndependent(t *testing.T) {
	m := NewMatrix(5, 70)
	m.Row(2).Fill(70)
	for i := 0; i < 5; i++ {
		want := 0
		if i == 2 {
			want = 70
		}
		if got := m.Row(i).Popcount(); got != want {
			t.Fatalf("row %d popcount %d, want %d", i, got, want)
		}
	}
	m.Reset()
	for i := 0; i < 5; i++ {
		if got := m.Row(i).Popcount(); got != 0 {
			t.Fatalf("row %d popcount %d after Reset", i, got)
		}
	}
}
