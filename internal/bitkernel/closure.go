package bitkernel

import "dyndiam/internal/graph"

// This file maintains the paper's causal relation incrementally. Following
// Section 2: (U, r) → (V, r+1) holds iff (U, V) is an edge of the
// round-(r+1) topology or U = V, ⇝ is the transitive closure, and the
// dynamic diameter is the minimum D such that (U, r) ⇝ (V, r+D) for every
// r >= 0 and all U, V. A Closure tracks the spread from one start time; a
// DiameterTracker runs one Closure per start time against a streamed
// topology sequence, so dynamic-diameter queries no longer re-simulate the
// whole trace per start time (and no longer require retaining topologies).

// Closure tracks, for one fixed start time, which sources have causally
// influenced each node: row v is the set of U with (U, r) ⇝ (v, r+z)
// after z Step calls. Rows are double-buffered so each Step uses only the
// previous round's state (influence travels one hop per round), and rows
// that reach the full set are frozen and skipped — once every source
// reaches v, v's row can only stay full, so the kernel's total work over a
// run is bounded by the rounds each row spends below full.
type Closure struct {
	n         int
	cur, nxt  *Matrix
	full      []bool
	fullCount int
	rounds    int
	newly     []int32 // per-Step scratch: rows that reached full this round
}

// NewClosure returns a Closure over n nodes at its start time (row v
// holds exactly {v}).
func NewClosure(n int) *Closure {
	c := &Closure{
		n:     n,
		cur:   NewMatrix(n, n),
		nxt:   NewMatrix(n, n),
		full:  make([]bool, n),
		newly: make([]int32, 0, n),
	}
	c.init()
	return c
}

// Reset returns the Closure to its start-time state so it can be reused
// for a new start time (the DiameterTracker pool path).
func (c *Closure) Reset() {
	c.cur.Reset()
	c.nxt.Reset()
	for v := range c.full {
		c.full[v] = false
	}
	c.fullCount = 0
	c.rounds = 0
	c.init()
}

func (c *Closure) init() {
	for v := 0; v < c.n; v++ {
		c.cur.Row(v).Set(v)
	}
	if c.n == 1 {
		// The single row {0} is already the full set.
		c.full[0] = true
		c.fullCount = 1
	}
}

// Step advances the closure by one round using g, the topology of round
// start+rounds+1. It is a no-op once the closure is complete. The round
// body performs no allocations: rows live in two preallocated matrices
// and the newly-full scratch list was sized to n at construction.
//
//lint:hotpath
//lint:pure
func (c *Closure) Step(g *graph.Graph) {
	if c.fullCount == c.n {
		return
	}
	c.rounds++
	n := c.n
	c.newly = c.newly[:0]
	for v := 0; v < n; v++ {
		if c.full[v] {
			// Both buffered copies of row v were filled when it froze,
			// so the row needs no copy and no ORs this round.
			continue
		}
		nv := c.nxt.Row(v)
		nv.CopyFrom(c.cur.Row(v))
		became := false
		for _, u := range g.Adj(v) {
			if c.full[u] {
				// A frozen neighbor's row is the full set: one Fill
				// replaces the remaining ORs.
				nv.Fill(n)
				became = true
				break
			}
			nv.Or(c.cur.Row(int(u)))
		}
		if !became && nv.FullUpTo(n) {
			became = true
		}
		if became {
			// Defer freezing until the sweep ends: full[] and the cur
			// rows must reflect the previous round while other rows are
			// still being computed from them.
			c.newly = append(c.newly, int32(v))
		}
	}
	for _, v := range c.newly {
		c.full[v] = true
		c.fullCount++
		c.cur.Row(int(v)).Fill(n)
		c.nxt.Row(int(v)).Fill(n)
	}
	c.cur, c.nxt = c.nxt, c.cur
}

// Complete reports whether every node has been influenced by every source.
func (c *Closure) Complete() bool { return c.fullCount == c.n }

// Rounds returns how many Step calls have advanced the closure (the
// spread z once Complete).
func (c *Closure) Rounds() int { return c.rounds }

// Influenced returns node v's influence row: the set of sources U with
// (U, start) ⇝ (v, start+Rounds()). The view aliases kernel storage and
// is invalidated by the next Step or Reset.
func (c *Closure) Influenced(v int) Bits { return c.cur.Row(v) }

// DiameterTracker computes the dynamic diameter of a streamed topology
// sequence: Advance once per round, Result at any prefix. It maintains
// one Closure per still-spreading start time and retires each the round
// it completes, so memory is bounded by the diameter (times the n²-bit
// closure rows), not the trace length, and no topology is retained.
type DiameterTracker struct {
	n       int
	t       int // rounds advanced; graphs seen are rounds 1..t
	starts  []int
	active  []*Closure
	pool    []*Closure
	spreads []int // per start time: completed spread, or -1 while open
	d       int   // max completed spread
}

// NewDiameterTracker returns a tracker over n nodes.
func NewDiameterTracker(n int) *DiameterTracker {
	return &DiameterTracker{n: n}
}

// Advance feeds the tracker round t+1's topology: it opens the closure
// for start time t (0-based) and steps every still-open closure. Closure
// buffers are pooled, so steady state allocates only the bookkeeping
// slots of newly opened start times.
//
//lint:hotpath
//lint:pure
func (t *DiameterTracker) Advance(g *graph.Graph) {
	var c *Closure
	if k := len(t.pool); k > 0 {
		c = t.pool[k-1]
		t.pool = t.pool[:k-1]
		c.Reset()
	} else {
		c = NewClosure(t.n) //lint:allow hotpathalloc pool growth only; steady state reuses retired closures
	}
	t.starts = append(t.starts, t.t)
	t.active = append(t.active, c)
	t.spreads = append(t.spreads, -1)
	t.t++
	out := 0
	for i, c := range t.active {
		c.Step(g)
		if c.Complete() {
			z := c.Rounds()
			t.spreads[t.starts[i]] = z
			if z > t.d {
				t.d = z
			}
			t.pool = append(t.pool, c)
			continue
		}
		t.active[out] = c
		t.starts[out] = t.starts[i]
		out++
	}
	t.active = t.active[:out]
	t.starts = t.starts[:out]
}

// Rounds returns how many topologies have been advanced.
func (t *DiameterTracker) Rounds() int { return t.t }

// Spreads returns, per start time r (0-based), the spread completed from
// r, or -1 if it has not completed within the rounds advanced so far. The
// slice aliases tracker storage.
func (t *DiameterTracker) Spreads() []int { return t.spreads }

// Result returns the dynamic diameter d witnessed by the rounds advanced
// so far and whether the prefix certifies it: every start time either
// completed its spread, or had fewer than d rounds remaining (so its
// incompleteness is consistent with diameter d). When exact is false, d
// is only a lower bound. The semantics match dynet.DynamicDiameter on
// the same topology sequence.
func (t *DiameterTracker) Result() (d int, exact bool) {
	if t.t == 0 {
		return 0, false
	}
	if t.n <= 1 {
		return 0, true
	}
	d = t.d
	exact = d > 0
	for r, z := range t.spreads {
		if z == -1 && t.t-r >= d {
			// At least d rounds elapsed after start r and the spread
			// still did not finish: the true diameter exceeds d.
			exact = false
			break
		}
	}
	return d, exact
}
