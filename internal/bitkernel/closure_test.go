package bitkernel

import (
	"testing"

	"dyndiam/internal/graph"
	"dyndiam/internal/rng"
)

// refSpreadFrom recomputes the spread from scratch with boolean influence
// sets — the specification the incremental Closure is held to.
func refSpreadFrom(graphs []*graph.Graph, r int) int {
	if len(graphs) == 0 {
		return -1
	}
	n := graphs[0].N()
	if n <= 1 {
		return 0
	}
	inf := make([][]bool, n)
	for v := range inf {
		inf[v] = make([]bool, n)
		inf[v][v] = true
	}
	next := make([][]bool, n)
	for v := range next {
		next[v] = make([]bool, n)
	}
	for z := 1; r+z-1 < len(graphs); z++ {
		g := graphs[r+z-1]
		for v := 0; v < n; v++ {
			copy(next[v], inf[v])
			for _, u := range g.Adj(v) {
				for s, b := range inf[u] {
					if b {
						next[v][s] = true
					}
				}
			}
		}
		inf, next = next, inf
		done := true
		for v := 0; v < n && done; v++ {
			for s := 0; s < n; s++ {
				if !inf[v][s] {
					done = false
					break
				}
			}
		}
		if done {
			return z
		}
	}
	return -1
}

// refDiameter mirrors dynet.DynamicDiameter over refSpreadFrom.
func refDiameter(graphs []*graph.Graph) (int, bool) {
	T := len(graphs)
	if T == 0 {
		return 0, false
	}
	if graphs[0].N() <= 1 {
		return 0, true
	}
	d := 0
	spreads := make([]int, T)
	for r := 0; r < T; r++ {
		spreads[r] = refSpreadFrom(graphs, r)
		if spreads[r] > d {
			d = spreads[r]
		}
	}
	exact := d > 0
	for r := 0; r < T; r++ {
		if spreads[r] == -1 && T-r >= d {
			exact = false
			break
		}
	}
	return d, exact
}

func randomTrace(n, T, extra int, seed uint64) []*graph.Graph {
	src := rng.New(seed)
	graphs := make([]*graph.Graph, T)
	for r := range graphs {
		graphs[r] = graph.RandomConnected(n, extra, src.Split(uint64(r)))
	}
	return graphs
}

func TestClosureMatchesScratchSpread(t *testing.T) {
	for _, tc := range []struct{ n, T, extra int }{
		{1, 3, 0}, {2, 4, 0}, {5, 8, 1}, {16, 12, 3}, {33, 10, 0}, {64, 9, 5}, {65, 9, 2},
	} {
		graphs := randomTrace(tc.n, tc.T, tc.extra, uint64(tc.n*1000+tc.T))
		for r := 0; r < tc.T; r++ {
			want := refSpreadFrom(graphs, r)
			c := NewClosure(tc.n)
			got := -1
			for z := 1; r+z-1 < tc.T; z++ {
				c.Step(graphs[r+z-1])
				if c.Complete() {
					got = c.Rounds()
					break
				}
			}
			if got != want {
				t.Fatalf("n=%d T=%d r=%d: closure spread %d, want %d", tc.n, tc.T, r, got, want)
			}
		}
	}
}

func TestClosureInfluencedRows(t *testing.T) {
	// A 4-node line: after one round, each node is influenced by itself
	// and its line neighbors only.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	c := NewClosure(4)
	c.Step(g)
	want := [][]int{{0, 1}, {0, 1, 2}, {1, 2, 3}, {2, 3}}
	for v := 0; v < 4; v++ {
		row := c.Influenced(v)
		for s := 0; s < 4; s++ {
			wantSet := false
			for _, x := range want[v] {
				if x == s {
					wantSet = true
				}
			}
			if row.Test(s) != wantSet {
				t.Fatalf("node %d source %d: influenced=%v, want %v", v, s, row.Test(s), wantSet)
			}
		}
	}
}

func TestClosureReuseViaReset(t *testing.T) {
	graphs := randomTrace(20, 8, 2, 99)
	c := NewClosure(20)
	var first int
	for z := 0; z < 8; z++ {
		c.Step(graphs[z])
	}
	first = c.Rounds()
	firstComplete := c.Complete()
	c.Reset()
	for z := 0; z < 8; z++ {
		c.Step(graphs[z])
	}
	if c.Rounds() != first || c.Complete() != firstComplete {
		t.Fatalf("reused closure diverged: rounds %d vs %d, complete %v vs %v",
			c.Rounds(), first, c.Complete(), firstComplete)
	}
	if want := refSpreadFrom(graphs, 0); firstComplete && first != want {
		t.Fatalf("closure spread %d, want %d", first, want)
	}
}

func TestDiameterTrackerMatchesScratch(t *testing.T) {
	for _, tc := range []struct{ n, T, extra int }{
		{1, 4, 0}, {2, 6, 0}, {6, 10, 1}, {16, 14, 2}, {40, 12, 4}, {65, 8, 3},
	} {
		graphs := randomTrace(tc.n, tc.T, tc.extra, uint64(tc.n*31+tc.T))
		// Every prefix must agree, not just the full trace: the tracker
		// is queried on streamed prefixes by the harness.
		tr := NewDiameterTracker(tc.n)
		for T := 1; T <= tc.T; T++ {
			tr.Advance(graphs[T-1])
			gotD, gotExact := tr.Result()
			wantD, wantExact := refDiameter(graphs[:T])
			if gotD != wantD || gotExact != wantExact {
				t.Fatalf("n=%d prefix %d: tracker (%d,%v), want (%d,%v)",
					tc.n, T, gotD, gotExact, wantD, wantExact)
			}
		}
		// Per-start spreads must match the scratch recomputation too.
		spreads := tr.Spreads()
		for r := 0; r < tc.T; r++ {
			if want := refSpreadFrom(graphs, r); spreads[r] != want {
				t.Fatalf("n=%d start %d: spread %d, want %d", tc.n, r, spreads[r], want)
			}
		}
	}
}

func TestDiameterTrackerRotatingStar(t *testing.T) {
	// The rotating star has per-round static diameter 2 but dynamic
	// diameter n-1 — the classic separation the tracker must reproduce.
	n := 9
	graphs := make([]*graph.Graph, 3*n)
	for r := range graphs {
		g := graph.New(n)
		center := (r + 1) % n
		for v := 0; v < n; v++ {
			if v != center {
				g.AddEdge(center, v)
			}
		}
		graphs[r] = g
	}
	tr := NewDiameterTracker(n)
	for _, g := range graphs {
		tr.Advance(g)
	}
	d, exact := tr.Result()
	wantD, wantExact := refDiameter(graphs)
	if d != wantD || exact != wantExact {
		t.Fatalf("rotating star: tracker (%d,%v), want (%d,%v)", d, exact, wantD, wantExact)
	}
	if d != n-1 {
		t.Fatalf("rotating star diameter %d, want %d", d, n-1)
	}
}

func TestDiameterTrackerEmpty(t *testing.T) {
	tr := NewDiameterTracker(5)
	if d, exact := tr.Result(); d != 0 || exact {
		t.Fatalf("empty tracker: (%d,%v), want (0,false)", d, exact)
	}
}
