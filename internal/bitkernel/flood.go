package bitkernel

import (
	"errors"
	"math/bits"

	"dyndiam/internal/graph"
)

// Topologies feeds a FloodEngine one topology per round. Round is called
// with r = 1, 2, ... in order and the informed set at the start of the
// round (read-only; every informed node is a sender this round, matching
// the model's commit-then-topology order). The returned graph must cover
// exactly the configured node count and is read-only until the next call;
// a non-nil error aborts the run. Implementations own validation such as
// connectivity checking — the kernel only consumes adjacency.
type Topologies interface {
	Round(r int, informed Bits) (*graph.Graph, error)
}

// TopologiesFunc adapts a function to Topologies.
type TopologiesFunc func(r int, informed Bits) (*graph.Graph, error)

// Round implements Topologies.
func (f TopologiesFunc) Round(r int, informed Bits) (*graph.Graph, error) { return f(r, informed) }

// FloodConfig parameterizes one FloodEngine run of a CFLOOD-style
// knowledge-set protocol: informed nodes send the token every round,
// uninformed nodes receive, and one hop of spread happens per round.
type FloodConfig struct {
	// N is the node count.
	N int
	// Source is the flood source; it must be in Seed.
	Source int
	// D is the source's diameter bound: the source confirms at the end
	// of the first executed round r >= D.
	D int
	// TokenBits is the payload size of the (constant) token message,
	// counted once per sender per round.
	TokenBits int
	// StopAll, when set, terminates when every node is informed and the
	// source has confirmed (the all-decided predicate). Otherwise the run
	// terminates when StopNode can output: at r >= D when StopNode is
	// the source, else when StopNode becomes informed.
	StopAll  bool
	StopNode int
	// Seed is the initially informed set (length WordsFor(N)); it is
	// read, not retained.
	Seed Bits
	// OnRound, when non-nil, observes each executed round's sender and
	// payload-bit totals (the engine layer's histogram hook). It fires in
	// the commitment phase, before the adversary fixes the topology, so
	// the observation sequence matches the message-passing engine's even
	// on runs aborted by a topology error.
	OnRound func(r, senders, bits int)
	// OnRoundDone, when non-nil, observes each completed round's full
	// aggregate after delivery and termination evaluation. Stats is
	// passed by value; the callback must not retain references into
	// engine state. This is the engine layer's round-aggregated event
	// hook (frontier samples, sampled round events).
	OnRoundDone func(stats RoundStats)
}

// RoundStats is one completed flood round's aggregate, handed by value to
// FloodConfig.OnRoundDone.
type RoundStats struct {
	// R is the 1-based round number.
	R int
	// Senders is the number of informed nodes at the start of the round
	// (each sent the token).
	Senders int
	// Bits is Senders * TokenBits.
	Bits int
	// Newly is the number of nodes first informed by this round's
	// delivery phase.
	Newly int
	// Informed is the total informed count after delivery.
	Informed int
	// Done reports whether the stop condition held at the end of the
	// round (this is the run's final round).
	Done bool
}

// FloodResult summarizes a FloodEngine run, mirroring the fields of the
// message-passing engine's Result that a flood run determines.
type FloodResult struct {
	// Rounds is the round at whose end the stop condition first held, or
	// the round cap if it never did.
	Rounds int
	// Done reports whether the stop condition held by the end.
	Done bool
	// Messages counts one message per informed node per executed round.
	Messages int
	// Bits counts TokenBits per message.
	Bits int
	// Informed is the final informed set. It aliases engine storage:
	// valid until the engine's next Run.
	Informed Bits
	// InformedCount is Informed.Popcount().
	InformedCount int
}

// errTopology is returned when a Topologies implementation hands back a
// graph over the wrong node count without flagging its own error.
var errTopology = errors.New("bitkernel: topology source returned a graph over the wrong node count")

// FloodEngine runs word-packed flood rounds. The zero value is ready;
// scratch buffers grow to the largest N seen and are reused across runs,
// so steady-state benchmarking reruns allocate nothing.
type FloodEngine struct {
	informed Bits
	newly    Bits
}

// Run executes up to maxRounds flood rounds over the streamed topologies
// and reports the outcome. Per round the work is: senders-side or
// receivers-side neighborhood scan (whichever frontier is smaller), one
// word-OR merge of the newly informed set, and O(N/64) bookkeeping — no
// per-message work and no allocations after the buffers are sized.
//
//lint:hotpath
//lint:pure
func (e *FloodEngine) Run(cfg FloodConfig, topo Topologies, maxRounds int) (FloodResult, error) {
	n := cfg.N
	w := WordsFor(n)
	if cap(e.informed) < w {
		e.informed = make(Bits, w) //lint:allow hotpathalloc capacity growth only; steady state reuses the buffer
		e.newly = make(Bits, w)    //lint:allow hotpathalloc capacity growth only; steady state reuses the buffer
	}
	informed := e.informed[:w]
	newly := e.newly[:w]
	informed.CopyFrom(cfg.Seed)
	count := informed.Popcount()

	res := FloodResult{Rounds: maxRounds}
	for r := 1; r <= maxRounds; r++ {
		// Phase 1: commitment. Every informed node sends the token;
		// every uninformed node receives.
		senders := count
		roundBits := senders * cfg.TokenBits
		res.Messages += senders
		res.Bits += roundBits
		if cfg.OnRound != nil {
			cfg.OnRound(r, senders, roundBits)
		}

		// Phase 2: the adversary fixes the topology knowing the actions
		// (the informed set is exactly the sender set).
		g, err := topo.Round(r, informed)
		if err != nil {
			return res, err
		}
		if g == nil || g.N() != n {
			return res, errTopology
		}

		// Phase 3: delivery. A receiver adjacent to any sender adopts
		// the token. Scan whichever frontier is smaller: the sender side
		// touches each informed node's neighborhood once; the receiver
		// side exits each uninformed node's scan at its first informed
		// neighbor.
		newlyCount := 0
		if count < n {
			newly.Zero()
			if 2*count <= n {
				for wi := 0; wi < w; wi++ {
					word := informed[wi]
					for word != 0 {
						u := wi<<6 + bits.TrailingZeros64(word)
						word &= word - 1
						for _, v := range g.Adj(u) {
							if !informed.Test(int(v)) {
								newly.Set(int(v))
							}
						}
					}
				}
			} else {
				for wi := 0; wi < w; wi++ {
					word := ^informed[wi]
					if wi == w-1 {
						word &= TailMask(n)
					}
					for word != 0 {
						v := wi<<6 + bits.TrailingZeros64(word)
						word &= word - 1
						for _, u := range g.Adj(v) {
							if informed.Test(int(u)) {
								newly.Set(v)
								break
							}
						}
					}
				}
			}
			if delta := newly.Popcount(); delta > 0 {
				informed.Or(newly)
				count += delta
				newlyCount = delta
			}
		}

		// Termination is evaluated at the end of the round, after
		// delivery, like the message-passing engine's predicate.
		var done bool
		switch {
		case cfg.StopAll:
			done = count == n && r >= cfg.D
		case cfg.StopNode == cfg.Source:
			done = r >= cfg.D
		default:
			done = informed.Test(cfg.StopNode)
		}
		if cfg.OnRoundDone != nil {
			cfg.OnRoundDone(RoundStats{
				R: r, Senders: senders, Bits: roundBits,
				Newly: newlyCount, Informed: count, Done: done,
			})
		}
		if done {
			res.Rounds = r
			res.Done = true
			break
		}
	}
	res.Informed = informed
	res.InformedCount = count
	return res, nil
}
