package bitkernel

import (
	"testing"

	"dyndiam/internal/graph"
	"dyndiam/internal/rng"
)

// refFlood simulates the flood with per-node booleans: informed nodes
// send, any receiver adjacent to a sender adopts, stop evaluated at end
// of round.
func refFlood(cfg FloodConfig, graphs []*graph.Graph, maxRounds int) FloodResult {
	n := cfg.N
	informed := make([]bool, n)
	for v := 0; v < n; v++ {
		informed[v] = cfg.Seed.Test(v)
	}
	res := FloodResult{Rounds: maxRounds}
	for r := 1; r <= maxRounds; r++ {
		senders := 0
		for _, b := range informed {
			if b {
				senders++
			}
		}
		res.Messages += senders
		res.Bits += senders * cfg.TokenBits
		g := graphs[r-1]
		next := make([]bool, n)
		copy(next, informed)
		for v := 0; v < n; v++ {
			if informed[v] {
				continue
			}
			for _, u := range g.Adj(v) {
				if informed[u] {
					next[v] = true
					break
				}
			}
		}
		informed = next
		count := 0
		for _, b := range informed {
			if b {
				count++
			}
		}
		var done bool
		switch {
		case cfg.StopAll:
			done = count == n && r >= cfg.D
		case cfg.StopNode == cfg.Source:
			done = r >= cfg.D
		default:
			done = informed[cfg.StopNode]
		}
		if done {
			res.Rounds = r
			res.Done = true
			break
		}
	}
	inf := New(n)
	for v, b := range informed {
		if b {
			inf.Set(v)
		}
	}
	res.Informed = inf
	res.InformedCount = inf.Popcount()
	return res
}

func traceTopologies(graphs []*graph.Graph) Topologies {
	return TopologiesFunc(func(r int, _ Bits) (*graph.Graph, error) {
		return graphs[r-1], nil
	})
}

func TestFloodEngineMatchesReference(t *testing.T) {
	src := rng.New(3)
	var e FloodEngine // shared across cases: exercises buffer reuse
	for _, n := range []int{1, 2, 5, 31, 64, 65, 200} {
		for trial := 0; trial < 6; trial++ {
			maxRounds := 3 * n
			graphs := make([]*graph.Graph, maxRounds)
			for r := range graphs {
				graphs[r] = graph.RandomConnected(n, trial%3, src.Split(uint64(n*100+trial), uint64(r)))
			}
			for _, mode := range []string{"source", "node", "all"} {
				cfg := FloodConfig{
					N: n, Source: 0, D: n - 1, TokenBits: 7,
					Seed: New(n),
				}
				cfg.Seed.Set(0)
				switch mode {
				case "source":
					cfg.StopNode = 0
				case "node":
					cfg.StopNode = n - 1
				case "all":
					cfg.StopAll = true
				}
				want := refFlood(cfg, graphs, maxRounds)
				got, err := e.Run(cfg, traceTopologies(graphs), maxRounds)
				if err != nil {
					t.Fatalf("n=%d %s: %v", n, mode, err)
				}
				if got.Rounds != want.Rounds || got.Done != want.Done ||
					got.Messages != want.Messages || got.Bits != want.Bits ||
					got.InformedCount != want.InformedCount {
					t.Fatalf("n=%d %s: got %+v, want %+v", n, mode, got, want)
				}
				for v := 0; v < n; v++ {
					if got.Informed.Test(v) != want.Informed.Test(v) {
						t.Fatalf("n=%d %s: informed[%d]=%v, want %v",
							n, mode, v, got.Informed.Test(v), want.Informed.Test(v))
					}
				}
			}
		}
	}
}

func TestFloodEngineOnRoundTotals(t *testing.T) {
	// On a line with source 0, round r has exactly r senders until
	// saturation; the hook must see each executed round once, in order.
	n := 6
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		g.AddEdge(v, v+1)
	}
	var rounds []int
	var senders []int
	cfg := FloodConfig{
		N: n, Source: 0, D: n - 1, TokenBits: 3, StopNode: n - 1,
		Seed: New(n),
		OnRound: func(r, s, b int) {
			rounds = append(rounds, r)
			senders = append(senders, s)
			if b != s*3 {
				panic("bit total mismatch")
			}
		},
	}
	cfg.Seed.Set(0)
	var e FloodEngine
	res, err := e.Run(cfg, TopologiesFunc(func(int, Bits) (*graph.Graph, error) { return g, nil }), 2*n)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Rounds != n-1 {
		t.Fatalf("line flood: %+v", res)
	}
	for i, r := range rounds {
		if r != i+1 || senders[i] != i+1 {
			t.Fatalf("round %d: hook saw (r=%d, senders=%d)", i+1, r, senders[i])
		}
	}
}

func TestFloodEngineTopologyValidation(t *testing.T) {
	cfg := FloodConfig{N: 4, Source: 0, D: 3, StopNode: 0, Seed: New(4)}
	cfg.Seed.Set(0)
	var e FloodEngine
	_, err := e.Run(cfg, TopologiesFunc(func(int, Bits) (*graph.Graph, error) {
		return graph.New(5), nil // wrong node count
	}), 3)
	if err == nil {
		t.Fatal("wrong-sized topology not rejected")
	}
}

func TestFloodEngineNeverDone(t *testing.T) {
	// Disconnected stop node (the model forbids it, but the kernel must
	// still cap at maxRounds): a graph with no edges.
	n := 4
	g := graph.New(n)
	cfg := FloodConfig{N: n, Source: 0, D: n - 1, StopNode: n - 1, Seed: New(n)}
	cfg.Seed.Set(0)
	var e FloodEngine
	res, err := e.Run(cfg, TopologiesFunc(func(int, Bits) (*graph.Graph, error) { return g, nil }), 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Done || res.Rounds != 10 || res.InformedCount != 1 {
		t.Fatalf("edgeless flood: %+v", res)
	}
}
