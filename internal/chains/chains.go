// Package chains implements the label algebra and edge-removal rules shared
// by the paper's type-Γ and type-Λ subnetworks (Sections 4 and 5).
//
// A chain is three nodes U (top), V (middle), W (bottom) with a top edge
// (U, V) and a bottom edge (V, W). The chain carries a top label and a
// bottom label from [0, q-1]; the paper writes |ᵃ_b for top label a and
// bottom label b. Under the cycle promise the only label pairs that occur
// are b = a±1, (0, 0), (a, a) with a even (type-Λ saturation ladder), and
// (q-1, q-1).
//
// Three adversaries manipulate a chain's two edges over time:
//
//	Reference — knows both labels (both x and y); implements the paper's
//	   rules 1-5. Rules 3 and 4 depend on whether the middle node receives
//	   in round t+1, which the adversary may inspect (coins precede
//	   topology within a round).
//	Alice — knows only top labels: removes the top edge of |²ᵗ_* chains at
//	   round t+1 and the bottom edge of |²ᵗ⁺¹_* chains at round t+2.
//	Bob — symmetric, from bottom labels.
//
// The same label algebra yields the spoiled-node schedule of the lower-bound
// proofs: for Alice, a |²ᵗ_* chain spoils V and W from round t+1 and a
// |²ᵗ⁺¹_* chain spoils W from round t+1 (and symmetrically for Bob from
// bottom labels). Package subnet composes these chains into the actual
// subnetworks.
package chains

import "fmt"

// Party identifies whose adversary (or whose spoiled-set) is being queried.
type Party int

const (
	// Reference is the real adversary, a function of both x and y.
	Reference Party = iota
	// Alice simulates an adversary from x (top labels) alone.
	Alice
	// Bob simulates an adversary from y (bottom labels) alone.
	Bob
)

// String implements fmt.Stringer.
func (p Party) String() string {
	switch p {
	case Reference:
		return "reference"
	case Alice:
		return "alice"
	case Bob:
		return "bob"
	}
	return fmt.Sprintf("party(%d)", int(p))
}

// Chain is one labeled 3-node chain.
type Chain struct {
	Top    int // label of U
	Bottom int // label of W
	Q      int // alphabet size (odd)
}

// Never is a round number beyond any simulation horizon, used for "edge is
// never removed / node is never spoiled" within the relevant window.
const Never = 1 << 30

// removalRounds returns the first round at whose beginning each edge is
// absent under the reference adversary, ignoring the middle-action
// dependence of rules 3 and 4: for those rules it returns the *latest*
// removal round t+2 and sets condTop/condBottom, meaning "also removed in
// round t+1 itself if the middle node sends in round t+1".
func (c Chain) removalRounds() (top, bottom int, condTop, condBottom bool) {
	a, b := c.Top, c.Bottom
	top, bottom = Never, Never
	switch {
	case a == b && a == c.Q-1:
		// |^(q-1)_(q-1): untouched (paper, end of Section 4).
	case a == b && a%2 == 0:
		// Rule 5 (type-Γ, a = 0) and rule 5' (type-Λ, a = 2t):
		// both edges removed at the beginning of round t+1.
		t := a / 2
		top, bottom = t+1, t+1
	case b == a-1 && a%2 == 0:
		// Rule 1: |^2t_(2t-1): top edge removed at round t+1.
		top = a/2 + 1
	case b == a+1 && a%2 == 1:
		// Rule 2: |^(2t-1)_2t: bottom edge removed at round t+1.
		bottom = (a+1)/2 + 1
	case b == a+1 && a%2 == 0:
		// Rule 3: |^2t_(2t+1): top edge removed at round t+2 if the
		// middle node receives in round t+1, else at round t+1.
		top = a/2 + 2
		condTop = true
	case b == a-1 && a%2 == 1:
		// Rule 4: |^(2t+1)_2t: bottom edge removed at round t+2 if
		// the middle node receives in round t+1, else at round t+1.
		bottom = (a-1)/2 + 2
		condBottom = true
	default:
		//lint:allow panicfree the cycle promise is established by the instance constructors; violating it is a construction bug
		panic(fmt.Sprintf("chains: label pair (%d, %d) violates the cycle promise", a, b))
	}
	return top, bottom, condTop, condBottom
}

// MidActionRound returns the round whose middle-node action rules 3/4
// consult, and whether the chain is governed by such a rule at all.
func (c Chain) MidActionRound() (round int, conditional bool) {
	top, bottom, condTop, condBottom := c.removalRounds()
	if condTop {
		return top - 1, true
	}
	if condBottom {
		return bottom - 1, true
	}
	_ = top
	_ = bottom
	return 0, false
}

// TopEdgePresent reports whether the chain's top edge exists in round r
// (r >= 0; round 0 is the initial topology) under the given party's
// adversary. midReceives tells whether the chain's middle node receives in
// the round that rules 3/4 consult (see MidActionRound); it is ignored by
// Alice's and Bob's adversaries and by unconditional rules.
func (c Chain) TopEdgePresent(p Party, r int, midReceives bool) bool {
	switch p {
	case Alice:
		// |^2t_*: top removed at round t+1. Odd-top chains keep it.
		if c.Top%2 == 0 {
			return r < c.Top/2+1
		}
		return true
	case Bob:
		// |^*_(2t+1): top removed at round t+2.
		if c.Bottom%2 == 1 {
			return r < (c.Bottom-1)/2+2
		}
		return true
	}
	top, _, condTop, _ := c.removalRounds()
	if top == Never {
		return true
	}
	if condTop {
		if r >= top { // t+2 and later: removed regardless
			return false
		}
		if r == top-1 { // round t+1: removed only if mid sends
			return midReceives
		}
		return true
	}
	return r < top
}

// BottomEdgePresent is the bottom-edge analog of TopEdgePresent.
func (c Chain) BottomEdgePresent(p Party, r int, midReceives bool) bool {
	switch p {
	case Alice:
		// |^(2t+1)_*: bottom removed at round t+2.
		if c.Top%2 == 1 {
			return r < (c.Top-1)/2+2
		}
		return true
	case Bob:
		// |^*_2t: bottom removed at round t+1.
		if c.Bottom%2 == 0 {
			return r < c.Bottom/2+1
		}
		return true
	}
	_, bottom, _, condBottom := c.removalRounds()
	if bottom == Never {
		return true
	}
	if condBottom {
		if r >= bottom {
			return false
		}
		if r == bottom-1 {
			return midReceives
		}
		return true
	}
	return r < bottom
}

// SpoiledFrom returns the first round from whose beginning each of the
// chain's three nodes is spoiled for the given party (Never if the node
// stays non-spoiled within any horizon). The special nodes A and B are
// handled by package subnet, not here.
//
// For Alice (Section 4): |^2t_* spoils V and W from round t+1; |^(2t+1)_*
// spoils W from round t+1. For Bob, symmetrically from bottom labels:
// |^*_2t spoils V and U from round t+1; |^*_(2t+1) spoils U from round t+1.
func (c Chain) SpoiledFrom(p Party) (u, v, w int) {
	u, v, w = Never, Never, Never
	switch p {
	case Alice:
		if c.Top%2 == 0 {
			v = c.Top/2 + 1
			w = c.Top/2 + 1
		} else {
			w = (c.Top-1)/2 + 1
		}
	case Bob:
		if c.Bottom%2 == 0 {
			v = c.Bottom/2 + 1
			u = c.Bottom/2 + 1
		} else {
			u = (c.Bottom-1)/2 + 1
		}
	case Reference:
		// The reference execution is fully known; no node is spoiled.
	}
	return u, v, w
}

// IsZeroZero reports whether this is a |⁰₀ chain (a DISJOINTNESSCP witness).
func (c Chain) IsZeroZero() bool { return c.Top == 0 && c.Bottom == 0 }

// String renders the paper's |ᵃ_b notation.
func (c Chain) String() string { return fmt.Sprintf("|%d_%d", c.Top, c.Bottom) }
