package chains

import (
	"testing"
	"testing/quick"
)

// present is a helper tuple for schedule assertions.
type present struct {
	top, bottom bool
}

func edgesAt(c Chain, p Party, r int, midReceives bool) present {
	return present{
		top:    c.TopEdgePresent(p, r, midReceives),
		bottom: c.BottomEdgePresent(p, r, midReceives),
	}
}

func TestRule1Schedule(t *testing.T) {
	// |^2t_(2t-1): reference removes the top edge at round t+1.
	c := Chain{Top: 4, Bottom: 3, Q: 9} // t = 2
	for r := 0; r <= 2; r++ {
		if got := edgesAt(c, Reference, r, true); got != (present{true, true}) {
			t.Errorf("round %d: %+v, want both present", r, got)
		}
	}
	for r := 3; r <= 6; r++ {
		if got := edgesAt(c, Reference, r, true); got != (present{false, true}) {
			t.Errorf("round %d: %+v, want top removed", r, got)
		}
	}
}

func TestRule2Schedule(t *testing.T) {
	// |^(2t-1)_2t: reference removes the bottom edge at round t+1.
	c := Chain{Top: 3, Bottom: 4, Q: 9} // t = 2
	for r := 0; r <= 2; r++ {
		if got := edgesAt(c, Reference, r, true); got != (present{true, true}) {
			t.Errorf("round %d: %+v, want both present", r, got)
		}
	}
	if got := edgesAt(c, Reference, 3, true); got != (present{true, false}) {
		t.Errorf("round 3: %+v, want bottom removed", got)
	}
}

func TestRule3ConditionalOnMiddleAction(t *testing.T) {
	// |^2t_(2t+1): top edge removed at round t+2 if the middle receives
	// in round t+1, else at round t+1.
	c := Chain{Top: 4, Bottom: 5, Q: 9} // t = 2
	round, cond := c.MidActionRound()
	if !cond || round != 3 {
		t.Fatalf("MidActionRound = %d, %v; want 3, true", round, cond)
	}
	// Middle receiving in round 3: edge still present in round 3, gone in 4.
	if !c.TopEdgePresent(Reference, 3, true) {
		t.Error("mid receiving: top edge should survive round t+1")
	}
	if c.TopEdgePresent(Reference, 4, true) {
		t.Error("top edge should be gone by round t+2")
	}
	// Middle sending in round 3: edge removed already in round 3.
	if c.TopEdgePresent(Reference, 3, false) {
		t.Error("mid sending: top edge should be removed in round t+1")
	}
	// Bottom edge untouched either way.
	for r := 0; r <= 6; r++ {
		if !c.BottomEdgePresent(Reference, r, false) {
			t.Errorf("round %d: bottom edge should never be removed", r)
		}
	}
}

func TestRule4ConditionalOnMiddleAction(t *testing.T) {
	// |^(2t+1)_2t: bottom edge removed at round t+2 / t+1 by middle action.
	c := Chain{Top: 5, Bottom: 4, Q: 9} // t = 2
	round, cond := c.MidActionRound()
	if !cond || round != 3 {
		t.Fatalf("MidActionRound = %d, %v; want 3, true", round, cond)
	}
	if !c.BottomEdgePresent(Reference, 3, true) {
		t.Error("mid receiving: bottom edge should survive round t+1")
	}
	if c.BottomEdgePresent(Reference, 4, true) {
		t.Error("bottom edge should be gone by round t+2")
	}
	if c.BottomEdgePresent(Reference, 3, false) {
		t.Error("mid sending: bottom edge should be removed in round t+1")
	}
}

func TestRule5ZeroZero(t *testing.T) {
	// |⁰₀: both edges removed at the beginning of round 1.
	c := Chain{Top: 0, Bottom: 0, Q: 5}
	if !c.IsZeroZero() {
		t.Fatal("IsZeroZero = false")
	}
	if got := edgesAt(c, Reference, 0, true); got != (present{true, true}) {
		t.Errorf("round 0: %+v, want both present", got)
	}
	if got := edgesAt(c, Reference, 1, true); got != (present{false, false}) {
		t.Errorf("round 1: %+v, want both removed", got)
	}
}

func TestRule5PrimeLambdaCascade(t *testing.T) {
	// Type-Λ |^2t_2t chains: both edges removed at round t+1 — the
	// cascading schedule of Figure 2 (q = 7, x_i = y_i = 0 gives chains
	// labeled (0,0), (2,2), (4,4), (6,6)).
	q := 7
	for j, wantRemoval := range map[int]int{0: 1, 2: 2, 4: 3} {
		c := Chain{Top: j, Bottom: j, Q: q}
		if c.TopEdgePresent(Reference, wantRemoval, true) ||
			c.BottomEdgePresent(Reference, wantRemoval, true) {
			t.Errorf("|%d_%d: edges present at round %d, want removed", j, j, wantRemoval)
		}
		if !c.TopEdgePresent(Reference, wantRemoval-1, true) ||
			!c.BottomEdgePresent(Reference, wantRemoval-1, true) {
			t.Errorf("|%d_%d: edges missing at round %d, want present", j, j, wantRemoval-1)
		}
	}
	// |^(q-1)_(q-1) is never manipulated.
	last := Chain{Top: q - 1, Bottom: q - 1, Q: q}
	for r := 0; r < 20; r++ {
		if got := edgesAt(last, Reference, r, false); got != (present{true, true}) {
			t.Fatalf("|^(q-1)_(q-1) manipulated at round %d", r)
		}
	}
}

func TestAliceAdversarySchedule(t *testing.T) {
	// Alice sees only top labels: |^2t_* loses its top edge at t+1,
	// |^(2t+1)_* loses its bottom edge at t+2.
	even := Chain{Top: 4, Bottom: 3, Q: 9}
	if !even.TopEdgePresent(Alice, 2, false) || even.TopEdgePresent(Alice, 3, false) {
		t.Error("Alice: |^4_* top edge should be removed exactly at round 3")
	}
	if !even.BottomEdgePresent(Alice, 100, false) {
		t.Error("Alice: even-top chain bottom edge must never be removed by Alice")
	}
	odd := Chain{Top: 5, Bottom: 4, Q: 9}
	if !odd.BottomEdgePresent(Alice, 3, false) || odd.BottomEdgePresent(Alice, 4, false) {
		t.Error("Alice: |^5_* bottom edge should be removed exactly at round 4")
	}
	if !odd.TopEdgePresent(Alice, 100, false) {
		t.Error("Alice: odd-top chain top edge must never be removed by Alice")
	}
}

func TestBobAdversarySchedule(t *testing.T) {
	even := Chain{Top: 3, Bottom: 4, Q: 9}
	if !even.BottomEdgePresent(Bob, 2, false) || even.BottomEdgePresent(Bob, 3, false) {
		t.Error("Bob: |^*_4 bottom edge should be removed exactly at round 3")
	}
	odd := Chain{Top: 4, Bottom: 5, Q: 9}
	if !odd.TopEdgePresent(Bob, 3, false) || odd.TopEdgePresent(Bob, 4, false) {
		t.Error("Bob: |^*_5 top edge should be removed exactly at round 4")
	}
}

func TestAliceUntouchedNearQ(t *testing.T) {
	// "Alice's adversary will not have removed any edges from |^(q-1)_*
	// and |^(q-2)_* chains by the end of the simulation" (round (q-1)/2).
	q := 9
	horizon := (q - 1) / 2
	for _, top := range []int{q - 1, q - 2} {
		bottom := top - 1
		if top == q-1 {
			bottom = q - 1
		}
		c := Chain{Top: top, Bottom: bottom, Q: q}
		for r := 0; r <= horizon; r++ {
			if !c.TopEdgePresent(Alice, r, false) || !c.BottomEdgePresent(Alice, r, false) {
				t.Errorf("Alice removed an edge of |^%d chain at round %d <= horizon", top, r)
			}
		}
	}
}

// TestSpoiledMatchesLemma3 checks the spoiled schedules against the explicit
// case enumeration in the proof of Lemma 3.
func TestSpoiledMatchesLemma3(t *testing.T) {
	q := 9
	tt := 2 // generic t
	cases := []struct {
		name    string
		c       Chain
		party   Party
		u, v, w int // first spoiled round (Never = never within horizon)
	}{
		// |^2t_(2t+1): for Alice, U always non-spoiled; V, W non-spoiled iff r <= t.
		{"rule3-alice", Chain{Top: 2 * tt, Bottom: 2*tt + 1, Q: q}, Alice, Never, tt + 1, tt + 1},
		// |^2t_(2t-1): same shape for Alice.
		{"rule1-alice", Chain{Top: 2 * tt, Bottom: 2*tt - 1, Q: q}, Alice, Never, tt + 1, tt + 1},
		// |^(2t+1)_2t: U, V always non-spoiled; W non-spoiled iff r <= t.
		{"rule4-alice", Chain{Top: 2*tt + 1, Bottom: 2 * tt, Q: q}, Alice, Never, Never, tt + 1},
		// |^(2t-1)_2t: U, V always non-spoiled; W non-spoiled iff r <= t-1.
		{"rule2-alice", Chain{Top: 2*tt - 1, Bottom: 2 * tt, Q: q}, Alice, Never, Never, tt},
		// |^(q-1)_(q-1): all non-spoiled through round (q-1)/2.
		{"last-alice", Chain{Top: q - 1, Bottom: q - 1, Q: q}, Alice, Never, (q-1)/2 + 1, (q-1)/2 + 1},
		// |⁰₀: only U stays non-spoiled for r >= 1.
		{"zero-alice", Chain{Top: 0, Bottom: 0, Q: q}, Alice, Never, 1, 1},
		// Bob mirrors with bottom labels.
		{"rule3-bob", Chain{Top: 2 * tt, Bottom: 2*tt + 1, Q: q}, Bob, tt + 1, Never, Never},
		{"rule1-bob", Chain{Top: 2 * tt, Bottom: 2*tt - 1, Q: q}, Bob, tt, Never, Never},
		{"rule4-bob", Chain{Top: 2*tt + 1, Bottom: 2 * tt, Q: q}, Bob, tt + 1, tt + 1, Never},
		{"zero-bob", Chain{Top: 0, Bottom: 0, Q: q}, Bob, 1, 1, Never},
		// Reference: nothing is ever spoiled.
		{"ref", Chain{Top: 2 * tt, Bottom: 2*tt + 1, Q: q}, Reference, Never, Never, Never},
	}
	for _, c := range cases {
		u, v, w := c.c.SpoiledFrom(c.party)
		if u != c.u || v != c.v || w != c.w {
			t.Errorf("%s %s: SpoiledFrom(%s) = (%d, %d, %d), want (%d, %d, %d)",
				c.name, c.c, c.party, u, v, w, c.u, c.v, c.w)
		}
	}
}

// TestDivergentEdgesTouchOnlySpoiledSide is the chain-local core of
// Lemma 3: whenever Alice's adversary disagrees with the reference
// adversary about an edge of a chain in some round r <= (q-1)/2, every
// endpoint of that edge that could *send* to a non-spoiled node is itself
// spoiled for Alice in round r-1 — equivalently, the edge's lower endpoint
// regions are spoiled. We check the stronger structural property that the
// middle node V is spoiled for Alice from round r on whenever the top edge
// status diverges, and W is spoiled whenever the bottom edge diverges.
func TestDivergentEdgesTouchOnlySpoiledSide(t *testing.T) {
	f := func(aRaw, deltaRaw, qRaw uint8, midReceives bool) bool {
		q := 2*int(qRaw%8) + 5
		a := int(aRaw) % q
		// Generate a promise pair.
		var b int
		switch deltaRaw % 4 {
		case 0:
			b = a - 1
		case 1:
			b = a + 1
		case 2:
			a, b = 0, 0
		default:
			a, b = q-1, q-1
		}
		if b < 0 || b >= q {
			return true // not a promise pair; skip
		}
		if a == b && a != 0 && a != q-1 && a%2 == 1 {
			return true
		}
		c := Chain{Top: a, Bottom: b, Q: q}
		_, vSpoil, wSpoil := c.SpoiledFrom(Alice)
		horizon := (q - 1) / 2
		for r := 1; r <= horizon; r++ {
			refTop := c.TopEdgePresent(Reference, r, midReceives)
			aliTop := c.TopEdgePresent(Alice, r, midReceives)
			if refTop != aliTop && r < vSpoil {
				// Divergent top edge while V still non-spoiled:
				// only allowed in the conditional round of rule 3
				// where the reference keeps the edge one round
				// longer and the extra neighbor (V) is receiving.
				if !(midReceives && !aliTop && refTop) {
					return false
				}
			}
			refBot := c.BottomEdgePresent(Reference, r, midReceives)
			aliBot := c.BottomEdgePresent(Alice, r, midReceives)
			if refBot != aliBot && r < wSpoil {
				if !(midReceives && !aliBot && refBot) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestInvalidLabelPairPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for promise-violating labels")
		}
	}()
	Chain{Top: 0, Bottom: 3, Q: 9}.TopEdgePresent(Reference, 1, false)
}

func TestRoundZeroAllPresent(t *testing.T) {
	// Round 0 is the initial topology: no adversary has removed anything.
	pairs := [][2]int{{0, 0}, {0, 1}, {1, 0}, {3, 4}, {4, 3}, {8, 8}, {2, 2}}
	for _, pr := range pairs {
		c := Chain{Top: pr[0], Bottom: pr[1], Q: 9}
		for _, p := range []Party{Reference, Alice, Bob} {
			if !c.TopEdgePresent(p, 0, false) || !c.BottomEdgePresent(p, 0, false) {
				t.Errorf("%s under %s: edge missing at round 0", c, p)
			}
		}
	}
}
