package chains

import (
	"testing"
	"testing/quick"
)

// promisePair derives a cycle-promise label pair from fuzz bytes, or
// ok=false when the draw is invalid.
func promisePair(aRaw, deltaRaw, qRaw uint8) (a, b, q int, ok bool) {
	q = 2*int(qRaw%8) + 5
	a = int(aRaw) % q
	switch deltaRaw % 4 {
	case 0:
		b = a - 1
	case 1:
		b = a + 1
	case 2:
		a, b = 0, 0
	default:
		a, b = q-1, q-1
	}
	if b < 0 || b >= q {
		return 0, 0, 0, false
	}
	return a, b, q, true
}

// TestRemovalMonotone: once an edge is absent it never reappears, for every
// party and both middle-action schedules.
func TestRemovalMonotone(t *testing.T) {
	f := func(aRaw, deltaRaw, qRaw uint8, midReceives bool) bool {
		a, b, q, ok := promisePair(aRaw, deltaRaw, qRaw)
		if !ok {
			return true
		}
		c := Chain{Top: a, Bottom: b, Q: q}
		for _, p := range []Party{Reference, Alice, Bob} {
			topWas, botWas := true, true
			for r := 0; r <= 2*q; r++ {
				top := c.TopEdgePresent(p, r, midReceives)
				bot := c.BottomEdgePresent(p, r, midReceives)
				if top && !topWas {
					return false
				}
				if bot && !botWas {
					return false
				}
				topWas, botWas = top, bot
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestUnconditionalRulesAgree: for chains governed by rules 1 and 2 (no
// middle-action dependence), all three adversaries remove the same edge at
// the same round — the divergences of the construction are confined to
// rules 3/4 and the equal-label rules.
func TestUnconditionalRulesAgree(t *testing.T) {
	q := 13
	for tt := 1; tt <= (q-1)/2; tt++ {
		// Rule 1: |^2t_(2t-1); rule 2: |^(2t-1)_2t.
		for _, c := range []Chain{
			{Top: 2 * tt, Bottom: 2*tt - 1, Q: q},
			{Top: 2*tt - 1, Bottom: 2 * tt, Q: q},
		} {
			for r := 0; r <= q; r++ {
				rt := c.TopEdgePresent(Reference, r, true)
				rb := c.BottomEdgePresent(Reference, r, true)
				for _, p := range []Party{Alice, Bob} {
					if c.TopEdgePresent(p, r, true) != rt ||
						c.BottomEdgePresent(p, r, true) != rb {
						t.Fatalf("%s: party %v diverges at round %d", c, p, r)
					}
				}
			}
		}
	}
}

// TestSpoiledCoversDivergence: whichever round a party's schedule first
// diverges from the reference (under either middle action), the adjacent
// middle/bottom (for Alice) or middle/top (for Bob) node is already spoiled
// at that round — no divergence is ever visible at a non-spoiled receiver.
func TestSpoiledCoversDivergence(t *testing.T) {
	f := func(aRaw, deltaRaw, qRaw uint8, midReceives bool) bool {
		a, b, q, ok := promisePair(aRaw, deltaRaw, qRaw)
		if !ok {
			return true
		}
		c := Chain{Top: a, Bottom: b, Q: q}
		horizon := (q - 1) / 2
		for _, p := range []Party{Alice, Bob} {
			u, v, w := c.SpoiledFrom(p)
			for r := 1; r <= horizon; r++ {
				topDiv := c.TopEdgePresent(Reference, r, midReceives) != c.TopEdgePresent(p, r, midReceives)
				botDiv := c.BottomEdgePresent(Reference, r, midReceives) != c.BottomEdgePresent(p, r, midReceives)
				if p == Alice {
					// Alice's divergences must touch only spoiled V/W,
					// unless covered by the receiving-middle exception
					// of rules 3/4 (the divergent endpoint receives).
					if topDiv && r < v && !midReceives {
						return false
					}
					if botDiv && r < w && !midReceives {
						return false
					}
				} else {
					if topDiv && r < u && !midReceives {
						return false
					}
					if botDiv && r < v && !midReceives {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestMidActionRoundOnlyForRules34 verifies that exactly the rule-3/4 chain
// forms are conditional.
func TestMidActionRoundOnlyForRules34(t *testing.T) {
	q := 11
	conditional := func(top, bottom int) bool {
		_, cond := Chain{Top: top, Bottom: bottom, Q: q}.MidActionRound()
		return cond
	}
	if !conditional(4, 5) { // rule 3
		t.Error("|⁴₅ should be conditional")
	}
	if !conditional(5, 4) { // rule 4
		t.Error("|⁵₄ should be conditional")
	}
	for _, pair := range [][2]int{{4, 3}, {3, 4}, {0, 0}, {2, 2}, {q - 1, q - 1}} {
		if conditional(pair[0], pair[1]) {
			t.Errorf("|%d_%d should be unconditional", pair[0], pair[1])
		}
	}
}

// TestHorizonSafety: within the simulation horizon (q-1)/2, the |^(q-1) and
// |^(q-2) chains keep all edges under every adversary (the property the
// simulation's bridge stability relies on).
func TestHorizonSafety(t *testing.T) {
	for _, q := range []int{5, 9, 13, 21} {
		horizon := (q - 1) / 2
		for _, c := range []Chain{
			{Top: q - 1, Bottom: q - 1, Q: q},
			{Top: q - 1, Bottom: q - 2, Q: q},
			{Top: q - 2, Bottom: q - 1, Q: q},
		} {
			for _, p := range []Party{Reference, Alice, Bob} {
				for r := 0; r <= horizon; r++ {
					if !c.TopEdgePresent(p, r, true) || !c.BottomEdgePresent(p, r, true) {
						t.Errorf("q=%d %s party %v: edge missing at round %d <= horizon", q, c, p, r)
					}
				}
			}
		}
	}
}
