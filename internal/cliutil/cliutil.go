// Package cliutil holds the small flag-plumbing helpers the cmd/
// binaries share: comma-separated list parsing (cmd/chaos rates and
// dims, cmd/dynserve sizes) and atomic JSON state files (the
// checkpoint/resume plumbing of cmd/chaos, cmd/report, and
// cmd/dynserve). Every writer goes through WriteFileAtomic so an
// interrupted run never leaves a truncated checkpoint behind.
package cliutil

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// SplitList splits a comma-separated flag value into trimmed non-empty
// items. An empty or all-blank input yields a nil slice.
func SplitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// ParseFloats parses a comma-separated list of float64s. Blank items are
// skipped; an empty input yields a nil slice and no error.
func ParseFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range SplitList(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseInts parses a comma-separated list of ints. Blank items are
// skipped; an empty input yields a nil slice and no error.
func ParseInts(s string) ([]int, error) {
	var out []int
	for _, p := range SplitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// WriteFileAtomic writes data to path via a same-directory temp file and
// rename, so readers never observe a partially written file and an
// interrupted writer never corrupts an existing one.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, perm); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// SaveJSON atomically writes v as indented JSON with a trailing newline —
// the checkpoint-file format shared by cmd/chaos, cmd/report, and
// cmd/dynserve.
func SaveJSON(path string, v interface{}) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, append(data, '\n'), 0o644)
}

// LoadJSON reads a JSON state file into v. A missing file reports
// found=false with no error (a fresh run); a present-but-corrupt file is
// an error, so an interrupted grid fails loudly instead of silently
// restarting from scratch.
func LoadJSON(path string, v interface{}) (found bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return false, fmt.Errorf("corrupt state file %s: %v", path, err)
	}
	return true, nil
}
