package cliutil

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestSplitList(t *testing.T) {
	t.Parallel()
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{" , ", nil},
		{"a", []string{"a"}},
		{"a, b ,c", []string{"a", "b", "c"}},
		{"a,,b,", []string{"a", "b"}},
	}
	for _, c := range cases {
		if got := SplitList(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitList(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseFloats(t *testing.T) {
	t.Parallel()
	cases := []struct {
		in      string
		want    []float64
		wantErr bool
	}{
		{"", nil, false},
		{"0", []float64{0}, false},
		{" 0, 0.05 ,0.2 ", []float64{0, 0.05, 0.2}, false},
		{"0.1,zebra", nil, true},
	}
	for _, c := range cases {
		got, err := ParseFloats(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseFloats(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if !c.wantErr && !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseFloats(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseInts(t *testing.T) {
	t.Parallel()
	cases := []struct {
		in      string
		want    []int
		wantErr bool
	}{
		{"", nil, false},
		{"16", []int{16}, false},
		{" 16, 32 ,64 ", []int{16, 32, 64}, false},
		{"16,3.5", nil, true},
		{"16,x", nil, true},
	}
	for _, c := range cases {
		got, err := ParseInts(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseInts(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if !c.wantErr && !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseInts(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestWriteFileAtomic(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "state.json")
	if err := WriteFileAtomic(path, []byte("one"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("two"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "two" {
		t.Errorf("content = %q, want %q", data, "two")
	}
	// No temp file is left behind after a successful write.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp file left behind (stat err = %v)", err)
	}
}

func TestSaveLoadJSONRoundtrip(t *testing.T) {
	t.Parallel()
	type state struct {
		Done []string       `json:"done"`
		Rows map[string]int `json:"rows"`
	}
	path := filepath.Join(t.TempDir(), "ckpt.json")
	in := state{Done: []string{"a", "b"}, Rows: map[string]int{"x": 1}}
	if err := SaveJSON(path, in); err != nil {
		t.Fatal(err)
	}
	var out state
	found, err := LoadJSON(path, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("existing file reported as missing")
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("roundtrip:\ngot  %+v\nwant %+v", out, in)
	}
	// The file ends with a newline (friendly to diff/cat).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[len(data)-1] != '\n' {
		t.Error("saved JSON does not end with a newline")
	}
}

func TestLoadJSONMissingAndCorrupt(t *testing.T) {
	t.Parallel()
	var v struct{}
	found, err := LoadJSON(filepath.Join(t.TempDir(), "missing.json"), &v)
	if err != nil {
		t.Fatalf("missing file: %v", err)
	}
	if found {
		t.Error("missing file reported as found")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadJSON(bad, &v); err == nil {
		t.Error("corrupt file loaded without error")
	}
}
