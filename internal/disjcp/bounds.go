package disjcp

import (
	"math"

	"dyndiam/internal/bitio"
)

// TrivialBits returns the communication cost of the trivial two-party
// protocol — Alice ships her whole input and Bob answers: n·⌈lg q⌉ + 1
// bits. Every sound reduction-based bound lives between this ceiling and
// the Theorem 1 floor.
func TrivialBits(n, q int) int {
	return n*bitio.WidthFor(q) + 1
}

// LowerBoundBits evaluates the Theorem 1 floor Ω(n/q²) − O(log n) with
// unit constants: max(0, n/q² − lg n). It is the quantity the reduction's
// O(s·log N) budget is compared against to extract the time lower bound
// s = Ω(n / (q²·log N)).
func LowerBoundBits(n, q int) float64 {
	v := float64(n)/float64(q*q) - math.Log2(float64(n))
	if v < 0 {
		return 0
	}
	return v
}

// TimeLowerBoundFloodingRounds evaluates the Theorem 6 conclusion for a
// network of size N: s = (N/lg N)^(1/4), the flooding-round floor for
// unknown-diameter CFLOOD/CONSENSUS/LEADERELECT.
func TimeLowerBoundFloodingRounds(bigN int) float64 {
	n := float64(bigN)
	if n < 2 {
		return 0
	}
	return math.Pow(n/math.Log2(n), 0.25)
}

// Solve runs the trivial protocol literally: Alice encodes x on a wire,
// Bob decodes and evaluates. It returns the answer and the exact bits
// exchanged, for harness comparisons against the reduction's bit counts.
func (in Instance) Solve() (answer, bits int) {
	var w bitio.Writer
	width := bitio.WidthFor(in.Q)
	for _, x := range in.X {
		w.WriteUint(uint64(x), width)
	}
	// Bob's side: decode and evaluate against y.
	rd := bitio.NewReader(w.Bytes(), w.Len())
	answer = 1
	for i := 0; i < in.N; i++ {
		x, err := rd.ReadUint(width)
		if err != nil {
			return -1, 0
		}
		if x == 0 && in.Y[i] == 0 {
			answer = 0
		}
	}
	// Bob returns the 1-bit answer to Alice.
	return answer, w.Len() + 1
}
