package disjcp

import (
	"testing"
	"testing/quick"

	"dyndiam/internal/rng"
)

func TestTrivialBits(t *testing.T) {
	if got := TrivialBits(100, 5); got != 100*3+1 {
		t.Errorf("TrivialBits(100, 5) = %d, want 301", got)
	}
}

func TestLowerBoundBits(t *testing.T) {
	if LowerBoundBits(10, 101) != 0 {
		t.Error("tiny n/q² should clamp to 0")
	}
	big := LowerBoundBits(1<<20, 3)
	if big <= 0 {
		t.Error("large n small q should be positive")
	}
	// Monotone in n, antitone in q.
	if LowerBoundBits(1<<20, 3) <= LowerBoundBits(1<<16, 3) {
		t.Error("not monotone in n")
	}
	if LowerBoundBits(1<<20, 3) <= LowerBoundBits(1<<20, 9) {
		t.Error("not antitone in q")
	}
}

func TestTimeLowerBoundFloodingRounds(t *testing.T) {
	if TimeLowerBoundFloodingRounds(1) != 0 {
		t.Error("degenerate N")
	}
	if TimeLowerBoundFloodingRounds(1<<20) <= TimeLowerBoundFloodingRounds(1<<10) {
		t.Error("curve must grow with N")
	}
}

func TestSolveMatchesEval(t *testing.T) {
	f := func(seed uint64, nRaw, qRaw uint8) bool {
		n := int(nRaw%40) + 1
		q := 2*int(qRaw%8) + 3
		in := Random(n, q, rng.New(seed))
		ans, bits := in.Solve()
		return ans == in.Eval() && bits == TrivialBits(n, q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSolveSandwich(t *testing.T) {
	// The trivial cost sits above the Theorem 1 floor for all sane
	// parameters (with unit constants).
	for _, n := range []int{16, 256, 4096} {
		for _, q := range []int{3, 9, 33} {
			if float64(TrivialBits(n, q)) < LowerBoundBits(n, q) {
				t.Errorf("n=%d q=%d: trivial %d below floor %.1f",
					n, q, TrivialBits(n, q), LowerBoundBits(n, q))
			}
		}
	}
}
