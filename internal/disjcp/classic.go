package disjcp

import "dyndiam/internal/rng"

// Classic two-party set DISJOINTNESS, the ancestor of DISJOINTNESSCP: Alice
// and Bob hold n-bit strings a and b; the answer is 0 if some index has
// a_i = b_i = 1 (their sets intersect) and 1 otherwise. Kuhn and Oshman's
// directed-static-network lower bound [16] — the closest prior result the
// paper compares against — reduces from this problem; the paper's own
// reductions need DISJOINTNESSCP's cycle promise instead (Section 1
// explains why: the undirected dynamic setting would otherwise leak one
// party's input to the other). It is included here as the comparison
// baseline and for the documentation trail from [16] to this paper.
type Classic struct {
	N    int
	A, B []bool
}

// Eval returns 1 if the sets are disjoint, 0 otherwise — aligned with the
// DISJOINTNESSCP convention (0 = witness exists).
func (c Classic) Eval() int {
	for i := 0; i < c.N && i < len(c.A) && i < len(c.B); i++ {
		if c.A[i] && c.B[i] {
			return 0
		}
	}
	return 1
}

// RandomClassic draws an instance with each element in each set
// independently with probability p.
func RandomClassic(n int, p float64, src *rng.Source) Classic {
	c := Classic{N: n, A: make([]bool, n), B: make([]bool, n)}
	for i := 0; i < n; i++ {
		c.A[i] = src.Prob(p)
		c.B[i] = src.Prob(p)
	}
	return c
}

// ToCP embeds a classic instance into DISJOINTNESSCP_{n,3}: at q = 3 the
// cycle promise pairs are (0,1), (1,0), (1,2), (2,1), (0,0), (2,2), and
// the embedding a_i=b_i=1 → (0,0), else a_i=1 → (0,1), b_i=1 → (1,0),
// neither → (2,2) preserves the answer. This is the q = 3 degeneration the
// DISJOINTNESSCP literature notes: the cycle promise at minimum q recovers
// (a promise variant of) classic disjointness.
func (c Classic) ToCP() Instance {
	in := Instance{N: c.N, Q: 3, X: make([]int, c.N), Y: make([]int, c.N)}
	for i := 0; i < c.N; i++ {
		switch {
		case c.A[i] && c.B[i]:
			in.X[i], in.Y[i] = 0, 0
		case c.A[i]:
			in.X[i], in.Y[i] = 0, 1
		case c.B[i]:
			in.X[i], in.Y[i] = 1, 0
		default:
			in.X[i], in.Y[i] = 2, 2
		}
	}
	return in
}
