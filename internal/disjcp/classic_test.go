package disjcp

import (
	"testing"
	"testing/quick"

	"dyndiam/internal/rng"
)

func TestClassicEval(t *testing.T) {
	c := Classic{N: 3, A: []bool{true, false, true}, B: []bool{false, true, true}}
	if c.Eval() != 0 {
		t.Error("intersecting sets evaluated disjoint")
	}
	d := Classic{N: 3, A: []bool{true, false, false}, B: []bool{false, true, false}}
	if d.Eval() != 1 {
		t.Error("disjoint sets evaluated intersecting")
	}
}

func TestClassicToCPPreservesAnswer(t *testing.T) {
	f := func(seed uint64, nRaw uint8, pRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := float64(pRaw%100) / 100
		c := RandomClassic(n, p, rng.New(seed))
		cp := c.ToCP()
		if cp.Validate() != nil {
			return false
		}
		return cp.Eval() == c.Eval()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClassicEmbeddingDrivesConstruction(t *testing.T) {
	// The embedded q=3 instance plugs straight into the Theorem 6
	// composition (a sanity check that the minimum alphabet works).
	c := RandomClassic(4, 0.4, rng.New(9))
	cp := c.ToCP()
	if err := cp.Validate(); err != nil {
		t.Fatal(err)
	}
	// q = 3 gives (q-1)/2 = 1 chain per Γ group and 2 chains per
	// centipede; the node count formula still holds.
	// (The composition itself is exercised in package subnet.)
	if cp.Q != 3 || cp.N != 4 {
		t.Fatalf("embedding shape: %+v", cp)
	}
}
