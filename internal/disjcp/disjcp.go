// Package disjcp implements the two-party DISJOINTNESSCP_{n,q} communication
// problem (Chen, Yu, Zhao, Gibbons, JACM 2014), the source of hardness for
// all lower bounds in the paper.
//
// Alice holds x and Bob holds y, each a string of n characters over the
// alphabet [0, q-1] with q odd, q >= 3. The answer is 0 if some index i has
// x_i = y_i = 0, and 1 otherwise. Inputs must satisfy the cycle promise:
// for every i, one of
//
//	y_i = x_i - 1,   y_i = x_i + 1,   (x_i, y_i) = (0, 0),   (x_i, y_i) = (q-1, q-1).
//
// Theorem 1 of the paper (quoted from [4]): any 1/5-error public-coin Monte
// Carlo protocol for DISJOINTNESSCP_{n,q} communicates Ω(n/q²) − O(log n)
// bits. This package provides instances, validation, evaluation, and
// generators; the reduction harness in internal/twoparty consumes them.
package disjcp

import (
	"fmt"

	"dyndiam/internal/rng"
)

// Instance is one DISJOINTNESSCP_{n,q} input pair.
type Instance struct {
	N int   // number of characters
	Q int   // alphabet size; odd, >= 3
	X []int // Alice's input, len N, characters in [0, Q-1]
	Y []int // Bob's input, len N, characters in [0, Q-1]
}

// Validate checks dimensions, ranges, and the cycle promise.
func (in Instance) Validate() error {
	if in.Q < 3 || in.Q%2 == 0 {
		return fmt.Errorf("disjcp: q = %d must be odd and >= 3", in.Q)
	}
	if in.N < 1 {
		return fmt.Errorf("disjcp: n = %d must be positive", in.N)
	}
	if len(in.X) != in.N || len(in.Y) != in.N {
		return fmt.Errorf("disjcp: input lengths %d, %d differ from n = %d", len(in.X), len(in.Y), in.N)
	}
	for i := 0; i < in.N; i++ {
		x, y := in.X[i], in.Y[i]
		if x < 0 || x >= in.Q || y < 0 || y >= in.Q {
			return fmt.Errorf("disjcp: character %d out of range: (%d, %d)", i, x, y)
		}
		if !promiseOK(x, y, in.Q) {
			return fmt.Errorf("disjcp: cycle promise violated at index %d: (%d, %d)", i, x, y)
		}
	}
	return nil
}

func promiseOK(x, y, q int) bool {
	switch {
	case y == x-1, y == x+1:
		return true
	case x == 0 && y == 0:
		return true
	case x == q-1 && y == q-1:
		return true
	}
	return false
}

// Eval returns DISJOINTNESSCP(x, y): 0 if some index has x_i = y_i = 0,
// 1 otherwise.
func (in Instance) Eval() int {
	for i := 0; i < in.N; i++ {
		if in.X[i] == 0 && in.Y[i] == 0 {
			return 0
		}
	}
	return 1
}

// ZeroPairs returns the indices i with x_i = y_i = 0 (the witnesses of a
// 0 answer). The Γ-subnetwork construction turns each such index into
// (q-1)/2 disconnected |⁰₀ chains.
func (in Instance) ZeroPairs() []int {
	var out []int
	for i := 0; i < in.N; i++ {
		if in.X[i] == 0 && in.Y[i] == 0 {
			out = append(out, i)
		}
	}
	return out
}

// randomPromisePair draws one (x_i, y_i) satisfying the cycle promise.
// If allowZero is false the pair (0, 0) is excluded.
func randomPromisePair(q int, src *rng.Source, allowZero bool) (int, int) {
	for {
		x := src.Intn(q)
		// Enumerate y choices valid for this x.
		var choices []int
		if x-1 >= 0 {
			choices = append(choices, x-1)
		}
		if x+1 <= q-1 {
			choices = append(choices, x+1)
		}
		if x == 0 && allowZero {
			choices = append(choices, 0)
		}
		if x == q-1 {
			choices = append(choices, q-1)
		}
		y := choices[src.Intn(len(choices))]
		if !allowZero && x == 0 && y == 0 {
			continue
		}
		return x, y
	}
}

// RandomOne generates a uniform-ish promise-satisfying instance with
// answer 1 (no (0, 0) index).
func RandomOne(n, q int, src *rng.Source) Instance {
	in := Instance{N: n, Q: q, X: make([]int, n), Y: make([]int, n)}
	for i := 0; i < n; i++ {
		in.X[i], in.Y[i] = randomPromisePair(q, src, false)
	}
	return in
}

// RandomZero generates a promise-satisfying instance with answer 0: at
// least one index is forced to (0, 0); zeros > 1 forces that many.
func RandomZero(n, q, zeros int, src *rng.Source) Instance {
	if zeros < 1 {
		zeros = 1
	}
	if zeros > n {
		zeros = n
	}
	in := RandomOne(n, q, src)
	perm := src.Perm(n)
	for k := 0; k < zeros; k++ {
		i := perm[k]
		in.X[i], in.Y[i] = 0, 0
	}
	return in
}

// Random generates a promise-satisfying instance where each index may be
// (0, 0); the answer is whatever falls out.
func Random(n, q int, src *rng.Source) Instance {
	in := Instance{N: n, Q: q, X: make([]int, n), Y: make([]int, n)}
	for i := 0; i < n; i++ {
		in.X[i], in.Y[i] = randomPromisePair(q, src, true)
	}
	return in
}

// FromStrings builds a small instance from digit strings such as "3110" and
// "2200" (the paper's Figure 1 example), for tests and demos. Characters
// must be decimal digits less than q.
func FromStrings(x, y string, q int) (Instance, error) {
	if len(x) != len(y) {
		return Instance{}, fmt.Errorf("disjcp: length mismatch %d vs %d", len(x), len(y))
	}
	in := Instance{N: len(x), Q: q, X: make([]int, len(x)), Y: make([]int, len(y))}
	for i := 0; i < len(x); i++ {
		in.X[i] = int(x[i] - '0')
		in.Y[i] = int(y[i] - '0')
	}
	if err := in.Validate(); err != nil {
		return Instance{}, err
	}
	return in, nil
}
