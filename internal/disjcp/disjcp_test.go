package disjcp

import (
	"testing"
	"testing/quick"

	"dyndiam/internal/rng"
)

func TestFigure1Example(t *testing.T) {
	in, err := FromStrings("3110", "2200", 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Eval(); got != 0 {
		t.Errorf("Eval = %d, want 0 (index 4 is (0,0))", got)
	}
	zp := in.ZeroPairs()
	if len(zp) != 1 || zp[0] != 3 {
		t.Errorf("ZeroPairs = %v, want [3]", zp)
	}
}

func TestValidateRejectsBadInputs(t *testing.T) {
	cases := []Instance{
		{N: 2, Q: 4, X: []int{0, 1}, Y: []int{1, 2}},       // even q
		{N: 2, Q: 1, X: []int{0, 0}, Y: []int{0, 0}},       // q too small
		{N: 0, Q: 5, X: nil, Y: nil},                       // empty
		{N: 2, Q: 5, X: []int{0}, Y: []int{1, 2}},          // length mismatch
		{N: 2, Q: 5, X: []int{0, 9}, Y: []int{1, 8}},       // out of range
		{N: 2, Q: 5, X: []int{0, 3}, Y: []int{1, 0}},       // promise violated (3,0)
		{N: 1, Q: 5, X: []int{2}, Y: []int{2}},             // (2,2) not allowed
		{N: 1, Q: 5, X: []int{4}, Y: []int{2}},             // gap of 2
		{N: 3, Q: 5, X: []int{0, 4, 1}, Y: []int{0, 4, 3}}, // last pair bad
		{N: 2, Q: 5, X: []int{-1, 1}, Y: []int{0, 2}},      // negative
	}
	for i, in := range cases {
		if err := in.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid instance %+v", i, in)
		}
	}
}

func TestValidateAcceptsPromiseCases(t *testing.T) {
	good := []Instance{
		{N: 1, Q: 5, X: []int{0}, Y: []int{0}},
		{N: 1, Q: 5, X: []int{4}, Y: []int{4}},
		{N: 1, Q: 5, X: []int{2}, Y: []int{1}},
		{N: 1, Q: 5, X: []int{2}, Y: []int{3}},
		{N: 1, Q: 5, X: []int{0}, Y: []int{1}},
		{N: 1, Q: 3, X: []int{2}, Y: []int{2}},
	}
	for i, in := range good {
		if err := in.Validate(); err != nil {
			t.Errorf("case %d: Validate rejected valid instance: %v", i, err)
		}
	}
}

func TestEval(t *testing.T) {
	one := Instance{N: 3, Q: 5, X: []int{1, 4, 0}, Y: []int{0, 4, 1}}
	if one.Eval() != 1 {
		t.Error("instance without (0,0) evaluated to 0")
	}
	zero := Instance{N: 3, Q: 5, X: []int{1, 0, 0}, Y: []int{0, 0, 1}}
	if zero.Eval() != 0 {
		t.Error("instance with (0,0) evaluated to 1")
	}
}

func TestRandomOneProperty(t *testing.T) {
	f := func(seed uint64, nRaw, qRaw uint8) bool {
		n := int(nRaw%50) + 1
		q := 2*int(qRaw%10) + 3 // odd, >= 3
		in := RandomOne(n, q, rng.New(seed))
		return in.Validate() == nil && in.Eval() == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandomZeroProperty(t *testing.T) {
	f := func(seed uint64, nRaw, qRaw, zRaw uint8) bool {
		n := int(nRaw%50) + 1
		q := 2*int(qRaw%10) + 3
		zeros := int(zRaw%5) + 1
		in := RandomZero(n, q, zeros, rng.New(seed))
		if in.Validate() != nil || in.Eval() != 0 {
			return false
		}
		want := zeros
		if want > n {
			want = n
		}
		return len(in.ZeroPairs()) >= want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandomAlwaysSatisfiesPromise(t *testing.T) {
	f := func(seed uint64, nRaw, qRaw uint8) bool {
		n := int(nRaw%50) + 1
		q := 2*int(qRaw%10) + 3
		return Random(n, q, rng.New(seed)).Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandomProducesBothAnswers(t *testing.T) {
	src := rng.New(1)
	saw := map[int]bool{}
	for i := 0; i < 200; i++ {
		saw[Random(8, 5, src).Eval()] = true
	}
	if !saw[0] || !saw[1] {
		t.Errorf("Random never produced both answers: %v", saw)
	}
}

func TestFromStringsRejectsPromiseViolation(t *testing.T) {
	if _, err := FromStrings("30", "10", 5); err == nil {
		t.Error("FromStrings accepted (3,1)")
	}
	if _, err := FromStrings("31", "2", 5); err == nil {
		t.Error("FromStrings accepted length mismatch")
	}
}

func BenchmarkRandomOne(b *testing.B) {
	src := rng.New(1)
	for i := 0; i < b.N; i++ {
		RandomOne(256, 9, src)
	}
}
