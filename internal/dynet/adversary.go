package dynet

import "dyndiam/internal/graph"

// Adversary fixes the topology of every round. Per the model, it may inspect
// the actions the nodes committed for the current round (their coin flips
// happen first), but never future coins.
type Adversary interface {
	// Topology returns the graph for round r >= 1. actions[v] is node v's
	// committed action for round r. The returned graph must span all N
	// nodes and be connected; the engine verifies connectivity when
	// CheckConnectivity is set. The engine treats the result as read-only
	// for the duration of the round, and adversaries may reuse the same
	// Graph value across calls: the result is only valid until the next
	// Topology call. Callers that keep topologies across rounds (e.g. a
	// Trace with KeepTopologies) must Clone them.
	Topology(r int, actions []Action) *graph.Graph
}

// AdversaryFunc adapts a function to the Adversary interface.
type AdversaryFunc func(r int, actions []Action) *graph.Graph

// Topology implements Adversary.
func (f AdversaryFunc) Topology(r int, actions []Action) *graph.Graph {
	return f(r, actions)
}

// Static returns an adversary that presents the same graph every round —
// the static-network special case of the model.
func Static(g *graph.Graph) Adversary {
	return AdversaryFunc(func(int, []Action) *graph.Graph { return g })
}
