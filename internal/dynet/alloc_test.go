package dynet

import (
	"testing"

	"dyndiam/internal/graph"
)

// pingMachine is an allocation-free test machine: even ids send a fixed
// payload on odd rounds and receive otherwise; odd ids do the opposite. It
// never decides, so the engine runs the full horizon.
type pingMachine struct {
	id      int
	payload []byte
	seen    int
}

func (m *pingMachine) Step(r int) (Action, Message) {
	if (r+m.id)%2 == 0 {
		return Send, Message{Payload: m.payload, NBits: 8 * len(m.payload)}
	}
	return Receive, Message{}
}

func (m *pingMachine) Deliver(r int, msgs []Message) { m.seen += len(msgs) }

func (m *pingMachine) Output() (int64, bool) { return 0, false }

func newPingEngine(n int) *Engine {
	ms := make([]Machine, n)
	payload := []byte{0xAB, 0xCD}
	for v := 0; v < n; v++ {
		ms[v] = &pingMachine{id: v, payload: payload}
	}
	return &Engine{
		Machines:          ms,
		Adv:               Static(graph.Ring(n)),
		Workers:           1,
		CheckConnectivity: true,
	}
}

// TestEngineRoundZeroAllocs pins the tentpole claim: the engine's
// steady-state round loop — step, budget accounting, topology, connectivity
// check, inbox assembly, delivery — performs zero allocations per round once
// the per-execution buffers exist. It drives the same phase functions
// Engine.Run calls, over warmed buffers, under testing.AllocsPerRun.
func TestEngineRoundZeroAllocs(t *testing.T) {
	const n = 64
	e := newPingEngine(n)
	actions := make([]Action, n)
	outgoing := make([]Message, n)
	inboxes := make([][]Message, n)
	dist := make([]int32, n)
	queue := make([]int32, n)

	r := 0
	round := func() {
		r++
		e.step(r, actions, outgoing, 1, nil)
		g := e.Adv.Topology(r, actions)
		if !g.ConnectedInto(dist, queue) {
			t.Fatal("ring disconnected")
		}
		collect(g, actions, outgoing, inboxes)
		e.deliver(r, actions, inboxes, 1, nil)
	}
	// Warm the inbox backing arrays: both parities of the ping schedule.
	round()
	round()

	if avg := testing.AllocsPerRun(200, round); avg != 0 {
		t.Errorf("steady-state round allocates %v, want 0", avg)
	}
}

// TestEngineRunAllocsDoNotScaleWithRounds is the end-to-end form of the same
// claim: with allocation-free machines and a static adversary, a 10x longer
// execution must not allocate more than a short one — every per-round cost
// has to come from reused buffers.
func TestEngineRunAllocsDoNotScaleWithRounds(t *testing.T) {
	const n = 48
	run := func(rounds int) float64 {
		// One fresh engine per measured run; Engines are single-use.
		return testing.AllocsPerRun(10, func() {
			e := newPingEngine(n)
			if _, err := e.Run(rounds); err != nil {
				t.Fatal(err)
			}
		})
	}
	short, long := run(20), run(200)
	// Identical fixed setup cost, zero marginal cost per extra round.
	if long > short {
		t.Errorf("allocs grew with rounds: %v at 20 rounds, %v at 200", short, long)
	}
}
