package dynet

import "dyndiam/internal/graph"

// This file adds delta-encoded dynamic graphs: instead of materializing a
// full topology every round, an adversary may describe round r > 1 as an
// ordered edge-op script against the previous round's graph. The flood
// fast path applies the script to one mutable CSR snapshot, so per-round
// topology cost scales with the churn, not with the edge count.

// EdgeOp is one edge insertion or deletion.
type EdgeOp struct {
	U, V int32
	Del  bool
}

// EdgeDiff is an ordered edge-op script transforming one round's topology
// into the next round's. Ops apply in order, so a script may legally
// delete and re-add the same edge. The zero value is an empty script;
// Reset keeps the backing array for reuse across rounds.
type EdgeDiff struct {
	Ops []EdgeOp
}

// Reset empties the script, retaining capacity.
func (d *EdgeDiff) Reset() { d.Ops = d.Ops[:0] }

// Add appends an edge insertion.
func (d *EdgeDiff) Add(u, v int) { d.Ops = append(d.Ops, EdgeOp{U: int32(u), V: int32(v)}) }

// Del appends an edge deletion.
func (d *EdgeDiff) Del(u, v int) { d.Ops = append(d.Ops, EdgeOp{U: int32(u), V: int32(v), Del: true}) }

// Len returns the number of ops.
func (d *EdgeDiff) Len() int { return len(d.Ops) }

// Apply executes the script against g in order.
func (d *EdgeDiff) Apply(g *graph.Graph) {
	for _, op := range d.Ops {
		if op.Del {
			g.RemoveEdge(int(op.U), int(op.V))
		} else {
			g.AddEdge(int(op.U), int(op.V))
		}
	}
}

// DiffGraphs appends to d the script transforming prev into next (both
// over the same vertex set): per vertex pair in ascending (u, v) order,
// edges only in prev become deletions and edges only in next become
// insertions. The merge walks both sorted adjacency lists once.
func DiffGraphs(prev, next *graph.Graph, d *EdgeDiff) {
	n := prev.N()
	for u := 0; u < n; u++ {
		pa, na := prev.Adj(u), next.Adj(u)
		i, j := 0, 0
		for i < len(pa) || j < len(na) {
			switch {
			case j == len(na) || (i < len(pa) && pa[i] < na[j]):
				if int(pa[i]) > u {
					d.Del(u, int(pa[i]))
				}
				i++
			case i == len(pa) || na[j] < pa[i]:
				if int(na[j]) > u {
					d.Add(u, int(na[j]))
				}
				j++
			default: // equal: edge present in both
				i++
				j++
			}
		}
	}
}

// DeltaAdversary is an Adversary that can additionally describe rounds as
// edge diffs. The consumer picks exactly one calling pattern per
// execution: either Topology(r, actions) for every round r = 1, 2, ...
// (the message-passing engine), or Topology(1, actions) once for the base
// graph followed by Diff(r, actions, d) for r = 2, 3, ... in order (the
// flood fast path, which applies each script to its own snapshot).
// Implementations must make both patterns produce identical topology
// sequences — the differential tests hold them to it.
type DeltaAdversary interface {
	Adversary
	// Diff appends round r's script (relative to round r-1's topology)
	// to d. Like Topology, it sees the current round's actions.
	Diff(r int, actions []Action, d *EdgeDiff)
}

// DeltaFrom wraps any Adversary as a DeltaAdversary by materializing each
// round's topology and diffing it against the previous round's. It adds
// an O(m) copy per round, so it buys no asymptotic speed — it exists so
// tests (and callers migrating incrementally) can drive the delta path
// with any existing adversary family.
func DeltaFrom(adv Adversary) DeltaAdversary {
	return &deltaWrapper{adv: adv}
}

type deltaWrapper struct {
	adv  Adversary
	prev *graph.Graph
}

func (w *deltaWrapper) Topology(r int, actions []Action) *graph.Graph {
	g := w.adv.Topology(r, actions)
	w.remember(g)
	return g
}

func (w *deltaWrapper) Diff(r int, actions []Action, d *EdgeDiff) {
	g := w.adv.Topology(r, actions)
	DiffGraphs(w.prev, g, d)
	w.remember(g)
}

func (w *deltaWrapper) remember(g *graph.Graph) {
	if w.prev == nil {
		w.prev = graph.New(g.N())
	}
	w.prev.CopyFrom(g)
}
