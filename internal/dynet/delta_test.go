package dynet

import (
	"testing"

	"dyndiam/internal/bitkernel"
	"dyndiam/internal/graph"
	"dyndiam/internal/rng"
)

// randomTrace builds T independent random connected topologies over n nodes.
func randomTrace(n, T, extra int, seed uint64) []*graph.Graph {
	src := rng.New(seed)
	gs := make([]*graph.Graph, T)
	for r := range gs {
		gs[r] = graph.RandomConnected(n, extra, src.Split(uint64(r)))
	}
	return gs
}

func graphsEqual(a, b *graph.Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for v := 0; v < a.N(); v++ {
		pa, pb := a.Adj(v), b.Adj(v)
		if len(pa) != len(pb) {
			return false
		}
		for i := range pa {
			if pa[i] != pb[i] {
				return false
			}
		}
	}
	return true
}

// TestDiffGraphsRoundtrip: applying DiffGraphs(prev, next) to a copy of
// prev must reproduce next exactly, for random pairs of topologies.
func TestDiffGraphsRoundtrip(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 33, 100} {
		for trial := uint64(0); trial < 4; trial++ {
			src := rng.New(0xd1f*uint64(n) + trial)
			prev := graph.RandomConnected(n, n/2, src.Split(0))
			next := graph.RandomConnected(n, n/3, src.Split(1))
			var d EdgeDiff
			DiffGraphs(prev, next, &d)
			got := prev.Clone()
			d.Apply(got)
			if !graphsEqual(got, next) {
				t.Fatalf("n=%d trial=%d: diff+apply does not reproduce next (%d ops)", n, trial, d.Len())
			}
			// An empty diff is produced for identical graphs.
			d.Reset()
			DiffGraphs(next, next, &d)
			if d.Len() != 0 {
				t.Fatalf("n=%d: self-diff has %d ops, want 0", n, d.Len())
			}
		}
	}
}

// TestDeltaFromMatchesTopology: the two DeltaAdversary calling patterns
// (all-Topology vs Topology(1)+Diff...) must yield identical sequences.
func TestDeltaFromMatchesTopology(t *testing.T) {
	n, T := 40, 12
	actions := make([]Action, n)
	mk := func() Adversary {
		src := rng.New(77)
		return AdversaryFunc(func(r int, _ []Action) *graph.Graph {
			return graph.RandomConnected(n, 3, src.Split(uint64(r)))
		})
	}
	da := DeltaFrom(mk())
	want := mk()

	snap := graph.New(n)
	var d EdgeDiff
	for r := 1; r <= T; r++ {
		w := want.Topology(r, actions)
		if r == 1 {
			snap.CopyFrom(da.Topology(r, actions))
		} else {
			d.Reset()
			da.Diff(r, actions, &d)
			d.Apply(snap)
		}
		if !graphsEqual(snap, w) {
			t.Fatalf("round %d: delta-path snapshot diverges from topology path", r)
		}
	}
}

// checkIncrementalClosure drives a bitkernel.Closure with a diff-mutated
// snapshot round by round and checks completion time against SpreadFrom on
// the materialized trace, from every start time.
func checkIncrementalClosure(t *testing.T, gs []*graph.Graph) {
	t.Helper()
	n := gs[0].N()
	for r := 0; r <= len(gs); r++ {
		want := SpreadFrom(gs, r)

		// Incremental path: one mutable snapshot advanced by diffs.
		snap := graph.New(n)
		var d EdgeDiff
		c := bitkernel.NewClosure(n)
		got := -1
		if c.Complete() { // n <= 1: spread is trivially done
			got = 0
		}
		for z := 1; got < 0 && r+z-1 < len(gs); z++ {
			g := gs[r+z-1]
			if z == 1 {
				snap.CopyFrom(g)
			} else {
				d.Reset()
				DiffGraphs(gs[r+z-2], g, &d)
				d.Apply(snap)
			}
			c.Step(snap)
			if c.Complete() {
				got = z
				break
			}
		}
		if got != want {
			t.Fatalf("start %d: incremental closure spread %d, scratch SpreadFrom %d", r, got, want)
		}
	}
}

// TestIncrementalClosureMatchesScratch (satellite 2): stepping the causal
// closure with delta-encoded graphs is equivalent to SpreadFrom over fully
// materialized snapshots.
func TestIncrementalClosureMatchesScratch(t *testing.T) {
	for _, tc := range []struct{ n, T, extra int }{
		{1, 4, 0}, {2, 6, 0}, {5, 8, 1}, {17, 10, 2}, {40, 6, 0}, {64, 9, 5},
	} {
		for trial := uint64(0); trial < 3; trial++ {
			gs := randomTrace(tc.n, tc.T, tc.extra, 0xc105e+uint64(tc.n)*131+trial)
			checkIncrementalClosure(t, gs)
		}
	}
}

// TestDiameterTrackerOverDiffs: streaming diff-mutated snapshots into a
// DiameterTracker matches DynamicDiameter over the materialized trace.
func TestDiameterTrackerOverDiffs(t *testing.T) {
	for _, tc := range []struct{ n, T, extra int }{
		{3, 7, 0}, {12, 9, 1}, {33, 8, 2},
	} {
		gs := randomTrace(tc.n, tc.T, tc.extra, 0x7acc*uint64(tc.n))
		wantD, wantExact := DynamicDiameter(gs)

		snap := graph.New(tc.n)
		var d EdgeDiff
		tr := bitkernel.NewDiameterTracker(tc.n)
		for r, g := range gs {
			if r == 0 {
				snap.CopyFrom(g)
			} else {
				d.Reset()
				DiffGraphs(gs[r-1], g, &d)
				d.Apply(snap)
			}
			tr.Advance(snap)
		}
		gotD, gotExact := tr.Result()
		if gotD != wantD || gotExact != wantExact {
			t.Fatalf("n=%d: tracker over diffs (%d,%v), DynamicDiameter (%d,%v)",
				tc.n, gotD, gotExact, wantD, wantExact)
		}
	}
}

// FuzzClosureIncremental (satellite 2): feed the incremental closure with
// fuzz-chosen trace shapes; diffs round-by-round must agree with scratch
// SpreadFrom recomputation from snapshots.
func FuzzClosureIncremental(f *testing.F) {
	f.Add(uint8(5), uint8(6), uint8(1), uint64(1))
	f.Add(uint8(64), uint8(8), uint8(0), uint64(2))
	f.Add(uint8(1), uint8(3), uint8(7), uint64(3))
	f.Fuzz(func(t *testing.T, rawN, rawT, rawExtra uint8, seed uint64) {
		n := int(rawN)%80 + 1
		T := int(rawT)%10 + 1
		extra := int(rawExtra) % 5
		gs := randomTrace(n, T, extra, seed)
		checkIncrementalClosure(t, gs)
	})
}
