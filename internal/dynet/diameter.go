package dynet

import "dyndiam/internal/graph"

// This file computes the paper's dynamic diameter. Following Section 2:
// (U, r) → (V, r+1) holds iff (U, V) is an edge of the round-(r+1) topology
// or U = V, ⇝ is the transitive closure, and the diameter is the minimum D
// such that (U, r) ⇝ (V, r+D) for every r ≥ 0 and all U, V. Note the
// relation is purely topological: it ignores send/receive choices, because
// it captures *potential* causal influence.

// bitset is a fixed-size set of node ids packed into words.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int) { b[i/64] |= 1 << uint(i%64) }
func (b bitset) orInto(o bitset) {
	for w := range b {
		b[w] |= o[w]
	}
}

func (b bitset) equal(o bitset) bool {
	for w := range b {
		if b[w] != o[w] {
			return false
		}
	}
	return true
}

func fullBitset(n int) bitset {
	b := newBitset(n)
	for i := 0; i < n; i++ {
		b.set(i)
	}
	return b
}

// SpreadFrom returns the number of rounds needed, starting from state time
// r (0-based; graphs[0] is the round-1 topology), until every node has been
// causally influenced by every node, i.e. the smallest z with
// (U, r) ⇝ (V, r+z) for all U, V. It returns -1 if the spread does not
// complete within the trace.
func SpreadFrom(graphs []*graph.Graph, r int) int {
	if len(graphs) == 0 {
		return -1
	}
	n := graphs[0].N()
	if n <= 1 {
		return 0
	}
	// inf[v] = set of sources whose state at time r has influenced v.
	inf := make([]bitset, n)
	for v := 0; v < n; v++ {
		inf[v] = newBitset(n)
		inf[v].set(v)
	}
	full := fullBitset(n)
	next := make([]bitset, n)
	for v := range next {
		next[v] = newBitset(n)
	}
	for z := 1; r+z-1 < len(graphs); z++ {
		g := graphs[r+z-1] // topology of round r+z
		for v := 0; v < n; v++ {
			nv := next[v]
			copy(nv, inf[v])
			for _, u := range g.Adj(v) {
				nv.orInto(inf[u])
			}
		}
		inf, next = next, inf
		done := true
		for v := 0; v < n; v++ {
			if !inf[v].equal(full) {
				done = false
				break
			}
		}
		if done {
			return z
		}
	}
	return -1
}

// DynamicDiameter computes the dynamic diameter witnessed by a finite
// topology trace (graphs[i] is the topology of round i+1).
//
// It returns d, the maximum completed spread over all start times, and
// exact, which reports that the trace certifies the diameter: every start
// time either completed its spread within the trace, or had fewer than d
// rounds remaining (so its incompleteness is consistent with diameter d).
// When exact is false, d is only a lower bound.
func DynamicDiameter(graphs []*graph.Graph) (d int, exact bool) {
	T := len(graphs)
	if T == 0 {
		return 0, false
	}
	if graphs[0].N() <= 1 {
		return 0, true
	}
	spreads := make([]int, T)
	for r := 0; r < T; r++ {
		spreads[r] = SpreadFrom(graphs, r)
		if spreads[r] > d {
			d = spreads[r]
		}
	}
	exact = d > 0
	for r := 0; r < T; r++ {
		if spreads[r] == -1 && T-r >= d {
			// At least d rounds remained and the spread still did
			// not finish: the true diameter exceeds d.
			exact = false
			break
		}
	}
	return d, exact
}
