package dynet

import (
	"dyndiam/internal/bitkernel"
	"dyndiam/internal/graph"
)

// This file computes the paper's dynamic diameter. Following Section 2:
// (U, r) → (V, r+1) holds iff (U, V) is an edge of the round-(r+1) topology
// or U = V, ⇝ is the transitive closure, and the diameter is the minimum D
// such that (U, r) ⇝ (V, r+D) for every r ≥ 0 and all U, V. Note the
// relation is purely topological: it ignores send/receive choices, because
// it captures *potential* causal influence.
//
// The closure arithmetic lives in internal/bitkernel (word-packed rows,
// frozen-full skipping, pooled per-start closures); this file keeps the
// trace-shaped entry points. Callers that stream topologies instead of
// holding a full trace can drive a bitkernel.DiameterTracker directly —
// that is what harness.MeasureDynamicDiameter does.

// SpreadFrom returns the number of rounds needed, starting from state time
// r (0-based; graphs[0] is the round-1 topology), until every node has been
// causally influenced by every node, i.e. the smallest z with
// (U, r) ⇝ (V, r+z) for all U, V. It returns -1 if the spread does not
// complete within the trace.
func SpreadFrom(graphs []*graph.Graph, r int) int {
	if len(graphs) == 0 {
		return -1
	}
	n := graphs[0].N()
	if n <= 1 {
		return 0
	}
	c := bitkernel.NewClosure(n)
	for z := 1; r+z-1 < len(graphs); z++ {
		c.Step(graphs[r+z-1]) // topology of round r+z
		if c.Complete() {
			return z
		}
	}
	return -1
}

// DynamicDiameter computes the dynamic diameter witnessed by a finite
// topology trace (graphs[i] is the topology of round i+1).
//
// It returns d, the maximum completed spread over all start times, and
// exact, which reports that the trace certifies the diameter: every start
// time either completed its spread within the trace, or had fewer than d
// rounds remaining (so its incompleteness is consistent with diameter d).
// When exact is false, d is only a lower bound.
func DynamicDiameter(graphs []*graph.Graph) (d int, exact bool) {
	T := len(graphs)
	if T == 0 {
		return 0, false
	}
	n := graphs[0].N()
	if n <= 1 {
		return 0, true
	}
	tr := bitkernel.NewDiameterTracker(n)
	for _, g := range graphs {
		tr.Advance(g)
	}
	return tr.Result()
}
