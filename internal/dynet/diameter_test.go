package dynet

import (
	"testing"

	"dyndiam/internal/graph"
	"dyndiam/internal/rng"
)

func repeatGraphs(g *graph.Graph, t int) []*graph.Graph {
	out := make([]*graph.Graph, t)
	for i := range out {
		out[i] = g
	}
	return out
}

func TestSpreadFromStaticLine(t *testing.T) {
	const n = 10
	graphs := repeatGraphs(graph.Line(n), 3*n)
	if z := SpreadFrom(graphs, 0); z != n-1 {
		t.Errorf("spread on %d-line = %d, want %d", n, z, n-1)
	}
	if z := SpreadFrom(graphs, 5); z != n-1 {
		t.Errorf("spread from r=5 = %d, want %d", n, n-1)
	}
}

func TestSpreadIncomplete(t *testing.T) {
	graphs := repeatGraphs(graph.Line(10), 4) // too short for the line
	if z := SpreadFrom(graphs, 0); z != -1 {
		t.Errorf("spread = %d, want -1 (incomplete)", z)
	}
}

func TestDynamicDiameterStaticCases(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"line10", graph.Line(10), 9},
		{"ring8", graph.Ring(8), 4},
		{"star9", graph.Star(9), 2},
		{"complete5", graph.Complete(5), 1},
	}
	for _, c := range cases {
		d, exact := DynamicDiameter(repeatGraphs(c.g, 40))
		if !exact {
			t.Errorf("%s: not exact", c.name)
		}
		if d != c.want {
			t.Errorf("%s: dynamic diameter = %d, want %d", c.name, d, c.want)
		}
	}
}

func TestDynamicDiameterRotatingStar(t *testing.T) {
	// A star whose center rotates every round is a classic example of the
	// dynamic diameter exceeding every round's static diameter (2): a
	// node's influence reaches the current center in one round, but that
	// center is a leaf from the next round on, so "everyone-influences-
	// everyone" information must chase the rotating center around — it
	// takes n-1 rounds, not 2.
	const n = 12
	graphs := make([]*graph.Graph, 60)
	for r := range graphs {
		g := graph.New(n)
		center := (r + 1) % n
		for v := 0; v < n; v++ {
			if v != center {
				g.AddEdge(center, v)
			}
		}
		graphs[r] = g
	}
	d, exact := DynamicDiameter(graphs)
	if !exact || d != n-1 {
		t.Errorf("rotating star: d=%d exact=%v, want %d true", d, exact, n-1)
	}
	for _, g := range graphs {
		if g.StaticDiameter() != 2 {
			t.Fatal("per-round static diameter should be 2")
		}
	}
}

func TestDynamicDiameterGrowsWhenTopologyStalls(t *testing.T) {
	// First 10 rounds a complete graph, afterwards a long line: start
	// times inside the line segment see the line's diameter.
	const n = 16
	var graphs []*graph.Graph
	for i := 0; i < 10; i++ {
		graphs = append(graphs, graph.Complete(n))
	}
	for i := 0; i < 5*n; i++ {
		graphs = append(graphs, graph.Line(n))
	}
	d, exact := DynamicDiameter(graphs)
	if !exact {
		t.Fatal("not exact")
	}
	if d != n-1 {
		t.Errorf("d = %d, want %d", d, n-1)
	}
}

func TestDynamicDiameterSingleNode(t *testing.T) {
	d, exact := DynamicDiameter(repeatGraphs(graph.New(1), 5))
	if d != 0 || !exact {
		t.Errorf("single node: d=%d exact=%v, want 0 true", d, exact)
	}
}

func TestDynamicDiameterMatchesEngineTrace(t *testing.T) {
	// Measure the diameter of a random dynamic network produced through
	// an actual engine run with trace recording.
	const n = 24
	src := rng.New(42)
	adv := AdversaryFunc(func(r int, _ []Action) *graph.Graph {
		return graph.RandomConnected(n, n, src.Split(uint64(r)))
	})
	ms := NewMachines(relayProtocol{}, n, tokenInputs(n, 0), 1, nil)
	tr := &Trace{KeepTopologies: true}
	e := &Engine{Machines: ms, Adv: adv, Workers: 1, Trace: tr,
		Terminated: func([]Machine) bool { return false }} // run full horizon
	if _, err := e.Run(120); err != nil {
		t.Fatal(err)
	}
	d, exact := DynamicDiameter(tr.Topologies())
	if !exact {
		t.Fatal("trace too short for exact diameter")
	}
	if d < 1 || d > n {
		t.Errorf("implausible dynamic diameter %d for connected %d-node network", d, n)
	}
}

func BenchmarkDynamicDiameter(b *testing.B) {
	const n = 128
	src := rng.New(1)
	graphs := make([]*graph.Graph, 60)
	for r := range graphs {
		graphs[r] = graph.RandomConnected(n, n, src.Split(uint64(r)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DynamicDiameter(graphs)
	}
}
