// Package dynet implements the paper's dynamic-network model (Section 2):
//
//   - N nodes with unique ids execute a synchronous randomized protocol,
//     starting simultaneously at round 1 (round 0 does nothing).
//   - In each round every node first flips its coins and commits to either
//     sending one message of O(log N) bits or receiving.
//   - An adversary then fixes the topology of the round — an arbitrary
//     connected undirected graph — knowing the protocol, all coin flips so
//     far, and node states, but not future coins.
//   - A message sent is received by exactly the sender's neighbors that
//     chose to receive in that round. Nodes do not know their neighbors
//     unless they receive from them.
//
// The package provides the per-node Machine abstraction, the round Engine
// (sequential and goroutine-parallel, bit-identical), CONGEST bit-budget
// enforcement, execution traces, and the dynamic-diameter computation based
// on the causal relation (U, r) ⇝ (V, r+z).
package dynet

import (
	"fmt"

	"dyndiam/internal/rng"
)

// Action is a node's per-round choice in the send/receive model.
type Action uint8

const (
	// Receive means the node listens this round and gets the messages of
	// all sending neighbors.
	Receive Action = iota
	// Send means the node broadcasts one message to its receiving
	// neighbors and hears nothing itself.
	Send
)

// String implements fmt.Stringer for debugging output.
func (a Action) String() string {
	if a == Send {
		return "send"
	}
	return "recv"
}

// Message is a protocol message on the wire. Payload holds NBits valid bits
// in bitio layout. From is filled in by the engine at delivery time.
type Message struct {
	From    int
	Payload []byte
	NBits   int
}

// Machine is the state machine one node runs. Implementations must be
// deterministic functions of (construction Config, delivered messages):
// all randomness must come from the Config's coin source so that the
// two-party reduction can re-execute any node from public coins.
//
// The engine drives each round r (starting at 1) as:
//
//	act, msg := m.Step(r)        // coin flips + send/receive commitment
//	// adversary fixes the round-r topology knowing all actions
//	if act == Receive { m.Deliver(r, msgsFromSendingNeighbors) }
type Machine interface {
	// Step commits the node's action for round r, returning the outgoing
	// message when the action is Send. The returned Message's From field
	// is ignored.
	Step(r int) (Action, Message)
	// Deliver hands the node the messages sent by its sending neighbors
	// in round r. It is called only on rounds where Step returned
	// Receive, and is called with an empty slice when no neighbor sent.
	Deliver(r int, msgs []Message)
	// Output reports the node's output value and whether the node has
	// decided (terminated). Once true, it must stay true with the same
	// value. A terminated machine keeps being stepped — the model has no
	// halting; "termination" is the problem-level output event.
	Output() (int64, bool)
}

// Config carries everything a Machine needs at construction.
type Config struct {
	N     int         // number of nodes in the network
	ID    int         // this node's id in [0, N)
	Input int64       // problem input (consensus bit, token, ...)
	Coins *rng.Source // this node's private view of the public coin tape
	// Budget is the per-message bit budget (CONGEST). Machines must not
	// exceed it; the engine enforces it.
	Budget int
	// Extra carries protocol-specific parameters (e.g. a diameter bound
	// or the estimate N'). Protocols document which keys they use.
	Extra map[string]int64
}

// ExtraInt returns cfg.Extra[key], or def when absent.
func (cfg Config) ExtraInt(key string, def int64) int64 {
	if v, ok := cfg.Extra[key]; ok {
		return v
	}
	return def
}

// Protocol builds the machine for each node of a network.
type Protocol interface {
	// Name identifies the protocol in traces and experiment tables.
	Name() string
	// NewMachine returns the state machine for the node described by cfg.
	NewMachine(cfg Config) Machine
}

// Budget returns the CONGEST per-message bit budget used throughout this
// repository for an N-node network: Θ(log N) with constants generous enough
// for the richest message layout we use (the counting subroutine), yet tight
// enough that packing more than O(1) ids in one message is impossible.
func Budget(n int) int {
	w := 1
	for v := n; v > 0; v >>= 1 {
		w++
	}
	return 8*w + 48
}

// NewMachines instantiates one machine per node. inputs may be nil (all
// zero); extra may be nil and is shared across machines.
func NewMachines(p Protocol, n int, inputs []int64, seed uint64, extra map[string]int64) []Machine {
	root := rng.New(seed)
	budget := Budget(n)
	ms := make([]Machine, n)
	for v := 0; v < n; v++ {
		var in int64
		if inputs != nil {
			in = inputs[v]
		}
		ms[v] = p.NewMachine(Config{
			N:      n,
			ID:     v,
			Input:  in,
			Coins:  root.Split(uint64(v) + 1),
			Budget: budget,
			Extra:  extra,
		})
	}
	return ms
}

// budgetError describes a CONGEST violation.
func budgetError(node, round, nbits, budget int) error {
	return fmt.Errorf("dynet: node %d exceeded bit budget in round %d: %d > %d bits",
		node, round, nbits, budget)
}
