package dynet

import (
	"fmt"
	"runtime"
	"sync"

	"dyndiam/internal/faults"
	"dyndiam/internal/graph"
	"dyndiam/internal/obs"
)

// Engine executes a protocol over a dynamic network. Configure the fields,
// then call Run or RunUntil. An Engine is single-use per execution.
type Engine struct {
	Machines []Machine
	Adv      Adversary

	// Budget is the per-message bit budget; zero means Budget(len(Machines)).
	Budget int
	// CheckConnectivity makes the engine verify each round's topology is
	// connected, as the model requires of the adversary.
	CheckConnectivity bool
	// Workers > 1 selects the goroutine-parallel stepper with that many
	// workers; 1 forces sequential; 0 picks GOMAXPROCS. Parallel and
	// sequential execution are bit-identical because machines only share
	// the read-only topology.
	Workers int
	// Trace, when non-nil, records per-round topologies and statistics.
	Trace *Trace
	// Obs, when non-nil, receives typed events as the run progresses:
	// RoundStart/RoundEnd per round, Send per sending node, and Decide
	// the first round each node's output becomes available. Protocol
	// machines emit their own phase and lock events through their own
	// sinks; the engine only reports what it can see. A nil Obs keeps
	// the round loop exactly on the zero-allocation path pinned by the
	// alloc regression tests. Events are emitted from the coordinator
	// goroutine only, so a single-goroutine sink (obs.Ring) is safe at
	// any Workers setting.
	Obs obs.Sink
	// Metrics, when non-nil, accumulates run totals (engine_rounds_total,
	// engine_messages_total, engine_bits_total) and per-round histograms
	// (engine_round_senders, engine_round_bits). Nil means no metric work.
	Metrics *obs.Registry
	// ObsRoundStride subsamples the flood fast path's round-aggregated
	// event stream: with stride k only every k-th round emits its
	// round_end/frontier/diff_ops aggregate (the final round always
	// does), which bounds event volume at huge N. 0 or 1 means every
	// round. Metrics are never subsampled, and the message path ignores
	// the stride (it reports individual sends, not aggregates).
	ObsRoundStride int

	// Plan, when non-nil and enabled, injects deterministic seeded faults
	// between the adversary's topology and message delivery: crash/rejoin
	// outages freeze nodes, edge cuts remove topology edges (possibly
	// disconnecting the round — the adversary's own graph is still held
	// to the model's connectivity obligation), and per-delivery faults
	// drop, duplicate, or bit-corrupt message copies. Every injected
	// fault is counted in Metrics (faults_*_total) and emitted to Obs as
	// a KindFault event. A nil (or all-zero) Plan keeps the round loop
	// exactly on the zero-allocation clean path pinned by the alloc
	// regression tests.
	Plan *faults.Plan

	// Terminated, when non-nil, overrides the default all-nodes-decided
	// termination predicate (e.g. CFLOOD terminates when the source
	// outputs).
	Terminated func(ms []Machine) bool
}

// Result summarizes an execution.
type Result struct {
	// Rounds is the round number at whose end the termination predicate
	// first held, or MaxRounds if it never did.
	Rounds int
	// Done reports whether the termination predicate held by the end.
	Done bool
	// Messages is the number of messages sent (one per sending node per
	// round, whether or not anyone received it).
	Messages int
	// Bits is the total number of payload bits sent.
	Bits int
	// Outputs holds each node's output value; valid only for nodes whose
	// machine reported termination (Decided[v]).
	Outputs []int64
	Decided []bool
}

// Run executes up to maxRounds rounds, stopping early when the termination
// predicate holds. It returns an error on model violations (bit budget or
// connectivity).
//
// The round loop is steady-state allocation-free: inbox backing arrays are
// reused across rounds, inboxes are assembled by an in-place insertion sort
// over the already-ascending neighbor order (no sort.Slice closure), and
// the connectivity check runs over preallocated scratch buffers. Per-round
// allocations, if any, come from the machines or the adversary. The
// hotpathalloc rule enforces this interprocedurally; setup-phase and
// error-path lines carry documented allows.
//
//lint:hotpath
func (e *Engine) Run(maxRounds int) (*Result, error) {
	n := len(e.Machines)
	if n == 0 {
		return &Result{Done: true}, nil //lint:allow hotpathalloc empty-engine early return, not the round loop
	}
	budget := e.Budget
	if budget == 0 {
		budget = Budget(n)
	}
	workers := e.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	terminated := e.Terminated
	if terminated == nil {
		terminated = AllDecided
	}

	res := &Result{Rounds: maxRounds} //lint:allow hotpathalloc setup phase, before the round loop
	actions := make([]Action, n)      //lint:allow hotpathalloc setup phase, before the round loop
	outgoing := make([]Message, n)    //lint:allow hotpathalloc setup phase, before the round loop
	inboxes := make([][]Message, n)   //lint:allow hotpathalloc setup phase, before the round loop
	var dist, queue []int32
	if e.CheckConnectivity {
		dist = make([]int32, n)  //lint:allow hotpathalloc setup phase, before the round loop
		queue = make([]int32, n) //lint:allow hotpathalloc setup phase, before the round loop
	}
	observing := e.Obs != nil
	var decided []bool
	if observing {
		decided = make([]bool, n) //lint:allow hotpathalloc setup phase, before the round loop
		for v, m := range e.Machines {
			_, decided[v] = m.Output()
		}
	}
	sendersHist := e.Metrics.Histogram("engine_round_senders", RoundHistBounds) //lint:allow hotpathalloc setup-phase registry lookup, amortized across the run
	bitsHist := e.Metrics.Histogram("engine_round_bits", RoundHistBounds)       //lint:allow hotpathalloc setup-phase registry lookup, amortized across the run
	var fs *faultState
	if e.Plan.Enabled() {
		fs = newFaultState(e.Plan, e.Obs, e.Metrics, n) //lint:allow hotpathalloc setup phase: fault state preallocates its round buffers
	}

	for r := 1; r <= maxRounds; r++ {
		if observing {
			e.Obs.Emit(obs.Event{Kind: obs.KindRoundStart, Round: int32(r)})
		}
		// Phase 0 (faults only): advance the crash schedule so down nodes
		// are frozen — not stepped, not sending, not receiving — for the
		// whole round.
		var down []bool
		if fs != nil {
			fs.beginRound(r)
			down = fs.down
		}
		// Phase 1: coin flips and send/receive commitment.
		e.step(r, actions, outgoing, workers, down)
		roundSenders, roundBits := 0, 0
		for v := 0; v < n; v++ {
			if actions[v] == Send {
				if outgoing[v].NBits > budget {
					return nil, budgetError(v, r, outgoing[v].NBits, budget) //lint:allow hotpathalloc error path terminates the run
				}
				roundSenders++
				roundBits += outgoing[v].NBits
				if observing {
					e.Obs.Emit(obs.Event{Kind: obs.KindSend, Round: int32(r), Node: int32(v), A: int64(outgoing[v].NBits)})
				}
			}
		}
		res.Messages += roundSenders
		res.Bits += roundBits
		sendersHist.Observe(int64(roundSenders))
		bitsHist.Observe(int64(roundBits))

		// Phase 2: the adversary fixes the topology knowing the actions.
		g := e.Adv.Topology(r, actions) //lint:allow hotpathalloc adversaries own their per-round topology allocation budget
		if g == nil || g.N() != n {
			return nil, fmt.Errorf("dynet: adversary returned topology over %v nodes, want %d", gN(g), n) //lint:allow hotpathalloc error path terminates the run
		}
		if e.CheckConnectivity && !g.ConnectedInto(dist, queue) {
			return nil, fmt.Errorf("dynet: adversary returned disconnected topology in round %d", r) //lint:allow hotpathalloc error path terminates the run
		}
		if fs != nil && fs.edgeFaults {
			// The adversary met its connectivity obligation above; the
			// fault layer may now legitimately disconnect the round.
			g = fs.perturb(r, g)
		}

		// Phase 3: delivery to receiving nodes.
		if fs != nil && (fs.deliveryFaults || fs.nodeFaults) {
			fs.collect(r, g, actions, outgoing, inboxes)
		} else {
			collect(g, actions, outgoing, inboxes)
		}
		e.deliver(r, actions, inboxes, workers, down)

		if e.Trace != nil {
			e.Trace.record(r, g, actions, outgoing) //lint:allow hotpathalloc tracing is opt-in; the Cloner amortizes via arenas
		}

		if observing {
			for v, m := range e.Machines {
				if !decided[v] {
					if out, ok := m.Output(); ok {
						decided[v] = true
						e.Obs.Emit(obs.Event{Kind: obs.KindDecide, Round: int32(r), Node: int32(v), A: out})
					}
				}
			}
			e.Obs.Emit(obs.Event{Kind: obs.KindRoundEnd, Round: int32(r), A: int64(roundSenders), B: int64(roundBits)})
		}

		if terminated(e.Machines) {
			res.Rounds = r
			res.Done = true
			break
		}
	}

	res.Outputs = make([]int64, n) //lint:allow hotpathalloc post-loop result assembly
	res.Decided = make([]bool, n)  //lint:allow hotpathalloc post-loop result assembly
	for v, m := range e.Machines {
		res.Outputs[v], res.Decided[v] = m.Output()
	}
	if !res.Done && maxRounds < 1 {
		// The loop never ran, so the predicate was never evaluated; ask
		// once. (After a full loop the last in-loop evaluation is already
		// authoritative — machines do not change between rounds.)
		res.Done = terminated(e.Machines)
	}
	if e.Metrics != nil {
		e.Metrics.Counter("engine_rounds_total").Add(int64(res.Rounds))     //lint:allow hotpathalloc post-loop metrics flush
		e.Metrics.Counter("engine_messages_total").Add(int64(res.Messages)) //lint:allow hotpathalloc post-loop metrics flush
		e.Metrics.Counter("engine_bits_total").Add(int64(res.Bits))         //lint:allow hotpathalloc post-loop metrics flush
	}
	return res, nil
}

// RoundHistBounds buckets per-round sender and bit totals geometrically;
// shared so merged sweep registries agree on one bucket layout.
var RoundHistBounds = []int64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536}

func gN(g *graph.Graph) interface{} {
	if g == nil {
		return "nil"
	}
	return g.N()
}

// AllDecided is the default termination predicate: every node has output.
func AllDecided(ms []Machine) bool {
	for _, m := range ms {
		if _, ok := m.Output(); !ok {
			return false
		}
	}
	return true
}

// NodeDecided returns a termination predicate that holds once node v has
// output — the CFLOOD termination condition for source v.
func NodeDecided(v int) func([]Machine) bool {
	return func(ms []Machine) bool {
		_, ok := ms[v].Output()
		return ok
	}
}

// step runs the commitment phase. down, when non-nil, marks crashed
// nodes: their machines are not stepped (a crash freezes state) and they
// commit to a silent Receive so the adversary and the accounting see no
// send from them.
//
//lint:hotpath
func (e *Engine) step(r int, actions []Action, outgoing []Message, workers int, down []bool) {
	n := len(e.Machines)
	if workers <= 1 {
		for v := 0; v < n; v++ {
			if down != nil && down[v] {
				actions[v], outgoing[v] = Receive, Message{}
				continue
			}
			actions[v], outgoing[v] = e.Machines[v].Step(r) //lint:allow hotpathalloc machines own their per-step allocation budget (pinned by AllocsPerRun tests)
			outgoing[v].From = v
		}
		return
	}
	parallelFor(n, workers, func(v int) { //lint:allow hotpathalloc parallel path trades goroutine allocations for wall clock; sequential path is the zero-alloc baseline
		if down != nil && down[v] {
			actions[v], outgoing[v] = Receive, Message{}
			return
		}
		actions[v], outgoing[v] = e.Machines[v].Step(r) //lint:allow hotpathalloc machines own their per-step allocation budget (pinned by AllocsPerRun tests)
		outgoing[v].From = v
	})
}

// collect builds each receiving node's inbox: the messages of its sending
// neighbors, ordered by sender id. Adjacency lists are sorted ascending, so
// the inbox comes out ordered already; sortByFrom is a pure-safety pass
// that costs one comparison per message on that sorted input.
func collect(g *graph.Graph, actions []Action, outgoing []Message, inboxes [][]Message) {
	for v := range inboxes {
		inbox := inboxes[v][:0]
		if actions[v] == Receive {
			for _, u := range g.Adj(v) {
				if actions[u] == Send {
					inbox = append(inbox, outgoing[u])
				}
			}
			sortByFrom(inbox)
		}
		inboxes[v] = inbox
	}
}

// sortByFrom sorts messages by sender id with an in-place insertion sort:
// O(k) on the already-ascending inboxes the engine assembles, and free of
// the closure allocation sort.Slice would pay per node per round.
func sortByFrom(msgs []Message) {
	for i := 1; i < len(msgs); i++ {
		if msgs[i-1].From <= msgs[i].From {
			continue
		}
		m := msgs[i]
		j := i
		for j > 0 && msgs[j-1].From > m.From {
			msgs[j] = msgs[j-1]
			j--
		}
		msgs[j] = m
	}
}

// deliver hands each receiving node its inbox. down, when non-nil, marks
// crashed nodes, which are skipped: a crashed node hears nothing.
//
//lint:hotpath
func (e *Engine) deliver(r int, actions []Action, inboxes [][]Message, workers int, down []bool) {
	n := len(e.Machines)
	if workers <= 1 {
		for v := 0; v < n; v++ {
			if actions[v] == Receive && !(down != nil && down[v]) {
				e.Machines[v].Deliver(r, inboxes[v]) //lint:allow hotpathalloc machines own their per-step allocation budget (pinned by AllocsPerRun tests)
			}
		}
		return
	}
	parallelFor(n, workers, func(v int) { //lint:allow hotpathalloc parallel path trades goroutine allocations for wall clock; sequential path is the zero-alloc baseline
		if actions[v] == Receive && !(down != nil && down[v]) {
			e.Machines[v].Deliver(r, inboxes[v]) //lint:allow hotpathalloc machines own their per-step allocation budget (pinned by AllocsPerRun tests)
		}
	})
}

// parallelFor runs fn(i) for i in [0, n) across the given number of
// goroutines, splitting the index space into contiguous chunks.
func parallelFor(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
