package dynet

import (
	"strings"
	"testing"

	"dyndiam/internal/bitio"
	"dyndiam/internal/graph"
	"dyndiam/internal/rng"
)

// relayMachine is a minimal test protocol: a node that holds the token
// sends it with probability 1/2 each round; other nodes receive. A node
// decides (outputs 1) as soon as it holds the token. Node inputs: Input=1
// marks the initial token holder.
type relayMachine struct {
	cfg     Config
	has     bool
	sending bool
}

type relayProtocol struct{}

func (relayProtocol) Name() string { return "test/relay" }

func (relayProtocol) NewMachine(cfg Config) Machine {
	return &relayMachine{cfg: cfg, has: cfg.Input == 1}
}

func (m *relayMachine) Step(r int) (Action, Message) {
	m.sending = m.has && m.cfg.Coins.At(m.cfg.ID, r).Bool()
	if !m.sending {
		return Receive, Message{}
	}
	var w bitio.Writer
	w.WriteUvarint(uint64(m.cfg.ID))
	return Send, Message{Payload: w.Bytes(), NBits: w.Len()}
}

func (m *relayMachine) Deliver(r int, msgs []Message) {
	if len(msgs) > 0 {
		m.has = true
	}
}

func (m *relayMachine) Output() (int64, bool) {
	if m.has {
		return 1, true
	}
	return 0, false
}

// hogMachine violates the bit budget on purpose.
type hogMachine struct{ budget int }

type hogProtocol struct{}

func (hogProtocol) Name() string                { return "test/hog" }
func (hogProtocol) NewMachine(c Config) Machine { return &hogMachine{budget: c.Budget} }

func (m *hogMachine) Step(r int) (Action, Message) {
	nbits := m.budget + 1
	return Send, Message{Payload: make([]byte, (nbits+7)/8), NBits: nbits}
}
func (m *hogMachine) Deliver(int, []Message) {}
func (m *hogMachine) Output() (int64, bool)  { return 0, false }

func tokenInputs(n, holder int) []int64 {
	in := make([]int64, n)
	in[holder] = 1
	return in
}

func TestRelayFloodsLine(t *testing.T) {
	const n = 16
	ms := NewMachines(relayProtocol{}, n, tokenInputs(n, 0), 7, nil)
	e := &Engine{Machines: ms, Adv: Static(graph.Line(n)), CheckConnectivity: true, Workers: 1}
	res, err := e.Run(2000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatalf("token did not reach all nodes in 2000 rounds")
	}
	for v, d := range res.Decided {
		if !d {
			t.Errorf("node %d undecided", v)
		}
	}
	if res.Rounds < n-1 {
		t.Errorf("token traversed a %d-line in %d rounds (< n-1)", n, res.Rounds)
	}
	if res.Messages == 0 || res.Bits == 0 {
		t.Error("no message accounting recorded")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	const n = 64
	run := func(workers int) *Result {
		ms := NewMachines(relayProtocol{}, n, tokenInputs(n, 3), 99, nil)
		src := rng.New(5)
		adv := AdversaryFunc(func(r int, _ []Action) *graph.Graph {
			return graph.RandomConnected(n, n/2, src.Split(uint64(r)))
		})
		e := &Engine{Machines: ms, Adv: adv, Workers: workers}
		res, err := e.Run(500)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	par := run(8)
	if seq.Rounds != par.Rounds || seq.Messages != par.Messages || seq.Bits != par.Bits {
		t.Fatalf("parallel execution diverged: seq=%+v par=%+v", seq, par)
	}
	for v := range seq.Outputs {
		if seq.Outputs[v] != par.Outputs[v] || seq.Decided[v] != par.Decided[v] {
			t.Fatalf("node %d output differs between sequential and parallel", v)
		}
	}
}

func TestBudgetViolationDetected(t *testing.T) {
	ms := NewMachines(hogProtocol{}, 4, nil, 1, nil)
	e := &Engine{Machines: ms, Adv: Static(graph.Line(4)), Workers: 1}
	_, err := e.Run(5)
	if err == nil || !strings.Contains(err.Error(), "bit budget") {
		t.Fatalf("budget violation not detected: err = %v", err)
	}
}

func TestConnectivityViolationDetected(t *testing.T) {
	ms := NewMachines(relayProtocol{}, 4, tokenInputs(4, 0), 1, nil)
	e := &Engine{
		Machines:          ms,
		Adv:               Static(graph.New(4)), // edgeless: disconnected
		CheckConnectivity: true,
		Workers:           1,
	}
	_, err := e.Run(5)
	if err == nil || !strings.Contains(err.Error(), "disconnected") {
		t.Fatalf("connectivity violation not detected: err = %v", err)
	}
}

func TestNodeDecidedPredicate(t *testing.T) {
	const n = 8
	ms := NewMachines(relayProtocol{}, n, tokenInputs(n, 0), 3, nil)
	e := &Engine{
		Machines:   ms,
		Adv:        Static(graph.Line(n)),
		Workers:    1,
		Terminated: NodeDecided(1),
	}
	res, err := e.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("node 1 never decided")
	}
	// Node 1 is adjacent to the source; termination must come well before
	// the token can cross the whole line.
	if res.Decided[n-1] && res.Rounds < n-1 {
		t.Error("far end decided impossibly early")
	}
}

func TestTraceRecords(t *testing.T) {
	const n = 6
	ms := NewMachines(relayProtocol{}, n, tokenInputs(n, 0), 3, nil)
	tr := &Trace{KeepTopologies: true}
	e := &Engine{Machines: ms, Adv: Static(graph.Ring(n)), Workers: 1, Trace: tr}
	res, err := e.Run(200)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Stats) != res.Rounds {
		t.Fatalf("trace has %d rounds, result says %d", len(tr.Stats), res.Rounds)
	}
	tops := tr.Topologies()
	for i, g := range tops {
		if g.M() != n {
			t.Errorf("round %d: recorded ring has %d edges, want %d", i+1, g.M(), n)
		}
	}
	totalBits := 0
	for _, st := range tr.Stats {
		totalBits += st.Bits
		if st.Senders < 0 || st.Senders > n {
			t.Errorf("round %d: %d senders", st.Round, st.Senders)
		}
	}
	if totalBits != res.Bits {
		t.Errorf("trace bits %d != result bits %d", totalBits, res.Bits)
	}
}

func TestBudgetScalesLogarithmically(t *testing.T) {
	if Budget(1000) >= Budget(1000000) {
		t.Error("budget must grow with N")
	}
	// Budget is Θ(log N): doubling N adds a constant number of bits.
	delta := Budget(2048) - Budget(1024)
	if delta != 8 {
		t.Errorf("budget delta per doubling = %d, want 8", delta)
	}
}

func TestEmptyEngine(t *testing.T) {
	e := &Engine{Adv: Static(graph.New(0))}
	res, err := e.Run(10)
	if err != nil || !res.Done {
		t.Fatalf("empty engine: res=%+v err=%v", res, err)
	}
}

func TestSendersDoNotReceive(t *testing.T) {
	// Two adjacent nodes that both always send must never receive and so
	// never learn the other's token.
	ms := []Machine{
		&alwaysSend{id: 0},
		&alwaysSend{id: 1},
	}
	e := &Engine{Machines: ms, Adv: Static(graph.Line(2)), Workers: 1}
	if _, err := e.Run(50); err != nil {
		t.Fatal(err)
	}
	for i, m := range ms {
		if m.(*alwaysSend).got {
			t.Errorf("node %d received a message while always sending", i)
		}
	}
}

type alwaysSend struct {
	id  int
	got bool
}

func (m *alwaysSend) Step(r int) (Action, Message) {
	return Send, Message{Payload: []byte{byte(m.id)}, NBits: 8}
}
func (m *alwaysSend) Deliver(int, []Message) { m.got = true }
func (m *alwaysSend) Output() (int64, bool)  { return 0, false }

func BenchmarkEngineSequentialLine(b *testing.B) {
	benchEngine(b, 1)
}

func BenchmarkEngineParallelLine(b *testing.B) {
	benchEngine(b, 8)
}

func benchEngine(b *testing.B, workers int) {
	const n = 512
	g := graph.Line(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms := NewMachines(relayProtocol{}, n, tokenInputs(n, 0), uint64(i), nil)
		e := &Engine{Machines: ms, Adv: Static(g), Workers: workers}
		if _, err := e.Run(200); err != nil {
			b.Fatal(err)
		}
	}
}
