package dynet

import (
	"dyndiam/internal/faults"
	"dyndiam/internal/graph"
	"dyndiam/internal/obs"
)

// Interned fault-event names, resolved once so the injection hot path
// never touches the interner lock.
var (
	faultNameDrop    = obs.Intern("drop")
	faultNameDup     = obs.Intern("dup")
	faultNameCorrupt = obs.Intern("corrupt")
	faultNameCrash   = obs.Intern("crash")
	faultNameRejoin  = obs.Intern("rejoin")
	faultNameEdgeCut = obs.Intern("edge_cut")
)

// faultState is the per-execution scratch of an engine running with a
// fault Plan: the down-node mask, the perturbed-topology arena, and the
// pre-resolved metric handles. It exists only when Plan.Enabled() — the
// nil-plan round loop never touches it, keeping the clean path on the
// zero-allocation contract pinned by the alloc regression tests.
type faultState struct {
	plan *faults.Plan
	sink obs.Sink

	nodeFaults     bool
	edgeFaults     bool
	deliveryFaults bool

	down      []bool
	perturbed graph.Graph // arena reused across rounds by CopyFrom

	cDrop, cDup, cCorrupt  *obs.Counter
	cCrash, cRejoin        *obs.Counter
	cDownRounds, cEdgesCut *obs.Counter
}

// newFaultState builds the scratch for one execution. Counters are
// created eagerly (nil-safe when metrics are off) so every faulty run
// exports the full fault-counter family, fired or not.
func newFaultState(plan *faults.Plan, sink obs.Sink, metrics *obs.Registry, n int) *faultState {
	fs := &faultState{
		plan:           plan,
		sink:           sink,
		nodeFaults:     plan.HasNodeFaults(),
		edgeFaults:     plan.HasEdgeFaults(),
		deliveryFaults: plan.HasDeliveryFaults(),
		cDrop:          metrics.Counter("faults_dropped_total"),
		cDup:           metrics.Counter("faults_duplicated_total"),
		cCorrupt:       metrics.Counter("faults_corrupted_total"),
		cCrash:         metrics.Counter("faults_crashes_total"),
		cRejoin:        metrics.Counter("faults_rejoins_total"),
		cDownRounds:    metrics.Counter("faults_down_node_rounds_total"),
		cEdgesCut:      metrics.Counter("faults_edges_cut_total"),
	}
	if fs.nodeFaults {
		fs.down = make([]bool, n)
	}
	return fs
}

// emit sends one fault event when an observer is attached. All fault
// emissions happen on the coordinator goroutine (beginRound, perturb,
// and collect are never parallelized), matching the Sink contract.
func (fs *faultState) emit(name obs.Key, r, node, peer int, detail int64) {
	if fs.sink == nil {
		return
	}
	fs.sink.Emit(obs.Event{
		Kind:  obs.KindFault,
		Round: int32(r),
		Node:  int32(node),
		A:     int64(peer),
		B:     detail,
		Name:  name,
	})
}

// beginRound advances the crash schedule to round r, emitting crash and
// rejoin transitions. It must be called before the step phase so down
// nodes are frozen for the whole round.
func (fs *faultState) beginRound(r int) {
	if !fs.nodeFaults {
		return
	}
	for v := range fs.down {
		d := fs.plan.Down(r, v)
		if d != fs.down[v] {
			fs.down[v] = d
			if d {
				fs.cCrash.Add(1)
				fs.emit(faultNameCrash, r, v, -1, 0)
			} else {
				fs.cRejoin.Add(1)
				fs.emit(faultNameRejoin, r, v, -1, 0)
			}
		}
		if d {
			fs.cDownRounds.Add(1)
		}
	}
}

// perturb applies the round's edge cuts to a scratch copy of the
// adversary's topology and returns it. The adversary's own graph is
// checked for the model's connectivity obligation before this runs; the
// perturbed graph may legitimately be disconnected — that is the fault.
func (fs *faultState) perturb(r int, g *graph.Graph) *graph.Graph {
	fs.perturbed.CopyFrom(g)
	n := g.N()
	for u := 0; u < n; u++ {
		for _, v := range g.Adj(u) {
			if int32(u) < v && fs.plan.CutEdge(r, u, int(v)) {
				fs.perturbed.RemoveEdge(u, int(v))
				fs.cEdgesCut.Add(1)
				fs.emit(faultNameEdgeCut, r, u, int(v), 0)
			}
		}
	}
	return &fs.perturbed
}

// collect is the faulty twin of collect: it assembles each receiving
// node's inbox while applying per-delivery drops, duplications, and bit
// corruptions, and skips down receivers entirely (their messages are
// lost to the crash, not to the delivery plan).
func (fs *faultState) collect(r int, g *graph.Graph, actions []Action, outgoing []Message, inboxes [][]Message) {
	for v := range inboxes {
		inbox := inboxes[v][:0]
		if actions[v] == Receive && !(fs.down != nil && fs.down[v]) {
			for _, u := range g.Adj(v) {
				if actions[u] != Send {
					continue
				}
				d := fs.plan.Delivery(r, int(u), v, outgoing[u].NBits)
				if d.Drop {
					fs.cDrop.Add(1)
					fs.emit(faultNameDrop, r, v, int(u), 0)
					continue
				}
				msg := outgoing[u]
				if d.FlipBit >= 0 {
					msg = corruptCopy(msg, d.FlipBit)
					fs.cCorrupt.Add(1)
					fs.emit(faultNameCorrupt, r, v, int(u), int64(d.FlipBit))
				}
				inbox = append(inbox, msg)
				if d.Dup {
					inbox = append(inbox, msg)
					fs.cDup.Add(1)
					fs.emit(faultNameDup, r, v, int(u), 0)
				}
			}
			sortByFrom(inbox)
		}
		inboxes[v] = inbox
	}
}

// corruptCopy returns msg with bit flipped in a private copy of the
// payload, so the sender's buffer — shared by every other receiver —
// stays intact. Corruption is rare, so the copy allocates per fault
// rather than complicating the engine's arena story.
func corruptCopy(msg Message, bit int) Message {
	p := append([]byte(nil), msg.Payload...) //lint:allow hotpathalloc corruption is rare; the copy is the documented per-fault cost
	if byteIdx := bit / 8; byteIdx < len(p) {
		p[byteIdx] ^= 1 << uint(bit%8)
	}
	msg.Payload = p
	return msg
}
