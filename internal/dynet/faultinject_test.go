package dynet

import (
	"bytes"
	"reflect"
	"testing"

	"dyndiam/internal/faults"
	"dyndiam/internal/graph"
	"dyndiam/internal/obs"
	"dyndiam/internal/rng"
)

// probeMachine records exactly what the engine does to it: Step calls per
// round, delivered messages (with private payload snapshots), and a
// running checksum. It always sends a two-byte payload, so every edge
// carries a message every round.
type probeMachine struct {
	id      int
	n       int
	steps   map[int]int // round -> Step calls
	inboxes map[int][][]byte
}

func newProbe(id, n int) *probeMachine {
	return &probeMachine{id: id, n: n, steps: map[int]int{}, inboxes: map[int][][]byte{}}
}

func (m *probeMachine) Step(r int) (Action, Message) {
	m.steps[r]++
	if (r+m.id)%2 == 0 {
		return Send, Message{Payload: []byte{0xAA, byte(m.id)}, NBits: 16}
	}
	return Receive, Message{}
}

func (m *probeMachine) Deliver(r int, msgs []Message) {
	for _, msg := range msgs {
		m.inboxes[r] = append(m.inboxes[r], append([]byte(nil), msg.Payload...))
	}
}

func (m *probeMachine) Output() (int64, bool) { return 0, false }

func probeEngine(n int, plan *faults.Plan) (*Engine, []*probeMachine) {
	probes := make([]*probeMachine, n)
	ms := make([]Machine, n)
	for v := 0; v < n; v++ {
		probes[v] = newProbe(v, n)
		ms[v] = probes[v]
	}
	e := &Engine{
		Machines:   ms,
		Adv:        Static(graph.Complete(n)),
		Workers:    1,
		Plan:       plan,
		Terminated: func([]Machine) bool { return false },
	}
	return e, probes
}

func mustFaultPlan(t *testing.T, s faults.Spec) *faults.Plan {
	t.Helper()
	p, err := faults.NewPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFaultGoldenEquivalence is the zero-overhead golden test: an engine
// carrying an all-zero-rate Plan must behave byte-for-byte like one with
// no Plan at all — identical serialized traces, identical event streams,
// deep-equal metric registries — sequentially and in parallel.
func TestFaultGoldenEquivalence(t *testing.T) {
	const n, seed = 18, 77
	run := func(plan *faults.Plan, workers int) ([]byte, []obs.Event, []obs.MetricPoint, *Result) {
		ms := NewMachines(chaosProtocol{}, n, nil, seed, nil)
		src := rng.New(seed ^ 0xABCD)
		adv := AdversaryFunc(func(r int, _ []Action) *graph.Graph {
			return graph.RandomConnected(n, 7, src.Split(uint64(r)))
		})
		tr := &Trace{KeepTopologies: true}
		ring := obs.NewRing(1 << 16)
		reg := obs.NewRegistry()
		e := &Engine{Machines: ms, Adv: adv, Workers: workers,
			CheckConnectivity: true, Trace: tr, Obs: ring, Metrics: reg, Plan: plan}
		res, err := e.Run(200)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, tr, n); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), ring.Events(), reg.Snapshot(), res
	}
	for _, workers := range []int{1, 4} {
		trNil, evNil, regNil, resNil := run(nil, workers)
		trZero, evZero, regZero, resZero := run(mustFaultPlan(t, faults.Spec{Seed: 123}), workers)
		if !bytes.Equal(trNil, trZero) {
			t.Errorf("workers=%d: zero-rate plan changed the serialized trace", workers)
		}
		if !reflect.DeepEqual(evNil, evZero) {
			t.Errorf("workers=%d: zero-rate plan changed the event stream", workers)
		}
		if !reflect.DeepEqual(regNil, regZero) {
			t.Errorf("workers=%d: zero-rate plan changed the metric registry (%v vs %v)", workers, regNil, regZero)
		}
		if !reflect.DeepEqual(resNil, resZero) {
			t.Errorf("workers=%d: zero-rate plan changed the result", workers)
		}
	}
}

// TestCrashFreezesNode pins the crash semantics: during a scheduled
// outage the node's Step is never called, it sends nothing, hears
// nothing, and messages addressed to it are lost; after rejoin it
// resumes from its frozen state.
func TestCrashFreezesNode(t *testing.T) {
	const n, down = 4, 2
	plan := mustFaultPlan(t, faults.Spec{
		Outages: []faults.Outage{{Node: down, From: 5, Until: 9}},
	})
	e, probes := probeEngine(n, plan)
	if _, err := e.Run(14); err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= 14; r++ {
		inWindow := r >= 5 && r <= 9
		if got := probes[down].steps[r]; (got == 0) != inWindow {
			t.Errorf("round %d: down node Step called %d times (window=%v)", r, got, inWindow)
		}
		if inWindow && len(probes[down].inboxes[r]) != 0 {
			t.Errorf("round %d: down node received %d messages", r, len(probes[down].inboxes[r]))
		}
		for v := 0; v < n; v++ {
			if v == down {
				continue
			}
			if got := probes[v].steps[r]; got != 1 {
				t.Errorf("round %d: up node %d stepped %d times", r, v, got)
			}
			// On even rounds node `down` (id 2) would send; receivers on
			// odd ids receive that round. During the window its payload
			// must be absent from every inbox.
			if inWindow {
				for _, payload := range probes[v].inboxes[r] {
					if payload[1] == byte(down) {
						t.Errorf("round %d: node %d received from down node", r, v)
					}
				}
			}
		}
	}
}

// TestDropAllSilencesDelivery: Drop=1 kills every message copy, while the
// engine still counts the sends (the sender committed and paid the bits).
func TestDropAllSilencesDelivery(t *testing.T) {
	e, probes := probeEngine(6, mustFaultPlan(t, faults.Spec{Drop: 1}))
	res, err := e.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages == 0 {
		t.Fatal("no messages sent at all")
	}
	for v, p := range probes {
		for r, msgs := range p.inboxes {
			if len(msgs) != 0 {
				t.Errorf("node %d round %d: received %d messages under Drop=1", v, r, len(msgs))
			}
		}
	}
}

// TestDupDeliversTwice: Dup=1 doubles every surviving copy, back to back.
func TestDupDeliversTwice(t *testing.T) {
	e, probes := probeEngine(6, mustFaultPlan(t, faults.Spec{Dup: 1}))
	if _, err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	saw := false
	for v, p := range probes {
		for r, msgs := range p.inboxes {
			if len(msgs)%2 != 0 {
				t.Errorf("node %d round %d: odd inbox size %d under Dup=1", v, r, len(msgs))
			}
			for i := 0; i+1 < len(msgs); i += 2 {
				saw = true
				if !bytes.Equal(msgs[i], msgs[i+1]) {
					t.Errorf("node %d round %d: duplicate pair differs", v, r)
				}
			}
		}
	}
	if !saw {
		t.Fatal("no deliveries observed")
	}
}

// TestCorruptionCopiesPayload: with Corrupt=1 every receiver sees a
// one-bit-flipped copy, flips are per-receiver independent, and the
// sender's shared buffer is never mutated.
func TestCorruptionCopiesPayload(t *testing.T) {
	e, probes := probeEngine(6, mustFaultPlan(t, faults.Spec{Corrupt: 1}))
	if _, err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	checked := 0
	for v, p := range probes {
		for r, msgs := range p.inboxes {
			for _, payload := range msgs {
				// Reconstruct the sender's original bytes: first byte 0xAA,
				// second the sender id; exactly one bit must differ.
				sender := -1
				for cand := 0; cand < 6; cand++ {
					orig := []byte{0xAA, byte(cand)}
					if diff := bitDiff(orig, payload); diff == 1 {
						sender = cand
						break
					}
				}
				if sender < 0 {
					t.Fatalf("node %d round %d: payload %x is not a one-bit corruption of any sender", v, r, payload)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no deliveries observed")
	}
}

func bitDiff(a, b []byte) int {
	if len(a) != len(b) {
		return -1
	}
	d := 0
	for i := range a {
		x := a[i] ^ b[i]
		for x != 0 {
			d += int(x & 1)
			x >>= 1
		}
	}
	return d
}

// TestEdgeCutAllSilencesDelivery: EdgeCut=1 removes every edge after the
// adversary's connectivity obligation is checked — the run proceeds
// (no connectivity error) but nothing is delivered.
func TestEdgeCutAllSilencesDelivery(t *testing.T) {
	e, probes := probeEngine(6, mustFaultPlan(t, faults.Spec{EdgeCut: 1}))
	e.CheckConnectivity = true
	if _, err := e.Run(10); err != nil {
		t.Fatalf("edge cuts must not trip the adversary connectivity check: %v", err)
	}
	for v, p := range probes {
		for r, msgs := range p.inboxes {
			if len(msgs) != 0 {
				t.Errorf("node %d round %d: received %d messages under EdgeCut=1", v, r, len(msgs))
			}
		}
	}
}

// TestFaultCountersMatchEvents: every injected fault increments its
// counter and emits one KindFault event with the matching name.
func TestFaultCountersMatchEvents(t *testing.T) {
	plan := mustFaultPlan(t, faults.Spec{
		Seed: 9, Drop: 0.2, Dup: 0.2, Corrupt: 0.2, Crash: 0.05, MeanDown: 3, EdgeCut: 0.1,
	})
	const n = 8
	ring := obs.NewRing(1 << 18)
	reg := obs.NewRegistry()
	e, _ := probeEngine(n, plan)
	e.Obs = ring
	e.Metrics = reg
	if _, err := e.Run(60); err != nil {
		t.Fatal(err)
	}
	events := map[string]int64{}
	for _, ev := range ring.Events() {
		if ev.Kind == obs.KindFault {
			events[ev.Name.String()]++
		}
	}
	for counter, event := range map[string]string{
		"faults_dropped_total":    "drop",
		"faults_duplicated_total": "dup",
		"faults_corrupted_total":  "corrupt",
		"faults_crashes_total":    "crash",
		"faults_rejoins_total":    "rejoin",
		"faults_edges_cut_total":  "edge_cut",
	} {
		if got, want := reg.Counter(counter).Value(), events[event]; got != want {
			t.Errorf("%s = %d but %d %q events", counter, got, want, event)
		}
	}
	if reg.Counter("faults_dropped_total").Value() == 0 {
		t.Error("no drops injected at rate 0.2 over 60 complete-graph rounds")
	}
	if reg.Counter("faults_crashes_total").Value() == 0 {
		t.Error("no crashes injected at rate 0.05 over 60 rounds")
	}
	if down := reg.Counter("faults_down_node_rounds_total").Value(); down < reg.Counter("faults_crashes_total").Value() {
		t.Errorf("down-node-rounds %d < crashes %d", down, reg.Counter("faults_crashes_total").Value())
	}
}

// TestFaultyRunDeterministicAcrossWorkers: a fully faulted execution is
// still bit-identical between sequential and parallel engines.
func TestFaultyRunDeterministicAcrossWorkers(t *testing.T) {
	const n, seed = 16, 5
	run := func(workers int) *Result {
		plan := mustFaultPlan(t, faults.Spec{
			Seed: 31, Drop: 0.1, Dup: 0.1, Corrupt: 0.1, Crash: 0.03, MeanDown: 4, EdgeCut: 0.05,
		})
		ms := NewMachines(chaosProtocol{}, n, nil, seed, nil)
		src := rng.New(seed ^ 0xABCD)
		adv := AdversaryFunc(func(r int, _ []Action) *graph.Graph {
			return graph.RandomConnected(n, 5, src.Split(uint64(r)))
		})
		e := &Engine{Machines: ms, Adv: adv, Workers: workers, CheckConnectivity: true, Plan: plan}
		res, err := e.Run(200)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(1), run(6); !reflect.DeepEqual(a, b) {
		t.Errorf("faulty runs diverge across workers: %+v vs %+v", a, b)
	}
}
