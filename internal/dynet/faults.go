package dynet

import "dyndiam/internal/rng"

// Junk is a fault-injection machine: it sends adversarially random payloads
// (within the bit budget) on a coin-driven schedule and never decides.
// Protocol tests drop one or more Junk machines into a network to verify
// that message decoders tolerate arbitrary bytes — a malformed message must
// be ignored, never panic or corrupt state.
//
// Junk is exported from dynet (rather than duplicated per test package)
// because every protocol's robustness test needs it.
type Junk struct {
	coins  *rng.Source
	budget int
	// SendPermille is the per-round probability (in thousandths) of
	// sending junk instead of receiving; default 500.
	sendPermille int
}

// JunkProtocol builds Junk machines for every node.
type JunkProtocol struct {
	// SendPermille configures all machines (default 500).
	SendPermille int
}

// Name implements Protocol.
func (JunkProtocol) Name() string { return "dynet/junk" }

// NewMachine implements Protocol.
func (p JunkProtocol) NewMachine(cfg Config) Machine {
	return NewJunk(cfg, p.SendPermille)
}

// NewJunk returns one junk machine for the node described by cfg.
func NewJunk(cfg Config, sendPermille int) *Junk {
	if sendPermille <= 0 {
		sendPermille = 500
	}
	return &Junk{
		coins:        cfg.Coins.Split('j', 'u', 'n', 'k'),
		budget:       cfg.Budget,
		sendPermille: sendPermille,
	}
}

// Step implements Machine: with the configured probability it emits a
// payload of uniformly random bits and random length up to the budget.
func (j *Junk) Step(r int) (Action, Message) {
	if !j.coins.Prob(float64(j.sendPermille) / 1000) {
		return Receive, Message{}
	}
	nbits := 1 + j.coins.Intn(j.budget)
	payload := make([]byte, (nbits+7)/8)
	for i := range payload {
		payload[i] = byte(j.coins.Uint64())
	}
	return Send, Message{Payload: payload, NBits: nbits}
}

// Deliver implements Machine (junk machines ignore everything).
func (j *Junk) Deliver(int, []Message) {}

// Output implements Machine: junk machines never decide.
func (j *Junk) Output() (int64, bool) { return 0, false }

// WithJunk replaces the machines at the given node ids with junk senders,
// returning the modified slice (in place) for engine construction.
func WithJunk(ms []Machine, cfgs []Config, ids ...int) []Machine {
	for _, id := range ids {
		ms[id] = NewJunk(cfgs[id], 0)
	}
	return ms
}

// Configs reconstructs the per-node Configs NewMachines would have used,
// so fault-injection helpers can rebuild individual machines.
func Configs(n int, inputs []int64, seed uint64, extra map[string]int64) []Config {
	root := rng.New(seed)
	budget := Budget(n)
	out := make([]Config, n)
	for v := 0; v < n; v++ {
		var in int64
		if inputs != nil {
			in = inputs[v]
		}
		out[v] = Config{
			N: n, ID: v, Input: in,
			Coins:  root.Split(uint64(v) + 1),
			Budget: budget,
			Extra:  extra,
		}
	}
	return out
}
