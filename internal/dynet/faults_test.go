package dynet

import (
	"testing"

	"dyndiam/internal/graph"
)

func TestJunkStaysWithinBudget(t *testing.T) {
	cfgs := Configs(4, nil, 1, nil)
	j := NewJunk(cfgs[0], 900)
	for r := 1; r <= 500; r++ {
		act, msg := j.Step(r)
		if act == Send {
			if msg.NBits < 1 || msg.NBits > cfgs[0].Budget {
				t.Fatalf("round %d: junk nbits %d outside (0, %d]", r, msg.NBits, cfgs[0].Budget)
			}
			if len(msg.Payload) != (msg.NBits+7)/8 {
				t.Fatalf("round %d: payload length mismatch", r)
			}
		}
	}
	if _, ok := j.Output(); ok {
		t.Fatal("junk machine decided")
	}
}

func TestJunkProtocolRunsInEngine(t *testing.T) {
	const n = 8
	ms := NewMachines(JunkProtocol{}, n, nil, 3, nil)
	e := &Engine{Machines: ms, Adv: Static(graph.Ring(n)), Workers: 1,
		Terminated: func([]Machine) bool { return false }}
	res, err := e.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages == 0 {
		t.Error("junk protocol sent nothing")
	}
}

func TestWithJunkReplaces(t *testing.T) {
	const n = 6
	inputs := make([]int64, n)
	ms := NewMachines(relayProtocol{}, n, inputs, 1, nil)
	cfgs := Configs(n, inputs, 1, nil)
	WithJunk(ms, cfgs, 2, 4)
	if _, ok := ms[2].(*Junk); !ok {
		t.Error("node 2 not replaced")
	}
	if _, ok := ms[4].(*Junk); !ok {
		t.Error("node 4 not replaced")
	}
	if _, ok := ms[1].(*Junk); ok {
		t.Error("node 1 replaced unexpectedly")
	}
}

func TestConfigsMatchNewMachines(t *testing.T) {
	// Machines built from Configs draw the same coins as NewMachines'.
	const n = 5
	inputs := []int64{1, 0, 0, 0, 0}
	cfgs := Configs(n, inputs, 42, nil)
	ms1 := NewMachines(relayProtocol{}, n, inputs, 42, nil)
	ms2 := make([]Machine, n)
	for v := 0; v < n; v++ {
		ms2[v] = relayProtocol{}.NewMachine(cfgs[v])
	}
	run := func(ms []Machine) *Result {
		e := &Engine{Machines: ms, Adv: Static(graph.Line(n)), Workers: 1}
		res, err := e.Run(300)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(ms1), run(ms2)
	if r1.Rounds != r2.Rounds || r1.Messages != r2.Messages || r1.Bits != r2.Bits {
		t.Fatalf("Configs-built machines diverged: %+v vs %+v", r1, r2)
	}
}
