package dynet

import (
	"fmt"
	"math/bits"

	"dyndiam/internal/bitkernel"
	"dyndiam/internal/graph"
)

// This file is the engine-level fast path for CFLOOD-style knowledge-set
// protocols. When every machine is a BitFlooder with one agreed flood
// shape, a run's entire observable behavior is a deterministic function
// of (informed set, round number): informed nodes send the constant
// token, uninformed nodes adopt it from any sending neighbor, and the
// source confirms once its diameter bound elapses. The engine can
// therefore replace the per-message round loop with bitkernel.FloodEngine
// word-ORs and reconcile the machines once at the end — bit-identical to
// Run (the differential and fuzz tests pin this), at a fraction of the
// cost. Adversaries implementing DeltaAdversary feed the kernel edge
// diffs against one mutable CSR snapshot instead of full topologies.

// FloodSpec describes one machine's view of a flood execution. Specs of
// all machines must agree on Source and D for the fast path to engage.
type FloodSpec struct {
	// Source is the flood source node id; D is the diameter bound after
	// which the source confirms.
	Source int
	D      int
	// Token is the flooded value and TokenBits its exact wire size; both
	// are meaningful only when Informed.
	Token     int64
	TokenBits int
	// Informed reports whether this machine already holds the token;
	// Done whether it has already confirmed.
	Informed bool
	Done     bool
}

// BitFlooder is implemented by machines whose execution the flood fast
// path can reproduce: deterministic always-send token dissemination with
// a source that confirms at its diameter bound (flood.CFlood). FloodSpec
// exposes the machine's current flood state; SyncFlood writes back the
// state an equivalent message-passing execution of `rounds` rounds would
// have produced, after which Output must answer as if that execution had
// happened.
type BitFlooder interface {
	Machine
	FloodSpec() FloodSpec
	SyncFlood(informed bool, token int64, rounds int)
}

// FloodStop selects a flood run's termination predicate. The zero value
// stops when node 0 can output; use StopNode or StopAll.
type FloodStop struct {
	node int
	all  bool
}

// StopNode stops once node v can output — for the CFLOOD source this is
// its confirmation, the NodeDecided(v) predicate of the message path.
func StopNode(v int) FloodStop { return FloodStop{node: v} }

// StopAll stops once every node can output (the AllDecided predicate).
func StopAll() FloodStop { return FloodStop{all: true} }

// RunFlood executes up to maxRounds rounds of a flood protocol, using the
// word-packed fast path when the machines qualify (TryFloodFast) and
// falling back to the message-passing Run otherwise. The stop condition
// is derived from stop — e.Terminated is overwritten, not consulted. Both
// paths return bit-identical results.
func (e *Engine) RunFlood(maxRounds int, stop FloodStop) (*Result, error) {
	if res, ok, err := e.TryFloodFast(maxRounds, stop); ok {
		return res, err
	}
	if stop.all {
		e.Terminated = AllDecided
	} else {
		e.Terminated = NodeDecided(stop.node)
	}
	return e.Run(maxRounds)
}

// TryFloodFast attempts the word-packed flood fast path. ok reports
// whether the fast path engaged; when false, result and error are nil and
// the caller should fall back to Run. The fast path engages when:
//
//   - every machine implements BitFlooder and their specs agree on
//     (Source, D), with the source informed, no machine done, and all
//     informed machines holding one token;
//   - no observer features that watch individual rounds or messages are
//     attached (Obs, Trace, fault Plan) — Metrics is supported and filled
//     with exactly the values Run would produce;
//   - maxRounds >= 1 and the stop node is in range.
//
// Workers is ignored: the fast path is sequential, and sequential and
// parallel message-path execution are bit-identical anyway.
func (e *Engine) TryFloodFast(maxRounds int, stop FloodStop) (*Result, bool, error) {
	n := len(e.Machines)
	if n == 0 || maxRounds < 1 || e.Obs != nil || e.Trace != nil || e.Plan.Enabled() {
		return nil, false, nil
	}
	if !stop.all && (stop.node < 0 || stop.node >= n) {
		return nil, false, nil
	}
	var (
		src, d    int
		token     int64
		tokenBits int
		haveTok   bool
	)
	seed := bitkernel.New(n)
	firstInformed := -1
	for v, m := range e.Machines {
		bf, ok := m.(BitFlooder)
		if !ok {
			return nil, false, nil
		}
		s := bf.FloodSpec()
		if v == 0 {
			src, d = s.Source, s.D
		} else if s.Source != src || s.D != d {
			return nil, false, nil
		}
		if s.Done {
			return nil, false, nil
		}
		if s.Informed {
			if !haveTok {
				token, tokenBits, haveTok = s.Token, s.TokenBits, true
				firstInformed = v
			} else if s.Token != token || s.TokenBits != tokenBits {
				return nil, false, nil
			}
			seed.Set(v)
		}
	}
	if src < 0 || src >= n || !seed.Test(src) {
		return nil, false, nil
	}

	budget := e.Budget
	if budget == 0 {
		budget = Budget(n)
	}
	sendersHist := e.Metrics.Histogram("engine_round_senders", RoundHistBounds)
	bitsHist := e.Metrics.Histogram("engine_round_bits", RoundHistBounds)
	if tokenBits > budget {
		// Run would reject the lowest-id sender in round 1, before
		// consulting the adversary; every sender carries the same
		// constant token, so round 1 decides.
		return nil, true, budgetError(firstInformed, 1, tokenBits, budget)
	}

	topo := newFloodTopo(e, n)
	cfg := bitkernel.FloodConfig{
		N: n, Source: src, D: d, TokenBits: tokenBits,
		StopAll: stop.all, StopNode: stop.node, Seed: seed,
	}
	if e.Metrics != nil {
		cfg.OnRound = func(_, senders, payloadBits int) {
			sendersHist.Observe(int64(senders))
			bitsHist.Observe(int64(payloadBits))
		}
	}
	var fe bitkernel.FloodEngine
	fres, err := fe.Run(cfg, topo, maxRounds)
	if err != nil {
		return nil, true, err
	}

	res := &Result{
		Rounds:   fres.Rounds,
		Done:     fres.Done,
		Messages: fres.Messages,
		Bits:     fres.Bits,
		Outputs:  make([]int64, n),
		Decided:  make([]bool, n),
	}
	for v, m := range e.Machines {
		bf := m.(BitFlooder)
		bf.SyncFlood(fres.Informed.Test(v), token, fres.Rounds)
		res.Outputs[v], res.Decided[v] = m.Output()
	}
	if e.Metrics != nil {
		e.Metrics.Counter("engine_rounds_total").Add(int64(res.Rounds))
		e.Metrics.Counter("engine_messages_total").Add(int64(res.Messages))
		e.Metrics.Counter("engine_bits_total").Add(int64(res.Bits))
		e.Metrics.Counter("engine_floodfast_runs_total").Add(1)
		e.Metrics.Counter("engine_floodfast_diff_ops_total").Add(int64(topo.diffOps))
	}
	return res, true, nil
}

// floodTopo adapts the engine's Adversary to bitkernel.Topologies: it
// rebuilds the per-round action commitments from the informed set (every
// informed node sends), validates and connectivity-checks topologies like
// Run does, and — when the adversary is a DeltaAdversary — maintains one
// mutable CSR snapshot that each round's edge-diff script mutates in
// place instead of materializing a fresh graph.
type floodTopo struct {
	adv     Adversary
	delta   DeltaAdversary // non-nil when adv implements it
	n       int
	actions []Action
	prev    bitkernel.Bits // informed snapshot behind actions
	snap    *graph.Graph   // delta path's mutable round topology
	diff    EdgeDiff
	diffOps int
	check   bool // connectivity checking, from Engine.CheckConnectivity
	dist    []int32
	queue   []int32
}

func newFloodTopo(e *Engine, n int) *floodTopo {
	t := &floodTopo{
		adv:     e.Adv,
		n:       n,
		actions: make([]Action, n),
		prev:    bitkernel.New(n),
		check:   e.CheckConnectivity,
	}
	if da, ok := e.Adv.(DeltaAdversary); ok {
		t.delta = da
		t.snap = graph.New(n)
	}
	if t.check {
		t.dist = make([]int32, n)
		t.queue = make([]int32, n)
	}
	return t
}

// Round implements bitkernel.Topologies. Only nodes that became informed
// since the previous round change commitment, so action maintenance costs
// O(n/64 + newly informed) per round.
//
//lint:hotpath
func (t *floodTopo) Round(r int, informed bitkernel.Bits) (*graph.Graph, error) {
	for wi, w := range informed {
		changed := w ^ t.prev[wi]
		for changed != 0 {
			v := wi<<6 + bits.TrailingZeros64(changed)
			changed &= changed - 1
			t.actions[v] = Send
		}
		t.prev[wi] = w
	}
	var g *graph.Graph
	if t.delta != nil && r > 1 {
		t.diff.Reset()
		t.delta.Diff(r, t.actions, &t.diff) //lint:allow hotpathalloc adversaries own their per-round script allocation budget
		t.diffOps += t.diff.Len()
		t.diff.Apply(t.snap)
		g = t.snap
	} else {
		g = t.adv.Topology(r, t.actions) //lint:allow hotpathalloc adversaries own their per-round topology allocation budget
		if t.delta != nil && g != nil && g.N() == t.n {
			// Base round: seed the mutable snapshot the later diffs edit.
			t.snap.CopyFrom(g)
			g = t.snap
		}
	}
	if g == nil || g.N() != t.n {
		return nil, fmt.Errorf("dynet: adversary returned topology over %v nodes, want %d", gN(g), t.n) //lint:allow hotpathalloc error path terminates the run
	}
	if t.check && !g.ConnectedInto(t.dist, t.queue) {
		return nil, fmt.Errorf("dynet: adversary returned disconnected topology in round %d", r) //lint:allow hotpathalloc error path terminates the run
	}
	return g, nil
}
