package dynet

import (
	"fmt"
	"math/bits"

	"dyndiam/internal/bitkernel"
	"dyndiam/internal/graph"
	"dyndiam/internal/obs"
)

// Interned event names of the fast path's aggregate stream, resolved once
// at package init so emission sites stay allocation-free.
var (
	// keyFloodFast names the span wrapping one fast-path run: begin at
	// t=0 with A = node count, end at t = final round with A = informed
	// count (-1 when the run errored).
	keyFloodFast = obs.Intern("flood_fast")
	// keyDiffOps names the per-round KindCustom sample of delta-adversary
	// edge-diff operations (A = ops applied this round).
	keyDiffOps = obs.Intern("diff_ops")
)

// This file is the engine-level fast path for CFLOOD-style knowledge-set
// protocols. When every machine is a BitFlooder with one agreed flood
// shape, a run's entire observable behavior is a deterministic function
// of (informed set, round number): informed nodes send the constant
// token, uninformed nodes adopt it from any sending neighbor, and the
// source confirms once its diameter bound elapses. The engine can
// therefore replace the per-message round loop with bitkernel.FloodEngine
// word-ORs and reconcile the machines once at the end — bit-identical to
// Run (the differential and fuzz tests pin this), at a fraction of the
// cost. Adversaries implementing DeltaAdversary feed the kernel edge
// diffs against one mutable CSR snapshot instead of full topologies.

// FloodSpec describes one machine's view of a flood execution. Specs of
// all machines must agree on Source and D for the fast path to engage.
type FloodSpec struct {
	// Source is the flood source node id; D is the diameter bound after
	// which the source confirms.
	Source int
	D      int
	// Token is the flooded value and TokenBits its exact wire size; both
	// are meaningful only when Informed.
	Token     int64
	TokenBits int
	// Informed reports whether this machine already holds the token;
	// Done whether it has already confirmed.
	Informed bool
	Done     bool
}

// BitFlooder is implemented by machines whose execution the flood fast
// path can reproduce: deterministic always-send token dissemination with
// a source that confirms at its diameter bound (flood.CFlood). FloodSpec
// exposes the machine's current flood state; SyncFlood writes back the
// state an equivalent message-passing execution of `rounds` rounds would
// have produced, after which Output must answer as if that execution had
// happened.
type BitFlooder interface {
	Machine
	FloodSpec() FloodSpec
	SyncFlood(informed bool, token int64, rounds int)
}

// FloodStop selects a flood run's termination predicate. The zero value
// stops when node 0 can output; use StopNode or StopAll.
type FloodStop struct {
	node int
	all  bool
}

// StopNode stops once node v can output — for the CFLOOD source this is
// its confirmation, the NodeDecided(v) predicate of the message path.
func StopNode(v int) FloodStop { return FloodStop{node: v} }

// StopAll stops once every node can output (the AllDecided predicate).
func StopAll() FloodStop { return FloodStop{all: true} }

// RunFlood executes up to maxRounds rounds of a flood protocol, using the
// word-packed fast path when the machines qualify (TryFloodFast) and
// falling back to the message-passing Run otherwise. The stop condition
// is derived from stop — e.Terminated is overwritten, not consulted. Both
// paths return bit-identical results and identical metric snapshots; an
// attached Obs receives the round-aggregated stream on the fast path and
// the per-message stream on the fallback.
//
// RunFlood is a hotpathalloc root: dynlint proves interprocedurally that
// the observed fast path emits its aggregate events without allocating,
// so attaching an Obs cannot regress the steady state the alloc tests pin.
//
//lint:hotpath
func (e *Engine) RunFlood(maxRounds int, stop FloodStop) (*Result, error) {
	if res, ok, err := e.TryFloodFast(maxRounds, stop); ok {
		return res, err
	}
	if stop.all {
		e.Terminated = AllDecided
	} else {
		e.Terminated = NodeDecided(stop.node) //lint:allow hotpathalloc one-time predicate construction before the run
	}
	return e.Run(maxRounds)
}

// TryFloodFast attempts the word-packed flood fast path. ok reports
// whether the fast path engaged; when false, result and error are nil and
// the caller should fall back to Run. The fast path engages when:
//
//   - every machine implements BitFlooder and their specs agree on
//     (Source, D), with the source informed, no machine done, and all
//     informed machines holding one token;
//   - no features that must watch individual messages are attached
//     (Trace, fault Plan). Metrics is supported and filled with exactly
//     the values Run would produce. Obs is supported in round-aggregated
//     mode: the kernel's per-round senders/bits/frontier/diff-ops
//     aggregates are emitted as preallocated events (KindRoundEnd,
//     KindFrontier, and a "diff_ops" KindCustom under delta adversaries),
//     sampled every ObsRoundStride rounds, inside a "flood_fast" span —
//     not the per-message KindSend stream, which would defeat the point
//     of the word-packed kernel;
//   - maxRounds >= 1 and the stop node is in range.
//
// Workers is ignored: the fast path is sequential, and sequential and
// parallel message-path execution are bit-identical anyway.
//
//lint:hotpath
func (e *Engine) TryFloodFast(maxRounds int, stop FloodStop) (*Result, bool, error) {
	n := len(e.Machines)
	if n == 0 || maxRounds < 1 || e.Trace != nil || e.Plan.Enabled() {
		return nil, false, nil
	}
	if !stop.all && (stop.node < 0 || stop.node >= n) {
		return nil, false, nil
	}
	var (
		src, d    int
		token     int64
		tokenBits int
		haveTok   bool
	)
	seed := bitkernel.New(n) //lint:allow hotpathalloc setup phase, before the kernel loop
	firstInformed := -1
	for v, m := range e.Machines {
		bf, ok := m.(BitFlooder)
		if !ok {
			return nil, false, nil
		}
		s := bf.FloodSpec() //lint:allow hotpathalloc machines own their spec-encoding allocation budget (pinned by AllocsPerRun tests)
		if v == 0 {
			src, d = s.Source, s.D
		} else if s.Source != src || s.D != d {
			return nil, false, nil
		}
		if s.Done {
			return nil, false, nil
		}
		if s.Informed {
			if !haveTok {
				token, tokenBits, haveTok = s.Token, s.TokenBits, true
				firstInformed = v
			} else if s.Token != token || s.TokenBits != tokenBits {
				return nil, false, nil
			}
			seed.Set(v)
		}
	}
	if src < 0 || src >= n || !seed.Test(src) {
		return nil, false, nil
	}

	budget := e.Budget
	if budget == 0 {
		budget = Budget(n)
	}
	sendersHist := e.Metrics.Histogram("engine_round_senders", RoundHistBounds) //lint:allow hotpathalloc setup-phase registry lookup, amortized across the run
	bitsHist := e.Metrics.Histogram("engine_round_bits", RoundHistBounds)       //lint:allow hotpathalloc setup-phase registry lookup, amortized across the run
	if tokenBits > budget {
		// Run would reject the lowest-id sender in round 1, before
		// consulting the adversary; every sender carries the same
		// constant token, so round 1 decides.
		return nil, true, budgetError(firstInformed, 1, tokenBits, budget) //lint:allow hotpathalloc error path terminates the run
	}

	topo := newFloodTopo(e, n) //lint:allow hotpathalloc setup phase: the topology adapter preallocates its round buffers
	cfg := bitkernel.FloodConfig{
		N: n, Source: src, D: d, TokenBits: tokenBits,
		StopAll: stop.all, StopNode: stop.node, Seed: seed,
	}
	if e.Metrics != nil {
		cfg.OnRound = func(_, senders, payloadBits int) { //lint:allow hotpathalloc setup-phase closure construction; the body is allocation-free
			sendersHist.Observe(int64(senders))
			bitsHist.Observe(int64(payloadBits))
		}
	}
	if e.Obs != nil {
		// Round-aggregated observability: sample the kernel's per-round
		// aggregates every stride rounds (the final round always emits, so
		// short runs and termination rounds never vanish from the stream).
		// Event structs are fixed-size values into a preallocated sink —
		// the emission itself is allocation-free, proven interprocedurally
		// by hotpathalloc from the RunFlood root.
		stride := e.ObsRoundStride
		if stride < 1 {
			stride = 1
		}
		sink := e.Obs
		isDelta := topo.delta != nil
		cfg.OnRoundDone = func(s bitkernel.RoundStats) { //lint:allow hotpathalloc setup-phase closure construction; the body is allocation-free
			if s.R%stride != 0 && !s.Done && s.R != maxRounds {
				return
			}
			r := int32(s.R)
			sink.Emit(obs.Event{Kind: obs.KindRoundEnd, Round: r, A: int64(s.Senders), B: int64(s.Bits)})
			sink.Emit(obs.Event{Kind: obs.KindFrontier, Round: r, A: int64(s.Newly), B: int64(s.Informed)})
			if isDelta {
				sink.Emit(obs.Event{Kind: obs.KindCustom, Round: r, A: int64(topo.lastDiff), Name: keyDiffOps})
			}
		}
	}
	runSpan := obs.BeginSpan(e.Obs, keyFloodFast, 0, int32(src), 0, int64(n))
	var fe bitkernel.FloodEngine
	fres, err := fe.Run(cfg, topo, maxRounds)
	if err != nil {
		runSpan.End(int32(fres.Rounds), -1)
		return nil, true, err
	}

	res := &Result{ //lint:allow hotpathalloc post-kernel result assembly
		Rounds:   fres.Rounds,
		Done:     fres.Done,
		Messages: fres.Messages,
		Bits:     fres.Bits,
		Outputs:  make([]int64, n), //lint:allow hotpathalloc post-kernel result assembly
		Decided:  make([]bool, n),  //lint:allow hotpathalloc post-kernel result assembly
	}
	for v, m := range e.Machines {
		bf := m.(BitFlooder)
		bf.SyncFlood(fres.Informed.Test(v), token, fres.Rounds)
		res.Outputs[v], res.Decided[v] = m.Output()
	}
	if e.Metrics != nil {
		e.Metrics.Counter("engine_rounds_total").Add(int64(res.Rounds))               //lint:allow hotpathalloc post-kernel metrics flush
		e.Metrics.Counter("engine_messages_total").Add(int64(res.Messages))           //lint:allow hotpathalloc post-kernel metrics flush
		e.Metrics.Counter("engine_bits_total").Add(int64(res.Bits))                   //lint:allow hotpathalloc post-kernel metrics flush
		e.Metrics.Counter("engine_floodfast_runs_total").Add(1)                       //lint:allow hotpathalloc post-kernel metrics flush
		e.Metrics.Counter("engine_floodfast_diff_ops_total").Add(int64(topo.diffOps)) //lint:allow hotpathalloc post-kernel metrics flush
	}
	runSpan.End(int32(fres.Rounds), int64(fres.InformedCount))
	return res, true, nil
}

// floodTopo adapts the engine's Adversary to bitkernel.Topologies: it
// rebuilds the per-round action commitments from the informed set (every
// informed node sends), validates and connectivity-checks topologies like
// Run does, and — when the adversary is a DeltaAdversary — maintains one
// mutable CSR snapshot that each round's edge-diff script mutates in
// place instead of materializing a fresh graph.
type floodTopo struct {
	adv      Adversary
	delta    DeltaAdversary // non-nil when adv implements it
	n        int
	actions  []Action
	prev     bitkernel.Bits // informed snapshot behind actions
	snap     *graph.Graph   // delta path's mutable round topology
	diff     EdgeDiff
	diffOps  int
	lastDiff int  // diff ops applied by the most recent round (obs sample)
	check    bool // connectivity checking, from Engine.CheckConnectivity
	dist     []int32
	queue    []int32
}

func newFloodTopo(e *Engine, n int) *floodTopo {
	t := &floodTopo{
		adv:     e.Adv,
		n:       n,
		actions: make([]Action, n),
		prev:    bitkernel.New(n),
		check:   e.CheckConnectivity,
	}
	if da, ok := e.Adv.(DeltaAdversary); ok {
		t.delta = da
		t.snap = graph.New(n)
	}
	if t.check {
		t.dist = make([]int32, n)
		t.queue = make([]int32, n)
	}
	return t
}

// Round implements bitkernel.Topologies. Only nodes that became informed
// since the previous round change commitment, so action maintenance costs
// O(n/64 + newly informed) per round.
//
//lint:hotpath
func (t *floodTopo) Round(r int, informed bitkernel.Bits) (*graph.Graph, error) {
	for wi, w := range informed {
		changed := w ^ t.prev[wi]
		for changed != 0 {
			v := wi<<6 + bits.TrailingZeros64(changed)
			changed &= changed - 1
			t.actions[v] = Send
		}
		t.prev[wi] = w
	}
	var g *graph.Graph
	if t.delta != nil && r > 1 {
		t.diff.Reset()
		t.delta.Diff(r, t.actions, &t.diff) //lint:allow hotpathalloc adversaries own their per-round script allocation budget
		t.lastDiff = t.diff.Len()
		t.diffOps += t.lastDiff
		t.diff.Apply(t.snap)
		g = t.snap
	} else {
		t.lastDiff = 0
		g = t.adv.Topology(r, t.actions) //lint:allow hotpathalloc adversaries own their per-round topology allocation budget
		if t.delta != nil && g != nil && g.N() == t.n {
			// Base round: seed the mutable snapshot the later diffs edit.
			t.snap.CopyFrom(g)
			g = t.snap
		}
	}
	if g == nil || g.N() != t.n {
		return nil, fmt.Errorf("dynet: adversary returned topology over %v nodes, want %d", gN(g), t.n) //lint:allow hotpathalloc error path terminates the run
	}
	if t.check && !g.ConnectedInto(t.dist, t.queue) {
		return nil, fmt.Errorf("dynet: adversary returned disconnected topology in round %d", r) //lint:allow hotpathalloc error path terminates the run
	}
	return g, nil
}
