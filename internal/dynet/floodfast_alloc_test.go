package dynet_test

import (
	"testing"

	"dyndiam/internal/dynet"
	"dyndiam/internal/graph"
	"dyndiam/internal/obs"
	"dyndiam/internal/protocols/flood"
)

// TestFloodFastAllocsIndependentOfRounds pins the fast path's "no
// per-message allocation" claim end to end: against an allocation-free
// adversary, a run's heap allocations do not grow with the number of
// rounds executed (they cover only per-run setup — machines, buffers,
// the Result).
func TestFloodFastAllocsIndependentOfRounds(t *testing.T) {
	n := 64
	g := graph.New(n)
	for v := 0; v < n-1; v++ {
		g.AddEdge(v, v+1) // a line: flooding takes n-1 rounds
	}
	adv := dynet.AdversaryFunc(func(int, []dynet.Action) *graph.Graph { return g })
	inputs := make([]int64, n)
	inputs[0] = 7
	extra := map[string]int64{flood.ExtraD: 1 << 20} // source never confirms

	measure := func(maxRounds int) float64 {
		return testing.AllocsPerRun(10, func() {
			e := &dynet.Engine{
				Machines: dynet.NewMachines(flood.CFlood{}, n, inputs, 1, extra),
				Adv:      adv,
			}
			res, ok, err := e.TryFloodFast(maxRounds, dynet.StopAll())
			if err != nil || !ok {
				t.Fatalf("fast path: ok=%v err=%v", ok, err)
			}
			if res.Done {
				t.Fatal("run terminated; rounds not exercised")
			}
		})
	}
	short, long := measure(50), measure(800)
	if long > short+2 {
		t.Fatalf("allocations grow with round count: %v at 50 rounds, %v at 800", short, long)
	}
}

// TestFloodFastObservedAllocsIndependentOfRounds pins the tentpole claim
// of round-aggregated observability: with an Obs ring and a Metrics
// registry attached (created once, outside the measured run, as a serving
// layer would), the fast path's per-run allocations still do not grow
// with the number of rounds — event emission into the preallocated ring
// is allocation-free even at stride 1.
func TestFloodFastObservedAllocsIndependentOfRounds(t *testing.T) {
	n := 64
	g := graph.New(n)
	for v := 0; v < n-1; v++ {
		g.AddEdge(v, v+1)
	}
	adv := dynet.AdversaryFunc(func(int, []dynet.Action) *graph.Graph { return g })
	inputs := make([]int64, n)
	inputs[0] = 7
	extra := map[string]int64{flood.ExtraD: 1 << 20} // source never confirms

	reg := obs.NewRegistry()
	// Warm the registry so the measured runs hit existing handles, the way
	// a long-lived serving process would.
	for _, name := range []string{
		"engine_rounds_total", "engine_messages_total", "engine_bits_total",
		"engine_floodfast_runs_total", "engine_floodfast_diff_ops_total",
	} {
		reg.Counter(name)
	}
	reg.Histogram("engine_round_senders", dynet.RoundHistBounds)
	reg.Histogram("engine_round_bits", dynet.RoundHistBounds)
	ring := obs.NewRing(4096)

	measure := func(maxRounds int) float64 {
		return testing.AllocsPerRun(10, func() {
			ring.Reset()
			e := &dynet.Engine{
				Machines: dynet.NewMachines(flood.CFlood{}, n, inputs, 1, extra),
				Adv:      adv,
				Obs:      ring,
				Metrics:  reg,
			}
			res, ok, err := e.TryFloodFast(maxRounds, dynet.StopAll())
			if err != nil || !ok {
				t.Fatalf("fast path: ok=%v err=%v", ok, err)
			}
			if res.Done {
				t.Fatal("run terminated; rounds not exercised")
			}
		})
	}
	short, long := measure(50), measure(800)
	if long > short+2 {
		t.Fatalf("observed allocations grow with round count: %v at 50 rounds, %v at 800", short, long)
	}
}
