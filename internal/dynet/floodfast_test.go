package dynet_test

// Differential tests for the flood fast path: on seeded random dynamic
// graphs, TryFloodFast must produce bit-identical results, machine
// states, and metrics to the message-passing Engine.Run for CFLOOD —
// across stop modes, known and unknown diameter bounds, full and
// delta-encoded adversaries, and round caps that cut the run short.

import (
	"reflect"
	"strings"
	"testing"

	"dyndiam/internal/dynet"
	"dyndiam/internal/graph"
	"dyndiam/internal/obs"
	"dyndiam/internal/protocols/flood"
	"dyndiam/internal/rng"
)

// randomAdversary returns a fresh adversary producing the same topology
// sequence for every instance built from the same parameters — the
// property that lets the message path and the fast path run against
// independent instances.
func randomAdversary(n, extra int, seed uint64) dynet.Adversary {
	src := rng.New(seed)
	return dynet.AdversaryFunc(func(r int, _ []dynet.Action) *graph.Graph {
		return graph.RandomConnected(n, extra, src.Split(uint64(r)))
	})
}

func newFloodMachines(n int, seed uint64, extraD int64) []dynet.Machine {
	inputs := make([]int64, n)
	inputs[0] = 42
	extra := map[string]int64{}
	if extraD > 0 {
		extra[flood.ExtraD] = extraD
	}
	return dynet.NewMachines(flood.CFlood{}, n, inputs, seed, extra)
}

type floodCase struct {
	n, extra  int
	seed      uint64
	extraD    int64 // 0 = unknown D (pessimistic N-1)
	maxRounds int
	stopNode  int // ignored when stopAll
	stopAll   bool
	delta     bool // drive the fast path through DeltaFrom
	metrics   bool
	connCheck bool
	observed  bool // attach an Obs ring to both engines
	stride    int  // fast path's ObsRoundStride (0 = every round)
}

func (tc floodCase) stop() dynet.FloodStop {
	if tc.stopAll {
		return dynet.StopAll()
	}
	return dynet.StopNode(tc.stopNode)
}

func (tc floodCase) terminated() func([]dynet.Machine) bool {
	if tc.stopAll {
		return dynet.AllDecided
	}
	return dynet.NodeDecided(tc.stopNode)
}

// runBothPaths executes one case on the message path and the fast path
// and cross-checks everything observable. It returns the fast result.
func runBothPaths(t *testing.T, tc floodCase) *dynet.Result {
	t.Helper()

	msMsg := newFloodMachines(tc.n, tc.seed, tc.extraD)
	var regMsg, regFast *obs.Registry
	if tc.metrics {
		regMsg, regFast = obs.NewRegistry(), obs.NewRegistry()
	}
	eMsg := &dynet.Engine{
		Machines:          msMsg,
		Adv:               randomAdversary(tc.n, tc.extra, tc.seed),
		Workers:           1,
		Metrics:           regMsg,
		CheckConnectivity: tc.connCheck,
	}
	if tc.observed {
		eMsg.Obs = obs.NewRing(1 << 12)
	}
	eMsg.Terminated = tc.terminated()
	wantRes, wantErr := eMsg.Run(tc.maxRounds)

	msFast := newFloodMachines(tc.n, tc.seed, tc.extraD)
	adv := randomAdversary(tc.n, tc.extra, tc.seed)
	if tc.delta {
		adv = dynet.DeltaFrom(adv)
	}
	eFast := &dynet.Engine{
		Machines:          msFast,
		Adv:               adv,
		Workers:           1,
		Metrics:           regFast,
		CheckConnectivity: tc.connCheck,
		ObsRoundStride:    tc.stride,
	}
	var fastRing *obs.Ring
	if tc.observed {
		fastRing = obs.NewRing(1 << 12)
		eFast.Obs = fastRing
	}
	gotRes, ok, gotErr := eFast.TryFloodFast(tc.maxRounds, tc.stop())
	if !ok {
		t.Fatalf("%+v: fast path declined", tc)
	}
	if tc.observed && fastRing.Len() == 0 {
		t.Fatalf("%+v: observed fast path emitted no events", tc)
	}
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("%+v: error mismatch: message %v, fast %v", tc, wantErr, gotErr)
	}
	if wantErr != nil {
		if wantErr.Error() != gotErr.Error() {
			t.Fatalf("%+v: error text mismatch: %q vs %q", tc, wantErr, gotErr)
		}
		return nil
	}
	if !reflect.DeepEqual(wantRes, gotRes) {
		t.Fatalf("%+v: result mismatch:\nmessage %+v\nfast    %+v", tc, wantRes, gotRes)
	}
	for v := range msMsg {
		if flood.Informed(msMsg[v]) != flood.Informed(msFast[v]) {
			t.Fatalf("%+v: node %d informed mismatch: message %v, fast %v",
				tc, v, flood.Informed(msMsg[v]), flood.Informed(msFast[v]))
		}
		wo, wok := msMsg[v].Output()
		go_, gok := msFast[v].Output()
		if wo != go_ || wok != gok {
			t.Fatalf("%+v: node %d output mismatch: message (%d,%v), fast (%d,%v)",
				tc, v, wo, wok, go_, gok)
		}
	}
	if tc.metrics {
		want := regMsg.Snapshot()
		got := regFast.Snapshot()
		// The fast path adds its own engine_floodfast_* counters on top
		// of the message path's metric set; everything else must match
		// point for point.
		filtered := got[:0]
		for _, p := range got {
			if !strings.HasPrefix(p.Name, "engine_floodfast_") {
				filtered = append(filtered, p)
			}
		}
		if !reflect.DeepEqual(want, []obs.MetricPoint(filtered)) {
			t.Fatalf("%+v: metrics mismatch:\nmessage %+v\nfast    %+v", tc, want, filtered)
		}
	}
	return gotRes
}

func TestFloodFastMatchesMessagePath(t *testing.T) {
	for _, n := range []int{2, 3, 5, 17, 64, 65, 257, 1000} {
		for trial := 0; trial < 3; trial++ {
			seed := uint64(n*1000 + trial)
			extra := trial
			for si := 0; si < 3; si++ {
				stopNode, stopAll := 0, false
				switch si {
				case 1:
					stopNode = n - 1
				case 2:
					stopAll = true
				}
				// Unknown D (pessimistic N-1), generous cap. Observed:
				// attaching an Obs must neither decline the fast path nor
				// perturb results or metrics.
				runBothPaths(t, floodCase{
					n: n, extra: extra, seed: seed, maxRounds: 2 * n,
					stopNode: stopNode, stopAll: stopAll, metrics: true, delta: si == 1,
					observed: true, stride: si,
				})
				// Known small D: the source may confirm before full
				// dissemination — both paths must agree on that too.
				runBothPaths(t, floodCase{
					n: n, extra: extra, seed: seed, extraD: 2, maxRounds: 2 * n,
					stopNode: stopNode, stopAll: stopAll, delta: si == 2, connCheck: si == 0,
				})
			}
			// Round cap cuts the run short: Done=false shape.
			runBothPaths(t, floodCase{
				n: n, extra: extra, seed: seed, maxRounds: 1,
				stopNode: n - 1, metrics: true,
			})
		}
	}
}

func TestFloodFastBudgetError(t *testing.T) {
	// A token too wide for the bit budget must fail identically on both
	// paths: same round, same node, same message.
	n := 8
	inputs := make([]int64, n)
	inputs[0] = 1 << 40
	mk := func() []dynet.Machine {
		return dynet.NewMachines(flood.CFlood{}, n, inputs, 1, nil)
	}
	msMsg := mk()
	eMsg := &dynet.Engine{Machines: msMsg, Adv: randomAdversary(n, 1, 9),
		Workers: 1, Budget: 16, Terminated: dynet.NodeDecided(0)}
	_, wantErr := eMsg.Run(4 * n)
	if wantErr == nil {
		t.Fatal("message path accepted an over-budget token")
	}
	eFast := &dynet.Engine{Machines: mk(), Adv: randomAdversary(n, 1, 9),
		Workers: 1, Budget: 16}
	res, ok, gotErr := eFast.TryFloodFast(4*n, dynet.StopNode(0))
	if !ok {
		t.Fatal("fast path declined")
	}
	if res != nil || gotErr == nil || gotErr.Error() != wantErr.Error() {
		t.Fatalf("budget error mismatch: message %q, fast (%v, %q)", wantErr, res, gotErr)
	}
}

func TestFloodFastDeclines(t *testing.T) {
	n := 6
	mk := func() *dynet.Engine {
		return &dynet.Engine{
			Machines: newFloodMachines(n, 5, 0),
			Adv:      randomAdversary(n, 1, 5),
			Workers:  1,
		}
	}
	cases := []struct {
		name string
		mut  func(e *dynet.Engine) (maxRounds int, stop dynet.FloodStop)
	}{
		{"trace", func(e *dynet.Engine) (int, dynet.FloodStop) {
			e.Trace = &dynet.Trace{}
			return 2 * n, dynet.StopNode(0)
		}},
		{"zero rounds", func(e *dynet.Engine) (int, dynet.FloodStop) {
			return 0, dynet.StopNode(0)
		}},
		{"stop node out of range", func(e *dynet.Engine) (int, dynet.FloodStop) {
			return 2 * n, dynet.StopNode(n)
		}},
		{"non-flooder machine", func(e *dynet.Engine) (int, dynet.FloodStop) {
			e.Machines = dynet.NewMachines(flood.PFlood{}, n, make([]int64, n), 5, nil)
			return 2 * n, dynet.StopNode(0)
		}},
	}
	for _, tc := range cases {
		e := mk()
		maxRounds, stop := tc.mut(e)
		if _, ok, err := e.TryFloodFast(maxRounds, stop); ok || err != nil {
			t.Fatalf("%s: fast path did not decline cleanly (ok=%v err=%v)", tc.name, ok, err)
		}
	}
	// RunFlood must still complete correctly through the fallback.
	e := mk()
	e.Trace = &dynet.Trace{}
	res, err := e.RunFlood(2*n, dynet.StopNode(0))
	if err != nil || !res.Done {
		t.Fatalf("fallback RunFlood: res=%+v err=%v", res, err)
	}
}

func TestRunFloodUsesFastPath(t *testing.T) {
	n := 32
	reg := obs.NewRegistry()
	e := &dynet.Engine{
		Machines: newFloodMachines(n, 3, 0),
		Adv:      randomAdversary(n, 2, 3),
		Metrics:  reg,
	}
	res, err := e.RunFlood(2*n, dynet.StopAll())
	if err != nil || !res.Done {
		t.Fatalf("RunFlood: res=%+v err=%v", res, err)
	}
	if got := reg.Counter("engine_floodfast_runs_total").Value(); got != 1 {
		t.Fatalf("engine_floodfast_runs_total = %d, want 1 (fast path not taken)", got)
	}
}

// TestFloodFastObservedAggregates pins the round-aggregated event stream's
// internal consistency at stride 1: the sampled round totals must add up to
// exactly the run's Result, the frontier must grow monotonically to the
// span's reported informed count, and diff_ops samples must reconcile with
// the engine_floodfast_diff_ops_total counter.
func TestFloodFastObservedAggregates(t *testing.T) {
	n := 64
	for _, delta := range []bool{false, true} {
		reg := obs.NewRegistry()
		ring := obs.NewRing(1 << 12)
		adv := randomAdversary(n, 2, 7)
		if delta {
			adv = dynet.DeltaFrom(adv)
		}
		e := &dynet.Engine{
			Machines: newFloodMachines(n, 7, 0),
			Adv:      adv,
			Metrics:  reg,
			Obs:      ring,
		}
		res, err := e.RunFlood(2*n, dynet.StopAll())
		if err != nil || !res.Done {
			t.Fatalf("delta=%v: res=%+v err=%v", delta, res, err)
		}
		if got := reg.Counter("engine_floodfast_runs_total").Value(); got != 1 {
			t.Fatalf("delta=%v: engine_floodfast_runs_total = %d, want 1 (observed run fell off the fast path)", delta, got)
		}

		events := ring.Events()
		if ring.Dropped() != 0 {
			t.Fatalf("delta=%v: ring dropped %d events", delta, ring.Dropped())
		}
		keyFloodFast := obs.Intern("flood_fast")
		keyDiffOps := obs.Intern("diff_ops")
		if ev := events[0]; ev.Kind != obs.KindSpanBegin || ev.Name != keyFloodFast || ev.A != int64(n) {
			t.Fatalf("delta=%v: first event is not the flood_fast span begin: %+v", delta, ev)
		}
		last := events[len(events)-1]
		if last.Kind != obs.KindSpanEnd || last.Name != keyFloodFast || last.Round != int32(res.Rounds) {
			t.Fatalf("delta=%v: last event is not the flood_fast span end at round %d: %+v", delta, res.Rounds, last)
		}

		var senders, bits, diffOps int64
		var roundEnds int
		prevInformed := int64(0)
		var lastFrontier int64
		for _, ev := range events {
			switch ev.Kind {
			case obs.KindRoundEnd:
				roundEnds++
				senders += ev.A
				bits += ev.B
			case obs.KindFrontier:
				if ev.B < prevInformed {
					t.Fatalf("delta=%v: frontier shrank: %+v after %d", delta, ev, prevInformed)
				}
				if ev.A > ev.B {
					t.Fatalf("delta=%v: newly > informed: %+v", delta, ev)
				}
				prevInformed = ev.B
				lastFrontier = ev.B
			case obs.KindCustom:
				if ev.Name == keyDiffOps {
					if !delta {
						t.Fatalf("diff_ops event from a non-delta adversary: %+v", ev)
					}
					diffOps += ev.A
				}
			}
		}
		if roundEnds != res.Rounds {
			t.Fatalf("delta=%v: %d round_end samples at stride 1, want %d", delta, roundEnds, res.Rounds)
		}
		if senders != int64(res.Messages) || bits != int64(res.Bits) {
			t.Fatalf("delta=%v: aggregates (%d senders, %d bits) != result (%d, %d)",
				delta, senders, bits, res.Messages, res.Bits)
		}
		if lastFrontier != int64(n) || last.A != lastFrontier {
			t.Fatalf("delta=%v: final frontier %d, span end arg %d, want both %d", delta, lastFrontier, last.A, n)
		}
		if delta {
			if want := reg.Counter("engine_floodfast_diff_ops_total").Value(); diffOps != want {
				t.Fatalf("diff_ops samples sum to %d, counter says %d", diffOps, want)
			}
		}
	}
}

// TestFloodFastObservedStride checks the sampling contract: with stride k
// only rounds r ≡ 0 (mod k) emit, except that the final round always does.
func TestFloodFastObservedStride(t *testing.T) {
	n, stride := 128, 5
	ring := obs.NewRing(1 << 12)
	e := &dynet.Engine{
		Machines:       newFloodMachines(n, 11, 0),
		Adv:            randomAdversary(n, 0, 11),
		Obs:            ring,
		ObsRoundStride: stride,
	}
	res, err := e.RunFlood(2*n, dynet.StopAll())
	if err != nil || !res.Done {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	sampled := map[int32]bool{}
	for _, ev := range ring.Events() {
		if ev.Kind != obs.KindRoundEnd {
			continue
		}
		sampled[ev.Round] = true
		if ev.Round%int32(stride) != 0 && ev.Round != int32(res.Rounds) {
			t.Fatalf("off-stride round %d sampled (stride %d, final %d)", ev.Round, stride, res.Rounds)
		}
	}
	if !sampled[int32(res.Rounds)] {
		t.Fatalf("final round %d not sampled", res.Rounds)
	}
	for r := stride; r < res.Rounds; r += stride {
		if !sampled[int32(r)] {
			t.Fatalf("on-stride round %d missing from samples", r)
		}
	}
}

func TestFloodFastDisconnectedTopologyError(t *testing.T) {
	n := 5
	disconnected := dynet.AdversaryFunc(func(r int, _ []dynet.Action) *graph.Graph {
		return graph.New(n) // no edges
	})
	run := func(fast bool) error {
		e := &dynet.Engine{
			Machines:          newFloodMachines(n, 2, 0),
			Adv:               disconnected,
			Workers:           1,
			CheckConnectivity: true,
		}
		if fast {
			_, ok, err := e.TryFloodFast(8, dynet.StopNode(0))
			if !ok {
				t.Fatal("fast path declined")
			}
			return err
		}
		e.Terminated = dynet.NodeDecided(0)
		_, err := e.Run(8)
		return err
	}
	wantErr, gotErr := run(false), run(true)
	if wantErr == nil || gotErr == nil || wantErr.Error() != gotErr.Error() {
		t.Fatalf("disconnected topology: message %v, fast %v", wantErr, gotErr)
	}
}

// FuzzFloodEquivalence drives randomized (n, topology seed, D bound, stop
// mode, round cap, delta encoding) tuples through both execution paths
// and requires bit-identical results and machine states.
func FuzzFloodEquivalence(f *testing.F) {
	f.Add(uint8(8), uint64(1), uint8(0), uint8(0), uint8(16), false)
	f.Add(uint8(64), uint64(7), uint8(3), uint8(1), uint8(128), true)
	f.Add(uint8(33), uint64(99), uint8(1), uint8(2), uint8(4), false)
	f.Fuzz(func(t *testing.T, rawN uint8, seed uint64, rawD, rawStop, rawMax uint8, delta bool) {
		n := int(rawN)%120 + 2
		maxRounds := int(rawMax)%(2*n) + 1
		tc := floodCase{
			n: n, extra: int(seed % 4), seed: seed,
			extraD:    int64(rawD) % int64(n),
			maxRounds: maxRounds,
			delta:     delta,
			metrics:   true,
			observed:  seed%2 == 0,
			stride:    int(rawMax % 5),
		}
		switch rawStop % 3 {
		case 1:
			tc.stopNode = n - 1
		case 2:
			tc.stopAll = true
		}
		runBothPaths(t, tc)
	})
}
