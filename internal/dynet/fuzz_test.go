package dynet

import (
	"testing"
	"testing/quick"

	"dyndiam/internal/graph"
	"dyndiam/internal/rng"
)

// chaosMachine drives the engine with protocol-shaped randomness: random
// send/receive choices, random (valid) payload sizes, decisions at a random
// round. It exists to fuzz engine invariants, not to compute anything.
type chaosMachine struct {
	cfg      Config
	coins    *rng.Source
	decideAt int
	decided  bool
	inboxes  int
}

type chaosProtocol struct{}

func (chaosProtocol) Name() string { return "test/chaos" }

func (chaosProtocol) NewMachine(cfg Config) Machine {
	coins := cfg.Coins.Split('c', 'h')
	return &chaosMachine{cfg: cfg, coins: coins, decideAt: 1 + coins.Intn(200)}
}

func (m *chaosMachine) Step(r int) (Action, Message) {
	if r >= m.decideAt {
		m.decided = true
	}
	if m.coins.Bool() {
		return Receive, Message{}
	}
	nbits := 1 + m.coins.Intn(m.cfg.Budget)
	payload := make([]byte, (nbits+7)/8)
	for i := range payload {
		payload[i] = byte(m.coins.Uint64())
	}
	return Send, Message{Payload: payload, NBits: nbits}
}

func (m *chaosMachine) Deliver(r int, msgs []Message) {
	m.inboxes += len(msgs)
	for _, msg := range msgs {
		if msg.From < 0 || msg.From >= m.cfg.N {
			panic("chaos: impossible sender id")
		}
		if msg.NBits > m.cfg.Budget {
			panic("chaos: over-budget message delivered")
		}
	}
}

func (m *chaosMachine) Output() (int64, bool) { return int64(m.inboxes), m.decided }

// checkEngineDeterminism drives arbitrary machines on arbitrary dynamic
// topologies and reports whether sequential and parallel execution
// produce bit-identical results. The chaos machines additionally panic
// if the engine ever delivers over-budget or mis-attributed messages.
func checkEngineDeterminism(t *testing.T, seed uint64, nRaw, extraRaw uint8) bool {
	t.Helper()
	n := int(nRaw%40) + 2
	extra := int(extraRaw % 60)
	run := func(workers int) *Result {
		ms := NewMachines(chaosProtocol{}, n, nil, seed, nil)
		src := rng.New(seed ^ 0xABCD)
		adv := AdversaryFunc(func(r int, _ []Action) *graph.Graph {
			return graph.RandomConnected(n, extra, src.Split(uint64(r)))
		})
		e := &Engine{Machines: ms, Adv: adv, Workers: workers, CheckConnectivity: true}
		res, err := e.Run(250)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(1)
	b := run(6)
	if a.Rounds != b.Rounds || a.Messages != b.Messages || a.Bits != b.Bits || a.Done != b.Done {
		return false
	}
	for v := range a.Outputs {
		if a.Outputs[v] != b.Outputs[v] || a.Decided[v] != b.Decided[v] {
			return false
		}
	}
	return true
}

// checkEngineAccounting verifies that message and bit counters equal the
// sum over rounds of senders' payloads, cross-checked through a trace.
func checkEngineAccounting(t *testing.T, seed uint64, nRaw uint8) {
	t.Helper()
	n := int(nRaw%40) + 3
	ms := NewMachines(chaosProtocol{}, n, nil, seed, nil)
	tr := &Trace{}
	e := &Engine{Machines: ms, Adv: Static(graph.Ring(n)), Workers: 1, Trace: tr}
	res, err := e.Run(150)
	if err != nil {
		t.Fatal(err)
	}
	var senders, bits int
	for _, st := range tr.Stats {
		senders += st.Senders
		bits += st.Bits
	}
	if senders != res.Messages || bits != res.Bits {
		t.Fatalf("seed %d n %d: trace (%d msgs, %d bits) != result (%d, %d)",
			seed, n, senders, bits, res.Messages, res.Bits)
	}
}

// TestEngineFuzzDeterminism is the quick-check entry point for the
// sequential-vs-parallel determinism property.
func TestEngineFuzzDeterminism(t *testing.T) {
	f := func(seed uint64, nRaw uint8, extraRaw uint8) bool {
		return checkEngineDeterminism(t, seed, nRaw, extraRaw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestEngineFuzzAccounting spot-checks the accounting property on fixed
// seeds (the fuzz target explores further).
func TestEngineFuzzAccounting(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		checkEngineAccounting(t, seed, 17) // nRaw 17 -> n = 20, the historical size
	}
}

// FuzzEngineDeterminism is the native fuzz target for the determinism
// property; CI runs it for a short smoke interval on every push.
func FuzzEngineDeterminism(f *testing.F) {
	f.Add(uint64(1), uint8(10), uint8(5))
	f.Add(uint64(0xDEAD), uint8(39), uint8(59))
	f.Add(uint64(42), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, extraRaw uint8) {
		if !checkEngineDeterminism(t, seed, nRaw, extraRaw) {
			t.Errorf("seed %d nRaw %d extraRaw %d: sequential and parallel executions diverge", seed, nRaw, extraRaw)
		}
	})
}

// FuzzEngineAccounting is the native fuzz target for trace/result
// accounting consistency.
func FuzzEngineAccounting(f *testing.F) {
	f.Add(uint64(0), uint8(17))
	f.Add(uint64(7), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint8) {
		checkEngineAccounting(t, seed, nRaw)
	})
}
