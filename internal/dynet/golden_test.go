package dynet

import (
	"testing"

	"dyndiam/internal/graph"
	"dyndiam/internal/rng"
)

// TestEngineGoldenResults pins the engine's observable behavior to values
// captured from the pre-CSR map-based implementation: the graph-core and
// zero-allocation engine rewrites must keep executions bit-identical for
// fixed seeds, in both sequential and parallel mode. A change to any number
// here means the refactor altered executions, not just their speed.
func TestEngineGoldenResults(t *testing.T) {
	golden := []struct {
		seed           uint64
		n, extra       int
		rounds         int
		messages       int
		bits           int
		done           bool
		outputChecksum int64
	}{
		{1, 12, 5, 197, 1195, 54386, true, 66009846},
		{0xDEAD, 41, 59, 197, 4094, 214866, true, 820196488},
		{42, 2, 0, 187, 178, 6258, true, 1000132},
		{7, 30, 17, 195, 2937, 142791, true, 435067539},
		{99, 23, 3, 196, 2308, 113285, true, 253029845},
	}
	for _, c := range golden {
		for _, workers := range []int{1, 6} {
			ms := NewMachines(chaosProtocol{}, c.n, nil, c.seed, nil)
			src := rng.New(c.seed ^ 0xABCD)
			adv := AdversaryFunc(func(r int, _ []Action) *graph.Graph {
				return graph.RandomConnected(c.n, c.extra, src.Split(uint64(r)))
			})
			e := &Engine{Machines: ms, Adv: adv, Workers: workers, CheckConnectivity: true}
			res, err := e.Run(250)
			if err != nil {
				t.Fatal(err)
			}
			sum := int64(0)
			for v := range res.Outputs {
				sum += res.Outputs[v] * int64(v+1)
				if res.Decided[v] {
					sum += int64(v) * 1000003
				}
			}
			if res.Rounds != c.rounds || res.Messages != c.messages ||
				res.Bits != c.bits || res.Done != c.done || sum != c.outputChecksum {
				t.Errorf("seed %d n %d extra %d workers %d: got (rounds %d, msgs %d, bits %d, done %v, sum %d), want (%d, %d, %d, %v, %d)",
					c.seed, c.n, c.extra, workers,
					res.Rounds, res.Messages, res.Bits, res.Done, sum,
					c.rounds, c.messages, c.bits, c.done, c.outputChecksum)
			}
		}
	}
}
