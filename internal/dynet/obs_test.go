package dynet

import (
	"reflect"
	"testing"

	"dyndiam/internal/graph"
	"dyndiam/internal/obs"
)

// TestEngineObserverEvents checks the engine's event stream: one
// RoundStart/RoundEnd pair per executed round, one Send per sending node
// with the message's bit size, and exactly one Decide per node, in the
// round its output first became available.
func TestEngineObserverEvents(t *testing.T) {
	const n = 8
	ms := NewMachines(relayProtocol{}, n, tokenInputs(n, 0), 7, nil)
	ring := obs.NewRing(1 << 16)
	reg := obs.NewRegistry()
	e := &Engine{Machines: ms, Adv: Static(graph.Line(n)), Workers: 1, Obs: ring, Metrics: reg}
	res, err := e.Run(2000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("flood did not finish")
	}
	if ring.Dropped() != 0 {
		t.Fatalf("ring dropped %d events; size the ring for the run", ring.Dropped())
	}

	round := int32(0)
	inRound := false
	sends, bits := 0, 0
	decided := map[int32]int32{}
	for _, ev := range ring.Events() {
		switch ev.Kind {
		case obs.KindRoundStart:
			if inRound || ev.Round != round+1 {
				t.Fatalf("round %d started out of order (in=%v)", ev.Round, inRound)
			}
			round, inRound = ev.Round, true
		case obs.KindRoundEnd:
			if !inRound || ev.Round != round {
				t.Fatalf("round %d ended out of order", ev.Round)
			}
			inRound = false
		case obs.KindSend:
			if ev.Round != round {
				t.Fatalf("send stamped round %d during round %d", ev.Round, round)
			}
			sends++
			bits += int(ev.A)
		case obs.KindDecide:
			if _, dup := decided[ev.Node]; dup {
				t.Fatalf("node %d decided twice", ev.Node)
			}
			decided[ev.Node] = ev.Round
		}
	}
	if inRound {
		t.Fatal("last round never ended")
	}
	if int(round) != res.Rounds {
		t.Fatalf("observed %d rounds, result says %d", round, res.Rounds)
	}
	if sends != res.Messages || bits != res.Bits {
		t.Fatalf("observed %d sends/%d bits, result says %d/%d", sends, bits, res.Messages, res.Bits)
	}
	// Node 0 holds the token (and so has output) before round 1; Decide
	// events mark transitions observed during the run, so it emits none.
	if len(decided) != n-1 {
		t.Fatalf("observed %d decides, want %d", len(decided), n-1)
	}
	if _, ok := decided[0]; ok {
		t.Fatal("pre-decided node 0 must not emit a Decide event")
	}

	for _, m := range []struct {
		name string
		want int64
	}{
		{"engine_rounds_total", int64(res.Rounds)},
		{"engine_messages_total", int64(res.Messages)},
		{"engine_bits_total", int64(res.Bits)},
	} {
		if got := reg.Counter(m.name).Value(); got != m.want {
			t.Errorf("%s = %d want %d", m.name, got, m.want)
		}
	}
	var hist obs.MetricPoint
	for _, p := range reg.Snapshot() {
		if p.Name == "engine_round_senders" {
			hist = p
		}
	}
	if hist.Count != int64(res.Rounds) {
		t.Fatalf("engine_round_senders observed %d rounds, want %d", hist.Count, res.Rounds)
	}
}

// TestEngineObserverDeterministic pins that attaching an observer does not
// perturb the execution: same seed, same result, and two observed runs
// produce identical event streams.
func TestEngineObserverDeterministic(t *testing.T) {
	const n = 16
	run := func(ring *obs.Ring) (*Result, []obs.Event) {
		ms := NewMachines(relayProtocol{}, n, tokenInputs(n, 2), 41, nil)
		e := &Engine{Machines: ms, Adv: Static(graph.Line(n)), Workers: 1}
		if ring != nil {
			e.Obs = ring
		}
		res, err := e.Run(2000)
		if err != nil {
			t.Fatal(err)
		}
		if ring == nil {
			return res, nil
		}
		return res, ring.Events()
	}
	plain, _ := run(nil)
	obsA, evA := run(obs.NewRing(1 << 16))
	_, evB := run(obs.NewRing(1 << 16))
	if plain.Rounds != obsA.Rounds || plain.Messages != obsA.Messages || plain.Bits != obsA.Bits {
		t.Fatalf("observer changed the execution: plain=%+v observed=%+v", plain, obsA)
	}
	if !reflect.DeepEqual(evA, evB) {
		t.Fatal("two observed runs emitted different event streams")
	}
}

// TestEngineRunWithRingAllocsDoNotScaleWithRounds extends the nil-observer
// allocation pin: with a preallocated ring sink attached, Run's allocation
// count must still be independent of the round count (the per-Run decided
// slice is the only observer-path allocation).
func TestEngineRunWithRingAllocsDoNotScaleWithRounds(t *testing.T) {
	const n = 48
	measure := func(rounds int) float64 {
		return testing.AllocsPerRun(5, func() {
			e := newPingEngine(n)
			e.Obs = obs.NewRing(1 << 10) // wraps mid-run; wrapping must not allocate
			if _, err := e.Run(rounds); err != nil {
				t.Fatal(err)
			}
		})
	}
	short := measure(20)
	long := measure(200)
	if long > short {
		t.Fatalf("observed Run allocations scale with rounds: %v allocs at 20 rounds, %v at 200", short, long)
	}
}

// TestTraceResetInvalidatesSnapshots is the regression test for the
// documented aliasing contract: snapshots are carved from the Trace's
// pooled arena, so Reset lets later recordings overwrite earlier
// topologies, and Graph.Clone is the way to retain one.
func TestTraceResetInvalidatesSnapshots(t *testing.T) {
	const n = 8
	record := func(tr *Trace, g *graph.Graph) {
		actions := make([]Action, n)
		outgoing := make([]Message, n)
		tr.record(1, g, actions, outgoing)
	}

	tr := &Trace{KeepTopologies: true}
	line := graph.Line(n)
	record(tr, line)
	snapshot := tr.Topologies()[0]
	kept := snapshot.Clone() // deep copy: survives the Reset below
	if !reflect.DeepEqual(snapshot.Adj(0), line.Adj(0)) {
		t.Fatal("snapshot does not match the recorded graph")
	}

	tr.Reset()
	if len(tr.Stats) != 0 {
		t.Fatal("Reset did not clear stats")
	}
	record(tr, graph.Star(n))

	// The pre-Reset snapshot aliases the rewound arena: its storage now
	// holds the star's adjacency, not the line's.
	if reflect.DeepEqual(snapshot.Adj(0), line.Adj(0)) {
		t.Fatal("pre-Reset snapshot still reads as the old graph; the aliasing contract (and this pin) are stale")
	}
	// The deep copy is unaffected.
	for v := 0; v < n; v++ {
		if !reflect.DeepEqual(kept.Adj(v), line.Adj(v)) {
			t.Fatalf("cloned snapshot changed at node %d", v)
		}
	}
}
