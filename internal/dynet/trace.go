package dynet

import "dyndiam/internal/graph"

// RoundStats aggregates what happened in one round.
type RoundStats struct {
	Round    int
	Senders  int
	Bits     int
	Edges    int
	Topology *graph.Graph // nil unless the trace keeps topologies
}

// Trace records an execution round by round. Keeping topologies costs
// O(rounds * edges) memory; enable it only when the dynamic diameter or the
// reduction referee needs them. Snapshots are carved from a pooled arena
// (graph.Cloner), so recording thousands of rounds costs amortized one
// allocation per snapshot rather than one per vertex.
//
// Aliasing contract: recorded topologies share the Trace's arena. They stay
// valid for the lifetime of the recording — across Run and after it — but
// Reset rewinds the arena, and any snapshot taken before the Reset will be
// silently overwritten by snapshots recorded after it. A caller that wants
// to keep topologies past a Trace reuse must deep-copy them first with
// Graph.Clone. TestTraceResetInvalidatesSnapshots pins this contract.
type Trace struct {
	// KeepTopologies stores a clone of every round's graph.
	KeepTopologies bool

	Stats []RoundStats

	cloner graph.Cloner
}

func (t *Trace) record(r int, g *graph.Graph, actions []Action, outgoing []Message) {
	st := RoundStats{Round: r, Edges: g.M()}
	for v, a := range actions {
		if a == Send {
			st.Senders++
			st.Bits += outgoing[v].NBits
		}
	}
	if t.KeepTopologies {
		st.Topology = t.cloner.Clone(g)
	}
	t.Stats = append(t.Stats, st)
}

// Reset clears the trace for reuse by a fresh execution, keeping the stats
// slice and the snapshot arena. Topologies returned before the Reset alias
// the arena and are invalidated by it (see the type's aliasing contract).
func (t *Trace) Reset() {
	for i := range t.Stats {
		t.Stats[i].Topology = nil
	}
	t.Stats = t.Stats[:0]
	t.cloner.Reset()
}

// Topologies returns the recorded per-round graphs (round 1 first). It
// panics if KeepTopologies was not set.
func (t *Trace) Topologies() []*graph.Graph {
	out := make([]*graph.Graph, len(t.Stats))
	for i, st := range t.Stats {
		if st.Topology == nil {
			//lint:allow panicfree documented API contract: Topologies requires KeepTopologies; misuse is a caller bug
			panic("dynet: trace did not keep topologies")
		}
		out[i] = st.Topology
	}
	return out
}
