package dynet

import "dyndiam/internal/graph"

// RoundStats aggregates what happened in one round.
type RoundStats struct {
	Round    int
	Senders  int
	Bits     int
	Edges    int
	Topology *graph.Graph // nil unless the trace keeps topologies
}

// Trace records an execution round by round. Keeping topologies costs
// O(rounds * edges) memory; enable it only when the dynamic diameter or the
// reduction referee needs them. Snapshots are carved from a pooled arena
// (graph.Cloner), so recording thousands of rounds costs amortized one
// allocation per snapshot rather than one per vertex.
type Trace struct {
	// KeepTopologies stores a clone of every round's graph.
	KeepTopologies bool

	Stats []RoundStats

	cloner graph.Cloner
}

func (t *Trace) record(r int, g *graph.Graph, actions []Action, outgoing []Message) {
	st := RoundStats{Round: r, Edges: g.M()}
	for v, a := range actions {
		if a == Send {
			st.Senders++
			st.Bits += outgoing[v].NBits
		}
	}
	if t.KeepTopologies {
		st.Topology = t.cloner.Clone(g)
	}
	t.Stats = append(t.Stats, st)
}

// Topologies returns the recorded per-round graphs (round 1 first). It
// panics if KeepTopologies was not set.
func (t *Trace) Topologies() []*graph.Graph {
	out := make([]*graph.Graph, len(t.Stats))
	for i, st := range t.Stats {
		if st.Topology == nil {
			//lint:allow panicfree documented API contract: Topologies requires KeepTopologies; misuse is a caller bug
			panic("dynet: trace did not keep topologies")
		}
		out[i] = st.Topology
	}
	return out
}
