package dynet

import (
	"encoding/binary"
	"fmt"
	"io"

	"dyndiam/internal/graph"
)

// Trace serialization: a compact binary format for persisting executions
// (round statistics plus, optionally, per-round topologies) so experiment
// runs can be archived and re-analyzed offline (e.g. recomputing dynamic
// diameters without re-simulating).
//
// Format (all integers little-endian):
//
//	magic "DYTR" | version u16 | flags u16 (bit0: topologies)
//	nodeCount u32 | roundCount u32
//	per round: round u32, senders u32, bits u64, edges u32
//	           [if topologies] edgeCount u32, then edgeCount x (u32, u32)
const (
	traceMagic   = "DYTR"
	traceVersion = 1
)

// WriteTrace serializes a trace. nodeCount is needed to rebuild topologies.
func WriteTrace(w io.Writer, t *Trace, nodeCount int) error {
	if _, err := io.WriteString(w, traceMagic); err != nil {
		return err
	}
	var flags uint16
	if t.KeepTopologies {
		flags |= 1
	}
	if err := writeAll(w, uint16(traceVersion), flags, uint32(nodeCount), uint32(len(t.Stats))); err != nil {
		return err
	}
	for _, st := range t.Stats {
		if err := writeAll(w, uint32(st.Round), uint32(st.Senders), uint64(st.Bits), uint32(st.Edges)); err != nil {
			return err
		}
		if t.KeepTopologies {
			if st.Topology == nil {
				return fmt.Errorf("dynet: trace flagged with topologies but round %d has none", st.Round)
			}
			edges := st.Topology.Edges()
			if err := writeAll(w, uint32(len(edges))); err != nil {
				return err
			}
			for _, e := range edges {
				if err := writeAll(w, uint32(e[0]), uint32(e[1])); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// ReadTrace deserializes a trace written by WriteTrace, returning the trace
// and the node count.
func ReadTrace(r io.Reader) (*Trace, int, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, 0, err
	}
	if string(magic) != traceMagic {
		return nil, 0, fmt.Errorf("dynet: bad trace magic %q", magic)
	}
	var version, flags uint16
	var nodeCount, roundCount uint32
	if err := readAll(r, &version, &flags, &nodeCount, &roundCount); err != nil {
		return nil, 0, err
	}
	if version != traceVersion {
		return nil, 0, fmt.Errorf("dynet: unsupported trace version %d", version)
	}
	t := &Trace{KeepTopologies: flags&1 != 0}
	for i := uint32(0); i < roundCount; i++ {
		var round, senders, edges uint32
		var bits uint64
		if err := readAll(r, &round, &senders, &bits, &edges); err != nil {
			return nil, 0, err
		}
		st := RoundStats{Round: int(round), Senders: int(senders), Bits: int(bits), Edges: int(edges)}
		if t.KeepTopologies {
			var edgeCount uint32
			if err := readAll(r, &edgeCount); err != nil {
				return nil, 0, err
			}
			g := graph.New(int(nodeCount))
			for e := uint32(0); e < edgeCount; e++ {
				var u, v uint32
				if err := readAll(r, &u, &v); err != nil {
					return nil, 0, err
				}
				if int(u) >= int(nodeCount) || int(v) >= int(nodeCount) {
					return nil, 0, fmt.Errorf("dynet: trace edge (%d, %d) out of range", u, v)
				}
				g.AddEdge(int(u), int(v))
			}
			st.Topology = g
		}
		t.Stats = append(t.Stats, st)
	}
	return t, int(nodeCount), nil
}

func writeAll(w io.Writer, vs ...interface{}) error {
	for _, v := range vs {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

func readAll(r io.Reader, vs ...interface{}) error {
	for _, v := range vs {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}
