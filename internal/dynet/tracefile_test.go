package dynet

import (
	"bytes"
	"strings"
	"testing"

	"dyndiam/internal/graph"
)

func recordedTrace(t *testing.T, keepTopologies bool) (*Trace, int) {
	t.Helper()
	const n = 10
	ms := NewMachines(relayProtocol{}, n, tokenInputs(n, 0), 3, nil)
	tr := &Trace{KeepTopologies: keepTopologies}
	e := &Engine{Machines: ms, Adv: Static(graph.Ring(n)), Workers: 1, Trace: tr}
	if _, err := e.Run(60); err != nil {
		t.Fatal(err)
	}
	return tr, n
}

func TestTraceRoundTripWithTopologies(t *testing.T) {
	tr, n := recordedTrace(t, true)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr, n); err != nil {
		t.Fatal(err)
	}
	got, gotN, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotN != n || len(got.Stats) != len(tr.Stats) {
		t.Fatalf("n=%d rounds=%d, want %d, %d", gotN, len(got.Stats), n, len(tr.Stats))
	}
	for i := range tr.Stats {
		a, b := tr.Stats[i], got.Stats[i]
		if a.Round != b.Round || a.Senders != b.Senders || a.Bits != b.Bits || a.Edges != b.Edges {
			t.Fatalf("round %d stats differ: %+v vs %+v", a.Round, a, b)
		}
		for _, e := range a.Topology.Edges() {
			if !b.Topology.HasEdge(e[0], e[1]) {
				t.Fatalf("round %d: edge %v lost", a.Round, e)
			}
		}
		if a.Topology.M() != b.Topology.M() {
			t.Fatalf("round %d: edge count %d vs %d", a.Round, a.Topology.M(), b.Topology.M())
		}
	}
	// The reread topologies support the same diameter computation.
	d1, ok1 := DynamicDiameter(tr.Topologies())
	d2, ok2 := DynamicDiameter(got.Topologies())
	if d1 != d2 || ok1 != ok2 {
		t.Fatalf("diameters differ after round trip: (%d,%v) vs (%d,%v)", d1, ok1, d2, ok2)
	}
}

func TestTraceRoundTripStatsOnly(t *testing.T) {
	tr, n := recordedTrace(t, false)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr, n); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.KeepTopologies {
		t.Error("stats-only trace flagged with topologies")
	}
	if len(got.Stats) != len(tr.Stats) {
		t.Fatalf("round counts differ")
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, _, err := ReadTrace(strings.NewReader("NOPE....")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, _, err := ReadTrace(strings.NewReader("DY")); err == nil {
		t.Error("truncated magic accepted")
	}
	// Valid magic, truncated header.
	if _, _, err := ReadTrace(strings.NewReader("DYTR\x01\x00")); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestReadTraceRejectsOutOfRangeEdge(t *testing.T) {
	tr, n := recordedTrace(t, true)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr, n); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt the node count down to 1 so all edges go out of range.
	copy(raw[8:12], []byte{1, 0, 0, 0})
	if _, _, err := ReadTrace(bytes.NewReader(raw)); err == nil {
		t.Error("out-of-range edges accepted")
	}
}
