package dynet

import (
	"fmt"

	"dyndiam/internal/faults"
	"dyndiam/internal/graph"
	"dyndiam/internal/obs"
)

// Wire hooks: the exported slice of the engine's round machinery that the
// distributed coordinator (internal/wire) reuses verbatim. The golden
// distributed-equivalence guarantee — same seeds, adversary, and fault
// spec produce byte-identical traces, outputs, totals, and error texts in
// the distributed run and in Engine.Run — only holds if both executions
// share one implementation of the error formatting, inbox assembly, fault
// application, and trace recording. These wrappers are that shared
// implementation; the engine's unexported helpers remain the single
// source of truth.

// BudgetError is the CONGEST-violation error Engine.Run returns when a
// sender exceeds the per-message bit budget. The distributed coordinator
// enforces the budget on ACT frames at the socket and must fail with the
// identical text.
func BudgetError(node, round, nbits, budget int) error {
	return budgetError(node, round, nbits, budget)
}

// TopologySizeError is the error Engine.Run returns when the adversary
// hands back a nil topology or one over the wrong node count.
func TopologySizeError(g *graph.Graph, n int) error {
	return fmt.Errorf("dynet: adversary returned topology over %v nodes, want %d", gN(g), n)
}

// DisconnectedTopologyError is the error Engine.Run returns when
// CheckConnectivity finds the adversary's round-r topology disconnected.
func DisconnectedTopologyError(r int) error {
	return fmt.Errorf("dynet: adversary returned disconnected topology in round %d", r)
}

// Record appends round r to the trace exactly as Engine.Run does:
// per-round sender/bit/edge stats from the committed actions and outgoing
// messages, plus a topology snapshot when KeepTopologies is set.
func (t *Trace) Record(r int, g *graph.Graph, actions []Action, outgoing []Message) {
	t.record(r, g, actions, outgoing)
}

// CollectInboxes assembles each receiving node's inbox from its sending
// neighbors in the engine's order (ascending sender id), reusing the
// inbox backing arrays. It is the engine's clean-path collect.
func CollectInboxes(g *graph.Graph, actions []Action, outgoing []Message, inboxes [][]Message) {
	collect(g, actions, outgoing, inboxes)
}

// SortMessagesByFrom orders an inbox by sender id with the engine's
// stable insertion sort, so independently assembled inboxes (e.g. from
// relay frames arriving over TCP) land in the engine's delivery order.
func SortMessagesByFrom(msgs []Message) { sortByFrom(msgs) }

// FaultRunner exposes the engine's fault-application machinery — crash
// schedule advancement, topology perturbation, and faulty inbox assembly,
// with their obs events and fault counters — to the distributed
// coordinator. Both executions drive the same faultState code, so fault
// event order, counter totals, and post-fault inbox contents cannot
// drift between them.
type FaultRunner struct {
	fs *faultState
}

// NewFaultRunner builds the fault machinery for one execution over n
// nodes, or returns nil when the plan injects nothing (the clean path).
func NewFaultRunner(plan *faults.Plan, sink obs.Sink, metrics *obs.Registry, n int) *FaultRunner {
	if !plan.Enabled() {
		return nil
	}
	return &FaultRunner{fs: newFaultState(plan, sink, metrics, n)}
}

// BeginRound advances the crash schedule to round r, emitting crash and
// rejoin transitions, and returns the down mask (nil when the plan has no
// node faults). The mask is valid until the next BeginRound.
func (f *FaultRunner) BeginRound(r int) []bool {
	f.fs.beginRound(r)
	return f.fs.down
}

// HasEdgeFaults reports whether Perturb can ever cut an edge.
func (f *FaultRunner) HasEdgeFaults() bool { return f.fs.edgeFaults }

// HasDeliveryOrNodeFaults reports whether Collect differs from the clean
// CollectInboxes (delivery faults or down receivers).
func (f *FaultRunner) HasDeliveryOrNodeFaults() bool {
	return f.fs.deliveryFaults || f.fs.nodeFaults
}

// Perturb applies round r's edge cuts to a scratch copy of g and returns
// it, exactly as the engine does between the connectivity check and
// delivery.
func (f *FaultRunner) Perturb(r int, g *graph.Graph) *graph.Graph {
	return f.fs.perturb(r, g)
}

// Collect is the faulty inbox assembly: drops, duplications, and bit
// corruptions applied per delivery, down receivers skipped, in the
// engine's order.
func (f *FaultRunner) Collect(r int, g *graph.Graph, actions []Action, outgoing []Message, inboxes [][]Message) {
	f.fs.collect(r, g, actions, outgoing, inboxes)
}

// CorruptMessage returns msg with the given payload bit flipped in a
// private copy, using the engine's exact bit-addressing (so a corruption
// applied to a relay frame on the wire and one applied by the engine
// produce identical payloads).
func CorruptMessage(msg Message, bit int) Message { return corruptCopy(msg, bit) }
