// Package export renders experiment artifacts for external tools:
// Graphviz DOT for round topologies (with construction roles highlighted)
// and CSV for harness tables.
package export

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"

	"dyndiam/internal/chains"
	"dyndiam/internal/graph"
	"dyndiam/internal/harness"
	"dyndiam/internal/subnet"
)

// DOT renders one topology as an undirected Graphviz graph. colors maps
// node ids to fill colors; nodes absent from the map are drawn plainly.
// labels maps node ids to display labels (default: the id).
func DOT(g *graph.Graph, name string, colors, labels map[int]string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph %q {\n", name)
	sb.WriteString("  node [shape=circle, fontsize=10];\n")
	for v := 0; v < g.N(); v++ {
		attrs := []string{}
		if l, ok := labels[v]; ok {
			attrs = append(attrs, fmt.Sprintf("label=%q", l))
		}
		if c, ok := colors[v]; ok {
			attrs = append(attrs, fmt.Sprintf("style=filled, fillcolor=%q", c))
		}
		if len(attrs) > 0 {
			fmt.Fprintf(&sb, "  %d [%s];\n", v, strings.Join(attrs, ", "))
		}
	}
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	for _, e := range edges {
		fmt.Fprintf(&sb, "  %d -- %d;\n", e[0], e[1])
	}
	sb.WriteString("}\n")
	return sb.String()
}

// CFloodDOT renders round r of the Theorem 6 composition under party p,
// coloring the construction roles: the specials A_Γ/B_Γ/A_Λ/B_Λ, the Γ-line
// middles, the Λ mounting points, and (when p is Alice or Bob) the nodes
// already spoiled for that party in round r.
func CFloodDOT(net *subnet.CFloodNet, p chains.Party, r int) string {
	colors := map[int]string{
		net.Gamma.A:  "gold",
		net.Gamma.B:  "gold",
		net.Lambda.A: "orange",
		net.Lambda.B: "orange",
	}
	labels := map[int]string{
		net.Gamma.A:  "AΓ",
		net.Gamma.B:  "BΓ",
		net.Lambda.A: "AΛ",
		net.Lambda.B: "BΛ",
	}
	for _, v := range net.Gamma.LineMiddles() {
		colors[v] = "lightblue"
	}
	for _, v := range net.Lambda.MountingPoints() {
		colors[v] = "lightgreen"
	}
	if p != chains.Reference {
		spoiled := net.SpoiledFrom(p)
		for v, s := range spoiled {
			if r >= s {
				colors[v] = "gray"
			}
		}
	}
	topo := net.Topology(p, r, nil)
	return DOT(topo, fmt.Sprintf("cflood_q%d_%s_r%d", net.In.Q, p, r), colors, labels)
}

// ConsensusDOT renders round r of the Theorem 7 composition under party p:
// Λ specials gold, Υ specials (when present) red, mounting points green,
// and the party's spoiled region gray.
func ConsensusDOT(net *subnet.ConsensusNet, p chains.Party, r int) string {
	colors := map[int]string{
		net.Lambda.A: "gold",
		net.Lambda.B: "gold",
	}
	labels := map[int]string{
		net.Lambda.A: "AΛ",
		net.Lambda.B: "BΛ",
	}
	for _, v := range net.Lambda.MountingPoints() {
		colors[v] = "lightgreen"
	}
	if net.Upsilon != nil {
		colors[net.Upsilon.A] = "tomato"
		colors[net.Upsilon.B] = "tomato"
		labels[net.Upsilon.A] = "AΥ"
		labels[net.Upsilon.B] = "BΥ"
		for _, v := range net.Upsilon.MountingPoints() {
			colors[v] = "lightgreen"
		}
	}
	if p != chains.Reference {
		spoiled := net.SpoiledFrom(p)
		for v, s := range spoiled {
			if r >= s {
				colors[v] = "gray"
			}
		}
	}
	topo := net.Topology(p, r, nil)
	return DOT(topo, fmt.Sprintf("consensus_q%d_%s_r%d", net.In.Q, p, r), colors, labels)
}

// WriteCSV emits a harness table as CSV (header row first).
func WriteCSV(w io.Writer, t *harness.Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
