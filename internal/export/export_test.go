package export

import (
	"strings"
	"testing"

	"dyndiam/internal/chains"
	"dyndiam/internal/disjcp"
	"dyndiam/internal/graph"
	"dyndiam/internal/harness"
	"dyndiam/internal/rng"
	"dyndiam/internal/subnet"
)

func TestDOTBasics(t *testing.T) {
	g := graph.Line(3)
	out := DOT(g, "demo", map[int]string{0: "red"}, map[int]string{2: "end"})
	for _, want := range []string{`graph "demo"`, "0 -- 1;", "1 -- 2;", `fillcolor="red"`, `label="end"`} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "--") != 2 {
		t.Errorf("edge count wrong:\n%s", out)
	}
}

func TestDOTDeterministicOrder(t *testing.T) {
	g := graph.Ring(6)
	if DOT(g, "a", nil, nil) != DOT(g, "a", nil, nil) {
		t.Error("DOT output nondeterministic")
	}
}

func TestCFloodDOT(t *testing.T) {
	in := disjcp.RandomZero(2, 9, 1, rng.New(3))
	net, err := subnet.NewCFlood(in)
	if err != nil {
		t.Fatal(err)
	}
	out := CFloodDOT(net, chains.Alice, 2)
	// For Alice, spoiled nodes (including the mounting point and the
	// line middles, spoiled from round 1) are grayed out.
	for _, want := range []string{"AΓ", "BΛ", `fillcolor="gray"`} {
		if !strings.Contains(out, want) {
			t.Errorf("CFloodDOT(alice) missing %q", want)
		}
	}
	ref := CFloodDOT(net, chains.Reference, 2)
	if strings.Contains(ref, `"gray"`) {
		t.Error("reference rendering must not gray out nodes")
	}
	for _, want := range []string{`fillcolor="lightblue"`, `fillcolor="lightgreen"`} {
		if !strings.Contains(ref, want) {
			t.Errorf("CFloodDOT(reference) missing %q", want)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	tb := &harness.Table{Header: []string{"a", "b"}}
	tb.Add(1, "x,y")
	var sb strings.Builder
	if err := WriteCSV(&sb, tb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.HasPrefix(got, "a,b\n") {
		t.Errorf("csv header wrong: %q", got)
	}
	if !strings.Contains(got, `"x,y"`) {
		t.Errorf("csv quoting wrong: %q", got)
	}
}

func TestConsensusDOT(t *testing.T) {
	zero, err := subnet.NewConsensus(disjcp.RandomZero(2, 9, 1, rng.New(4)))
	if err != nil {
		t.Fatal(err)
	}
	out := ConsensusDOT(zero, chains.Reference, 1)
	for _, want := range []string{"AΛ", "AΥ", `fillcolor="tomato"`, `fillcolor="lightgreen"`} {
		if !strings.Contains(out, want) {
			t.Errorf("ConsensusDOT(0-instance) missing %q", want)
		}
	}
	one, err := subnet.NewConsensus(disjcp.RandomOne(2, 9, rng.New(4)))
	if err != nil {
		t.Fatal(err)
	}
	oneOut := ConsensusDOT(one, chains.Alice, 2)
	if strings.Contains(oneOut, "AΥ") {
		t.Error("1-instance rendering mentions Υ")
	}
	if !strings.Contains(oneOut, `fillcolor="gray"`) {
		t.Error("Alice rendering missing spoiled region")
	}
}
