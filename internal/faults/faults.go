// Package faults is the deterministic fault-injection layer: a compiled
// Plan of model-violating faults — message drops, duplications, bit
// corruptions, node crash/rejoin outages, and adversary edge cuts — that
// the round engine consults between the adversary's topology and message
// delivery.
//
// The paper's guarantees (Theorem 8's error <= 1/N leader election, the
// Theorem 6/7 reductions) are proved under a clean model: no loss, no
// crashes, always-connected rounds. The degradation experiments ask how
// fast those guarantees decay as the model is violated, which demands two
// properties of the injection layer:
//
// Determinism. Every fault decision is a pure function of
// (seed, round, node, edge) through internal/rng's splittable streams —
// never of execution order, wall clocks, or map iteration. Two runs from
// the same seed inject byte-identical fault schedules, so a single faulty
// trial from a million-cell sweep can be replayed in isolation by seed,
// and parallel sweeps stay bit-identical to sequential ones.
//
// Zero overhead when off. A nil *Plan (or a Plan whose Spec is all-zero,
// reported by Enabled) keeps the engine exactly on its allocation-free
// round loop; the engine's alloc regression tests pin this.
//
// Fault semantics, applied in engine order:
//
//   - Crash/rejoin (Down): a down node is frozen — its Step is not
//     called, it neither sends nor receives, and messages addressed to it
//     are lost. It rejoins with the state it crashed with. Outages come
//     from an explicit schedule (Spec.Outages) and/or a seeded renewal
//     process (Spec.Crash, Spec.MeanDown).
//   - Edge cuts (CutEdge): each edge of the adversary's (connected,
//     model-obeying) topology is removed independently with probability
//     Spec.EdgeCut, possibly disconnecting the round.
//   - Delivery faults (Delivery): each (sender, receiver) message copy is
//     independently dropped with probability Spec.Drop; surviving copies
//     are duplicated with probability Spec.Dup and have one uniformly
//     chosen payload bit flipped with probability Spec.Corrupt.
package faults

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"dyndiam/internal/rng"
)

// Spec configures one fault mix. All rates are probabilities in [0, 1];
// the zero Spec injects nothing.
type Spec struct {
	// Seed roots every fault stream. Two Plans with equal Specs (seed
	// included) produce identical schedules.
	Seed uint64

	// Drop is the per-delivery probability that a message copy on one
	// (sender, receiver) edge is lost.
	Drop float64
	// Dup is the per-delivery probability that a surviving copy is
	// delivered twice.
	Dup float64
	// Corrupt is the per-delivery probability that a surviving copy has
	// one uniformly random payload bit flipped.
	Corrupt float64

	// Crash is the per-round probability that an up node crashes.
	Crash float64
	// MeanDown is the mean outage length in rounds for rate-based
	// crashes (default 8 when Crash > 0). Outage lengths are geometric
	// with this mean, so every outage lasts at least one round.
	MeanDown float64
	// Outages schedules explicit downtime windows in addition to the
	// rate-based process.
	Outages []Outage

	// EdgeCut is the per-round probability that an edge of the
	// adversary's topology is removed before delivery.
	EdgeCut float64
}

// Outage is one scheduled downtime window: Node is down in every round r
// with From <= r <= Until (rounds start at 1).
type Outage struct {
	Node        int
	From, Until int
}

// DefaultMeanDown is the mean rate-based outage length used when a Spec
// sets Crash > 0 but leaves MeanDown zero.
const DefaultMeanDown = 8

// Validate checks rates and windows; NewPlan calls it.
func (s Spec) Validate() error {
	check := func(name string, v float64) error {
		if math.IsNaN(v) || v < 0 || v > 1 {
			return fmt.Errorf("faults: %s rate %v outside [0, 1]", name, v)
		}
		return nil
	}
	if err := check("drop", s.Drop); err != nil {
		return err
	}
	if err := check("dup", s.Dup); err != nil {
		return err
	}
	if err := check("corrupt", s.Corrupt); err != nil {
		return err
	}
	if err := check("crash", s.Crash); err != nil {
		return err
	}
	if err := check("edgecut", s.EdgeCut); err != nil {
		return err
	}
	if s.MeanDown < 0 || math.IsNaN(s.MeanDown) || math.IsInf(s.MeanDown, 0) {
		return fmt.Errorf("faults: mean downtime %v must be a finite non-negative round count", s.MeanDown)
	}
	if s.MeanDown != 0 && s.MeanDown < 1 {
		return fmt.Errorf("faults: mean downtime %v is below one round", s.MeanDown)
	}
	for _, o := range s.Outages {
		if o.Node < 0 {
			return fmt.Errorf("faults: outage node %d is negative", o.Node)
		}
		if o.From < 1 || o.Until < o.From {
			return fmt.Errorf("faults: outage window [%d, %d] for node %d is empty or starts before round 1", o.From, o.Until, o.Node)
		}
	}
	return nil
}

// Zero reports whether the Spec injects no faults at all.
func (s Spec) Zero() bool {
	return s.Drop == 0 && s.Dup == 0 && s.Corrupt == 0 &&
		s.Crash == 0 && len(s.Outages) == 0 && s.EdgeCut == 0
}

// Label renders the non-zero dimensions compactly ("drop=0.05,crash=0.01");
// the zero Spec renders as "none". Used as the row key of degradation
// tables and chaos checkpoints.
func (s Spec) Label() string {
	var parts []string
	add := func(name string, v float64) {
		if v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", name, v))
		}
	}
	add("drop", s.Drop)
	add("dup", s.Dup)
	add("corrupt", s.Corrupt)
	add("crash", s.Crash)
	if len(s.Outages) > 0 {
		parts = append(parts, fmt.Sprintf("outages=%d", len(s.Outages)))
	}
	add("edgecut", s.EdgeCut)
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// Plan is a compiled fault schedule: a pure function of the Spec (seed
// included) answering per-round queries. A Plan memoizes the rate-based
// outage windows it has generated, so it is not safe for concurrent use;
// build one Plan per engine execution (sweep cells each build their own).
type Plan struct {
	spec   Spec
	root   *rng.Source
	rejoin float64 // per-round rejoin probability = 1/MeanDown

	outages []Outage // scheduled windows, sorted by (Node, From)

	nodes []nodeWindows // lazily generated rate-based windows per node
}

// window is one generated outage: down in rounds [from, until].
type window struct{ from, until int }

type nodeWindows struct {
	src  *rng.Source // this node's outage stream; nil until first query
	wins []window    // ascending, non-overlapping
	next int         // first round not yet covered by generation
}

// NewPlan validates and compiles a Spec.
func NewPlan(spec Spec) (*Plan, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Crash > 0 && spec.MeanDown == 0 {
		spec.MeanDown = DefaultMeanDown
	}
	p := &Plan{spec: spec, root: rng.New(spec.Seed)}
	if spec.MeanDown > 0 {
		p.rejoin = 1 / spec.MeanDown
	}
	p.outages = append(p.outages, spec.Outages...)
	sort.Slice(p.outages, func(i, j int) bool {
		a, b := p.outages[i], p.outages[j]
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.From < b.From
	})
	// Coalesce overlapping or adjacent windows per node so Until is
	// strictly increasing within each node — the invariant the binary
	// search in scheduledDown relies on.
	merged := p.outages[:0]
	for _, o := range p.outages {
		if n := len(merged); n > 0 && merged[n-1].Node == o.Node && o.From <= merged[n-1].Until+1 {
			if o.Until > merged[n-1].Until {
				merged[n-1].Until = o.Until
			}
			continue
		}
		merged = append(merged, o)
	}
	p.outages = merged
	return p, nil
}

// Spec returns the plan's (validated, defaults-filled) Spec.
func (p *Plan) Spec() Spec { return p.spec }

// Enabled reports whether the plan can inject any fault. The engine treats
// a nil or disabled plan as the clean path.
func (p *Plan) Enabled() bool { return p != nil && !p.spec.Zero() }

// HasNodeFaults reports whether any node can ever be down.
func (p *Plan) HasNodeFaults() bool {
	return p.spec.Crash > 0 || len(p.outages) > 0
}

// HasEdgeFaults reports whether topology edges can be cut.
func (p *Plan) HasEdgeFaults() bool { return p.spec.EdgeCut > 0 }

// HasDeliveryFaults reports whether per-delivery faults (drop, dup,
// corrupt) can occur.
func (p *Plan) HasDeliveryFaults() bool {
	return p.spec.Drop > 0 || p.spec.Dup > 0 || p.spec.Corrupt > 0
}

// Down reports whether node v is down (crashed) in round r. It is a pure
// function of (seed, v, r): scheduled windows are checked first, then the
// node's seeded renewal process, whose windows are generated lazily from
// the node's own split stream and memoized.
func (p *Plan) Down(r, v int) bool {
	if r < 1 || v < 0 {
		return false
	}
	if p.scheduledDown(r, v) {
		return true
	}
	if p.spec.Crash <= 0 {
		return false
	}
	// Grow the per-node table on demand; queries address nodes densely.
	for len(p.nodes) <= v {
		p.nodes = append(p.nodes, nodeWindows{next: 1})
	}
	nw := &p.nodes[v]
	if nw.src == nil {
		nw.src = p.root.Split('c', uint64(v)) //lint:allow hotpathalloc lazy one-time per-node coin source
	}
	for nw.next <= r {
		up := geometric(nw.src, p.spec.Crash)
		from := nw.next + up
		down := 1 + geometric(nw.src, p.rejoin)
		nw.wins = append(nw.wins, window{from: from, until: from + down - 1})
		nw.next = from + down
	}
	i := sort.Search(len(nw.wins), func(i int) bool { return nw.wins[i].until >= r }) //lint:allow hotpathalloc non-escaping sort.Search predicate stays on the stack
	return i < len(nw.wins) && nw.wins[i].from <= r
}

// scheduledDown checks the explicit outage windows (sorted by node, from).
func (p *Plan) scheduledDown(r, v int) bool {
	i := sort.Search(len(p.outages), func(i int) bool { //lint:allow hotpathalloc non-escaping sort.Search predicate stays on the stack
		o := p.outages[i]
		return o.Node > v || (o.Node == v && o.Until >= r)
	})
	return i < len(p.outages) && p.outages[i].Node == v && p.outages[i].From <= r
}

// geometric draws the number of failures before the first success of a
// Bernoulli(prob) sequence — a geometric variate with mean (1-p)/p —
// using the closed form so one outage costs O(1) draws, not O(length).
func geometric(s *rng.Source, prob float64) int {
	if prob >= 1 {
		return 0
	}
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	k := math.Floor(math.Log(u) / math.Log(1-prob))
	if k < 0 {
		return 0
	}
	// Cap pathological tails so a tiny rate cannot produce an outage gap
	// that overflows int arithmetic on round numbers.
	if k > 1e12 {
		return 1 << 40
	}
	return int(k)
}

// Delivery is the fate of one delivered message copy.
type Delivery struct {
	// Drop: the copy is lost (Dup and FlipBit are then meaningless).
	Drop bool
	// Dup: the copy is delivered twice.
	Dup bool
	// FlipBit is the payload bit index to flip, or -1 for no corruption.
	FlipBit int
}

// Delivery decides the fate of the round-r message copy from node `from`
// to node `to` whose payload holds nbits bits. Pure function of
// (seed, r, from, to) — nbits only bounds the flipped bit index.
func (p *Plan) Delivery(r, from, to, nbits int) Delivery {
	d := Delivery{FlipBit: -1}
	if !p.HasDeliveryFaults() {
		return d
	}
	s := p.root.Split('d', uint64(r), uint64(from), uint64(to)) //lint:allow hotpathalloc stateless per-delivery coin: replayability is worth one short-lived Source
	if s.Prob(p.spec.Drop) {
		d.Drop = true
		return d
	}
	if s.Prob(p.spec.Dup) {
		d.Dup = true
	}
	if nbits > 0 && s.Prob(p.spec.Corrupt) {
		d.FlipBit = s.Intn(nbits)
	}
	return d
}

// CutEdge reports whether the undirected edge (u, v) of round r's topology
// is removed. Pure function of (seed, r, min(u,v), max(u,v)).
func (p *Plan) CutEdge(r, u, v int) bool {
	if p.spec.EdgeCut <= 0 {
		return false
	}
	if v < u {
		u, v = v, u
	}
	return p.root.Split('e', uint64(r), uint64(u), uint64(v)).Prob(p.spec.EdgeCut) //lint:allow hotpathalloc stateless per-edge coin: replayability is worth one short-lived Source
}
