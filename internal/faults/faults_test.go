package faults

import (
	"testing"
)

func mustPlan(t *testing.T, s Spec) *Plan {
	t.Helper()
	p, err := NewPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Drop: -0.1},
		{Dup: 1.5},
		{Corrupt: -1},
		{Crash: 2},
		{EdgeCut: -0.01},
		{MeanDown: -3},
		{MeanDown: 0.5},
		{Outages: []Outage{{Node: -1, From: 1, Until: 2}}},
		{Outages: []Outage{{Node: 0, From: 0, Until: 2}}},
		{Outages: []Outage{{Node: 0, From: 5, Until: 4}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d (%+v): Validate accepted it", i, s)
		}
		if _, err := NewPlan(s); err == nil {
			t.Errorf("spec %d (%+v): NewPlan accepted it", i, s)
		}
	}
	good := []Spec{
		{},
		{Drop: 1, Dup: 1, Corrupt: 1, Crash: 1, EdgeCut: 1},
		{Crash: 0.01, MeanDown: 1},
		{Outages: []Outage{{Node: 0, From: 1, Until: 1}}},
	}
	for i, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("spec %d: %v", i, err)
		}
	}
}

func TestSpecZeroAndLabel(t *testing.T) {
	var zero Spec
	if !zero.Zero() {
		t.Error("zero Spec not Zero")
	}
	if got := zero.Label(); got != "none" {
		t.Errorf("zero label = %q", got)
	}
	// Seed and MeanDown alone do not make a Spec inject anything.
	if !(Spec{Seed: 7, MeanDown: 5}).Zero() {
		t.Error("seed/meandown-only Spec not Zero")
	}
	s := Spec{Drop: 0.05, Crash: 0.01}
	if s.Zero() {
		t.Error("faulty Spec reported Zero")
	}
	if got := s.Label(); got != "drop=0.05,crash=0.01" {
		t.Errorf("label = %q", got)
	}
	if got := (Spec{Outages: []Outage{{Node: 1, From: 2, Until: 3}}}).Label(); got != "outages=1" {
		t.Errorf("outage label = %q", got)
	}
}

func TestEnabled(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Enabled() {
		t.Error("nil plan enabled")
	}
	if mustPlan(t, Spec{}).Enabled() {
		t.Error("zero plan enabled")
	}
	if !mustPlan(t, Spec{Drop: 0.1}).Enabled() {
		t.Error("drop plan disabled")
	}
}

func TestHasFaultFamilies(t *testing.T) {
	cases := []struct {
		spec                 Spec
		node, edge, delivery bool
	}{
		{Spec{Drop: 0.1}, false, false, true},
		{Spec{Dup: 0.1}, false, false, true},
		{Spec{Corrupt: 0.1}, false, false, true},
		{Spec{Crash: 0.1}, true, false, false},
		{Spec{Outages: []Outage{{Node: 0, From: 1, Until: 2}}}, true, false, false},
		{Spec{EdgeCut: 0.1}, false, true, false},
	}
	for i, c := range cases {
		p := mustPlan(t, c.spec)
		if p.HasNodeFaults() != c.node || p.HasEdgeFaults() != c.edge || p.HasDeliveryFaults() != c.delivery {
			t.Errorf("case %d: families (%v,%v,%v), want (%v,%v,%v)", i,
				p.HasNodeFaults(), p.HasEdgeFaults(), p.HasDeliveryFaults(), c.node, c.edge, c.delivery)
		}
	}
}

func TestScheduledOutages(t *testing.T) {
	// Overlapping and adjacent windows coalesce; Down is exact on the
	// merged boundaries.
	p := mustPlan(t, Spec{Outages: []Outage{
		{Node: 2, From: 10, Until: 14},
		{Node: 2, From: 12, Until: 20}, // overlaps the first
		{Node: 2, From: 21, Until: 25}, // adjacent: still one window
		{Node: 2, From: 40, Until: 41},
		{Node: 5, From: 1, Until: 3},
	}})
	for r := 1; r <= 50; r++ {
		want := (r >= 10 && r <= 25) || (r >= 40 && r <= 41)
		if got := p.Down(r, 2); got != want {
			t.Fatalf("node 2 round %d: down=%v, want %v", r, got, want)
		}
		if want5 := r >= 1 && r <= 3; p.Down(r, 5) != want5 {
			t.Fatalf("node 5 round %d: down=%v, want %v", r, p.Down(r, 5), want5)
		}
		if p.Down(r, 0) {
			t.Fatalf("node 0 round %d: down without any schedule", r)
		}
	}
	if p.Down(0, 2) || p.Down(-3, 2) || p.Down(10, -1) {
		t.Error("out-of-domain queries reported down")
	}
}

// TestDownQueryOrderIndependence pins the memoized renewal process: the
// answer for (round, node) must not depend on the order queries arrive.
func TestDownQueryOrderIndependence(t *testing.T) {
	spec := Spec{Seed: 99, Crash: 0.05, MeanDown: 6}
	const rounds, nodes = 400, 8

	forward := mustPlan(t, spec)
	var seq []bool
	for r := 1; r <= rounds; r++ {
		for v := 0; v < nodes; v++ {
			seq = append(seq, forward.Down(r, v))
		}
	}

	backward := mustPlan(t, spec)
	// Query the far future first, then walk back.
	for v := nodes - 1; v >= 0; v-- {
		backward.Down(rounds, v)
	}
	i := 0
	for r := 1; r <= rounds; r++ {
		for v := 0; v < nodes; v++ {
			if backward.Down(r, v) != seq[i] {
				t.Fatalf("round %d node %d: answer depends on query order", r, v)
			}
			i++
		}
	}
}

func TestCrashProcessProducesOutages(t *testing.T) {
	p := mustPlan(t, Spec{Seed: 5, Crash: 0.1, MeanDown: 4})
	downRounds := 0
	const rounds = 2000
	for r := 1; r <= rounds; r++ {
		if p.Down(r, 0) {
			downRounds++
		}
	}
	// Expected availability: mean up-time 1/0.1 = 10, mean down-time 4,
	// so ~29% of rounds down. Accept a wide band.
	frac := float64(downRounds) / rounds
	if frac < 0.10 || frac > 0.55 {
		t.Errorf("down fraction %.3f outside plausible band for crash=0.1 meandown=4", frac)
	}
	// MeanDown defaults when unset.
	if got := mustPlan(t, Spec{Crash: 0.5}).Spec().MeanDown; got != DefaultMeanDown {
		t.Errorf("defaulted MeanDown = %v, want %v", got, DefaultMeanDown)
	}
}

func TestDeliveryDeterminismAndRates(t *testing.T) {
	spec := Spec{Seed: 11, Drop: 0.3, Dup: 0.4, Corrupt: 0.5}
	a, b := mustPlan(t, spec), mustPlan(t, spec)
	const nbits = 64
	drops, dups, corrupts, total := 0, 0, 0, 0
	for r := 1; r <= 40; r++ {
		for from := 0; from < 6; from++ {
			for to := 0; to < 6; to++ {
				if from == to {
					continue
				}
				da := a.Delivery(r, from, to, nbits)
				if db := b.Delivery(r, from, to, nbits); da != db {
					t.Fatalf("r=%d %d->%d: same spec, different fates %+v vs %+v", r, from, to, da, db)
				}
				total++
				if da.Drop {
					drops++
					if da.Dup || da.FlipBit >= 0 {
						t.Fatalf("dropped copy also dup/corrupt: %+v", da)
					}
					continue
				}
				if da.Dup {
					dups++
				}
				if da.FlipBit >= 0 {
					corrupts++
					if da.FlipBit >= nbits {
						t.Fatalf("flip bit %d out of %d-bit payload", da.FlipBit, nbits)
					}
				}
			}
		}
	}
	within := func(name string, count, of int, p float64) {
		frac := float64(count) / float64(of)
		if frac < p-0.12 || frac > p+0.12 {
			t.Errorf("%s fraction %.3f far from rate %.2f (%d/%d)", name, frac, p, count, of)
		}
	}
	within("drop", drops, total, spec.Drop)
	within("dup", dups, total-drops, spec.Dup)
	within("corrupt", corrupts, total-drops, spec.Corrupt)
}

func TestDeliveryZeroBitsNeverCorrupts(t *testing.T) {
	p := mustPlan(t, Spec{Seed: 3, Corrupt: 1})
	for r := 1; r <= 50; r++ {
		if d := p.Delivery(r, 0, 1, 0); d.FlipBit != -1 {
			t.Fatalf("round %d: corrupted an empty payload: %+v", r, d)
		}
	}
}

func TestCutEdgeSymmetricAndSeeded(t *testing.T) {
	spec := Spec{Seed: 21, EdgeCut: 0.5}
	a, b := mustPlan(t, spec), mustPlan(t, spec)
	diffSeed := mustPlan(t, Spec{Seed: 22, EdgeCut: 0.5})
	cuts, total, diff := 0, 0, 0
	for r := 1; r <= 60; r++ {
		for u := 0; u < 5; u++ {
			for v := u + 1; v < 5; v++ {
				got := a.CutEdge(r, u, v)
				if got != a.CutEdge(r, v, u) {
					t.Fatalf("r=%d edge (%d,%d): cut decision not symmetric", r, u, v)
				}
				if got != b.CutEdge(r, u, v) {
					t.Fatalf("r=%d edge (%d,%d): same seed, different cut", r, u, v)
				}
				if got != diffSeed.CutEdge(r, u, v) {
					diff++
				}
				total++
				if got {
					cuts++
				}
			}
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical cut schedules")
	}
	frac := float64(cuts) / float64(total)
	if frac < 0.35 || frac > 0.65 {
		t.Errorf("cut fraction %.3f far from 0.5", frac)
	}
}
