package faults

import (
	"testing"
)

// schedule flattens every fault decision a plan makes over a small
// (round, node, edge) grid into one comparable slice. The grid is the
// plan's entire observable behavior at this scale, so two plans with
// equal schedules are interchangeable inside the engine.
func schedule(p *Plan, rounds, nodes int) []int32 {
	var out []int32
	b := func(v bool) int32 {
		if v {
			return 1
		}
		return 0
	}
	for r := 1; r <= rounds; r++ {
		for u := 0; u < nodes; u++ {
			out = append(out, b(p.Down(r, u)))
			for v := 0; v < nodes; v++ {
				if u == v {
					continue
				}
				d := p.Delivery(r, u, v, 32)
				out = append(out, b(d.Drop), b(d.Dup), int32(d.FlipBit))
				if u < v {
					out = append(out, b(p.CutEdge(r, u, v)))
				}
			}
		}
	}
	return out
}

// checkPlanDeterminism is the shared property: equal Specs give identical
// schedules (including a fresh plan queried in a different order), and a
// different seed gives a different schedule whenever the rates make a
// collision statistically impossible over the grid.
func checkPlanDeterminism(t *testing.T, seed uint64, dropRaw, dupRaw, corruptRaw, crashRaw, cutRaw uint8) {
	t.Helper()
	spec := Spec{
		Seed:    seed,
		Drop:    float64(dropRaw%101) / 100,
		Dup:     float64(dupRaw%101) / 100,
		Corrupt: float64(corruptRaw%101) / 100,
		Crash:   float64(crashRaw%101) / 100,
		EdgeCut: float64(cutRaw%101) / 100,
	}
	const rounds, nodes = 30, 5
	a, err := NewPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	sa := schedule(a, rounds, nodes)
	// Pre-touch b out of order so memoization order differs from a's.
	b.Down(rounds, nodes-1)
	b.Delivery(rounds, 0, 1, 32)
	sb := schedule(b, rounds, nodes)
	if len(sa) != len(sb) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("same spec, schedules differ at position %d: %d vs %d", i, sa[i], sb[i])
		}
	}

	// Different seed => different schedule, asserted only when the drop
	// rate alone makes agreement on all ~3500 delivery draws astronomically
	// unlikely (p in [0.2, 0.8] gives per-draw agreement <= 0.68).
	if spec.Drop >= 0.2 && spec.Drop <= 0.8 {
		other := spec
		other.Seed = seed + 1
		c, err := NewPlan(other)
		if err != nil {
			t.Fatal(err)
		}
		sc := schedule(c, rounds, nodes)
		same := true
		for i := range sa {
			if sa[i] != sc[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("seeds %d and %d produced identical schedules for %s", seed, seed+1, spec.Label())
		}
	}
}

func TestPlanDeterminismFixed(t *testing.T) {
	checkPlanDeterminism(t, 1, 50, 20, 10, 5, 30)
	checkPlanDeterminism(t, 0xBEEF, 100, 100, 100, 100, 100)
	checkPlanDeterminism(t, 7, 0, 0, 0, 0, 0)
}

// FuzzFaultPlanDeterminism is the native fuzz target: fault schedules are
// pure functions of (seed, spec), independent of query order, and seeds
// actually matter. CI runs it for a short smoke interval.
func FuzzFaultPlanDeterminism(f *testing.F) {
	f.Add(uint64(1), uint8(50), uint8(20), uint8(10), uint8(5), uint8(30))
	f.Add(uint64(0xDEAD), uint8(100), uint8(0), uint8(100), uint8(0), uint8(100))
	f.Add(uint64(42), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, seed uint64, dropRaw, dupRaw, corruptRaw, crashRaw, cutRaw uint8) {
		checkPlanDeterminism(t, seed, dropRaw, dupRaw, corruptRaw, crashRaw, cutRaw)
	})
}
