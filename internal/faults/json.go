package faults

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Serialized fault format: one JSON shape shared by everything that
// persists a fault mix — dynnode run specs (internal/wire.RunSpec),
// chaos replays, and degradation configs. The field names below are a
// compatibility contract; EncodeSpec/ParseSpec round-trip bit-for-bit
// and ParseSpec rejects both unknown fields and semantically invalid
// mixes (negative rates, inverted outage windows) with the same
// validation errors NewPlan would raise, so a bad config fails at load
// time instead of deep inside a run.

// specJSON is the serialized shape of a Spec. It mirrors Spec field for
// field; the indirection keeps the JSON names an explicit contract
// rather than an accident of Go identifier casing.
type specJSON struct {
	Seed     uint64       `json:"seed,omitempty"`
	Drop     float64      `json:"drop,omitempty"`
	Dup      float64      `json:"dup,omitempty"`
	Corrupt  float64      `json:"corrupt,omitempty"`
	Crash    float64      `json:"crash,omitempty"`
	MeanDown float64      `json:"mean_down,omitempty"`
	Outages  []outageJSON `json:"outages,omitempty"`
	EdgeCut  float64      `json:"edge_cut,omitempty"`
}

type outageJSON struct {
	Node  int `json:"node"`
	From  int `json:"from"`
	Until int `json:"until"`
}

// MarshalJSON serializes the Spec in the shared fault format.
func (s Spec) MarshalJSON() ([]byte, error) {
	j := specJSON{
		Seed: s.Seed, Drop: s.Drop, Dup: s.Dup, Corrupt: s.Corrupt,
		Crash: s.Crash, MeanDown: s.MeanDown, EdgeCut: s.EdgeCut,
	}
	for _, o := range s.Outages {
		j.Outages = append(j.Outages, outageJSON{Node: o.Node, From: o.From, Until: o.Until})
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes the shared fault format. It is strict about
// shape (unknown fields are errors) but defers semantic validation to
// Validate/ParseSpec so partially built Specs can still be assembled
// programmatically.
func (s *Spec) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var j specJSON
	if err := dec.Decode(&j); err != nil {
		return fmt.Errorf("faults: invalid spec JSON: %w", err)
	}
	*s = Spec{
		Seed: j.Seed, Drop: j.Drop, Dup: j.Dup, Corrupt: j.Corrupt,
		Crash: j.Crash, MeanDown: j.MeanDown, EdgeCut: j.EdgeCut,
	}
	for _, o := range j.Outages {
		s.Outages = append(s.Outages, Outage{Node: o.Node, From: o.From, Until: o.Until})
	}
	return nil
}

// EncodeSpec validates and serializes a Spec. The output round-trips
// through ParseSpec to an identical Spec value.
func EncodeSpec(s Spec) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(s)
}

// ParseSpec decodes and validates a serialized Spec: the one entry
// point every config loader (dynnode, chaos replays) shares, so a
// malformed or out-of-range fault mix is rejected identically
// everywhere.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, err
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}
