package faults

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestSpecJSONRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"zero", Spec{}},
		{"seed_only", Spec{Seed: 42}},
		{"rates", Spec{Seed: 7, Drop: 0.25, Dup: 0.125, Corrupt: 0.0625, EdgeCut: 0.5}},
		{"crash", Spec{Seed: 9, Crash: 0.05, MeanDown: 3.5}},
		{"outages", Spec{
			Seed:    11,
			Outages: []Outage{{Node: 0, From: 1, Until: 4}, {Node: 3, From: 2, Until: 2}},
		}},
		{"kitchen_sink", Spec{
			Seed: 123, Drop: 0.3, Dup: 0.1, Corrupt: 0.2, Crash: 0.02,
			MeanDown: 4, EdgeCut: 0.15,
			Outages: []Outage{{Node: 5, From: 10, Until: 20}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data, err := EncodeSpec(tc.spec)
			if err != nil {
				t.Fatalf("EncodeSpec: %v", err)
			}
			got, err := ParseSpec(data)
			if err != nil {
				t.Fatalf("ParseSpec(%s): %v", data, err)
			}
			if !reflect.DeepEqual(got, tc.spec) {
				t.Errorf("round trip changed the spec:\n in: %+v\nout: %+v\njson: %s", tc.spec, got, data)
			}
			// Encoding must be deterministic: a second pass over the parsed
			// value yields byte-identical JSON.
			data2, err := EncodeSpec(got)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if string(data) != string(data2) {
				t.Errorf("encoding not stable: %s vs %s", data, data2)
			}
		})
	}
}

func TestSpecJSONFieldNames(t *testing.T) {
	// The serialized names are a compatibility contract shared by dynnode
	// run specs and chaos replays; renaming a field must fail here.
	data, err := EncodeSpec(Spec{
		Seed: 1, Drop: 0.5, Dup: 0.25, Corrupt: 0.125, Crash: 0.0625,
		MeanDown: 2, EdgeCut: 0.03125,
		Outages: []Outage{{Node: 4, From: 2, Until: 9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"seed":1`, `"drop":0.5`, `"dup":0.25`, `"corrupt":0.125`,
		`"crash":0.0625`, `"mean_down":2`, `"edge_cut":0.03125`,
		`"outages":[{"node":4,"from":2,"until":9}]`,
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("encoded spec missing %s in %s", want, data)
		}
	}
}

func TestSpecJSONZeroOmitted(t *testing.T) {
	data, err := EncodeSpec(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "{}" {
		t.Errorf("zero spec should encode as {}, got %s", data)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		name    string
		json    string
		wantErr string
	}{
		{"negative_drop", `{"drop":-0.1}`, "drop rate"},
		{"drop_above_one", `{"drop":1.5}`, "drop rate"},
		{"negative_dup", `{"dup":-1}`, "dup rate"},
		{"negative_corrupt", `{"corrupt":-0.5}`, "corrupt rate"},
		{"crash_above_one", `{"crash":2}`, "crash rate"},
		{"negative_edge_cut", `{"edge_cut":-0.01}`, "edgecut rate"},
		{"mean_down_below_one", `{"crash":0.1,"mean_down":0.5}`, "mean downtime"},
		{"inverted_outage", `{"outages":[{"node":0,"from":5,"until":3}]}`, "outage"},
		{"outage_before_round_one", `{"outages":[{"node":0,"from":0,"until":3}]}`, "outage"},
		{"unknown_field", `{"dorp":0.5}`, "dorp"},
		{"not_json", `{"drop":`, "unexpected end of JSON input"},
		{"wrong_type", `{"drop":"heavy"}`, "invalid spec JSON"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(tc.json))
			if err == nil {
				t.Fatalf("ParseSpec(%s) succeeded, want error containing %q", tc.json, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("ParseSpec(%s) error = %q, want it to mention %q", tc.json, err, tc.wantErr)
			}
		})
	}
}

func TestEncodeSpecRejectsInvalid(t *testing.T) {
	if _, err := EncodeSpec(Spec{Drop: -1}); err == nil {
		t.Error("EncodeSpec accepted a negative drop rate")
	}
	if _, err := EncodeSpec(Spec{Outages: []Outage{{Node: 0, From: 9, Until: 2}}}); err == nil {
		t.Error("EncodeSpec accepted an inverted outage window")
	}
}

func TestSpecJSONViaEncodingJSON(t *testing.T) {
	// Spec is embedded in larger configs (wire.RunSpec), so plain
	// json.Marshal/Unmarshal must use the same format as the helpers.
	type carrier struct {
		Fault Spec `json:"fault"`
	}
	in := carrier{Fault: Spec{Seed: 3, Drop: 0.5, Outages: []Outage{{Node: 1, From: 2, Until: 3}}}}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out carrier
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("embedded round trip changed the spec:\n in: %+v\nout: %+v", in, out)
	}
}
