package graph

import "dyndiam/internal/rng"

// Line returns the path 0-1-2-...-(n-1).
func Line(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Ring returns the cycle over n >= 3 vertices (for n < 3 it degrades to Line).
func Ring(n int) *Graph {
	g := Line(n)
	if n >= 3 {
		g.AddEdge(n-1, 0)
	}
	return g
}

// Star returns the star with center 0 and leaves 1..n-1.
func Star(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// RandomConnected returns a connected graph on n vertices with roughly
// extraEdges edges beyond a random spanning tree, drawn from src.
func RandomConnected(n, extraEdges int, src *rng.Source) *Graph {
	g := New(n)
	if n <= 1 {
		return g
	}
	// Random spanning tree: attach each vertex (in random order) to a
	// uniformly random earlier vertex.
	order := src.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(order[i], order[src.Intn(i)])
	}
	for k := 0; k < extraEdges; k++ {
		u, v := src.Intn(n), src.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

// BoundedDiameterRandom returns a connected random graph whose static
// diameter is at most targetDiam: a random tree of depth <= targetDiam/2
// around a random center, plus extra random edges. It gives the upper-bound
// experiments a family of low-diameter, size-N topologies.
func BoundedDiameterRandom(n, targetDiam, extraEdges int, src *rng.Source) *Graph {
	g := New(n)
	if n <= 1 {
		return g
	}
	depth := targetDiam / 2
	if depth < 1 {
		depth = 1
	}
	// Layered random tree: layer 0 is the center; vertex i in layer l
	// attaches to a random vertex in layer l-1.
	order := src.Perm(n)
	layers := make([][]int, depth+1)
	layers[0] = []int{order[0]}
	for i := 1; i < n; i++ {
		l := 1 + src.Intn(depth)
		for layers[l-1] == nil || len(layers[l-1]) == 0 {
			l--
		}
		parent := layers[l-1][src.Intn(len(layers[l-1]))]
		g.AddEdge(order[i], parent)
		layers[l] = append(layers[l], order[i])
	}
	for k := 0; k < extraEdges; k++ {
		u, v := src.Intn(n), src.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}
