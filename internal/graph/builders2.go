package graph

import "dyndiam/internal/rng"

// Grid returns the rows x cols 2D grid graph (vertex r*cols+c).
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			if c+1 < cols {
				g.AddEdge(v, v+1)
			}
			if r+1 < rows {
				g.AddEdge(v, v+cols)
			}
		}
	}
	return g
}

// Hypercube returns the dim-dimensional hypercube over 2^dim vertices.
func Hypercube(dim int) *Graph {
	n := 1 << uint(dim)
	g := New(n)
	for v := 0; v < n; v++ {
		for b := 0; b < dim; b++ {
			u := v ^ (1 << uint(b))
			if v < u {
				g.AddEdge(v, u)
			}
		}
	}
	return g
}

// RandomRegularish returns a connected graph where every vertex has degree
// close to d: a random Hamiltonian-style cycle (guaranteeing connectivity)
// plus (d-2)/2 random perfect-matching-ish passes. Exact regularity is not
// guaranteed (self-pairs are skipped), but degrees concentrate around d,
// giving an expander-like low-diameter family for the experiments.
func RandomRegularish(n, d int, src *rng.Source) *Graph {
	g := New(n)
	if n < 2 {
		return g
	}
	perm := src.Perm(n)
	for i := 0; i < n; i++ {
		g.AddEdge(perm[i], perm[(i+1)%n])
	}
	passes := (d - 2) / 2
	for p := 0; p < passes; p++ {
		m := src.Perm(n)
		for i := 0; i+1 < n; i += 2 {
			if m[i] != m[i+1] {
				g.AddEdge(m[i], m[i+1])
			}
		}
	}
	return g
}

// Barbell returns two complete graphs of size k joined by a path of
// pathLen vertices — a classic high-diameter, high-conductance-contrast
// topology for stress-testing dissemination.
func Barbell(k, pathLen int) *Graph {
	n := 2*k + pathLen
	g := New(n)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.AddEdge(i, j)
			g.AddEdge(k+pathLen+i, k+pathLen+j)
		}
	}
	prev := 0
	for i := 0; i < pathLen; i++ {
		g.AddEdge(prev, k+i)
		prev = k + i
	}
	g.AddEdge(prev, k+pathLen)
	return g
}
