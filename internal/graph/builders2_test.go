package graph

import (
	"testing"
	"testing/quick"

	"dyndiam/internal/rng"
)

func TestGrid(t *testing.T) {
	t.Parallel()
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Fatalf("N = %d", g.N())
	}
	// Edges: 3*3 horizontal + 2*4 vertical = 17.
	if g.M() != 17 {
		t.Errorf("M = %d, want 17", g.M())
	}
	if !g.Connected() {
		t.Error("grid disconnected")
	}
	if d := g.StaticDiameter(); d != 3-1+4-1 {
		t.Errorf("diameter = %d, want 5", d)
	}
	if g.Degree(0) != 2 || g.Degree(5) != 4 {
		t.Errorf("corner/inner degrees: %d, %d", g.Degree(0), g.Degree(5))
	}
}

func TestHypercube(t *testing.T) {
	t.Parallel()
	for dim := 1; dim <= 6; dim++ {
		g := Hypercube(dim)
		n := 1 << uint(dim)
		if g.N() != n {
			t.Fatalf("dim %d: N = %d", dim, g.N())
		}
		if g.M() != dim*n/2 {
			t.Errorf("dim %d: M = %d, want %d", dim, g.M(), dim*n/2)
		}
		if d := g.StaticDiameter(); d != dim {
			t.Errorf("dim %d: diameter = %d", dim, d)
		}
		for v := 0; v < n; v++ {
			if g.Degree(v) != dim {
				t.Fatalf("dim %d: degree(%d) = %d", dim, v, g.Degree(v))
			}
		}
	}
}

func TestRandomRegularishProperties(t *testing.T) {
	t.Parallel()
	f := func(seed uint64, nRaw, dRaw uint8) bool {
		n := int(nRaw%100) + 4
		d := 2*(int(dRaw%4)+1) + 2 // 4, 6, 8, 10
		g := RandomRegularish(n, d, rng.New(seed))
		if !g.Connected() {
			return false
		}
		for v := 0; v < n; v++ {
			if g.Degree(v) < 2 || g.Degree(v) > d+2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRandomRegularishLowDiameter(t *testing.T) {
	t.Parallel()
	g := RandomRegularish(512, 8, rng.New(3))
	if d := g.StaticDiameter(); d > 8 {
		t.Errorf("512-node 8-regular-ish diameter %d > 8 (expander-like expected)", d)
	}
}

func TestBarbell(t *testing.T) {
	t.Parallel()
	g := Barbell(5, 3)
	if g.N() != 13 {
		t.Fatalf("N = %d", g.N())
	}
	if !g.Connected() {
		t.Fatal("barbell disconnected")
	}
	// Diameter: across both cliques through the path: 1 + (pathLen+1) + 1.
	if d := g.StaticDiameter(); d != 6 {
		t.Errorf("diameter = %d, want 6", d)
	}
}

func TestBarbellNoPath(t *testing.T) {
	t.Parallel()
	g := Barbell(4, 0)
	if !g.Connected() {
		t.Fatal("disconnected")
	}
	if g.N() != 8 {
		t.Fatalf("N = %d", g.N())
	}
}
