package graph

// Cloner clones graphs into shared, chunked arenas, amortizing the
// per-snapshot allocations that a plain Clone pays. A Trace that records
// thousands of round topologies asks its Cloner for each snapshot; the
// Cloner carves neighbor storage and header slices out of geometrically
// growing chunks, so the amortized allocation count per snapshot approaches
// one (the Graph value itself).
//
// Cloned graphs remain independently mutable: every neighbor list is capped
// at its own arena region, so a later AddEdge reallocates that vertex's
// list instead of overwriting a neighbor's storage. A Cloner is not safe
// for concurrent use.
type Cloner struct {
	ints []int32   // current int32 chunk, len = used prefix
	hdrs [][]int32 // current header chunk, len = used prefix
}

const clonerMinChunk = 1 << 10

// Reset rewinds the arenas so the next Clone reuses their storage from the
// start. Graphs cloned before the Reset alias the rewound chunks and will
// be silently overwritten by later Clones: a caller that retains snapshots
// across a Reset must deep-copy them first (Graph.Clone). Chunks from
// earlier growth generations are dropped to the GC; only the current chunk
// of each arena is reused.
func (c *Cloner) Reset() {
	c.ints = c.ints[:0]
	c.hdrs = c.hdrs[:0]
}

// grabInts returns a zeroed-length slice with capacity need carved from the
// current chunk, growing the chunk when exhausted.
func (c *Cloner) grabInts(need int) []int32 {
	if cap(c.ints)-len(c.ints) < need {
		size := 2 * cap(c.ints)
		if size < clonerMinChunk {
			size = clonerMinChunk
		}
		if size < need {
			size = need
		}
		c.ints = make([]int32, 0, size)
	}
	off := len(c.ints)
	c.ints = c.ints[:off+need]
	return c.ints[off : off+need : off+need]
}

func (c *Cloner) grabHdrs(need int) [][]int32 {
	if cap(c.hdrs)-len(c.hdrs) < need {
		size := 2 * cap(c.hdrs)
		if size < clonerMinChunk {
			size = clonerMinChunk
		}
		if size < need {
			size = need
		}
		c.hdrs = make([][]int32, 0, size)
	}
	off := len(c.hdrs)
	c.hdrs = c.hdrs[:off+need]
	return c.hdrs[off : off+need : off+need]
}

// Clone returns a deep copy of g backed by the Cloner's arenas.
func (c *Cloner) Clone(g *Graph) *Graph {
	out := &Graph{n: g.n, m: g.m, adj: c.grabHdrs(g.n)}
	flat := c.grabInts(2 * g.m)
	o := 0
	for v, nb := range g.adj {
		d := len(nb)
		dst := flat[o : o+d : o+d]
		copy(dst, nb)
		out.adj[v] = dst
		o += d
	}
	return out
}
