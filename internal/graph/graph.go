// Package graph provides the static-graph substrate used by the dynamic
// network simulator: one Graph value describes the topology of a single
// round. Vertices are dense integer ids in [0, N).
//
// The package deliberately stays small and allocation-conscious: the round
// engine builds or edits a Graph every round, and the reduction harness
// copies per-round topologies for three different adversaries. Adjacency is
// stored as sorted []int32 neighbor slices (a CSR-style layout once a graph
// is cloned or copied into an arena), so neighbor iteration is a cache-
// friendly linear scan in deterministic ascending order and Clone is a flat
// memcpy instead of n map clones.
package graph

// Graph is an undirected graph over vertices 0..N-1 with sorted adjacency
// slices. Self-loops are rejected; parallel edges collapse. Neighbor lists
// are always sorted ascending, so every iteration order in this package is
// deterministic.
type Graph struct {
	n   int
	m   int       // edge count, maintained incrementally
	adj [][]int32 // adj[v] is v's neighbor list, sorted ascending
	mem []int32   // arena backing adj after CopyFrom (reused across copies)
}

// New returns an empty graph with n vertices.
func New(n int) *Graph {
	if n < 0 {
		//lint:allow panicfree vertex counts come from construction code, never from runtime input
		panic("graph: negative vertex count")
	}
	g := &Graph{n: n, adj: make([][]int32, n)}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges in O(1).
func (g *Graph) M() int { return g.m }

func (g *Graph) check(v int) {
	if v < 0 || v >= g.n {
		panic("graph: vertex out of range")
	}
}

// search32 returns the smallest index i with s[i] >= x (len(s) if none).
func search32(s []int32, x int32) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// insert32 inserts x into the sorted slice s if absent, reporting whether it
// was inserted.
func insert32(s []int32, x int32) ([]int32, bool) {
	i := search32(s, x)
	if i < len(s) && s[i] == x {
		return s, false
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s, true
}

// remove32 deletes x from the sorted slice s if present, reporting whether
// it was removed.
func remove32(s []int32, x int32) ([]int32, bool) {
	i := search32(s, x)
	if i == len(s) || s[i] != x {
		return s, false
	}
	copy(s[i:], s[i+1:])
	return s[:len(s)-1], true
}

// AddEdge inserts the undirected edge (u, v). Adding an existing edge is a
// no-op. It panics on self-loops or out-of-range vertices.
func (g *Graph) AddEdge(u, v int) {
	g.check(u)
	g.check(v)
	if u == v {
		//lint:allow panicfree the model forbids self-loops; an adversary emitting one is a programming error
		panic("graph: self-loop")
	}
	nu, inserted := insert32(g.adj[u], int32(v))
	if !inserted {
		return
	}
	g.adj[u] = nu
	g.adj[v], _ = insert32(g.adj[v], int32(u))
	g.m++
}

// RemoveEdge deletes the undirected edge (u, v) if present.
func (g *Graph) RemoveEdge(u, v int) {
	g.check(u)
	g.check(v)
	nu, removed := remove32(g.adj[u], int32(v))
	if !removed {
		return
	}
	g.adj[u] = nu
	g.adj[v], _ = remove32(g.adj[v], int32(u))
	g.m--
}

// HasEdge reports whether (u, v) is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	s := g.adj[u]
	i := search32(s, int32(v))
	return i < len(s) && s[i] == int32(v)
}

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int {
	g.check(v)
	return len(g.adj[v])
}

// Adj returns v's neighbor list, sorted ascending. The slice aliases the
// graph's internal storage: callers must treat it as read-only, and it is
// invalidated by any mutation of the graph. It is the allocation-free
// iteration primitive the hot paths (round engine, dynamic diameter) use.
func (g *Graph) Adj(v int) []int32 {
	g.check(v)
	return g.adj[v]
}

// Neighbors appends the neighbors of v to dst in ascending order and
// returns the result.
func (g *Graph) Neighbors(v int, dst []int) []int {
	g.check(v)
	for _, u := range g.adj[v] {
		dst = append(dst, int(u))
	}
	return dst
}

// ForEachNeighbor calls fn for every neighbor of v in ascending order.
func (g *Graph) ForEachNeighbor(v int, fn func(u int)) {
	g.check(v)
	for _, u := range g.adj[v] {
		fn(int(u))
	}
}

// Edges returns all edges as pairs with u < v, in ascending (u, v) order.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.m)
	for u, nb := range g.adj {
		for _, v := range nb {
			if int32(u) < v {
				out = append(out, [2]int{u, int(v)})
			}
		}
	}
	return out
}

// Reset removes every edge while keeping the adjacency storage, so a graph
// rebuilt every round reuses its allocations once degrees stabilize.
func (g *Graph) Reset() {
	for v := range g.adj {
		g.adj[v] = g.adj[v][:0]
	}
	g.m = 0
}

// Clone returns a deep copy of g. The copy's adjacency lives in one flat
// arena (two allocations beyond the Graph value, independent of n).
func (g *Graph) Clone() *Graph {
	c := &Graph{n: g.n, adj: make([][]int32, g.n)}
	c.CopyFrom(g)
	return c
}

// CopyFrom makes g a deep copy of src, reusing g's arena and header storage
// when capacities allow — the steady-state zero-allocation path for
// adversaries that present "base graph plus per-round edits" topologies.
func (g *Graph) CopyFrom(src *Graph) {
	need := 2 * src.m
	if cap(g.mem) < need {
		g.mem = make([]int32, need) //lint:allow hotpathalloc capacity growth only; steady state reuses the arena
	}
	g.mem = g.mem[:need]
	if len(g.adj) != src.n {
		if cap(g.adj) >= src.n {
			g.adj = g.adj[:src.n]
		} else {
			g.adj = make([][]int32, src.n) //lint:allow hotpathalloc capacity growth only; steady state reuses the headers
		}
	}
	o := 0
	for v, nb := range src.adj {
		d := len(nb)
		// Full slice expressions cap each list at its own region, so a
		// later AddEdge reallocates that vertex's list instead of
		// clobbering its arena neighbor.
		dst := g.mem[o : o+d : o+d]
		copy(dst, nb)
		g.adj[v] = dst
		o += d
	}
	g.n, g.m = src.n, src.m
}

// Union returns a new graph over max(g.N, h.N) vertices whose edge set is
// the union of both edge sets. It is used to compose subnetworks.
func Union(g, h *Graph) *Graph {
	n := g.n
	if h.n > n {
		n = h.n
	}
	out := New(n)
	for u, nb := range g.adj {
		for _, v := range nb {
			if int32(u) < v {
				out.AddEdge(u, int(v))
			}
		}
	}
	for u, nb := range h.adj {
		for _, v := range nb {
			if int32(u) < v {
				out.AddEdge(u, int(v))
			}
		}
	}
	return out
}

// BFSInto computes hop distances from src into dist (-1 for unreachable)
// using queue as scratch; both must have length g.N(). It performs no
// allocations and returns the number of reached vertices. Vertices are
// visited in deterministic ascending-neighbor order.
//
//lint:hotpath
func (g *Graph) BFSInto(src int, dist []int32, queue []int32) int {
	g.check(src)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue[0] = int32(src)
	head, tail := 0, 1
	for head < tail {
		v := queue[head]
		head++
		dv := dist[v]
		for _, u := range g.adj[v] {
			if dist[u] == -1 {
				dist[u] = dv + 1
				queue[tail] = u
				tail++
			}
		}
	}
	return tail
}

// BFS computes hop distances from src; unreachable vertices get -1.
func (g *Graph) BFS(src int) []int {
	dist32 := make([]int32, g.n)
	queue := make([]int32, g.n)
	g.BFSInto(src, dist32, queue)
	dist := make([]int, g.n)
	for i, d := range dist32 {
		dist[i] = int(d)
	}
	return dist
}

// ConnectedInto reports whether the graph is connected, using the caller's
// scratch buffers (both of length g.N()); it performs no allocations.
func (g *Graph) ConnectedInto(dist []int32, queue []int32) bool {
	if g.n <= 1 {
		return true
	}
	return g.BFSInto(0, dist, queue) == g.n
}

// Connected reports whether the graph is connected. The empty and the
// single-vertex graphs are connected.
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	return g.ConnectedInto(make([]int32, g.n), make([]int32, g.n))
}

// ConnectedOver reports whether the induced subgraph on the given vertex set
// is connected (edges with an endpoint outside the set are ignored).
func (g *Graph) ConnectedOver(set []int) bool {
	if len(set) <= 1 {
		return true
	}
	in := make([]bool, g.n)
	for _, v := range set {
		g.check(v)
		in[v] = true
	}
	seen := make([]bool, g.n)
	seen[set[0]] = true
	queue := make([]int32, 0, len(set))
	queue = append(queue, int32(set[0]))
	reached := 1
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, u := range g.adj[v] {
			if in[u] && !seen[u] {
				seen[u] = true
				reached++
				queue = append(queue, u)
			}
		}
	}
	// set may contain duplicates; count distinct members.
	distinct := 0
	for _, v := range set {
		if in[v] {
			in[v] = false
			distinct++
		}
	}
	return reached == distinct
}

// Eccentricity returns the maximum BFS distance from v, or -1 if some vertex
// is unreachable.
func (g *Graph) Eccentricity(v int) int {
	dist := g.BFS(v)
	ecc := 0
	for _, d := range dist {
		if d == -1 {
			return -1
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// StaticDiameter returns the diameter of the (static) graph, or -1 if it is
// disconnected. This is the classic graph diameter, distinct from the
// dynamic diameter computed by package dynet.
func (g *Graph) StaticDiameter() int {
	if g.n == 0 {
		return 0
	}
	dist := make([]int32, g.n)
	queue := make([]int32, g.n)
	diam := 0
	for v := 0; v < g.n; v++ {
		if g.BFSInto(v, dist, queue) != g.n {
			return -1
		}
		for _, d := range dist {
			if int(d) > diam {
				diam = int(d)
			}
		}
	}
	return diam
}
