// Package graph provides the static-graph substrate used by the dynamic
// network simulator: one Graph value describes the topology of a single
// round. Vertices are dense integer ids in [0, N).
//
// The package deliberately stays small and allocation-conscious: the round
// engine builds or edits a Graph every round, and the reduction harness
// copies per-round topologies for three different adversaries.
package graph

// Graph is an undirected graph over vertices 0..N-1 with adjacency sets.
// Self-loops are rejected; parallel edges collapse.
type Graph struct {
	n   int
	adj []map[int]struct{}
}

// New returns an empty graph with n vertices.
func New(n int) *Graph {
	if n < 0 {
		//lint:allow panicfree vertex counts come from construction code, never from runtime input
		panic("graph: negative vertex count")
	}
	g := &Graph{n: n, adj: make([]map[int]struct{}, n)}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

func (g *Graph) check(v int) {
	if v < 0 || v >= g.n {
		panic("graph: vertex out of range")
	}
}

// AddEdge inserts the undirected edge (u, v). Adding an existing edge is a
// no-op. It panics on self-loops or out-of-range vertices.
func (g *Graph) AddEdge(u, v int) {
	g.check(u)
	g.check(v)
	if u == v {
		//lint:allow panicfree the model forbids self-loops; an adversary emitting one is a programming error
		panic("graph: self-loop")
	}
	if g.adj[u] == nil {
		g.adj[u] = make(map[int]struct{})
	}
	if g.adj[v] == nil {
		g.adj[v] = make(map[int]struct{})
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
}

// RemoveEdge deletes the undirected edge (u, v) if present.
func (g *Graph) RemoveEdge(u, v int) {
	g.check(u)
	g.check(v)
	if g.adj[u] != nil {
		delete(g.adj[u], v)
	}
	if g.adj[v] != nil {
		delete(g.adj[v], u)
	}
}

// HasEdge reports whether (u, v) is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	if g.adj[u] == nil {
		return false
	}
	_, ok := g.adj[u][v]
	return ok
}

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int {
	g.check(v)
	return len(g.adj[v])
}

// Neighbors appends the neighbors of v to dst and returns the result.
// Iteration order is unspecified; callers that need determinism sort.
func (g *Graph) Neighbors(v int, dst []int) []int {
	g.check(v)
	for u := range g.adj[v] {
		dst = append(dst, u) //lint:allow maporder order documented as unspecified; deterministic callers sort
	}
	return dst
}

// ForEachNeighbor calls fn for every neighbor of v.
func (g *Graph) ForEachNeighbor(v int, fn func(u int)) {
	g.check(v)
	for u := range g.adj[v] {
		fn(u)
	}
}

// Edges returns all edges as pairs with u < v, in unspecified order.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for u, a := range g.adj {
		for v := range a {
			if u < v {
				out = append(out, [2]int{u, v}) //lint:allow maporder order documented as unspecified; deterministic callers (export.DOT) sort
			}
		}
	}
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for u, a := range g.adj {
		if len(a) == 0 {
			continue
		}
		m := make(map[int]struct{}, len(a))
		for v := range a {
			m[v] = struct{}{}
		}
		c.adj[u] = m
	}
	return c
}

// Union returns a new graph over max(g.N, h.N) vertices whose edge set is
// the union of both edge sets. It is used to compose subnetworks.
func Union(g, h *Graph) *Graph {
	n := g.n
	if h.n > n {
		n = h.n
	}
	out := New(n)
	for u, a := range g.adj {
		for v := range a {
			if u < v {
				out.AddEdge(u, v)
			}
		}
	}
	for u, a := range h.adj {
		for v := range a {
			if u < v {
				out.AddEdge(u, v)
			}
		}
	}
	return out
}

// BFS computes hop distances from src; unreachable vertices get -1.
func (g *Graph) BFS(src int) []int {
	g.check(src)
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for u := range g.adj[v] {
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				//lint:allow maporder queue order varies but BFS level sets do not; the returned distances are order-independent
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// Connected reports whether the graph is connected. The empty and the
// single-vertex graphs are connected.
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	dist := g.BFS(0)
	for _, d := range dist {
		if d == -1 {
			return false
		}
	}
	return true
}

// ConnectedOver reports whether the induced subgraph on the given vertex set
// is connected (edges with an endpoint outside the set are ignored).
func (g *Graph) ConnectedOver(set []int) bool {
	if len(set) <= 1 {
		return true
	}
	in := make(map[int]bool, len(set))
	for _, v := range set {
		g.check(v)
		in[v] = true
	}
	seen := map[int]bool{set[0]: true}
	queue := []int{set[0]}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for u := range g.adj[v] {
			if in[u] && !seen[u] {
				seen[u] = true
				//lint:allow maporder traversal order varies but the reached set does not; only its size is returned
				queue = append(queue, u)
			}
		}
	}
	return len(seen) == len(set)
}

// Eccentricity returns the maximum BFS distance from v, or -1 if some vertex
// is unreachable.
func (g *Graph) Eccentricity(v int) int {
	dist := g.BFS(v)
	ecc := 0
	for _, d := range dist {
		if d == -1 {
			return -1
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// StaticDiameter returns the diameter of the (static) graph, or -1 if it is
// disconnected. This is the classic graph diameter, distinct from the
// dynamic diameter computed by package dynet.
func (g *Graph) StaticDiameter() int {
	if g.n == 0 {
		return 0
	}
	diam := 0
	for v := 0; v < g.n; v++ {
		e := g.Eccentricity(v)
		if e == -1 {
			return -1
		}
		if e > diam {
			diam = e
		}
	}
	return diam
}
