package graph

import (
	"sort"
	"testing"
	"testing/quick"

	"dyndiam/internal/rng"
)

func TestAddRemoveHasEdge(t *testing.T) {
	t.Parallel()
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge (0,1) missing after AddEdge")
	}
	if g.HasEdge(0, 2) {
		t.Error("phantom edge (0,2)")
	}
	if g.M() != 2 {
		t.Errorf("M = %d, want 2", g.M())
	}
	g.AddEdge(0, 1) // duplicate collapses
	if g.M() != 2 {
		t.Errorf("M after duplicate add = %d, want 2", g.M())
	}
	g.RemoveEdge(0, 1)
	if g.HasEdge(0, 1) {
		t.Error("edge (0,1) present after RemoveEdge")
	}
	g.RemoveEdge(0, 3) // removing a missing edge is a no-op
	if g.M() != 1 {
		t.Errorf("M = %d, want 1", g.M())
	}
}

func TestSelfLoopPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge(2,2) did not panic")
		}
	}()
	New(3).AddEdge(2, 2)
}

func TestOutOfRangePanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge out of range did not panic")
		}
	}()
	New(3).AddEdge(0, 3)
}

func TestNeighborsAndDegree(t *testing.T) {
	t.Parallel()
	g := Star(5)
	if g.Degree(0) != 4 {
		t.Errorf("center degree = %d, want 4", g.Degree(0))
	}
	nb := g.Neighbors(0, nil)
	sort.Ints(nb)
	want := []int{1, 2, 3, 4}
	if len(nb) != len(want) {
		t.Fatalf("Neighbors(0) = %v", nb)
	}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("Neighbors(0) = %v, want %v", nb, want)
		}
	}
	count := 0
	g.ForEachNeighbor(3, func(u int) { count++ })
	if count != 1 {
		t.Errorf("leaf 3 has %d neighbors, want 1", count)
	}
}

func TestBFSOnLine(t *testing.T) {
	t.Parallel()
	g := Line(6)
	dist := g.BFS(0)
	for i, d := range dist {
		if d != i {
			t.Errorf("dist[%d] = %d, want %d", i, d, i)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	t.Parallel()
	g := New(4)
	g.AddEdge(0, 1)
	dist := g.BFS(0)
	if dist[2] != -1 || dist[3] != -1 {
		t.Errorf("unreachable dist = %v, want -1s", dist[2:])
	}
}

func TestConnected(t *testing.T) {
	t.Parallel()
	cases := []struct {
		g    *Graph
		want bool
	}{
		{Line(5), true},
		{Ring(5), true},
		{Star(5), true},
		{Complete(4), true},
		{New(1), true},
		{New(0), true},
		{New(2), false},
	}
	for i, c := range cases {
		if got := c.g.Connected(); got != c.want {
			t.Errorf("case %d: Connected = %v, want %v", i, got, c.want)
		}
	}
	g := Line(5)
	g.RemoveEdge(2, 3)
	if g.Connected() {
		t.Error("cut line still reported connected")
	}
}

func TestConnectedOver(t *testing.T) {
	t.Parallel()
	g := Line(6)
	g.RemoveEdge(2, 3)
	if !g.ConnectedOver([]int{0, 1, 2}) {
		t.Error("left segment should be connected over itself")
	}
	if g.ConnectedOver([]int{1, 2, 3}) {
		t.Error("segment spanning the cut should be disconnected")
	}
	if !g.ConnectedOver([]int{4}) || !g.ConnectedOver(nil) {
		t.Error("trivial sets must be connected")
	}
}

func TestDiameters(t *testing.T) {
	t.Parallel()
	cases := []struct {
		g    *Graph
		want int
	}{
		{Line(6), 5},
		{Ring(6), 3},
		{Star(8), 2},
		{Complete(5), 1},
		{New(1), 0},
		{New(0), 0},
	}
	for i, c := range cases {
		if got := c.g.StaticDiameter(); got != c.want {
			t.Errorf("case %d: StaticDiameter = %d, want %d", i, got, c.want)
		}
	}
	if New(2).StaticDiameter() != -1 {
		t.Error("disconnected diameter should be -1")
	}
}

func TestUnion(t *testing.T) {
	t.Parallel()
	a := Line(4)
	b := New(6)
	b.AddEdge(3, 5)
	u := Union(a, b)
	if u.N() != 6 {
		t.Fatalf("union N = %d, want 6", u.N())
	}
	if !u.HasEdge(0, 1) || !u.HasEdge(3, 5) {
		t.Error("union missing edges from operands")
	}
	if u.M() != a.M()+b.M() {
		t.Errorf("union M = %d, want %d", u.M(), a.M()+b.M())
	}
}

func TestCloneIsDeep(t *testing.T) {
	t.Parallel()
	g := Ring(5)
	c := g.Clone()
	c.RemoveEdge(0, 1)
	if !g.HasEdge(0, 1) {
		t.Error("mutating clone changed original")
	}
	g.AddEdge(0, 2)
	if c.HasEdge(0, 2) {
		t.Error("mutating original changed clone")
	}
}

func TestRandomConnectedProperty(t *testing.T) {
	t.Parallel()
	f := func(seed uint64, nRaw, extraRaw uint8) bool {
		n := int(nRaw%200) + 2
		extra := int(extraRaw % 50)
		g := RandomConnected(n, extra, rng.New(seed))
		return g.N() == n && g.Connected() && g.M() >= n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBoundedDiameterRandom(t *testing.T) {
	t.Parallel()
	src := rng.New(11)
	for _, n := range []int{10, 100, 500} {
		for _, d := range []int{2, 4, 8} {
			g := BoundedDiameterRandom(n, d, n/4, src)
			if !g.Connected() {
				t.Fatalf("n=%d d=%d: disconnected", n, d)
			}
			if got := g.StaticDiameter(); got > d {
				t.Errorf("n=%d target=%d: diameter %d exceeds target", n, d, got)
			}
		}
	}
}

func TestEdgesMatchesHasEdge(t *testing.T) {
	t.Parallel()
	g := RandomConnected(30, 20, rng.New(3))
	edges := g.Edges()
	if len(edges) != g.M() {
		t.Fatalf("Edges returned %d, M = %d", len(edges), g.M())
	}
	for _, e := range edges {
		if e[0] >= e[1] {
			t.Errorf("edge %v not normalized", e)
		}
		if !g.HasEdge(e[0], e[1]) {
			t.Errorf("Edges lists missing edge %v", e)
		}
	}
}

func BenchmarkBFS(b *testing.B) {
	g := RandomConnected(2000, 4000, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFS(i % 2000)
	}
}

func BenchmarkRandomConnected(b *testing.B) {
	src := rng.New(1)
	for i := 0; i < b.N; i++ {
		RandomConnected(1000, 500, src)
	}
}
