package graph

import (
	"sort"
	"testing"
	"testing/quick"

	"dyndiam/internal/rng"
)

// modelGraph is a deliberately naive map-of-maps graph: the reference
// implementation the sorted-slice Graph must agree with operation by
// operation. It mirrors the pre-CSR map-based representation this package
// replaced, so these tests are the behavioral bridge across that rewrite.
type modelGraph struct {
	n   int
	adj map[int]map[int]bool
}

func newModel(n int) *modelGraph {
	return &modelGraph{n: n, adj: map[int]map[int]bool{}}
}

func (m *modelGraph) addEdge(u, v int) {
	if m.adj[u] == nil {
		m.adj[u] = map[int]bool{}
	}
	if m.adj[v] == nil {
		m.adj[v] = map[int]bool{}
	}
	m.adj[u][v] = true
	m.adj[v][u] = true
}

func (m *modelGraph) removeEdge(u, v int) {
	delete(m.adj[u], v)
	delete(m.adj[v], u)
}

func (m *modelGraph) hasEdge(u, v int) bool { return m.adj[u][v] }

func (m *modelGraph) edgeCount() int {
	total := 0
	for u, nb := range m.adj {
		for v := range nb {
			if u < v {
				total++
			}
		}
	}
	return total
}

func (m *modelGraph) neighbors(v int) []int {
	var out []int
	for u := range m.adj[v] {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// bfs is an independent distance computation over the model (visiting
// neighbors in sorted order, like Graph does).
func (m *modelGraph) bfs(src int) []int {
	dist := make([]int, m.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range m.neighbors(v) {
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// checkAgainstModel verifies every observable accessor of g against m.
func checkAgainstModel(t *testing.T, g *Graph, m *modelGraph) {
	t.Helper()
	if g.N() != m.n {
		t.Fatalf("N = %d, model %d", g.N(), m.n)
	}
	if g.M() != m.edgeCount() {
		t.Fatalf("M = %d, model %d", g.M(), m.edgeCount())
	}
	for v := 0; v < m.n; v++ {
		want := m.neighbors(v)
		adj := g.Adj(v)
		if len(adj) != len(want) || g.Degree(v) != len(want) {
			t.Fatalf("Adj(%d) = %v, model %v", v, adj, want)
		}
		for i, u := range adj {
			if int(u) != want[i] {
				t.Fatalf("Adj(%d) = %v, model %v", v, adj, want)
			}
			if i > 0 && adj[i-1] >= u {
				t.Fatalf("Adj(%d) = %v not strictly ascending", v, adj)
			}
		}
		for u := 0; u < m.n; u++ {
			if g.HasEdge(v, u) != m.hasEdge(v, u) {
				t.Fatalf("HasEdge(%d,%d) = %v, model %v", v, u, g.HasEdge(v, u), !g.HasEdge(v, u))
			}
		}
	}
	edges := g.Edges()
	if len(edges) != m.edgeCount() {
		t.Fatalf("Edges len = %d, model %d", len(edges), m.edgeCount())
	}
	for i, e := range edges {
		if !m.hasEdge(e[0], e[1]) {
			t.Fatalf("Edges[%d] = %v absent from model", i, e)
		}
		if i > 0 && !(edges[i-1][0] < e[0] || (edges[i-1][0] == e[0] && edges[i-1][1] < e[1])) {
			t.Fatalf("Edges not in ascending (u,v) order at %d: %v, %v", i, edges[i-1], e)
		}
	}
	if m.n > 0 {
		for _, src := range []int{0, m.n / 2, m.n - 1} {
			want := m.bfs(src)
			got := g.BFS(src)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("BFS(%d)[%d] = %d, model %d", src, v, got[v], want[v])
				}
			}
		}
	}
}

// TestGraphMatchesMapModel drives Graph and the map model through the same
// random operation sequence — adds, removes, resets, arena copies, clones —
// and checks full observable equivalence after every step.
func TestGraphMatchesMapModel(t *testing.T) {
	t.Parallel()
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%40) + 2
		src := rng.New(seed)
		g := New(n)
		m := newModel(n)
		spare := New(1) // CopyFrom target with mismatched initial size
		for op := 0; op < 200; op++ {
			u := int(src.Uint64() % uint64(n))
			v := int(src.Uint64() % uint64(n))
			switch src.Uint64() % 10 {
			case 0, 1, 2, 3, 4: // bias toward adds so graphs grow
				if u != v {
					g.AddEdge(u, v)
					m.addEdge(u, v)
				}
			case 5, 6:
				g.RemoveEdge(u, v)
				if u != v {
					m.removeEdge(u, v)
				}
			case 7:
				g.Reset()
				m = newModel(n)
			case 8:
				// Round-trip through the reusable arena: g -> spare -> g.
				spare.CopyFrom(g)
				g.CopyFrom(spare)
			case 9:
				g = g.Clone()
			}
		}
		checkAgainstModel(t, g, m)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestCopyFromIsolation pins the arena-aliasing contract: after CopyFrom,
// mutating the copy must never disturb the source or sibling vertices whose
// lists share the arena.
func TestCopyFromIsolation(t *testing.T) {
	t.Parallel()
	src := RandomConnected(24, 30, rng.New(7))
	dst := New(24)
	dst.CopyFrom(src)
	before := src.Edges()
	// Grow a mid-arena vertex's list: the full-slice-expression caps must
	// force a reallocation instead of clobbering vertex 13's region.
	for v := 0; v < 24; v++ {
		if v != 12 && !dst.HasEdge(12, v) {
			dst.AddEdge(12, v)
		}
	}
	after := src.Edges()
	if len(before) != len(after) {
		t.Fatalf("source edge count changed: %d -> %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("source edge %d changed: %v -> %v", i, before[i], after[i])
		}
	}
}

// TestCopyFromSteadyStateAllocs pins the zero-allocation reuse path: once a
// destination's arena has grown to fit, repeated CopyFrom calls allocate
// nothing.
func TestCopyFromSteadyStateAllocs(t *testing.T) {
	t.Parallel()
	src := RandomConnected(64, 96, rng.New(3))
	dst := New(64)
	dst.CopyFrom(src) // warm the arena
	if avg := testing.AllocsPerRun(100, func() { dst.CopyFrom(src) }); avg != 0 {
		t.Errorf("CopyFrom steady state allocates %v per call, want 0", avg)
	}
	g := New(64)
	g.CopyFrom(src)
	if avg := testing.AllocsPerRun(100, func() { g.Reset() }); avg != 0 {
		t.Errorf("Reset allocates %v per call, want 0", avg)
	}
	dist := make([]int32, 64)
	queue := make([]int32, 64)
	if avg := testing.AllocsPerRun(100, func() { src.BFSInto(0, dist, queue) }); avg != 0 {
		t.Errorf("BFSInto allocates %v per call, want 0", avg)
	}
}
