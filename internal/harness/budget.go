package harness

import (
	"fmt"
	"sync/atomic"
)

// DefaultRoundBudget is the round horizon the harness grants an open-ended
// protocol run (leader election, consensus) before declaring
// non-termination. Theorem 8 runs terminate in O((D+log N) log² N) rounds,
// far below this; the budget exists so a broken protocol or a faulty run
// surfaces as a structured NonTermination instead of spinning forever.
const DefaultRoundBudget = 50_000_000

var roundBudget int64 = DefaultRoundBudget

// SetRoundBudget sets the harness round budget for subsequent runs and
// returns the previous value. r < 1 restores DefaultRoundBudget. Like
// SetSweepWorkers, the setting is process-global; tests and fault sweeps
// lower it so non-terminating cells fail fast.
func SetRoundBudget(r int) int {
	if r < 1 {
		r = DefaultRoundBudget
	}
	return int(atomic.SwapInt64(&roundBudget, int64(r)))
}

// RoundBudget returns the current harness round budget.
func RoundBudget() int { return int(atomic.LoadInt64(&roundBudget)) }

// NonTermination reports that a run exhausted its round budget without
// deciding. It is a structured error so sweep layers can record it as a
// per-cell outcome (see gracefulCells) instead of aborting a whole table.
type NonTermination struct {
	Name   string // experiment or protocol label
	Cell   int    // trial or cell index within the sweep
	Budget int    // the round budget that was exhausted
}

func (e NonTermination) Error() string {
	return fmt.Sprintf("harness: %s cell %d did not terminate within %d rounds", e.Name, e.Cell, e.Budget)
}
