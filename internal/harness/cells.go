package harness

import (
	"runtime"
	"sync"
	"sync/atomic"

	"dyndiam/internal/obs"
	"dyndiam/internal/rng"
)

// The sweep functions (GapTable, LeaderSweep, EstimateSweep, MajoritySweep,
// ConsensusGap) are grids of independent cells: every cell derives all of
// its randomness from a seed that is a pure function of the sweep seed and
// the cell's parameters — never of execution order — and writes only its
// own result slot. Running cells concurrently therefore yields tables
// identical to sequential execution, whatever SweepWorkers is set to.

var sweepWorkers int64 = 1

// SetSweepWorkers sets how many experiment cells run concurrently in the
// sweep functions and returns the previous value. w < 1 selects
// GOMAXPROCS. The setting changes wall-clock time only, never results.
func SetSweepWorkers(w int) int {
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	return int(atomic.SwapInt64(&sweepWorkers, int64(w)))
}

// SweepWorkers returns the current sweep concurrency.
func SweepWorkers() int { return int(atomic.LoadInt64(&sweepWorkers)) }

// Sweep metric roll-ups. When enabled, every cell of every sweep records
// into a private obs.Registry (created just-in-time, so the disabled path
// does no metric work at all), and forEachCell merges the per-cell
// registries into one aggregate in ascending cell-index order — never in
// completion order. Counter and histogram merges are sums, registries are
// merged in a fixed order, and each cell's content is a pure function of
// its parameters, so the aggregate snapshot is bit-identical at every
// SweepWorkers setting (pinned by TestSweepMetricsParallelEqualSequential).
var (
	sweepMetricsMu  sync.Mutex
	sweepMetricsAgg *obs.Registry // nil = collection disabled
)

// EnableSweepMetrics turns on per-cell metric collection for subsequent
// sweeps, discarding any aggregate a previous enablement accumulated.
func EnableSweepMetrics() {
	sweepMetricsMu.Lock()
	defer sweepMetricsMu.Unlock()
	sweepMetricsAgg = obs.NewRegistry()
}

// TakeSweepMetrics disables collection and returns the aggregate registry
// (nil when collection was never enabled).
func TakeSweepMetrics() *obs.Registry {
	sweepMetricsMu.Lock()
	defer sweepMetricsMu.Unlock()
	r := sweepMetricsAgg
	sweepMetricsAgg = nil
	return r
}

func sweepMetricsEnabled() bool {
	sweepMetricsMu.Lock()
	defer sweepMetricsMu.Unlock()
	return sweepMetricsAgg != nil
}

// Sweep span capture. When enabled, forEachCell appends one span per cell
// to the captured stream after every error-free sweep: begin/end events on
// Track 1 (the harness lane of the repo's track convention), Node = cell
// index, positioned on the cell-index clock (cell i spans [i, i+1)), with
// A = the cell's engine_rounds_total. Spans are appended in ascending
// cell-index order — never completion order — so the captured stream is
// bit-identical at every SweepWorkers setting (pinned by
// TestSweepSpansParallelEqualSequential). The serve layer folds this
// stream into its per-job flight recorder so a Perfetto load of a job
// trace shows its sweep cells under the job span.
var (
	sweepSpansMu sync.Mutex
	sweepSpans   []obs.Event // nil = capture disabled
	keySweepCell = obs.Intern("sweep_cell")
)

// EnableSweepSpans turns on per-cell span capture for subsequent sweeps,
// discarding anything a previous enablement captured.
func EnableSweepSpans() {
	sweepSpansMu.Lock()
	defer sweepSpansMu.Unlock()
	sweepSpans = []obs.Event{}
}

// TakeSweepSpans disables capture and returns the captured span events
// (nil when capture was never enabled).
func TakeSweepSpans() []obs.Event {
	sweepSpansMu.Lock()
	defer sweepSpansMu.Unlock()
	evs := sweepSpans
	sweepSpans = nil
	return evs
}

func sweepSpansEnabled() bool {
	sweepSpansMu.Lock()
	defer sweepSpansMu.Unlock()
	return sweepSpans != nil
}

// appendSweepSpans emits one cell span per registry in slice (= cell-index)
// order. It runs only after an error-free sweep, so every non-nil registry
// is a completed cell.
func appendSweepSpans(regs []*obs.Registry) {
	sweepSpansMu.Lock()
	defer sweepSpansMu.Unlock()
	if sweepSpans == nil {
		return
	}
	for i, r := range regs {
		if r == nil {
			continue
		}
		rounds := r.Counter("engine_rounds_total").Value()
		sweepSpans = append(sweepSpans,
			obs.Event{Kind: obs.KindSpanBegin, Round: int32(i), Node: int32(i), Track: 1, A: rounds, Name: keySweepCell},
			obs.Event{Kind: obs.KindSpanEnd, Round: int32(i + 1), Node: int32(i), Track: 1, A: rounds, Name: keySweepCell},
		)
	}
}

// mergeSweepMetrics folds per-cell registries into the aggregate in slice
// (= cell-index) order. Nil entries — disabled collection or unrun cells —
// are skipped.
func mergeSweepMetrics(regs []*obs.Registry) {
	sweepMetricsMu.Lock()
	defer sweepMetricsMu.Unlock()
	if sweepMetricsAgg == nil {
		return
	}
	for _, r := range regs {
		if r != nil {
			sweepMetricsAgg.Merge(r)
		}
	}
}

// forEachCell runs fn(i, reg) for every cell index in [0, cells) across
// SweepWorkers goroutines. All cells run to completion; the lowest-index
// error is returned, which is the error a sequential sweep reports first.
// reg is the cell's private metrics registry when sweep metrics or sweep
// spans are enabled, nil (and safe to use unconditionally) otherwise;
// after an error-free sweep every cell's registry is merged into the
// metrics aggregate and rendered into the span capture, both in
// cell-index order.
func forEachCell(cells int, fn func(i int, reg *obs.Registry) error) error {
	workers := SweepWorkers()
	if workers > cells {
		workers = cells
	}
	var regs []*obs.Registry
	if sweepMetricsEnabled() || sweepSpansEnabled() {
		regs = make([]*obs.Registry, cells)
	}
	cellReg := func(i int) *obs.Registry {
		if regs == nil {
			return nil
		}
		regs[i] = obs.NewRegistry()
		return regs[i]
	}
	if workers <= 1 {
		for i := 0; i < cells; i++ {
			if err := fn(i, cellReg(i)); err != nil {
				return err
			}
		}
		mergeSweepMetrics(regs)
		appendSweepSpans(regs)
		return nil
	}
	errs := make([]error, cells)
	next := int64(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= cells {
					return
				}
				errs[i] = fn(i, cellReg(i))
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	mergeSweepMetrics(regs)
	appendSweepSpans(regs)
	return nil
}

// ForEachCell exposes the deterministic sweep-cell runner to sweeps that
// live outside this package (the adversary-synthesis harness in
// internal/advsearch). The contract is forEachCell's: fn(i, reg) must
// derive all of its randomness from the cell index i (never from
// execution order), write only its own result slot, and treat reg as its
// private metrics registry (nil unless sweep metrics or spans are
// enabled). Under that contract results are identical at every
// SweepWorkers setting.
func ForEachCell(cells int, fn func(i int, reg *obs.Registry) error) error {
	return forEachCell(cells, fn)
}

// TrialSeeds derives trials independent seeds from root by rng splitting.
// Trial t's seed depends only on (root, t), so repeated-trial sweeps stay
// reproducible cell by cell no matter how cells are scheduled.
func TrialSeeds(root uint64, trials int) []uint64 {
	src := rng.New(root)
	out := make([]uint64, trials)
	for t := range out {
		out[t] = src.Split('t', uint64(t)).Uint64()
	}
	return out
}
