package harness

import (
	"runtime"
	"sync"
	"sync/atomic"

	"dyndiam/internal/rng"
)

// The sweep functions (GapTable, LeaderSweep, EstimateSweep, MajoritySweep,
// ConsensusGap) are grids of independent cells: every cell derives all of
// its randomness from a seed that is a pure function of the sweep seed and
// the cell's parameters — never of execution order — and writes only its
// own result slot. Running cells concurrently therefore yields tables
// identical to sequential execution, whatever SweepWorkers is set to.

var sweepWorkers int64 = 1

// SetSweepWorkers sets how many experiment cells run concurrently in the
// sweep functions and returns the previous value. w < 1 selects
// GOMAXPROCS. The setting changes wall-clock time only, never results.
func SetSweepWorkers(w int) int {
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	return int(atomic.SwapInt64(&sweepWorkers, int64(w)))
}

// SweepWorkers returns the current sweep concurrency.
func SweepWorkers() int { return int(atomic.LoadInt64(&sweepWorkers)) }

// forEachCell runs fn(i) for every cell index in [0, cells) across
// SweepWorkers goroutines. All cells run to completion; the lowest-index
// error is returned, which is the error a sequential sweep reports first.
func forEachCell(cells int, fn func(i int) error) error {
	workers := SweepWorkers()
	if workers > cells {
		workers = cells
	}
	if workers <= 1 {
		for i := 0; i < cells; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, cells)
	next := int64(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= cells {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// TrialSeeds derives trials independent seeds from root by rng splitting.
// Trial t's seed depends only on (root, t), so repeated-trial sweeps stay
// reproducible cell by cell no matter how cells are scheduled.
func TrialSeeds(root uint64, trials int) []uint64 {
	src := rng.New(root)
	out := make([]uint64, trials)
	for t := range out {
		out[t] = src.Split('t', uint64(t)).Uint64()
	}
	return out
}
