package harness

import (
	"dyndiam/internal/disjcp"
	"dyndiam/internal/protocols/flood"
	"dyndiam/internal/rng"
	"dyndiam/internal/subnet"
	"dyndiam/internal/twoparty"
)

// CommRow relates, for one (n, q), the three communication quantities of
// the Theorem 6 argument: the trivial two-party ceiling, the Theorem 1
// floor (unit constants), and the bits the reduction actually forwarded
// while simulating the fast oracle for (q-1)/2 rounds.
type CommRow struct {
	N, Q          int // DISJOINTNESSCP parameters
	NetworkN      int
	TrivialBits   int
	FloorBits     float64
	ReductionBits int
	BitsPerRound  float64
	TimeFloorFR   float64 // (N/lg N)^(1/4) for the composed network size
}

// CommTable sweeps (n, q) and measures the reduction's communication —
// the budget side of "O(s log N) bits must exceed Ω(n/q²) − O(log n)".
func CommTable(ns, qs []int, seed uint64) ([]CommRow, error) {
	var rows []CommRow
	src := rng.New(seed)
	for _, n := range ns {
		for _, q := range qs {
			in := disjcp.RandomOne(n, q, src)
			net, err := subnet.NewCFlood(in)
			if err != nil {
				return nil, err
			}
			setup := twoparty.FromCFlood(net, flood.CFlood{}, seed+uint64(n*q), map[string]int64{
				flood.ExtraD: 10,
			})
			res, err := twoparty.Run(setup, false)
			if err != nil {
				return nil, err
			}
			bits := res.BitsAliceToBob + res.BitsBobToAlice
			rows = append(rows, CommRow{
				N: n, Q: q, NetworkN: net.N,
				TrivialBits:   disjcp.TrivialBits(n, q),
				FloorBits:     disjcp.LowerBoundBits(n, q),
				ReductionBits: bits,
				BitsPerRound:  float64(bits) / float64(res.Rounds),
				TimeFloorFR:   disjcp.TimeLowerBoundFloodingRounds(net.N),
			})
		}
	}
	return rows, nil
}

// FormatCommTable renders CommTable rows.
func FormatCommTable(rows []CommRow) *Table {
	t := &Table{
		Caption: "Communication accounting: reduction bits vs the trivial ceiling and the Theorem 1 floor",
		Header:  []string{"n", "q", "network N", "trivial bits", "floor bits", "reduction bits", "bits/rnd", "(N/lgN)^1/4"},
	}
	for _, r := range rows {
		t.Add(r.N, r.Q, r.NetworkN, r.TrivialBits, r.FloorBits, r.ReductionBits, r.BitsPerRound, r.TimeFloorFR)
	}
	return t
}
