package harness

import (
	"fmt"
	"time"

	"dyndiam/internal/adversaries"
	"dyndiam/internal/dynet"
	"dyndiam/internal/faults"
	"dyndiam/internal/protocols/flood"
	"dyndiam/internal/protocols/leader"
	"dyndiam/internal/rng"
	"dyndiam/internal/stats"
)

// The degradation sweeps measure how fast the paper's clean-model
// guarantees decay under injected faults: one row per fault Spec, each row
// an independent repeated-trial estimate of the protocol's error rate with
// a Wilson confidence interval. The zero Spec row runs the exact clean
// path (a zero Spec compiles to no Plan at all), so its leader column
// reproduces LeaderReliability bit for bit — the anchor the chaos gate
// compares against.

// DegradationConfig configures one degradation sweep.
type DegradationConfig struct {
	N          int
	TargetDiam int
	Trials     int // trials per row (per fault Spec)

	// Seed roots the fault-plan seeds. Trial t of row i injects from a
	// seed that is a pure function of (Seed, i, t); the Seed field of the
	// Specs themselves is ignored. Protocol and adversary coins use the
	// same per-trial seeds as LeaderReliability, independent of this.
	Seed uint64

	// Specs are the fault mixes to sweep, one row each, typically from
	// zero upward along one fault dimension.
	Specs []faults.Spec

	// CellBudget bounds each trial's wall-clock time (0 = unlimited).
	// Overrunning trials are abandoned and recorded as CellTimedOut.
	CellBudget time.Duration

	// Extra is passed to the protocol's machines (leader.ExtraNPrime, ...).
	Extra map[string]int64
}

// DegradationRow is one row of a degradation table: one fault Spec,
// Trials repeated runs.
type DegradationRow struct {
	Spec   faults.Spec
	Label  string // Spec.Label(): "none", "drop=0.05", ...
	Trials int

	// Errors counts trials that violated the protocol's correctness spec
	// plus trials that failed outright (non-termination, panic, wall-clock
	// timeout); ErrorRate is Errors/Trials with the 95% Wilson interval
	// [WilsonLo, WilsonHi].
	Errors             int
	ErrorRate          float64
	WilsonLo, WilsonHi float64

	// Rounds summarizes termination rounds over the trials that completed
	// (CellOK), whether or not their outputs were correct.
	Rounds stats.Summary

	// CellFailures lists the non-OK trials in ascending trial order —
	// the graceful-degradation record of what went wrong where.
	CellFailures []CellResult
}

// degTrial is one completed trial's contribution to a row.
type degTrial struct {
	rounds int
	wrong  bool // outputs violated the problem spec
}

// FaultTrialSeed derives the fault-plan seed for trial t of row i of a
// degradation sweep — a pure function of (root, i, t), exported so any
// single faulty trial can be replayed in isolation (see EXPERIMENTS.md and
// cmd/chaos -replay).
func FaultTrialSeed(root uint64, row, trial int) uint64 {
	return rng.New(root).Split('F', uint64(row), uint64(trial)).Uint64()
}

// degradationSweep drives one row per Spec, Trials graceful cells per row.
// Rows run sequentially; trials within a row run across SweepWorkers.
func degradationSweep(cfg DegradationConfig, run func(trial int, plan *faults.Plan) (degTrial, error)) ([]DegradationRow, error) {
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("harness: degradation sweep needs at least one trial, got %d", cfg.Trials)
	}
	if len(cfg.Specs) == 0 {
		return nil, fmt.Errorf("harness: degradation sweep needs at least one fault spec")
	}
	// A malformed Spec is a configuration error, not a cell outcome:
	// validate every row up front so it aborts the sweep once instead of
	// failing Trials cells.
	for i, spec := range cfg.Specs {
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("harness: degradation row %d: %w", i, err)
		}
	}
	rows := make([]DegradationRow, len(cfg.Specs))
	for i, spec := range cfg.Specs {
		i, spec := i, spec
		trials, outcomes := gracefulCells(cfg.Trials, cfg.CellBudget, func(trial int) (degTrial, error) {
			var plan *faults.Plan
			if !spec.Zero() {
				s := spec
				s.Seed = FaultTrialSeed(cfg.Seed, i, trial)
				p, err := faults.NewPlan(s)
				if err != nil {
					return degTrial{}, err
				}
				plan = p
			}
			return run(trial, plan)
		})
		row := DegradationRow{Spec: spec, Label: spec.Label(), Trials: cfg.Trials}
		var rounds []float64
		for t, oc := range outcomes {
			if oc.Outcome != CellOK {
				row.Errors++
				row.CellFailures = append(row.CellFailures, oc)
				continue
			}
			if trials[t].wrong {
				row.Errors++
			}
			rounds = append(rounds, float64(trials[t].rounds))
		}
		row.ErrorRate = float64(row.Errors) / float64(cfg.Trials)
		row.WilsonLo, row.WilsonHi = stats.Wilson(row.Errors, cfg.Trials, 1.96)
		row.Rounds = stats.Summarize(rounds)
		rows[i] = row
	}
	return rows, nil
}

// LeaderDegradation sweeps the Section 7 leader election across fault
// Specs. A trial errs when any node outputs a wrong leader, or when the
// run fails to terminate within the harness round budget (a frozen
// candidate can stall the doubling schedule forever — under faults that is
// a degradation datum, not a harness bug). The zero-Spec row is identical
// to LeaderReliability with the same N, diameter, trials, and Extra.
func LeaderDegradation(cfg DegradationConfig) ([]DegradationRow, error) {
	budget := RoundBudget()
	return degradationSweep(cfg, func(trial int, plan *faults.Plan) (degTrial, error) {
		seed := ReliabilityTrialSeed(trial)
		adv := adversaries.BoundedDiameter(cfg.N, cfg.TargetDiam, cfg.N/2, seed)
		ms := dynet.NewMachines(leader.Protocol{}, cfg.N, make([]int64, cfg.N), seed, cfg.Extra)
		e := &dynet.Engine{Machines: ms, Adv: adv, Workers: 1, Plan: plan}
		res, err := e.Run(budget)
		if err != nil {
			return degTrial{}, err
		}
		if !res.Done {
			return degTrial{}, NonTermination{Name: "leader degradation", Cell: trial, Budget: budget}
		}
		d := degTrial{rounds: res.Rounds}
		for _, out := range res.Outputs {
			if out != int64(cfg.N-1) {
				d.wrong = true
			}
		}
		return d, nil
	})
}

// CFloodDegradation sweeps unknown-diameter confirmed flooding (the
// pessimistic D = N-1 baseline) across fault Specs. A trial errs when the
// source confirms while some node is uninformed or holds a corrupted
// token — exactly the CFLOOD correctness condition — or when the source
// never confirms within the 4N-round horizon (a crashed source misses its
// confirmation round).
func CFloodDegradation(cfg DegradationConfig) ([]DegradationRow, error) {
	const token = 1
	horizon := 4 * cfg.N
	return degradationSweep(cfg, func(trial int, plan *faults.Plan) (degTrial, error) {
		seed := ReliabilityTrialSeed(trial)
		adv := adversaries.BoundedDiameter(cfg.N, cfg.TargetDiam, cfg.N/2, seed)
		inputs := make([]int64, cfg.N)
		inputs[0] = token
		ms := dynet.NewMachines(flood.CFlood{}, cfg.N, inputs, seed, cfg.Extra)
		e := &dynet.Engine{Machines: ms, Adv: adv, Workers: 1, Plan: plan,
			Terminated: dynet.NodeDecided(0)}
		res, err := e.Run(horizon)
		if err != nil {
			return degTrial{}, err
		}
		if !res.Done {
			return degTrial{}, NonTermination{Name: "cflood degradation", Cell: trial, Budget: horizon}
		}
		d := degTrial{rounds: res.Rounds}
		for _, m := range ms {
			out, ok := m.Output()
			if !ok || out != token {
				d.wrong = true
			}
		}
		return d, nil
	})
}

// FormatDegradationTable renders degradation rows.
func FormatDegradationTable(name string, rows []DegradationRow) *Table {
	t := &Table{
		Caption: fmt.Sprintf("%s degradation: error rate vs fault rate (95%% Wilson)", name),
		Header:  []string{"faults", "trials", "errors", "rate", "wilson95", "rounds", "cell failures"},
	}
	for _, r := range rows {
		t.Add(r.Label, r.Trials, r.Errors,
			fmt.Sprintf("%.4f", r.ErrorRate),
			fmt.Sprintf("[%.4f,%.4f]", r.WilsonLo, r.WilsonHi),
			r.Rounds.String(), len(r.CellFailures))
	}
	return t
}
