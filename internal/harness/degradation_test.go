package harness

import (
	"reflect"
	"testing"

	"dyndiam/internal/faults"
)

// TestLeaderDegradationZeroRowMatchesReliability pins the chaos gate's
// anchor: the zero-Spec degradation row runs the exact clean path, so its
// error count and round distribution reproduce LeaderReliability.
func TestLeaderDegradationZeroRowMatchesReliability(t *testing.T) {
	const n, diam, trials = 16, 4, 4
	rel, err := LeaderReliability(n, diam, trials, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := LeaderDegradation(DegradationConfig{
		N: n, TargetDiam: diam, Trials: trials, Seed: 1,
		Specs: []faults.Spec{{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	row := rows[0]
	if row.Label != "none" || len(row.CellFailures) != 0 {
		t.Fatalf("zero row: %+v", row)
	}
	if row.Errors != rel.Errors || row.Trials != rel.Trials {
		t.Errorf("errors %d/%d, reliability %d/%d", row.Errors, row.Trials, rel.Errors, rel.Trials)
	}
	if !reflect.DeepEqual(row.Rounds, rel.Rounds) {
		t.Errorf("rounds %+v, reliability %+v", row.Rounds, rel.Rounds)
	}
}

// TestDegradationParallelEqualsSequential: degradation tables are pure
// functions of the config — identical at every SweepWorkers setting, even
// with faults injected.
func TestDegradationParallelEqualsSequential(t *testing.T) {
	cfg := DegradationConfig{
		N: 12, TargetDiam: 3, Trials: 3, Seed: 7,
		Specs: []faults.Spec{{}, {Drop: 0.3}, {Crash: 0.05}},
	}
	run := func(workers int) []DegradationRow {
		prev := SetSweepWorkers(workers)
		defer SetSweepWorkers(prev)
		rows, err := LeaderDegradation(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Error values are not comparable across runs; compare outcomes.
		for i := range rows {
			for j := range rows[i].CellFailures {
				rows[i].CellFailures[j].Err = nil
			}
		}
		return rows
	}
	if seq, par := run(1), run(8); !reflect.DeepEqual(seq, par) {
		t.Errorf("degradation rows differ across worker counts:\nseq %+v\npar %+v", seq, par)
	}
}

// TestCrashRejoinGridParallelDeterminism closes the remaining parallel-
// determinism gap: crash/rejoin fault grids — scheduled outages with
// rejoin windows plus random crash/rejoin churn — must be bit-identical
// at SweepWorkers 1 vs 8, INCLUDING the recorded error string of every
// failed cell. (TestDegradationParallelEqualsSequential nils the error
// values before comparing, so only the outcome codes had the guarantee;
// here the texts themselves are part of the contract, matching the
// distributed-equivalence proof in internal/wire which diffs error texts
// byte for byte.)
func TestCrashRejoinGridParallelDeterminism(t *testing.T) {
	cfg := DegradationConfig{
		N: 12, TargetDiam: 3, Trials: 4, Seed: 11,
		Specs: []faults.Spec{
			// Deterministic crash/rejoin: two overlapping scheduled outages.
			{Outages: []faults.Outage{
				{Node: 2, From: 1, Until: 4},
				{Node: 7, From: 3, Until: 6},
			}},
			// Random crash/rejoin churn.
			{Crash: 0.1, MeanDown: 2},
			// Churn compounded with message loss.
			{Crash: 0.05, MeanDown: 4, Drop: 0.1},
		},
	}
	// CellResult.Err is compared by text: distinct error instances with
	// equal messages are the same recorded failure.
	type failure struct {
		Cell    int
		Outcome CellOutcome
		Err     string
	}
	flatten := func(rows []DegradationRow) ([]DegradationRow, [][]failure) {
		fails := make([][]failure, len(rows))
		for i := range rows {
			for _, cf := range rows[i].CellFailures {
				f := failure{Cell: cf.Cell, Outcome: cf.Outcome}
				if cf.Err != nil {
					f.Err = cf.Err.Error()
				}
				fails[i] = append(fails[i], f)
			}
			rows[i].CellFailures = nil
		}
		return rows, fails
	}
	sweeps := []struct {
		name  string
		sweep func(DegradationConfig) ([]DegradationRow, error)
	}{
		{"leader", LeaderDegradation},
		{"cflood", CFloodDegradation},
	}
	for _, tc := range sweeps {
		run := func(workers int) ([]DegradationRow, [][]failure) {
			prev := SetSweepWorkers(workers)
			defer SetSweepWorkers(prev)
			rows, err := tc.sweep(cfg)
			if err != nil {
				t.Fatalf("%s at %d workers: %v", tc.name, workers, err)
			}
			return flatten(rows)
		}
		seqRows, seqFails := run(1)
		parRows, parFails := run(8)
		if !reflect.DeepEqual(seqRows, parRows) {
			t.Errorf("%s crash/rejoin grid differs across worker counts:\nseq %+v\npar %+v", tc.name, seqRows, parRows)
		}
		if !reflect.DeepEqual(seqFails, parFails) {
			t.Errorf("%s cell failures (with error texts) differ across worker counts:\nseq %+v\npar %+v", tc.name, seqFails, parFails)
		}
		// The grid must actually exercise the crash path: scheduled
		// outages or churn should perturb at least one row relative to a
		// wholly clean run (rounds or errors), otherwise this test would
		// pass vacuously on a no-op fault plan.
		perturbed := false
		for _, r := range seqRows {
			if r.Errors > 0 {
				perturbed = true
			}
		}
		if !perturbed {
			t.Logf("%s: no errored cells in the crash grid (still a valid determinism check)", tc.name)
		}
	}
}

// TestCFloodDegradationShape: the flooding sweep produces one row per
// Spec, a clean zero row, and degradation under total message loss.
func TestCFloodDegradationShape(t *testing.T) {
	rows, err := CFloodDegradation(DegradationConfig{
		N: 10, TargetDiam: 3, Trials: 3, Seed: 5,
		Specs: []faults.Spec{{}, {Drop: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Errors != 0 {
		t.Errorf("clean cflood row errored: %+v", rows[0])
	}
	if rows[1].Errors != rows[1].Trials {
		t.Errorf("Drop=1 cflood row should fail every trial: %+v", rows[1])
	}
	for i, r := range rows {
		if r.WilsonLo < 0 || r.WilsonHi > 1 || r.WilsonLo > r.WilsonHi {
			t.Errorf("row %d: Wilson interval [%v,%v]", i, r.WilsonLo, r.WilsonHi)
		}
		if r.ErrorRate < r.WilsonLo-1e-9 || r.ErrorRate > r.WilsonHi+1e-9 {
			t.Errorf("row %d: rate %v outside its interval [%v,%v]", i, r.ErrorRate, r.WilsonLo, r.WilsonHi)
		}
	}
}

// TestDegradationRejectsBadConfig: malformed Specs and empty grids abort
// the sweep up front instead of failing every cell.
func TestDegradationRejectsBadConfig(t *testing.T) {
	bad := []DegradationConfig{
		{N: 8, TargetDiam: 2, Trials: 0, Specs: []faults.Spec{{}}},
		{N: 8, TargetDiam: 2, Trials: 2},
		{N: 8, TargetDiam: 2, Trials: 2, Specs: []faults.Spec{{Drop: -1}}},
	}
	for i, cfg := range bad {
		if _, err := LeaderDegradation(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

// TestFaultTrialSeedStable pins the replay contract: the published seed
// derivation must never change, or EXPERIMENTS.md replay recipes break.
func TestFaultTrialSeedStable(t *testing.T) {
	a := FaultTrialSeed(1, 0, 0)
	if b := FaultTrialSeed(1, 0, 0); a != b {
		t.Fatal("not deterministic")
	}
	seen := map[uint64]bool{a: true}
	for row := 0; row < 3; row++ {
		for trial := 0; trial < 3; trial++ {
			if row == 0 && trial == 0 {
				continue
			}
			s := FaultTrialSeed(1, row, trial)
			if seen[s] {
				t.Errorf("seed collision at row %d trial %d", row, trial)
			}
			seen[s] = true
		}
	}
}

// TestFormatDegradationTable smoke-renders the table.
func TestFormatDegradationTable(t *testing.T) {
	rows, err := LeaderDegradation(DegradationConfig{
		N: 10, TargetDiam: 3, Trials: 2, Seed: 1,
		Specs: []faults.Spec{{}, {Drop: 0.2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl := FormatDegradationTable("leader", rows)
	if len(tbl.Rows) != 2 {
		t.Fatalf("table rows = %d", len(tbl.Rows))
	}
}
