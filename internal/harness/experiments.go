package harness

import (
	"fmt"
	"math"

	"dyndiam/internal/adversaries"
	"dyndiam/internal/bitio"
	"dyndiam/internal/bitkernel"
	"dyndiam/internal/dynet"
	"dyndiam/internal/obs"
	"dyndiam/internal/protocols/consensus"
	"dyndiam/internal/protocols/counting"
	"dyndiam/internal/protocols/flood"
	"dyndiam/internal/protocols/leader"
)

// sweepRoundBounds buckets whole-run round counts; wider than the engine's
// per-round bounds because leader elections run for millions of rounds.
// Shared across cells so merged histograms agree on one layout.
var sweepRoundBounds = []int64{1 << 6, 1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 24}

// MeasureDynamicDiameter drives the adversary (with all-receive action
// commitments) for horizon rounds and returns the exact dynamic diameter
// it produced, or an error if the horizon did not certify it.
//
// Topologies are streamed straight into a bitkernel.DiameterTracker — the
// incremental causal closure — so nothing is cloned or retained: the
// measurement runs in O(n²/64) space regardless of the horizon, where the
// old trace-then-recompute route kept every round's graph alive.
func MeasureDynamicDiameter(adv dynet.Adversary, n, horizon int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("harness: cannot measure diameter over %d nodes", n)
	}
	actions := make([]dynet.Action, n) // zero value is Receive
	tr := bitkernel.NewDiameterTracker(n)
	for r := 1; r <= horizon; r++ {
		g := adv.Topology(r, actions)
		if g == nil || g.N() != n {
			return 0, fmt.Errorf("harness: adversary returned topology over wrong node count in round %d", r)
		}
		tr.Advance(g)
	}
	d, exact := tr.Result()
	if !exact {
		return d, fmt.Errorf("harness: horizon %d did not certify the diameter (lower bound %d)", horizon, d)
	}
	return d, nil
}

// GapRow is one row of the E4 headline table.
type GapRow struct {
	N              int
	D              int // measured dynamic diameter of the network family
	KnownRounds    int
	KnownFR        float64 // flooding rounds = rounds / D
	UnknownRounds  int
	UnknownFR      float64
	LowerBoundFR   float64 // the Theorem 6 curve (N/log2 N)^(1/4)
	OutputsCorrect bool
}

// GapTable produces the E4 table: CFLOOD cost with known vs unknown
// diameter over a low-diameter dynamic network family, next to the
// Ω((N/log N)^¼) lower-bound curve for the unknown case.
//
//lint:pure
func GapTable(sizes []int, targetDiam int, seed uint64) ([]GapRow, error) {
	rows := make([]GapRow, len(sizes))
	err := forEachCell(len(sizes), func(i int, reg *obs.Registry) error {
		n := sizes[i]
		makeAdv := func() dynet.Adversary {
			return adversaries.BoundedDiameter(n, targetDiam, n/2, seed+uint64(n))
		}
		d, err := MeasureDynamicDiameter(makeAdv(), n, 6*targetDiam+60)
		if err != nil {
			return err
		}
		row := GapRow{N: n, D: d}
		row.LowerBoundFR = math.Pow(float64(n)/math.Log2(float64(n)), 0.25)

		run := func(extra map[string]int64) (int, bool, error) {
			inputs := make([]int64, n)
			inputs[0] = 1
			ms := dynet.NewMachines(flood.CFlood{}, n, inputs, seed^uint64(n), extra)
			e := &dynet.Engine{Machines: ms, Adv: makeAdv(), Workers: 1, Metrics: reg}
			// CFlood qualifies for the word-packed fast path; RunFlood
			// returns results bit-identical to the message path.
			res, err := e.RunFlood(4*n, dynet.StopNode(0))
			if err != nil || !res.Done {
				return 0, false, fmt.Errorf("harness: cflood did not confirm: %v", err)
			}
			allInformed := true
			for _, m := range ms {
				if !flood.Informed(m) {
					allInformed = false
				}
			}
			return res.Rounds, allInformed, nil
		}

		known, okKnown, err := run(map[string]int64{flood.ExtraD: int64(d)})
		if err != nil {
			return err
		}
		unknown, okUnknown, err := run(nil) // pessimistic D = N-1
		if err != nil {
			return err
		}
		row.KnownRounds, row.UnknownRounds = known, unknown
		row.KnownFR = float64(known) / float64(d)
		row.UnknownFR = float64(unknown) / float64(d)
		row.OutputsCorrect = okKnown && okUnknown
		rows[i] = row
		reg.Counter("sweep_cells_total").Add(1)
		reg.Histogram("gap_known_rounds", sweepRoundBounds).Observe(int64(known))
		reg.Histogram("gap_unknown_rounds", sweepRoundBounds).Observe(int64(unknown))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatGapTable renders E4 rows.
func FormatGapTable(rows []GapRow) *Table {
	t := &Table{
		Caption: "E4: CFLOOD, known vs unknown diameter (flooding rounds = rounds/D)",
		Header:  []string{"N", "D", "known rnds", "known FR", "unknown rnds", "unknown FR", "LB curve (N/lgN)^1/4", "correct"},
	}
	for _, r := range rows {
		t.Add(r.N, r.D, r.KnownRounds, r.KnownFR, r.UnknownRounds, r.UnknownFR, r.LowerBoundFR, r.OutputsCorrect)
	}
	return t
}

// LeaderRow is one row of the E3 (Theorem 8) sweep.
type LeaderRow struct {
	N             int
	D             int
	Rounds        int
	FloodingRnds  float64
	PerDLog2      float64 // rounds / (D+logN) / log^2 N — the claimed scaling
	Correct       bool
	FailedLockers int
}

// LeaderSweep measures the Section 7 protocol across sizes on a
// low-diameter dynamic family, with N' skewed by nprimeFactor (e.g. 0.85)
// under margin cPermille.
//
//lint:pure
func LeaderSweep(sizes []int, targetDiam int, nprimeFactor float64, cPermille int64, seed uint64) ([]LeaderRow, error) {
	rows := make([]LeaderRow, len(sizes))
	err := forEachCell(len(sizes), func(i int, reg *obs.Registry) error {
		n := sizes[i]
		adv := adversaries.BoundedDiameter(n, targetDiam, n/2, seed+uint64(n))
		d, err := MeasureDynamicDiameter(
			adversaries.BoundedDiameter(n, targetDiam, n/2, seed+uint64(n)), n, 6*targetDiam+60)
		if err != nil {
			return err
		}
		extra := map[string]int64{
			leader.ExtraNPrime:    int64(nprimeFactor * float64(n)),
			leader.ExtraCPermille: cPermille,
		}
		inputs := make([]int64, n)
		ms := dynet.NewMachines(leader.Protocol{}, n, inputs, seed^uint64(3*n), extra)
		e := &dynet.Engine{Machines: ms, Adv: adv, Workers: 1, Metrics: reg}
		budget := RoundBudget()
		res, err := e.Run(budget)
		if err != nil {
			return err
		}
		if !res.Done {
			return NonTermination{Name: fmt.Sprintf("leaderelect N=%d", n), Cell: i, Budget: budget}
		}
		correct := true
		for _, out := range res.Outputs {
			if out != int64(n-1) {
				correct = false
			}
		}
		failed := 0
		for _, m := range ms {
			failed += leader.FailedCandidacies(m)
		}
		logN := math.Log2(float64(n))
		rows[i] = LeaderRow{
			N:             n,
			D:             d,
			Rounds:        res.Rounds,
			FloodingRnds:  float64(res.Rounds) / float64(d),
			PerDLog2:      float64(res.Rounds) / (float64(d) + logN) / (logN * logN),
			Correct:       correct,
			FailedLockers: failed,
		}
		reg.Counter("sweep_cells_total").Add(1)
		reg.Counter("leader_lock_rollbacks_total").Add(int64(failed))
		reg.Histogram("leader_rounds", sweepRoundBounds).Observe(int64(res.Rounds))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatLeaderTable renders E3 rows.
func FormatLeaderTable(rows []LeaderRow) *Table {
	t := &Table{
		Caption: "E3: Theorem 8 LEADERELECT (unknown D, N' within 1/3-c): rounds scale with D*polylog(N), not N",
		Header:  []string{"N", "D", "rounds", "flooding rnds", "rnds/((D+lgN)lg^2N)", "correct", "rollbacks"},
	}
	for _, r := range rows {
		t.Add(r.N, r.D, r.Rounds, r.FloodingRnds, r.PerDLog2, r.Correct, r.FailedLockers)
	}
	return t
}

// EstimateRow is one row of E5.
type EstimateRow struct {
	N       int
	K       int
	D       int
	Rounds  int
	MeanErr float64 // mean relative error of per-node estimates
	MaxErr  float64
}

// EstimateSweep measures EstimateN accuracy across sizes and copy counts
// on a low-diameter dynamic family (E5: obtaining N' with known D in
// O(log N) flooding rounds).
//
//lint:pure
func EstimateSweep(sizes, ks []int, targetDiam int, seed uint64) ([]EstimateRow, error) {
	rows := make([]EstimateRow, len(sizes)*len(ks))
	err := forEachCell(len(rows), func(i int, reg *obs.Registry) error {
		// Cell (n, k); the diameter measurement repeats per k but is a
		// pure function of (n, seed), so every k-cell of one n sees the
		// same d the sequential sweep computed once.
		n, k := sizes[i/len(ks)], ks[i%len(ks)]
		d, err := MeasureDynamicDiameter(
			adversaries.BoundedDiameter(n, targetDiam, n/2, seed+uint64(n)), n, 6*targetDiam+60)
		if err != nil {
			return err
		}
		adv := adversaries.BoundedDiameter(n, targetDiam, n/2, seed+uint64(n))
		w := bitio.WidthFor(n + 1)
		rounds := 4 * k * (d + w)
		ms := dynet.NewMachines(counting.EstimateN{}, n, nil, seed+uint64(k), map[string]int64{
			counting.ExtraD: int64(d), counting.ExtraK: int64(k),
			counting.ExtraRounds: int64(rounds),
		})
		e := &dynet.Engine{Machines: ms, Adv: adv, Workers: 1, Metrics: reg}
		res, err := e.Run(rounds + 10)
		if err != nil || !res.Done {
			return fmt.Errorf("harness: estimate run failed: %v", err)
		}
		var sum, max float64
		for _, out := range res.Outputs {
			rel := math.Abs(float64(out)-float64(n)) / float64(n)
			sum += rel
			if rel > max {
				max = rel
			}
		}
		rows[i] = EstimateRow{
			N: n, K: k, D: d, Rounds: res.Rounds,
			MeanErr: sum / float64(n), MaxErr: max,
		}
		reg.Counter("sweep_cells_total").Add(1)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatEstimateTable renders E5 rows.
func FormatEstimateTable(rows []EstimateRow) *Table {
	t := &Table{
		Caption: "E5: estimating N with known D (exponential-minima sketches): error shrinks with k",
		Header:  []string{"N", "k", "D", "rounds", "mean rel err", "max rel err"},
	}
	for _, r := range rows {
		t.Add(r.N, r.K, r.D, r.Rounds, r.MeanErr, r.MaxErr)
	}
	return t
}

// MajorityRow is one row of E6.
type MajorityRow struct {
	N           int
	HolderFrac  float64 // fraction of nodes holding value 1
	Claims      int     // value-1 holders claiming majority
	FalseClaims int     // claims that are unsound (holder fraction <= 1/2)
}

// MajoritySweep measures the one-sided majority counter (E6) across holder
// fractions.
//
//lint:pure
func MajoritySweep(n int, fracs []float64, targetDiam int, seed uint64) ([]MajorityRow, error) {
	d, err := MeasureDynamicDiameter(
		adversaries.BoundedDiameter(n, targetDiam, n/2, seed), n, 6*targetDiam+60)
	if err != nil {
		return nil, err
	}
	rows := make([]MajorityRow, len(fracs))
	cellErr := forEachCell(len(fracs), func(i int, reg *obs.Registry) error {
		f := fracs[i]
		holders := int(f * float64(n))
		inputs := make([]int64, n)
		for v := 0; v < holders; v++ {
			inputs[v] = 1
		}
		adv := adversaries.BoundedDiameter(n, targetDiam, n/2, seed)
		ms := dynet.NewMachines(counting.MajorityProbe{}, n, inputs, seed+uint64(holders), map[string]int64{
			counting.ExtraD: int64(d), counting.ExtraK: 96,
		})
		e := &dynet.Engine{Machines: ms, Adv: adv, Workers: 1, Metrics: reg}
		res, err := e.Run(10000000)
		if err != nil || !res.Done {
			return fmt.Errorf("harness: majority probe failed: %v", err)
		}
		row := MajorityRow{N: n, HolderFrac: f}
		for v := 0; v < holders; v++ {
			if res.Outputs[v] == 1 {
				row.Claims++
				if f <= 0.5 {
					row.FalseClaims++
				}
			}
		}
		rows[i] = row
		reg.Counter("sweep_cells_total").Add(1)
		reg.Counter("majority_claims_total").Add(int64(row.Claims))
		reg.Counter("majority_false_claims_total").Add(int64(row.FalseClaims))
		return nil
	})
	if cellErr != nil {
		return nil, cellErr
	}
	return rows, nil
}

// FormatMajorityTable renders E6 rows.
func FormatMajorityTable(rows []MajorityRow) *Table {
	t := &Table{
		Caption: "E6: one-sided majority counting: claims only above 1/2, none below",
		Header:  []string{"N", "holder frac", "claims", "unsound claims"},
	}
	for _, r := range rows {
		t.Add(r.N, r.HolderFrac, r.Claims, r.FalseClaims)
	}
	return t
}

// ConsensusGapRow compares known-D consensus and the unknown-D Section 7
// route at one size (part of E4's protocol family coverage).
type ConsensusGapRow struct {
	N, D          int
	KnownRounds   int
	ViaLeaderRnds int
	BothCorrect   bool
}

// ConsensusGap runs consensus.KnownD and consensus.ViaLeader side by side.
//
//lint:pure
func ConsensusGap(sizes []int, targetDiam int, seed uint64) ([]ConsensusGapRow, error) {
	rows := make([]ConsensusGapRow, len(sizes))
	err := forEachCell(len(sizes), func(i int, reg *obs.Registry) error {
		n := sizes[i]
		d, err := MeasureDynamicDiameter(
			adversaries.BoundedDiameter(n, targetDiam, n/2, seed+uint64(n)), n, 6*targetDiam+60)
		if err != nil {
			return err
		}
		inputs := make([]int64, n)
		for v := range inputs {
			inputs[v] = int64(v % 2)
		}
		want := inputs[n-1]

		run := func(p dynet.Protocol, extra map[string]int64) (int, bool, error) {
			ms := dynet.NewMachines(p, n, inputs, seed+uint64(n), extra)
			e := &dynet.Engine{
				Machines: ms,
				Adv:      adversaries.BoundedDiameter(n, targetDiam, n/2, seed+uint64(n)),
				Workers:  1,
				Metrics:  reg,
			}
			res, err := e.Run(RoundBudget())
			if err != nil {
				return 0, false, fmt.Errorf("harness: consensus failed: %v", err)
			}
			if !res.Done {
				return 0, false, NonTermination{Name: fmt.Sprintf("consensus N=%d", n), Cell: i, Budget: RoundBudget()}
			}
			ok := true
			for _, out := range res.Outputs {
				if out != want {
					ok = false
				}
			}
			return res.Rounds, ok, nil
		}

		kRounds, kOK, err := run(consensus.KnownD{}, map[string]int64{consensus.ExtraD: int64(d)})
		if err != nil {
			return err
		}
		vRounds, vOK, err := run(consensus.ViaLeader{}, nil)
		if err != nil {
			return err
		}
		rows[i] = ConsensusGapRow{
			N: n, D: d, KnownRounds: kRounds, ViaLeaderRnds: vRounds,
			BothCorrect: kOK && vOK,
		}
		reg.Counter("sweep_cells_total").Add(1)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatConsensusGapTable renders ConsensusGap rows.
func FormatConsensusGapTable(rows []ConsensusGapRow) *Table {
	t := &Table{
		Caption: "E4b: CONSENSUS, known D vs unknown D via Section 7 (good N')",
		Header:  []string{"N", "D", "known-D rounds", "via-leader rounds", "correct"},
	}
	for _, r := range rows {
		t.Add(r.N, r.D, r.KnownRounds, r.ViaLeaderRnds, r.BothCorrect)
	}
	return t
}
