package harness

import (
	"fmt"
	"strings"

	"dyndiam/internal/chains"
	"dyndiam/internal/disjcp"
	"dyndiam/internal/subnet"
)

// Figure1 renders the paper's Figure 1: the type-Γ subnetwork for
// n = 4, q = 5, x = 3110, y = 2200, showing each chain's edge status per
// round under the three adversaries (all middles assumed receiving, as in
// the figure).
func Figure1() (string, error) {
	in, err := disjcp.FromStrings("3110", "2200", 5)
	if err != nil {
		return "", err
	}
	return FigureGamma(in)
}

// FigureGamma renders a per-round type-Γ schedule for any instance.
func FigureGamma(in disjcp.Instance) (string, error) {
	net, err := subnet.NewCFlood(in)
	if err != nil {
		return "", err
	}
	g := net.Gamma
	var sb strings.Builder
	fmt.Fprintf(&sb, "Type-Γ subnetwork: n=%d q=%d x=%v y=%v (DISJ=%d)\n",
		in.N, in.Q, in.X, in.Y, in.Eval())
	fmt.Fprintf(&sb, "Each group has (q-1)/2 = %d identical chains |x_y; showing one per group.\n", (in.Q-1)/2)
	horizon := net.Horizon()
	for r := 0; r <= horizon; r++ {
		fmt.Fprintf(&sb, "round %d:\n", r)
		for _, p := range []chains.Party{chains.Reference, chains.Alice, chains.Bob} {
			topo := net.Topology(p, r, nil)
			fmt.Fprintf(&sb, "  %-9s ", p.String()+":")
			for i := range g.Groups {
				cn := g.Groups[i][0]
				c := g.Chain(i)
				fmt.Fprintf(&sb, " |%d_%d[%s%s]", c.Top, c.Bottom,
					edgeMark(topo.HasEdge(cn.U, cn.V)),
					edgeMark(topo.HasEdge(cn.V, cn.W)))
			}
			if p == chains.Reference && r >= 1 {
				if line := g.LineMiddles(); len(line) > 1 {
					fmt.Fprintf(&sb, "  line(%d middles)", len(line))
				}
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String(), nil
}

// Figure2 renders the paper's Figure 2: the cascading removals of a
// type-Λ centipede with x_i = y_i = 0 at q = 7.
func Figure2() (string, error) {
	in, err := disjcp.FromStrings("0", "0", 7)
	if err != nil {
		return "", err
	}
	return FigureLambda(in, 0)
}

// Figure3 renders the paper's Figure 3: the centipede with x_i = 2,
// y_i = 3 at q = 7 (all middles sending, per the figure's caption —
// shown here with the receiving-middle schedule alongside).
func Figure3() (string, error) {
	in, err := disjcp.FromStrings("2", "3", 7)
	if err != nil {
		return "", err
	}
	return FigureLambda(in, 0)
}

// FigureLambda renders centipede i of the type-Λ subnetwork per round.
func FigureLambda(in disjcp.Instance, centipede int) (string, error) {
	l := subnet.NewLambda(in, 0)
	var sb strings.Builder
	mounts := l.MountingPoints()
	fmt.Fprintf(&sb, "Type-Λ centipede %d: q=%d x_i=%d y_i=%d (mounting points: %d)\n",
		centipede, in.Q, in.X[centipede], in.Y[centipede], len(mounts))
	m := (in.Q + 1) / 2
	fmt.Fprintf(&sb, "chains (j: labels): ")
	for j := 0; j < m; j++ {
		c := l.Chain(centipede, j)
		fmt.Fprintf(&sb, " %d:|%d_%d", j+1, c.Top, c.Bottom)
	}
	sb.WriteString("\nmiddles joined by a permanent horizontal line\n")
	horizon := (in.Q - 1) / 2
	for r := 0; r <= horizon; r++ {
		fmt.Fprintf(&sb, "round %d:\n", r)
		for _, p := range []chains.Party{chains.Reference, chains.Alice, chains.Bob} {
			fmt.Fprintf(&sb, "  %-9s ", p.String()+":")
			for j := 0; j < m; j++ {
				c := l.Chain(centipede, j)
				fmt.Fprintf(&sb, " [%s%s]",
					edgeMark(c.TopEdgePresent(p, r, true)),
					edgeMark(c.BottomEdgePresent(p, r, true)))
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String(), nil
}

func edgeMark(present bool) string {
	if present {
		return "+"
	}
	return "-"
}
