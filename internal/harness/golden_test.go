package harness

import (
	"reflect"
	"testing"
)

// The goldens below were captured from the pre-CSR, sequential-only
// implementation of these sweeps. Exact equality (floats included) is the
// point: the graph-core rewrite and the parallel cell scheduler both claim
// bit-identical results, and these rows are the committed witness.

func TestGapTableGolden(t *testing.T) {
	rows, err := GapTable([]int{32, 48}, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := []GapRow{
		{N: 32, D: 7, KnownRounds: 7, KnownFR: 1, UnknownRounds: 31,
			UnknownFR: 4.428571428571429, LowerBoundFR: 1.5905414575341013, OutputsCorrect: true},
		{N: 48, D: 7, KnownRounds: 7, KnownFR: 1, UnknownRounds: 47,
			UnknownFR: 6.714285714285714, LowerBoundFR: 1.7122029618469201, OutputsCorrect: true},
	}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("GapTable rows changed:\n got %+v\nwant %+v", rows, want)
	}
}

func TestLeaderSweepGolden(t *testing.T) {
	rows, err := LeaderSweep([]int{20}, 4, 0.9, 150, 11)
	if err != nil {
		t.Fatal(err)
	}
	want := []LeaderRow{
		{N: 20, D: 6, Rounds: 776, FloodingRnds: 129.33333333333334,
			PerDLog2: 4.0248140248118665, Correct: true, FailedLockers: 0},
	}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("LeaderSweep rows changed:\n got %+v\nwant %+v", rows, want)
	}
}

func TestEstimateSweepGolden(t *testing.T) {
	rows, err := EstimateSweep([]int{24, 32}, []int{16}, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []EstimateRow{
		{N: 24, K: 16, D: 7, Rounds: 768, MeanErr: 0.04166666666666665, MaxErr: 0.041666666666666664},
		{N: 32, K: 16, D: 7, Rounds: 832, MeanErr: 0.125, MaxErr: 0.125},
	}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("EstimateSweep rows changed:\n got %+v\nwant %+v", rows, want)
	}
}

func TestMajoritySweepGolden(t *testing.T) {
	rows, err := MajoritySweep(24, []float64{0.4, 0.8}, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []MajorityRow{
		{N: 24, HolderFrac: 0.4, Claims: 0, FalseClaims: 0},
		{N: 24, HolderFrac: 0.8, Claims: 19, FalseClaims: 0},
	}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("MajoritySweep rows changed:\n got %+v\nwant %+v", rows, want)
	}
}

func TestConsensusGapGolden(t *testing.T) {
	rows, err := ConsensusGap([]int{16}, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	want := []ConsensusGapRow{
		{N: 16, D: 6, KnownRounds: 165, ViaLeaderRnds: 774, BothCorrect: true},
	}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("ConsensusGap rows changed:\n got %+v\nwant %+v", rows, want)
	}
}

// TestSweepsParallelEqualSequential runs every sweep at 1 worker and at
// several worker counts (including more workers than cells) and requires
// deep equality — per-cell seeds are pure functions of (sweep seed, cell),
// so the schedule must not matter.
func TestSweepsParallelEqualSequential(t *testing.T) {
	type sweep struct {
		name string
		run  func() (interface{}, error)
	}
	sweeps := []sweep{
		{"GapTable", func() (interface{}, error) {
			return GapTable([]int{24, 32, 48}, 4, 7)
		}},
		{"LeaderSweep", func() (interface{}, error) {
			return LeaderSweep([]int{16, 20}, 4, 0.9, 150, 11)
		}},
		{"EstimateSweep", func() (interface{}, error) {
			return EstimateSweep([]int{24, 32}, []int{8, 16}, 4, 5)
		}},
		{"MajoritySweep", func() (interface{}, error) {
			return MajoritySweep(24, []float64{0.4, 0.6, 0.8}, 4, 3)
		}},
		{"ConsensusGap", func() (interface{}, error) {
			return ConsensusGap([]int{14, 16}, 4, 9)
		}},
	}
	for _, s := range sweeps {
		s := s
		t.Run(s.name, func(t *testing.T) {
			prev := SetSweepWorkers(1)
			defer SetSweepWorkers(prev)
			seq, err := s.run()
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{2, 3, 16} {
				SetSweepWorkers(w)
				par, err := s.run()
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if !reflect.DeepEqual(seq, par) {
					t.Errorf("workers=%d: rows differ from sequential:\n seq %+v\n par %+v", w, seq, par)
				}
			}
		})
	}
}

func TestTrialSeedsDeterministic(t *testing.T) {
	a := TrialSeeds(42, 8)
	b := TrialSeeds(42, 8)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("TrialSeeds not deterministic")
	}
	// Prefix stability: seeds for the first k trials must not depend on
	// the total trial count, so partial sweeps extend cleanly.
	c := TrialSeeds(42, 4)
	if !reflect.DeepEqual(a[:4], c) {
		t.Errorf("TrialSeeds prefix changed with trial count: %v vs %v", a[:4], c)
	}
	d := TrialSeeds(43, 8)
	if reflect.DeepEqual(a, d) {
		t.Error("different roots produced identical seed tapes")
	}
}
