package harness

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// The graceful cell runner is the degradation-sweep counterpart of
// forEachCell: where the clean sweeps abort on the first error (an error
// there means the harness itself is broken), fault sweeps expect cells to
// misbehave — a crashed protocol may panic, a heavily faulted run may
// exceed any reasonable wall-clock budget — and one bad cell must not cost
// the rest of the table. gracefulCells therefore isolates every cell in
// its own goroutine, converts panics and budget overruns into structured
// per-cell outcomes, and always runs the grid to completion.

// CellOutcome classifies how one sweep cell finished.
type CellOutcome int

const (
	// CellOK: the cell returned a value.
	CellOK CellOutcome = iota
	// CellFailed: the cell returned an error (e.g. NonTermination).
	CellFailed
	// CellPanicked: the cell panicked; the panic was recovered and
	// recorded as an ErrCellPanic.
	CellPanicked
	// CellTimedOut: the cell exceeded its wall-clock budget and was
	// abandoned; its result (if it ever finishes) is discarded.
	CellTimedOut
)

var cellOutcomeNames = [...]string{"ok", "failed", "panicked", "timed_out"}

// String returns the stable wire name of the outcome ("ok", "failed",
// "panicked", "timed_out").
func (o CellOutcome) String() string {
	if o >= 0 && int(o) < len(cellOutcomeNames) {
		return cellOutcomeNames[o]
	}
	return "unknown"
}

// ErrCellTimeout reports that a cell exceeded its wall-clock budget.
type ErrCellTimeout struct {
	Cell   int
	Budget time.Duration
}

func (e ErrCellTimeout) Error() string {
	return fmt.Sprintf("harness: cell %d exceeded its %v wall-clock budget", e.Cell, e.Budget)
}

// ErrCellPanic reports a recovered panic from a cell.
type ErrCellPanic struct {
	Cell  int
	Value interface{} // the recovered panic value
}

func (e ErrCellPanic) Error() string {
	return fmt.Sprintf("harness: cell %d panicked: %v", e.Cell, e.Value)
}

// CellResult records one cell's outcome in a graceful sweep. Err is nil
// exactly when Outcome is CellOK.
type CellResult struct {
	Cell    int
	Outcome CellOutcome
	Err     error
}

// cellReply carries a guarded cell's result over its buffered channel.
type cellReply[T any] struct {
	val      T
	err      error
	panicked bool
}

// runCellGuarded starts fn(i) in its own goroutine and returns the channel
// its single reply will arrive on. The channel is buffered so an abandoned
// (timed-out) cell's late reply parks in the buffer and is collected with
// the goroutine — it never blocks and never races with the sweep, which
// has already recorded the timeout and moved on.
func runCellGuarded[T any](i int, fn func(i int) (T, error)) <-chan cellReply[T] {
	ch := make(chan cellReply[T], 1)
	go func() {
		defer func() {
			if v := recover(); v != nil {
				ch <- cellReply[T]{err: ErrCellPanic{Cell: i, Value: v}, panicked: true}
			}
		}()
		val, err := fn(i)
		ch <- cellReply[T]{val: val, err: err}
	}()
	return ch
}

// gracefulCells runs fn(i) for every cell index in [0, cells) across
// SweepWorkers goroutines, giving each cell at most budget of wall-clock
// time (budget <= 0 means unlimited). It never fails: every cell gets a
// CellResult, and results[i] holds fn's value exactly when outcomes[i] is
// CellOK (the zero T otherwise). Cells must derive all randomness from
// their index, as in forEachCell, so the values are schedule-independent;
// only the wall-clock timeout outcome can vary between machines, which is
// why deterministic artifacts (tables, checkpoints) record timeouts as
// failures rather than silently re-deriving their cells.
func gracefulCells[T any](cells int, budget time.Duration, fn func(i int) (T, error)) (results []T, outcomes []CellResult) {
	results = make([]T, cells)
	outcomes = make([]CellResult, cells)
	workers := SweepWorkers()
	if workers > cells {
		workers = cells
	}
	if workers < 1 {
		workers = 1
	}
	runOne := func(i int) {
		ch := runCellGuarded(i, fn)
		var rep cellReply[T]
		if budget > 0 {
			t := time.NewTimer(budget)
			select {
			case rep = <-ch:
				t.Stop()
			case <-t.C:
				outcomes[i] = CellResult{Cell: i, Outcome: CellTimedOut, Err: ErrCellTimeout{Cell: i, Budget: budget}}
				return
			}
		} else {
			rep = <-ch
		}
		switch {
		case rep.panicked:
			outcomes[i] = CellResult{Cell: i, Outcome: CellPanicked, Err: rep.err}
		case rep.err != nil:
			outcomes[i] = CellResult{Cell: i, Outcome: CellFailed, Err: rep.err}
		default:
			results[i] = rep.val
			outcomes[i] = CellResult{Cell: i, Outcome: CellOK}
		}
	}
	if workers == 1 {
		for i := 0; i < cells; i++ {
			runOne(i)
		}
		return results, outcomes
	}
	next := int64(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= cells {
					return
				}
				runOne(i)
			}
		}()
	}
	wg.Wait()
	return results, outcomes
}
