package harness

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

// TestGracefulCellsAllOutcomes is the acceptance test for graceful
// degradation: a sweep containing healthy, erroring, panicking, and
// timing-out cells still runs to completion and records each outcome.
func TestGracefulCellsAllOutcomes(t *testing.T) {
	wantErr := errors.New("cell error")
	results, outcomes := gracefulCells(4, 30*time.Millisecond, func(i int) (int, error) {
		switch i {
		case 1:
			return 0, wantErr
		case 2:
			panic("cell panic")
		case 3:
			time.Sleep(2 * time.Second)
			return 3, nil
		}
		return 10 * i, nil
	})
	want := []struct {
		outcome CellOutcome
		name    string
	}{
		{CellOK, "ok"}, {CellFailed, "failed"}, {CellPanicked, "panicked"}, {CellTimedOut, "timed_out"},
	}
	for i, w := range want {
		if outcomes[i].Cell != i || outcomes[i].Outcome != w.outcome {
			t.Errorf("cell %d: outcome %v, want %v", i, outcomes[i].Outcome, w.outcome)
		}
		if got := outcomes[i].Outcome.String(); got != w.name {
			t.Errorf("cell %d: outcome name %q, want %q", i, got, w.name)
		}
		if (outcomes[i].Err == nil) != (w.outcome == CellOK) {
			t.Errorf("cell %d: Err = %v for outcome %v", i, outcomes[i].Err, w.outcome)
		}
	}
	if results[0] != 0 || results[1] != 0 || results[2] != 0 || results[3] != 0 {
		t.Errorf("non-OK cells must leave zero results: %v", results)
	}

	var timeout ErrCellTimeout
	if !errors.As(outcomes[3].Err, &timeout) || timeout.Cell != 3 || timeout.Budget != 30*time.Millisecond {
		t.Errorf("timeout error = %#v", outcomes[3].Err)
	}
	var pan ErrCellPanic
	if !errors.As(outcomes[2].Err, &pan) || pan.Cell != 2 || pan.Value != "cell panic" {
		t.Errorf("panic error = %#v", outcomes[2].Err)
	}
	if !errors.Is(outcomes[1].Err, wantErr) {
		t.Errorf("failed cell error = %v", outcomes[1].Err)
	}
}

// TestGracefulCellsParallelEqualsSequential: index-derived cells give the
// same results and outcomes at every worker count.
func TestGracefulCellsParallelEqualsSequential(t *testing.T) {
	run := func(workers int) ([]int, []CellResult) {
		prev := SetSweepWorkers(workers)
		defer SetSweepWorkers(prev)
		return gracefulCells(40, 0, func(i int) (int, error) {
			if i%7 == 3 {
				return 0, errors.New("unlucky")
			}
			return i * i, nil
		})
	}
	seqR, seqO := run(1)
	parR, parO := run(8)
	if !reflect.DeepEqual(seqR, parR) {
		t.Error("results differ across worker counts")
	}
	// Outcome errors are distinct values; compare the classification.
	for i := range seqO {
		if seqO[i].Outcome != parO[i].Outcome || seqO[i].Cell != parO[i].Cell {
			t.Errorf("cell %d: outcome differs across worker counts", i)
		}
	}
}

// TestGracefulCellsUnlimitedBudget: budget <= 0 never times out.
func TestGracefulCellsUnlimitedBudget(t *testing.T) {
	_, outcomes := gracefulCells(3, 0, func(i int) (int, error) {
		time.Sleep(time.Millisecond)
		return i, nil
	})
	for i, oc := range outcomes {
		if oc.Outcome != CellOK {
			t.Errorf("cell %d: %v", i, oc)
		}
	}
}

func TestNonTerminationError(t *testing.T) {
	err := NonTermination{Name: "leader reliability", Cell: 4, Budget: 100}
	want := "harness: leader reliability cell 4 did not terminate within 100 rounds"
	if err.Error() != want {
		t.Errorf("got %q, want %q", err.Error(), want)
	}
}

func TestRoundBudget(t *testing.T) {
	if got := RoundBudget(); got != DefaultRoundBudget {
		t.Fatalf("default budget = %d", got)
	}
	prev := SetRoundBudget(1234)
	if prev != DefaultRoundBudget {
		t.Errorf("SetRoundBudget returned %d, want previous %d", prev, DefaultRoundBudget)
	}
	if got := RoundBudget(); got != 1234 {
		t.Errorf("budget = %d after set", got)
	}
	SetRoundBudget(0) // restore the default
	if got := RoundBudget(); got != DefaultRoundBudget {
		t.Errorf("budget = %d after reset", got)
	}
}
