package harness

import (
	"strings"
	"testing"

	"dyndiam/internal/adversaries"
)

func TestTableFormatting(t *testing.T) {
	tb := &Table{
		Caption: "demo",
		Header:  []string{"a", "bbbb", "c"},
	}
	tb.Add(1, 2.5, "xyz")
	tb.Add("long-cell", 3.25, true)
	out := tb.String()
	if !strings.Contains(out, "## demo") {
		t.Error("caption missing")
	}
	if !strings.Contains(out, "2.50") || !strings.Contains(out, "3.25") {
		t.Errorf("float formatting broken:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // caption, header, rule, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}

func TestMeasureDynamicDiameter(t *testing.T) {
	d, err := MeasureDynamicDiameter(adversaries.RotatingStar(8), 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if d != 7 {
		t.Errorf("rotating star diameter = %d, want 7", d)
	}
	if _, err := MeasureDynamicDiameter(adversaries.RotatingStar(30), 30, 10); err == nil {
		t.Error("short horizon should fail to certify")
	}
}

func TestGapTableShape(t *testing.T) {
	rows, err := GapTable([]int{32, 64}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if !r.OutputsCorrect {
			t.Errorf("N=%d: incorrect CFLOOD outputs", r.N)
		}
		// The headline gap: the unknown-D baseline pays ~N rounds, the
		// known-D protocol pays ~D rounds.
		if r.UnknownRounds != r.N-1 {
			t.Errorf("N=%d: unknown-D rounds = %d, want N-1", r.N, r.UnknownRounds)
		}
		if r.KnownRounds != r.D {
			t.Errorf("N=%d: known-D rounds = %d, want D = %d", r.N, r.KnownRounds, r.D)
		}
		if r.UnknownFR <= r.KnownFR {
			t.Errorf("N=%d: no gap (unknown %f <= known %f)", r.N, r.UnknownFR, r.KnownFR)
		}
	}
	// The gap widens with N at fixed D.
	if rows[1].UnknownFR <= rows[0].UnknownFR {
		t.Error("gap did not widen with N")
	}
	out := FormatGapTable(rows).String()
	if !strings.Contains(out, "unknown FR") {
		t.Errorf("table render broken:\n%s", out)
	}
}

func TestConstructionDiameterTable(t *testing.T) {
	rows, err := ConstructionDiameters([]int{9, 17}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Disj == 1 && r.Diameter > 10 {
			t.Errorf("q=%d 1-instance diameter %d > 10", r.Q, r.Diameter)
		}
		if r.Disj == 0 && r.Diameter < (r.Q-1)/2 {
			t.Errorf("q=%d 0-instance diameter %d < (q-1)/2", r.Q, r.Diameter)
		}
	}
	_ = FormatDiameterTable(rows).String()
}

func TestCFloodReductionTable(t *testing.T) {
	rows, err := CFloodReduction([]int{25}, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 instances x 2 oracles
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.LemmaViolations != 0 {
			t.Errorf("q=%d %s: %d lemma violations", r.Q, r.Oracle, r.LemmaViolations)
		}
		switch {
		case r.Oracle == "fast(D:=10)" && r.Disj == 1:
			if !r.ClaimCorrect || r.OracleErrored {
				t.Errorf("fast oracle on 1-instance: claimOK=%v err=%v", r.ClaimCorrect, r.OracleErrored)
			}
		case r.Oracle == "fast(D:=10)" && r.Disj == 0:
			if !r.OracleErrored {
				t.Error("fast oracle on 0-instance must err as a CFLOOD protocol")
			}
		case r.Oracle == "safe(D:=N-1)" && r.Disj == 0:
			if !r.ClaimCorrect {
				t.Error("safe oracle on 0-instance should yield claim 0 (correct)")
			}
		case r.Oracle == "safe(D:=N-1)" && r.Disj == 1:
			if r.ClaimCorrect {
				t.Error("safe oracle cannot terminate within horizon, claim should be wrong on 1-instances")
			}
		}
	}
	_ = FormatReductionTable("E1", rows).String()
}

func TestConsensusReductionTable(t *testing.T) {
	rows, err := ConsensusReduction([]int{401}, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.LemmaViolations != 0 {
			t.Errorf("q=%d: %d lemma violations", r.Q, r.LemmaViolations)
		}
		if r.Disj == 0 && !r.AgreementViolated {
			t.Error("0-instance: expected an agreement violation from the fast oracle")
		}
		if r.Disj == 1 && r.AgreementViolated {
			t.Error("1-instance: unexpected agreement violation")
		}
	}
	_ = FormatConsensusReductionTable(rows).String()
}

func TestEstimateSweep(t *testing.T) {
	rows, err := EstimateSweep([]int{32}, []int{24, 96}, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// More copies, better accuracy (allowing sampling noise: compare
	// against a slack factor rather than strictly).
	if rows[1].MeanErr > rows[0].MeanErr*1.5+0.05 {
		t.Errorf("k=96 err %.3f not better than k=24 err %.3f", rows[1].MeanErr, rows[0].MeanErr)
	}
	if rows[1].MeanErr > 0.3 {
		t.Errorf("k=96 mean error %.3f too large", rows[1].MeanErr)
	}
	_ = FormatEstimateTable(rows).String()
}

func TestMajoritySweep(t *testing.T) {
	rows, err := MajoritySweep(32, []float64{0.25, 0.5, 1.0}, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.FalseClaims != 0 {
			t.Errorf("frac=%.2f: %d unsound majority claims", r.HolderFrac, r.FalseClaims)
		}
		if r.HolderFrac == 1.0 && r.Claims < r.N*3/4 {
			t.Errorf("unanimity: only %d/%d claims", r.Claims, r.N)
		}
	}
	_ = FormatMajorityTable(rows).String()
}

func TestFigures(t *testing.T) {
	f1, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"|3_2", "|1_2", "|1_0", "|0_0", "reference:", "alice:", "bob:", "line(2 middles)"} {
		if !strings.Contains(f1, want) {
			t.Errorf("Figure1 missing %q:\n%s", want, f1)
		}
	}
	f2, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"|0_0", "|2_2", "|4_4", "|6_6", "mounting points: 1"} {
		if !strings.Contains(f2, want) {
			t.Errorf("Figure2 missing %q", want)
		}
	}
	f3, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"|2_3", "|4_5", "|6_6", "mounting points: 0"} {
		if !strings.Contains(f3, want) {
			t.Errorf("Figure3 missing %q", want)
		}
	}
}

func TestLeaderSweepSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("leader sweep is slow")
	}
	rows, err := LeaderSweep([]int{16, 32}, 4, 1.0, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Correct {
			t.Errorf("N=%d: wrong leader", r.N)
		}
		// Diameter-scaled with polylog factors: the normalized cost
		// rounds/((D+lgN)·lg²N) stays a modest constant.
		if r.PerDLog2 > 40 {
			t.Errorf("N=%d: normalized cost %.2f too large (%d rounds, D=%d)",
				r.N, r.PerDLog2, r.Rounds, r.D)
		}
	}
	// Doubling N (at fixed D) must not double the cost: growth is polylog.
	if float64(rows[1].Rounds) > 1.9*float64(rows[0].Rounds) {
		t.Errorf("rounds grew superlogarithmically: %d -> %d", rows[0].Rounds, rows[1].Rounds)
	}
	_ = FormatLeaderTable(rows).String()
}

func TestCommTable(t *testing.T) {
	rows, err := CommTable([]int{2, 4}, []int{17, 33}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.ReductionBits <= 0 {
			t.Errorf("n=%d q=%d: no bits", r.N, r.Q)
		}
		if float64(r.TrivialBits) < r.FloorBits {
			t.Errorf("n=%d q=%d: trivial below floor", r.N, r.Q)
		}
		// Per-round bits are Θ(log N): bounded by a few message budgets.
		if r.BitsPerRound <= 0 || r.BitsPerRound > 200 {
			t.Errorf("n=%d q=%d: bits/round %.1f implausible", r.N, r.Q, r.BitsPerRound)
		}
	}
	_ = FormatCommTable(rows).String()
}

func TestSpoiledGrowth(t *testing.T) {
	rows, err := SpoiledGrowth(2, 17, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // horizon (q-1)/2
		t.Fatalf("got %d rows", len(rows))
	}
	for i, r := range rows {
		// Monotone shrink of the simulable region.
		if i > 0 {
			if r.NonSpoiledAlice > rows[i-1].NonSpoiledAlice ||
				r.NonSpoiledBob > rows[i-1].NonSpoiledBob {
				t.Errorf("round %d: non-spoiled count grew", r.Round)
			}
		}
		// The decision-relevant specials stay simulable throughout.
		if !r.SpecialsSimulatableAlice || !r.SpecialsSimulatableBob {
			t.Errorf("round %d: specials spoiled within the horizon", r.Round)
		}
		// Each party always retains a nontrivial region.
		if r.NonSpoiledAlice < 2 || r.NonSpoiledBob < 2 {
			t.Errorf("round %d: region collapsed (%d, %d)", r.Round, r.NonSpoiledAlice, r.NonSpoiledBob)
		}
	}
	_ = FormatSpoiledTable(106, rows).String()
}
