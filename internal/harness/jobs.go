package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"dyndiam/internal/faults"
	"dyndiam/internal/stats"
)

// This file holds the job-shaped entry points the serving layer
// (internal/serve) and cmd/chaos build on: canonical content keys for
// deduplicating identical experiment submissions, the dimension/rate
// fault-spec constructor shared by the chaos grid and the degradation
// job kinds, and JSON-shaped views of result rows whose in-memory forms
// carry error values.

// CanonicalJobKey returns the content address of one experiment job: the
// SHA-256 hex digest of the kind and the canonical JSON encoding of its
// normalized parameters. params must be a map-free value (struct fields
// and slices only) so encoding/json yields exactly one byte string per
// value. Because every experiment is a pure function of its normalized
// parameters (the repo-wide determinism contract), two submissions that
// collide on a key are guaranteed to have byte-identical results — which
// is what makes results content-addressable and identical in-flight jobs
// safe to deduplicate.
func CanonicalJobKey(kind string, params interface{}) (string, error) {
	data, err := json.Marshal(params)
	if err != nil {
		return "", fmt.Errorf("harness: canonicalizing %s params: %v", kind, err)
	}
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{'\n'})
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// FaultDims lists the single-dimension fault axes FaultSpecFor accepts,
// in the order cmd/chaos sweeps them.
func FaultDims() []string {
	return []string{"drop", "dup", "corrupt", "crash", "edgecut"}
}

// FaultSpecFor builds the single-dimension fault Spec of one degradation
// grid point — the dimension vocabulary shared by cmd/chaos and the
// serving layer's degradation job kinds. The reserved dimension "none"
// (and any dimension at rate 0) yields the zero Spec, which the sweeps
// compile to no fault plan at all: the clean anchor.
func FaultSpecFor(dim string, rate float64) (faults.Spec, error) {
	var s faults.Spec
	switch dim {
	case "none":
		if rate != 0 {
			return s, fmt.Errorf("harness: dimension \"none\" only accepts rate 0, got %v", rate)
		}
	case "drop":
		s.Drop = rate
	case "dup":
		s.Dup = rate
	case "corrupt":
		s.Corrupt = rate
	case "crash":
		s.Crash = rate
	case "edgecut":
		s.EdgeCut = rate
	default:
		return s, fmt.Errorf("harness: unknown fault dimension %q (want drop, dup, corrupt, crash, or edgecut)", dim)
	}
	return s, nil
}

// CellFailureJSON is the JSON shape of one non-OK graceful-sweep cell:
// the CellResult's error flattened to a string so the row marshals
// deterministically (errors have no canonical JSON form).
type CellFailureJSON struct {
	Cell    int    `json:"cell"`
	Outcome string `json:"outcome"`
	Err     string `json:"err"`
}

// DegradationRowJSON is the JSON shape of one DegradationRow: the Spec
// replaced by its stable label and the per-cell failures flattened via
// CellFailureJSON. Marshaling a slice of these is byte-deterministic,
// which the serving layer relies on for content-addressed result bodies.
type DegradationRowJSON struct {
	Label     string            `json:"label"`
	Trials    int               `json:"trials"`
	Errors    int               `json:"errors"`
	ErrorRate float64           `json:"error_rate"`
	WilsonLo  float64           `json:"wilson_lo"`
	WilsonHi  float64           `json:"wilson_hi"`
	Rounds    stats.Summary     `json:"rounds"`
	Failures  []CellFailureJSON `json:"failures,omitempty"`
}

// DegradationRowsJSON converts degradation sweep rows to their JSON shape.
func DegradationRowsJSON(rows []DegradationRow) []DegradationRowJSON {
	out := make([]DegradationRowJSON, len(rows))
	for i, r := range rows {
		j := DegradationRowJSON{
			Label: r.Label, Trials: r.Trials, Errors: r.Errors,
			ErrorRate: r.ErrorRate, WilsonLo: r.WilsonLo, WilsonHi: r.WilsonHi,
			Rounds: r.Rounds,
		}
		for _, f := range r.CellFailures {
			j.Failures = append(j.Failures, CellFailureJSON{
				Cell: f.Cell, Outcome: f.Outcome.String(), Err: f.Err.Error(),
			})
		}
		out[i] = j
	}
	return out
}
