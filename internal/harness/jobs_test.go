package harness

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"dyndiam/internal/faults"
	"dyndiam/internal/stats"
)

func TestCanonicalJobKey(t *testing.T) {
	type params struct {
		N     int   `json:"n,omitempty"`
		Sizes []int `json:"sizes,omitempty"`
	}
	a, err := CanonicalJobKey("gap_table", params{N: 16, Sizes: []int{16, 32}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CanonicalJobKey("gap_table", params{N: 16, Sizes: []int{16, 32}})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("equal params hash differently: %s vs %s", a, b)
	}
	if len(a) != 64 || strings.ToLower(a) != a {
		t.Errorf("key %q is not lowercase sha256 hex", a)
	}
	// The kind participates in the key: same params, different kind.
	c, err := CanonicalJobKey("leader_sweep", params{N: 16, Sizes: []int{16, 32}})
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("kind does not participate in the content key")
	}
	// Any param change moves the key.
	d, err := CanonicalJobKey("gap_table", params{N: 16, Sizes: []int{16, 33}})
	if err != nil {
		t.Fatal(err)
	}
	if d == a {
		t.Error("param change did not move the content key")
	}
	// Unmarshalable params (e.g. channels) are a structured error.
	if _, err := CanonicalJobKey("bad", make(chan int)); err == nil {
		t.Error("unmarshalable params accepted")
	}
}

func TestFaultSpecFor(t *testing.T) {
	field := map[string]func(faults.Spec) float64{
		"drop":    func(s faults.Spec) float64 { return s.Drop },
		"dup":     func(s faults.Spec) float64 { return s.Dup },
		"corrupt": func(s faults.Spec) float64 { return s.Corrupt },
		"crash":   func(s faults.Spec) float64 { return s.Crash },
		"edgecut": func(s faults.Spec) float64 { return s.EdgeCut },
	}
	for _, dim := range FaultDims() {
		s, err := FaultSpecFor(dim, 0.25)
		if err != nil {
			t.Fatalf("%s: %v", dim, err)
		}
		if got := field[dim](s); got != 0.25 {
			t.Errorf("%s: rate landed on the wrong field (%+v)", dim, s)
		}
		// Rate zero on any dimension is the clean anchor.
		z, err := FaultSpecFor(dim, 0)
		if err != nil {
			t.Fatalf("%s at 0: %v", dim, err)
		}
		if !z.Zero() {
			t.Errorf("%s at rate 0 is not the zero Spec: %+v", dim, z)
		}
	}
	if s, err := FaultSpecFor("none", 0); err != nil || !s.Zero() {
		t.Errorf("none/0 = (%+v, %v), want zero Spec", s, err)
	}
	if _, err := FaultSpecFor("none", 0.1); err == nil {
		t.Error("none at a positive rate accepted")
	}
	if _, err := FaultSpecFor("gamma-rays", 0.1); err == nil {
		t.Error("unknown dimension accepted")
	}
}

func TestDegradationRowsJSON(t *testing.T) {
	rows := []DegradationRow{
		{
			Label: "none", Trials: 4, Errors: 0, ErrorRate: 0,
			WilsonLo: 0, WilsonHi: 0.49,
			Rounds: stats.Summary{N: 4, Mean: 10},
		},
		{
			Label: "drop=0.30", Trials: 4, Errors: 2, ErrorRate: 0.5,
			WilsonLo: 0.15, WilsonHi: 0.85,
			Rounds: stats.Summary{N: 2, Mean: 12},
			CellFailures: []CellResult{
				{Cell: 1, Outcome: CellFailed, Err: errors.New("boom")},
				{Cell: 3, Outcome: CellTimedOut, Err: errors.New("slow")},
			},
		},
	}
	got := DegradationRowsJSON(rows)
	want := []DegradationRowJSON{
		{Label: "none", Trials: 4, WilsonHi: 0.49, Rounds: stats.Summary{N: 4, Mean: 10}},
		{
			Label: "drop=0.30", Trials: 4, Errors: 2, ErrorRate: 0.5,
			WilsonLo: 0.15, WilsonHi: 0.85,
			Rounds: stats.Summary{N: 2, Mean: 12},
			Failures: []CellFailureJSON{
				{Cell: 1, Outcome: "failed", Err: "boom"},
				{Cell: 3, Outcome: "timed_out", Err: "slow"},
			},
		},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("rows:\ngot  %+v\nwant %+v", got, want)
	}
}
