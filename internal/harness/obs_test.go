package harness

import (
	"bytes"
	"reflect"
	"testing"

	"dyndiam/internal/obs"
)

// TestSweepMetricsParallelEqualSequential is the roll-up counterpart of
// TestSweepsParallelEqualSequential: with sweep metrics enabled, the
// aggregate registry's snapshot must be deep-equal at every worker count,
// because per-cell registries are merged in cell-index order and every
// cell's content is a pure function of its parameters.
func TestSweepMetricsParallelEqualSequential(t *testing.T) {
	run := func(workers int) []obs.MetricPoint {
		prev := SetSweepWorkers(workers)
		defer SetSweepWorkers(prev)
		EnableSweepMetrics()
		if _, err := GapTable([]int{24, 32, 48}, 4, 7); err != nil {
			t.Fatal(err)
		}
		if _, err := LeaderSweep([]int{16, 20}, 4, 0.9, 150, 11); err != nil {
			t.Fatal(err)
		}
		if _, err := MajoritySweep(24, []float64{0.4, 0.8}, 4, 3); err != nil {
			t.Fatal(err)
		}
		reg := TakeSweepMetrics()
		if reg == nil {
			t.Fatal("TakeSweepMetrics returned nil after enablement")
		}
		return reg.Snapshot()
	}
	seq := run(1)
	if len(seq) == 0 {
		t.Fatal("no metrics collected")
	}
	var cells int64
	for _, p := range seq {
		if p.Name == "sweep_cells_total" {
			cells = p.Value
		}
	}
	if cells != 3+2+2 {
		t.Fatalf("sweep_cells_total = %d want 7", cells)
	}
	for _, w := range []int{2, 3, 16} {
		par := run(w)
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d: metric roll-up differs from sequential:\n seq %+v\n par %+v", w, seq, par)
		}
	}
}

// TestGapTableUsesFloodFastPath pins that the E4 sweep's CFLOOD runs go
// through the word-packed fast path: each cell runs known-D and unknown-D
// once, so the merged registry must count exactly two fast-path runs per
// cell.
func TestGapTableUsesFloodFastPath(t *testing.T) {
	EnableSweepMetrics()
	sizes := []int{24, 32}
	if _, err := GapTable(sizes, 4, 7); err != nil {
		t.Fatal(err)
	}
	reg := TakeSweepMetrics()
	if reg == nil {
		t.Fatal("TakeSweepMetrics returned nil after enablement")
	}
	if got := reg.Counter("engine_floodfast_runs_total").Value(); got != int64(2*len(sizes)) {
		t.Fatalf("engine_floodfast_runs_total = %d, want %d", got, 2*len(sizes))
	}
}

// TestSweepMetricsDisabledByDefault pins the zero-overhead-when-off side:
// without enablement, cells see a nil registry and TakeSweepMetrics has
// nothing to return.
func TestSweepMetricsDisabledByDefault(t *testing.T) {
	if reg := TakeSweepMetrics(); reg != nil {
		t.Fatal("sweep metrics were enabled at test start")
	}
	if _, err := MajoritySweep(24, []float64{0.6}, 4, 3); err != nil {
		t.Fatal(err)
	}
	if reg := TakeSweepMetrics(); reg != nil {
		t.Fatal("a sweep without enablement produced an aggregate")
	}
}

// TestReductionSweepMetrics checks the sequential reduction sweeps feed the
// same aggregate, and that the result exports cleanly as Prometheus text.
func TestReductionSweepMetrics(t *testing.T) {
	EnableSweepMetrics()
	if _, err := CFloodReduction([]int{9}, 2, 3); err != nil {
		t.Fatal(err)
	}
	reg := TakeSweepMetrics()
	if reg == nil {
		t.Fatal("no aggregate from the reduction sweep")
	}
	if got := reg.Counter("reduction_rounds_total").Value(); got == 0 {
		t.Fatal("reduction recorded no rounds")
	}
	if got := reg.Counter("reduction_lemma_violations").Value(); got != 0 {
		t.Fatalf("reduction recorded %d lemma violations", got)
	}
	var buf bytes.Buffer
	if err := obs.WriteMetricsText(&buf, reg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("# TYPE reduction_bits_alice_to_bob counter")) {
		t.Fatalf("exposition missing reduction counters:\n%s", buf.String())
	}
}

// TestSweepSpansParallelEqualSequential pins the span-capture counterpart:
// the captured cell-span stream must be byte-identical at every worker
// count because spans are appended in cell-index order after the sweep.
func TestSweepSpansParallelEqualSequential(t *testing.T) {
	run := func(workers int) []obs.Event {
		prev := SetSweepWorkers(workers)
		defer SetSweepWorkers(prev)
		EnableSweepSpans()
		if _, err := GapTable([]int{24, 32, 48}, 4, 7); err != nil {
			t.Fatal(err)
		}
		evs := TakeSweepSpans()
		if evs == nil {
			t.Fatal("TakeSweepSpans returned nil after enablement")
		}
		return evs
	}
	seq := run(1)
	if len(seq) != 2*3 {
		t.Fatalf("captured %d events, want one begin/end pair per cell (6)", len(seq))
	}
	key := obs.Intern("sweep_cell")
	for i := 0; i < 3; i++ {
		b, e := seq[2*i], seq[2*i+1]
		if b.Kind != obs.KindSpanBegin || b.Round != int32(i) || b.Node != int32(i) ||
			b.Track != 1 || b.Name != key || b.A <= 0 {
			t.Fatalf("cell %d begin = %+v", i, b)
		}
		if e.Kind != obs.KindSpanEnd || e.Round != int32(i+1) || e.Node != int32(i) ||
			e.Track != 1 || e.Name != key || e.A != b.A {
			t.Fatalf("cell %d end = %+v (begin %+v)", i, e, b)
		}
	}
	for _, w := range []int{2, 3, 16} {
		par := run(w)
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d: span capture differs from sequential:\n seq %+v\n par %+v", w, seq, par)
		}
	}
}

// TestSweepSpansDisabledByDefault pins the off side of span capture.
func TestSweepSpansDisabledByDefault(t *testing.T) {
	if evs := TakeSweepSpans(); evs != nil {
		t.Fatal("sweep spans were enabled at test start")
	}
	if _, err := MajoritySweep(24, []float64{0.6}, 4, 3); err != nil {
		t.Fatal(err)
	}
	if evs := TakeSweepSpans(); evs != nil {
		t.Fatal("a sweep without enablement captured spans")
	}
}
