package harness

import (
	"fmt"

	"dyndiam/internal/chains"
	"dyndiam/internal/disjcp"
	"dyndiam/internal/dynet"
	"dyndiam/internal/graph"
	"dyndiam/internal/obs"
	"dyndiam/internal/protocols/consensus"
	"dyndiam/internal/protocols/flood"
	"dyndiam/internal/rng"
	"dyndiam/internal/subnet"
	"dyndiam/internal/twoparty"
)

// reductionMetrics returns a registry for a sequential reduction sweep when
// sweep metrics are enabled (nil otherwise); the caller merges it back with
// mergeSweepMetrics once the sweep completes.
func reductionMetrics() *obs.Registry {
	if !sweepMetricsEnabled() {
		return nil
	}
	return obs.NewRegistry()
}

// ReductionRow is one row of the E1/E2 reduction tables.
type ReductionRow struct {
	Q, N            int
	Disj            int // the true DISJOINTNESSCP answer
	Oracle          string
	Claim           int // Alice's answer
	ClaimCorrect    bool
	OracleErrored   bool // the oracle's own output violated its problem spec
	Bits            int  // total forwarded bits
	BitsPerRound    float64
	LemmaViolations int
}

// CFloodReduction runs the Theorem 6 experiment (E1) for each q: on both a
// 1-instance and a 0-instance, with a fast oracle (assumes the diameter-10
// composition) and the safe pessimistic oracle. The expected dichotomy:
// the fast oracle classifies 1-instances correctly but *errs as a CFLOOD
// protocol* on 0-instances; the safe oracle is always a correct CFLOOD
// protocol but never terminates within the horizon.
func CFloodReduction(qs []int, n int, seed uint64) ([]ReductionRow, error) {
	var rows []ReductionRow
	src := rng.New(seed)
	reg := reductionMetrics()
	defer mergeSweepMetrics([]*obs.Registry{reg})
	for _, q := range qs {
		for _, zero := range []bool{false, true} {
			var in disjcp.Instance
			if zero {
				in = disjcp.RandomZero(n, q, 1, src)
			} else {
				in = disjcp.RandomOne(n, q, src)
			}
			net, err := subnet.NewCFlood(in)
			if err != nil {
				return nil, err
			}
			for _, oracle := range []struct {
				name  string
				extra map[string]int64
			}{
				{"fast(D:=10)", map[string]int64{flood.ExtraD: 10}},
				{"safe(D:=N-1)", nil},
			} {
				setup := twoparty.FromCFlood(net, flood.CFlood{}, seed+uint64(q), oracle.extra)
				setup.Metrics = reg
				res, err := twoparty.Run(setup, true)
				if err != nil {
					return nil, err
				}
				claim := 0
				if res.Claim {
					claim = 1
				}
				// Oracle error audit: if the reference source
				// confirmed within the horizon, was everyone
				// informed?
				oracleErr := false
				if res.ReferenceDecided[net.Source()] {
					for _, m := range res.ReferenceMachines {
						if !flood.Informed(m) {
							oracleErr = true
						}
					}
				}
				bits := res.BitsAliceToBob + res.BitsBobToAlice
				rows = append(rows, ReductionRow{
					Q: q, N: net.N, Disj: in.Eval(),
					Oracle: oracle.name, Claim: claim,
					ClaimCorrect:    claim == in.Eval(),
					OracleErrored:   oracleErr,
					Bits:            bits,
					BitsPerRound:    float64(bits) / float64(res.Rounds),
					LemmaViolations: len(res.LemmaViolations),
				})
			}
		}
	}
	return rows, nil
}

// FormatReductionTable renders E1/E2 rows.
func FormatReductionTable(caption string, rows []ReductionRow) *Table {
	t := &Table{
		Caption: caption,
		Header:  []string{"q", "N", "DISJ", "oracle", "claim", "claim ok", "oracle err", "bits", "bits/rnd", "lemma viol"},
	}
	for _, r := range rows {
		t.Add(r.Q, r.N, r.Disj, r.Oracle, r.Claim, r.ClaimCorrect, r.OracleErrored, r.Bits, r.BitsPerRound, r.LemmaViolations)
	}
	return t
}

// ConsensusReduction runs the Theorem 7 experiment (E2): on the Λ+Υ
// composition a fast consensus oracle (fixed small-diameter horizon,
// legitimate when the network is Λ alone) decides within the horizon; on
// 0-instances the two sides decide opposite values — an agreement
// violation the rows report.
func ConsensusReduction(qs []int, seed uint64) ([]ConsensusReductionRow, error) {
	return ConsensusReductionOracle(qs, seed, nil, nil)
}

// ConsensusReductionOracle is ConsensusReduction with a caller-chosen
// oracle protocol and Extra parameters. A nil oracle selects the default:
// consensus.KnownD with a gossip horizon of 3/4 of the simulation horizon.
// Passing consensus.ViaLeader (the paper's own Section 7 protocol) shows
// the same dichotomy for LEADERELECT-based consensus — which is how the
// CONSENSUS lower bound carries to LEADERELECT.
func ConsensusReductionOracle(qs []int, seed uint64, oracle dynet.Protocol, extra map[string]int64) ([]ConsensusReductionRow, error) {
	var rows []ConsensusReductionRow
	src := rng.New(seed)
	reg := reductionMetrics()
	defer mergeSweepMetrics([]*obs.Registry{reg})
	for _, q := range qs {
		for _, zero := range []bool{false, true} {
			var in disjcp.Instance
			if zero {
				in = disjcp.RandomZero(1, q, 1, src)
			} else {
				in = disjcp.RandomOne(1, q, src)
			}
			net, err := subnet.NewConsensus(in)
			if err != nil {
				return nil, err
			}
			o := oracle
			ex := extra
			if o == nil {
				o = consensus.KnownD{}
				ex = map[string]int64{
					consensus.ExtraRounds: int64(3 * net.Horizon() / 4),
				}
			}
			setup := twoparty.FromConsensus(net, o, seed+uint64(q), ex)
			setup.Metrics = reg
			res, err := twoparty.Run(setup, true)
			if err != nil {
				return nil, err
			}
			row := ConsensusReductionRow{
				Q: q, N: net.N, NPrime: net.NPrime, Disj: in.Eval(),
				Claim:           boolToInt(res.Claim),
				Bits:            res.BitsAliceToBob + res.BitsBobToAlice,
				LemmaViolations: len(res.LemmaViolations),
			}
			row.ClaimCorrect = row.Claim == row.Disj
			// Agreement audit over the reference execution.
			decided := map[int64]bool{}
			for v, ok := range res.ReferenceDecided {
				if ok {
					decided[res.ReferenceOutputs[v]] = true
				}
			}
			row.AgreementViolated = len(decided) > 1
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ConsensusReductionRow is one row of E2.
type ConsensusReductionRow struct {
	Q, N, NPrime      int
	Disj              int
	Claim             int
	ClaimCorrect      bool
	AgreementViolated bool
	Bits              int
	LemmaViolations   int
}

// FormatConsensusReductionTable renders E2 rows.
func FormatConsensusReductionTable(rows []ConsensusReductionRow) *Table {
	t := &Table{
		Caption: "E2: Theorem 7 reduction (Λ+Υ): fast consensus with N' accuracy 1/3 violates agreement on 0-instances",
		Header:  []string{"q", "N", "N'", "DISJ", "claim", "claim ok", "agreement violated", "bits", "lemma viol"},
	}
	for _, r := range rows {
		t.Add(r.Q, r.N, r.NPrime, r.Disj, r.Claim, r.ClaimCorrect, r.AgreementViolated, r.Bits, r.LemmaViolations)
	}
	return t
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// DiameterGapRow is one row of the construction-level diameter check
// (the structural heart of Theorem 6; also E8's node-count data).
type DiameterGapRow struct {
	Q, N     int
	Disj     int
	Diameter int
}

// ConstructionDiameters measures the dynamic diameter of the Theorem 6
// composition for both answers at each q: O(1) for 1-instances, Ω(q) for
// 0-instances.
func ConstructionDiameters(qs []int, n int, seed uint64) ([]DiameterGapRow, error) {
	var rows []DiameterGapRow
	src := rng.New(seed)
	for _, q := range qs {
		for _, zero := range []bool{false, true} {
			var in disjcp.Instance
			if zero {
				in = disjcp.RandomZero(n, q, 1, src)
			} else {
				in = disjcp.RandomOne(n, q, src)
			}
			net, err := subnet.NewCFlood(in)
			if err != nil {
				return nil, err
			}
			d, err := measureCompositionDiameter(net, 8*q)
			if err != nil {
				return nil, err
			}
			rows = append(rows, DiameterGapRow{Q: q, N: net.N, Disj: in.Eval(), Diameter: d})
		}
	}
	return rows, nil
}

func measureCompositionDiameter(net *subnet.CFloodNet, horizon int) (int, error) {
	graphs := make([]*graph.Graph, horizon)
	for r := 1; r <= horizon; r++ {
		graphs[r-1] = net.Topology(chains.Reference, r, nil)
	}
	d, exact := dynet.DynamicDiameter(graphs)
	if !exact {
		return d, fmt.Errorf("harness: horizon %d did not certify composition diameter (>= %d)", horizon, d)
	}
	return d, nil
}

// FormatDiameterTable renders construction-diameter rows.
func FormatDiameterTable(rows []DiameterGapRow) *Table {
	t := &Table{
		Caption: "Theorem 6 composition: diameter O(1) iff DISJ=1, Ω(q) iff DISJ=0",
		Header:  []string{"q", "N", "DISJ", "dynamic diameter"},
	}
	for _, r := range rows {
		t.Add(r.Q, r.N, r.Disj, r.Diameter)
	}
	return t
}
