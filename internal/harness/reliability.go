package harness

import (
	"fmt"

	"dyndiam/internal/adversaries"
	"dyndiam/internal/dynet"
	"dyndiam/internal/obs"
	"dyndiam/internal/protocols/leader"
	"dyndiam/internal/stats"
)

// Reliability is the outcome of a repeated-seed protocol evaluation.
type Reliability struct {
	Trials    int
	Errors    int // runs whose outputs violated the problem spec
	ErrorRate float64
	Rounds    stats.Summary // termination-round distribution
}

// ReliabilityTrialSeed is the public-coin and adversary seed of
// reliability trial t. It is shared with the degradation sweeps so their
// zero-fault rows reproduce the clean reliability runs bit for bit.
func ReliabilityTrialSeed(trial int) uint64 {
	return uint64(trial)*2654435761 + 1
}

// LeaderReliability runs the Section 7 leader election across trials
// independent public-coin seeds on a fresh low-diameter dynamic network
// each time, and reports the empirical error rate (Theorem 8 promises
// error <= 1/N) and the termination-round distribution.
func LeaderReliability(n, targetDiam, trials int, extra map[string]int64) (Reliability, error) {
	rel := Reliability{Trials: trials}
	rounds := make([]float64, trials)
	failed := make([]bool, trials)
	budget := RoundBudget()
	err := forEachCell(trials, func(trial int, reg *obs.Registry) error {
		seed := ReliabilityTrialSeed(trial)
		adv := adversaries.BoundedDiameter(n, targetDiam, n/2, seed)
		ms := dynet.NewMachines(leader.Protocol{}, n, make([]int64, n), seed, extra)
		e := &dynet.Engine{Machines: ms, Adv: adv, Workers: 1, Metrics: reg}
		res, err := e.Run(budget)
		if err != nil {
			return err
		}
		if !res.Done {
			return NonTermination{Name: "leader reliability", Cell: trial, Budget: budget}
		}
		for _, out := range res.Outputs {
			if out != int64(n-1) {
				failed[trial] = true
			}
		}
		rounds[trial] = float64(res.Rounds)
		return nil
	})
	if err != nil {
		return rel, err
	}
	for _, f := range failed {
		if f {
			rel.Errors++
		}
	}
	rel.ErrorRate = float64(rel.Errors) / float64(trials)
	rel.Rounds = stats.Summarize(rounds)
	return rel, nil
}

// FormatReliability renders a Reliability result.
func FormatReliability(name string, r Reliability) string {
	return fmt.Sprintf("%s: %d trials, %d errors (rate %.4f), rounds %s",
		name, r.Trials, r.Errors, r.ErrorRate, r.Rounds)
}

// PhaseBreakdown aggregates the Section 7 protocol's internal counters over
// one run — how many doubling phases were needed, how many candidacies and
// rollbacks occurred, and how widely locks spread.
type PhaseBreakdown struct {
	N, D, Rounds  int
	WinnerPhases  int // phases the winner went through before declaring
	Candidacies   int // total across nodes
	Failures      int // rolled-back candidacies
	LocksAccepted int
	UnlocksSeen   int
}

// LeaderPhases runs one seeded election on a low-diameter dynamic network
// and reports its phase breakdown.
func LeaderPhases(n, targetDiam int, seed uint64, extra map[string]int64) (PhaseBreakdown, error) {
	adv := adversaries.BoundedDiameter(n, targetDiam, n/2, seed)
	d, err := MeasureDynamicDiameter(
		adversaries.BoundedDiameter(n, targetDiam, n/2, seed), n, 6*targetDiam+60)
	if err != nil {
		return PhaseBreakdown{}, err
	}
	ms := dynet.NewMachines(leader.Protocol{}, n, make([]int64, n), seed, extra)
	e := &dynet.Engine{Machines: ms, Adv: adv, Workers: 1}
	budget := RoundBudget()
	res, err := e.Run(budget)
	if err != nil {
		return PhaseBreakdown{}, err
	}
	if !res.Done {
		return PhaseBreakdown{}, NonTermination{Name: "leader phases", Budget: budget}
	}
	pb := PhaseBreakdown{N: n, D: d, Rounds: res.Rounds}
	for v, m := range ms {
		st, ok := leader.MachineStats(m)
		if !ok {
			return pb, fmt.Errorf("harness: node %d is not a leader machine", v)
		}
		pb.Candidacies += st.Candidacies
		pb.Failures += st.Failures
		pb.LocksAccepted += st.LocksAccepted
		pb.UnlocksSeen += st.UnlocksSeen
		if v == n-1 {
			pb.WinnerPhases = st.Phases
		}
	}
	return pb, nil
}

// FormatPhaseBreakdown renders PhaseBreakdown rows.
func FormatPhaseBreakdown(rows []PhaseBreakdown) *Table {
	t := &Table{
		Caption: "Section 7 phase structure: doubling D' until the counts complete",
		Header:  []string{"N", "D", "rounds", "winner phases", "candidacies", "rollbacks", "locks", "unlocks"},
	}
	for _, r := range rows {
		t.Add(r.N, r.D, r.Rounds, r.WinnerPhases, r.Candidacies, r.Failures, r.LocksAccepted, r.UnlocksSeen)
	}
	return t
}
