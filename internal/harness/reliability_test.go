package harness

import (
	"strings"
	"testing"

	"dyndiam/internal/protocols/consensus"
)

func TestLeaderReliability(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated elections are slow")
	}
	rel, err := LeaderReliability(20, 4, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Trials != 8 {
		t.Fatalf("trials = %d", rel.Trials)
	}
	// Theorem 8 promises error <= 1/N; over 8 trials at N=20 we expect
	// zero errors (allow at most one for estimator tail events).
	if rel.Errors > 1 {
		t.Errorf("error rate %.3f too high (%d/%d)", rel.ErrorRate, rel.Errors, rel.Trials)
	}
	if rel.Rounds.N != 8 || rel.Rounds.Mean <= 0 {
		t.Errorf("rounds summary broken: %+v", rel.Rounds)
	}
	out := FormatReliability("leader", rel)
	if !strings.Contains(out, "8 trials") {
		t.Errorf("render: %s", out)
	}
}

func TestConsensusReductionOracleCustom(t *testing.T) {
	// The generalized entry point with an explicit oracle must behave
	// like the default when given the same configuration.
	rows, err := ConsensusReductionOracle([]int{201}, 3,
		consensus.KnownD{}, map[string]int64{consensus.ExtraRounds: 75})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.LemmaViolations != 0 {
			t.Errorf("lemma violations: %d", r.LemmaViolations)
		}
		if r.Disj == 0 && !r.AgreementViolated {
			t.Error("0-instance without agreement violation")
		}
	}
}

func TestLeaderPhases(t *testing.T) {
	pb, err := LeaderPhases(20, 4, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pb.WinnerPhases < 1 {
		t.Error("winner saw no phases")
	}
	if pb.Candidacies < 1 {
		t.Error("no candidacies recorded")
	}
	if pb.LocksAccepted < pb.N/2 {
		t.Errorf("only %d locks across %d nodes", pb.LocksAccepted, pb.N)
	}
	out := FormatPhaseBreakdown([]PhaseBreakdown{pb}).String()
	if !strings.Contains(out, "winner phases") {
		t.Errorf("render: %s", out)
	}
}
