package harness

import (
	"dyndiam/internal/chains"
	"dyndiam/internal/disjcp"
	"dyndiam/internal/rng"
	"dyndiam/internal/subnet"
)

// SpoiledRow records, for one round, how much of the Theorem 6 composition
// each party can still simulate — the quantitative face of the spoiled-node
// argument: the spoiled region grows every round, yet the decision-relevant
// specials stay simulable through the whole horizon (q-1)/2.
type SpoiledRow struct {
	Round                    int
	NonSpoiledAlice          int
	NonSpoiledBob            int
	SpecialsSimulatableAlice bool // A_Γ and A_Λ still non-spoiled for Alice
	SpecialsSimulatableBob   bool // B_Γ and B_Λ still non-spoiled for Bob
}

// SpoiledGrowth tabulates the non-spoiled counts per round for a random
// 0-instance at the given (n, q).
func SpoiledGrowth(n, q int, seed uint64) ([]SpoiledRow, error) {
	in := disjcp.RandomZero(n, q, 1, rng.New(seed))
	net, err := subnet.NewCFlood(in)
	if err != nil {
		return nil, err
	}
	alice := net.SpoiledFrom(chains.Alice)
	bob := net.SpoiledFrom(chains.Bob)
	var rows []SpoiledRow
	for r := 1; r <= net.Horizon(); r++ {
		row := SpoiledRow{Round: r}
		for v := 0; v < net.N; v++ {
			if r < alice[v] {
				row.NonSpoiledAlice++
			}
			if r < bob[v] {
				row.NonSpoiledBob++
			}
		}
		row.SpecialsSimulatableAlice = r < alice[net.Gamma.A] && r < alice[net.Lambda.A]
		row.SpecialsSimulatableBob = r < bob[net.Gamma.B] && r < bob[net.Lambda.B]
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatSpoiledTable renders SpoiledGrowth rows.
func FormatSpoiledTable(n int, rows []SpoiledRow) *Table {
	t := &Table{
		Caption: "Spoiled-region growth over the simulation horizon (network size in header)",
		Header:  []string{"round", "non-spoiled (Alice)", "non-spoiled (Bob)", "A-specials ok", "B-specials ok"},
	}
	for _, r := range rows {
		t.Add(r.Round, r.NonSpoiledAlice, r.NonSpoiledBob, r.SpecialsSimulatableAlice, r.SpecialsSimulatableBob)
	}
	return t
}
