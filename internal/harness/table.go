// Package harness runs the repository's experiments (DESIGN.md §4) and
// renders their result tables: the known-vs-unknown-diameter gap (E4), the
// Theorem 6/7 reduction runs (E1, E2), the Theorem 8 leader-election sweep
// (E3), counting accuracy (E5, E6), the Lemma 5 referee (E7), and the
// Figure 1-3 construction printouts (F1-F3). The cmd/ binaries and the
// root-level benchmarks are thin wrappers over this package.
package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is a plain-text result table with a caption.
type Table struct {
	Caption string
	Header  []string
	Rows    [][]string
}

// Add appends one row; cells are Sprint-ed.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Caption != "" {
		fmt.Fprintf(w, "## %s\n", t.Caption)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
