package lint

import (
	"encoding/json"
	"os"
)

// Baseline support: a ratchet file of known findings. A baselined finding
// is filtered from the current run's output, so a legacy tree can adopt a
// new rule without a flag day while CI still fails on anything new.
//
// Keys deliberately omit line numbers — "relpath:rule: message" — so that
// unrelated edits shifting a known finding up or down the file do not
// break the ratchet. The baseline is a multiset: two identical findings
// in the tree need two baseline entries, and fixing one of them shrinks
// the budget for the other.

// baselineFile is the on-disk JSON shape.
type baselineFile struct {
	// Version guards future format changes.
	Version int `json:"version"`
	// Findings maps baseline keys to their allowed multiplicity.
	Findings map[string]int `json:"findings"`
}

// baselineKey renders the line-number-free identity of a finding.
func baselineKey(root string, f Finding) string {
	return relURI(root, f.Pos.Filename) + ":" + f.Rule + ": " + f.Message
}

// WriteBaseline writes the findings as a baseline file at path. Keys are
// sorted by the JSON marshaller, so output is deterministic.
func WriteBaseline(path, root string, findings []Finding) error {
	bf := baselineFile{Version: 1, Findings: map[string]int{}}
	for _, f := range findings {
		bf.Findings[baselineKey(root, f)]++
	}
	out, err := json.MarshalIndent(&bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// FilterBaseline removes findings covered by the baseline at path,
// honoring multiplicity: n baseline entries absorb the first n matching
// findings in sorted order. Returns the surviving findings.
func FilterBaseline(path, root string, findings []Finding) ([]Finding, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, err
	}
	budget := map[string]int{}
	for k, n := range bf.Findings {
		budget[k] = n
	}
	var out []Finding
	for _, f := range findings {
		k := baselineKey(root, f)
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		out = append(out, f)
	}
	return out, nil
}
