package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CallGraph is a conservative, type-resolved call graph over every
// function with a body in the loaded module packages. Edges cover:
//
//   - direct calls to package-level functions,
//   - method calls with a statically known (concrete) receiver,
//   - interface method calls, over-approximated as edges to the matching
//     method of every module type whose method set implements the
//     interface (a call can never silently escape the graph through an
//     interface — see DESIGN.md for the cost of this over-approximation),
//   - references that make a function a value (passed, assigned, go/defer,
//     method values), treated as "may be called from here".
//
// Function literals are attributed to their enclosing declared function:
// calls inside a closure are edges from the function that created it.
// Calls through arbitrary function *values* (a func-typed variable or
// field) are the one unresolved case; the reference edges above cover the
// common pattern where the value was taken in a traversed function.
type CallGraph struct {
	fset *token.FileSet
	// Nodes indexes every module function declaration by its canonical
	// (generic-origin) types.Func object.
	Nodes map[*types.Func]*FuncNode

	ordered []*FuncNode
	named   []*types.Named
	ifaceMu map[ifaceKey][]*FuncNode
}

// FuncNode is one function declaration in the call graph.
type FuncNode struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Annotations holds //lint:<name> markers ("hotpath", "pure") from
	// the declaration's doc comment.
	Annotations map[string]bool
	// Out lists call and reference edges in source order.
	Out []Edge
}

// Edge is one call (or function-value reference) site.
type Edge struct {
	Site   token.Pos
	Callee *FuncNode
}

type ifaceKey struct {
	iface *types.Interface
	name  string
}

// BuildCallGraph constructs the graph over the given packages (typically
// Module.All()). Packages whose type-check failed completely are skipped;
// partially checked packages contribute whatever the checker resolved.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		Nodes:   map[*types.Func]*FuncNode{},
		ifaceMu: map[ifaceKey][]*FuncNode{},
	}
	for _, pkg := range pkgs {
		if g.fset == nil {
			g.fset = pkg.Fset
		}
		if pkg.Types != nil {
			scope := pkg.Types.Scope()
			for _, name := range scope.Names() {
				if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
					if named, ok := tn.Type().(*types.Named); ok {
						g.named = append(g.named, named)
					}
				}
			}
		}
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Obj: obj, Decl: fd, Pkg: pkg, Annotations: declAnnotations(fd)}
				g.Nodes[obj] = node
				g.ordered = append(g.ordered, node)
			}
		}
	}
	for _, node := range g.ordered {
		g.addEdges(node)
	}
	return g
}

// Annotated returns the nodes carrying //lint:<name> in declaration
// order (deterministic given the loader's sorted package order).
func (g *CallGraph) Annotated(name string) []*FuncNode {
	var out []*FuncNode
	for _, n := range g.ordered {
		if n.Annotations[name] {
			out = append(out, n)
		}
	}
	return out
}

// Funcs returns every node in declaration order.
func (g *CallGraph) Funcs() []*FuncNode { return g.ordered }

// declAnnotations extracts //lint:hotpath and //lint:pure markers from a
// declaration's doc comment (an optional reason may follow the marker).
func declAnnotations(fd *ast.FuncDecl) map[string]bool {
	if fd.Doc == nil {
		return nil
	}
	var out map[string]bool
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		for _, name := range [...]string{"hotpath", "pure"} {
			if text == "lint:"+name || strings.HasPrefix(text, "lint:"+name+" ") {
				if out == nil {
					out = map[string]bool{}
				}
				out[name] = true
			}
		}
	}
	return out
}

// addEdges walks one function body and records its outgoing edges.
func (g *CallGraph) addEdges(n *FuncNode) {
	info := n.Pkg.Info
	// Pass 1: call expressions. Remember the exact callee identifiers so
	// the reference pass below does not double-count them.
	calleeIdents := map[*ast.Ident]bool{}
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			calleeIdents[fun] = true
			if f, ok := info.Uses[fun].(*types.Func); ok {
				g.edgeTo(n, call.Pos(), f)
			}
		case *ast.SelectorExpr:
			calleeIdents[fun.Sel] = true
			g.edgesForSelector(n, fun, call.Pos())
		}
		return true
	})
	// Pass 2: function-value references (arguments, assignments, go/defer
	// of named functions, method values/expressions).
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.SelectorExpr:
			if calleeIdents[x.Sel] {
				return true
			}
			calleeIdents[x.Sel] = true // consume: the generic ident case must not re-add
			g.edgesForSelector(n, x, x.Pos())
			return true
		case *ast.Ident:
			if calleeIdents[x] {
				return true
			}
			if f, ok := info.Uses[x].(*types.Func); ok {
				g.edgeTo(n, x.Pos(), f)
			}
		}
		return true
	})
}

// edgesForSelector resolves x.M at pos: interface method uses expand to
// every implementing module type's method; concrete methods and
// package-qualified functions become direct edges.
func (g *CallGraph) edgesForSelector(n *FuncNode, sel *ast.SelectorExpr, pos token.Pos) {
	info := n.Pkg.Info
	if s, ok := info.Selections[sel]; ok {
		m, ok := s.Obj().(*types.Func)
		if !ok {
			return // func-typed field: dynamic, unresolved
		}
		if types.IsInterface(s.Recv()) {
			iface, ok := s.Recv().Underlying().(*types.Interface)
			if ok {
				for _, impl := range g.implementations(iface, m.Name()) {
					n.Out = append(n.Out, Edge{Site: pos, Callee: impl})
				}
			}
			return
		}
		g.edgeTo(n, pos, m)
		return
	}
	// Not a selection: package-qualified function (fmt.Println, graph.New)
	// or a type conversion (no edge — Uses yields a TypeName).
	if f, ok := info.Uses[sel.Sel].(*types.Func); ok {
		g.edgeTo(n, pos, f)
	}
}

// edgeTo appends an edge when the callee is a module function with a body.
func (g *CallGraph) edgeTo(n *FuncNode, pos token.Pos, f *types.Func) {
	if target, ok := g.Nodes[f.Origin()]; ok {
		n.Out = append(n.Out, Edge{Site: pos, Callee: target})
	}
}

// implementations returns the module methods a call to iface.name may
// dispatch to, memoized per (interface, method).
func (g *CallGraph) implementations(iface *types.Interface, name string) []*FuncNode {
	key := ifaceKey{iface, name}
	if impls, ok := g.ifaceMu[key]; ok {
		return impls
	}
	var impls []*FuncNode
	for _, named := range g.named {
		if types.IsInterface(named) {
			continue
		}
		var recv types.Type = named
		if !types.Implements(named, iface) {
			ptr := types.NewPointer(named)
			if !types.Implements(ptr, iface) {
				continue
			}
			recv = ptr
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, named.Obj().Pkg(), name)
		if m, ok := obj.(*types.Func); ok {
			if target, ok := g.Nodes[m.Origin()]; ok {
				impls = append(impls, target)
			}
		}
	}
	g.ifaceMu[key] = impls
	return impls
}

// reachResult is the pruned reachable set of one interprocedural
// traversal, with BFS parents for diagnostic call paths.
type reachResult struct {
	order []*FuncNode
	via   map[*FuncNode]*FuncNode
}

// reachFrom computes the functions reachable from roots, consulting the
// pass's //lint:allow directives at every call site: an allow for the
// running rule on a call-site line prunes the edges leaving that line
// (and is thereby marked used).
func reachFrom(mp *ModulePass, roots []*FuncNode) *reachResult {
	res := &reachResult{via: map[*FuncNode]*FuncNode{}}
	seen := map[*FuncNode]bool{}
	var queue []*FuncNode
	for _, r := range roots {
		if !seen[r] {
			seen[r] = true
			res.via[r] = nil
			queue = append(queue, r)
		}
	}
	for i := 0; i < len(queue); i++ {
		n := queue[i]
		res.order = append(res.order, n)
		for _, e := range n.Out {
			if seen[e.Callee] {
				continue
			}
			if mp.EdgeAllowed(e.Site) {
				continue
			}
			seen[e.Callee] = true
			res.via[e.Callee] = n
			queue = append(queue, e.Callee)
		}
	}
	return res
}

// path renders the root → ... → n call chain for diagnostics.
func (r *reachResult) path(n *FuncNode) string {
	var names []string
	for at := n; at != nil; at = r.via[at] {
		names = append(names, displayName(at.Obj))
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " -> ")
}

// displayName renders pkg.Type.Method / pkg.Func for diagnostics.
func displayName(f *types.Func) string {
	name := f.Name()
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if pkg := f.Pkg(); pkg != nil {
		name = pkg.Name() + "." + name
	}
	return name
}
