package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// CongestSend enforces CONGEST message hygiene in protocol packages: a
// dynet.Message put on the wire must take its Payload from a
// bitio.Writer's Bytes() and its NBits from the *same* writer's Len().
// The engine can only enforce the O(log N) per-message bit budget
// (dynet.Budget) if NBits is the true payload length, and the two-party
// harness charges Alice and Bob exactly NBits per forwarded message —
// hand-rolled byte slices or hand-computed bit counts break both
// accountings. The rule also rejects bitio field widths outside [0, 64],
// which would panic at encode time.
var CongestSend = &Analyzer{
	Name: "congestsend",
	Doc: "message construction must go through internal/bitio: Payload from Writer.Bytes(), " +
		"NBits from the matching Writer.Len(); field widths must fit in [0, 64]",
	Scope: func(path string) bool { return underAny(path, "internal/protocols") },
	Run:   runCongestSend,
}

func runCongestSend(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				p.checkMessageLit(n)
			case *ast.CallExpr:
				p.checkWriteWidth(n)
			}
			return true
		})
	}
}

// checkMessageLit validates a dynet.Message composite literal.
func (p *Pass) checkMessageLit(lit *ast.CompositeLit) {
	if !p.isNamed(lit, "internal/dynet", "Message") {
		return
	}
	if len(lit.Elts) == 0 {
		return // the empty Receive-side message carries no payload
	}
	var payload, nbits ast.Expr
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			p.Reportf(lit.Pos(), "dynet.Message built with positional fields: use keyed Payload/NBits from a bitio.Writer")
			return
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Payload":
			payload = kv.Value
		case "NBits":
			nbits = kv.Value
		}
	}
	if payload == nil && nbits == nil {
		return // From-only literals are the engine's business, not a send site
	}
	payloadRecv, payloadOK := p.writerMethodReceiver(payload, "Bytes")
	if !payloadOK {
		p.Reportf(lit.Pos(), "Payload must come from a bitio.Writer's Bytes(): raw byte slices bypass CONGEST bit accounting")
		return
	}
	nbitsRecv, nbitsOK := p.writerMethodReceiver(nbits, "Len")
	if !nbitsOK {
		p.Reportf(lit.Pos(), "NBits must come from a bitio.Writer's Len(): hand-computed bit counts break the engine's budget check")
		return
	}
	if payloadRecv != nbitsRecv {
		p.Reportf(lit.Pos(), "Payload and NBits come from different writers (%s vs %s): the declared length would not match the payload", payloadRecv, nbitsRecv)
	}
}

// writerMethodReceiver checks that expr is a call recv.<method>() on a
// bitio.Writer and returns the receiver's printed form.
func (p *Pass) writerMethodReceiver(expr ast.Expr, method string) (string, bool) {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return "", false
	}
	t := p.TypeOf(sel.X)
	if t == nil {
		return "", false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Name() != "Writer" || obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/bitio") {
		return "", false
	}
	return types.ExprString(sel.X), true
}

// checkWriteWidth validates constant width arguments of bitio WriteUint.
func (p *Pass) checkWriteWidth(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "WriteUint" || len(call.Args) != 2 {
		return
	}
	if _, ok := p.writerReceiverType(sel.X); !ok {
		return
	}
	tv, ok := p.Info.Types[call.Args[1]]
	if !ok || tv.Value == nil {
		return // non-constant widths are checked at runtime by bitio
	}
	w, ok := constant.Int64Val(constant.ToInt(tv.Value))
	if !ok {
		return
	}
	if w < 0 || w > 64 {
		p.Reportf(call.Args[1].Pos(), "bitio field width %d outside [0, 64]: WriteUint would panic at encode time", w)
	}
}

// writerReceiverType reports whether expr's type is (a pointer to)
// bitio.Writer.
func (p *Pass) writerReceiverType(expr ast.Expr) (types.Type, bool) {
	t := p.TypeOf(expr)
	if t == nil {
		return nil, false
	}
	u := t
	if ptr, ok := u.(*types.Pointer); ok {
		u = ptr.Elem()
	}
	named, ok := u.(*types.Named)
	if !ok {
		return nil, false
	}
	obj := named.Obj()
	if obj.Name() != "Writer" || obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/bitio") {
		return nil, false
	}
	return t, true
}

// isNamed reports whether the composite literal's type is the named type
// pkgSuffix.name (matched by import-path suffix so the rule is module-path
// agnostic; also matches unqualified literals inside the defining package).
func (p *Pass) isNamed(lit *ast.CompositeLit, pkgSuffix, name string) bool {
	t := p.TypeOf(lit)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), pkgSuffix)
}
