package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// Determinism forbids ambient nondeterminism in simulation and protocol
// packages. The paper's lower bounds (Theorems 6-7) require public-coin
// executions: every coin must be a pure function of (seed, node, round) so
// Alice and Bob can re-simulate any node bit-identically from the shared
// seed (internal/rng implements exactly this contract). A single
// math/rand draw or wall-clock read inside a protocol makes the two-party
// re-simulation diverge from the reference execution and silently voids
// the reduction, so those sources are banned at the import/call level.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid math/rand and wall-clock reads in simulation/protocol packages; " +
		"randomness must come from internal/rng so executions are re-simulable from the public seed",
	Scope: func(path string) bool {
		return underAny(path,
			"internal/dynet",
			"internal/protocols",
			"internal/adversaries",
			"internal/chains",
			"internal/subnet",
			// The sweep harness derives every cell's seed as a pure
			// function of (sweep seed, cell params) so tables are identical
			// at any worker count; ambient randomness would break that.
			"internal/harness",
			// Fault plans are replay contracts: every injected fault is a
			// pure function of (seed, round, node, edge), so a single faulty
			// trial can be re-run in isolation (cmd/chaos -replay).
			"internal/faults",
		)
	},
	Run: runDeterminism,
}

// bannedClockCalls are time package functions that read the wall clock.
var bannedClockCalls = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runDeterminism(p *Pass) {
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				p.Reportf(imp.Pos(), "import of %s: simulation randomness must come from internal/rng (public-coin re-simulation)", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch pkg := p.pkgIdentOrName(f, sel.X); pkg {
			case "time":
				if bannedClockCalls[sel.Sel.Name] {
					p.Reportf(sel.Pos(), "time.%s reads the wall clock: protocol behavior must be a pure function of (seed, node, round)", sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				p.Reportf(sel.Pos(), "%s.%s: simulation randomness must come from internal/rng (public-coin re-simulation)", pkg, sel.Sel.Name)
			}
			return true
		})
	}
}

// pkgIdentOrName resolves a selector qualifier to an imported package
// path, preferring type information and falling back to matching the
// file's import names when type info is partial.
func (p *Pass) pkgIdentOrName(f *ast.File, e ast.Expr) string {
	if path := p.pkgIdent(e); path != "" {
		return path
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == id.Name {
			// Only trust the fallback when no local object shadows it.
			if p.ObjectOf(id) == nil {
				return path
			}
		}
	}
	return ""
}
