package lint

import "go/ast"

// FaultsDeterminism enforces the stricter determinism contract of the
// fault-injection layer (internal/faults), mirroring obsdeterminism for
// internal/obs. A fault plan is a replay contract: the chaos grid
// publishes per-trial seeds so any faulty trial can be re-run in
// isolation (cmd/chaos -replay, EXPERIMENTS.md), which only works if
// every drop/dup/corrupt/crash/cut decision is a pure function of
// (seed, round, node, edge). The general maporder rule only forbids map
// iteration whose order leaks into results; inside internal/faults even
// order-independent iteration is banned, because the plan memoizes
// per-node outage schedules in maps and an iteration over one is a
// refactor away from making fault schedules depend on query order
// (Plan.Down answers from binary search over sorted slices for exactly
// this reason). Wall-clock reads are banned outright — rounds are the
// layer's only clock.
var FaultsDeterminism = &Analyzer{
	Name: "faultsdeterminism",
	Doc: "forbid any map iteration and wall-clock reads in internal/faults: " +
		"fault schedules must be pure functions of (seed, round, node, edge) so faulty trials replay bit-identically",
	Scope: func(path string) bool { return underAny(path, "internal/faults") },
	Run:   runFaultsDeterminism,
}

func runFaultsDeterminism(p *Pass) {
	for _, f := range p.Files {
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if p.isMapRange(n) {
					p.Reportf(n.Pos(), "map iteration in the fault-injection layer: schedules must come from sorted slices and seeded draws, never map order")
				}
			case *ast.SelectorExpr:
				if p.pkgIdentOrName(file, n.X) == "time" && bannedClockCalls[n.Sel.Name] {
					p.Reportf(n.Pos(), "time.%s in the fault-injection layer: rounds are the only clock; wall-clock reads make fault schedules unreplayable", n.Sel.Name)
				}
			}
			return true
		})
	}
}
