package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc is the interprocedural allocation-freedom rule. Functions
// annotated
//
//	//lint:hotpath
//
// in their doc comment are roots (the engine's round loop, its step and
// deliver bodies, and graph.BFSInto are the seeds); every module function
// reachable from a root through the call graph must be allocation-free.
// Flagged constructs: make/new, escaping composite literals (&T{...},
// slice and map literals), append to a non-scratch slice, interface
// boxing (explicit or implicit through calls/assignments/returns),
// capturing closures, go statements, string concatenation and
// string<->[]byte conversions, and fmt calls.
//
// "Scratch" slices — function parameters, struct fields, and locals
// derived from them by slicing/indexing — may be appended to: the
// repository's zero-alloc convention is that their owners preallocate
// capacity (pinned by the AllocsPerRun regression tests); hotpathalloc
// guards the *reuse pattern itself* from regressing three calls deep,
// which the runtime tests cannot see.
//
// A //lint:allow hotpathalloc on a call-site line prunes traversal
// through that call (e.g. the engine's Machine.Step dispatch: machines
// and adversaries own their allocation budgets); on an allocation line it
// suppresses that finding (e.g. documented setup-phase allocations before
// a round loop).
var HotPathAlloc = &ModuleAnalyzer{
	Name: "hotpathalloc",
	Doc: "functions reachable from //lint:hotpath roots must be allocation-free " +
		"(no make/new/escaping literals, non-scratch append, boxing, capturing closures, string building, or fmt)",
	Run: runHotPathAlloc,
}

func runHotPathAlloc(mp *ModulePass) {
	roots := mp.Graph.Annotated("hotpath")
	reach := reachFrom(mp, roots)
	for _, n := range reach.order {
		checkAllocFree(mp, n, reach)
	}
}

// checkAllocFree scans one reachable function body for allocation sites.
func checkAllocFree(mp *ModulePass, n *FuncNode, reach *reachResult) {
	info := n.Pkg.Info
	scratch := scratchSlices(n)
	suffix := " [hot path: " + reach.path(n) + "]"
	report := func(pos token.Pos, format string, args ...interface{}) {
		mp.Reportf(pos, format+"%s", append(args, suffix)...)
	}
	sig, _ := n.Obj.Type().(*types.Signature)
	var walk func(node ast.Node, sig *types.Signature)
	walk = func(node ast.Node, sig *types.Signature) {
		ast.Inspect(node, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				if capturesVariables(info, x) {
					report(x.Pos(), "closure captures variables and allocates on the hot path")
				}
				litSig, _ := info.TypeOf(x).(*types.Signature)
				walk(x.Body, litSig)
				return false
			case *ast.GoStmt:
				report(x.Pos(), "go statement allocates a goroutine on the hot path")
			case *ast.CallExpr:
				checkCallAlloc(mp, info, scratch, x, report)
			case *ast.CompositeLit:
				switch info.TypeOf(x).Underlying().(type) {
				case *types.Slice:
					report(x.Pos(), "slice literal allocates on the hot path")
				case *types.Map:
					report(x.Pos(), "map literal allocates on the hot path")
				}
			case *ast.UnaryExpr:
				if x.Op == token.AND {
					if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
						report(x.Pos(), "&composite literal escapes to the heap on the hot path")
					}
				}
			case *ast.BinaryExpr:
				if x.Op == token.ADD && isStringType(info.TypeOf(x)) {
					report(x.Pos(), "string concatenation allocates on the hot path")
				}
			case *ast.AssignStmt:
				if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringType(info.TypeOf(x.Lhs[0])) {
					report(x.Pos(), "string += allocates on the hot path")
				}
				if x.Tok == token.ASSIGN {
					for i := range x.Lhs {
						if i < len(x.Rhs) && len(x.Lhs) == len(x.Rhs) && boxes(info, info.TypeOf(x.Lhs[i]), x.Rhs[i]) {
							report(x.Rhs[i].Pos(), "assignment boxes a %s into an interface on the hot path", info.TypeOf(x.Rhs[i]))
						}
					}
				}
			case *ast.ValueSpec:
				for i, name := range x.Names {
					if i < len(x.Values) {
						if obj := info.ObjectOf(name); obj != nil && boxes(info, obj.Type(), x.Values[i]) {
							report(x.Values[i].Pos(), "declaration boxes a %s into an interface on the hot path", info.TypeOf(x.Values[i]))
						}
					}
				}
			case *ast.ReturnStmt:
				if sig != nil && sig.Results().Len() == len(x.Results) {
					for i, res := range x.Results {
						if boxes(info, sig.Results().At(i).Type(), res) {
							report(res.Pos(), "return boxes a %s into an interface on the hot path", info.TypeOf(res))
						}
					}
				}
			}
			return true
		})
	}
	walk(n.Decl.Body, sig)
}

// checkCallAlloc handles allocation through call syntax: builtins
// (make/new/append), type conversions, fmt calls, and implicit interface
// boxing of arguments.
func checkCallAlloc(mp *ModulePass, info *types.Info, scratch map[*types.Var]bool, call *ast.CallExpr, report func(token.Pos, string, ...interface{})) {
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make allocates on the hot path")
			case "new":
				report(call.Pos(), "new allocates on the hot path")
			case "append":
				if len(call.Args) > 0 && !scratchExpr(info, scratch, call.Args[0]) {
					report(call.Pos(), "append to a non-scratch slice may grow the heap on the hot path (reuse a preallocated buffer)")
				}
			}
			return
		}
	}
	tvFun := info.Types[fun]
	if tvFun.IsType() {
		checkConversionAlloc(info, call, tvFun.Type, report)
		return
	}
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := info.ObjectOf(id).(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				report(call.Pos(), "fmt.%s formats and allocates on the hot path", sel.Sel.Name)
				return // boxing its variadic args is implied; one finding per line suffices
			}
		}
	}
	sig, ok := tvFun.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // xs... passes the slice through, no per-element boxing
			}
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if boxes(info, pt, arg) {
			report(arg.Pos(), "argument boxes a %s into interface parameter on the hot path", info.TypeOf(arg))
		}
	}
}

// checkConversionAlloc flags conversions that copy or box.
func checkConversionAlloc(info *types.Info, call *ast.CallExpr, dst types.Type, report func(token.Pos, string, ...interface{})) {
	if len(call.Args) != 1 {
		return
	}
	src := info.TypeOf(call.Args[0])
	if src == nil || dst == nil {
		return
	}
	switch {
	case types.IsInterface(dst) && !types.IsInterface(src):
		if boxes(info, dst, call.Args[0]) {
			report(call.Pos(), "conversion boxes a %s into an interface on the hot path", src)
		}
	case isStringType(dst) && isByteOrRuneSlice(src):
		report(call.Pos(), "[]byte/[]rune -> string conversion copies on the hot path")
	case isByteOrRuneSlice(dst) && isStringType(src):
		report(call.Pos(), "string -> []byte/[]rune conversion copies on the hot path")
	}
}

// boxes reports whether assigning src to an interface-typed destination
// heap-allocates: interface and nil sources don't box, and pointer-shaped
// values (pointers, channels, maps, funcs, unsafe pointers) fit the
// interface word without allocating.
func boxes(info *types.Info, dst types.Type, src ast.Expr) bool {
	if dst == nil || !types.IsInterface(dst) {
		return false
	}
	tv, ok := info.Types[src]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	if types.IsInterface(tv.Type) {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if tv.Type.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// capturesVariables reports whether a function literal references
// variables declared outside it (other than package-level state): such
// closures allocate their environment. Non-capturing literals compile to
// static function values and are free.
func capturesVariables(info *types.Info, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit, func(x ast.Node) bool {
		if captures {
			return false
		}
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		scope := v.Parent()
		if scope == nil {
			return true
		}
		// Package-level variables live in a package scope whose parent is
		// the universe; anything deeper is function-local.
		if scope.Parent() == types.Universe {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captures = true
		}
		return true
	})
	return captures
}

// scratchSlices classifies the function's slice-typed variables by
// provenance: parameters, the receiver, and locals derived from them (or
// from struct fields) by slicing and indexing are "scratch" — storage the
// caller or the long-lived state owns and preallocates. Appending to
// scratch is the repository's buffer-reuse idiom; appending to anything
// else is a fresh heap slice.
func scratchSlices(n *FuncNode) map[*types.Var]bool {
	info := n.Pkg.Info
	scratch := map[*types.Var]bool{}
	tainted := map[*types.Var]bool{}
	if sig, ok := n.Obj.Type().(*types.Signature); ok {
		if recv := sig.Recv(); recv != nil {
			scratch[recv] = true
		}
		for i := 0; i < sig.Params().Len(); i++ {
			scratch[sig.Params().At(i)] = true
		}
	}
	// Propagate through simple assignments; two passes handle forward
	// chains, and any non-scratch assignment permanently taints the var.
	for pass := 0; pass < 2; pass++ {
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			stmt, ok := x.(*ast.AssignStmt)
			if !ok || len(stmt.Lhs) != len(stmt.Rhs) {
				return true
			}
			for i, lhs := range stmt.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := info.ObjectOf(id).(*types.Var)
				if !ok {
					continue
				}
				if scratchRHS(info, scratch, stmt.Rhs[i], v) {
					if !tainted[v] {
						scratch[v] = true
					}
				} else {
					tainted[v] = true
					delete(scratch, v)
				}
			}
			return true
		})
	}
	return scratch
}

// scratchRHS decides whether an assignment RHS preserves scratchness.
// self permits the x = append(x, ...) / x = x[:0] self-reference idiom.
func scratchRHS(info *types.Info, scratch map[*types.Var]bool, e ast.Expr, self *types.Var) bool {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		// x = append(x, ...) keeps x's provenance.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 0 {
				return scratchExpr(info, scratch, call.Args[0])
			}
		}
		return false
	}
	return scratchExpr(info, scratch, e)
}

// scratchExpr reports whether an expression denotes scratch storage.
func scratchExpr(info *types.Info, scratch map[*types.Var]bool, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, ok := info.ObjectOf(e).(*types.Var)
		return ok && scratch[v]
	case *ast.SliceExpr:
		return scratchExpr(info, scratch, e.X)
	case *ast.IndexExpr:
		return scratchExpr(info, scratch, e.X)
	case *ast.SelectorExpr:
		// A struct-field slice is long-lived state its owner preallocates.
		if s, ok := info.Selections[e]; ok && s.Kind() == types.FieldVal {
			return true
		}
		return false
	}
	return false
}
