// Package lint is a stdlib-only static-analysis framework enforcing the
// repository's model invariants: the paper's lower-bound reductions
// (Theorems 6-7) are sound only for public-coin CONGEST executions, so
// protocol code must draw randomness from internal/rng, encode messages
// through internal/bitio, and never let nondeterminism (wall clocks,
// math/rand, map iteration order) leak into simulation results.
//
// The framework deliberately uses only go/parser, go/ast, and go/types —
// no golang.org/x/tools dependency — so the module stays dependency-free.
// Analyzers are registered in DefaultAnalyzers and run by cmd/dynlint as
// well as by this package's own table-driven tests over testdata corpora.
//
// Any finding can be suppressed by a comment
//
//	//lint:allow <rule>[,<rule>...] <reason>
//
// placed either on the flagged line or on the line directly above it.
// The first field is one rule name or a comma-separated list (for lines
// that several strict rules flag at once); the reason is free text but
// should name the invariant argument (e.g. "callers sort; order
// documented as unspecified").
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders a finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Message)
}

// Analyzer is one named rule. Run inspects a loaded package through the
// Pass and reports findings; Scope decides which import paths the driver
// applies the rule to (tests bypass Scope and run analyzers directly).
type Analyzer struct {
	Name  string
	Doc   string
	Scope func(importPath string) bool
	Run   func(*Pass)
}

// Pass hands an analyzer one loaded package plus a reporting sink.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer *Analyzer
	allowed  map[string]map[int]bool // filename -> line -> allowed for this rule
	findings *[]Finding
}

// Reportf records a finding at pos unless an allow comment suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if p.allowed[position.Filename][position.Line] {
		return
	}
	*p.findings = append(*p.findings, Finding{
		Pos:     position,
		Rule:    p.analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf is a nil-safe shorthand for the package's type information.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// ObjectOf resolves an identifier to its object (definition or use).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	if o := p.Info.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// Run applies one analyzer to a loaded package and returns its findings,
// already sorted by position.
func Run(a *Analyzer, pkg *Package) []Finding {
	var findings []Finding
	pass := &Pass{
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		analyzer: a,
		allowed:  allowedLines(pkg.Fset, pkg.Files, a.Name),
		findings: &findings,
	}
	a.Run(pass)
	sortFindings(findings)
	return findings
}

// RunAll applies every analyzer whose Scope accepts the package's import
// path.
func RunAll(analyzers []*Analyzer, pkg *Package) []Finding {
	var findings []Finding
	for _, a := range analyzers {
		if a.Scope != nil && !a.Scope(pkg.Path) {
			continue
		}
		findings = append(findings, Run(a, pkg)...)
	}
	sortFindings(findings)
	return findings
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i].Pos, fs[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}

// allowedLines scans a package's comments for //lint:allow directives for
// one rule and returns the per-file set of suppressed lines: the comment's
// own line and the line directly below it (for standalone comments).
func allowedLines(fset *token.FileSet, files []*ast.File, rule string) map[string]map[int]bool {
	out := map[string]map[int]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:allow") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "lint:allow"))
				if len(fields) == 0 {
					continue
				}
				named := false
				for _, name := range strings.Split(fields[0], ",") {
					if name == rule {
						named = true
					}
				}
				if !named {
					continue
				}
				pos := fset.Position(c.Pos())
				m := out[pos.Filename]
				if m == nil {
					m = map[int]bool{}
					out[pos.Filename] = m
				}
				m[pos.Line] = true
				m[pos.Line+1] = true
			}
		}
	}
	return out
}

// DefaultAnalyzers returns the full rule set in a stable order.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		Determinism,
		MapOrder,
		ObsDeterminism,
		FaultsDeterminism,
		ServeDeterminism,
		CongestSend,
		PanicFree,
		PrintClean,
	}
}

// underAny reports whether the import path has any of the given
// slash-separated suff-trees as a segment-aligned infix: the rule scopes
// are written against "internal/..." so they work for any module path.
func underAny(path string, trees ...string) bool {
	for _, t := range trees {
		if strings.HasSuffix(path, "/"+t) || strings.Contains(path, "/"+t+"/") || path == t || strings.HasPrefix(path, t+"/") {
			return true
		}
	}
	return false
}

// pkgIdent resolves a selector's qualifier to the import path of the
// package it names, or "" when the qualifier is not a package name.
func (p *Pass) pkgIdent(e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := p.ObjectOf(id).(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}
