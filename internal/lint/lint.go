// Package lint is a stdlib-only static-analysis framework enforcing the
// repository's model invariants: the paper's lower-bound reductions
// (Theorems 6-7) are sound only for public-coin CONGEST executions, so
// protocol code must draw randomness from internal/rng, encode messages
// through internal/bitio, and never let nondeterminism (wall clocks,
// math/rand, map iteration order) leak into simulation results.
//
// The framework deliberately uses only go/parser, go/ast, and go/types —
// no golang.org/x/tools dependency — so the module stays dependency-free.
// Two kinds of rules exist: per-package Analyzers (registered in
// DefaultAnalyzers) inspect one package at a time, and ModuleAnalyzers
// (registered in DefaultModuleAnalyzers) run over a whole-module
// call graph built by LoadModule/RunModule — see callgraph.go,
// hotpathalloc.go, and puritytaint.go. Both kinds are run by cmd/dynlint
// as well as by this package's own table-driven tests over testdata
// corpora.
//
// Any finding can be suppressed by a comment
//
//	//lint:allow <rule>[,<rule>...] <reason>
//
// placed either on the flagged line or, as a standalone comment line, on
// the line directly above it. A trailing allow (sharing its line with
// code) suppresses only its own line. The first field is one rule name or
// a comma-separated list (for lines that several strict rules flag at
// once); the reason is free text but should name the invariant argument
// (e.g. "callers sort; order documented as unspecified"). For the
// interprocedural rules, an allow on a call-site line additionally prunes
// the call-graph edges leaving that line, so one escape both silences the
// line and stops reachability through it. The staleallow check reports
// directives that end up suppressing nothing.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders a finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Message)
}

// Analyzer is one named per-package rule. Run inspects a loaded package
// through the Pass and reports findings; Scope decides which import paths
// the driver applies the rule to (tests bypass Scope and run analyzers
// directly).
type Analyzer struct {
	Name  string
	Doc   string
	Scope func(importPath string) bool
	Run   func(*Pass)
}

// Pass hands an analyzer one loaded package plus a reporting sink.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer *Analyzer
	allows   *allowIndex
	findings *[]Finding
}

// Reportf records a finding at pos unless an allow comment suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if d := p.allows.find(p.analyzer.Name, position.Filename, position.Line); d != nil {
		d.used = true
		return
	}
	*p.findings = append(*p.findings, Finding{
		Pos:     position,
		Rule:    p.analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf is a nil-safe shorthand for the package's type information.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// ObjectOf resolves an identifier to its object (definition or use).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	if o := p.Info.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// Run applies one analyzer to a loaded package and returns its findings,
// already sorted by position.
func Run(a *Analyzer, pkg *Package) []Finding {
	return runWith(a, pkg, buildAllowIndex(pkg.Fset, pkg.Files))
}

// runWith is Run with a caller-supplied allow index, so module-wide runs
// can share one index (and its usage tracking) across all analyzers.
func runWith(a *Analyzer, pkg *Package, allows *allowIndex) []Finding {
	var findings []Finding
	pass := &Pass{
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		analyzer: a,
		allows:   allows,
		findings: &findings,
	}
	a.Run(pass)
	sortFindings(findings)
	return findings
}

// RunAll applies every analyzer whose Scope accepts the package's import
// path.
func RunAll(analyzers []*Analyzer, pkg *Package) []Finding {
	allows := buildAllowIndex(pkg.Fset, pkg.Files)
	var findings []Finding
	for _, a := range analyzers {
		if a.Scope != nil && !a.Scope(pkg.Path) {
			continue
		}
		findings = append(findings, runWith(a, pkg, allows)...)
	}
	sortFindings(findings)
	return findings
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i].Pos, fs[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return fs[i].Rule < fs[j].Rule
	})
}

// allowDirective is one parsed //lint:allow comment. used flips when the
// directive suppresses a finding or prunes a call-graph edge; staleallow
// reports directives that never fire.
type allowDirective struct {
	Rules  []string
	Reason string
	File   string
	Line   int
	// Standalone marks a comment alone on its source line; only these
	// extend their suppression to the line directly below. A trailing
	// allow covers exactly its own line.
	Standalone bool
	Pos        token.Pos

	used bool
}

// allowIndex resolves (rule, file, line) to the directive suppressing it.
type allowIndex struct {
	directives []*allowDirective
	byRule     map[string]map[string]map[int]*allowDirective
}

// buildAllowIndex scans the files' comments for //lint:allow directives.
// Standalone-ness is decided from the source text (the line prefix before
// the comment must be blank); unreadable files fall back to standalone,
// the historic, broader behavior.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) *allowIndex {
	idx := &allowIndex{byRule: map[string]map[string]map[int]*allowDirective{}}
	lineCache := map[string][]string{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "lint:allow") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "lint:allow"))
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				d := &allowDirective{
					Rules:      strings.Split(fields[0], ","),
					Reason:     strings.Join(fields[1:], " "),
					File:       pos.Filename,
					Line:       pos.Line,
					Standalone: standaloneComment(lineCache, pos),
					Pos:        c.Pos(),
				}
				idx.directives = append(idx.directives, d)
				for _, rule := range d.Rules {
					idx.put(rule, d.File, d.Line, d)
					if d.Standalone {
						idx.put(rule, d.File, d.Line+1, d)
					}
				}
			}
		}
	}
	return idx
}

func (idx *allowIndex) put(rule, file string, line int, d *allowDirective) {
	byFile := idx.byRule[rule]
	if byFile == nil {
		byFile = map[string]map[int]*allowDirective{}
		idx.byRule[rule] = byFile
	}
	byLine := byFile[file]
	if byLine == nil {
		byLine = map[int]*allowDirective{}
		byFile[file] = byLine
	}
	if _, taken := byLine[line]; !taken {
		byLine[line] = d
	}
}

// find returns the directive suppressing rule at file:line, or nil.
func (idx *allowIndex) find(rule, file string, line int) *allowDirective {
	if idx == nil {
		return nil
	}
	return idx.byRule[rule][file][line]
}

// standaloneComment reports whether the comment at pos is alone on its
// source line (preceded by whitespace only).
func standaloneComment(cache map[string][]string, pos token.Position) bool {
	lines, ok := cache[pos.Filename]
	if !ok {
		if data, err := os.ReadFile(pos.Filename); err == nil {
			lines = strings.Split(string(data), "\n")
		}
		cache[pos.Filename] = lines
	}
	if lines == nil || pos.Line-1 >= len(lines) {
		return true
	}
	prefix := lines[pos.Line-1]
	if pos.Column-1 <= len(prefix) {
		prefix = prefix[:pos.Column-1]
	}
	return strings.TrimSpace(prefix) == ""
}

// DefaultAnalyzers returns the per-package rule set in a stable order.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		Determinism,
		MapOrder,
		ObsDeterminism,
		FaultsDeterminism,
		ServeDeterminism,
		WireDeterminism,
		SearchDeterminism,
		CongestSend,
		PanicFree,
		PrintClean,
	}
}

// underAny reports whether the import path has any of the given
// slash-separated suff-trees as a segment-aligned infix: the rule scopes
// are written against "internal/..." so they work for any module path.
func underAny(path string, trees ...string) bool {
	for _, t := range trees {
		if strings.HasSuffix(path, "/"+t) || strings.Contains(path, "/"+t+"/") || path == t || strings.HasPrefix(path, t+"/") {
			return true
		}
	}
	return false
}

// pkgIdent resolves a selector's qualifier to the import path of the
// package it names, or "" when the qualifier is not a package name.
func (p *Pass) pkgIdent(e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := p.ObjectOf(id).(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}
