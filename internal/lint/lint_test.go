package lint

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
)

// sharedLoader memoizes one loader (and with it the type-checked stdlib)
// across all tests in the package.
var sharedLoader = sync.OnceValues(func() (*Loader, error) {
	return NewLoader(".")
})

// loadCorpus loads one testdata package through the real loader.
func loadCorpus(t *testing.T, name string) *Package {
	t.Helper()
	loader, err := sharedLoader()
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.Load(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("Load(%s): %v", name, err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("corpus %s has type errors (fixtures must compile): %v", name, pkg.TypeErrors)
	}
	return pkg
}

// wantLines extracts the `// want:<rule>` annotations of a corpus as a
// sorted list of file:line keys.
func wantLines(pkg *Package, rule string) []string {
	var out []string
	marker := "want:" + rule
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if text != marker {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				out = append(out, fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line))
			}
		}
	}
	sort.Strings(out)
	return out
}

// gotLines renders findings as deduplicated sorted file:line keys.
func gotLines(fs []Finding) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range fs {
		key := fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line)
		if !seen[key] {
			seen[key] = true
			out = append(out, key)
		}
	}
	sort.Strings(out)
	return out
}

// TestAnalyzers is the table-driven corpus check: for every rule, the
// analyzer must flag exactly the `// want:<rule>` lines of its corpus —
// bad.go lines are caught, good.go stays silent.
func TestAnalyzers(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		corpus   string
	}{
		{Determinism, "determinism"},
		{MapOrder, "maporder"},
		{ObsDeterminism, "obsdeterminism"},
		{FaultsDeterminism, "faultsdeterminism"},
		{ServeDeterminism, "servedeterminism"},
		{WireDeterminism, "wiredeterminism"},
		{SearchDeterminism, "searchdeterminism"},
		{CongestSend, "congestsend"},
		{PanicFree, "panicfree"},
		{PrintClean, "printclean"},
	}
	for _, c := range cases {
		t.Run(c.analyzer.Name, func(t *testing.T) {
			pkg := loadCorpus(t, c.corpus)
			got := gotLines(Run(c.analyzer, pkg))
			want := wantLines(pkg, c.analyzer.Name)
			if len(want) == 0 {
				t.Fatalf("corpus %s has no want:%s annotations", c.corpus, c.analyzer.Name)
			}
			if strings.Join(got, ",") != strings.Join(want, ",") {
				t.Errorf("findings mismatch\n got: %v\nwant: %v", got, want)
			}
		})
	}
}

// TestRuleExclusivity: each bad corpus is caught by exactly its intended
// analyzer — no rule fires on another rule's corpus (the corpora are
// minimal on purpose) — except for documented intended overlaps:
// obsdeterminism is deliberately a strict superset of maporder's
// iteration rule (any map range, not just order-leaking ones) and of
// determinism's wall-clock rule, so those pairs co-fire when Scope is
// bypassed, as this test does.
func TestRuleExclusivity(t *testing.T) {
	all := DefaultAnalyzers()
	corpora := []string{"determinism", "maporder", "obsdeterminism", "faultsdeterminism", "servedeterminism", "wiredeterminism", "searchdeterminism", "congestsend", "panicfree", "printclean"}
	intendedOverlap := map[string]map[string]bool{
		"determinism": {"obsdeterminism": true, "faultsdeterminism": true, "servedeterminism": true, "wiredeterminism": true, "searchdeterminism": true}, // all six ban the wall clock
		// Every maporder range is also a map range under the strict rules.
		"maporder":          {"obsdeterminism": true, "faultsdeterminism": true, "servedeterminism": true, "wiredeterminism": true, "searchdeterminism": true},
		"obsdeterminism":    {"determinism": true, "faultsdeterminism": true, "servedeterminism": true, "wiredeterminism": true, "searchdeterminism": true}, // time.Now + map ranges co-fire
		"faultsdeterminism": {"determinism": true, "obsdeterminism": true, "servedeterminism": true, "wiredeterminism": true, "searchdeterminism": true},    // same strict-superset pattern
		"servedeterminism":  {"determinism": true, "obsdeterminism": true, "faultsdeterminism": true, "wiredeterminism": true, "searchdeterminism": true},   // same strict-superset pattern
		"wiredeterminism":   {"determinism": true, "obsdeterminism": true, "faultsdeterminism": true, "servedeterminism": true, "searchdeterminism": true},  // same strict-superset pattern
		"searchdeterminism": {"determinism": true, "obsdeterminism": true, "faultsdeterminism": true, "servedeterminism": true, "wiredeterminism": true},    // same strict-superset pattern
	}
	for _, corpus := range corpora {
		pkg := loadCorpus(t, corpus)
		for _, a := range all {
			fs := Run(a, pkg)
			if a.Name == corpus {
				if len(fs) == 0 {
					t.Errorf("%s: intended analyzer found nothing", corpus)
				}
				continue
			}
			if intendedOverlap[corpus][a.Name] {
				continue
			}
			if len(fs) != 0 {
				t.Errorf("%s: unrelated analyzer %s fired: %v", corpus, a.Name, fs)
			}
		}
	}
}

// TestAllowSuppression: the allow corpus suppresses every violation
// except the one whose allow names the wrong rule.
func TestAllowSuppression(t *testing.T) {
	pkg := loadCorpus(t, "allow")
	for _, a := range DefaultAnalyzers() {
		got := gotLines(Run(a, pkg))
		want := wantLines(pkg, a.Name)
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("%s on allow corpus\n got: %v\nwant: %v", a.Name, got, want)
		}
	}
}

// TestScopes pins the package scoping policy of each rule.
func TestScopes(t *testing.T) {
	cases := []struct {
		rule string
		path string
		want bool
	}{
		{"determinism", "dyndiam/internal/dynet", true},
		{"determinism", "dyndiam/internal/protocols/flood", true},
		// The parallel sweep harness is in scope: per-cell seeds must come
		// from internal/rng for worker-count-independent tables.
		{"determinism", "dyndiam/internal/harness", true},
		{"determinism", "dyndiam/cmd/report", false},
		{"maporder", "dyndiam/internal/verify", true},
		{"maporder", "dyndiam/cmd/dynsim", false},
		// The strict obs rule covers only the observability layer; the
		// engine and protocols keep the leak-based maporder rule.
		{"obsdeterminism", "dyndiam/internal/obs", true},
		{"obsdeterminism", "dyndiam/internal/dynet", false},
		{"obsdeterminism", "dyndiam/internal/harness", false},
		// Fault plans are replay contracts: the general determinism rule
		// and the strict faults rule both cover internal/faults.
		{"determinism", "dyndiam/internal/faults", true},
		{"faultsdeterminism", "dyndiam/internal/faults", true},
		{"faultsdeterminism", "dyndiam/internal/dynet", false},
		{"faultsdeterminism", "dyndiam/internal/obs", false},
		// The serving layer gets the same strict treatment: content
		// addressing needs one byte string per (kind, params) forever.
		{"servedeterminism", "dyndiam/internal/serve", true},
		{"servedeterminism", "dyndiam/internal/obs", false},
		{"servedeterminism", "dyndiam/internal/faults", false},
		{"servedeterminism", "dyndiam/cmd/dynserve", false},
		// The wire layer carries the distributed-equivalence proof: map
		// iteration and unannotated clocks are banned on the frame path.
		{"wiredeterminism", "dyndiam/internal/wire", true},
		{"wiredeterminism", "dyndiam/internal/serve", false},
		{"wiredeterminism", "dyndiam/internal/dynet", false},
		{"wiredeterminism", "dyndiam/cmd/dynnode", false},
		// Adversary search results are triple reproducibility contracts
		// (worker-count goldens, checkpoint resume, corpus replay), so the
		// strict rule covers the search layer but not its CLI.
		{"searchdeterminism", "dyndiam/internal/advsearch", true},
		{"searchdeterminism", "dyndiam/internal/harness", false},
		{"searchdeterminism", "dyndiam/internal/serve", false},
		{"searchdeterminism", "dyndiam/cmd/advsearch", false},
		{"congestsend", "dyndiam/internal/protocols/leader", true},
		{"congestsend", "dyndiam/internal/dynet", false},
		{"panicfree", "dyndiam/internal/graph", true},
		{"panicfree", "dyndiam/examples/quickstart", false},
		{"printclean", "dyndiam/internal/export", true},
		{"printclean", "dyndiam/cmd/gaptable", false},
	}
	byName := map[string]*Analyzer{}
	for _, a := range DefaultAnalyzers() {
		byName[a.Name] = a
	}
	for _, c := range cases {
		a, ok := byName[c.rule]
		if !ok {
			t.Fatalf("unknown rule %s", c.rule)
		}
		if got := a.Scope(c.path); got != c.want {
			t.Errorf("%s.Scope(%s) = %v, want %v", c.rule, c.path, got, c.want)
		}
	}
}

// TestSelfClean: the lint package itself must satisfy every rule scoped
// to internal packages.
func TestSelfClean(t *testing.T) {
	loader, err := sharedLoader()
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.Load(".")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, f := range RunAll(DefaultAnalyzers(), pkg) {
		t.Errorf("lint package violates its own rules: %s", f)
	}
}

// TestPackageDirs: the walker skips testdata and finds this package.
func TestPackageDirs(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := PackageDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	sawLint := false
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("walker descended into testdata: %s", d)
		}
		if strings.HasSuffix(d, filepath.Join("internal", "lint")) {
			sawLint = true
		}
	}
	if !sawLint {
		t.Error("walker did not find internal/lint")
	}
}
