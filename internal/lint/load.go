package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and type-checked package directory.
// Only non-test files are loaded: the invariants the analyzers enforce are
// about simulation and protocol code, and test files legitimately poke at
// internals (hand-built payloads, chaos machines, map-literal tables).
type Package struct {
	Path  string // import path ("" if outside a module)
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checker diagnostics. Loading is lenient:
	// analyzers degrade gracefully when type information is partial, and
	// the build/vet CI steps own compile-error reporting.
	TypeErrors []error
}

// Loader parses and type-checks package directories of one module using
// only the standard library. Module-internal imports are resolved by
// type-checking their source; standard-library imports go through the
// go/importer source importer (GOROOT/src), so the loader needs neither
// network access nor pre-built export data.
type Loader struct {
	ModRoot string
	ModPath string

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*types.Package
}

// NewLoader returns a loader rooted at the module containing dir (or dir
// itself when it holds go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, err := ModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModRoot: root,
		ModPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*types.Package{},
	}, nil
}

// Fset exposes the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// ModuleRoot walks upward from dir to the directory holding go.mod.
func ModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod above %s", abs)
		}
		d = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// ImportPath maps a directory under the module root to its import path.
func (l *Loader) ImportPath(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", abs, l.ModRoot)
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// PackageDirs walks root and returns every directory containing non-test
// Go files, skipping testdata, hidden, and underscore-prefixed trees.
func PackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// Load parses and type-checks the package in dir.
func (l *Loader) Load(dir string) (*Package, error) {
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	path, err := l.ImportPath(dir)
	if err != nil {
		path = filepath.Base(dir) // outside a module: lint syntactically
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		},
	}
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, pkg.Info) // errors collected above
	pkg.Types = tpkg
	return pkg, nil
}

func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// loaderImporter adapts Loader to types.Importer. Module-internal paths
// are type-checked from source and memoized; everything else is delegated
// to the standard-library source importer. Failures yield an empty
// placeholder package so that type-checking of the importer's client can
// continue (lenient mode).
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		dir := filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")))
		files, err := l.parseDir(dir)
		if err != nil || len(files) == 0 {
			return li.placeholder(path), nil
		}
		conf := types.Config{Importer: li, Error: func(error) {}}
		pkg, _ := conf.Check(path, l.fset, files, nil)
		if pkg == nil {
			return li.placeholder(path), nil
		}
		l.pkgs[path] = pkg
		return pkg, nil
	}
	pkg, err := l.std.Import(path)
	if err != nil || pkg == nil {
		return li.placeholder(path), nil
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// placeholder returns an empty complete package so type-checking proceeds
// past an unresolvable import.
func (li *loaderImporter) placeholder(path string) *types.Package {
	l := (*Loader)(li)
	pkg := types.NewPackage(path, filepath.Base(path))
	pkg.MarkComplete()
	l.pkgs[path] = pkg
	return pkg
}
