package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, parsed, and type-checked package directory.
// Only non-test files are loaded: the invariants the analyzers enforce are
// about simulation and protocol code, and test files legitimately poke at
// internals (hand-built payloads, chaos machines, map-literal tables).
// Files excluded by build constraints (filename GOOS/GOARCH suffixes and
// //go:build lines) for the loader's own platform are skipped, so a
// package with per-OS variants type-checks without false redeclarations.
type Package struct {
	Path  string // import path ("" if outside a module)
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checker diagnostics. Loading is lenient:
	// analyzers degrade gracefully when type information is partial, and
	// the build/vet CI steps own compile-error reporting.
	TypeErrors []error
}

// Loader parses and type-checks package directories of one module using
// only the standard library. Module-internal imports are resolved by
// type-checking their source; standard-library imports go through the
// go/importer source importer (GOROOT/src), so the loader needs neither
// network access nor pre-built export data.
//
// Loads are memoized: the same directory is parsed and type-checked at
// most once, whether it is loaded explicitly or pulled in as a dependency
// of another package, and dependency loads produce full *Package values
// (with type info) usable by module-wide analysis. Parsing may run
// concurrently (LoadModule pre-parses in parallel); type-checking is
// intentionally single-goroutine — Load and LoadModule must not be called
// concurrently with each other.
type Loader struct {
	ModRoot string
	ModPath string

	fset *token.FileSet
	std  types.Importer

	mu     sync.Mutex             // guards parsed (the only concurrent map)
	parsed map[string][]*ast.File // abs dir -> build-tag-filtered non-test files

	full     map[string]*Package       // abs dir -> fully loaded package
	pkgs     map[string]*types.Package // import path -> type-checked package
	checking map[string]bool           // import paths mid-check (cycle guard)
	checks   map[string]int            // import path -> type-check invocations
}

// NewLoader returns a loader rooted at the module containing dir (or dir
// itself when it holds go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, err := ModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModRoot:  root,
		ModPath:  modPath,
		fset:     fset,
		std:      importer.ForCompiler(fset, "source", nil),
		parsed:   map[string][]*ast.File{},
		full:     map[string]*Package{},
		pkgs:     map[string]*types.Package{},
		checking: map[string]bool{},
		checks:   map[string]int{},
	}, nil
}

// Fset exposes the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// CheckCounts reports how many times each module import path has been
// type-checked by this loader. The memoizing design guarantees every
// count is exactly 1, however packages are reached (explicit Load,
// LoadModule, or as a dependency); the golden loader tests pin this.
func (l *Loader) CheckCounts() map[string]int {
	out := make(map[string]int, len(l.checks))
	for k, v := range l.checks {
		out[k] = v
	}
	return out
}

// Loaded returns every package this loader has fully loaded — explicit
// loads and module-internal dependencies alike — sorted by import path
// (then directory, for out-of-module loads sharing a fallback path).
func (l *Loader) Loaded() []*Package {
	out := make([]*Package, 0, len(l.full))
	for _, p := range l.full {
		out = append(out, p) //lint:allow maporder sorted by import path below
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Path != out[j].Path {
			return out[i].Path < out[j].Path
		}
		return out[i].Dir < out[j].Dir
	})
	return out
}

// ModuleRoot walks upward from dir to the directory holding go.mod.
func ModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod above %s", abs)
		}
		d = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// ImportPath maps a directory under the module root to its import path.
func (l *Loader) ImportPath(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", abs, l.ModRoot)
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// PackageDirs walks root and returns every directory containing non-test
// Go files, skipping testdata, hidden, and underscore-prefixed trees.
func PackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// Load parses and type-checks the package in dir. Loads are memoized:
// calling Load twice on one directory returns the identical *Package, and
// a package already loaded as a dependency is reused, not re-checked.
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.loadDir(abs)
}

// LoadModule loads every package directory in dirs — parsing in parallel,
// then type-checking each package (and every module-internal dependency
// it pulls in) exactly once through the memoizing loader — and returns
// the whole-module view RunModule analyzes.
func (l *Loader) LoadModule(dirs []string) (*Module, error) {
	sorted := make([]string, 0, len(dirs))
	seen := map[string]bool{}
	for _, d := range dirs {
		abs, err := filepath.Abs(d)
		if err != nil {
			return nil, err
		}
		if !seen[abs] {
			seen[abs] = true
			sorted = append(sorted, abs)
		}
	}
	sort.Strings(sorted)
	l.parseAhead(sorted)
	pkgs := make([]*Package, 0, len(sorted))
	for _, d := range sorted {
		pkg, err := l.loadDir(d)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", d, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return &Module{Loader: l, Pkgs: pkgs}, nil
}

// parseAhead warms the parse cache for dirs across GOMAXPROCS goroutines.
// Parse errors are swallowed here; the sequential load path re-parses the
// failing directory and reports them.
func (l *Loader) parseAhead(dirs []string) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(dirs) {
		workers = len(dirs)
	}
	if workers <= 1 {
		return
	}
	ch := make(chan string)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for d := range ch {
				// Cache warm-up only: errors resurface on the sequential path.
				_, _ = l.parseDir(d)
			}
		}()
	}
	for _, d := range dirs {
		ch <- d
	}
	close(ch)
	wg.Wait()
}

// loadDir is the memoized load body; dir must be absolute.
func (l *Loader) loadDir(dir string) (*Package, error) {
	if p, ok := l.full[dir]; ok {
		return p, nil
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	path, err := l.ImportPath(dir)
	inModule := err == nil
	if err != nil {
		path = filepath.Base(dir) // outside a module: lint syntactically
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		},
	}
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	l.checking[path] = true
	l.checks[path]++
	tpkg, _ := conf.Check(path, l.fset, files, pkg.Info) // errors collected above
	delete(l.checking, path)
	pkg.Types = tpkg
	l.full[dir] = pkg
	if inModule && tpkg != nil {
		l.pkgs[path] = tpkg
	}
	return pkg, nil
}

// parseDir parses dir's non-test Go files, applying build constraints for
// the loader's own GOOS/GOARCH. Results are cached, and the cache is the
// only loader state shared with parseAhead's parallel workers.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	files, ok := l.parsed[abs]
	l.mu.Unlock()
	if ok {
		return files, nil
	}
	ents, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	files = nil
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		if !fileTargetOK(name) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if !buildTagOK(f) {
			continue
		}
		files = append(files, f)
	}
	l.mu.Lock()
	if cached, ok := l.parsed[abs]; ok {
		files = cached // a parallel worker won the race; keep one canonical slice
	} else {
		l.parsed[abs] = files
	}
	l.mu.Unlock()
	return files, nil
}

// knownOS and knownArch are the GOOS/GOARCH values recognized in filename
// build constraints (name_GOOS.go, name_GOARCH.go, name_GOOS_GOARCH.go).
var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// unixOS mirrors the platforms matched by the "unix" build tag.
var unixOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "linux": true,
	"netbsd": true, "openbsd": true, "solaris": true,
}

// fileTargetOK applies go/build's filename constraint rule: a file named
// name_GOOS.go, name_GOARCH.go, or name_GOOS_GOARCH.go (with a nonempty
// name) only builds on that target.
func fileTargetOK(name string) bool {
	base := strings.TrimSuffix(name, ".go")
	parts := strings.Split(base, "_")
	if len(parts) >= 2 && parts[0] != "" {
		last := parts[len(parts)-1]
		if knownArch[last] {
			if last != runtime.GOARCH {
				return false
			}
			parts = parts[:len(parts)-1]
		}
	}
	if len(parts) >= 2 && parts[0] != "" {
		last := parts[len(parts)-1]
		if knownOS[last] && last != runtime.GOOS {
			return false
		}
	}
	return true
}

// buildTagOK evaluates the file's //go:build line (if any, before the
// package clause) against the loader's own platform: GOOS, GOARCH, "gc",
// "unix", and any go1.N language-version tag are satisfied; everything
// else ("ignore", custom tags) excludes the file.
func buildTagOK(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return true
			}
			return expr.Eval(func(tag string) bool {
				switch {
				case tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc":
					return true
				case tag == "unix":
					return unixOS[runtime.GOOS]
				case strings.HasPrefix(tag, "go1"):
					return true
				}
				return false
			})
		}
	}
	return true
}

// loaderImporter adapts Loader to types.Importer. Module-internal paths
// are loaded through the loader's own full, memoized load (so dependency
// packages carry complete type info for module-wide analysis); everything
// else is delegated to the standard-library source importer. Failures
// yield an empty placeholder package so that type-checking of the
// importer's client can continue (lenient mode).
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.checking[path] {
		// Import cycle: hand back an empty package and let the checker
		// report the cycle as a (lenient) type error.
		pkg := types.NewPackage(path, filepath.Base(path))
		pkg.MarkComplete()
		return pkg, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		dir := filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")))
		pkg, err := l.loadDir(dir)
		if err != nil || pkg.Types == nil {
			return li.placeholder(path), nil
		}
		return pkg.Types, nil
	}
	pkg, err := l.std.Import(path)
	if err != nil || pkg == nil {
		return li.placeholder(path), nil
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// placeholder returns an empty complete package so type-checking proceeds
// past an unresolvable import.
func (li *loaderImporter) placeholder(path string) *types.Package {
	l := (*Loader)(li)
	pkg := types.NewPackage(path, filepath.Base(path))
	pkg.MarkComplete()
	l.pkgs[path] = pkg
	return pkg
}
