package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestBuildConstraintFiltering: the loader must drop files excluded by
// filename suffixes (_plan9.go) and //go:build lines, or the buildtag
// fixture redeclares its symbols and fails to type-check.
func TestBuildConstraintFiltering(t *testing.T) {
	pkg := loadCorpus(t, "buildtag") // loadCorpus fails on any type error
	if len(pkg.Files) != 1 {
		var names []string
		for _, f := range pkg.Files {
			names = append(names, filepath.Base(pkg.Fset.Position(f.Pos()).Filename))
		}
		t.Errorf("got %d files (%v), want only buildtag.go", len(pkg.Files), names)
	}
}

// TestLenientTypeErrors: a package with a type error still loads, keeps
// the diagnostics, and carries partial type info usable by analyzers.
func TestLenientTypeErrors(t *testing.T) {
	loader, err := sharedLoader()
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.Load(filepath.Join("testdata", "src", "typeerr"))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkg.TypeErrors) == 0 {
		t.Error("expected type errors from the typeerr fixture")
	}
	found := false
	for _, e := range pkg.TypeErrors {
		if strings.Contains(e.Error(), "undefinedIdentifier") {
			found = true
		}
	}
	if !found {
		t.Errorf("type errors do not mention undefinedIdentifier: %v", pkg.TypeErrors)
	}
	if pkg.Types == nil {
		t.Fatal("lenient load must still produce a types.Package")
	}
	// Analyzers must not panic on partial info.
	for _, a := range DefaultAnalyzers() {
		_ = Run(a, pkg)
	}
}

// TestLoadMemoized: loading the same directory twice returns the
// identical *Package, not a re-checked copy.
func TestLoadMemoized(t *testing.T) {
	loader, err := sharedLoader()
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	dir := filepath.Join("testdata", "src", "allow")
	p1, err := loader.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := loader.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("Load is not memoized: two loads of one dir returned distinct packages")
	}
}

// TestLoadModuleChecksOnce is the counting-importer golden test: after
// LoadModule over every corpus-module directory, each package — whether
// reached as an explicit target or as a dependency of hot/machine — has
// been type-checked exactly once.
func TestLoadModuleChecksOnce(t *testing.T) {
	mod := corpusModule(t)
	counts := mod.Loader.CheckCounts()
	wantPaths := []string{
		"corpusmod/hot", "corpusmod/hotmid", "corpusmod/hotleaf",
		"corpusmod/machine", "corpusmod/mhelp", "corpusmod/mclock",
	}
	for _, path := range wantPaths {
		if got := counts[path]; got != 1 {
			t.Errorf("%s type-checked %d times, want exactly 1", path, got)
		}
	}
	if len(counts) != len(wantPaths) {
		t.Errorf("loader checked %d packages (%v), want %d", len(counts), counts, len(wantPaths))
	}
	// All six are fully loaded with type info, dependencies included.
	if got := len(mod.All()); got != len(wantPaths) {
		t.Errorf("Loaded() returned %d packages, want %d", got, len(wantPaths))
	}
	for _, pkg := range mod.All() {
		if pkg.Info == nil || pkg.Types == nil {
			t.Errorf("package %s loaded without full type info", pkg.Path)
		}
	}
}

// TestFileTargetOK pins the filename-constraint rules.
func TestFileTargetOK(t *testing.T) {
	cases := []struct {
		name string
		want bool
	}{
		{"plain.go", true},
		{"x_plan9.go", false},
		{"x_windows_arm64.go", false},
		{"plan9.go", true}, // no prefix: not a constraint
	}
	for _, c := range cases {
		if got := fileTargetOK(c.name); got != c.want {
			t.Errorf("fileTargetOK(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}
