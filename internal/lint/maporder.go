package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `for range` loops over maps whose bodies leak the
// iteration order into observable results: appending to a slice that
// outlives the loop, returning from inside the loop, or formatting an
// error/string. Go randomizes map iteration order per execution, so any
// of these makes "which node is reported" or "which value is picked"
// vary run to run — which breaks the bit-identical re-simulation the
// reduction harness depends on and makes failures unreproducible.
//
// Order-independent writes (assigning to an element keyed by the loop
// variable, accumulating into a local declared inside the loop body) are
// not flagged. Intentionally order-free uses (e.g. collect-then-sort)
// carry a //lint:allow maporder comment naming the argument.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag map iteration whose order leaks into returns, errors, or slices " +
		"(nondeterministic iteration order must not reach results)",
	Scope: func(path string) bool { return underAny(path, "internal") },
	Run:   runMapOrder,
}

// orderSensitiveCalls format values into ordered output.
var orderSensitiveCalls = map[string]map[string]bool{
	"fmt":    {"Errorf": true, "Sprintf": true, "Sprint": true, "Sprintln": true},
	"errors": {"New": true},
}

func runMapOrder(p *Pass) {
	for _, f := range p.Files {
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if !p.isMapRange(rng) {
				return true
			}
			p.checkMapBody(file, rng)
			return true
		})
	}
}

// isMapRange reports whether the range statement iterates a map. When
// type information is unavailable the loop is not flagged (the rule
// never guesses).
func (p *Pass) isMapRange(rng *ast.RangeStmt) bool {
	t := p.TypeOf(rng.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func (p *Pass) checkMapBody(f *ast.File, rng *ast.RangeStmt) {
	body := rng.Body
	var walk func(n ast.Node, inFuncLit bool)
	walk = func(root ast.Node, inFuncLit bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				// A return inside a closure does not exit the loop, but
				// an append inside one still accumulates — recurse with
				// the return check disabled.
				walk(n.Body, true)
				return false
			case *ast.ReturnStmt:
				if !inFuncLit && len(n.Results) > 0 {
					p.Reportf(n.Pos(), "return inside map iteration: which element returns first depends on randomized map order")
				}
			case *ast.CallExpr:
				p.checkMapBodyCall(f, body, n)
			}
			return true
		})
	}
	walk(body, false)
}

func (p *Pass) checkMapBodyCall(f *ast.File, body *ast.BlockStmt, call *ast.CallExpr) {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		if fn.Name != "append" || len(call.Args) == 0 {
			return
		}
		if obj := p.ObjectOf(fn); obj != nil {
			if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
				return // shadowed append
			}
		}
		if !p.accumulatesAcrossIterations(call.Args[0], body) {
			return
		}
		p.Reportf(call.Pos(), "append inside map iteration builds a slice in randomized map order")
	case *ast.SelectorExpr:
		pkg := p.pkgIdentOrName(f, fn.X)
		if sels, ok := orderSensitiveCalls[pkgBase(pkg)]; ok && sels[fn.Sel.Name] {
			p.Reportf(call.Pos(), "%s.%s inside map iteration: message content depends on randomized map order", pkgBase(pkg), fn.Sel.Name)
		}
	}
}

// accumulatesAcrossIterations decides whether appending to dst can carry
// map-iteration order out of the loop: true for identifiers declared
// outside the loop body and for selector/index targets (fields and
// elements live across iterations); false for loop-local identifiers and
// for fresh values (literals, conversions like append([]byte(nil), ...),
// calls), which cannot accumulate.
func (p *Pass) accumulatesAcrossIterations(dst ast.Expr, body *ast.BlockStmt) bool {
	switch dst := dst.(type) {
	case *ast.Ident:
		obj := p.ObjectOf(dst)
		if obj == nil || obj.Pos() == token.NoPos {
			return true // unresolved: assume the worst
		}
		return obj.Pos() < body.Pos() || obj.Pos() > body.End()
	case *ast.SelectorExpr, *ast.IndexExpr:
		return true
	default:
		return false
	}
}

func pkgBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
