package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
)

// Module is a whole-module view: the packages explicitly selected for
// linting plus — through the shared memoizing Loader — every
// module-internal dependency they pulled in.
type Module struct {
	Loader *Loader
	// Pkgs are the selected (pattern-matched) packages, sorted by
	// directory; per-package analyzers run on exactly these.
	Pkgs []*Package
}

// All returns every module package the loader has fully loaded —
// selected packages and their module-internal dependencies — sorted.
// Module analyzers build the call graph over this set, so reachability
// does not stop at pattern boundaries.
func (m *Module) All() []*Package { return m.Loader.Loaded() }

// ModuleAnalyzer is one named whole-module rule: it sees every loaded
// package and the call graph at once, which is what makes the
// interprocedural rules (hotpathalloc, puritytaint) able to catch a
// violation introduced several calls deep across package boundaries.
type ModuleAnalyzer struct {
	Name string
	Doc  string
	Run  func(*ModulePass)
}

// ModulePass hands a module analyzer the loaded module, the shared call
// graph, and a reporting sink with allow-directive integration.
type ModulePass struct {
	Mod   *Module
	Graph *CallGraph

	analyzer *ModuleAnalyzer
	allows   *allowIndex
	findings *[]Finding
}

// Fset returns the module's shared file set.
func (mp *ModulePass) Fset() *token.FileSet { return mp.Mod.Loader.Fset() }

// Reportf records a finding at pos unless an allow comment suppresses it.
func (mp *ModulePass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := mp.Fset().Position(pos)
	if d := mp.allows.find(mp.analyzer.Name, position.Filename, position.Line); d != nil {
		d.used = true
		return
	}
	*mp.findings = append(*mp.findings, Finding{
		Pos:     position,
		Rule:    mp.analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// EdgeAllowed reports whether a //lint:allow <rule> on the call-site line
// suppresses traversal through it, marking the directive used. One allow
// therefore both silences findings on its line and prunes the
// reachability paths through it — the documented escape for interface
// over-approximation (e.g. the engine's Machine.Step dispatch, whose
// implementations are measured by their own rules instead).
func (mp *ModulePass) EdgeAllowed(site token.Pos) bool {
	position := mp.Fset().Position(site)
	if d := mp.allows.find(mp.analyzer.Name, position.Filename, position.Line); d != nil {
		d.used = true
		return true
	}
	return false
}

// DefaultModuleAnalyzers returns the whole-module rule set in a stable
// order.
func DefaultModuleAnalyzers() []*ModuleAnalyzer {
	return []*ModuleAnalyzer{
		HotPathAlloc,
		PurityTaint,
	}
}

// StaleAllowName is the rule name of the stale-directive check run by
// RunModule after all other analyzers.
const StaleAllowName = "staleallow"

// staleAllowDoc describes the check for rule listings.
const staleAllowDoc = "report //lint:allow directives that suppress no finding and prune no path " +
	"(and directives naming unknown rules), so escapes cannot rot silently"

// RuleInfo names one rule for listings and SARIF metadata.
type RuleInfo struct {
	Name string
	Doc  string
}

// AllRules enumerates the full rule set (per-package, module-wide, and
// staleallow) in a stable order.
func AllRules(analyzers []*Analyzer, modAnalyzers []*ModuleAnalyzer) []RuleInfo {
	var out []RuleInfo
	for _, a := range analyzers {
		out = append(out, RuleInfo{a.Name, a.Doc})
	}
	for _, ma := range modAnalyzers {
		out = append(out, RuleInfo{ma.Name, ma.Doc})
	}
	out = append(out, RuleInfo{StaleAllowName, staleAllowDoc})
	return out
}

// ModuleRunOptions tunes one RunModule invocation.
type ModuleRunOptions struct {
	// Rules restricts which rules run (nil or empty = all). The
	// staleallow check participates: it runs only when selected, and a
	// directive is reported stale only if every rule it names actually
	// ran, so subset runs never misreport another rule's escapes.
	Rules map[string]bool
}

// RunModule applies per-package analyzers to each selected package and
// module analyzers to the whole module (loading-wise: every package was
// type-checked exactly once by LoadModule), then reports stale allow
// directives. One allow index spans all loaded packages, so a suppression
// consulted by any analyzer — including edge pruning — counts as use.
func RunModule(mod *Module, analyzers []*Analyzer, modAnalyzers []*ModuleAnalyzer, opts ModuleRunOptions) []Finding {
	sel := func(name string) bool { return len(opts.Rules) == 0 || opts.Rules[name] }

	all := mod.All()
	fset := mod.Loader.Fset()
	idx := newModuleAllowIndex(fset, all)

	var findings []Finding
	ran := map[string]bool{}
	for _, a := range analyzers {
		if !sel(a.Name) {
			continue
		}
		ran[a.Name] = true
		for _, pkg := range mod.Pkgs {
			if a.Scope != nil && !a.Scope(pkg.Path) {
				continue
			}
			pass := &Pass{
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				analyzer: a,
				allows:   idx,
				findings: &findings,
			}
			a.Run(pass)
		}
	}

	var graph *CallGraph
	for _, ma := range modAnalyzers {
		if !sel(ma.Name) {
			continue
		}
		ran[ma.Name] = true
		if graph == nil {
			graph = BuildCallGraph(all)
		}
		mp := &ModulePass{
			Mod:      mod,
			Graph:    graph,
			analyzer: ma,
			allows:   idx,
			findings: &findings,
		}
		ma.Run(mp)
	}

	if sel(StaleAllowName) {
		known := map[string]bool{StaleAllowName: true}
		for _, r := range AllRules(analyzers, modAnalyzers) {
			known[r.Name] = true
		}
		modRules := map[string]bool{}
		for _, ma := range modAnalyzers {
			modRules[ma.Name] = true
		}
		findings = append(findings, staleAllows(mod, idx, ran, known, modRules)...)
	}

	sortFindings(findings)
	return findings
}

// newModuleAllowIndex builds one allow index over every loaded package's
// files, so directives anywhere in the module are honored (and tracked)
// no matter which analyzer or traversal consults them.
func newModuleAllowIndex(fset *token.FileSet, pkgs []*Package) *allowIndex {
	var files []*ast.File
	for _, pkg := range pkgs {
		files = append(files, pkg.Files...)
	}
	return buildAllowIndex(fset, files)
}

// staleAllows reports //lint:allow directives in the selected packages
// that fired for no finding and pruned no path. A directive is stale only
// when every rule it names ran in this invocation, and — for directives
// naming an interprocedural rule — only when the selection covers the
// whole module: a hotpathalloc allow deep in a leaf package may be used
// exclusively through a //lint:hotpath root in a package outside a
// partial selection, so partial runs cannot tell "stale" from "used
// elsewhere". Directives naming unknown rules are always reported (a
// typo leaves the line unprotected).
func staleAllows(mod *Module, idx *allowIndex, ran, known, modRules map[string]bool) []Finding {
	wholeModule := coversWholeModule(mod)
	selected := map[string]bool{}
	fset := mod.Loader.Fset()
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			selected[fset.Position(f.Pos()).Filename] = true
		}
	}
	var out []Finding
	report := func(d *allowDirective, format string, args ...interface{}) {
		if s := idx.find(StaleAllowName, d.File, d.Line); s != nil && s != d {
			s.used = true
			return
		}
		out = append(out, Finding{
			Pos:     fset.Position(d.Pos),
			Rule:    StaleAllowName,
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, d := range idx.directives {
		if !selected[d.File] {
			continue
		}
		unknown := ""
		allRan := true
		needsWholeModule := false
		for _, r := range d.Rules {
			if !known[r] {
				unknown = r
			}
			if !ran[r] {
				allRan = false
			}
			if modRules[r] {
				needsWholeModule = true
			}
		}
		if unknown != "" {
			report(d, "//lint:allow names unknown rule %q (typo leaves this line unprotected)", unknown)
			continue
		}
		if d.used || !allRan || (needsWholeModule && !wholeModule) {
			continue
		}
		report(d, "//lint:allow %s suppresses no finding and prunes no path: delete the stale escape (reason was %q)", strings.Join(d.Rules, ","), d.Reason)
	}
	return out
}

// coversWholeModule reports whether the selected packages span every
// package directory in the module (the same walk the driver uses to
// expand "./..."). Only then does the call graph contain every possible
// //lint:hotpath or Machine root, which is what judging an
// interprocedural allow as stale requires.
func coversWholeModule(mod *Module) bool {
	dirs, err := PackageDirs(mod.Loader.ModRoot)
	if err != nil {
		return false
	}
	have := map[string]bool{}
	for _, pkg := range mod.Pkgs {
		have[filepath.Clean(pkg.Dir)] = true
	}
	for _, d := range dirs {
		if !have[filepath.Clean(d)] {
			return false
		}
	}
	return true
}
