package lint

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
)

// loadCorpusModule loads the testdata/mod mini-module (its own go.mod,
// six packages with cross-package call chains) through a fresh loader.
// Allow-directive usage state is rebuilt inside every RunModule call, so
// one module can safely serve several test runs.
func loadCorpusModule() (*Module, error) {
	loader, err := NewLoader(filepath.Join("testdata", "mod"))
	if err != nil {
		return nil, err
	}
	dirs, err := PackageDirs(loader.ModRoot)
	if err != nil {
		return nil, err
	}
	mod, err := loader.LoadModule(dirs)
	if err != nil {
		return nil, err
	}
	for _, pkg := range mod.Pkgs {
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("corpus module package %s has type errors: %v", pkg.Path, pkg.TypeErrors)
		}
	}
	return mod, nil
}

// sharedCorpusModule memoizes one corpus module for the read-only tests.
var sharedCorpusModule = sync.OnceValues(loadCorpusModule)

// corpusModule fetches the shared corpus module or fails the test.
func corpusModule(t *testing.T) *Module {
	t.Helper()
	mod, err := sharedCorpusModule()
	if err != nil {
		t.Fatalf("loading corpus module: %v", err)
	}
	return mod
}

// modWantLines scans the module corpus for want:<rule> markers. Unlike
// the per-package helper, the marker may appear as any field of a
// comment, so a marker can ride inside an allow directive's reason when
// the expected finding is the directive itself (staleallow).
func modWantLines(mod *Module, rule string) []string {
	marker := "want:" + rule
	fset := mod.Loader.Fset()
	var out []string
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, field := range strings.Fields(c.Text) {
						if field == marker {
							pos := fset.Position(c.Pos())
							out = append(out, fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line))
						}
					}
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

// byRule filters findings down to one rule.
func byRule(fs []Finding, rule string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Rule == rule {
			out = append(out, f)
		}
	}
	return out
}

// TestModuleAnalyzers is the whole-module corpus check: hotpathalloc
// must flag exactly the allocations reachable from //lint:hotpath roots
// (including one two packages away and one behind interface dispatch,
// while the scratch-append reuse idiom stays clean), puritytaint exactly
// the sinks reachable from the structural Machine roots and //lint:pure
// roots, and staleallow exactly the directives that fired for nothing.
func TestModuleAnalyzers(t *testing.T) {
	mod := corpusModule(t)
	findings := RunModule(mod, DefaultAnalyzers(), DefaultModuleAnalyzers(), ModuleRunOptions{})
	for _, rule := range []string{"hotpathalloc", "puritytaint", StaleAllowName} {
		t.Run(rule, func(t *testing.T) {
			got := gotLines(byRule(findings, rule))
			want := modWantLines(mod, rule)
			if len(want) == 0 {
				t.Fatalf("corpus module has no want:%s markers", rule)
			}
			if strings.Join(got, ",") != strings.Join(want, ",") {
				t.Errorf("findings mismatch for %s\n got: %v\nwant: %v", rule, got, want)
			}
		})
	}
	// No per-package rule may fire: the corpus import paths are outside
	// every Scope.
	for _, f := range findings {
		switch f.Rule {
		case "hotpathalloc", "puritytaint", StaleAllowName:
		default:
			t.Errorf("per-package rule leaked into corpus module: %s", f)
		}
	}
}

// TestHotPathDiagnosticPath: interprocedural findings carry the root ->
// ... -> function call chain so a developer can see why a leaf is hot.
func TestHotPathDiagnosticPath(t *testing.T) {
	mod := corpusModule(t)
	findings := RunModule(mod, nil, DefaultModuleAnalyzers(), ModuleRunOptions{Rules: map[string]bool{"hotpathalloc": true}})
	found := false
	for _, f := range byRule(findings, "hotpathalloc") {
		if strings.Contains(f.Message, "hot.Run -> hotmid.Relay -> hotleaf.Grow") {
			found = true
		}
	}
	if !found {
		t.Errorf("no finding carries the hot.Run -> hotmid.Relay -> hotleaf.Grow chain; findings: %v", findings)
	}
}

// TestRunModuleRuleSubset: -rules style filtering runs only the selected
// rules, and staleallow never misjudges a directive whose rule did not
// run — but still reports unknown rule names unconditionally.
func TestRunModuleRuleSubset(t *testing.T) {
	mod := corpusModule(t)

	only := RunModule(mod, DefaultAnalyzers(), DefaultModuleAnalyzers(), ModuleRunOptions{Rules: map[string]bool{"hotpathalloc": true}})
	for _, f := range only {
		if f.Rule != "hotpathalloc" {
			t.Errorf("subset run leaked rule %s: %s", f.Rule, f)
		}
	}
	if len(only) == 0 {
		t.Error("hotpathalloc subset run found nothing")
	}

	stale := RunModule(mod, DefaultAnalyzers(), DefaultModuleAnalyzers(), ModuleRunOptions{Rules: map[string]bool{StaleAllowName: true}})
	if len(stale) != 1 {
		t.Fatalf("staleallow-only run: got %d findings, want exactly the unknown-rule directive: %v", len(stale), stale)
	}
	if !strings.Contains(stale[0].Message, "puritytant") {
		t.Errorf("staleallow-only run reported %q, want the unknown-rule (puritytant) directive", stale[0].Message)
	}
}

// TestAllRules pins the full rule inventory (per-package + module +
// staleallow) that cmd/dynlint -list must print.
func TestAllRules(t *testing.T) {
	rules := AllRules(DefaultAnalyzers(), DefaultModuleAnalyzers())
	if len(rules) != 13 {
		var names []string
		for _, r := range rules {
			names = append(names, r.Name)
		}
		t.Fatalf("got %d rules (%v), want 13", len(rules), names)
	}
	if rules[len(rules)-1].Name != StaleAllowName {
		t.Errorf("staleallow must be listed last, got %s", rules[len(rules)-1].Name)
	}
}

// TestStaleAllowPartialSelection pins the whole-module gate on
// interprocedural staleness: hotleaf.Stage's allow is used only through
// hot.Run's cross-package path, so linting hotleaf alone has no hotpath
// root in view and must not call the directive stale — while a
// whole-module run (TestModuleAnalyzers' exact-match accounting) still
// judges every directive.
func TestStaleAllowPartialSelection(t *testing.T) {
	loader, err := NewLoader(filepath.Join("testdata", "mod"))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	mod, err := loader.LoadModule([]string{filepath.Join("testdata", "mod", "hotleaf")})
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	findings := RunModule(mod, DefaultAnalyzers(), DefaultModuleAnalyzers(), ModuleRunOptions{})
	for _, f := range findings {
		if f.Rule == StaleAllowName {
			t.Errorf("partial selection reported a staleallow finding: %s: %s", f.Pos, f.Message)
		}
	}
}
