package lint

import "go/ast"

// ObsDeterminism enforces the stricter determinism contract of the
// observability layer (internal/obs). Event logs and metric expositions
// are part of an execution's artifact: two runs from the same seed must
// produce byte-identical output at any sweep worker count. The general
// maporder rule only forbids map iteration whose order *leaks* into
// results; inside internal/obs even order-independent iteration is
// banned, because an emit or export path that walks a map is one
// refactor away from leaking order (the registry keeps an
// insertion-order slice for exactly this reason). Wall-clock reads are
// banned outright — rounds are the layer's only clock — mirroring the
// determinism rule, whose scope does not cover internal/obs.
var ObsDeterminism = &Analyzer{
	Name: "obsdeterminism",
	Doc: "forbid any map iteration and wall-clock reads in internal/obs: " +
		"event logs and metric expositions must be byte-identical across runs",
	Scope: func(path string) bool { return underAny(path, "internal/obs") },
	Run:   runObsDeterminism,
}

func runObsDeterminism(p *Pass) {
	for _, f := range p.Files {
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if p.isMapRange(n) {
					p.Reportf(n.Pos(), "map iteration in the observability layer: emit and export paths must walk insertion-order slices, never maps")
				}
			case *ast.SelectorExpr:
				if p.pkgIdentOrName(file, n.X) == "time" && bannedClockCalls[n.Sel.Name] {
					p.Reportf(n.Pos(), "time.%s in the observability layer: rounds are the only clock; wall-clock reads make exported artifacts unreproducible", n.Sel.Name)
				}
			}
			return true
		})
	}
}
