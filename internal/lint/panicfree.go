package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// PanicFree forbids panic in library packages. The simulator is headed
// for long-running, parallel, production-scale use (see ROADMAP), where a
// panic in one goroutine of the parallel stepper tears down the whole
// engine with a partial execution — errors must flow through the Result
// path instead. Panics are tolerated in two places only: invariant-check
// helpers (functions named must*/assert*/invariant*, or the conventional
// `check` bounds-guard), and sites carrying a //lint:allow panicfree
// comment arguing the condition is a programming error that cannot be
// triggered by inputs.
var PanicFree = &Analyzer{
	Name: "panicfree",
	Doc: "forbid panic outside invariant-check helpers in library packages; " +
		"runtime failures must surface as errors, not torn-down engines",
	Scope: func(path string) bool { return underAny(path, "internal") },
	Run:   runPanicFree,
}

// invariantHelper reports whether a function name marks a designated
// invariant-check helper.
func invariantHelper(name string) bool {
	lower := strings.ToLower(name)
	return strings.HasPrefix(lower, "must") ||
		strings.HasPrefix(lower, "assert") ||
		strings.HasPrefix(lower, "invariant") ||
		lower == "check"
}

func runPanicFree(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if invariantHelper(fn.Name.Name) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if obj := p.ObjectOf(id); obj != nil {
					if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
						return true // shadowed panic
					}
				}
				p.Reportf(call.Pos(), "panic in library code: return an error (or move the check into a must*/assert* invariant helper)")
				return true
			})
		}
	}
}
