package lint

import (
	"go/ast"
	"go/types"
)

// isBuiltinObj reports whether obj resolves to a builtin (or is unknown,
// which for `print`/`println` can only be the builtin in compiling code).
func isBuiltinObj(obj types.Object) bool {
	if obj == nil {
		return true
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

// PrintClean forbids writing to the process's standard streams from
// library packages: only cmd/* and examples/* own the terminal. Library
// prints interleave nondeterministically with the parallel engine's
// goroutines, corrupt machine-readable driver output (CSV/DOT exports),
// and cannot be captured by callers. Libraries return values and errors;
// rendering is the driver's job.
var PrintClean = &Analyzer{
	Name: "printclean",
	Doc: "forbid fmt.Print*/os.Stdout/os.Stderr and builtin print/println in internal packages; " +
		"only cmd/* and examples/* may write to the terminal",
	Scope: func(path string) bool { return underAny(path, "internal") },
	Run:   runPrintClean,
}

// bannedPrintCalls are fmt functions that write to os.Stdout implicitly.
var bannedPrintCalls = map[string]bool{
	"Print":   true,
	"Printf":  true,
	"Println": true,
}

func runPrintClean(p *Pass) {
	for _, f := range p.Files {
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				switch p.pkgIdentOrName(file, n.X) {
				case "fmt":
					if bannedPrintCalls[n.Sel.Name] {
						p.Reportf(n.Pos(), "fmt.%s writes to os.Stdout from library code: return values and let cmd/* render them", n.Sel.Name)
					}
				case "os":
					if n.Sel.Name == "Stdout" || n.Sel.Name == "Stderr" {
						p.Reportf(n.Pos(), "os.%s referenced from library code: take an io.Writer instead", n.Sel.Name)
					}
				}
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && (id.Name == "print" || id.Name == "println") && isBuiltinObj(p.ObjectOf(id)) {
					p.Reportf(n.Pos(), "builtin %s writes to stderr: use an error or an io.Writer", id.Name)
				}
			}
			return true
		})
	}
}
