package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PurityTaint is the interprocedural determinism rule. The paper's
// public-coin reductions (Theorems 6-7) collapse if any state machine
// step depends on wall time, ambient randomness, or map iteration order:
// two replays of the same coin tape would diverge. Per-package rules
// catch direct violations inside internal/protocols; this rule closes
// the interprocedural gap — a helper two packages away calling time.Now
// taints every Machine.Step that reaches it.
//
// Roots are discovered structurally plus by annotation:
//
//   - every Step and Deliver method of a type implementing a
//     module interface named Machine with a Step method, and
//   - every function annotated //lint:pure in its doc comment
//     (the harness sweep cells, which must be replayable).
//
// Sinks, flagged in every reachable function: time.Now / time.Since /
// time.Until, any use of math/rand or math/rand/v2, and ranging over a
// map (iteration order is randomized by the runtime). An allow on a
// call-site line prunes traversal; on a sink line it suppresses the
// finding.
var PurityTaint = &ModuleAnalyzer{
	Name: "puritytaint",
	Doc: "no function reachable from Machine.Step/Deliver or //lint:pure roots may read " +
		"wall clocks (time.Now/Since/Until), math/rand, or range over a map",
	Run: runPurityTaint,
}

func runPurityTaint(mp *ModulePass) {
	roots := machineRoots(mp.Graph)
	roots = append(roots, mp.Graph.Annotated("pure")...)
	reach := reachFrom(mp, roots)
	for _, n := range reach.order {
		checkPure(mp, n, reach)
	}
}

// machineRoots finds the Step and Deliver methods of every module type
// implementing a module interface named Machine that has a Step method.
// Discovery is structural so protocol packages need no annotations: adding
// a new Machine implementation is automatically covered.
func machineRoots(g *CallGraph) []*FuncNode {
	var roots []*FuncNode
	seen := map[*FuncNode]bool{}
	for _, named := range g.named {
		if named.Obj().Name() != "Machine" {
			continue
		}
		iface, ok := named.Underlying().(*types.Interface)
		if !ok || iface.NumMethods() == 0 {
			continue
		}
		hasStep := false
		for i := 0; i < iface.NumMethods(); i++ {
			if iface.Method(i).Name() == "Step" {
				hasStep = true
			}
		}
		if !hasStep {
			continue
		}
		for _, method := range [...]string{"Step", "Deliver"} {
			for _, impl := range g.implementations(iface, method) {
				if !seen[impl] {
					seen[impl] = true
					roots = append(roots, impl)
				}
			}
		}
	}
	return roots
}

// checkPure scans one reachable function body for nondeterminism sinks.
func checkPure(mp *ModulePass, n *FuncNode, reach *reachResult) {
	info := n.Pkg.Info
	suffix := " [taint path: " + reach.path(n) + "]"
	report := func(pos token.Pos, format string, args ...interface{}) {
		mp.Reportf(pos, format+"%s", append(args, suffix)...)
	}
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.RangeStmt:
			if t := info.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					report(x.Pos(), "range over map has randomized iteration order; collect and sort keys instead")
				}
			}
		case *ast.SelectorExpr:
			path := pkgPathOf(info, x.X)
			switch path {
			case "time":
				switch x.Sel.Name {
				case "Now", "Since", "Until":
					report(x.Pos(), "time.%s reads the wall clock; thread logical round numbers instead", x.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				report(x.Pos(), "%s.%s draws ambient randomness; use internal/rng coin tapes instead", path, x.Sel.Name)
			}
		}
		return true
	})
}

// pkgPathOf resolves a selector qualifier to its package import path, or
// "" when the qualifier is not a package name.
func pkgPathOf(info *types.Info, e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := info.ObjectOf(id).(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}
