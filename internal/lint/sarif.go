package lint

import (
	"encoding/json"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 output, the minimal subset CI code-scanning uploads accept.
// Kept hand-rolled (stdlib json only) to preserve the module's
// zero-dependency rule; the golden test pins the exact shape.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// SARIF renders findings as a SARIF 2.1.0 log. File paths are made
// relative to root (the module root) and slash-separated so the output is
// stable across checkouts; rules lists every rule that ran, findings or
// not, so code-scanning UIs can show rule metadata.
func SARIF(root string, rules []RuleInfo, findings []Finding) ([]byte, error) {
	driver := sarifDriver{
		Name:           "dynlint",
		InformationURI: "https://example.invalid/dyndiam/cmd/dynlint",
	}
	for _, r := range rules {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               r.Name,
			ShortDescription: sarifMessage{Text: r.Doc},
		})
	}
	results := []sarifResult{} // marshal as [], not null, when clean
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Rule,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: relURI(root, f.Pos.Filename)},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	out, err := json.MarshalIndent(&log, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// relURI renders path relative to root with forward slashes (SARIF URIs).
func relURI(root, path string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
			path = rel
		}
	}
	return filepath.ToSlash(path)
}
