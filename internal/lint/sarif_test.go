package lint

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func sarifFixture() (string, []RuleInfo, []Finding) {
	root := string(filepath.Separator) + "mod"
	rules := []RuleInfo{
		{Name: "hotpathalloc", Doc: "hot paths must be allocation-free"},
		{Name: "puritytaint", Doc: "machine steps must be deterministic"},
	}
	findings := []Finding{
		{
			Pos:     token.Position{Filename: filepath.Join(root, "internal", "graph", "graph.go"), Line: 12, Column: 7},
			Rule:    "hotpathalloc",
			Message: "make allocates on the hot path",
		},
		{
			Pos:     token.Position{Filename: filepath.Join(root, "internal", "dynet", "engine.go"), Line: 40, Column: 3},
			Rule:    "puritytaint",
			Message: "time.Now reads the wall clock",
		},
	}
	return root, rules, findings
}

// TestSARIFGolden pins the exact SARIF 2.1.0 bytes: schema URI, version,
// rule metadata, error level, and module-relative slash-separated
// artifact URIs.
func TestSARIFGolden(t *testing.T) {
	root, rules, findings := sarifFixture()
	got, err := SARIF(root, rules, findings)
	if err != nil {
		t.Fatalf("SARIF: %v", err)
	}
	golden := filepath.Join("testdata", "golden.sarif")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file: %v (regenerate by writing the got bytes)", err)
	}
	if string(got) != string(want) {
		t.Errorf("SARIF output drifted from %s\n got:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestSARIFShape checks structural invariants independent of the golden
// bytes: valid JSON, one run, results resolve to rules, and a clean run
// still marshals results as an empty array (required by upload tooling).
func TestSARIFShape(t *testing.T) {
	root, rules, findings := sarifFixture()
	out, err := SARIF(root, rules, findings)
	if err != nil {
		t.Fatalf("SARIF: %v", err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version %q with %d runs, want 2.1.0 with 1 run", log.Version, len(log.Runs))
	}
	known := map[string]bool{}
	for _, r := range log.Runs[0].Tool.Driver.Rules {
		known[r.ID] = true
	}
	for _, res := range log.Runs[0].Results {
		if !known[res.RuleID] {
			t.Errorf("result rule %q missing from driver rule metadata", res.RuleID)
		}
		if res.Level != "error" {
			t.Errorf("result level %q, want error", res.Level)
		}
		uri := res.Locations[0].PhysicalLocation.ArtifactLocation.URI
		if filepath.IsAbs(uri) {
			t.Errorf("artifact URI %q should be module-relative", uri)
		}
	}

	clean, err := SARIF(root, rules, nil)
	if err != nil {
		t.Fatalf("SARIF(clean): %v", err)
	}
	var raw map[string]interface{}
	if err := json.Unmarshal(clean, &raw); err != nil {
		t.Fatal(err)
	}
	results := raw["runs"].([]interface{})[0].(map[string]interface{})["results"]
	if _, ok := results.([]interface{}); !ok {
		t.Errorf("clean run results marshal as %T, want empty array", results)
	}
}

// TestBaselineRoundTrip: a written baseline filters exactly the findings
// it recorded (line-number-free multiset keys), so a shifted line still
// matches but a new duplicate escapes the ratchet.
func TestBaselineRoundTrip(t *testing.T) {
	root, _, findings := sarifFixture()
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, root, findings); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}

	// Shift every finding a few lines: keys ignore line numbers.
	shifted := make([]Finding, len(findings))
	copy(shifted, findings)
	for i := range shifted {
		shifted[i].Pos.Line += 17
	}
	left, err := FilterBaseline(path, root, shifted)
	if err != nil {
		t.Fatalf("FilterBaseline: %v", err)
	}
	if len(left) != 0 {
		t.Errorf("baseline failed to absorb shifted findings: %v", left)
	}

	// A second identical finding exceeds the recorded multiplicity.
	dup := append(shifted, shifted[0])
	left, err = FilterBaseline(path, root, dup)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 1 {
		t.Errorf("multiset baseline absorbed %d findings too many: %v", 1-len(left), left)
	}
}
