package lint

import "go/ast"

// SearchDeterminism extends the strict determinism contract to the
// adversary-synthesis layer (internal/advsearch). A search result is a
// reproducibility contract three times over: the golden tests pin
// byte-identical reports across SweepWorkers settings, checkpoints
// resume onto the identical result, and every corpus entry records the
// exact seeds that re-derive its hardness bit for bit. All three break
// the moment a candidate, a dedupe decision, or a progress callback
// depends on map iteration order — so, as in internal/faults, even
// order-independent map iteration is banned (keyed lookups over sorted
// or Seq-ordered slices are the sanctioned pattern). Wall-clock reads
// are banned outright: search budgets are counted in evaluations and
// rounds, never in elapsed time.
var SearchDeterminism = &Analyzer{
	Name: "searchdeterminism",
	Doc: "forbid any map iteration and wall-clock reads in internal/advsearch: " +
		"search results must be pure functions of (config, seeds) so reports, checkpoints, and corpus entries replay bit-identically",
	Scope: func(path string) bool { return underAny(path, "internal/advsearch") },
	Run:   runSearchDeterminism,
}

func runSearchDeterminism(p *Pass) {
	for _, f := range p.Files {
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if p.isMapRange(n) {
					p.Reportf(n.Pos(), "map iteration in the adversary-search layer: candidates and dedupe sets must walk Seq-ordered slices, never map order")
				}
			case *ast.SelectorExpr:
				if p.pkgIdentOrName(file, n.X) == "time" && bannedClockCalls[n.Sel.Name] {
					p.Reportf(n.Pos(), "time.%s in the adversary-search layer: budgets are evaluations and rounds; wall-clock reads make search results unreplayable", n.Sel.Name)
				}
			}
			return true
		})
	}
}
