package lint

import "go/ast"

// ServeDeterminism enforces the strict determinism contract of the
// experiment-serving layer (internal/serve), the same shape as
// obsdeterminism and faultsdeterminism. The serving layer's whole value
// proposition is that results are content-addressed: one (kind, params)
// key must map to one byte string forever, across restarts and across
// deduplicated concurrent submissions. That only holds if nothing on the
// result path reads map order or the wall clock. Map iteration is banned
// outright — the result cache is a map, and listing or exporting it by
// iteration is one refactor away from order-dependent responses (the
// cache keeps an insertion-order key slice for exactly this reason).
// Wall-clock reads are banned except where explicitly annotated: the
// scheduling edge of the layer (latency metrics, job budgets) genuinely
// lives in wall-clock time, and each such read carries a //lint:allow
// servedeterminism annotation arguing it never feeds a result body.
var ServeDeterminism = &Analyzer{
	Name: "servedeterminism",
	Doc: "forbid map iteration and unannotated wall-clock reads in internal/serve: " +
		"content-addressed results must be pure functions of (kind, params); only annotated queue/timeout paths may read the clock",
	Scope: func(path string) bool { return underAny(path, "internal/serve") },
	Run:   runServeDeterminism,
}

func runServeDeterminism(p *Pass) {
	for _, f := range p.Files {
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if p.isMapRange(n) {
					p.Reportf(n.Pos(), "map iteration in the serving layer: walk the insertion-order key slice instead, so listings and exports are deterministic")
				}
			case *ast.SelectorExpr:
				if p.pkgIdentOrName(file, n.X) == "time" && bannedClockCalls[n.Sel.Name] {
					p.Reportf(n.Pos(), "time.%s in the serving layer: results must not depend on the wall clock; annotate queue/timeout reads with //lint:allow servedeterminism", n.Sel.Name)
				}
			}
			return true
		})
	}
}
