module corpusmod

go 1.22
