// Package hot holds the //lint:hotpath roots of the corpus: one root
// reaching allocations across packages and through interface dispatch,
// one exercising the intraprocedural allocation catalog, and one showing
// the documented edge-prune escape.
package hot

import (
	"fmt"

	"corpusmod/hotleaf"
	"corpusmod/hotmid"
)

// Sink is the interface whose dispatch the analyzer over-approximates.
type Sink interface {
	Consume(v int)
}

// Boxy implements Sink with an allocating body.
type Boxy struct{ last interface{} }

// Consume boxes its argument into an interface field; reached from the
// root only through interface dispatch.
func (b *Boxy) Consume(v int) {
	b.last = v // want:hotpathalloc
}

type point struct{ x, y int }

func takeAny(v interface{}) { _ = v }

func spin() {}

// Run is the corpus hot root: every function reachable below must be
// allocation-free.
//
//lint:hotpath
func Run(s Sink, dst []int, rounds int) int {
	total := 0
	for r := 0; r < rounds; r++ {
		dst = hotmid.Reuse(dst)
		grown := hotmid.Relay(r)
		total += len(grown) + len(dst) + len(hotleaf.Stage(r))
		s.Consume(r)
	}
	return total
}

// Local exercises the intraprocedural allocation catalog; the clean
// scratch-append line in the middle must stay unflagged.
//
//lint:hotpath
func Local(name string, xs []int) string {
	m := map[int]bool{} // want:hotpathalloc
	_ = m
	p := &point{1, 2} // want:hotpathalloc
	_ = p
	ys := make([]int, 4)    // want:hotpathalloc
	fresh := []int{1, 2, 3} // want:hotpathalloc
	ys = append(fresh, 4)   // want:hotpathalloc
	_ = ys
	xs = append(xs, 5)
	_ = xs
	bs := []byte(name) // want:hotpathalloc
	_ = bs
	takeAny(len(bs)) // want:hotpathalloc
	go spin()        // want:hotpathalloc
	n := 0
	f := func() { n++ } // want:hotpathalloc
	f()
	fmt.Println(name) // want:hotpathalloc
	return name + "!" // want:hotpathalloc
}

// Pruned calls an allocating helper through a documented allow: the
// call-graph edge is pruned, so expensive is never traversed and its
// make stays unflagged.
//
//lint:hotpath
func Pruned() []int {
	return expensive(8) //lint:allow hotpathalloc helper owns its allocation budget
}

// expensive allocates but is unreachable after the prune above.
func expensive(n int) []int {
	return make([]int, n)
}
