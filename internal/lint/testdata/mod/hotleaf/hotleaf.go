// Package hotleaf is the bottom of the hot-path corpus chain: its make
// sits two packages away from the //lint:hotpath root.
package hotleaf

// Grow allocates; the root reaches it through hotmid.
func Grow(n int) []int {
	buf := make([]int, n) // want:hotpathalloc
	return buf
}

// Fill writes into caller-owned scratch storage: allocation-free, the
// buffer-reuse idiom hotpathalloc must keep accepting.
func Fill(dst []int, v int) []int {
	dst = dst[:0]
	for i := 0; i < 4; i++ {
		dst = append(dst, v)
	}
	return dst
}

// Stage allocates behind a documented allow whose use arrives only
// through hot.Run's cross-package path. A whole-module run marks it
// used; a partial selection of this package alone has no hotpath root
// in view and must NOT call it stale.
func Stage(n int) []int {
	return make([]int, n) //lint:allow hotpathalloc staging buffer is amortized across the caller's rounds
}
