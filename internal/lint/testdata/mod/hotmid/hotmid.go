// Package hotmid sits between the hot root and the allocating leaf; it
// is itself clean, so any finding below proves interprocedural reach.
package hotmid

import "corpusmod/hotleaf"

// Relay forwards to the allocating leaf.
func Relay(n int) []int {
	return hotleaf.Grow(n)
}

// Reuse forwards scratch storage; clean all the way down.
func Reuse(dst []int) []int {
	return hotleaf.Fill(dst, 7)
}
