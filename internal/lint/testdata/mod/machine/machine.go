// Package machine mirrors the engine's Machine contract for the purity
// corpus: puritytaint discovers its roots structurally from any module
// interface named Machine with a Step method, so Proto needs no
// annotation to be covered.
package machine

import (
	"time"

	"corpusmod/mhelp"
)

// Machine is the corpus twin of the engine's state-machine interface.
type Machine interface {
	Step(r int) int64
	Deliver(r int, v int64)
}

// Proto implements Machine; its Step and Deliver are taint roots.
type Proto struct {
	acc  int64
	hist map[int]int
}

// Step reaches the wall clock and math/rand through two helper packages.
func (p *Proto) Step(r int) int64 {
	return mhelp.Jitter(r) + int64(mhelp.Roll(r+1))
}

// Deliver ranges over a map through a helper.
func (p *Proto) Deliver(r int, v int64) {
	p.acc += v + int64(mhelp.Tally(p.hist))
}

// TrailingDemo pins the trailing-allow scoping regression: the directive
// on the first clock line covers only its own line, never the next.
//
//lint:pure
func TrailingDemo() int64 {
	a := time.Now().UnixNano() //lint:allow puritytaint trailing allows cover their own line only
	b := time.Now().UnixNano() // want:puritytaint
	return a + b
}

// Clean is pure end to end, so its allow directive suppresses nothing
// and must be reported stale.
//
//lint:pure
func Clean(x int) int {
	return x + 1 //lint:allow puritytaint want:staleallow this escape is stale
}

// Typo carries a directive naming a rule that does not exist; reported
// unconditionally, since the typo leaves the line unprotected.
func Typo(x int) int {
	return x * 2 //lint:allow puritytant want:staleallow misspelled rule name
}
