// Package mclock is the tainted leaf of the purity corpus: the wall
// clock read sits two packages away from the Machine.Step root.
package mclock

import "time"

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().UnixNano() // want:puritytaint
}

// Allowed reads the clock under a documented escape; not flagged.
func Allowed() int64 {
	return time.Now().UnixNano() //lint:allow puritytaint corpus demo of a documented escape
}
