// Package mhelp sits between the corpus machine and the tainted clock
// package; it is clean except for its own rand and map-range sinks.
package mhelp

import (
	"math/rand"

	"corpusmod/mclock"
)

// Jitter forwards the clock taint from mclock.
func Jitter(r int) int64 {
	return mclock.Stamp() + mclock.Allowed() + int64(r)
}

// Roll draws ambient randomness.
func Roll(n int) int {
	return rand.Intn(n) // want:puritytaint
}

// Tally ranges over a map.
func Tally(m map[int]int) int {
	s := 0
	for _, v := range m { // want:puritytaint
		s += v
	}
	return s
}
