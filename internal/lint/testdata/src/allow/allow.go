// Package allow is a lint fixture exercising the //lint:allow escape
// hatch: every violation below is suppressed, so running any analyzer
// over this package must yield zero findings.
package allow

import (
	"fmt"
	"sort"
)

// SortedValues collects then sorts; the maporder allow rides on the
// line above the append, the comma-list allow suppresses two of the
// stricter any-map-range rules at once, and the faultsdeterminism allow
// demonstrates the single-rule form on the loop itself.
func SortedValues(m map[int]int) []int {
	var out []int
	//lint:allow obsdeterminism,servedeterminism,wiredeterminism,searchdeterminism fixture demonstrates the comma-list escape hatch
	for _, v := range m { //lint:allow faultsdeterminism fixture demonstrates the strict-rule escape hatch

		//lint:allow maporder collected slice is sorted before being returned
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Banner is a deliberate same-line suppression.
func Banner(v int) {
	fmt.Println("banner", v) //lint:allow printclean fixture demonstrates same-line suppression
}

// Guard panics with an inline justification.
func Guard(v int) int {
	if v < 0 {
		panic("allow fixture: negative") //lint:allow panicfree negative v is a caller bug, documented contract
	}
	return v
}

// TrailingScope pins the fix for trailing-allow over-suppression: an
// allow sharing its line with code covers exactly that line, so the
// second print below stays a finding. (Only standalone comment lines
// extend their suppression to the next line.)
func TrailingScope(v int) {
	fmt.Println("first", v)  //lint:allow printclean trailing allow covers exactly this line
	fmt.Println("second", v) // want:printclean
}

// WrongRule shows that an allow for a different rule does not suppress:
// the panicfree allow below must NOT silence maporder, and the
// unsuppressed map range is still an obsdeterminism finding (the
// faultsdeterminism/servedeterminism twins of that finding are allowed
// away to keep each line at one want marker).
func WrongRule(m map[int]int) []int {
	var out []int
	//lint:allow faultsdeterminism,servedeterminism,wiredeterminism,searchdeterminism keep this line at a single want marker
	for k := range m { // want:obsdeterminism
		//lint:allow panicfree mismatched rule name
		out = append(out, k) // want:maporder
	}
	return out
}
