// Package buildtag is a loader fixture: the sibling files redeclare
// Flag and Excluded under build constraints for another platform, so the
// package only type-checks if the loader filters them out.
package buildtag

// Flag is redeclared by the plan9-constrained files.
const Flag = "host"

// Excluded reports which constrained variants were (wrongly) loaded.
func Excluded() []string { return nil }
