//go:build plan9

// Tag-constrained variant: the //go:build line excludes this file
// everywhere else; loading it alongside buildtag.go would redeclare.
package buildtag

// Flag redeclares the host constant.
const Flag = "plan9-tag"

// Excluded redeclares the host function.
func Excluded() []string { return []string{"tag"} }
