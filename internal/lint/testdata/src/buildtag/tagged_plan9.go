// Filename-constrained variant: _plan9 suffix excludes this file
// everywhere else; loading it alongside buildtag.go would redeclare.
package buildtag

// Flag redeclares the host constant.
const Flag = "plan9-filename"

// Excluded redeclares the host function.
func Excluded() []string { return []string{"filename"} }
