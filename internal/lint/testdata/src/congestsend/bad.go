// Package congestsend is a lint fixture for the congestsend analyzer.
package congestsend

import (
	"dyndiam/internal/bitio"
	"dyndiam/internal/dynet"
)

// RawPayload hand-rolls a byte slice: no bit accounting.
func RawPayload(token byte) dynet.Message {
	return dynet.Message{Payload: []byte{token}, NBits: 8} // want:congestsend
}

// FakeLength pairs a real writer payload with a hand-computed bit count.
func FakeLength(token uint64) dynet.Message {
	var w bitio.Writer
	w.WriteUvarint(token)
	return dynet.Message{Payload: w.Bytes(), NBits: 5} // want:congestsend
}

// MixedWriters takes Payload and NBits from different writers.
func MixedWriters(token uint64) dynet.Message {
	var w1, w2 bitio.Writer
	w1.WriteUvarint(token)
	w2.WriteUvarint(token)
	return dynet.Message{Payload: w1.Bytes(), NBits: w2.Len()} // want:congestsend
}

// WideField declares a field wider than a 64-bit word.
func WideField(v uint64) dynet.Message {
	var w bitio.Writer
	w.WriteUint(v, 80) // want:congestsend
	return dynet.Message{Payload: w.Bytes(), NBits: w.Len()}
}

// Positional builds the literal without field keys.
func Positional(payload []byte) dynet.Message {
	return dynet.Message{0, payload, 8} // want:congestsend
}
