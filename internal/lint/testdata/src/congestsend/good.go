package congestsend

import (
	"dyndiam/internal/bitio"
	"dyndiam/internal/dynet"
)

// Encoded is the canonical send site: one writer supplies both fields.
func Encoded(token uint64, id int) dynet.Message {
	var w bitio.Writer
	w.WriteUvarint(token)
	w.WriteUint(uint64(id), 16)
	return dynet.Message{Payload: w.Bytes(), NBits: w.Len()}
}

// Empty is the Receive-side zero message: carries nothing, always fine.
func Empty() dynet.Message {
	return dynet.Message{}
}

// DynamicWidth passes a computed width; bitio validates it at runtime.
func DynamicWidth(v uint64, n int) dynet.Message {
	var w bitio.Writer
	w.WriteUint(v, bitio.WidthFor(n))
	return dynet.Message{Payload: w.Bytes(), NBits: w.Len()}
}

// PointerWriter uses a *bitio.Writer received from elsewhere.
func PointerWriter(w *bitio.Writer) dynet.Message {
	w.WriteBool(true)
	return dynet.Message{Payload: w.Bytes(), NBits: w.Len()}
}
