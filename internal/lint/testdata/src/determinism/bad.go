// Package determinism is a lint fixture: every line carrying a
// `// want:determinism` comment must be flagged by the determinism
// analyzer, and no other line may be.
package determinism

import (
	"math/rand" // want:determinism
	"time"
)

// Roll draws from the global math/rand stream — not re-simulable.
func Roll() int {
	return rand.Intn(6) // want:determinism
}

// Stamp reads the wall clock twice.
func Stamp() (time.Time, time.Duration) {
	now := time.Now()           // want:determinism
	return now, time.Since(now) // want:determinism
}

// Deadline uses time.Until, the third wall-clock reader.
func Deadline(t time.Time) time.Duration {
	return time.Until(t) // want:determinism
}
