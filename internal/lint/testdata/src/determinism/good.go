package determinism

import "time"

// Tick uses only duration arithmetic and constants: allowed, because no
// wall clock is read.
func Tick(d time.Duration) time.Duration {
	return d + 5*time.Millisecond
}

// Shadow declares a local named time; selecting from it is not a clock
// read.
func Shadow() int {
	time := struct{ Now int }{Now: 3}
	return time.Now
}
