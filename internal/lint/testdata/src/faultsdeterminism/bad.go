// Package faultsdeterminism is a lint fixture for the faultsdeterminism
// analyzer. Every map iteration below is order-independent in the
// maporder sense — nothing leaks iteration order into a result — so the
// general rule stays silent; the fault-injection layer bans them anyway.
package faultsdeterminism

import "time"

type outage struct{ from, until int }

type plan struct {
	schedules map[int][]outage
	order     []int
}

// CountDown sums scheduled down-rounds commutatively. Order-independent,
// so maporder is silent — but a plan walking a map is one refactor away
// from letting query order shape a fault schedule.
func CountDown(p *plan) int {
	total := 0
	for _, ws := range p.schedules { // want:faultsdeterminism
		for _, w := range ws {
			total += w.until - w.from + 1
		}
	}
	return total
}

// Freeze marks every scheduled node down. The map iteration accumulates
// through a method-like append, which maporder does not track; the
// freeze order is still randomized map order.
func Freeze(p *plan, down []bool) {
	for node := range p.schedules { // want:faultsdeterminism
		down[node] = true
	}
}

// Expire times out an outage window against the wall clock instead of a
// round counter.
func Expire(w outage) bool {
	return int(time.Now().Unix()) > w.until // want:faultsdeterminism
}
