package faultsdeterminism

// Schedules walks the insertion-order slice and consults the map only
// for keyed lookups — the pattern the fault layer uses in place of map
// iteration.
func Schedules(p *plan) []outage {
	var out []outage
	for _, node := range p.order {
		out = append(out, p.schedules[node]...)
	}
	return out
}

// DownAt answers from the sorted windows of one node — rounds, the
// simulation's own clock, never the wall clock.
func DownAt(p *plan, r, node int) bool {
	for _, w := range p.schedules[node] {
		if r >= w.from && r <= w.until {
			return true
		}
	}
	return false
}
