// Package maporder is a lint fixture for the maporder analyzer.
package maporder

import (
	"errors"
	"fmt"
)

// FirstKey returns whichever key the randomized iteration yields first.
func FirstKey(m map[int]int) (int, error) {
	for k := range m {
		return k, nil // want:maporder
	}
	return 0, errors.New("empty")
}

// Keys builds a slice in randomized map order.
func Keys(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k) // want:maporder
	}
	return out
}

// Mismatch formats an error naming an arbitrary map element.
func Mismatch(m map[int]int64) error {
	for k, v := range m {
		if v != 0 {
			return fmt.Errorf("node %d decided %d", k, v) // want:maporder
		}
	}
	return nil
}

// Labels renders map entries with Sprintf inside the loop.
func Labels(m map[int]string) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[k] = fmt.Sprintf("<%s>", v) // want:maporder
	}
	return out
}

// NestedEscape appends through a closure to a slice declared outside the
// loop body.
func NestedEscape(m map[int]int) []int {
	var out []int
	for k := range m {
		func() { out = append(out, k) }() // want:maporder
	}
	return out
}

// FieldAccumulate appends into a field that lives across iterations.
type FieldAccumulate struct{ log []int }

func (a *FieldAccumulate) Collect(m map[int]int) {
	for k := range m {
		a.log = append(a.log, k) // want:maporder
	}
}
