package maporder

import "sort"

// Sum folds map values commutatively: order-independent.
func Sum(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Rekey writes elements keyed by the loop variable: order-independent.
func Rekey(m map[int]int, dst []int) {
	for k, v := range m {
		dst[k] = v
	}
}

// LocalAccumulate appends to a slice declared inside the loop body; the
// slice dies each iteration, so order cannot escape.
func LocalAccumulate(m map[int][]int) int {
	total := 0
	for _, row := range m {
		var doubled []int
		for _, v := range row {
			doubled = append(doubled, 2*v)
		}
		total += len(doubled)
	}
	return total
}

// SortedKeys collects then sorts — deterministic, and the collection
// step carries the allow justification.
func SortedKeys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k) //lint:allow maporder sorted immediately below
	}
	sort.Ints(out)
	return out
}

// SliceRange iterates a slice, not a map: never flagged.
func SliceRange(s []int) []int {
	var out []int
	for _, v := range s {
		out = append(out, v)
	}
	return out
}

// CopyRows clones each row with the append-copy idiom and a closure
// return: the append target is a fresh conversion each iteration and the
// closure's return does not exit the loop, so neither is flagged.
func CopyRows(m map[int][]byte) map[int][]byte {
	out := make(map[int][]byte, len(m))
	for k, row := range m {
		out[k] = append([]byte(nil), row...)
		sort.Slice(out[k], func(i, j int) bool { return out[k][i] < out[k][j] })
	}
	return out
}

// Contains scans without leaking an element or its position.
func Contains(m map[int]bool) bool {
	found := false
	for _, v := range m {
		if v {
			found = true
		}
	}
	return found
}
