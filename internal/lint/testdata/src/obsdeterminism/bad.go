// Package obsdeterminism is a lint fixture for the obsdeterminism
// analyzer. Every map iteration below is order-independent in the
// maporder sense — nothing leaks iteration order into a result — so the
// general rule stays silent; the observability layer bans them anyway.
package obsdeterminism

import "time"

type event struct {
	round int
	name  string
}

type sink struct{ events []event }

func (s *sink) emit(e event) { s.events = append(s.events, e) }

// Total folds counter values commutatively. Order-independent, so
// maporder is silent — but an export path summing a map is one refactor
// away from printing it, so the obs layer forbids the iteration itself.
func Total(counters map[string]int64) int64 {
	var total int64
	for _, v := range counters { // want:obsdeterminism
		total += v
	}
	return total
}

// Flush emits one event per gauge. The emit call accumulates through a
// method, which maporder does not track; the emission order is still
// randomized map order, which would reach the event log.
func Flush(s *sink, gauges map[string]int64) {
	for name := range gauges { // want:obsdeterminism
		s.emit(event{name: name})
	}
}

// Stamp timestamps an event with the wall clock instead of a round.
func Stamp(s *sink) {
	s.emit(event{round: int(time.Now().Unix())}) // want:obsdeterminism
}
