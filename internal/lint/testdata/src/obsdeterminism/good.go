package obsdeterminism

// point mirrors one registry snapshot row.
type point struct {
	name  string
	value int64
}

// Snapshot walks the insertion-order slice and consults the map only
// for keyed lookups — the pattern the observability layer uses in place
// of map iteration.
func Snapshot(order []string, values map[string]int64) []point {
	out := make([]point, 0, len(order))
	for _, name := range order {
		out = append(out, point{name: name, value: values[name]})
	}
	return out
}

// Rounds uses the simulation's own clock — a round counter — never the
// wall clock.
func Rounds(s *sink, upto int) {
	for r := 1; r <= upto; r++ {
		s.emit(event{round: r})
	}
}
