// Package panicfree is a lint fixture for the panicfree analyzer.
package panicfree

import "fmt"

// Parse panics on bad input instead of returning an error.
func Parse(s string) int {
	if s == "" {
		panic("empty input") // want:panicfree
	}
	return len(s)
}

// Deep panics inside a nested closure; still library code.
func Deep(v int) func() {
	return func() {
		if v < 0 {
			panic(fmt.Sprintf("negative %d", v)) // want:panicfree
		}
	}
}
