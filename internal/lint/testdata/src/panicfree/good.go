package panicfree

import "errors"

// Validate returns an error like library code should.
func Validate(s string) error {
	if s == "" {
		return errors.New("empty input")
	}
	return nil
}

// mustPositive is an invariant-check helper: panics are its whole job.
func mustPositive(v int) int {
	if v <= 0 {
		panic("panicfree fixture: non-positive")
	}
	return v
}

// assertSorted is likewise an invariant helper by naming convention.
func assertSorted(s []int) {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			panic("panicfree fixture: unsorted")
		}
	}
}

// check is the conventional bounds-guard helper name.
func check(v, n int) {
	if v < 0 || v >= n {
		panic("panicfree fixture: out of range")
	}
}

// Scale uses the helpers; no panic of its own.
func Scale(v int) int {
	return 2 * mustPositive(v)
}

// Allowed documents an impossible condition via the escape hatch.
func Allowed(width int) {
	if width < 0 || width > 64 {
		//lint:allow panicfree width is fixed by the protocol designer; overflow is a programming error
		panic("panicfree fixture: invalid width")
	}
}
