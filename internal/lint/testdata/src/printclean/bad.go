// Package printclean is a lint fixture for the printclean analyzer.
package printclean

import (
	"fmt"
	"os"
)

// Report writes straight to the terminal from library code.
func Report(v int) {
	fmt.Println("value:", v) // want:printclean
	fmt.Printf("%d\n", v)    // want:printclean
	fmt.Print(v)             // want:printclean
}

// Dump grabs the process stdout/stderr handles.
func Dump(v int) {
	fmt.Fprintf(os.Stdout, "%d\n", v) // want:printclean
	fmt.Fprintln(os.Stderr, v)        // want:printclean
}

// Debug uses the builtin printers.
func Debug(v int) {
	print("debug: ") // want:printclean
	println(v)       // want:printclean
}
