package printclean

import (
	"fmt"
	"io"
	"strings"
)

// Render writes to a caller-supplied writer: the library never chooses
// the destination.
func Render(w io.Writer, v int) {
	fmt.Fprintf(w, "%d\n", v)
}

// Format builds strings without touching any stream.
func Format(v int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "<%d>", v)
	return sb.String()
}

// println here is a local function, not the builtin.
func Custom(v int) {
	println := func(args ...interface{}) {}
	println(v)
}
