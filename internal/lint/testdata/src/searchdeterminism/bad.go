// Package searchdeterminism is a lint fixture for the searchdeterminism
// analyzer. Every map iteration below is order-independent in the
// maporder sense — nothing leaks iteration order into a result — so the
// general rule stays silent; the adversary-search layer bans them anyway.
package searchdeterminism

import "time"

type candidate struct {
	seq   int
	score int64
}

type pool struct {
	seen  map[string]candidate
	order []string
}

// TotalScore sums candidate scores commutatively. Order-independent, so
// maporder is silent — but a search folding over a map is one refactor
// away from letting iteration order pick the reported best.
func TotalScore(p *pool) int64 {
	var total int64
	for _, c := range p.seen { // want:searchdeterminism
		total += c.score
	}
	return total
}

// MarkEvaluated flags every seen candidate. The iteration writes through
// a keyed index, which maporder does not track; the visit order is still
// randomized map order.
func MarkEvaluated(p *pool, done map[int]bool) {
	for _, c := range p.seen { // want:searchdeterminism
		done[c.seq] = true
	}
}

// Expired cuts a search off against the wall clock instead of an
// evaluation budget.
func Expired(deadline int64) bool {
	return time.Now().Unix() > deadline // want:searchdeterminism
}
