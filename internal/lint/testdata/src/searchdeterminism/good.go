package searchdeterminism

// Candidates walks the insertion-order slice and consults the map only
// for keyed lookups — the pattern the search layer uses in place of map
// iteration (dedupe by key, fold in Seq order).
func Candidates(p *pool) []candidate {
	var out []candidate
	for _, key := range p.order {
		out = append(out, p.seen[key])
	}
	return out
}

// Best folds the Seq-ordered slice, so ties resolve by birth ordinal —
// deterministic at any worker count.
func Best(cs []candidate) candidate {
	best := cs[0]
	for _, c := range cs[1:] {
		if c.score > best.score {
			best = c
		}
	}
	return best
}
