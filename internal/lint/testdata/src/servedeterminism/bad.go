// Package servedeterminism is a lint fixture for the servedeterminism
// analyzer. The map iterations below are order-independent in the
// maporder sense — nothing leaks iteration order into a result — so the
// general rule stays silent; the serving layer bans them anyway, because
// a content-addressed cache walked by map order is one refactor away
// from order-dependent listings.
package servedeterminism

import "time"

type entry struct {
	key  string
	body []byte
	done bool
}

type cache struct {
	entries map[string]*entry
	order   []string
}

// CountDone tallies completed entries commutatively. Order-independent,
// so maporder is silent — but the serving layer must walk the order
// slice, not the map.
func CountDone(c *cache) int {
	total := 0
	for _, e := range c.entries { // want:servedeterminism
		if e.done {
			total++
		}
	}
	return total
}

// EvictAll marks every entry undone through keyed writes. Still banned:
// the visit order is randomized map order.
func EvictAll(c *cache) {
	for key := range c.entries { // want:servedeterminism
		c.entries[key].done = false
	}
}

// StampBody puts the wall clock into a result body — exactly the bug the
// rule exists to stop: the same job would serve different bytes on every
// execution, breaking content addressing.
func StampBody(e *entry) {
	e.body = time.Now().AppendFormat(e.body, "15:04:05") // want:servedeterminism
}
