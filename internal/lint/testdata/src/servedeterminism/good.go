package servedeterminism

// List walks the insertion-order slice and consults the map only for
// keyed lookups — the pattern the serving layer's cache uses in place of
// map iteration, so listings are deterministic.
func List(c *cache) []*entry {
	var out []*entry
	for _, key := range c.order {
		out = append(out, c.entries[key])
	}
	return out
}

// Lookup is a keyed read; maps as dictionaries are fine, only iteration
// is banned.
func Lookup(c *cache, key string) (*entry, bool) {
	e, ok := c.entries[key]
	return e, ok
}
