// Package typeerr is a loader fixture with a deliberate type error: the
// loader must stay lenient (collect the error, keep partial info) so a
// broken package degrades analysis instead of aborting the whole run.
package typeerr

import "fmt"

// Broken references an undefined identifier.
func Broken() {
	fmt.Println(undefinedIdentifier)
}

// Fine is well-typed; partial type info must still cover it.
func Fine(v int) int {
	return v + 1
}
