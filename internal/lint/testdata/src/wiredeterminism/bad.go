// Package wiredeterminism is a lint fixture for the wiredeterminism
// analyzer. The map iterations below are order-independent in the
// maporder sense — nothing leaks iteration order into a result — so the
// general rule stays silent; the wire layer bans them anyway, because a
// frame path walked in map order delivers messages in a different order
// than the engine's ascending-neighbor collection, breaking the
// byte-for-byte distributed-equivalence guarantee.
package wiredeterminism

import "time"

type frame struct {
	round int
	from  int
	nbits int
}

type barrier struct {
	pending map[int]*frame // by node id
	nodes   []int          // ascending id order; the sanctioned walk
}

// CountPending tallies buffered frames commutatively. Order-independent,
// so maporder is silent — but the wire layer must walk the node slice,
// not the map.
func CountPending(b *barrier) int {
	total := 0
	for _, f := range b.pending { // want:wiredeterminism
		if f != nil {
			total++
		}
	}
	return total
}

// ResetRound clears buffered frames through keyed writes. Still banned:
// the visit order is randomized map order.
func ResetRound(b *barrier) {
	for id := range b.pending { // want:wiredeterminism
		b.pending[id] = nil
	}
}

// StampFrame puts the wall clock into a frame — exactly the bug the rule
// exists to stop: a round barrier keyed off arrival time instead of
// round numbers diverges from the engine run by run.
func StampFrame(f *frame) {
	f.round = int(time.Now().Unix()) // want:wiredeterminism
}

// ElapsedGate decides protocol progress from elapsed wall time rather
// than frame arrival — banned without an allow annotation.
func ElapsedGate(start time.Time) bool {
	return time.Since(start) > time.Second // want:wiredeterminism
}
