package wiredeterminism

import (
	"net"
	"time"
)

// Collect walks the ascending node-id slice and consults the map only
// for keyed lookups — the pattern the coordinator's inbox assembly uses
// in place of map iteration, so deliveries keep the engine's order.
func Collect(b *barrier) []*frame {
	var out []*frame
	for _, id := range b.nodes {
		if f := b.pending[id]; f != nil {
			out = append(out, f)
		}
	}
	return out
}

// Buffer is a keyed write; maps as dictionaries are fine, only iteration
// is banned.
func Buffer(b *barrier, id int, f *frame) {
	b.pending[id] = f
}

// ArmDeadline is the one sanctioned wall-clock site: arming a socket
// deadline changes when a retry fires, never what the protocol computes,
// and says so in its allow annotation.
func ArmDeadline(c net.Conn, d time.Duration) error {
	return c.SetReadDeadline(time.Now().Add(d)) //lint:allow wiredeterminism deadline arming is the sanctioned wall-clock use
}
