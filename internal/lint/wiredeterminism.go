package lint

import "go/ast"

// WireDeterminism enforces the distributed-equivalence contract of the
// wire layer (internal/wire), the strictest member of the determinism
// rule family. The layer's keystone guarantee is that a distributed run
// is byte-identical to Engine.Run — traces, outputs, message/bit totals,
// even error texts — which only holds if nothing on the frame path
// depends on map order or the wall clock. Map iteration is banned
// outright: inbox assembly, replay encoding, and stats folding must walk
// indexed slices in node order, because a map-ordered walk would reorder
// deliveries relative to the engine's ascending-neighbor collection.
// Wall-clock reads are banned except where explicitly annotated: the
// transport genuinely lives in wall-clock time at exactly one kind of
// site — arming socket deadlines and retry timers — and each such read
// carries a //lint:allow wiredeterminism annotation arguing it can only
// change WHEN a frame is (re)sent, never WHAT the protocol computes.
var WireDeterminism = &Analyzer{
	Name: "wiredeterminism",
	Doc: "forbid map iteration and unannotated wall-clock reads in internal/wire: " +
		"distributed runs must equal Engine.Run byte for byte; only annotated deadline-arming sites may read the clock",
	Scope: func(path string) bool { return underAny(path, "internal/wire") },
	Run:   runWireDeterminism,
}

func runWireDeterminism(p *Pass) {
	for _, f := range p.Files {
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if p.isMapRange(n) {
					p.Reportf(n.Pos(), "map iteration on the frame path: walk nodes and edges by index, so deliveries and replays keep the engine's order")
				}
			case *ast.SelectorExpr:
				if p.pkgIdentOrName(file, n.X) == "time" && bannedClockCalls[n.Sel.Name] {
					p.Reportf(n.Pos(), "time.%s in the wire layer: the round barrier must be event-driven; annotate deadline-arming reads with //lint:allow wiredeterminism", n.Sel.Name)
				}
			}
			return true
		})
	}
}
