package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// consumed by Perfetto and chrome://tracing).
type chromeEvent struct {
	Name string           `json:"name"`
	Ph   string           `json:"ph"`
	Ts   int64            `json:"ts"`
	Dur  int64            `json:"dur,omitempty"`
	Pid  int32            `json:"pid"`
	Tid  int32            `json:"tid"`
	S    string           `json:"s,omitempty"`
	Args map[string]int64 `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// usPerRound maps simulation rounds onto the trace's microsecond axis:
// one round renders as one millisecond, so Perfetto's time ruler reads
// directly as rounds.
const usPerRound = 1000

// WriteChromeTrace converts an event stream into Chrome trace-event JSON
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. The
// mapping: processes (pid) are Tracks (reduction parties, subnetworks),
// threads (tid) are nodes, and the time axis is rounds (1 round = 1ms).
// PhaseEnter events become spans lasting until the same node's next
// phase boundary; decides, lock transitions, spoil marks, and custom
// events become instants; RoundEnd events become counter samples of
// senders and bits per round. Output is deterministic: events are sorted
// by (ts, pid, tid, name) after the metadata block.
func WriteChromeTrace(w io.Writer, events []Event) error {
	var out []chromeEvent
	maxRound := int32(1)
	for _, ev := range events {
		if ev.Round > maxRound {
			maxRound = ev.Round
		}
	}

	// Phase spans: group boundaries per (track, node) by sorting, then
	// close each span at the next boundary of the same node.
	var phases []Event
	for _, ev := range events {
		if ev.Kind == KindPhaseEnter {
			phases = append(phases, ev)
		}
	}
	sort.SliceStable(phases, func(i, j int) bool {
		a, b := phases[i], phases[j]
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Round < b.Round
	})
	for i, ev := range phases {
		end := maxRound + 1
		if i+1 < len(phases) && phases[i+1].Track == ev.Track && phases[i+1].Node == ev.Node {
			end = phases[i+1].Round
		}
		name := ev.Name.String()
		if name == "" {
			name = "phase"
		}
		out = append(out, chromeEvent{
			Name: name,
			Ph:   "X",
			Ts:   int64(ev.Round) * usPerRound,
			Dur:  int64(end-ev.Round) * usPerRound,
			Pid:  ev.Track,
			Tid:  ev.Node,
			Args: map[string]int64{"phase": ev.A, "subphase": ev.B},
		})
	}

	for _, ev := range events {
		switch ev.Kind {
		case KindDecide, KindLockAcquire, KindLockRollback, KindSpoilMark, KindFault, KindCustom:
			name := ev.Name.String()
			if name == "" {
				name = ev.Kind.String()
			}
			out = append(out, chromeEvent{
				Name: name,
				Ph:   "i",
				Ts:   int64(ev.Round) * usPerRound,
				Pid:  ev.Track,
				Tid:  ev.Node,
				S:    "t",
				Args: map[string]int64{"a": ev.A, "b": ev.B},
			})
		case KindRoundEnd:
			out = append(out, chromeEvent{
				Name: "round_totals",
				Ph:   "C",
				Ts:   int64(ev.Round) * usPerRound,
				Pid:  ev.Track,
				Args: map[string]int64{"senders": ev.A, "bits": ev.B},
			})
		}
	}

	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		return a.Name < b.Name
	})

	// Metadata: name each track process and node thread, derived from
	// the sorted event list so the block itself is deterministic.
	var meta []chromeEvent
	seenPid := int32(-1)
	type pidTid struct{ pid, tid int32 }
	lastThread := pidTid{-1, -1}
	for _, ev := range out {
		if ev.Pid != seenPid {
			seenPid = ev.Pid
			meta = append(meta, chromeEvent{
				Name: "process_name", Ph: "M", Pid: ev.Pid,
				Args: map[string]int64{"track": int64(ev.Pid)},
			})
		}
		if (pidTid{ev.Pid, ev.Tid}) != lastThread {
			lastThread = pidTid{ev.Pid, ev.Tid}
			meta = append(meta, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: ev.Pid, Tid: ev.Tid,
				Args: map[string]int64{"node": int64(ev.Tid)},
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{
		TraceEvents:     append(meta, out...),
		DisplayTimeUnit: "ms",
	})
}
