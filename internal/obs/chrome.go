package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// consumed by Perfetto and chrome://tracing).
type chromeEvent struct {
	Name string           `json:"name"`
	Ph   string           `json:"ph"`
	Ts   int64            `json:"ts"`
	Dur  int64            `json:"dur,omitempty"`
	Pid  int32            `json:"pid"`
	Tid  int32            `json:"tid"`
	S    string           `json:"s,omitempty"`
	Args map[string]int64 `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// usPerRound maps simulation rounds onto the trace's microsecond axis:
// one round renders as one millisecond, so Perfetto's time ruler reads
// directly as rounds.
const usPerRound = 1000

// WriteChromeTrace converts an event stream into Chrome trace-event JSON
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. The
// mapping: processes (pid) are Tracks (reduction parties, subnetworks),
// threads (tid) are nodes, and the time axis is rounds (1 round = 1ms).
// PhaseEnter events become spans lasting until the same node's next
// phase boundary; SpanBegin/SpanEnd pairs (matched innermost-first by
// (track, node, name) lane) become complete "X" duration slices, with
// unclosed begins running to the end of the trace; decides, lock
// transitions, spoil marks, frontier-less customs become instants;
// RoundEnd events become counter samples of senders and bits per round
// and Frontier events counter samples of flood progress. Output is
// deterministic: events are sorted by (ts, pid, tid, name) after the
// metadata block.
func WriteChromeTrace(w io.Writer, events []Event) error {
	var out []chromeEvent
	maxRound := int32(1)
	for _, ev := range events {
		if ev.Round > maxRound {
			maxRound = ev.Round
		}
	}

	// Phase spans: group boundaries per (track, node) by sorting, then
	// close each span at the next boundary of the same node.
	var phases []Event
	for _, ev := range events {
		if ev.Kind == KindPhaseEnter {
			phases = append(phases, ev)
		}
	}
	sort.SliceStable(phases, func(i, j int) bool {
		a, b := phases[i], phases[j]
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Round < b.Round
	})
	for i, ev := range phases {
		end := maxRound + 1
		if i+1 < len(phases) && phases[i+1].Track == ev.Track && phases[i+1].Node == ev.Node {
			end = phases[i+1].Round
		}
		name := ev.Name.String()
		if name == "" {
			name = "phase"
		}
		out = append(out, chromeEvent{
			Name: name,
			Ph:   "X",
			Ts:   int64(ev.Round) * usPerRound,
			Dur:  int64(end-ev.Round) * usPerRound,
			Pid:  ev.Track,
			Tid:  ev.Node,
			Args: map[string]int64{"phase": ev.A, "subphase": ev.B},
		})
	}

	// Explicit spans: match SpanBegin/SpanEnd innermost-first per
	// (track, node, name) lane. A begin without an end runs to the end
	// of the trace; an end without a begin renders as an instant so the
	// dangling event stays visible rather than vanishing.
	type spanLane struct {
		track, node int32
		name        Key
	}
	open := make(map[spanLane][]int) // lane -> stack of indices into events
	for i, ev := range events {
		switch ev.Kind {
		case KindSpanBegin:
			lane := spanLane{ev.Track, ev.Node, ev.Name}
			open[lane] = append(open[lane], i)
		case KindSpanEnd:
			lane := spanLane{ev.Track, ev.Node, ev.Name}
			stack := open[lane]
			if len(stack) == 0 {
				out = append(out, chromeEvent{
					Name: ev.Name.String() + " (unmatched end)",
					Ph:   "i",
					Ts:   int64(ev.Round) * usPerRound,
					Pid:  ev.Track,
					Tid:  ev.Node,
					S:    "t",
					Args: map[string]int64{"a": ev.A},
				})
				continue
			}
			begin := events[stack[len(stack)-1]]
			open[lane] = stack[:len(stack)-1]
			out = append(out, chromeEvent{
				Name: ev.Name.String(),
				Ph:   "X",
				Ts:   int64(begin.Round) * usPerRound,
				Dur:  int64(ev.Round-begin.Round) * usPerRound,
				Pid:  ev.Track,
				Tid:  ev.Node,
				Args: map[string]int64{"begin_arg": begin.A, "end_arg": ev.A},
			})
		}
	}
	// Unclosed begins, in event order (map values hold indices; we walk
	// the original slice rather than the map to stay deterministic).
	for i, ev := range events {
		if ev.Kind != KindSpanBegin {
			continue
		}
		lane := spanLane{ev.Track, ev.Node, ev.Name}
		still := false
		for _, idx := range open[lane] {
			if idx == i {
				still = true
				break
			}
		}
		if !still {
			continue
		}
		out = append(out, chromeEvent{
			Name: ev.Name.String(),
			Ph:   "X",
			Ts:   int64(ev.Round) * usPerRound,
			Dur:  int64(maxRound+1-ev.Round) * usPerRound,
			Pid:  ev.Track,
			Tid:  ev.Node,
			Args: map[string]int64{"begin_arg": ev.A, "unclosed": 1},
		})
	}

	for _, ev := range events {
		switch ev.Kind {
		case KindDecide, KindLockAcquire, KindLockRollback, KindSpoilMark, KindFault, KindCustom:
			name := ev.Name.String()
			if name == "" {
				name = ev.Kind.String()
			}
			out = append(out, chromeEvent{
				Name: name,
				Ph:   "i",
				Ts:   int64(ev.Round) * usPerRound,
				Pid:  ev.Track,
				Tid:  ev.Node,
				S:    "t",
				Args: map[string]int64{"a": ev.A, "b": ev.B},
			})
		case KindRoundEnd:
			out = append(out, chromeEvent{
				Name: "round_totals",
				Ph:   "C",
				Ts:   int64(ev.Round) * usPerRound,
				Pid:  ev.Track,
				Args: map[string]int64{"senders": ev.A, "bits": ev.B},
			})
		case KindFrontier:
			out = append(out, chromeEvent{
				Name: "flood_frontier",
				Ph:   "C",
				Ts:   int64(ev.Round) * usPerRound,
				Pid:  ev.Track,
				Args: map[string]int64{"newly": ev.A, "informed": ev.B},
			})
		}
	}

	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		return a.Name < b.Name
	})

	// Metadata: name each track process and node thread, derived from
	// the sorted event list so the block itself is deterministic.
	var meta []chromeEvent
	seenPid := int32(-1)
	type pidTid struct{ pid, tid int32 }
	lastThread := pidTid{-1, -1}
	for _, ev := range out {
		if ev.Pid != seenPid {
			seenPid = ev.Pid
			meta = append(meta, chromeEvent{
				Name: "process_name", Ph: "M", Pid: ev.Pid,
				Args: map[string]int64{"track": int64(ev.Pid)},
			})
		}
		if (pidTid{ev.Pid, ev.Tid}) != lastThread {
			lastThread = pidTid{ev.Pid, ev.Tid}
			meta = append(meta, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: ev.Pid, Tid: ev.Tid,
				Args: map[string]int64{"node": int64(ev.Tid)},
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{
		TraceEvents:     append(meta, out...),
		DisplayTimeUnit: "ms",
	})
}
