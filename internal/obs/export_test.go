package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func sampleEvents() []Event {
	return []Event{
		{Kind: KindRoundStart, Round: 1},
		{Kind: KindPhaseEnter, Round: 1, Node: 0, Track: 0, A: 1, B: 0, Name: Intern("spread")},
		{Kind: KindSend, Round: 1, Node: 2, A: 64},
		{Kind: KindLockAcquire, Round: 2, Node: 3, A: 7, B: 1},
		{Kind: KindPhaseEnter, Round: 3, Node: 0, Track: 0, A: 1, B: 1, Name: Intern("count1")},
		{Kind: KindSpoilMark, Round: 3, Node: 5, Track: 1},
		{Kind: KindLockRollback, Round: 4, Node: 3, A: 7},
		{Kind: KindDecide, Round: 5, Node: 3, A: 7},
		{Kind: KindRoundEnd, Round: 5, A: 4, B: 256},
		{Kind: KindCustom, Round: 5, Node: 3, Name: Intern("leader_declared")},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, back) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, events)
	}
}

func TestJSONLDeterministic(t *testing.T) {
	events := sampleEvents()
	var a, b bytes.Buffer
	if err := WriteJSONL(&a, events); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&b, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two encodes of the same events differ")
	}
}

func TestJSONLRejectsUnknownKind(t *testing.T) {
	_, err := ReadJSONL(bytes.NewReader([]byte(`{"kind":"warp_drive","round":1}` + "\n")))
	if err == nil {
		t.Fatal("unknown kind must be an error")
	}
}

func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("engine_bits_total").Add(128)
	r.Gauge("leader_phase").Set(3)
	h := r.Histogram("phase_len_rounds", []int64{1, 2, 4})
	for _, v := range []int64{1, 3, 9} {
		h.Observe(v)
	}
	return r
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMetricsText(&buf, goldenRegistry()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden (go test ./internal/obs -run Golden -update to refresh):\n%s", buf.String())
	}
}

func TestChromeTraceSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("exporter output is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("no trace events emitted")
	}
	phases, instants, counters, meta := 0, 0, 0, 0
	for i, ev := range trace.TraceEvents {
		name, _ := ev["name"].(string)
		ph, _ := ev["ph"].(string)
		if name == "" || ph == "" {
			t.Fatalf("event %d missing name/ph: %v", i, ev)
		}
		switch ph {
		case "X":
			phases++
			if dur, _ := ev["dur"].(float64); dur <= 0 {
				t.Fatalf("span %q has non-positive dur: %v", name, ev)
			}
		case "i":
			instants++
		case "C":
			counters++
		case "M":
			meta++
			if counters+instants+phases > 0 {
				t.Fatal("metadata events must precede data events")
			}
		default:
			t.Fatalf("unexpected phase type %q", ph)
		}
	}
	if phases != 2 || counters != 1 || instants != 5 || meta == 0 {
		t.Fatalf("event mix X=%d i=%d C=%d M=%d, want 2/5/1/>0", phases, instants, counters, meta)
	}

	var again bytes.Buffer
	if err := WriteChromeTrace(&again, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("two exports of the same events differ")
	}
}
