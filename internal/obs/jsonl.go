package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// jsonEvent is the JSONL wire form of an Event. Kinds and names travel
// as strings so logs are self-describing and mergeable across processes
// (interned Key values are process-local).
type jsonEvent struct {
	Kind  string `json:"kind"`
	Round int32  `json:"round"`
	Node  int32  `json:"node,omitempty"`
	Track int32  `json:"track,omitempty"`
	A     int64  `json:"a,omitempty"`
	B     int64  `json:"b,omitempty"`
	Name  string `json:"name,omitempty"`
}

// WriteJSONL writes events as one JSON object per line. The encoding is
// deterministic: fixed field order, zero-valued optional fields omitted.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, ev := range events {
		data, err := json.Marshal(jsonEvent{
			Kind:  ev.Kind.String(),
			Round: ev.Round,
			Node:  ev.Node,
			Track: ev.Track,
			A:     ev.A,
			B:     ev.B,
			Name:  ev.Name.String(),
		})
		if err != nil {
			return err
		}
		if _, err := bw.Write(data); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL decodes a stream written by WriteJSONL (blank lines are
// skipped, unknown kinds are an error). Names are re-interned, so
// WriteJSONL → ReadJSONL round-trips to equal Event values in-process.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var je jsonEvent
		if err := json.Unmarshal(raw, &je); err != nil {
			return nil, fmt.Errorf("obs: line %d: %v", line, err)
		}
		kind, ok := KindFromString(je.Kind)
		if !ok {
			return nil, fmt.Errorf("obs: line %d: unknown event kind %q", line, je.Kind)
		}
		out = append(out, Event{
			Kind:  kind,
			Round: je.Round,
			Node:  je.Node,
			Track: je.Track,
			A:     je.A,
			B:     je.B,
			Name:  Intern(je.Name),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
