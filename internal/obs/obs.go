// Package obs is the repository's observability layer: a typed event
// stream and a metrics registry designed around two hard constraints of
// the simulation stack.
//
// Zero overhead when off. Every instrumentation site is guarded by a nil
// check on a Sink or metric handle, events are fixed-size value structs
// (no heap pointers), and the Ring sink stores them into a preallocated
// buffer — so the engine's steady-state round loop stays allocation-free
// with observability disabled, and allocation-bounded with it enabled
// (pinned by internal/dynet's alloc regression tests).
//
// Determinism. Observability output is part of an execution's artifact:
// two runs from the same seed must emit byte-identical event logs and
// metric expositions at any sweep worker count. The package therefore
// never iterates maps (enforced by dynlint's obsdeterminism rule),
// timestamps nothing with the wall clock (rounds are the only clock),
// and exports registries in sorted name order.
//
// The event vocabulary follows the paper's own progress measures: rounds
// and per-round sender/bit counts (the CONGEST accounting of Section 2),
// the phase/lock state machine of the Theorem 8 LEADERELECT protocol,
// and the spoiled-node schedule of Lemmas 3-4 that drives the two-party
// reduction. Exporters turn captured streams into JSONL logs, a
// Prometheus-style text exposition, and Chrome trace-event JSON that
// loads in Perfetto (tracks are nodes, spans are protocol phases).
package obs

import "sync"

// Kind is the type tag of an Event.
type Kind uint8

// Event kinds. KindCustom events are distinguished by their interned
// Name; all other kinds have a fixed field layout documented on Event.
const (
	// KindRoundStart marks the beginning of engine round Round.
	KindRoundStart Kind = iota
	// KindRoundEnd closes a round; A = sender count, B = payload bits.
	KindRoundEnd
	// KindSend records one sent message; Node = sender, A = payload bits.
	KindSend
	// KindDecide records a node's first decided output; A = the output.
	KindDecide
	// KindPhaseEnter records a protocol phase boundary; A = phase,
	// B = subphase index, Name = the subphase label.
	KindPhaseEnter
	// KindLockAcquire records a node accepting a lock; A = the lock key.
	KindLockAcquire
	// KindLockRollback records a lock being voided; A = the lock key.
	KindLockRollback
	// KindSpoilMark records the round from whose beginning Node is
	// spoiled for the party identified by Track (Lemmas 3-4).
	KindSpoilMark
	// KindFault records one injected fault (internal/faults); Name is
	// the fault name ("drop", "dup", "corrupt", "crash", "rejoin",
	// "edge_cut"), Node the affected node (the receiver for delivery
	// faults, the crashed node, or the lower edge endpoint), A the peer
	// (sender id or upper endpoint; -1 when unused), and B the detail
	// (the flipped bit index for "corrupt"; 0 otherwise).
	KindFault
	// KindSpanBegin opens a logical span named by Name on lane
	// (Track, Node); Round is the span's position on its clock (engine
	// rounds, sweep cell indices, or serve milliseconds — the producer
	// picks the clock, see Span), and A carries a producer-defined
	// argument (-1 when unused).
	KindSpanBegin
	// KindSpanEnd closes the innermost open span with the same
	// (Track, Node, Name) lane as its KindSpanBegin; A carries a
	// producer-defined result argument (-1 when unused).
	KindSpanEnd
	// KindFrontier is a flood-progress sample; A = nodes newly informed
	// this round, B = total informed after the round.
	KindFrontier
	// KindCustom is a protocol-defined event named by Name.
	KindCustom

	numKinds
)

var kindNames = [numKinds]string{
	"round_start",
	"round_end",
	"send",
	"decide",
	"phase_enter",
	"lock_acquire",
	"lock_rollback",
	"spoil_mark",
	"fault",
	"span_begin",
	"span_end",
	"frontier",
	"custom",
}

// String returns the stable wire name of the kind ("phase_enter", ...).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindFromString inverts Kind.String; ok is false for unknown names.
func KindFromString(s string) (Kind, bool) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), true
		}
	}
	return 0, false
}

// Event is one observation. It is a fixed-size value with no heap
// pointers, so emitting one costs no allocation and sinks may store
// events by plain assignment. Field meaning per kind is documented on
// the Kind constants; Track is a secondary grouping id (a reduction
// party, a subnetwork, ...) and 0 when unused.
type Event struct {
	Kind  Kind
	Round int32
	Node  int32
	Track int32
	A, B  int64
	Name  Key
}

// Sink receives events. Emit is called from the goroutine driving the
// simulation; implementations need not be safe for concurrent use (the
// engine's own emissions are always sequential, and instrumented
// protocol runs use Workers=1 so event order is deterministic).
type Sink interface {
	Emit(Event)
}

// Key is an interned event/metric name. The zero Key is the empty name.
// Numeric key values depend on interning order and are process-local;
// exporters always resolve them back to strings.
type Key int32

// interner is the process-global name table. It only ever appends, and
// lookups never iterate the map, so concurrent interning from parallel
// sweep cells stays deterministic in everything observable (the names).
var interner = struct {
	sync.Mutex
	ids   map[string]Key
	names []string
}{
	ids:   map[string]Key{"": 0},
	names: []string{""},
}

// Intern returns the stable in-process Key for name, creating it on
// first use. Interning is cheap but takes a lock; instrumentation sites
// should intern once (package init or construction time), not per event.
func Intern(name string) Key {
	interner.Lock()
	defer interner.Unlock()
	if k, ok := interner.ids[name]; ok {
		return k
	}
	k := Key(len(interner.names))
	interner.names = append(interner.names, name)
	interner.ids[name] = k
	return k
}

// String resolves the interned name ("" for the zero Key or unknown ids).
func (k Key) String() string {
	interner.Lock()
	defer interner.Unlock()
	if k >= 0 && int(k) < len(interner.names) {
		return interner.names[k]
	}
	return ""
}
