package obs

import (
	"reflect"
	"testing"
)

func TestKindStringRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		s := k.String()
		if s == "" {
			t.Fatalf("kind %d has no name", k)
		}
		back, ok := KindFromString(s)
		if !ok || back != k {
			t.Fatalf("KindFromString(%q) = %v,%v want %v", s, back, ok, k)
		}
	}
	if _, ok := KindFromString("no_such_kind"); ok {
		t.Fatal("KindFromString accepted an unknown kind")
	}
}

func TestInternStable(t *testing.T) {
	a := Intern("spread")
	b := Intern("count1")
	if a == b {
		t.Fatal("distinct names interned to the same key")
	}
	if Intern("spread") != a {
		t.Fatal("re-interning is not stable")
	}
	if a.String() != "spread" || b.String() != "count1" {
		t.Fatalf("resolve mismatch: %q %q", a.String(), b.String())
	}
	if Intern("") != 0 || Key(0).String() != "" {
		t.Fatal("empty name must be key 0")
	}
}

func TestRegistryCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rounds_total")
	c.Add(3)
	r.Counter("rounds_total").Add(2)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d want 5", got)
	}
	g := r.Gauge("phase")
	g.Set(7)
	g.Set(4)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d want 4", got)
	}
	h := r.Histogram("phase_len", []int64{1, 4, 16})
	for _, v := range []int64{0, 1, 2, 5, 100} {
		h.Observe(v)
	}
	// buckets: <=1: {0,1}, <=4: {2}, <=16: {5}, +Inf: {100}
	want := []int64{2, 1, 1, 1}
	if !reflect.DeepEqual(h.counts, want) {
		t.Fatalf("buckets = %v want %v", h.counts, want)
	}
	if h.sum != 108 || h.n != 5 {
		t.Fatalf("sum,n = %d,%d want 108,5", h.sum, h.n)
	}
}

func TestHistogramAddBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_ms", []int64{1, 4, 16})
	h.Observe(2)
	// Fold externally accumulated buckets: one <=1, one +Inf, sum 101, n 2.
	h.AddBuckets([]int64{1, 0, 0, 1}, 101, 2)
	if want := []int64{1, 1, 0, 1}; !reflect.DeepEqual(h.counts, want) {
		t.Fatalf("buckets = %v want %v", h.counts, want)
	}
	if h.sum != 103 || h.n != 3 {
		t.Fatalf("sum,n = %d,%d want 103,3", h.sum, h.n)
	}
	// Short count slices fold positionally; nil handles no-op.
	h.AddBuckets([]int64{2}, 0, 0)
	if h.counts[0] != 3 {
		t.Fatalf("short fold: counts[0] = %d want 3", h.counts[0])
	}
	var nilH *Histogram
	nilH.AddBuckets([]int64{1}, 1, 1)
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(1)
	r.Gauge("y").Set(2)
	r.Histogram("z", []int64{1}).Observe(3)
	r.Merge(NewRegistry())
	NewRegistry().Merge(r)
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	if r.Counter("x").Value() != 0 || r.Gauge("y").Value() != 0 {
		t.Fatal("nil handles must read zero")
	}
}

func TestRegistryMergeAndSnapshotDeterminism(t *testing.T) {
	bounds := []int64{2, 8}
	build := func(order []string) *Registry {
		r := NewRegistry()
		for _, n := range order {
			switch n {
			case "c":
				r.Counter("cells").Add(2)
			case "g":
				r.Gauge("last_phase").Set(3)
			case "h":
				r.Histogram("rounds", bounds).Observe(5)
			}
		}
		return r
	}
	// Same updates, different creation interleavings.
	a := build([]string{"c", "g", "h"})
	b := build([]string{"h", "c", "g"})
	if !reflect.DeepEqual(a.Snapshot(), b.Snapshot()) {
		t.Fatal("snapshot depends on creation order")
	}

	m1 := NewRegistry()
	m1.Merge(a)
	m1.Merge(b)
	m2 := NewRegistry()
	m2.Merge(b)
	m2.Merge(a)
	if !reflect.DeepEqual(m1.Snapshot(), m2.Snapshot()) {
		t.Fatal("merged snapshot depends on merge order")
	}
	sn := m1.Snapshot()
	if len(sn) != 3 {
		t.Fatalf("snapshot len = %d want 3", len(sn))
	}
	if sn[0].Name != "cells" || sn[0].Value != 4 {
		t.Fatalf("merged counter = %+v", sn[0])
	}
	if sn[2].Name != "rounds" || sn[2].Count != 2 || sn[2].Sum != 10 {
		t.Fatalf("merged histogram = %+v", sn[2])
	}
}

func TestRingWrapAndOrder(t *testing.T) {
	r := NewRing(3)
	for i := int32(1); i <= 5; i++ {
		r.Emit(Event{Kind: KindRoundStart, Round: i})
	}
	if r.Len() != 3 || r.Dropped() != 2 {
		t.Fatalf("len,dropped = %d,%d want 3,2", r.Len(), r.Dropped())
	}
	got := r.Events()
	rounds := []int32{got[0].Round, got[1].Round, got[2].Round}
	if !reflect.DeepEqual(rounds, []int32{3, 4, 5}) {
		t.Fatalf("retained rounds = %v want [3 4 5]", rounds)
	}
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Fatal("reset did not empty the ring")
	}
	r.Emit(Event{Kind: KindDecide, Round: 9})
	if ev := r.Events(); len(ev) != 1 || ev[0].Round != 9 {
		t.Fatalf("post-reset events = %v", ev)
	}
}

func TestRingEmitZeroAlloc(t *testing.T) {
	r := NewRing(16)
	var s Sink = r // emit through the interface, as the engine does
	ev := Event{Kind: KindSend, Round: 1, Node: 2, A: 64, Name: Intern("x")}
	allocs := testing.AllocsPerRun(200, func() {
		s.Emit(ev)
	})
	if allocs != 0 {
		t.Fatalf("Ring.Emit allocates %.1f allocs/op, want 0", allocs)
	}
}
