package obs

import (
	"bufio"
	"fmt"
	"io"
)

// WriteMetricsText writes the registry in the Prometheus text exposition
// format (0.0.4): a # TYPE line per metric, histogram buckets with
// cumulative le labels plus _sum and _count series. Output is sorted by
// metric name (Snapshot order), so the exposition is byte-identical for
// registries that recorded the same updates.
func WriteMetricsText(w io.Writer, r *Registry) error {
	bw := bufio.NewWriter(w)
	for _, p := range r.Snapshot() {
		switch p.Type {
		case "counter", "gauge":
			fmt.Fprintf(bw, "# TYPE %s %s\n%s %d\n", p.Name, p.Type, p.Name, p.Value)
		case "histogram":
			fmt.Fprintf(bw, "# TYPE %s histogram\n", p.Name)
			cum := int64(0)
			for i, b := range p.Bounds {
				cum += p.Counts[i]
				fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", p.Name, b, cum)
			}
			cum += p.Counts[len(p.Counts)-1]
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", p.Name, cum)
			fmt.Fprintf(bw, "%s_sum %d\n", p.Name, p.Sum)
			fmt.Fprintf(bw, "%s_count %d\n", p.Name, p.Count)
		}
	}
	return bw.Flush()
}
