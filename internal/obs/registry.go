package obs

import "sort"

// Registry is a metrics registry: counters, gauges, and fixed-bucket
// histograms addressed by name. It is nil-safe end to end — methods on a
// nil *Registry return nil handles and nil handles no-op — so call sites
// can stay unconditional while the no-observer path does no work.
//
// A Registry and its handles are not safe for concurrent use; the
// intended pattern (used by the sweep harness) is one registry per
// goroutine, merged afterwards in a deterministic order. Metric creation
// order is retained so Merge never iterates a map, and Snapshot sorts by
// name, making roll-ups bit-identical at every worker count.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	order    []metricRef // creation order; the no-map-iteration walk
}

type metricRef struct {
	name string
	kind string // "counter" | "gauge" | "histogram"
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter is a monotone sum.
type Counter struct{ n int64 }

// Add increments the counter; no-op on a nil handle.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.n += d
	}
}

// Value returns the current sum (0 for a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n
}

// Gauge is a last-write-wins level.
type Gauge struct{ v int64 }

// Set stores v; no-op on a nil handle.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the last stored value (0 for a nil handle).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-bucket histogram over int64 observations. Bounds
// are inclusive upper bucket edges in ascending order; an implicit +Inf
// bucket catches the rest.
type Histogram struct {
	bounds []int64
	counts []int64 // len(bounds)+1; last is the +Inf bucket
	sum    int64
	n      int64
}

// Observe records v; no-op on a nil handle.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
}

// AddBuckets folds externally accumulated bucket counts into h: counts
// carries one count per bound plus the trailing +Inf bucket (extra
// entries are ignored), and sum/n aggregate the underlying observations.
// Layers that accumulate under their own synchronization — the serving
// layer's latency histogram guards its buckets with a mutex because a
// Registry is single-goroutine by contract — use it to materialize a
// Registry snapshot without replaying observations. No-op on nil.
func (h *Histogram) AddBuckets(counts []int64, sum, n int64) {
	if h == nil {
		return
	}
	m := len(h.counts)
	if len(counts) < m {
		m = len(counts)
	}
	for i := 0; i < m; i++ {
		h.counts[i] += counts[i]
	}
	h.sum += sum
	h.n += n
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{}
	r.counters[name] = c
	r.order = append(r.order, metricRef{name, "counter"})
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{}
	r.gauges[name] = g
	r.order = append(r.order, metricRef{name, "gauge"})
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending bucket bounds on first use (later bounds are ignored; one
// name means one bucket layout).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
	r.hists[name] = h
	r.order = append(r.order, metricRef{name, "histogram"})
	return h
}

// Merge folds other into r: counters and histogram buckets sum, gauges
// take other's value (last writer wins — merge in a deterministic order).
// Histograms merge positionally; one metric name must keep one bucket
// layout across registries, which all in-repo call sites guarantee by
// using shared bound slices. A nil receiver or argument no-ops.
func (r *Registry) Merge(other *Registry) {
	if r == nil || other == nil {
		return
	}
	for _, ref := range other.order {
		switch ref.kind {
		case "counter":
			r.Counter(ref.name).Add(other.counters[ref.name].n)
		case "gauge":
			r.Gauge(ref.name).Set(other.gauges[ref.name].v)
		case "histogram":
			oh := other.hists[ref.name]
			h := r.Histogram(ref.name, oh.bounds)
			n := len(h.counts)
			if len(oh.counts) < n {
				n = len(oh.counts)
			}
			for i := 0; i < n; i++ {
				h.counts[i] += oh.counts[i]
			}
			h.sum += oh.sum
			h.n += oh.n
		}
	}
}

// MetricPoint is one exported metric in a Snapshot.
type MetricPoint struct {
	Name string
	Type string // "counter" | "gauge" | "histogram"
	// Value holds the counter sum or gauge level.
	Value int64
	// Histogram fields: Bounds are bucket upper edges, Counts has one
	// extra trailing +Inf bucket, Sum/Count aggregate the observations.
	Bounds []int64
	Counts []int64
	Sum    int64
	Count  int64
}

// Snapshot exports every metric sorted by name (ties broken by type), so
// two registries that saw the same updates export identically whatever
// the creation interleaving was. A nil registry returns nil.
func (r *Registry) Snapshot() []MetricPoint {
	if r == nil {
		return nil
	}
	out := make([]MetricPoint, 0, len(r.order))
	for _, ref := range r.order {
		p := MetricPoint{Name: ref.name, Type: ref.kind}
		switch ref.kind {
		case "counter":
			p.Value = r.counters[ref.name].n
		case "gauge":
			p.Value = r.gauges[ref.name].v
		case "histogram":
			h := r.hists[ref.name]
			p.Bounds = append([]int64(nil), h.bounds...)
			p.Counts = append([]int64(nil), h.counts...)
			p.Sum, p.Count = h.sum, h.n
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Type < out[j].Type
	})
	return out
}
