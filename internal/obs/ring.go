package obs

// Ring is the capture sink for instrumented runs: a fixed-capacity ring
// buffer of events. Emit is allocation-free — the buffer is laid out
// once at construction — so attaching a Ring to the engine keeps the
// round loop's allocation profile flat (the alloc regression tests in
// internal/dynet pin this). When the ring wraps, the oldest events are
// overwritten and counted in Dropped.
//
// A Ring is not safe for concurrent use; instrumented runs drive the
// engine with Workers=1 (see Sink).
type Ring struct {
	buf   []Event
	total int // events ever emitted
}

// NewRing returns a ring holding up to capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Emit implements Sink.
func (r *Ring) Emit(ev Event) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.total%cap(r.buf)] = ev
	}
	r.total++
}

// Len reports how many events the ring currently holds.
func (r *Ring) Len() int { return len(r.buf) }

// Dropped reports how many events were overwritten after the ring filled.
func (r *Ring) Dropped() int { return r.total - len(r.buf) }

// Events returns the retained events in emission order (oldest first).
// The returned slice is freshly allocated; the ring can keep recording.
func (r *Ring) Events() []Event {
	out := make([]Event, len(r.buf))
	if r.total <= cap(r.buf) {
		copy(out, r.buf)
		return out
	}
	head := r.total % cap(r.buf) // index of the oldest retained event
	n := copy(out, r.buf[head:])
	copy(out[n:], r.buf[:head])
	return out
}

// Reset empties the ring for reuse, keeping its buffer.
func (r *Ring) Reset() {
	r.buf = r.buf[:0]
	r.total = 0
}
