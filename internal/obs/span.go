package obs

// Span is a lightweight handle for a begin/end pair of events on a
// logical clock. It is a plain value (no heap pointers), so opening and
// closing a span costs no allocation; a Span with a nil sink is inert,
// which lets instrumentation sites call BeginSpan unconditionally.
//
// Spans carry no wall-clock time. The Round field of the emitted events
// is whatever clock the producer runs on: the engine uses protocol
// rounds, harness sweeps use cell indices, and the serve layer uses
// milliseconds since server start (the only layer allowed to read the
// wall clock, under its lint-allow framework). The Chrome-trace exporter
// renders the pair as a duration slice on lane (Track, Node), so one
// Perfetto load shows queue-wait, execution, and per-round activity on
// their respective tracks.
//
// Track-lane convention used across the repo: 0 = engine runs,
// 1 = harness sweep cells, 2 = serve jobs.
type Span struct {
	sink  Sink
	name  Key
	track int32
	node  int32
}

// BeginSpan emits a KindSpanBegin event at position t on lane
// (track, node) and returns the handle that closes it. arg is a
// producer-defined argument carried on the begin event (-1 when unused).
// A nil sink yields an inert span; both calls become no-ops.
func BeginSpan(sink Sink, name Key, track, node, t int32, arg int64) Span {
	if sink != nil {
		sink.Emit(Event{Kind: KindSpanBegin, Round: t, Node: node, Track: track, A: arg, Name: name})
	}
	return Span{sink: sink, name: name, track: track, node: node}
}

// End emits the matching KindSpanEnd event at position t. arg is a
// producer-defined result argument (-1 when unused). End on an inert
// span is a no-op.
func (s Span) End(t int32, arg int64) {
	if s.sink != nil {
		s.sink.Emit(Event{Kind: KindSpanEnd, Round: t, Node: s.node, Track: s.track, A: arg, Name: s.name})
	}
}
