package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestSpanEmitsBeginEnd(t *testing.T) {
	r := NewRing(8)
	name := Intern("execute")
	sp := BeginSpan(r, name, 2, 7, 10, 42)
	sp.End(15, 99)
	ev := r.Events()
	if len(ev) != 2 {
		t.Fatalf("got %d events, want 2", len(ev))
	}
	begin, end := ev[0], ev[1]
	if begin.Kind != KindSpanBegin || begin.Round != 10 || begin.Track != 2 ||
		begin.Node != 7 || begin.A != 42 || begin.Name != name {
		t.Fatalf("begin event = %+v", begin)
	}
	if end.Kind != KindSpanEnd || end.Round != 15 || end.Track != 2 ||
		end.Node != 7 || end.A != 99 || end.Name != name {
		t.Fatalf("end event = %+v", end)
	}
}

func TestSpanNilSinkInert(t *testing.T) {
	sp := BeginSpan(nil, Intern("x"), 0, 0, 0, 0)
	sp.End(1, 0) // must not panic
	var zero Span
	zero.End(2, 0)
}

func TestSpanZeroAlloc(t *testing.T) {
	r := NewRing(4)
	name := Intern("hot_span")
	allocs := testing.AllocsPerRun(200, func() {
		sp := BeginSpan(r, name, 0, 0, 1, -1)
		sp.End(2, -1)
	})
	if allocs != 0 {
		t.Fatalf("span begin/end allocates %.1f allocs/op, want 0", allocs)
	}
}

// decodeTrace parses exporter output into the loosely-typed event list
// used by the schema assertions below.
func decodeTrace(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("exporter output is not valid JSON: %v", err)
	}
	return trace.TraceEvents
}

func TestChromeTraceSpans(t *testing.T) {
	queue := Intern("queue_wait")
	exec := Intern("execute")
	events := []Event{
		{Kind: KindSpanBegin, Round: 0, Track: 2, Node: 1, A: -1, Name: queue},
		{Kind: KindSpanEnd, Round: 3, Track: 2, Node: 1, A: -1, Name: queue},
		{Kind: KindSpanBegin, Round: 3, Track: 2, Node: 1, A: 5, Name: exec},
		{Kind: KindSpanEnd, Round: 9, Track: 2, Node: 1, A: 0, Name: exec},
		// Nested same-name spans on one lane close innermost-first.
		{Kind: KindSpanBegin, Round: 1, Track: 0, Node: 0, A: 1, Name: exec},
		{Kind: KindSpanBegin, Round: 2, Track: 0, Node: 0, A: 2, Name: exec},
		{Kind: KindSpanEnd, Round: 4, Track: 0, Node: 0, A: 2, Name: exec},
		{Kind: KindSpanEnd, Round: 8, Track: 0, Node: 0, A: 1, Name: exec},
		// Unclosed begin and dangling end stay visible.
		{Kind: KindSpanBegin, Round: 5, Track: 1, Node: 3, A: -1, Name: queue},
		{Kind: KindSpanEnd, Round: 6, Track: 1, Node: 4, A: -1, Name: exec},
		{Kind: KindFrontier, Round: 7, Track: 0, A: 12, B: 90},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	spans, instants, counters := 0, 0, 0
	sawUnclosed, sawFrontier := false, false
	for _, ev := range decodeTrace(t, &buf) {
		name, _ := ev["name"].(string)
		switch ev["ph"] {
		case "X":
			spans++
			args, _ := ev["args"].(map[string]any)
			if _, ok := args["unclosed"]; ok {
				sawUnclosed = true
			}
		case "i":
			instants++
			if name != "execute (unmatched end)" {
				t.Fatalf("unexpected instant %q", name)
			}
		case "C":
			counters++
			if name == "flood_frontier" {
				sawFrontier = true
				args, _ := ev["args"].(map[string]any)
				if args["newly"].(float64) != 12 || args["informed"].(float64) != 90 {
					t.Fatalf("frontier args = %v", args)
				}
			}
		}
	}
	// 2 serve spans + 2 nested spans + 1 unclosed = 5 X events.
	if spans != 5 || instants != 1 || counters != 1 {
		t.Fatalf("event mix X=%d i=%d C=%d, want 5/1/1", spans, instants, counters)
	}
	if !sawUnclosed || !sawFrontier {
		t.Fatalf("unclosed=%v frontier=%v, want both true", sawUnclosed, sawFrontier)
	}

	// Nested spans: the inner (begin 2, end 4) pairs with the inner begin,
	// the outer (1, 8) with the outer — check the durations landed right.
	durByTs := map[float64]float64{}
	for _, ev := range decodeTrace(t, &buf) {
		if ev["ph"] == "X" && ev["pid"].(float64) == 0 {
			durByTs[ev["ts"].(float64)] = ev["dur"].(float64)
		}
	}
	if durByTs[1*usPerRound] != 7*usPerRound || durByTs[2*usPerRound] != 2*usPerRound {
		t.Fatalf("nested span durations = %v", durByTs)
	}

	var again bytes.Buffer
	if err := WriteChromeTrace(&again, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("two exports of the same events differ")
	}
}

func TestSpanJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{Kind: KindSpanBegin, Round: 1, Track: 2, Node: 0, A: -1, Name: Intern("execute")},
		{Kind: KindFrontier, Round: 2, A: 3, B: 4},
		{Kind: KindSpanEnd, Round: 5, Track: 2, Node: 0, A: 0, Name: Intern("execute")},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 || back[0].Kind != KindSpanBegin || back[1].Kind != KindFrontier || back[2].Kind != KindSpanEnd {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}
