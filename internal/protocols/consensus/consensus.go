// Package consensus implements the CONSENSUS problem: every node holds a
// binary input, and all nodes must decide a common value that some node
// held (termination, agreement, validity).
//
// Two protocols are provided:
//
//   - KnownD: the trivial known-diameter protocol. Nodes gossip the pair
//     (largest id seen, that node's input) for a fixed horizon of
//     Θ((D + log N) · log N) rounds and decide the accompanying value —
//     O(log N) flooding rounds, matching the paper's known-D upper bound.
//   - ViaLeader: the reduction CONSENSUS <= LEADERELECT the paper uses in
//     both directions: run the Section 7 leader-election protocol with the
//     leader's input piggybacked, and decide the elected leader's input.
//     This needs no knowledge of D, only the N' estimate of Theorem 8.
//
// Validity holds structurally: the decided value is always some node's
// input. Agreement relies on the gossip horizon (KnownD) or on leader
// uniqueness (ViaLeader), both w.h.p. on the adversary families the
// experiments run (see DESIGN.md on adaptive vs oblivious adversaries).
package consensus

import (
	"dyndiam/internal/bitio"
	"dyndiam/internal/dynet"
	"dyndiam/internal/protocols/leader"
	"dyndiam/internal/rng"
)

// Extra keys read by KnownD.
const (
	// ExtraD is the known diameter bound.
	ExtraD = "D"
	// ExtraRounds overrides the gossip horizon (default 6·(D+w)·w/4... —
	// see NewMachine; Θ((D+log N)·log N)).
	ExtraRounds = "rounds"
)

// KnownD is the trivial consensus protocol for a known diameter bound.
type KnownD struct{}

// Name implements dynet.Protocol.
func (KnownD) Name() string { return "consensus/known-d" }

// NewMachine implements dynet.Protocol.
func (KnownD) NewMachine(cfg dynet.Config) dynet.Machine {
	d := int(cfg.ExtraInt(ExtraD, int64(cfg.N-1)))
	w := bitio.WidthFor(cfg.N + 1)
	rounds := int(cfg.ExtraInt(ExtraRounds, int64(3*(d+w)*w)))
	return &knownDMachine{
		cfg:    cfg,
		rounds: rounds,
		maxID:  cfg.ID,
		val:    cfg.Input,
		coins:  cfg.Coins.Split('c', 'o', 'n'),
	}
}

type knownDMachine struct {
	cfg    dynet.Config
	rounds int
	maxID  int
	val    int64
	coins  *rng.Source
	done   bool
	out    int64
}

func (m *knownDMachine) Step(r int) (dynet.Action, dynet.Message) {
	if r >= m.rounds && !m.done {
		m.done = true
		m.out = m.val
	}
	if !m.coins.Bool() {
		return dynet.Receive, dynet.Message{}
	}
	var w bitio.Writer
	w.WriteUvarint(uint64(m.maxID))
	w.WriteUvarint(uint64(m.val))
	return dynet.Send, dynet.Message{Payload: w.Bytes(), NBits: w.Len()}
}

func (m *knownDMachine) Deliver(r int, msgs []dynet.Message) {
	for _, msg := range msgs {
		rd := bitio.NewReader(msg.Payload, msg.NBits)
		id, err1 := rd.ReadUvarint()
		val, err2 := rd.ReadUvarint()
		if err1 != nil || err2 != nil {
			continue
		}
		if int(id) > m.maxID {
			m.maxID = int(id)
			m.val = int64(val)
		}
	}
}

func (m *knownDMachine) Output() (int64, bool) {
	if m.done {
		return m.out, true
	}
	return 0, false
}

// ViaLeader is consensus through Section 7 leader election: unknown D,
// known N'. All leader.Extra* keys apply; ExtraOutputValue is forced on.
type ViaLeader struct{}

// Name implements dynet.Protocol.
func (ViaLeader) Name() string { return "consensus/via-leader" }

// NewMachine implements dynet.Protocol.
func (ViaLeader) NewMachine(cfg dynet.Config) dynet.Machine {
	extra := make(map[string]int64, len(cfg.Extra)+1)
	for k, v := range cfg.Extra { //lint:allow puritytaint map-to-map copy is order-independent
		extra[k] = v
	}
	extra[leader.ExtraOutputValue] = 1
	cfg.Extra = extra
	return leader.Protocol{}.NewMachine(cfg)
}
