package consensus

import (
	"testing"

	"dyndiam/internal/dynet"
	"dyndiam/internal/graph"
	"dyndiam/internal/rng"
)

func runConsensus(t *testing.T, p dynet.Protocol, n int, inputs []int64, adv dynet.Adversary, extra map[string]int64, seed uint64, maxRounds int) *dynet.Result {
	t.Helper()
	ms := dynet.NewMachines(p, n, inputs, seed, extra)
	e := &dynet.Engine{Machines: ms, Adv: adv, Workers: 1}
	res, err := e.Run(maxRounds)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatalf("%s did not terminate in %d rounds", p.Name(), maxRounds)
	}
	return res
}

func checkAgreementValidity(t *testing.T, inputs []int64, res *dynet.Result) {
	t.Helper()
	decided := res.Outputs[0]
	sawInput := false
	for _, in := range inputs {
		if in == decided {
			sawInput = true
		}
	}
	if !sawInput {
		t.Errorf("decided %d, which no node held (validity)", decided)
	}
	for v, out := range res.Outputs {
		if out != decided {
			t.Errorf("node %d decided %d, node 0 decided %d (agreement)", v, out, decided)
		}
	}
}

func mixedInputs(n int, src *rng.Source) []int64 {
	in := make([]int64, n)
	for v := range in {
		if src.Bool() {
			in[v] = 1
		}
	}
	return in
}

func TestKnownDAgreementOnRing(t *testing.T) {
	const n = 24
	src := rng.New(1)
	inputs := mixedInputs(n, src)
	d := graph.Ring(n).StaticDiameter()
	res := runConsensus(t, KnownD{}, n, inputs, dynet.Static(graph.Ring(n)),
		map[string]int64{ExtraD: int64(d)}, 2, 100000)
	checkAgreementValidity(t, inputs, res)
}

func TestKnownDValidityUnanimous(t *testing.T) {
	// All inputs equal: the decision must be that value.
	const n = 16
	for _, bit := range []int64{0, 1} {
		inputs := make([]int64, n)
		for v := range inputs {
			inputs[v] = bit
		}
		res := runConsensus(t, KnownD{}, n, inputs, dynet.Static(graph.Star(n)),
			map[string]int64{ExtraD: 2}, 5, 50000)
		for v, out := range res.Outputs {
			if out != bit {
				t.Errorf("bit=%d: node %d decided %d (validity violated)", bit, v, out)
			}
		}
	}
}

func TestKnownDOnDynamicTopology(t *testing.T) {
	const n = 32
	src := rng.New(44)
	inputs := mixedInputs(n, src)
	adv := dynet.AdversaryFunc(func(r int, _ []dynet.Action) *graph.Graph {
		return graph.BoundedDiameterRandom(n, 4, n, src.Split(uint64(r)))
	})
	res := runConsensus(t, KnownD{}, n, inputs, adv,
		map[string]int64{ExtraD: 8}, 6, 100000)
	checkAgreementValidity(t, inputs, res)
}

func TestKnownDTimeScalesWithD(t *testing.T) {
	// The horizon (hence termination round) is Θ((D+w)·w): compare a
	// diameter-2 star against a diameter-(n-1) line at the same N.
	const n = 32
	inputs := make([]int64, n)
	resStar := runConsensus(t, KnownD{}, n, inputs, dynet.Static(graph.Star(n)),
		map[string]int64{ExtraD: 2}, 3, 1000000)
	resLine := runConsensus(t, KnownD{}, n, inputs, dynet.Static(graph.Line(n)),
		map[string]int64{ExtraD: n - 1}, 3, 1000000)
	if resStar.Rounds >= resLine.Rounds {
		t.Errorf("star (%d rounds) not faster than line (%d rounds)", resStar.Rounds, resLine.Rounds)
	}
}

func TestViaLeaderUnknownD(t *testing.T) {
	// Consensus without any diameter knowledge, via Section 7 leader
	// election with an approximate N'.
	const n = 20
	src := rng.New(17)
	inputs := mixedInputs(n, src)
	extra := map[string]int64{
		"nprime":    int64(1.15 * n), // |N'-N|/N = 0.15 <= 1/3 - 0.1
		"cpermille": 100,
	}
	adv := dynet.AdversaryFunc(func(r int, _ []dynet.Action) *graph.Graph {
		return graph.RandomConnected(n, n, src.Split(uint64(r)))
	})
	res := runConsensus(t, ViaLeader{}, n, inputs, adv, extra, 9, 2000000)
	checkAgreementValidity(t, inputs, res)
	// The decision must specifically be the max-id node's input (the
	// elected leader is the largest id).
	if res.Outputs[0] != inputs[n-1] {
		t.Errorf("decided %d, want leader's input %d", res.Outputs[0], inputs[n-1])
	}
}

func TestViaLeaderUnanimousValidity(t *testing.T) {
	const n = 12
	for _, bit := range []int64{0, 1} {
		inputs := make([]int64, n)
		for v := range inputs {
			inputs[v] = bit
		}
		res := runConsensus(t, ViaLeader{}, n, inputs, dynet.Static(graph.Complete(n)), nil, 4, 1000000)
		for v, out := range res.Outputs {
			if out != bit {
				t.Errorf("bit=%d: node %d decided %d", bit, v, out)
			}
		}
	}
}

func BenchmarkKnownDRing(b *testing.B) {
	const n = 64
	g := graph.Ring(n)
	d := int64(g.StaticDiameter())
	for i := 0; i < b.N; i++ {
		inputs := make([]int64, n)
		inputs[0] = 1
		ms := dynet.NewMachines(KnownD{}, n, inputs, uint64(i), map[string]int64{ExtraD: d})
		e := &dynet.Engine{Machines: ms, Adv: dynet.Static(g), Workers: 1}
		res, err := e.Run(100000)
		if err != nil || !res.Done {
			b.Fatalf("res=%v err=%v", res, err)
		}
	}
}
