package consensus

import (
	"testing"

	"dyndiam/internal/dynet"
	"dyndiam/internal/graph"
)

// TestKnownDConsensusToleratesJunk: junk senders must not crash the decoder
// or wedge honest nodes; honest nodes still agree (the model is not
// Byzantine — a random payload that parses is a legal message, so the
// checked property is termination + agreement among honest nodes).
func TestKnownDConsensusToleratesJunk(t *testing.T) {
	const n = 16
	inputs := make([]int64, n)
	for v := range inputs {
		inputs[v] = int64(v % 2)
	}
	extra := map[string]int64{ExtraD: 2}
	ms := dynet.NewMachines(KnownD{}, n, inputs, 8, extra)
	cfgs := dynet.Configs(n, inputs, 8, extra)
	junk := map[int]bool{4: true, 9: true}
	dynet.WithJunk(ms, cfgs, 4, 9)

	honestDecided := func(all []dynet.Machine) bool {
		for v, m := range all {
			if junk[v] {
				continue
			}
			if _, ok := m.Output(); !ok {
				return false
			}
		}
		return true
	}
	e := &dynet.Engine{Machines: ms, Adv: dynet.Static(graph.Complete(n)), Workers: 1,
		Terminated: honestDecided}
	res, err := e.Run(100000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("honest nodes never decided amid junk senders")
	}
	var first int64 = -1
	for v, m := range ms {
		if junk[v] {
			continue
		}
		out, _ := m.Output()
		if first == -1 {
			first = out
		} else if out != first {
			t.Errorf("node %d decided %d, others %d", v, out, first)
		}
	}
}

// TestKnownDConsensusTruncatedMessages feeds a machine raw truncated bytes
// directly: the decoder must skip them without state damage.
func TestKnownDConsensusTruncatedMessages(t *testing.T) {
	m := KnownD{}.NewMachine(dynet.Config{
		N: 8, ID: 3, Input: 1,
		Coins:  dynet.Configs(8, nil, 1, nil)[3].Coins,
		Budget: dynet.Budget(8),
		Extra:  map[string]int64{ExtraD: 3},
	})
	m.Deliver(1, []dynet.Message{
		{From: 0, Payload: nil, NBits: 0},
		{From: 1, Payload: []byte{0xFF}, NBits: 3},
	})
	// The machine must still run and decide its own value eventually.
	for r := 1; r < 500; r++ {
		m.Step(r)
	}
	if out, ok := m.Output(); !ok || out != 1 {
		t.Fatalf("machine wedged after malformed input: (%d, %v)", out, ok)
	}
}
