// Package counting implements the counting machinery behind Section 7:
// exponential-minima sketches in the style of Mosk-Aoyama and Shah [18],
// used to estimate how many nodes hold a given value under O(log N)-bit
// messages, and the conservative one-sided majority test built on them.
//
// Every participating node draws, per sketch copy c in [0, k), an
// exponential variate keyed to its held value; gossip propagates, per
// (value, copy), the minimum variate seen. If W_c is the true minimum over
// the C holders of a value, then sum_c W_c ~ Gamma(k, 1/C) and
// (k-1)/sum_c W_c is a concentrated estimator of C (relative error
// ~1/sqrt(k)).
//
// Two properties matter for the paper's protocol:
//
//   - One-sided error: a node's observed per-copy minimum only ever
//     over-estimates the true minimum (gossip may not have delivered the
//     smallest variate yet), so the estimate only ever under-counts —
//     unless the k-copy concentration itself fails, which happens with
//     probability exponentially small in k. Incomplete propagation
//     (D' < D) and bandwidth dilution by other values both push the
//     estimate down, never up.
//   - The majority threshold: with an estimate N' satisfying
//     |N'-N|/N <= 1/3-c we have N <= N'/(2/3+c), so claiming a majority
//     only when the (under-counting) estimate reaches
//     tau = (1+eps)·N'/(2(2/3+c)) is sound for any concentration error
//     below eps; and when all N nodes hold the value and propagation is
//     complete, N >= N'/(4/3-c) reaches tau because
//     (1-eps)/(4/3-c) > (1+eps)/(4/3+2c) for eps < c/4 — the constant c
//     is precisely the completeness margin. See MajorityThreshold.
package counting

import (
	"math"
	"sort"

	"dyndiam/internal/bitio"
	"dyndiam/internal/rng"
)

// KFor returns the default number of sketch copies for an n-node network:
// Θ(log n) with a constant giving ~15% relative error, the accuracy the
// Section 7 thresholds are tuned for.
func KFor(n int) int {
	k := 6 * bitio.WidthFor(n+1)
	if k < 24 {
		k = 24
	}
	if k > 255 {
		k = 255 // the wire format encodes the copy index in 8 bits
	}
	return k
}

// Sketch is one node's gossip state for one counting invocation. It tracks,
// per value seen, the per-copy minima. The zero value is not usable; call
// NewSketch.
type Sketch struct {
	k    int
	mins map[int64][]float32
}

// NewSketch returns an empty sketch with k copies.
func NewSketch(k int) *Sketch {
	if k < 2 {
		//lint:allow panicfree the copy count is a protocol parameter fixed at construction, not runtime input
		panic("counting: need at least 2 copies")
	}
	return &Sketch{k: k, mins: make(map[int64][]float32)}
}

// K returns the number of copies.
func (s *Sketch) K() int { return s.k }

// row returns (creating if needed) the minima row for a value.
func (s *Sketch) row(value int64) []float32 {
	row, ok := s.mins[value]
	if !ok {
		row = make([]float32, s.k)
		for i := range row {
			row[i] = float32(math.Inf(1))
		}
		s.mins[value] = row
	}
	return row
}

// SetOwn registers this node's own contribution for the value it holds:
// one exponential draw per copy, derived deterministically from coins with
// the given invocation nonce. Draws are quantized to float32 at draw time
// so that minima are exact under gossip.
func (s *Sketch) SetOwn(value int64, nonce uint64, coins *rng.Source) {
	row := s.row(value)
	for c := 0; c < s.k; c++ {
		draw := float32(coins.Split(nonce, uint64(c)).Exp())
		if draw < row[c] {
			row[c] = draw
		}
	}
}

// Merge folds one received (value, copy, min) record into the sketch.
func (s *Sketch) Merge(value int64, copy int, min float32) {
	if copy < 0 || copy >= s.k {
		return // malformed record: drop
	}
	row := s.row(value)
	if min < row[copy] {
		row[copy] = min
	}
}

// Values returns the values present in the sketch, sorted.
func (s *Sketch) Values() []int64 {
	out := make([]int64, 0, len(s.mins))
	for v := range s.mins { //lint:allow puritytaint iteration order cannot leak: values are sorted below
		out = append(out, v) //lint:allow maporder collected values are sorted on the next line
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Estimate returns the count estimate (k-1)/sum of minima for the value.
// Missing copies (no information) make the estimate 0 — the conservative
// direction.
func (s *Sketch) Estimate(value int64) float64 {
	row, ok := s.mins[value]
	if !ok {
		return 0
	}
	var sum float64
	for _, m := range row {
		if math.IsInf(float64(m), 1) {
			return 0
		}
		sum += float64(m)
	}
	if sum <= 0 {
		return 0
	}
	return float64(s.k-1) / sum
}

// EncodeRecord writes one gossip record. Layout: value (uvarint),
// copy (8 bits), min (float32 bits). Total well under one CONGEST budget.
func EncodeRecord(w *bitio.Writer, value int64, copy int, min float32) {
	w.WriteUvarint(uint64(value))
	w.WriteUint(uint64(copy), 8)
	w.WriteUint(uint64(math.Float32bits(min)), 32)
}

// DecodeRecord reads one gossip record written by EncodeRecord.
func DecodeRecord(rd *bitio.Reader) (value int64, copy int, min float32, err error) {
	v, err := rd.ReadUvarint()
	if err != nil {
		return 0, 0, 0, err
	}
	c, err := rd.ReadUint(8)
	if err != nil {
		return 0, 0, 0, err
	}
	bits, err := rd.ReadUint(32)
	if err != nil {
		return 0, 0, 0, err
	}
	return int64(v), int(c), math.Float32frombits(uint32(bits)), nil
}

// PickRecord selects a record to gossip this round: a uniformly random
// (value, copy) cell of the sketch. With a single value in the system all
// bandwidth serves it (the completeness case of the majority test); with
// many values bandwidth dilutes, which only under-counts.
func (s *Sketch) PickRecord(src *rng.Source) (value int64, copy int, min float32, ok bool) {
	vals := s.Values()
	if len(vals) == 0 {
		return 0, 0, 0, false
	}
	value = vals[src.Intn(len(vals))]
	copy = src.Intn(s.k)
	min = s.mins[value][copy]
	if math.IsInf(float64(min), 1) {
		return 0, 0, 0, false
	}
	return value, copy, min, true
}

// MajorityThreshold returns tau: claim "value is held by a strict majority
// of the N nodes" only when the sketch estimate reaches tau, given the
// estimate N' with |N'-N|/N <= 1/3-c.
//
// Soundness: N' >= N(2/3+c), so N <= nMax := floor(N'/(2/3+c)). A claim at
// estimate >= tau = (1+eps)(nMax+1)/2 with an estimate that over-counts by
// at most a (1+eps) factor implies a true count >= (nMax+1)/2 > N/2 — a
// strict majority. Completeness: when all N nodes hold the value and
// propagation completed, the estimate is >= (1-eps)N, and
// (1-eps)N >= (1+eps)(nMax+1)/2 holds with margin Θ(cN) for eps = c/4 —
// the constant c in the paper's N'-accuracy premise is exactly this
// completeness margin, and at c = 0 the inequality fails, matching the
// Theorem 7 lower bound at accuracy exactly 1/3.
func MajorityThreshold(nPrime int, c float64) float64 {
	if c <= 0 || c > 1.0/3 {
		//lint:allow panicfree the margin is an experiment parameter; values outside (0, 1/3] contradict Theorem 8's premise
		panic("counting: majority margin c must be in (0, 1/3]")
	}
	eps := c / 4
	nMax := math.Floor(float64(nPrime) / (2.0/3 + c))
	return (1 + eps) * (nMax + 1) / 2
}

// MajorityCompletenessBound returns the estimate value that a complete,
// unanimous count must reach for the threshold test to fire, i.e.
// (1-eps)·N'/(4/3-c); it exceeds MajorityThreshold for every c > 0, which
// is the completeness margin the tests verify.
func MajorityCompletenessBound(nPrime int, c float64) float64 {
	eps := c / 4
	return (1 - eps) * float64(nPrime) / (4.0/3 - c)
}
