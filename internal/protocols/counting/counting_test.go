package counting

import (
	"math"
	"testing"
	"testing/quick"

	"dyndiam/internal/bitio"
	"dyndiam/internal/dynet"
	"dyndiam/internal/graph"
	"dyndiam/internal/rng"
)

func TestSketchEstimateConcentrates(t *testing.T) {
	// Feed a sketch the true minima of C holders and check the estimator.
	root := rng.New(11)
	for _, c := range []int{5, 50, 500} {
		k := 96
		s := NewSketch(k)
		for node := 0; node < c; node++ {
			s.SetOwn(7, 1, root.Split(uint64(node)))
		}
		got := s.Estimate(7)
		if math.Abs(got-float64(c))/float64(c) > 0.35 {
			t.Errorf("C=%d: estimate %.1f off by more than 35%%", c, got)
		}
	}
}

func TestSketchNeverOverCountsUnderPartialInfo(t *testing.T) {
	// Dropping contributions can only lower the estimate (one-sided
	// error modulo estimator concentration): estimate over a subset of
	// holders <= estimate over all holders.
	root := rng.New(5)
	k := 64
	full := NewSketch(k)
	partial := NewSketch(k)
	const c = 200
	for node := 0; node < c; node++ {
		full.SetOwn(3, 9, root.Split(uint64(node)))
		if node < c/3 {
			partial.SetOwn(3, 9, root.Split(uint64(node)))
		}
	}
	if partial.Estimate(3) > full.Estimate(3) {
		t.Errorf("partial estimate %.1f > full estimate %.1f", partial.Estimate(3), full.Estimate(3))
	}
}

func TestSketchMissingCopiesEstimateZero(t *testing.T) {
	s := NewSketch(8)
	s.Merge(4, 0, 0.5) // only one copy has information
	if got := s.Estimate(4); got != 0 {
		t.Errorf("estimate with missing copies = %v, want 0", got)
	}
	if got := s.Estimate(99); got != 0 {
		t.Errorf("estimate of unseen value = %v, want 0", got)
	}
}

func TestSketchMergeKeepsMinimum(t *testing.T) {
	s := NewSketch(4)
	s.Merge(1, 2, 0.7)
	s.Merge(1, 2, 0.9) // larger: ignored
	s.Merge(1, 2, 0.3) // smaller: kept
	v, c, m, ok := s.PickRecord(rng.New(1))
	_ = v
	_ = c
	_ = m
	_ = ok
	// Inspect through Estimate once all copies are set.
	for copy := 0; copy < 4; copy++ {
		s.Merge(1, copy, 0.3)
	}
	want := float64(3) / (4 * float64(float32(0.3)))
	if got := s.Estimate(1); math.Abs(got-want) > 1e-6 {
		t.Errorf("estimate = %v, want %v", got, want)
	}
}

func TestSketchMergeIgnoresMalformedCopy(t *testing.T) {
	s := NewSketch(4)
	s.Merge(1, -1, 0.5)
	s.Merge(1, 4, 0.5)
	if len(s.Values()) == 0 {
		return // out-of-range copies were dropped before creating a row
	}
	if got := s.Estimate(1); got != 0 {
		t.Errorf("estimate after malformed merges = %v, want 0", got)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	f := func(value int64, copyRaw uint8, min float32) bool {
		if value < 0 {
			value = -value
		}
		copy := int(copyRaw)
		var w bitio.Writer
		EncodeRecord(&w, value, copy, min)
		rd := bitio.NewReader(w.Bytes(), w.Len())
		v, c, m, err := DecodeRecord(rd)
		if err != nil {
			return false
		}
		same := v == value && c == copy
		if math.IsNaN(float64(min)) {
			return same && math.IsNaN(float64(m))
		}
		return same && m == min
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRecordFitsBudget(t *testing.T) {
	var w bitio.Writer
	EncodeRecord(&w, int64(1<<20), 255, 1e-30)
	if w.Len() > dynet.Budget(1<<20) {
		t.Errorf("record of %d bits exceeds budget %d", w.Len(), dynet.Budget(1<<20))
	}
}

func TestMajorityThresholdSoundnessAndCompleteness(t *testing.T) {
	// For every admissible (N, N', c): the threshold exceeds N/2 for the
	// largest admissible N (soundness with a perfect estimate), and a
	// complete unanimous count reaches it (completeness).
	for _, n := range []int{30, 100, 1000, 54321} {
		for _, c := range []float64{0.05, 0.1, 0.2, 1.0 / 3} {
			maxRel := 1.0/3 - c
			for _, rel := range []float64{-maxRel, 0, maxRel} {
				nPrime := int(float64(n) * (1 + rel))
				tau := MajorityThreshold(nPrime, c)
				if tau <= float64(n)/2 {
					t.Errorf("n=%d c=%.2f N'=%d: tau %.1f <= N/2 (unsound)", n, c, nPrime, tau)
				}
				if MajorityCompletenessBound(nPrime, c) <= tau {
					t.Errorf("n=%d c=%.2f N'=%d: completeness bound below tau", n, c, nPrime)
				}
				// Completeness: N·(1-eps) must reach tau.
				eps := c / 4
				if float64(n)*(1-eps) < tau {
					t.Errorf("n=%d c=%.2f N'=%d: unanimous count %.1f below tau %.1f",
						n, c, nPrime, float64(n)*(1-eps), tau)
				}
			}
		}
	}
}

func TestMajorityThresholdRejectsBadMargin(t *testing.T) {
	for _, c := range []float64{0, -0.1, 0.34} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("c=%v: no panic", c)
				}
			}()
			MajorityThreshold(100, c)
		}()
	}
}

func TestEstimateNProtocol(t *testing.T) {
	const n = 32
	d := graph.Ring(n).StaticDiameter()
	ms := dynet.NewMachines(EstimateN{}, n, nil, 7, map[string]int64{
		ExtraD: int64(d),
		ExtraK: 64,
	})
	e := &dynet.Engine{Machines: ms, Adv: dynet.Static(graph.Ring(n)), Workers: 1}
	res, err := e.Run(200000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("estimate protocol did not finish")
	}
	for v := 0; v < n; v++ {
		got := float64(res.Outputs[v])
		if math.Abs(got-n)/n > 1.0/3 {
			t.Errorf("node %d estimated N = %v, want within 1/3 of %d", v, got, n)
		}
	}
}

func TestEstimateNUnderCountsWhenHorizonTooShort(t *testing.T) {
	// With a tiny round budget (gossip cannot finish), estimates must
	// come out low or zero — never a confident overshoot beyond the
	// concentration error. This is the one-sided behavior the Section 7
	// protocol depends on when D' < D.
	const n = 48
	ms := dynet.NewMachines(EstimateN{}, n, nil, 3, map[string]int64{
		ExtraD:      1, // wrong: true diameter is n-1
		ExtraK:      48,
		ExtraRounds: 30,
	})
	e := &dynet.Engine{Machines: ms, Adv: dynet.Static(graph.Line(n)), Workers: 1}
	res, err := e.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		if float64(res.Outputs[v]) > 1.5*n {
			t.Errorf("node %d overshot: estimate %d with incomplete gossip", v, res.Outputs[v])
		}
	}
}

func TestKForScales(t *testing.T) {
	if KFor(10) < 24 || KFor(1<<20) > 255 {
		t.Errorf("KFor out of range: %d, %d", KFor(10), KFor(1<<20))
	}
	if KFor(1000) >= KFor(1000000) {
		t.Error("KFor must grow with n until the cap")
	}
}

func BenchmarkSketchMerge(b *testing.B) {
	s := NewSketch(64)
	s.SetOwn(1, 1, rng.New(1))
	for i := 0; i < b.N; i++ {
		s.Merge(1, i%64, float32(i%1000)*0.001+0.0001)
	}
}

func BenchmarkEstimate(b *testing.B) {
	s := NewSketch(64)
	root := rng.New(1)
	for node := 0; node < 100; node++ {
		s.SetOwn(1, 1, root.Split(uint64(node)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Estimate(1)
	}
}

func TestMajorityThresholdMonotoneInNPrime(t *testing.T) {
	// Property: tau grows with N' and shrinks as c grows (larger margin
	// means fewer admissible N, hence a lower bar).
	f := func(npRaw uint16, cRaw uint8) bool {
		np := int(npRaw%10000) + 10
		c := 0.02 + float64(cRaw%30)/100
		tau1 := MajorityThreshold(np, c)
		tau2 := MajorityThreshold(np+np/2, c)
		return tau2 > tau1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEstimatorErrorShrinksWithK(t *testing.T) {
	// Property over many trials: the average absolute error at k=128 is
	// below the average at k=16 for the same population.
	const c = 100
	errAt := func(k int) float64 {
		var total float64
		for trial := 0; trial < 20; trial++ {
			root := rng.New(uint64(trial) + 7)
			s := NewSketch(k)
			for node := 0; node < c; node++ {
				s.SetOwn(1, 1, root.Split(uint64(node)))
			}
			d := s.Estimate(1) - c
			if d < 0 {
				d = -d
			}
			total += d
		}
		return total / 20
	}
	if errAt(128) >= errAt(16) {
		t.Errorf("error did not shrink: k=16 err %.2f, k=128 err %.2f", errAt(16), errAt(128))
	}
}

func TestSketchValuesSorted(t *testing.T) {
	s := NewSketch(4)
	for _, v := range []int64{9, 2, 7, 2, 0} {
		s.Merge(v, 0, 0.5)
	}
	vals := s.Values()
	for i := 1; i < len(vals); i++ {
		if vals[i-1] >= vals[i] {
			t.Fatalf("Values not sorted/deduped: %v", vals)
		}
	}
	if len(vals) != 4 {
		t.Fatalf("Values = %v, want 4 distinct", vals)
	}
}
