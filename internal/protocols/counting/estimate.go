package counting

import (
	"math"

	"dyndiam/internal/bitio"
	"dyndiam/internal/dynet"
	"dyndiam/internal/rng"
)

// Extra keys read by EstimateN.
const (
	// ExtraD is the known diameter bound.
	ExtraD = "D"
	// ExtraK overrides the number of sketch copies (default KFor(N)).
	ExtraK = "K"
	// ExtraRounds overrides the gossip duration (default 4·k·(D+w)).
	ExtraRounds = "rounds"
)

// EstimateN is the known-diameter protocol for estimating the network size
// (the paper's Section 1/7 discussion: with known D, an N' accurate to any
// constant factor takes O(log N) flooding rounds; the k sketch copies give
// the log factor). Every node gossips an exponential-minima sketch over the
// shared value 0 and outputs its estimate after the fixed horizon.
type EstimateN struct{}

// Name implements dynet.Protocol.
func (EstimateN) Name() string { return "counting/estimate-n" }

// NewMachine implements dynet.Protocol.
func (EstimateN) NewMachine(cfg dynet.Config) dynet.Machine {
	k := int(cfg.ExtraInt(ExtraK, int64(KFor(cfg.N))))
	d := int(cfg.ExtraInt(ExtraD, int64(cfg.N-1)))
	w := bitio.WidthFor(cfg.N + 1)
	rounds := int(cfg.ExtraInt(ExtraRounds, int64(4*k*(d+w))))
	m := &estimateMachine{
		cfg:    cfg,
		sketch: NewSketch(k),
		rounds: rounds,
		picks:  cfg.Coins.Split('p', 'i', 'c', 'k'),
	}
	m.sketch.SetOwn(0, 1, cfg.Coins)
	return m
}

type estimateMachine struct {
	cfg    dynet.Config
	sketch *Sketch
	rounds int
	picks  *rng.Source
	done   bool
	out    int64
}

func (m *estimateMachine) Step(r int) (dynet.Action, dynet.Message) {
	if r >= m.rounds && !m.done {
		m.done = true
		m.out = int64(math.Round(m.sketch.Estimate(0)))
	}
	if !m.picks.Bool() {
		return dynet.Receive, dynet.Message{}
	}
	value, copy, min, ok := m.sketch.PickRecord(m.picks)
	if !ok {
		return dynet.Receive, dynet.Message{}
	}
	var w bitio.Writer
	EncodeRecord(&w, value, copy, min)
	return dynet.Send, dynet.Message{Payload: w.Bytes(), NBits: w.Len()}
}

func (m *estimateMachine) Deliver(r int, msgs []dynet.Message) {
	for _, msg := range msgs {
		rd := bitio.NewReader(msg.Payload, msg.NBits)
		value, copy, min, err := DecodeRecord(rd)
		if err != nil {
			continue
		}
		m.sketch.Merge(value, copy, min)
	}
}

func (m *estimateMachine) Output() (int64, bool) {
	if m.done {
		return m.out, true
	}
	return 0, false
}
