package counting

import (
	"dyndiam/internal/bitio"
	"dyndiam/internal/dynet"
	"dyndiam/internal/rng"
)

// Extra keys specific to MajorityProbe (ExtraD, ExtraK, ExtraRounds are
// shared with EstimateN).
const (
	// ExtraNPrime is the size estimate N' (default: the true N).
	ExtraNPrime = "nprime"
	// ExtraCPermille is the accuracy margin c in thousandths (default
	// 200).
	ExtraCPermille = "cpermille"
)

// MajorityProbe is the standalone majority-counting subroutine of Section 7
// (experiment E6): every node holds a value, gossips the counting sketch for
// a fixed horizon, and then outputs 1 if the count of nodes holding *its
// own* value clears the conservative majority threshold, else 0.
//
// The one-sided guarantee under test: a node outputs 1 only if its value is
// held by a strict majority (w.h.p.), no matter how short the horizon or
// how many distinct values dilute the gossip; and when all nodes hold one
// value and the horizon covers propagation, they all output 1.
type MajorityProbe struct{}

// Name implements dynet.Protocol.
func (MajorityProbe) Name() string { return "counting/majority-probe" }

// NewMachine implements dynet.Protocol.
func (MajorityProbe) NewMachine(cfg dynet.Config) dynet.Machine {
	k := int(cfg.ExtraInt(ExtraK, int64(KFor(cfg.N))))
	d := int(cfg.ExtraInt(ExtraD, int64(cfg.N-1)))
	w := bitio.WidthFor(cfg.N + 1)
	nPrime := int(cfg.ExtraInt(ExtraNPrime, int64(cfg.N)))
	c := float64(cfg.ExtraInt(ExtraCPermille, 200)) / 1000
	m := &majorityMachine{
		cfg:    cfg,
		sketch: NewSketch(k),
		rounds: int(cfg.ExtraInt(ExtraRounds, int64(4*k*(d+w)))),
		tau:    MajorityThreshold(nPrime, c),
		picks:  cfg.Coins.Split('m', 'j'),
	}
	m.sketch.SetOwn(cfg.Input, 1, cfg.Coins)
	return m
}

type majorityMachine struct {
	cfg    dynet.Config
	sketch *Sketch
	rounds int
	tau    float64
	picks  *rng.Source
	done   bool
	out    int64
}

func (m *majorityMachine) Step(r int) (dynet.Action, dynet.Message) {
	if r >= m.rounds && !m.done {
		m.done = true
		if m.sketch.Estimate(m.cfg.Input) >= m.tau {
			m.out = 1
		}
	}
	if !m.picks.Bool() {
		return dynet.Receive, dynet.Message{}
	}
	value, copy, min, ok := m.sketch.PickRecord(m.picks)
	if !ok {
		return dynet.Receive, dynet.Message{}
	}
	var w bitio.Writer
	EncodeRecord(&w, value, copy, min)
	return dynet.Send, dynet.Message{Payload: w.Bytes(), NBits: w.Len()}
}

func (m *majorityMachine) Deliver(r int, msgs []dynet.Message) {
	for _, msg := range msgs {
		rd := bitio.NewReader(msg.Payload, msg.NBits)
		value, copy, min, err := DecodeRecord(rd)
		if err != nil {
			continue
		}
		m.sketch.Merge(value, copy, min)
	}
}

func (m *majorityMachine) Output() (int64, bool) {
	if m.done {
		return m.out, true
	}
	return 0, false
}
