package counting

import (
	"testing"

	"dyndiam/internal/dynet"
	"dyndiam/internal/graph"
)

func runProbe(t *testing.T, n int, inputs []int64, extra map[string]int64, seed uint64) *dynet.Result {
	t.Helper()
	ms := dynet.NewMachines(MajorityProbe{}, n, inputs, seed, extra)
	e := &dynet.Engine{Machines: ms, Adv: dynet.Static(graph.Ring(n)), Workers: 1}
	res, err := e.Run(1000000)
	if err != nil || !res.Done {
		t.Fatalf("probe run failed: done=%v err=%v", res != nil && res.Done, err)
	}
	return res
}

func TestMajorityProbeUnanimous(t *testing.T) {
	const n = 24
	inputs := make([]int64, n) // everyone holds 0
	d := graph.Ring(n).StaticDiameter()
	res := runProbe(t, n, inputs, map[string]int64{ExtraD: int64(d), ExtraK: 64}, 3)
	yes := 0
	for _, out := range res.Outputs {
		if out == 1 {
			yes++
		}
	}
	if yes < n*3/4 {
		t.Errorf("unanimous value: only %d/%d nodes claimed majority", yes, n)
	}
}

func TestMajorityProbeSoundOnMinority(t *testing.T) {
	// 25% hold value 1: no node holding 1 may claim a majority.
	const n = 32
	inputs := make([]int64, n)
	for v := 0; v < n/4; v++ {
		inputs[v] = 1
	}
	d := graph.Ring(n).StaticDiameter()
	res := runProbe(t, n, inputs, map[string]int64{ExtraD: int64(d), ExtraK: 64}, 9)
	for v := 0; v < n/4; v++ {
		if res.Outputs[v] == 1 {
			t.Errorf("node %d claimed majority for a 25%% value", v)
		}
	}
}

func TestMajorityProbeSoundOnExactHalf(t *testing.T) {
	// A 50/50 split is not a strict majority for either side.
	const n = 32
	inputs := make([]int64, n)
	for v := 0; v < n/2; v++ {
		inputs[v] = 1
	}
	d := graph.Ring(n).StaticDiameter()
	res := runProbe(t, n, inputs, map[string]int64{ExtraD: int64(d), ExtraK: 96}, 5)
	for v, out := range res.Outputs {
		if out == 1 {
			t.Errorf("node %d claimed majority in a 50/50 split", v)
		}
	}
}

func TestMajorityProbeConservativeWhenHorizonShort(t *testing.T) {
	// Unanimous value but a horizon too short for gossip: the probe must
	// *withhold* majority claims (under-count), not fabricate them.
	const n = 40
	inputs := make([]int64, n)
	ms := dynet.NewMachines(MajorityProbe{}, n, inputs, 7, map[string]int64{
		ExtraD: 1, ExtraK: 32, ExtraRounds: 25,
	})
	e := &dynet.Engine{Machines: ms, Adv: dynet.Static(graph.Line(n)), Workers: 1}
	res, err := e.Run(60)
	if err != nil {
		t.Fatal(err)
	}
	claims := 0
	for _, out := range res.Outputs {
		if out == 1 {
			claims++
		}
	}
	if claims > 0 {
		t.Errorf("%d nodes claimed majority with a %d-round horizon on a line", claims, 25)
	}
}

func TestMajorityProbeWithSkewedNPrime(t *testing.T) {
	// N' = 1.2N with c = 0.1 (|N'-N|/N = 0.2 <= 1/3 - 0.1): unanimity
	// must still clear the threshold.
	const n = 30
	inputs := make([]int64, n)
	d := graph.Ring(n).StaticDiameter()
	res := runProbe(t, n, inputs, map[string]int64{
		ExtraD: int64(d), ExtraK: 96,
		ExtraNPrime:    int64(1.2 * n),
		ExtraCPermille: 100,
	}, 11)
	yes := 0
	for _, out := range res.Outputs {
		if out == 1 {
			yes++
		}
	}
	if yes < n*3/4 {
		t.Errorf("skewed N': only %d/%d claimed majority on unanimity", yes, n)
	}
}
