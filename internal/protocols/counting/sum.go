package counting

import (
	"math"

	"dyndiam/internal/bitio"
	"dyndiam/internal/dynet"
	"dyndiam/internal/rng"
)

// This file extends the exponential-minima machinery from counting to the
// separable-function setting of Mosk-Aoyama and Shah [18] that the paper's
// Section 7 cites: estimating a SUM of non-negative integer node weights.
// The minimum of w independent Exp(1) variates is Exp(w), so a node with
// weight w contributes one Exp(w) draw per copy and the usual estimator
// (k-1)/sum_c W_c concentrates on the total weight. Counting is the w = 1
// special case; MAX and other globally-sensitive functions reduce to such
// aggregates per the paper's Section 1 discussion of [16].

// SetOwnWeighted registers a weighted contribution: an Exp(weight) draw per
// copy (weight 0 contributes nothing). Draws are float32-quantized at
// creation like SetOwn's.
func (s *Sketch) SetOwnWeighted(value int64, weight int64, nonce uint64, coins *rng.Source) {
	if weight <= 0 {
		return
	}
	row := s.row(value)
	for c := 0; c < s.k; c++ {
		draw := float32(coins.Split(nonce, uint64(c)).Exp() / float64(weight))
		if draw < row[c] {
			row[c] = draw
		}
	}
}

// SumEstimate is the known-diameter protocol estimating the sum of all node
// Inputs (non-negative weights): gossip a weighted sketch for the fixed
// horizon, then output the rounded estimate. Extra keys: ExtraD, ExtraK,
// ExtraRounds (shared with EstimateN).
type SumEstimate struct{}

// Name implements dynet.Protocol.
func (SumEstimate) Name() string { return "counting/sum-estimate" }

// NewMachine implements dynet.Protocol.
func (SumEstimate) NewMachine(cfg dynet.Config) dynet.Machine {
	k := int(cfg.ExtraInt(ExtraK, int64(KFor(cfg.N))))
	d := int(cfg.ExtraInt(ExtraD, int64(cfg.N-1)))
	w := bitio.WidthFor(cfg.N + 1)
	rounds := int(cfg.ExtraInt(ExtraRounds, int64(4*k*(d+w))))
	m := &sumMachine{
		cfg:    cfg,
		sketch: NewSketch(k),
		rounds: rounds,
		picks:  cfg.Coins.Split('s', 'u', 'm'),
	}
	m.sketch.SetOwnWeighted(0, cfg.Input, 1, cfg.Coins)
	return m
}

type sumMachine struct {
	cfg    dynet.Config
	sketch *Sketch
	rounds int
	picks  *rng.Source
	done   bool
	out    int64
}

func (m *sumMachine) Step(r int) (dynet.Action, dynet.Message) {
	if r >= m.rounds && !m.done {
		m.done = true
		m.out = int64(math.Round(m.sketch.Estimate(0)))
	}
	if !m.picks.Bool() {
		return dynet.Receive, dynet.Message{}
	}
	value, copy, min, ok := m.sketch.PickRecord(m.picks)
	if !ok {
		return dynet.Receive, dynet.Message{}
	}
	var w bitio.Writer
	EncodeRecord(&w, value, copy, min)
	return dynet.Send, dynet.Message{Payload: w.Bytes(), NBits: w.Len()}
}

func (m *sumMachine) Deliver(r int, msgs []dynet.Message) {
	for _, msg := range msgs {
		rd := bitio.NewReader(msg.Payload, msg.NBits)
		value, copy, min, err := DecodeRecord(rd)
		if err != nil {
			continue
		}
		m.sketch.Merge(value, copy, min)
	}
}

func (m *sumMachine) Output() (int64, bool) {
	if m.done {
		return m.out, true
	}
	return 0, false
}
