package counting

import (
	"math"
	"testing"

	"dyndiam/internal/dynet"
	"dyndiam/internal/graph"
	"dyndiam/internal/rng"
)

func TestWeightedSketchConcentrates(t *testing.T) {
	root := rng.New(4)
	const k = 128
	s := NewSketch(k)
	var want int64
	for node := 0; node < 60; node++ {
		w := int64(node%7) + 1
		want += w
		s.SetOwnWeighted(0, w, 9, root.Split(uint64(node)))
	}
	got := s.Estimate(0)
	if math.Abs(got-float64(want))/float64(want) > 0.3 {
		t.Errorf("sum estimate %.1f, want ~%d", got, want)
	}
}

func TestWeightedZeroContributesNothing(t *testing.T) {
	s := NewSketch(8)
	s.SetOwnWeighted(0, 0, 1, rng.New(1))
	if len(s.Values()) != 0 {
		t.Error("zero weight created a sketch row")
	}
}

func TestWeightedSubsumesCounting(t *testing.T) {
	// Weight-1 contributions must match SetOwn exactly (same draws).
	root := rng.New(7)
	a, b := NewSketch(16), NewSketch(16)
	for node := 0; node < 20; node++ {
		a.SetOwn(3, 5, root.Split(uint64(node)))
		b.SetOwnWeighted(3, 1, 5, root.Split(uint64(node)))
	}
	if a.Estimate(3) != b.Estimate(3) {
		t.Errorf("weight-1 estimate %.4f != counting estimate %.4f", b.Estimate(3), a.Estimate(3))
	}
}

func TestSumEstimateProtocol(t *testing.T) {
	const n = 24
	inputs := make([]int64, n)
	var want int64
	src := rng.New(11)
	for v := range inputs {
		inputs[v] = int64(src.Intn(10))
		want += inputs[v]
	}
	d := graph.Ring(n).StaticDiameter()
	ms := dynet.NewMachines(SumEstimate{}, n, inputs, 3, map[string]int64{
		ExtraD: int64(d), ExtraK: 96,
	})
	e := &dynet.Engine{Machines: ms, Adv: dynet.Static(graph.Ring(n)), Workers: 1}
	res, err := e.Run(1000000)
	if err != nil || !res.Done {
		t.Fatalf("sum estimate run failed: %v", err)
	}
	for v := 0; v < n; v++ {
		got := float64(res.Outputs[v])
		if math.Abs(got-float64(want))/float64(want) > 0.35 {
			t.Errorf("node %d estimated sum %v, want ~%d", v, got, want)
		}
	}
}

func TestSumEstimateAllZeros(t *testing.T) {
	const n = 8
	ms := dynet.NewMachines(SumEstimate{}, n, make([]int64, n), 2, map[string]int64{
		ExtraD: int64(n), ExtraK: 16, ExtraRounds: 50,
	})
	e := &dynet.Engine{Machines: ms, Adv: dynet.Static(graph.Complete(n)), Workers: 1}
	res, err := e.Run(100)
	if err != nil || !res.Done {
		t.Fatalf("run failed: %v", err)
	}
	for v, out := range res.Outputs {
		if out != 0 {
			t.Errorf("node %d estimated %d for an all-zero sum", v, out)
		}
	}
}
