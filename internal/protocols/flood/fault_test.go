package flood

import (
	"testing"

	"dyndiam/internal/dynet"
	"dyndiam/internal/graph"
)

// TestCFloodToleratesJunkSenders drops garbage-spewing machines into the
// network: decoders must ignore malformed payloads, and the protocol must
// still inform and confirm among the remaining nodes.
func TestCFloodToleratesJunkSenders(t *testing.T) {
	const n = 20
	inputs := make([]int64, n)
	inputs[0] = 9
	extra := map[string]int64{ExtraD: n - 1}
	ms := dynet.NewMachines(CFlood{}, n, inputs, 5, extra)
	cfgs := dynet.Configs(n, inputs, 5, extra)
	junkIDs := []int{7, 13}
	dynet.WithJunk(ms, cfgs, junkIDs...)

	e := &dynet.Engine{Machines: ms, Adv: dynet.Static(graph.Complete(n)), Workers: 1,
		Terminated: dynet.NodeDecided(0)}
	res, err := e.Run(4 * n)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("source never confirmed amid junk senders")
	}
	junk := map[int]bool{7: true, 13: true}
	for v, m := range ms {
		if junk[v] {
			continue
		}
		if !Informed(m) {
			t.Errorf("honest node %d uninformed", v)
		}
		if out, ok := m.Output(); !ok || out != 9 {
			t.Errorf("honest node %d output (%d, %v), want (9, true) — junk corrupted the token?", v, out, ok)
		}
	}
}

// TestPFloodSurvivesJunkOnlyNeighbors fuzzes PFlood's decoder by
// surrounding receivers with junk senders only: arbitrary payloads must
// never panic the decoder or trip the engine's budget checks. (The model is
// not Byzantine: a random payload that happens to parse is a legal forged
// token, so no content assertion is made here — end-to-end correctness with
// junk present is covered by TestCFloodToleratesJunkSenders, where the real
// source's messages win deterministically.)
func TestPFloodSurvivesJunkOnlyNeighbors(t *testing.T) {
	const n = 6
	inputs := make([]int64, n)
	inputs[0] = 1
	ms := dynet.NewMachines(PFlood{}, n, inputs, 9, map[string]int64{ExtraRounds: 1 << 20})
	cfgs := dynet.Configs(n, inputs, 9, nil)
	dynet.WithJunk(ms, cfgs, 1, 2, 3, 4)
	e := &dynet.Engine{Machines: ms, Adv: dynet.Static(graph.Line(n)), Workers: 1,
		Terminated: func([]dynet.Machine) bool { return false }}
	if _, err := e.Run(500); err != nil {
		t.Fatalf("junk payloads broke the run: %v", err)
	}
}
