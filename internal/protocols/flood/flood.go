// Package flood implements token dissemination and the CFLOOD (confirmed
// flooding) problem from the paper.
//
// In CFLOOD a designated source must propagate a token of O(log N) bits to
// all nodes and then output a special symbol; the output is correct if by
// that time every node holds the token.
//
// With the diameter D known, CFLOOD is trivial and deterministic in this
// model: every informed node sends the token in every round, every
// uninformed node receives, and the source outputs at the end of round D.
// Correctness holds against even the fully adaptive adversary: along any
// time-respecting causal path (whose existence within D rounds is exactly
// the definition of dynamic diameter), each predecessor is informed and
// sending and each uninformed successor is receiving, so the token follows
// the path. This realizes the paper's known-D upper bound — one flooding
// round.
//
// With D unknown, the only safe deterministic choice is the pessimistic
// D := N-1 (every connected dynamic network has dynamic diameter <= N-1),
// which costs Θ(N/D) flooding rounds on a diameter-D network. Theorem 6
// shows *every* unknown-D protocol must pay Ω((N/log N)^¼) flooding rounds,
// so the pessimistic baseline is within poly(N) of optimal.
//
// The package also provides PFlood, a randomized variant in which informed
// nodes send with probability p — the ablation of the always-send design
// decision. Against oblivious adversaries it completes in O(D + log N)
// rounds w.h.p. for constant p, but the adaptive adversary can stall it
// (see the package tests), which is why the deterministic variant is the
// primitive everything else builds on.
package flood

import (
	"dyndiam/internal/bitio"
	"dyndiam/internal/dynet"
)

// Extra keys read by the protocols in this package.
const (
	// ExtraD is the diameter bound handed to the protocol ("known D").
	// When absent, the pessimistic N-1 is used ("unknown D").
	ExtraD = "D"
	// ExtraSource is the id of the CFLOOD source (default 0).
	ExtraSource = "source"
	// ExtraRounds overrides the number of rounds the source waits before
	// confirming (PFlood only; CFlood always waits exactly its D bound).
	ExtraRounds = "rounds"
	// ExtraSendPermille is PFlood's per-round send probability of an
	// informed node, in thousandths (default 500 = 1/2).
	ExtraSendPermille = "sendpermille"
)

// CFlood is the deterministic confirmed-flooding protocol: informed nodes
// always send; the source outputs after its diameter bound elapses.
// The source's Input is the token value.
type CFlood struct{}

// Name implements dynet.Protocol.
func (CFlood) Name() string { return "flood/cflood" }

// NewMachine implements dynet.Protocol.
func (CFlood) NewMachine(cfg dynet.Config) dynet.Machine {
	d := cfg.ExtraInt(ExtraD, int64(cfg.N-1))
	src := int(cfg.ExtraInt(ExtraSource, 0))
	m := &cfloodMachine{cfg: cfg, d: int(d), source: src}
	if cfg.ID == src {
		m.token = cfg.Input
		m.informed = true
	}
	return m
}

type cfloodMachine struct {
	cfg      dynet.Config
	d        int
	source   int
	token    int64
	informed bool
	done     bool
}

func (m *cfloodMachine) Step(r int) (dynet.Action, dynet.Message) {
	if !m.informed {
		return dynet.Receive, dynet.Message{}
	}
	var w bitio.Writer
	w.WriteUvarint(uint64(m.token))
	if m.cfg.ID == m.source && r >= m.d {
		// The token has had D rounds to follow every causal path; the
		// source confirms. (It keeps sending afterwards, harmlessly.)
		m.done = true
	}
	return dynet.Send, dynet.Message{Payload: w.Bytes(), NBits: w.Len()}
}

func (m *cfloodMachine) Deliver(r int, msgs []dynet.Message) {
	if m.informed || len(msgs) == 0 {
		return
	}
	rd := bitio.NewReader(msgs[0].Payload, msgs[0].NBits)
	tok, err := rd.ReadUvarint()
	if err != nil {
		return // malformed message: ignore, stay uninformed
	}
	m.token = int64(tok)
	m.informed = true
}

// FloodSpec implements dynet.BitFlooder, qualifying CFlood for the
// engine's word-packed fast path. TokenBits is the exact uvarint wire
// size Step would pay per message.
func (m *cfloodMachine) FloodSpec() dynet.FloodSpec {
	s := dynet.FloodSpec{Source: m.source, D: m.d, Informed: m.informed, Done: m.done}
	if m.informed {
		var w bitio.Writer
		w.WriteUvarint(uint64(m.token))
		s.Token = m.token
		s.TokenBits = w.Len()
	}
	return s
}

// SyncFlood implements dynet.BitFlooder: it writes back the state an
// equivalent message-passing execution of `rounds` rounds would leave.
// An informed node holds the token; the source has confirmed iff some
// executed round reached its diameter bound (Step sets done at the first
// round r >= d, so after rounds >= 1 executed rounds, done iff
// rounds >= d).
func (m *cfloodMachine) SyncFlood(informed bool, token int64, rounds int) {
	if informed && !m.informed {
		m.informed = true
		m.token = token
	}
	if m.cfg.ID == m.source && m.informed && rounds >= m.d {
		m.done = true
	}
}

func (m *cfloodMachine) Output() (int64, bool) {
	if m.cfg.ID == m.source {
		if m.done {
			return m.token, true
		}
		return 0, false
	}
	if m.informed {
		return m.token, true
	}
	return 0, false
}

// PFlood is the randomized-flooding ablation: informed nodes send with a
// configurable probability, and the source waits ExtraRounds rounds before
// confirming (default 4·D·⌈log₂N⌉).
type PFlood struct{}

// Name implements dynet.Protocol.
func (PFlood) Name() string { return "flood/pflood" }

// NewMachine implements dynet.Protocol.
func (PFlood) NewMachine(cfg dynet.Config) dynet.Machine {
	d := int(cfg.ExtraInt(ExtraD, int64(cfg.N-1)))
	src := int(cfg.ExtraInt(ExtraSource, 0))
	w := bitio.WidthFor(cfg.N + 1)
	rounds := int(cfg.ExtraInt(ExtraRounds, int64(4*d*w)))
	permille := int(cfg.ExtraInt(ExtraSendPermille, 500))
	m := &pfloodMachine{
		cfg: cfg, rounds: rounds, source: src,
		p: float64(permille) / 1000,
	}
	if cfg.ID == src {
		m.token = cfg.Input
		m.informed = true
	}
	return m
}

type pfloodMachine struct {
	cfg      dynet.Config
	rounds   int
	source   int
	p        float64
	token    int64
	informed bool
	done     bool
}

func (m *pfloodMachine) Step(r int) (dynet.Action, dynet.Message) {
	if m.cfg.ID == m.source && r >= m.rounds {
		m.done = true
	}
	if !m.informed || !m.cfg.Coins.At(m.cfg.ID, r).Prob(m.p) {
		return dynet.Receive, dynet.Message{}
	}
	var w bitio.Writer
	w.WriteUvarint(uint64(m.token))
	return dynet.Send, dynet.Message{Payload: w.Bytes(), NBits: w.Len()}
}

func (m *pfloodMachine) Deliver(r int, msgs []dynet.Message) {
	if m.informed || len(msgs) == 0 {
		return
	}
	rd := bitio.NewReader(msgs[0].Payload, msgs[0].NBits)
	tok, err := rd.ReadUvarint()
	if err != nil {
		return
	}
	m.token = int64(tok)
	m.informed = true
}

func (m *pfloodMachine) Output() (int64, bool) {
	if m.cfg.ID == m.source {
		if m.done {
			return m.token, true
		}
		return 0, false
	}
	if m.informed {
		return m.token, true
	}
	return 0, false
}

// Informed reports whether a flood machine holds the token — used by tests
// and the harness to audit CFLOOD output correctness (did the source
// confirm only after everyone was informed?).
func Informed(m dynet.Machine) bool {
	switch mm := m.(type) {
	case *cfloodMachine:
		return mm.informed
	case *pfloodMachine:
		return mm.informed
	}
	return false
}
