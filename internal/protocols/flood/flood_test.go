package flood

import (
	"testing"

	"dyndiam/internal/adversaries"
	"dyndiam/internal/dynet"
	"dyndiam/internal/graph"
	"dyndiam/internal/rng"
)

func machines(t *testing.T, p dynet.Protocol, n int, token int64, seed uint64, extra map[string]int64) []dynet.Machine {
	t.Helper()
	inputs := make([]int64, n)
	src := 0
	if extra != nil {
		if s, ok := extra[ExtraSource]; ok {
			src = int(s)
		}
	}
	inputs[src] = token
	return dynet.NewMachines(p, n, inputs, seed, extra)
}

func TestCFloodKnownDExactOnLine(t *testing.T) {
	const n = 20
	ms := machines(t, CFlood{}, n, 42, 1, map[string]int64{ExtraD: n - 1})
	e := &dynet.Engine{
		Machines:   ms,
		Adv:        dynet.Static(graph.Line(n)),
		Workers:    1,
		Terminated: dynet.NodeDecided(0),
	}
	res, err := e.Run(3 * n)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Rounds != n-1 {
		t.Fatalf("source confirmed at round %d (done=%v), want exactly D = %d", res.Rounds, res.Done, n-1)
	}
	for v, m := range ms {
		if !Informed(m) {
			t.Errorf("node %d uninformed at confirmation", v)
		}
		if out, ok := m.Output(); !ok || out != 42 {
			t.Errorf("node %d output (%d, %v), want (42, true)", v, out, ok)
		}
	}
}

func TestCFloodNeverConfirmsEarly(t *testing.T) {
	// With bound D the source must not output before round D even on an
	// easy topology.
	const n = 10
	ms := machines(t, CFlood{}, n, 7, 1, map[string]int64{ExtraD: 50})
	e := &dynet.Engine{
		Machines:   ms,
		Adv:        dynet.Static(graph.Complete(n)),
		Workers:    1,
		Terminated: dynet.NodeDecided(0),
	}
	res, err := e.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 50 {
		t.Errorf("confirmed at round %d, want 50", res.Rounds)
	}
}

func TestCFloodUnknownDDefaultsToN(t *testing.T) {
	const n = 12
	ms := machines(t, CFlood{}, n, 9, 1, nil) // no ExtraD: pessimistic N-1
	e := &dynet.Engine{
		Machines:   ms,
		Adv:        dynet.Static(graph.Star(n)),
		Workers:    1,
		Terminated: dynet.NodeDecided(0),
	}
	res, err := e.Run(2 * n)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != n-1 {
		t.Errorf("unknown-D baseline confirmed at %d, want N-1 = %d", res.Rounds, n-1)
	}
}

func TestCFloodOnRandomDynamicNetworks(t *testing.T) {
	// Audit CFLOOD output correctness on random connected dynamic
	// topologies: whenever the source confirms, every node is informed.
	const n = 40
	for seed := uint64(0); seed < 5; seed++ {
		src := rng.New(seed + 100)
		adv := dynet.AdversaryFunc(func(r int, _ []dynet.Action) *graph.Graph {
			return graph.RandomConnected(n, n/3, src.Split(uint64(r)))
		})
		ms := machines(t, CFlood{}, n, 5, seed, map[string]int64{ExtraD: n - 1})
		e := &dynet.Engine{Machines: ms, Adv: adv, Workers: 1, Terminated: dynet.NodeDecided(0)}
		res, err := e.Run(4 * n)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Done {
			t.Fatalf("seed %d: source never confirmed", seed)
		}
		for v, m := range ms {
			if !Informed(m) {
				t.Errorf("seed %d: node %d uninformed at confirmation", seed, v)
			}
		}
	}
}

func TestCFloodSourceOverride(t *testing.T) {
	const n = 8
	ms := machines(t, CFlood{}, n, 3, 1, map[string]int64{ExtraD: n - 1, ExtraSource: 5})
	e := &dynet.Engine{Machines: ms, Adv: dynet.Static(graph.Ring(n)), Workers: 1,
		Terminated: dynet.NodeDecided(5)}
	res, err := e.Run(3 * n)
	if err != nil || !res.Done {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if out, ok := ms[5].Output(); !ok || out != 3 {
		t.Errorf("source output (%d, %v), want (3, true)", out, ok)
	}
}

func TestAdaptiveStallerDefeatsPFloodButNotCFlood(t *testing.T) {
	const (
		n      = 64
		rounds = 4096
	)
	// PFlood with p = 1/2: once k nodes are informed, the staller leaks a
	// new node only when all k send simultaneously (probability 2^-k), so
	// the informed set grows like log₂(rounds) — about 12 here — instead
	// of reaching all 64.
	msP := machines(t, PFlood{}, n, 1, 3, map[string]int64{ExtraRounds: 1 << 20})
	eP := &dynet.Engine{Machines: msP, Adv: adversaries.NewStaller(n, 0), Workers: 1,
		CheckConnectivity: true,
		Terminated:        func([]dynet.Machine) bool { return false }}
	if _, err := eP.Run(rounds); err != nil {
		t.Fatal(err)
	}
	informedP := 0
	for _, m := range msP {
		if Informed(m) {
			informedP++
		}
	}
	if informedP > 24 { // generous slack over the ~log₂(4096) expectation
		t.Errorf("staller: probabilistic flooding informed %d/%d nodes in %d rounds (expected ~12)",
			informedP, n, rounds)
	}

	// CFlood (always send): the staller is forced to concede one node
	// per round; everyone is informed within N-1 rounds.
	msC := machines(t, CFlood{}, n, 1, 3, map[string]int64{ExtraD: n - 1})
	eC := &dynet.Engine{Machines: msC, Adv: adversaries.NewStaller(n, 0), Workers: 1,
		CheckConnectivity: true, Terminated: dynet.NodeDecided(0)}
	res, err := eC.Run(2 * n)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("always-send flooding did not complete against the staller")
	}
	for v, m := range msC {
		if !Informed(m) {
			t.Errorf("staller vs CFlood: node %d uninformed", v)
		}
	}
}

func TestPFloodCompletesOnObliviousNetworks(t *testing.T) {
	const n = 40
	src := rng.New(50)
	adv := dynet.AdversaryFunc(func(r int, _ []dynet.Action) *graph.Graph {
		return graph.RandomConnected(n, n, src.Split(uint64(r)))
	})
	ms := machines(t, PFlood{}, n, 8, 4, map[string]int64{ExtraD: n})
	e := &dynet.Engine{Machines: ms, Adv: adv, Workers: 1, Terminated: dynet.NodeDecided(0)}
	res, err := e.Run(40 * n)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("PFlood never confirmed on oblivious random networks")
	}
	for v, m := range ms {
		if !Informed(m) {
			t.Errorf("node %d uninformed at confirmation", v)
		}
	}
}

func TestPFloodSendProbabilityExtremes(t *testing.T) {
	// p = 1000 (always send): only the source ever sends... every
	// informed node always sends, so it degenerates to CFlood behavior.
	const n = 10
	ms := machines(t, PFlood{}, n, 2, 9,
		map[string]int64{ExtraSendPermille: 1000, ExtraRounds: n})
	e := &dynet.Engine{Machines: ms, Adv: dynet.Static(graph.Line(n)), Workers: 1,
		Terminated: func(all []dynet.Machine) bool {
			for _, m := range all {
				if !Informed(m) {
					return false
				}
			}
			return true
		}}
	res, err := e.Run(3 * n)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Rounds != n-1 {
		t.Errorf("always-send PFlood on a line informed everyone at round %d, want %d", res.Rounds, n-1)
	}
}

func BenchmarkCFloodLine(b *testing.B) {
	const n = 256
	g := graph.Line(n)
	for i := 0; i < b.N; i++ {
		inputs := make([]int64, n)
		inputs[0] = 1
		ms := dynet.NewMachines(CFlood{}, n, inputs, uint64(i), map[string]int64{ExtraD: n - 1})
		e := &dynet.Engine{Machines: ms, Adv: dynet.Static(g), Workers: 1,
			Terminated: dynet.NodeDecided(0)}
		if _, err := e.Run(2 * n); err != nil {
			b.Fatal(err)
		}
	}
}
