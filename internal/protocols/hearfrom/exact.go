package hearfrom

import (
	"dyndiam/internal/bitio"
	"dyndiam/internal/dynet"
	"dyndiam/internal/rng"
)

// Exact solves HEAR-FROM-N-NODES with known N by literal causal
// bookkeeping rather than estimation: every node maintains the set of node
// ids it has heard from (initially itself) and gossips one id per message,
// rotating through its set. Receiving an id w from a neighbor u is a valid
// "heard from w" event: w causally influenced u, and u's message influences
// the receiver, so w ⇝ receiver. A node outputs N exactly when its set is
// complete — it can never output early, making Exact the ground-truth
// auditor for the estimation-based HearFrom.
//
// The set costs O(N) node memory (allowed: the model bounds messages, not
// state) and messages carry one id — O(log N) bits. Completion needs every
// id to traverse the network, which on low-diameter topologies takes
// O(N + D log N)-ish rounds; the known-D upper bound of the paper uses the
// estimation route instead, trading exactness for O(log N) flooding rounds
// (see HearFrom).
type Exact struct{}

// Name implements dynet.Protocol.
func (Exact) Name() string { return "hearfrom/exact" }

// NewMachine implements dynet.Protocol.
func (Exact) NewMachine(cfg dynet.Config) dynet.Machine {
	m := &exactMachine{
		cfg:   cfg,
		heard: make(map[int]bool, cfg.N),
		coins: cfg.Coins.Split('h', 'x'),
	}
	m.heard[cfg.ID] = true
	m.order = []int{cfg.ID}
	return m
}

type exactMachine struct {
	cfg   dynet.Config
	heard map[int]bool
	order []int // rotation order for gossip
	next  int
	coins *rng.Source
}

func (m *exactMachine) Step(r int) (dynet.Action, dynet.Message) {
	if !m.coins.Bool() {
		return dynet.Receive, dynet.Message{}
	}
	id := m.order[m.next%len(m.order)]
	m.next++
	var w bitio.Writer
	w.WriteUvarint(uint64(id))
	return dynet.Send, dynet.Message{Payload: w.Bytes(), NBits: w.Len()}
}

func (m *exactMachine) Deliver(r int, msgs []dynet.Message) {
	for _, msg := range msgs {
		rd := bitio.NewReader(msg.Payload, msg.NBits)
		v, err := rd.ReadUvarint()
		if err != nil {
			continue
		}
		id := int(v)
		if id < 0 || id >= m.cfg.N || m.heard[id] {
			continue
		}
		m.heard[id] = true
		m.order = append(m.order, id)
		// The direct sender also causally influenced us.
		if msg.From >= 0 && msg.From < m.cfg.N && !m.heard[msg.From] {
			m.heard[msg.From] = true
			m.order = append(m.order, msg.From)
		}
	}
}

func (m *exactMachine) Output() (int64, bool) {
	if len(m.heard) == m.cfg.N {
		return int64(m.cfg.N), true
	}
	return 0, false
}

// HeardCount reports how many nodes an Exact machine has heard from — used
// by tests to audit partial progress.
func HeardCount(mm dynet.Machine) int {
	m, ok := mm.(*exactMachine)
	if !ok {
		return 0
	}
	return len(m.heard)
}
