package hearfrom

import (
	"testing"

	"dyndiam/internal/dynet"
	"dyndiam/internal/graph"
	"dyndiam/internal/rng"
)

func TestExactCompletesOnCompleteGraph(t *testing.T) {
	const n = 16
	ms := dynet.NewMachines(Exact{}, n, nil, 3, nil)
	e := &dynet.Engine{Machines: ms, Adv: dynet.Static(graph.Complete(n)), Workers: 1}
	res, err := e.Run(5000)
	if err != nil || !res.Done {
		t.Fatalf("exact hear-from did not complete: %v", err)
	}
	for v, out := range res.Outputs {
		if out != n {
			t.Errorf("node %d output %d", v, out)
		}
	}
}

func TestExactCompletesOnDynamicTopology(t *testing.T) {
	const n = 24
	src := rng.New(5)
	adv := dynet.AdversaryFunc(func(r int, _ []dynet.Action) *graph.Graph {
		return graph.RandomConnected(n, n, src.Split(uint64(r)))
	})
	ms := dynet.NewMachines(Exact{}, n, nil, 7, nil)
	e := &dynet.Engine{Machines: ms, Adv: adv, Workers: 1}
	res, err := e.Run(20000)
	if err != nil || !res.Done {
		t.Fatalf("exact hear-from did not complete: %v", err)
	}
}

// TestExactNeverOvercounts: at every point of the run, a node's heard set
// contains only nodes that could actually have causally influenced it. On
// a static line, node 0 can have heard from at most r+1 nodes by round r.
func TestExactNeverOvercounts(t *testing.T) {
	const n = 30
	ms := dynet.NewMachines(Exact{}, n, nil, 9, nil)
	g := graph.Line(n)
	e := &dynet.Engine{Machines: ms, Adv: dynet.Static(g), Workers: 1,
		Terminated: func([]dynet.Machine) bool { return false }}
	// Run round by round via the termination predicate trick: cap rounds
	// and audit afterwards against the causal bound for the full run.
	rounds := n / 2
	if _, err := e.Run(rounds); err != nil {
		t.Fatal(err)
	}
	for v, m := range ms {
		// On a line, anything beyond distance `rounds` cannot have
		// influenced v yet.
		reachable := 0
		for u := 0; u < n; u++ {
			if abs(u-v) <= rounds {
				reachable++
			}
		}
		if got := HeardCount(m); got > reachable {
			t.Errorf("node %d heard %d > causal bound %d", v, got, reachable)
		}
		if got := HeardCount(m); got < 1 {
			t.Errorf("node %d heard %d < 1 (must include itself)", v, got)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// TestExactAuditsEstimatedHearFrom cross-checks the estimation-based
// HearFrom against the exact one: on a topology where both complete, the
// estimate-based protocol must not output before the exact one has heard
// from a 2/3 supermajority (the threshold it checks).
func TestExactAuditsEstimatedHearFrom(t *testing.T) {
	const n = 16
	d := graph.Ring(n).StaticDiameter()
	msE := dynet.NewMachines(HearFrom{}, n, nil, 3, map[string]int64{
		ExtraD: int64(d), ExtraK: 48,
	})
	e := &dynet.Engine{Machines: msE, Adv: dynet.Static(graph.Ring(n)), Workers: 1}
	res, err := e.Run(500000)
	if err != nil || !res.Done {
		t.Fatalf("estimated hear-from failed: %v", err)
	}
	// Same horizon for the exact protocol: it should also have heard
	// from everyone by then (the estimation horizon is much longer than
	// the n rounds the ring needs).
	msX := dynet.NewMachines(Exact{}, n, nil, 3, nil)
	eX := &dynet.Engine{Machines: msX, Adv: dynet.Static(graph.Ring(n)), Workers: 1}
	resX, err := eX.Run(res.Rounds)
	if err != nil {
		t.Fatal(err)
	}
	if !resX.Done {
		t.Errorf("exact protocol incomplete after the estimation horizon (%d rounds)", res.Rounds)
	}
}
