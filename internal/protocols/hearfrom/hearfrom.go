// Package hearfrom implements the HEAR-FROM-N-NODES problem of Kuhn and
// Oshman [16] and the globally-sensitive function MAX it reduces to, both
// with a known diameter bound (the paper's trivial upper bounds; under
// unknown diameter their lower bounds follow from CFLOOD, see the full
// version of the paper).
//
// In HEAR-FROM-N-NODES every node must output once it has been causally
// influenced by all N nodes. With a known diameter bound D that is, by
// definition of the dynamic diameter, guaranteed after D rounds of
// universal participation — but a node must actually *receive* causal
// chains, so nodes gossip continuously and additionally verify an
// exponential-minima count of participants before outputting, making the
// output robust rather than purely clock-based.
//
// MAX: every node outputs the maximum of all inputs. The protocol gossips
// the running maximum for a Θ((D + log N) log N) horizon.
package hearfrom

import (
	"dyndiam/internal/bitio"
	"dyndiam/internal/dynet"
	"dyndiam/internal/protocols/counting"
	"dyndiam/internal/rng"
)

// Extra keys.
const (
	// ExtraD is the known diameter bound.
	ExtraD = "D"
	// ExtraRounds overrides the gossip horizon.
	ExtraRounds = "rounds"
	// ExtraK overrides the sketch copy count (HearFrom only).
	ExtraK = "K"
)

// Max computes the maximum input over all nodes, with known D.
type Max struct{}

// Name implements dynet.Protocol.
func (Max) Name() string { return "hearfrom/max" }

// NewMachine implements dynet.Protocol.
func (Max) NewMachine(cfg dynet.Config) dynet.Machine {
	d := int(cfg.ExtraInt(ExtraD, int64(cfg.N-1)))
	w := bitio.WidthFor(cfg.N + 1)
	rounds := int(cfg.ExtraInt(ExtraRounds, int64(3*(d+w)*w)))
	return &maxMachine{
		cfg:    cfg,
		rounds: rounds,
		best:   cfg.Input,
		coins:  cfg.Coins.Split('m', 'x'),
	}
}

type maxMachine struct {
	cfg    dynet.Config
	rounds int
	best   int64
	coins  *rng.Source
	done   bool
}

func (m *maxMachine) Step(r int) (dynet.Action, dynet.Message) {
	if r >= m.rounds {
		m.done = true
	}
	if !m.coins.Bool() {
		return dynet.Receive, dynet.Message{}
	}
	var w bitio.Writer
	w.WriteUvarint(uint64(m.best))
	return dynet.Send, dynet.Message{Payload: w.Bytes(), NBits: w.Len()}
}

func (m *maxMachine) Deliver(r int, msgs []dynet.Message) {
	for _, msg := range msgs {
		rd := bitio.NewReader(msg.Payload, msg.NBits)
		v, err := rd.ReadUvarint()
		if err != nil {
			continue
		}
		if int64(v) > m.best {
			m.best = int64(v)
		}
	}
}

func (m *maxMachine) Output() (int64, bool) {
	if m.done {
		return m.best, true
	}
	return 0, false
}

// HearFrom solves HEAR-FROM-N-NODES with known D and known N: nodes gossip
// a participation sketch; a node outputs (the number of nodes heard from,
// i.e. N) once the horizon has elapsed *and* its sketch estimate confirms
// at least (1-1/3)·N participants — the sketch makes silent failures (a
// node that was never causally reached) observable instead of trusting the
// clock alone.
type HearFrom struct{}

// Name implements dynet.Protocol.
func (HearFrom) Name() string { return "hearfrom/hear-from-n" }

// NewMachine implements dynet.Protocol.
func (HearFrom) NewMachine(cfg dynet.Config) dynet.Machine {
	d := int(cfg.ExtraInt(ExtraD, int64(cfg.N-1)))
	k := int(cfg.ExtraInt(ExtraK, int64(counting.KFor(cfg.N))))
	w := bitio.WidthFor(cfg.N + 1)
	rounds := int(cfg.ExtraInt(ExtraRounds, int64(4*k*(d+w))))
	m := &hearFromMachine{
		cfg:    cfg,
		rounds: rounds,
		sketch: counting.NewSketch(k),
		coins:  cfg.Coins.Split('h', 'f'),
	}
	m.sketch.SetOwn(0, 1, cfg.Coins)
	return m
}

type hearFromMachine struct {
	cfg    dynet.Config
	rounds int
	sketch *counting.Sketch
	coins  *rng.Source
	done   bool
}

func (m *hearFromMachine) Step(r int) (dynet.Action, dynet.Message) {
	if r >= m.rounds && !m.done {
		if m.sketch.Estimate(0) >= float64(m.cfg.N)*2/3 {
			m.done = true
		}
	}
	if !m.coins.Bool() {
		return dynet.Receive, dynet.Message{}
	}
	value, copy, min, ok := m.sketch.PickRecord(m.coins)
	if !ok {
		return dynet.Receive, dynet.Message{}
	}
	var w bitio.Writer
	counting.EncodeRecord(&w, value, copy, min)
	return dynet.Send, dynet.Message{Payload: w.Bytes(), NBits: w.Len()}
}

func (m *hearFromMachine) Deliver(r int, msgs []dynet.Message) {
	for _, msg := range msgs {
		rd := bitio.NewReader(msg.Payload, msg.NBits)
		value, copy, min, err := counting.DecodeRecord(rd)
		if err != nil {
			continue
		}
		m.sketch.Merge(value, copy, min)
	}
}

func (m *hearFromMachine) Output() (int64, bool) {
	if m.done {
		return int64(m.cfg.N), true
	}
	return 0, false
}
