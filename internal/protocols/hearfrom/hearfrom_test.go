package hearfrom

import (
	"testing"

	"dyndiam/internal/dynet"
	"dyndiam/internal/graph"
	"dyndiam/internal/rng"
)

func TestMaxOnRing(t *testing.T) {
	const n = 24
	inputs := make([]int64, n)
	src := rng.New(4)
	var want int64
	for v := range inputs {
		inputs[v] = int64(src.Intn(1000))
		if inputs[v] > want {
			want = inputs[v]
		}
	}
	d := graph.Ring(n).StaticDiameter()
	ms := dynet.NewMachines(Max{}, n, inputs, 7, map[string]int64{ExtraD: int64(d)})
	e := &dynet.Engine{Machines: ms, Adv: dynet.Static(graph.Ring(n)), Workers: 1}
	res, err := e.Run(100000)
	if err != nil || !res.Done {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	for v, out := range res.Outputs {
		if out != want {
			t.Errorf("node %d output %d, want %d", v, out, want)
		}
	}
}

func TestMaxOnDynamicTopology(t *testing.T) {
	const n = 40
	inputs := make([]int64, n)
	src := rng.New(10)
	var want int64
	for v := range inputs {
		inputs[v] = int64(src.Intn(1 << 16))
		if inputs[v] > want {
			want = inputs[v]
		}
	}
	adv := dynet.AdversaryFunc(func(r int, _ []dynet.Action) *graph.Graph {
		return graph.BoundedDiameterRandom(n, 4, n/2, src.Split(uint64(r)))
	})
	ms := dynet.NewMachines(Max{}, n, inputs, 11, map[string]int64{ExtraD: 8})
	e := &dynet.Engine{Machines: ms, Adv: adv, Workers: 1}
	res, err := e.Run(100000)
	if err != nil || !res.Done {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	for v, out := range res.Outputs {
		if out != want {
			t.Errorf("node %d output %d, want %d", v, out, want)
		}
	}
}

func TestHearFromCompletes(t *testing.T) {
	const n = 24
	d := graph.Ring(n).StaticDiameter()
	ms := dynet.NewMachines(HearFrom{}, n, nil, 3, map[string]int64{
		ExtraD: int64(d), ExtraK: 48,
	})
	e := &dynet.Engine{Machines: ms, Adv: dynet.Static(graph.Ring(n)), Workers: 1}
	res, err := e.Run(500000)
	if err != nil || !res.Done {
		t.Fatalf("res.Done=%v err=%v", res != nil && res.Done, err)
	}
	for v, out := range res.Outputs {
		if out != n {
			t.Errorf("node %d output %d, want %d", v, out, n)
		}
	}
}

func TestHearFromWithholdsWhenCountLow(t *testing.T) {
	// If the horizon elapses but gossip could not complete (bound D far
	// too small), nodes must not output: the sketch check withholds.
	const n = 40
	ms := dynet.NewMachines(HearFrom{}, n, nil, 5, map[string]int64{
		ExtraD: 1, ExtraK: 32, ExtraRounds: 20,
	})
	e := &dynet.Engine{Machines: ms, Adv: dynet.Static(graph.Line(n)), Workers: 1}
	res, err := e.Run(60)
	if err != nil {
		t.Fatal(err)
	}
	outputs := 0
	for v := range res.Decided {
		if res.Decided[v] {
			outputs++
		}
	}
	if outputs > n/4 {
		t.Errorf("%d/%d nodes output despite incomplete hearing", outputs, n)
	}
}

func BenchmarkMaxRing(b *testing.B) {
	const n = 64
	g := graph.Ring(n)
	d := int64(g.StaticDiameter())
	for i := 0; i < b.N; i++ {
		inputs := make([]int64, n)
		inputs[n/2] = 999
		ms := dynet.NewMachines(Max{}, n, inputs, uint64(i), map[string]int64{ExtraD: d})
		e := &dynet.Engine{Machines: ms, Adv: dynet.Static(g), Workers: 1}
		if _, err := e.Run(100000); err != nil {
			b.Fatal(err)
		}
	}
}
