package leader

import (
	"testing"

	"dyndiam/internal/dynet"
	"dyndiam/internal/graph"
)

// TestLeaderToleratesJunkSenders verifies the Section 7 machine's decoders
// against arbitrary payloads: junk neighbors must not crash parsing or wedge
// the election. Note the model is not Byzantine: random bits can parse as a
// syntactically valid (forged) leader announcement, and honest nodes will
// believe it — so the property checked is termination plus *agreement*
// among honest nodes, not that the true maximum id wins. The junk nodes
// never decide, so termination is checked over honest nodes only.
func TestLeaderToleratesJunkSenders(t *testing.T) {
	const n = 18
	inputs := make([]int64, n)
	ms := dynet.NewMachines(Protocol{}, n, inputs, 21, nil)
	cfgs := dynet.Configs(n, inputs, 21, nil)
	junkIDs := map[int]bool{3: true, 11: true}
	dynet.WithJunk(ms, cfgs, 3, 11)

	honestDecided := func(all []dynet.Machine) bool {
		for v, m := range all {
			if junkIDs[v] {
				continue
			}
			if _, ok := m.Output(); !ok {
				return false
			}
		}
		return true
	}
	e := &dynet.Engine{Machines: ms, Adv: dynet.Static(graph.Complete(n)), Workers: 1,
		Terminated: honestDecided}
	res, err := e.Run(2000000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("honest nodes never elected a leader amid junk senders")
	}
	var first int64 = -1
	for v, m := range ms {
		if junkIDs[v] {
			continue
		}
		out, _ := m.Output()
		if first == -1 {
			first = out
		} else if out != first {
			t.Errorf("honest node %d elected %d, others elected %d (agreement broken)", v, out, first)
		}
	}
}
